// MicroPP example: weak scaling of the micro-scale solid-mechanics
// surrogate (mixed linear/non-linear finite elements, imbalance ~2.0)
// with the global allocation policy — a single-machine rendition of
// Figure 6(a).
package main

import (
	"fmt"

	"ompsscluster"
	"ompsscluster/internal/cluster"
	"ompsscluster/internal/core"
	"ompsscluster/internal/workloads/micropp"
)

const coresPerNode = 16

func main() {
	fmt.Println("MicroPP surrogate weak scaling, 1 apprank/node, global policy")
	fmt.Printf("%-8s %-10s %-10s %-10s %-10s\n", "nodes", "baseline", "dlb", "degree4", "perfect")
	for _, nodes := range []int{2, 4, 8, 16} {
		base := run(nodes, 1, false, core.DROMOff)
		dlb := run(nodes, 1, true, core.DROMLocal)
		deg4 := run(nodes, min(4, nodes), true, core.DROMGlobal)
		opt := optimal(nodes)
		fmt.Printf("%-8d %-10.3f %-10.3f %-10.3f %-10.3f\n", nodes, base, dlb, deg4, opt)
	}
}

func problem(nodes int) *micropp.Problem {
	return micropp.New(micropp.Config{
		ChunksPerApprank: 5 * coresPerNode,
		ElementsPerChunk: 64,
		LinearCost:       50 * ompsscluster.Millisecond / (5 * 64),
		NRIterations:     10,
		Imbalance:        2.0,
		Timesteps:        4,
		Seed:             1,
	}, nodes)
}

func run(nodes, degree int, lewi bool, drom core.DROMMode) float64 {
	m := cluster.New(nodes, coresPerNode, cluster.DefaultNet())
	p := problem(nodes)
	rt := core.MustNew(core.Config{
		Machine:      m,
		Degree:       degree,
		LeWI:         lewi,
		DROM:         drom,
		GlobalPeriod: 400 * ompsscluster.Millisecond,
		Seed:         1,
	})
	if err := rt.Run(p.Main()); err != nil {
		panic(err)
	}
	return rt.Elapsed().Seconds()
}

func optimal(nodes int) float64 {
	m := cluster.New(nodes, coresPerNode, cluster.DefaultNet())
	return problem(nodes).OptimalTime(m).Seconds()
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
