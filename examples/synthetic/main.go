// Synthetic-benchmark example (§6.2 of the paper): sweep the application
// imbalance on 8 nodes and print the per-iteration time for the baseline
// and for offloading degrees 2-4, against the perfect-balance bound —
// a single-machine rendition of Figure 8(b).
package main

import (
	"fmt"

	"ompsscluster"
	"ompsscluster/internal/cluster"
	"ompsscluster/internal/core"
	"ompsscluster/internal/workloads/synthetic"
)

const (
	nodes        = 8
	coresPerNode = 16
)

func main() {
	fmt.Println("synthetic benchmark, 8 nodes, 1 apprank/node, LeWI + global DROM")
	fmt.Printf("%-10s %-10s %-10s %-10s %-10s %-10s\n",
		"imbalance", "baseline", "degree2", "degree3", "degree4", "perfect")
	for _, imb := range []float64{1.0, 1.5, 2.0, 2.5, 3.0, 4.0} {
		base := run(imb, 1, core.DROMLocal)
		d2 := run(imb, 2, core.DROMGlobal)
		d3 := run(imb, 3, core.DROMGlobal)
		d4 := run(imb, 4, core.DROMGlobal)
		opt := optimal(imb)
		fmt.Printf("%-10.1f %-10.3f %-10.3f %-10.3f %-10.3f %-10.3f\n",
			imb, base, d2, d3, d4, opt)
	}
}

func benchConfig(imb float64) synthetic.Config {
	return synthetic.Config{
		Imbalance:    imb,
		TasksPerCore: 30,
		MeanTask:     50 * ompsscluster.Millisecond,
		Iterations:   4,
		Jitter:       0.1,
		Seed:         1,
	}
}

// run returns the steady per-iteration time in seconds.
func run(imb float64, degree int, drom core.DROMMode) float64 {
	m := cluster.New(nodes, coresPerNode, cluster.DefaultNet())
	b := synthetic.New(benchConfig(imb), nodes, coresPerNode)
	rt := core.MustNew(core.Config{
		Machine:      m,
		Degree:       degree,
		LeWI:         true,
		DROM:         drom,
		GlobalPeriod: 400 * ompsscluster.Millisecond,
		Seed:         1,
	})
	if err := rt.Run(b.Main()); err != nil {
		panic(err)
	}
	return b.SteadyIterTime(1).Seconds()
}

func optimal(imb float64) float64 {
	m := cluster.New(nodes, coresPerNode, cluster.DefaultNet())
	b := synthetic.New(benchConfig(imb), nodes, coresPerNode)
	return (b.OptimalTime(m) / 4).Seconds()
}
