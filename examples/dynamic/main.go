// Dynamic work spreading example (the paper's §5.2 future-work
// extension): start every apprank with no helpers (degree 1) and let the
// runtime grow the helper graph where queue pressure demands it. Compare
// against static degrees on an imbalanced workload.
package main

import (
	"fmt"

	"ompsscluster"
)

const (
	nodes        = 8
	coresPerNode = 12
)

func main() {
	fmt.Println("dynamic work spreading vs static degrees, 8 nodes, imbalance ~3")
	s1, _ := run(1, false)
	s4, _ := run(4, false)
	dyn, grown := run(1, true)
	fmt.Printf("static degree 1:  %v\n", s1)
	fmt.Printf("static degree 4:  %v\n", s4)
	fmt.Printf("dynamic (from 1): %v  (%d helpers grown at runtime)\n", dyn, grown)
}

func run(degree int, dynamic bool) (ompsscluster.Duration, int) {
	machine := ompsscluster.NewMachine(nodes, coresPerNode)
	cfg := ompsscluster.Config{
		Machine:      machine,
		Degree:       degree,
		LeWI:         true,
		DROM:         ompsscluster.DROMGlobal,
		GlobalPeriod: 100 * ompsscluster.Millisecond,
	}
	if dynamic {
		cfg.Dynamic = ompsscluster.DynamicConfig{
			Enabled:    true,
			GrowPeriod: 50 * ompsscluster.Millisecond,
		}
	}
	rt := ompsscluster.MustNew(cfg)
	err := rt.Run(func(app *ompsscluster.App) {
		// Rank 0 carries three times the average load.
		tasks := 60
		if app.Rank() == 0 {
			tasks = 60 * 3 * nodes / (nodes + 2) // heaviest rank
		}
		for iter := 0; iter < 4; iter++ {
			for i := 0; i < tasks; i++ {
				buf := app.Alloc(16 << 10)
				app.Submit(ompsscluster.TaskSpec{
					Label:       "kernel",
					Work:        20 * ompsscluster.Millisecond,
					Accesses:    []ompsscluster.Access{{Region: buf, Mode: ompsscluster.InOut}},
					Offloadable: true,
				})
			}
			app.TaskWait()
			app.Barrier()
		}
	})
	if err != nil {
		panic(err)
	}
	return rt.Elapsed(), rt.HelpersGrown()
}
