// Co-scheduling example: DLB's defining capability (§3.3 of the paper)
// is balancing cores among processes "from either the same or different
// applications". Two independent applications — a heavy batch solver and
// a light analysis job — share the same nodes; LeWI and the global DROM
// policy move cores between them as their demands change.
package main

import (
	"fmt"

	"ompsscluster"
)

const (
	nodes        = 4
	coresPerNode = 12
)

func main() {
	fmt.Println("two applications sharing 4 nodes: heavy solver + light analysis")
	static := run(false, ompsscluster.DROMOff)
	balanced := run(true, ompsscluster.DROMGlobal)
	fmt.Printf("heavy app, static split:  %v\n", static)
	fmt.Printf("heavy app, LeWI + DROM:   %v  (%.1f%% faster)\n",
		balanced, 100*(1-float64(balanced)/float64(static)))
}

// run co-schedules the two applications and returns the heavy one's
// completion time.
func run(lewi bool, drom ompsscluster.DROMMode) ompsscluster.Duration {
	var heavyDone ompsscluster.Time
	appMain := func(tasks int, record bool) func(app *ompsscluster.App) {
		return func(app *ompsscluster.App) {
			for iter := 0; iter < 3; iter++ {
				for i := 0; i < tasks; i++ {
					buf := app.Alloc(32 << 10)
					app.Submit(ompsscluster.TaskSpec{
						Label:       "kernel",
						Work:        15 * ompsscluster.Millisecond,
						Accesses:    []ompsscluster.Access{{Region: buf, Mode: ompsscluster.InOut}},
						Offloadable: true,
					})
				}
				app.TaskWait()
				app.Barrier()
			}
			if record && app.Rank() == 0 {
				heavyDone = app.Now()
			}
		}
	}
	rt, err := ompsscluster.NewMulti(ompsscluster.Config{
		Machine:      ompsscluster.NewMachine(nodes, coresPerNode),
		LeWI:         lewi,
		DROM:         drom,
		GlobalPeriod: 50 * ompsscluster.Millisecond,
	}, []ompsscluster.AppSpec{
		{Name: "solver", RanksPerNode: 1, Degree: 2, Main: appMain(180, true)},
		{Name: "analysis", RanksPerNode: 1, Degree: 2, Main: appMain(20, false)},
	})
	if err != nil {
		panic(err)
	}
	if err := rt.RunAll(); err != nil {
		panic(err)
	}
	return ompsscluster.Duration(heavyDone)
}
