// Stencil example: a real 2-D Jacobi heat solver with MPI halo exchange
// and per-block tasks. Rank 0's cells cost three times more (local
// refinement); transparent offloading absorbs the hotspot.
package main

import (
	"fmt"

	"ompsscluster"
	"ompsscluster/internal/cluster"
	"ompsscluster/internal/core"
	"ompsscluster/internal/workloads/stencil"
)

const (
	ranks        = 8
	coresPerNode = 8
)

func main() {
	fmt.Println("2-D Jacobi with halo exchange, 8 ranks, hotspot on rank 0 (3x cost)")
	cfg := stencil.Config{
		RowsPerRank:   64,
		Cols:          128,
		BlockRows:     1,
		CostPerCell:   20 * ompsscluster.Microsecond,
		Iterations:    10,
		HotspotRank:   0,
		HotspotFactor: 3,
		TopBoundary:   100,
	}
	base, bRes := run(cfg, 1, false, core.DROMOff)
	bal, _ := run(cfg, 3, true, core.DROMGlobal)
	fmt.Printf("baseline:            %v\n", base)
	fmt.Printf("degree 3 + LeWI+DROM: %v  (%.1f%% faster)\n", bal, 100*(1-float64(bal)/float64(base)))
	fmt.Printf("final residual:      %.6f (decreasing: physics unchanged by balancing)\n",
		bRes[len(bRes)-1])
}

func run(cfg stencil.Config, degree int, lewi bool, drom core.DROMMode) (ompsscluster.Duration, []float64) {
	m := cluster.New(ranks, coresPerNode, cluster.DefaultNet())
	b := stencil.New(cfg, ranks)
	rt := core.MustNew(core.Config{
		Machine:      m,
		Degree:       degree,
		LeWI:         lewi,
		DROM:         drom,
		GlobalPeriod: 20 * ompsscluster.Millisecond,
		Seed:         1,
	})
	if err := rt.Run(b.Main()); err != nil {
		panic(err)
	}
	return rt.Elapsed(), b.Residuals()
}
