// Quickstart: the smallest MPI+OmpSs-2@Cluster program. Two appranks on
// two nodes; apprank 0 is overloaded; LeWI plus the global DROM policy
// spread its tasks onto node 1 transparently.
package main

import (
	"fmt"

	"ompsscluster"
)

func main() {
	machine := ompsscluster.NewMachine(2, 8) // 2 nodes x 8 cores

	// Baseline: no offloading, no DLB.
	baseline := run(machine, ompsscluster.Config{
		Machine: machine,
		Degree:  1,
	})

	// Balanced: each apprank may execute tasks on both nodes (degree 2),
	// LeWI lends idle cores, the global solver reassigns ownership.
	machine2 := ompsscluster.NewMachine(2, 8)
	balanced := run(machine2, ompsscluster.Config{
		Machine:      machine2,
		Degree:       2,
		LeWI:         true,
		DROM:         ompsscluster.DROMGlobal,
		GlobalPeriod: 100 * ompsscluster.Millisecond,
	})

	fmt.Printf("baseline (no offloading): %v\n", baseline)
	fmt.Printf("LeWI + global DROM:       %v\n", balanced)
	fmt.Printf("speedup:                  %.2fx\n", float64(baseline)/float64(balanced))
}

// run executes the example workload and returns the time-to-solution.
func run(machine *ompsscluster.Machine, cfg ompsscluster.Config) ompsscluster.Duration {
	rt := ompsscluster.MustNew(cfg)
	err := rt.Run(func(app *ompsscluster.App) {
		// Apprank 0 has four times the work of apprank 1.
		tasks := 40
		if app.Rank() == 0 {
			tasks = 160
		}
		for i := 0; i < tasks; i++ {
			buf := app.Alloc(64 << 10)
			app.Submit(ompsscluster.TaskSpec{
				Label:       "kernel",
				Work:        20 * ompsscluster.Millisecond,
				Accesses:    []ompsscluster.Access{{Region: buf, Mode: ompsscluster.InOut}},
				Offloadable: true,
			})
		}
		app.TaskWait()
		app.Barrier()
	})
	if err != nil {
		panic(err)
	}
	return rt.Elapsed()
}
