// n-body example: a real Barnes-Hut simulation with Orthogonal Recursive
// Bisection on a Nord3-like machine whose node 0 runs at 1.8 GHz while
// the rest run at 3.0 GHz. ORB balances interaction counts, not time, so
// the slow node stays the bottleneck until tasks are offloaded — the
// scenario of Figure 6(c).
package main

import (
	"fmt"

	"ompsscluster"
	"ompsscluster/internal/cluster"
	"ompsscluster/internal/core"
	"ompsscluster/internal/nbody"
)

const (
	nodes        = 8
	coresPerNode = 16
	rpn          = 2
)

func main() {
	fmt.Println("Barnes-Hut n-body with ORB, 2 appranks/node, node 0 at 0.6x speed")
	base := run(1, false, core.DROMOff)
	dlb := run(1, true, core.DROMLocal)
	deg3 := run(3, true, core.DROMGlobal)
	fmt.Printf("baseline:             %.3f s/step\n", base)
	fmt.Printf("single-node DLB:      %.3f s/step (%.1f%% reduction)\n", dlb, 100*(1-dlb/base))
	fmt.Printf("offloading degree 3:  %.3f s/step (a further %.1f%% of baseline)\n",
		deg3, 100*(dlb-deg3)/base)
}

func run(degree int, lewi bool, drom core.DROMMode) float64 {
	m := cluster.New(nodes, coresPerNode, cluster.DefaultNet())
	m.SetSpeed(0, 0.6)
	cs := nbody.NewClusterSim(nbody.AdapterConfig{
		Bodies:             192 * nodes * rpn,
		Steps:              8,
		ChunksPerRank:      8 * coresPerNode / rpn,
		CostPerInteraction: 30 * ompsscluster.Microsecond,
		TreeCostPerBody:    20 * ompsscluster.Nanosecond,
		Theta:              0.5,
		Seed:               1,
	})
	rt := core.MustNew(core.Config{
		Machine:         m,
		AppranksPerNode: rpn,
		Degree:          degree,
		LeWI:            lewi,
		DROM:            drom,
		GlobalPeriod:    200 * ompsscluster.Millisecond,
		Seed:            1,
	})
	if err := rt.Run(cs.Main()); err != nil {
		panic(err)
	}
	ends := cs.StepEnds()
	// Average over the post-warm-up steps.
	warm := 2
	return (ends[len(ends)-1] - ends[warm-1]).Seconds() / float64(len(ends)-warm)
}
