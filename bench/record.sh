#!/bin/sh
# Record the event-engine throughput of a standard run into BENCH_engine.json
# and per-figure wall-clock timings of the full quick sweep into
# BENCH_sim.json, so the perf trajectory is tracked across PRs.
#
# Usage: bench/record.sh [output.json] [experiment] [scale] [sim-output.json] [obs-output.json] [faults-output.json] [policy-output.json]
#
# Defaults run the fig8 sweep at quick scale, which exercises the MPI
# message layer, the task scheduler, and the DROM policies in a few
# hundred milliseconds. Compare events_per_sec across commits; the
# deterministic counters (events, fast_path_events, heap_pushes,
# registry_hiwater) must be stable for a given experiment+scale
# regardless of host or parallelism. The BENCH_sim.json pass runs every
# figure at quick scale and records wall_seconds per figure — the
# end-to-end simulator cost, host-dependent but comparable on one
# machine across commits — plus the fig8 sweep at default scale under
# every engine (pooled continuation records, legacy closures, and the
# partitioned parallel engine at 2/4/8 host workers), with the engines'
# park/wake, peak-goroutine and partition-scheduler counters. The BENCH_obs.json pass times a quick fig9 run
# with structured tracing off and on, recording the observability
# overhead and the exported trace size, plus the fig8 default sweep with
# full TALP/POP accounting off and on (-popaccount) — the accounting
# budget is <=2% wall-clock overhead on that sweep, pinned by the
# pop_overhead_fraction field. The BENCH_faults.json pass times
# the quick resilience sweep against the fault-free fig8 point — the
# wall-clock cost of the fault machinery end to end. The
# BENCH_policy.json pass times the quick self-scheduling policy sweep —
# the wall-clock cost of the chunk-server scheduling path.
set -eu

out=${1:-BENCH_engine.json}
exp=${2:-fig8}
scale=${3:-quick}
simout=${4:-BENCH_sim.json}
obsout=${5:-BENCH_obs.json}
faultsout=${6:-BENCH_faults.json}
policyout=${7:-BENCH_policy.json}

cd "$(dirname "$0")/.."

# Timestamps come from a tiny Go helper: `date +%s.%N` is GNU-specific
# (BSD/macOS date prints a literal "%N") and the Go toolchain is the one
# dependency this repo already requires.
go build -o /tmp/bench_now ./bench/now
now() { /tmp/bench_now; }

go run ./cmd/lbsim -exp "$exp" -scale "$scale" -enginestats -enginejson "$out" >/dev/null
echo "bench: wrote $out"

# Build once so the timed runs measure the simulator, not the compiler.
go build -o /tmp/lbsim_bench ./cmd/lbsim

# BENCH_sim.json: the quick full sweep, plus fig8 at default scale under
# every engine (continuation vs legacy closures vs the partitioned
# parallel engine at 2, 4 and 8 host workers; compare wall_seconds
# between the sections — the parallel numbers only beat sequential on a
# multi-core host, single-core hosts record the coordination overhead).
/tmp/lbsim_bench -all -scale quick -format csv -simjson /tmp/bench_quick_all.json >/dev/null
/tmp/lbsim_bench -exp fig8 -scale default -format csv \
    -simjson /tmp/bench_fig8_cont.json >/dev/null
/tmp/lbsim_bench -exp fig8 -scale default -format csv -engine goroutine \
    -simjson /tmp/bench_fig8_goro.json >/dev/null
for w in 2 4 8; do
    /tmp/lbsim_bench -exp fig8 -scale default -format csv \
        -engine parallel -simworkers "$w" \
        -simjson "/tmp/bench_fig8_par$w.json" >/dev/null
done
{
    printf '{\n"quick_all": '
    cat /tmp/bench_quick_all.json
    printf ',\n"fig8_default": {\n"continuation": '
    cat /tmp/bench_fig8_cont.json
    printf ',\n"goroutine": '
    cat /tmp/bench_fig8_goro.json
    for w in 2 4 8; do
        printf ',\n"parallel_w%s": ' "$w"
        cat "/tmp/bench_fig8_par$w.json"
    done
    printf '}\n}\n'
} > "$simout"
rm -f /tmp/bench_quick_all.json /tmp/bench_fig8_cont.json /tmp/bench_fig8_goro.json \
    /tmp/bench_fig8_par2.json /tmp/bench_fig8_par4.json /tmp/bench_fig8_par8.json
echo "bench: wrote $simout"
t0=$(now)
/tmp/lbsim_bench -exp fig9 -scale quick >/dev/null
t1=$(now)
/tmp/lbsim_bench -exp fig9 -scale quick \
    -trace /tmp/bench_obs_trace.json -metricsjson /tmp/bench_obs_metrics.json
t2=$(now)
tracebytes=$(wc -c < /tmp/bench_obs_trace.json)
# POP accounting overhead: the fig8 default sweep without and with full
# TALP/POP accounting. The figure output is byte-identical either way;
# the wall-clock delta is the accounting cost (budget: <=2%).
p0=$(now)
/tmp/lbsim_bench -exp fig8 -scale default -format csv >/dev/null
p1=$(now)
/tmp/lbsim_bench -exp fig8 -scale default -format csv -popaccount >/dev/null
p2=$(now)
awk -v off="$t0 $t1" -v on="$t1 $t2" -v bytes="$tracebytes" \
    -v popoff="$p0 $p1" -v popon="$p1 $p2" 'BEGIN {
    split(off, a, " "); split(on, b, " ");
    split(popoff, c, " "); split(popon, d, " ");
    printf "{\n  \"experiment\": \"fig9\",\n  \"scale\": \"quick\",\n";
    printf "  \"tracing_off_seconds\": %.3f,\n", a[2] - a[1];
    printf "  \"tracing_on_seconds\": %.3f,\n", b[2] - b[1];
    printf "  \"trace_bytes\": %d,\n", bytes;
    poff = c[2] - c[1]; pon = d[2] - d[1];
    frac = poff > 0 ? (pon - poff) / poff : 0;
    printf "  \"pop_experiment\": \"fig8\",\n  \"pop_scale\": \"default\",\n";
    printf "  \"pop_off_seconds\": %.3f,\n", poff;
    printf "  \"pop_on_seconds\": %.3f,\n", pon;
    printf "  \"pop_overhead_fraction\": %.4f\n}\n", frac;
}' > "$obsout"
rm -f /tmp/bench_obs_trace.json /tmp/bench_obs_metrics.json
echo "bench: wrote $obsout"

t3=$(now)
/tmp/lbsim_bench -exp resilience -scale quick >/dev/null
t4=$(now)
awk -v sweep="$t3 $t4" 'BEGIN {
    split(sweep, s, " ");
    printf "{\n  \"experiment\": \"resilience\",\n  \"scale\": \"quick\",\n";
    printf "  \"sweep_wall_seconds\": %.3f\n}\n", s[2] - s[1];
}' > "$faultsout"
echo "bench: wrote $faultsout"

t5=$(now)
/tmp/lbsim_bench -exp policies -scale quick >/dev/null
t6=$(now)
awk -v sweep="$t5 $t6" 'BEGIN {
    split(sweep, s, " ");
    printf "{\n  \"experiment\": \"policies\",\n  \"scale\": \"quick\",\n";
    printf "  \"sweep_wall_seconds\": %.3f\n}\n", s[2] - s[1];
}' > "$policyout"
rm -f /tmp/lbsim_bench /tmp/bench_now
echo "bench: wrote $policyout"
