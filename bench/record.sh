#!/bin/sh
# Record the event-engine throughput of a standard run into BENCH_engine.json
# so the perf trajectory is tracked across PRs.
#
# Usage: bench/record.sh [output.json] [experiment] [scale]
#
# Defaults run the fig8 sweep at quick scale, which exercises the MPI
# message layer, the task scheduler, and the DROM policies in a few
# hundred milliseconds. Compare events_per_sec across commits; the
# deterministic counters (events, fast_path_events, heap_pushes) must be
# stable for a given experiment+scale regardless of host or parallelism.
set -eu

out=${1:-BENCH_engine.json}
exp=${2:-fig8}
scale=${3:-quick}

cd "$(dirname "$0")/.."

go run ./cmd/lbsim -exp "$exp" -scale "$scale" -enginestats -enginejson "$out" >/dev/null
echo "bench: wrote $out"
