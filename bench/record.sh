#!/bin/sh
# Record the event-engine throughput of a standard run into BENCH_engine.json
# and per-figure wall-clock timings of the full quick sweep into
# BENCH_sim.json, so the perf trajectory is tracked across PRs.
#
# Usage: bench/record.sh [output.json] [experiment] [scale] [sim-output.json]
#
# Defaults run the fig8 sweep at quick scale, which exercises the MPI
# message layer, the task scheduler, and the DROM policies in a few
# hundred milliseconds. Compare events_per_sec across commits; the
# deterministic counters (events, fast_path_events, heap_pushes,
# registry_hiwater) must be stable for a given experiment+scale
# regardless of host or parallelism. The BENCH_sim.json pass runs every
# figure at quick scale and records wall_seconds per figure — the
# end-to-end simulator cost, host-dependent but comparable on one
# machine across commits.
set -eu

out=${1:-BENCH_engine.json}
exp=${2:-fig8}
scale=${3:-quick}
simout=${4:-BENCH_sim.json}

cd "$(dirname "$0")/.."

go run ./cmd/lbsim -exp "$exp" -scale "$scale" -enginestats -enginejson "$out" >/dev/null
echo "bench: wrote $out"

go run ./cmd/lbsim -all -scale quick -format csv -simjson "$simout" >/dev/null
echo "bench: wrote $simout"
