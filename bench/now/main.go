// Command now prints the current time as fractional Unix seconds with
// nanosecond precision ("1723111845.123456789"). bench/record.sh uses it
// to time runs portably: `date +%s.%N` is a GNU coreutils extension that
// prints a literal "%N" on BSD/macOS date, silently corrupting the
// computed durations.
package main

import (
	"fmt"
	"time"
)

func main() {
	n := time.Now()
	fmt.Printf("%d.%09d\n", n.Unix(), n.Nanosecond())
}
