package ompsscluster_test

// One benchmark per figure of the paper's evaluation (§7), plus the
// headline numbers and the design-choice ablations. Each benchmark runs
// the full experiment and reports the figure's key quantities as custom
// metrics, so
//
//	go test -bench=. -benchmem
//
// regenerates every table/figure of the paper at the benchmark scale.
// Set LBSIM_BENCH_SCALE=default or =paper for larger (slower) runs; the
// default is the quick scale, which preserves every comparison's shape.

import (
	"os"
	"runtime"
	"testing"

	"ompsscluster/internal/expander"
	"ompsscluster/internal/experiments"
)

func benchScale() experiments.Scale {
	switch os.Getenv("LBSIM_BENCH_SCALE") {
	case "default":
		return experiments.DefaultScale()
	case "paper":
		return experiments.PaperScale()
	}
	return experiments.QuickScale()
}

// runFigure executes the experiment b.N times and reports series values
// as metrics on the last result.
func runFigure(b *testing.B, id string, metrics func(*testing.B, *experiments.Result)) {
	b.Helper()
	sc := benchScale()
	var res *experiments.Result
	for i := 0; i < b.N; i++ {
		r, err := experiments.ByID(id, sc)
		if err != nil {
			b.Fatal(err)
		}
		res = r
	}
	if metrics != nil {
		metrics(b, res)
	}
	if verbose() {
		b.Log("\n" + res.Table())
	}
}

func verbose() bool { return os.Getenv("LBSIM_BENCH_VERBOSE") != "" }

// BenchmarkFig5LocalVsGlobalTraces regenerates Figure 5: the local
// policy balances but over-offloads in the balanced phase; the global
// policy minimises offloading.
func BenchmarkFig5LocalVsGlobalTraces(b *testing.B) {
	runFigure(b, "fig5", nil)
}

// BenchmarkFig6aMicroPPOneApprank regenerates Figure 6(a): MicroPP weak
// scaling with one apprank per node under the global policy.
func BenchmarkFig6aMicroPPOneApprank(b *testing.B) {
	runFigure(b, "fig6a", func(b *testing.B, r *experiments.Result) {
		reportReduction(b, r, 4)
	})
}

// BenchmarkFig6bMicroPPTwoAppranks regenerates Figure 6(b): two appranks
// per node.
func BenchmarkFig6bMicroPPTwoAppranks(b *testing.B) {
	runFigure(b, "fig6b", func(b *testing.B, r *experiments.Result) {
		reportReduction(b, r, 4)
	})
}

// reportReduction reports degree-4's time reduction versus DLB at the
// largest node count as a metric.
func reportReduction(b *testing.B, r *experiments.Result, degree int) {
	dlb := r.Get("dlb (degree 1)")
	deg := r.Get("degree 4")
	if dlb == nil || deg == nil || len(deg.Points) == 0 {
		return
	}
	last := deg.Points[len(deg.Points)-1]
	if base, ok := dlb.Lookup(last.X); ok && base > 0 {
		b.ReportMetric(100*(1-last.Y/base), "%reduction-vs-dlb")
	}
}

// BenchmarkFig6cNbodySlowNode regenerates Figure 6(c): Barnes-Hut with
// ORB on a machine with one slow node.
func BenchmarkFig6cNbodySlowNode(b *testing.B) {
	runFigure(b, "fig6c", func(b *testing.B, r *experiments.Result) {
		base := r.Get("baseline")
		deg3 := r.Get("degree 3")
		if base == nil || deg3 == nil || len(deg3.Points) == 0 {
			return
		}
		last := deg3.Points[len(deg3.Points)-1]
		if y, ok := base.Lookup(last.X); ok && y > 0 {
			b.ReportMetric(100*(1-last.Y/y), "%reduction-vs-baseline")
		}
	})
}

// BenchmarkFig7LocalPolicy regenerates Figure 7: the MicroPP sweeps under
// the local allocation policy.
func BenchmarkFig7LocalPolicy(b *testing.B) {
	runFigure(b, "fig7", nil)
}

// BenchmarkFig8SyntheticSweep regenerates Figure 8: per-iteration time
// versus imbalance on 4, 8 and 64 nodes.
func BenchmarkFig8SyntheticSweep(b *testing.B) {
	runFigure(b, "fig8", func(b *testing.B, r *experiments.Result) {
		deg4 := r.Get("8n degree 4")
		perfect := r.Get("8n perfect")
		if deg4 == nil || perfect == nil {
			deg4 = r.Get("4n degree 4")
			perfect = r.Get("4n perfect")
		}
		if deg4 != nil && perfect != nil {
			d, dok := deg4.Lookup(2.0)
			p, pok := perfect.Lookup(2.0)
			if dok && pok && p > 0 {
				b.ReportMetric(100*(d/p-1), "%above-perfect@imb2")
			}
		}
	})
}

// BenchmarkFig9LewiDromTraces regenerates Figure 9: MicroPP with and
// without LeWI and DROM on four nodes with degree two.
func BenchmarkFig9LewiDromTraces(b *testing.B) {
	runFigure(b, "fig9", func(b *testing.B, r *experiments.Result) {
		base := r.Get("baseline")
		lewi := r.Get("lewi-only")
		drom := r.Get("drom-only")
		if base != nil && lewi != nil && drom != nil {
			b.ReportMetric(100*lewi.Points[0].Y/base.Points[0].Y, "%lewi-of-baseline")
			b.ReportMetric(100*drom.Points[0].Y/base.Points[0].Y, "%drom-of-baseline")
		}
	})
}

// BenchmarkFig10SlowNodeSweep regenerates Figure 10: the synthetic
// benchmark with one node three times slower.
func BenchmarkFig10SlowNodeSweep(b *testing.B) {
	runFigure(b, "fig10", nil)
}

// BenchmarkFig11Convergence regenerates Figure 11: convergence of the
// node-level imbalance under the policy combinations.
func BenchmarkFig11Convergence(b *testing.B) {
	runFigure(b, "fig11", nil)
}

// BenchmarkHeadlineNumbers reproduces the abstract's three claims.
func BenchmarkHeadlineNumbers(b *testing.B) {
	runFigure(b, "headline", func(b *testing.B, r *experiments.Result) {
		if s := r.Get("micropp reduction vs dlb %"); s != nil {
			b.ReportMetric(s.Points[0].Y, "%micropp-reduction")
		}
		if s := r.Get("synthetic above perfect %"); s != nil {
			b.ReportMetric(s.Points[0].Y, "%synthetic-above-perfect")
		}
		if s := r.Get("nbody further reduction %"); s != nil {
			b.ReportMetric(s.Points[0].Y, "%nbody-further-reduction")
		}
	})
}

// BenchmarkAblationTasksPerCore sweeps the scheduling threshold (§5.5).
func BenchmarkAblationTasksPerCore(b *testing.B) {
	runFigure(b, "ablation-taskspc", nil)
}

// BenchmarkAblationCountBorrowed toggles counting borrowed cores in the
// scheduling threshold (§5.5's design decision).
func BenchmarkAblationCountBorrowed(b *testing.B) {
	runFigure(b, "ablation-borrowed", nil)
}

// BenchmarkAblationGraphShape compares expander, ring and full helper
// graphs (§5.2's design decision).
func BenchmarkAblationGraphShape(b *testing.B) {
	runFigure(b, "ablation-graphshape", nil)
}

// BenchmarkAblationGlobalPeriod sweeps the global solver period (§5.4.2).
func BenchmarkAblationGlobalPeriod(b *testing.B) {
	runFigure(b, "ablation-period", nil)
}

// BenchmarkAblationIncentive toggles the own-node incentive (§5.4.2).
func BenchmarkAblationIncentive(b *testing.B) {
	runFigure(b, "ablation-incentive", nil)
}

// BenchmarkExtDynamicSpreading evaluates the paper's sketched dynamic
// work spreading extension (§5.2) against static degrees.
func BenchmarkExtDynamicSpreading(b *testing.B) {
	runFigure(b, "ext-dynamic", nil)
}

// BenchmarkExtPartitionedSolver evaluates the partitioned global solver
// (§5.4.2's prescription for >32 nodes) with modelled solve cost.
func BenchmarkExtPartitionedSolver(b *testing.B) {
	runFigure(b, "ext-partition", nil)
}

// BenchmarkAblationORBWeights runs the ORB-weighting counterfactual for
// the n-body slow-node scenario.
func BenchmarkAblationORBWeights(b *testing.B) {
	runFigure(b, "ablation-orbweights", nil)
}

// BenchmarkExtDVFS throttles a node mid-run (the introduction's DVFS /
// thermal motivation) and measures re-convergence.
func BenchmarkExtDVFS(b *testing.B) {
	runFigure(b, "ext-dvfs", nil)
}

// BenchmarkSweepParallelism runs the Figure 8 sweep (the widest
// configuration fan-out) sequentially and at full parallelism, reporting
// the wall-clock ratio as speedup-x. Independent simulator runs each own
// a simtime.Env, so the sweep scales with cores; on a single-core machine
// the two sub-benchmarks simply report comparable times.
func BenchmarkSweepParallelism(b *testing.B) {
	cpus := runtime.NumCPU()
	var seq float64
	run := func(name string, workers int) {
		b.Run(name, func(b *testing.B) {
			sc := benchScale()
			sc.Parallel = workers
			sc.Graphs = expander.NewStore("")
			for i := 0; i < b.N; i++ {
				if _, err := experiments.ByID("fig8", sc); err != nil {
					b.Fatal(err)
				}
			}
			perOp := float64(b.Elapsed().Nanoseconds()) / float64(b.N)
			if workers == 1 {
				seq = perOp
			} else if seq > 0 && perOp > 0 {
				b.ReportMetric(seq/perOp, "speedup-x")
				b.ReportMetric(float64(cpus), "cpus")
			}
		})
	}
	workers := cpus
	if workers < 2 {
		workers = 2 // exercise the concurrent path even on one core
	}
	run("sequential", 1)
	run("parallel", workers)
}
