module ompsscluster

go 1.22
