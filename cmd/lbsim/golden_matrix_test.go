package main

import (
	"os"
	"path/filepath"
	"testing"
)

// matrixCells are the engine configurations every golden artifact must
// agree across: the default sequential engine and the partitioned
// parallel engine at one and at eight host workers. The continuation
// cell renders the reference bytes; every other cell must match them
// exactly.
var matrixCells = []struct {
	name string
	args []string
}{
	{"continuation", []string{"-engine", "continuation"}},
	{"parallel-w1", []string{"-engine", "parallel", "-simworkers", "1"}},
	{"parallel-w8", []string{"-engine", "parallel", "-simworkers", "8"}},
}

// TestGoldenMatrixFigureCSVs renders three figures with different
// engine-eligibility profiles across the matrix: fig5 (MicroPP), fig9
// (synthetic scaling) and resilience (fault sweeps under degree 3, which
// the parallel gate rejects run by run). CSV bytes must be identical in
// every cell.
func TestGoldenMatrixFigureCSVs(t *testing.T) {
	for _, id := range []string{"fig5", "fig9", "resilience"} {
		var want string
		for _, cell := range matrixCells {
			args := append([]string{"-exp", id, "-scale", "quick", "-format", "csv"}, cell.args...)
			code, out, stderr := exec(t, args...)
			if code != 0 {
				t.Fatalf("%s/%s: exit = %d, stderr = %q", id, cell.name, code, stderr)
			}
			if out == "" {
				t.Fatalf("%s/%s: empty CSV", id, cell.name)
			}
			if cell.name == "continuation" {
				want = out
				continue
			}
			if out != want {
				t.Errorf("%s CSV differs in cell %s:\nwant:\n%s\ngot:\n%s", id, cell.name, want, out)
			}
		}
	}
}

// TestGoldenMatrixFaultPreset runs the fault-demo path (a preset plan
// with its typed error notes) across the matrix.
func TestGoldenMatrixFaultPreset(t *testing.T) {
	var want string
	for _, cell := range matrixCells {
		args := append([]string{"-faults", "storm", "-scale", "quick", "-format", "csv"}, cell.args...)
		code, out, stderr := exec(t, args...)
		if code != 0 {
			t.Fatalf("%s: exit = %d, stderr = %q", cell.name, code, stderr)
		}
		if cell.name == "continuation" {
			want = out
			continue
		}
		if out != want {
			t.Errorf("fault-preset output differs in cell %s:\nwant:\n%s\ngot:\n%s", cell.name, want, out)
		}
	}
}

// TestGoldenMatrixTraces pins the Chrome trace and metrics JSON across
// the matrix. The traced variants attach a Recorder, which the
// eligibility gate rejects — under -engine parallel these runs fall
// back to sequential execution — so identity here pins the gate itself:
// the parallel flag must be a strict no-op on traced artifacts, not an
// engine that silently reorders the event stream a trace depends on.
func TestGoldenMatrixTraces(t *testing.T) {
	for _, id := range []string{"fig5", "fig9"} {
		dir := t.TempDir()
		var wantTrace, wantMetrics []byte
		for _, cell := range matrixCells {
			tracePath := filepath.Join(dir, cell.name+"-trace.json")
			metricsPath := filepath.Join(dir, cell.name+"-metrics.json")
			args := append([]string{"-exp", id, "-scale", "quick",
				"-trace", tracePath, "-metricsjson", metricsPath}, cell.args...)
			code, _, stderr := exec(t, args...)
			if code != 0 {
				t.Fatalf("%s/%s: exit = %d, stderr = %q", id, cell.name, code, stderr)
			}
			gotTrace, err := os.ReadFile(tracePath)
			if err != nil {
				t.Fatal(err)
			}
			gotMetrics, err := os.ReadFile(metricsPath)
			if err != nil {
				t.Fatal(err)
			}
			if len(gotTrace) == 0 || len(gotMetrics) == 0 {
				t.Fatalf("%s/%s: empty trace or metrics artifact", id, cell.name)
			}
			if cell.name == "continuation" {
				wantTrace, wantMetrics = gotTrace, gotMetrics
				continue
			}
			if string(gotTrace) != string(wantTrace) {
				t.Errorf("%s Chrome trace differs in cell %s", id, cell.name)
			}
			if string(gotMetrics) != string(wantMetrics) {
				t.Errorf("%s metrics JSON differs in cell %s", id, cell.name)
			}
		}
	}
}
