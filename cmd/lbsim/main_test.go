package main

import (
	"os"
	"path/filepath"
	"runtime/debug"
	"strings"
	"testing"
)

// exec runs the command line and captures exit code, stdout, and stderr.
func exec(t *testing.T, args ...string) (int, string, string) {
	t.Helper()
	var out, errb strings.Builder
	code := run(args, &out, &errb)
	return code, out.String(), errb.String()
}

func TestRunUnknownFlag(t *testing.T) {
	code, _, stderr := exec(t, "-no-such-flag")
	if code != 2 {
		t.Errorf("exit = %d, want 2", code)
	}
	if !strings.Contains(stderr, "flag provided but not defined") {
		t.Errorf("stderr missing flag diagnostic: %q", stderr)
	}
}

func TestRunUnknownScale(t *testing.T) {
	code, _, stderr := exec(t, "-exp", "fig8", "-scale", "huge")
	if code != 1 {
		t.Errorf("exit = %d, want 1", code)
	}
	if !strings.Contains(stderr, `unknown scale "huge"`) {
		t.Errorf("stderr = %q", stderr)
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	code, _, stderr := exec(t, "-exp", "nope", "-scale", "quick")
	if code != 1 {
		t.Errorf("exit = %d, want 1", code)
	}
	if !strings.Contains(stderr, `unknown id "nope"`) {
		t.Errorf("stderr = %q", stderr)
	}
}

func TestRunUnreadableFaultPlan(t *testing.T) {
	code, _, stderr := exec(t, "-faults", "/no/such/plan.json", "-scale", "quick")
	if code != 1 {
		t.Errorf("exit = %d, want 1", code)
	}
	if !strings.Contains(stderr, "neither a readable plan file") {
		t.Errorf("stderr = %q", stderr)
	}
}

func TestRunMalformedFaultPlan(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(path, []byte(`{"events": [{"kind": "slow", "at": "not-a-duration"}]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	code, _, stderr := exec(t, "-faults", path, "-scale", "quick")
	if code != 1 {
		t.Errorf("exit = %d, want 1", code)
	}
	if !strings.Contains(stderr, "bad at duration") {
		t.Errorf("stderr = %q", stderr)
	}
}

func TestRunNoModeShowsUsage(t *testing.T) {
	code, _, stderr := exec(t)
	if code != 2 {
		t.Errorf("exit = %d, want 2", code)
	}
	if !strings.Contains(stderr, "-exp") {
		t.Errorf("usage not printed: %q", stderr)
	}
}

func TestRunList(t *testing.T) {
	code, stdout, _ := exec(t, "-list")
	if code != 0 {
		t.Fatalf("exit = %d, want 0", code)
	}
	for _, id := range []string{"fig8", "headline", "resilience"} {
		if !strings.Contains(stdout, id) {
			t.Errorf("-list missing %q", id)
		}
	}
}

func TestRunUnknownFormat(t *testing.T) {
	code, _, stderr := exec(t, "-faults", "drainhelper", "-scale", "quick", "-format", "xml", "-parallel", "2")
	if code != 1 {
		t.Errorf("exit = %d, want 1", code)
	}
	if !strings.Contains(stderr, `unknown format "xml"`) {
		t.Errorf("stderr = %q", stderr)
	}
}

// TestRunFaultPreset is the quickstart path: a preset plan runs the
// demo and prints both policies.
func TestRunFaultPreset(t *testing.T) {
	code, stdout, stderr := exec(t, "-faults", "drainhelper", "-scale", "quick", "-format", "csv", "-parallel", "2")
	if code != 0 {
		t.Fatalf("exit = %d, want 0 (stderr: %s)", code, stderr)
	}
	if !strings.Contains(stdout, "static") || !strings.Contains(stdout, "lewi+global") {
		t.Errorf("demo output missing series:\n%s", stdout)
	}
}

func TestRunFaultsWithExpConflict(t *testing.T) {
	for _, args := range [][]string{
		{"-faults", "storm", "-exp", "fig8", "-scale", "quick"},
		{"-faults", "storm", "-all", "-scale", "quick"},
	} {
		code, _, stderr := exec(t, args...)
		if code != 1 {
			t.Errorf("%v: exit = %d, want 1", args, code)
		}
		if !strings.Contains(stderr, "-faults cannot be combined") {
			t.Errorf("%v: stderr = %q", args, stderr)
		}
	}
}

func TestRunPolicyWithExpConflict(t *testing.T) {
	for _, args := range [][]string{
		{"-policy", "guided", "-exp", "fig8", "-scale", "quick"},
		{"-policy", "guided", "-all", "-scale", "quick"},
	} {
		code, _, stderr := exec(t, args...)
		if code != 1 {
			t.Errorf("%v: exit = %d, want 1", args, code)
		}
		if !strings.Contains(stderr, "-policy cannot be combined") {
			t.Errorf("%v: stderr = %q", args, stderr)
		}
	}
}

func TestRunUnknownPolicy(t *testing.T) {
	code, _, stderr := exec(t, "-policy", "nosuch", "-scale", "quick")
	if code != 1 {
		t.Errorf("exit = %d, want 1", code)
	}
	if !strings.Contains(stderr, "nosuch") {
		t.Errorf("stderr = %q", stderr)
	}
	// "off" parses as a SelfSched value but is not a runnable policy.
	code, _, stderr = exec(t, "-policy", "off", "-scale", "quick")
	if code != 1 {
		t.Errorf("-policy off: exit = %d, want 1", code)
	}
	if !strings.Contains(stderr, "not a runnable policy") {
		t.Errorf("-policy off: stderr = %q", stderr)
	}
}

func TestRunPolicyDemo(t *testing.T) {
	code, stdout, stderr := exec(t, "-policy", "twolevel", "-scale", "quick")
	if code != 0 {
		t.Fatalf("exit = %d, stderr = %q", code, stderr)
	}
	if !strings.Contains(stdout, "twolevel") || !strings.Contains(stdout, "lewi+global") {
		t.Errorf("stdout missing policy series:\n%s", stdout)
	}
}

func TestRunPolicyDemoWithFaults(t *testing.T) {
	code, stdout, stderr := exec(t, "-policy", "wfactoring", "-faults", "storm", "-scale", "quick")
	if code != 0 {
		t.Fatalf("exit = %d, stderr = %q", code, stderr)
	}
	if !strings.Contains(stdout, "fault plan") {
		t.Errorf("stdout missing fault-plan title:\n%s", stdout)
	}
}

func TestRunUnknownEngine(t *testing.T) {
	code, _, stderr := exec(t, "-exp", "fig8", "-scale", "quick", "-engine", "warp")
	if code != 1 {
		t.Errorf("exit = %d, want 1", code)
	}
	if !strings.Contains(stderr, `unknown engine "warp"`) {
		t.Errorf("stderr = %q", stderr)
	}
	for _, valid := range []string{"continuation", "goroutine", "parallel"} {
		if !strings.Contains(stderr, valid) {
			t.Errorf("error does not list valid engine %q: %q", valid, stderr)
		}
	}
}

func TestRunSimWorkersRequiresParallelEngine(t *testing.T) {
	code, _, stderr := exec(t, "-exp", "fig8", "-scale", "quick", "-simworkers", "4")
	if code != 1 {
		t.Errorf("exit = %d, want 1", code)
	}
	if !strings.Contains(stderr, "-simworkers only applies to -engine parallel") {
		t.Errorf("stderr = %q", stderr)
	}
	code, _, stderr = exec(t, "-exp", "fig8", "-scale", "quick", "-engine", "parallel", "-simworkers", "-3")
	if code != 1 {
		t.Errorf("negative workers: exit = %d, want 1", code)
	}
	if !strings.Contains(stderr, "-simworkers must be >= 0") {
		t.Errorf("negative workers: stderr = %q", stderr)
	}
}

// TestRunParallelEngineMatchesContinuation is the CLI face of the
// byte-identity contract: the same figure rendered through -engine
// parallel must print the same bytes as the default engine.
func TestRunParallelEngineMatchesContinuation(t *testing.T) {
	code, want, stderr := exec(t, "-exp", "fig8", "-scale", "quick", "-format", "csv")
	if code != 0 {
		t.Fatalf("continuation run: exit = %d, stderr = %q", code, stderr)
	}
	for _, workers := range []string{"1", "8"} {
		code, got, stderr := exec(t, "-exp", "fig8", "-scale", "quick", "-format", "csv",
			"-engine", "parallel", "-simworkers", workers)
		if code != 0 {
			t.Fatalf("parallel run (workers=%s): exit = %d, stderr = %q", workers, code, stderr)
		}
		if got != want {
			t.Errorf("parallel output (workers=%s) differs from continuation:\nwant:\n%s\ngot:\n%s", workers, want, got)
		}
	}
}

// TestRunParallelEngineStats checks the per-partition counters surface
// on the -enginestats stderr line.
func TestRunParallelEngineStats(t *testing.T) {
	code, _, stderr := exec(t, "-exp", "fig8", "-scale", "quick", "-format", "csv",
		"-engine", "parallel", "-simworkers", "2", "-enginestats")
	if code != 0 {
		t.Fatalf("exit = %d, stderr = %q", code, stderr)
	}
	for _, want := range []string{"parallel engine:", "partitions", "windows", "inbox events", "fallbacks"} {
		if !strings.Contains(stderr, want) {
			t.Errorf("-enginestats output missing %q:\n%s", want, stderr)
		}
	}
}

// TestGCPercent pins the GOGC policy: 400 for sequential engines,
// scaled down (floor 100) as parallel workers multiply concurrent
// allocation, and untouched whenever the environment sets GOGC.
func TestGCPercent(t *testing.T) {
	cases := []struct {
		env     string
		workers int
		percent int
		ok      bool
	}{
		{"", 0, 400, true},
		{"", 1, 400, true},
		{"", 2, 200, true},
		{"", 4, 100, true},
		{"", 16, 100, true},
		{"100", 4, 0, false},
		{"off", 0, 0, false},
	}
	for _, tc := range cases {
		p, ok := gcPercent(tc.env, tc.workers)
		if p != tc.percent || ok != tc.ok {
			t.Errorf("gcPercent(%q, %d) = (%d, %v), want (%d, %v)",
				tc.env, tc.workers, p, ok, tc.percent, tc.ok)
		}
	}
}

// TestGOGCEnvNeverOverridden is the regression test for the env
// contract: with GOGC set, run() must not call debug.SetGCPercent at
// all, whatever the engine flags say.
func TestGOGCEnvNeverOverridden(t *testing.T) {
	t.Setenv("GOGC", "123")
	old := debug.SetGCPercent(123)
	defer debug.SetGCPercent(old)
	if code, _, stderr := exec(t, "-exp", "fig8", "-scale", "quick", "-format", "csv",
		"-engine", "parallel", "-simworkers", "8"); code != 0 {
		t.Fatalf("exit = %d, stderr = %q", code, stderr)
	}
	if cur := debug.SetGCPercent(123); cur != 123 {
		t.Errorf("run() changed GC percent to %d despite explicit GOGC env", cur)
	}
}

func TestRunPoliciesExperiment(t *testing.T) {
	code, stdout, stderr := exec(t, "-exp", "policies", "-scale", "quick", "-format", "csv")
	if code != 0 {
		t.Fatalf("exit = %d, stderr = %q", code, stderr)
	}
	for _, label := range []string{"guided", "factoring", "wfactoring", "twolevel", "lewi+global"} {
		if !strings.Contains(stdout, label) {
			t.Errorf("policies CSV missing series %q", label)
		}
	}
}
