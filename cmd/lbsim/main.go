// Command lbsim runs the paper-reproduction experiments on the simulated
// cluster and prints their tables or CSV.
//
// Usage:
//
//	lbsim -list
//	lbsim -exp fig8 [-scale quick|default|paper] [-format table|csv|markdown]
//	lbsim -all [-scale ...] [-parallel N]
//	lbsim -faults storm [-scale quick]
//	lbsim -faults plan.json -format csv
//	lbsim -policy twolevel [-scale quick]
//	lbsim -policy guided -faults storm
//	lbsim -exp policies -scale quick -format csv
//	lbsim -exp fig8 -cpuprofile cpu.pprof -memprofile mem.pprof
//	lbsim -exp fig8 -enginestats -enginejson BENCH_engine.json
//	lbsim -exp fig8 -engine goroutine   (legacy closure paths, for A/B)
//	lbsim -exp fig8 -engine parallel -simworkers 4
//	lbsim -all -scale quick -simjson BENCH_sim.json
//	lbsim -exp fig9 -scale quick -trace fig9.json -metricsjson fig9_metrics.json
//	lbsim -exp fig8 -pop                  (POP efficiency: PE = LB x CommE)
//	lbsim -exp efficiency -popjson pop.json
//	lbsim -exp fig8 -popaccount           (full TALP accounting during the sweep)
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"runtime/debug"
	"runtime/pprof"
	"strings"
	"time"

	"ompsscluster/internal/balance"
	"ompsscluster/internal/expander"
	"ompsscluster/internal/experiments"
	"ompsscluster/internal/faults"
	"ompsscluster/internal/obs"
	"ompsscluster/internal/simtime"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// gcPercent decides the GC target for this invocation. The simulator's
// allocations are almost entirely short-lived task and dependency
// records; the live heap between runs is tiny. The default GOGC=100
// therefore collects far too eagerly — GC accounts for over 15% of a
// large sweep's wall clock — so this batch CLI trades memory for fewer
// cycles with GOGC=400. Under -engine parallel every host worker
// allocates concurrently against the same heap goal, so the target
// scales down with the worker count to keep peak RSS roughly flat,
// never below the Go default of 100. An explicit GOGC in the
// environment always wins: ok is false and the runtime is left
// untouched. Results are unaffected either way — GC timing never feeds
// back into the simulation.
func gcPercent(gogcEnv string, simWorkers int) (percent int, ok bool) {
	if gogcEnv != "" {
		return 0, false
	}
	percent = 400
	if simWorkers > 1 {
		percent = 400 / simWorkers
		if percent < 100 {
			percent = 100
		}
	}
	return percent, true
}

// run is main with its dependencies injected: flags are parsed from
// args, output goes to the given writers, and every failure (bad flag,
// unknown scale or experiment, unreadable plan file) is an error message
// on stderr plus a non-zero return — never a panic or log.Fatal — so
// the whole command line surface is unit-testable.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("lbsim", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		exp        = fs.String("exp", "", "experiment id (see -list)")
		all        = fs.Bool("all", false, "run every experiment")
		list       = fs.Bool("list", false, "list experiment ids")
		scale      = fs.String("scale", "default", "scale: quick, default, or paper")
		format     = fs.String("format", "table", "output format: table, csv, or markdown")
		talp       = fs.Bool("talp", false, "print a TALP efficiency report for a MicroPP run")
		outDir     = fs.String("out", "", "also write each result as CSV into this directory")
		parallel   = fs.Int("parallel", runtime.NumCPU(), "concurrent simulator runs per sweep (1 = sequential; output is identical at any setting)")
		faultPlan  = fs.String("faults", "", "run the synthetic workload under this fault plan (JSON file or preset; see faults presets: "+strings.Join(faults.PresetNames(), ", ")+")")
		policy     = fs.String("policy", "", "run the synthetic workload under this self-scheduling policy vs the lewi+global baseline ("+strings.Join(balance.SelfSchedNames(), ", ")+"); combine with -faults to run both under a plan")
		engine     = fs.String("engine", "continuation", "simulation engine: continuation (sequential, pooled records), goroutine (sequential, legacy closures), or parallel (per-node partitions on host workers; see -simworkers); results are byte-identical across engines, the flag exists for A/B benchmarking")
		simWorkers = fs.Int("simworkers", 0, "host workers for -engine parallel (0 = GOMAXPROCS; capped at the machine's node count)")

		cpuprofile  = fs.String("cpuprofile", "", "write a CPU profile of the whole invocation to this file")
		memprofile  = fs.String("memprofile", "", "write a heap profile to this file on exit")
		engineStats = fs.Bool("enginestats", false, "print per-experiment event-engine stats to stderr")
		engineJSON  = fs.String("enginejson", "", "write aggregate event-engine stats as JSON to this file")
		simJSON     = fs.String("simjson", "", "write per-experiment wall-clock timings as JSON to this file")
		traceOut    = fs.String("trace", "", "run the traced variant of -exp and write a Chrome/Perfetto trace JSON to this file")
		metricsOut  = fs.String("metricsjson", "", "with the traced variant of -exp, write the aggregated metrics registry as JSON to this file")
		popOut      = fs.Bool("pop", false, "run representative configurations of -exp with full TALP accounting and print their POP efficiency reports (PE = LB x CommE)")
		popJSON     = fs.String("popjson", "", "like -pop but write the reports as deterministic JSON to this file (- for stdout)")
		popAccount  = fs.Bool("popaccount", false, "enable full TALP/POP accounting during the normal -exp/-all sweeps (results are unchanged; used to measure accounting overhead)")
	)
	if err := fs.Parse(args); err != nil {
		return 2 // the FlagSet already printed the problem and usage
	}
	fail := func(err error) int {
		fmt.Fprintln(stderr, "lbsim:", err)
		return 1
	}

	gcWorkers := 0
	if *engine == "parallel" {
		gcWorkers = *simWorkers
		if gcWorkers == 0 {
			gcWorkers = runtime.GOMAXPROCS(0)
		}
	}
	if p, ok := gcPercent(os.Getenv("GOGC"), gcWorkers); ok {
		debug.SetGCPercent(p)
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			return fail(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return fail(err)
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	defer func() {
		if *memprofile == "" {
			return
		}
		f, err := os.Create(*memprofile)
		if err != nil {
			fmt.Fprintln(stderr, "lbsim:", err)
			return
		}
		defer f.Close()
		runtime.GC() // settle allocations so the profile reflects live heap
		if err := pprof.WriteHeapProfile(f); err != nil {
			fmt.Fprintln(stderr, "lbsim:", err)
		}
	}()

	if *list {
		fmt.Fprintln(stdout, strings.Join(experiments.IDs(), "\n"))
		return 0
	}
	sc, err := experiments.ScaleByName(*scale)
	if err != nil {
		return fail(err)
	}
	if *talp {
		fmt.Fprint(stdout, experiments.TALPReport(sc))
		return 0
	}
	sc.Parallel = *parallel
	switch *engine {
	case "continuation":
	case "goroutine":
		sc.GoroutineEngine = true
	case "parallel":
		sc.SimParallel = true
		sc.SimWorkers = *simWorkers
	default:
		return fail(fmt.Errorf("unknown engine %q (valid engines: continuation, goroutine, parallel)", *engine))
	}
	if *simWorkers != 0 && *engine != "parallel" {
		return fail(fmt.Errorf("-simworkers only applies to -engine parallel (got -engine %s)", *engine))
	}
	if *simWorkers < 0 {
		return fail(fmt.Errorf("-simworkers must be >= 0 (0 = GOMAXPROCS), got %d", *simWorkers))
	}
	// One graph store and one engine-stats collector for the whole
	// invocation: sweeps (and with -all, experiments) that reuse a layout
	// generate its helper graph once, and engine throughput aggregates
	// across every run.
	sc.Graphs = expander.NewStore("")
	sc.Engine = simtime.NewStatsCollector()
	if *popAccount {
		sc.POP = true
	}

	emit := func(r *experiments.Result) error {
		if *outDir != "" {
			if err := os.MkdirAll(*outDir, 0o755); err != nil {
				return err
			}
			path := filepath.Join(*outDir, r.ID+".csv")
			if err := os.WriteFile(path, []byte(r.CSV()), 0o644); err != nil {
				return err
			}
		}
		switch *format {
		case "table":
			fmt.Fprintln(stdout, r.Table())
		case "csv":
			fmt.Fprint(stdout, r.CSV())
		case "markdown", "md":
			fmt.Fprintln(stdout, r.Markdown())
		default:
			return fmt.Errorf("unknown format %q (table, csv, markdown)", *format)
		}
		return nil
	}

	// -faults and -policy select dedicated demo runs; silently ignoring
	// them next to -exp/-all would run something other than what was
	// asked for, so the combinations are hard errors.
	if *faultPlan != "" && (*all || *exp != "") {
		return fail(fmt.Errorf("-faults cannot be combined with -exp/-all (the fault demo is its own run; use -exp resilience for the fault sweep)"))
	}
	if *policy != "" && (*all || *exp != "") {
		return fail(fmt.Errorf("-policy cannot be combined with -exp/-all (the policy demo is its own run; use -exp policies for the full sweep)"))
	}

	if *policy != "" {
		var plan *faults.Plan
		if *faultPlan != "" {
			plan, err = faults.Load(*faultPlan)
			if err != nil {
				return fail(err)
			}
		}
		r, err := experiments.PolicyDemo(sc, *policy, plan)
		if err != nil {
			return fail(err)
		}
		if emitErr := emit(r); emitErr != nil {
			return fail(emitErr)
		}
		if r.Err != nil {
			fmt.Fprintln(stderr, "lbsim: policy demo run failed:", r.Err)
		}
		return 0
	}

	if *faultPlan != "" {
		plan, err := faults.Load(*faultPlan)
		if err != nil {
			return fail(err)
		}
		r := experiments.FaultDemo(sc, plan)
		if emitErr := emit(r); emitErr != nil {
			return fail(emitErr)
		}
		if r.Err != nil {
			// The plan aborted the application (e.g. a crash event).
			// The demo itself succeeded — the notes show the typed
			// error — but flag it for scripts.
			fmt.Fprintln(stderr, "lbsim: fault plan terminated the run:", r.Err)
		}
		return 0
	}

	if (*popOut || *popJSON != "") && (*traceOut != "" || *metricsOut != "") {
		return fail(fmt.Errorf("-pop/-popjson cannot be combined with -trace/-metricsjson (each runs its own representative sweep; invoke them separately)"))
	}
	if *popOut || *popJSON != "" {
		if *all || *exp == "" {
			return fail(fmt.Errorf("-pop/-popjson need a single -exp with a POP variant (fig5, fig8, fig9, policies, efficiency)"))
		}
		if err := writePOP(*exp, sc, *popOut, *popJSON, stdout); err != nil {
			return fail(err)
		}
		return 0
	}

	if *traceOut != "" || *metricsOut != "" {
		if *all || *exp == "" {
			return fail(fmt.Errorf("-trace/-metricsjson need a single -exp with a traced variant (fig5, fig8, fig9, policies, efficiency)"))
		}
		if err := writeTraces(*exp, sc, *traceOut, *metricsOut); err != nil {
			return fail(err)
		}
		return 0
	}
	report := &engineReport{Scale: *scale, Parallel: *parallel, Engine: *engine, SimWorkers: *simWorkers}
	runOne := func(id string) error {
		before := sc.Engine.Totals()
		start := time.Now()
		r, err := experiments.ByID(id, sc)
		if err != nil {
			return err
		}
		wall := time.Since(start)
		d := sc.Engine.Totals().Sub(before)
		report.add(id, r.Engine, d, wall)
		if *engineStats {
			fmt.Fprintf(stderr, "lbsim: %s: %d runs, %s events (%.0f%% fast-path), %s events/sec of run-host time, %s parks/%s wakes, peak %d goroutine procs, registry hi-water %d intervals, wall %v\n",
				id, d.Runs, humanCount(d.Events), 100*d.FastPathFraction(),
				humanCount(uint64(d.EventsPerSec())),
				humanCount(d.Parks), humanCount(d.Wakes), d.PeakGoroutines,
				d.RegistryHiWater, wall.Round(time.Millisecond))
			if d.Partitions > 0 || d.Fallbacks > 0 {
				fmt.Fprintf(stderr, "lbsim: %s: parallel engine: %d partitions, %s windows (%s barrier-stalled), %s inbox events, %d sequential fallbacks\n",
					id, d.Partitions, humanCount(d.Windows), humanCount(d.BarrierStalls),
					humanCount(d.InboxEvents), d.Fallbacks)
			}
		}
		return emit(r)
	}
	switch {
	case *all:
		for _, id := range experiments.IDs() {
			if err := runOne(id); err != nil {
				return fail(err)
			}
		}
	case *exp != "":
		if err := runOne(*exp); err != nil {
			return fail(err)
		}
	default:
		fs.Usage()
		return 2
	}
	if *engineStats {
		for _, p := range sc.Engine.PartitionTotals() {
			fmt.Fprintf(stderr, "lbsim: partition %d: %v busy, %v barrier-wait host time, %s windows (%s horizon-stalled), %s outbox events staged, peak outbox %d\n",
				p.Partition, p.Busy.Round(time.Millisecond), p.BarrierWait.Round(time.Millisecond),
				humanCount(p.Windows), humanCount(p.StallWindows),
				humanCount(p.OutboxStaged), p.MaxOutbox)
		}
	}
	if *engineJSON != "" {
		if err := report.write(*engineJSON, sc.Engine.Totals(), sc.Engine.PartitionTotals()); err != nil {
			return fail(err)
		}
	}
	if *simJSON != "" {
		if err := report.writeSim(*simJSON); err != nil {
			return fail(err)
		}
	}
	return 0
}

// engineReport accumulates the per-experiment engine numbers destined for
// the -enginejson file (bench/record.sh writes it as BENCH_engine.json so
// the perf trajectory is tracked across PRs).
type engineReport struct {
	Scale       string             `json:"scale"`
	Parallel    int                `json:"parallel"`
	Engine      string             `json:"engine"`
	SimWorkers  int                `json:"simworkers,omitempty"`
	Experiments []experimentReport `json:"experiments"`
}

type experimentReport struct {
	ID            string  `json:"id"`
	Runs          uint64  `json:"runs"`
	Events        uint64  `json:"events"`
	FastPath      uint64  `json:"fast_path_events"`
	HeapPushes    uint64  `json:"heap_pushes"`
	Parks         uint64  `json:"parks"`
	Wakes         uint64  `json:"wakes"`
	PeakGoro      uint64  `json:"peak_goroutines"`
	RegHiWater    uint64  `json:"registry_hiwater"`
	Partitions    uint64  `json:"partitions,omitempty"`
	Windows       uint64  `json:"windows,omitempty"`
	BarrierStalls uint64  `json:"barrier_stalls,omitempty"`
	InboxEvents   uint64  `json:"inbox_events,omitempty"`
	Fallbacks     uint64  `json:"fallbacks,omitempty"`
	HostSeconds   float64 `json:"run_host_seconds"`
	WallSeconds   float64 `json:"wall_seconds"`
	EventsPerSec  float64 `json:"events_per_sec"`
}

func (er *engineReport) add(id string, e experiments.EngineStats, d simtime.RunTotals, wall time.Duration) {
	er.Experiments = append(er.Experiments, experimentReport{
		ID:            id,
		Runs:          e.Runs,
		Events:        e.Events,
		FastPath:      e.FastPath,
		HeapPushes:    e.HeapPushes,
		Parks:         e.Parks,
		Wakes:         e.Wakes,
		PeakGoro:      e.PeakGoroutines,
		RegHiWater:    e.RegistryHiWater,
		Partitions:    e.Partitions,
		Windows:       e.Windows,
		BarrierStalls: e.BarrierStalls,
		InboxEvents:   e.InboxEvents,
		Fallbacks:     e.Fallbacks,
		HostSeconds:   d.Host.Seconds(),
		WallSeconds:   wall.Seconds(),
		EventsPerSec:  d.EventsPerSec(),
	})
}

// partitionReport is one parallel-engine partition's host-side profile in
// the -enginejson file. Busy and barrier-wait are host wall-clock (and so
// vary run to run); the window and outbox counters are deterministic.
type partitionReport struct {
	Partition          int     `json:"partition"`
	BusySeconds        float64 `json:"busy_seconds"`
	BarrierWaitSeconds float64 `json:"barrier_wait_seconds"`
	Windows            uint64  `json:"windows"`
	StallWindows       uint64  `json:"stall_windows"`
	OutboxStaged       uint64  `json:"outbox_staged"`
	MaxOutbox          uint64  `json:"max_outbox"`
}

func (er *engineReport) write(path string, total simtime.RunTotals, parts []simtime.PartitionStats) error {
	out := struct {
		*engineReport
		Partitions []partitionReport `json:"partition_profile,omitempty"`
		Total      experimentReport  `json:"total"`
	}{engineReport: er, Total: experimentReport{
		ID:            "total",
		Runs:          total.Runs,
		Events:        total.Events,
		FastPath:      total.FastPath,
		HeapPushes:    total.HeapPushes,
		Parks:         total.Parks,
		Wakes:         total.Wakes,
		PeakGoro:      total.PeakGoroutines,
		RegHiWater:    total.RegistryHiWater,
		Partitions:    total.Partitions,
		Windows:       total.Windows,
		BarrierStalls: total.BarrierStalls,
		InboxEvents:   total.InboxEvents,
		Fallbacks:     total.Fallbacks,
		HostSeconds:   total.Host.Seconds(),
		EventsPerSec:  total.EventsPerSec(),
	}}
	for _, p := range parts {
		out.Partitions = append(out.Partitions, partitionReport{
			Partition:          p.Partition,
			BusySeconds:        p.Busy.Seconds(),
			BarrierWaitSeconds: p.BarrierWait.Seconds(),
			Windows:            p.Windows,
			StallWindows:       p.StallWindows,
			OutboxStaged:       p.OutboxStaged,
			MaxOutbox:          p.MaxOutbox,
		})
	}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// writeSim writes the per-experiment wall-clock summary (bench/record.sh
// writes it as BENCH_sim.json so per-figure simulator wall time is
// tracked across PRs alongside the engine counters).
func (er *engineReport) writeSim(path string) error {
	type simFigure struct {
		ID            string  `json:"id"`
		Runs          uint64  `json:"runs"`
		WallSeconds   float64 `json:"wall_seconds"`
		Parks         uint64  `json:"parks"`
		Wakes         uint64  `json:"wakes"`
		PeakGoro      uint64  `json:"peak_goroutines"`
		Partitions    uint64  `json:"partitions,omitempty"`
		Windows       uint64  `json:"windows,omitempty"`
		BarrierStalls uint64  `json:"barrier_stalls,omitempty"`
		InboxEvents   uint64  `json:"inbox_events,omitempty"`
		Fallbacks     uint64  `json:"fallbacks,omitempty"`
	}
	out := struct {
		Scale            string      `json:"scale"`
		Parallel         int         `json:"parallel"`
		Engine           string      `json:"engine"`
		SimWorkers       int         `json:"simworkers,omitempty"`
		TotalWallSeconds float64     `json:"total_wall_seconds"`
		Figures          []simFigure `json:"figures"`
	}{Scale: er.Scale, Parallel: er.Parallel, Engine: er.Engine, SimWorkers: er.SimWorkers}
	for _, e := range er.Experiments {
		out.Figures = append(out.Figures, simFigure{
			ID: e.ID, Runs: e.Runs, WallSeconds: e.WallSeconds,
			Parks: e.Parks, Wakes: e.Wakes, PeakGoro: e.PeakGoro,
			Partitions: e.Partitions, Windows: e.Windows,
			BarrierStalls: e.BarrierStalls, InboxEvents: e.InboxEvents,
			Fallbacks: e.Fallbacks,
		})
		out.TotalWallSeconds += e.WallSeconds
	}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// writeTraces runs the traced variant of an experiment once and writes
// whichever outputs were requested: a Chrome/Perfetto trace (one process
// group per configuration) and/or the merged metrics registry.
func writeTraces(id string, sc experiments.Scale, tracePath, metricsPath string) error {
	bundles, err := experiments.TraceBundles(id, sc)
	if err != nil {
		return err
	}
	if tracePath != "" {
		recs := make([]*obs.Recorder, len(bundles))
		labels := make([]string, len(bundles))
		for i, b := range bundles {
			recs[i], labels[i] = b.Obs, b.Label
		}
		f, err := os.Create(tracePath)
		if err != nil {
			return err
		}
		if err := obs.WriteChrome(f, recs, labels); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	if metricsPath != "" {
		m, err := experiments.BuildMetrics(bundles)
		if err != nil {
			return err
		}
		f, err := os.Create(metricsPath)
		if err != nil {
			return err
		}
		if err := m.WriteJSON(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	return nil
}

// writePOP runs representative configurations of an experiment with full
// TALP accounting and emits their POP efficiency reports: human-readable
// tables on stdout with -pop, and/or one deterministic JSON document with
// -popjson (the per-report rendering is dlb's hand-rolled writer, so the
// bytes are identical across engines and -simworkers counts).
func writePOP(id string, sc experiments.Scale, print bool, jsonPath string, stdout io.Writer) error {
	bundles, err := experiments.POPReports(id, sc)
	if err != nil {
		return err
	}
	if print {
		for _, b := range bundles {
			fmt.Fprintf(stdout, "== %s ==\n%s\n", b.Label, b.Report)
		}
	}
	if jsonPath == "" {
		return nil
	}
	var buf bytes.Buffer
	fmt.Fprintf(&buf, "{%q:%q,%q:[", "experiment", id, "reports")
	for i, b := range bundles {
		if i > 0 {
			buf.WriteByte(',')
		}
		fmt.Fprintf(&buf, "{%q:%q,%q:", "label", b.Label, "pop")
		if err := b.Report.WriteJSON(&buf); err != nil {
			return err
		}
		buf.WriteByte('}')
	}
	buf.WriteString("]}\n")
	if jsonPath == "-" {
		_, err := stdout.Write(buf.Bytes())
		return err
	}
	return os.WriteFile(jsonPath, buf.Bytes(), 0o644)
}

// humanCount renders n with a k/M/G suffix for the stderr stats line.
func humanCount(n uint64) string {
	switch {
	case n >= 1e9:
		return fmt.Sprintf("%.2fG", float64(n)/1e9)
	case n >= 1e6:
		return fmt.Sprintf("%.2fM", float64(n)/1e6)
	case n >= 1e3:
		return fmt.Sprintf("%.1fk", float64(n)/1e3)
	}
	return fmt.Sprintf("%d", n)
}
