// Command lbsim runs the paper-reproduction experiments on the simulated
// cluster and prints their tables or CSV.
//
// Usage:
//
//	lbsim -list
//	lbsim -exp fig8 [-scale quick|default|paper] [-format table|csv|markdown]
//	lbsim -all [-scale ...] [-parallel N]
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strings"

	"ompsscluster/internal/expander"
	"ompsscluster/internal/experiments"
)

func main() {
	var (
		exp      = flag.String("exp", "", "experiment id (see -list)")
		all      = flag.Bool("all", false, "run every experiment")
		list     = flag.Bool("list", false, "list experiment ids")
		scale    = flag.String("scale", "default", "scale: quick, default, or paper")
		format   = flag.String("format", "table", "output format: table, csv, or markdown")
		talp     = flag.Bool("talp", false, "print a TALP efficiency report for a MicroPP run")
		outDir   = flag.String("out", "", "also write each result as CSV into this directory")
		parallel = flag.Int("parallel", runtime.NumCPU(), "concurrent simulator runs per sweep (1 = sequential; output is identical at any setting)")
	)
	flag.Parse()

	if *list {
		fmt.Println(strings.Join(experiments.IDs(), "\n"))
		return
	}
	if *talp {
		sc, err := scaleByName(*scale)
		if err != nil {
			fatal(err)
		}
		fmt.Print(experiments.TALPReport(sc))
		return
	}
	sc, err := scaleByName(*scale)
	if err != nil {
		fatal(err)
	}
	sc.Parallel = *parallel
	// One graph store for the whole invocation: sweeps (and with -all,
	// experiments) that reuse a layout generate its helper graph once.
	sc.Graphs = expander.NewStore("")
	emit := func(r *experiments.Result) {
		if *outDir != "" {
			if err := os.MkdirAll(*outDir, 0o755); err != nil {
				fatal(err)
			}
			path := filepath.Join(*outDir, r.ID+".csv")
			if err := os.WriteFile(path, []byte(r.CSV()), 0o644); err != nil {
				fatal(err)
			}
		}
		switch *format {
		case "table":
			fmt.Println(r.Table())
		case "csv":
			fmt.Print(r.CSV())
		case "markdown", "md":
			fmt.Println(r.Markdown())
		default:
			fatal(fmt.Errorf("unknown format %q (table, csv, markdown)", *format))
		}
	}
	switch {
	case *all:
		for _, id := range experiments.IDs() {
			r, err := experiments.ByID(id, sc)
			if err != nil {
				fatal(err)
			}
			emit(r)
		}
	case *exp != "":
		r, err := experiments.ByID(*exp, sc)
		if err != nil {
			fatal(err)
		}
		emit(r)
	default:
		flag.Usage()
		os.Exit(2)
	}
}

func scaleByName(name string) (experiments.Scale, error) {
	switch name {
	case "quick":
		return experiments.QuickScale(), nil
	case "default":
		return experiments.DefaultScale(), nil
	case "paper":
		return experiments.PaperScale(), nil
	}
	return experiments.Scale{}, fmt.Errorf("unknown scale %q (quick, default, paper)", name)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "lbsim:", err)
	os.Exit(1)
}
