// Command expgen generates and inspects the bipartite biregular expander
// graphs used to connect appranks to helper nodes (§5.2 of the paper).
//
// Usage:
//
//	expgen -appranks 32 -nodes 16 -degree 3 [-seed 1] [-shape expander|ring|full] [-store DIR]
package main

import (
	"flag"
	"fmt"
	"os"

	"ompsscluster/internal/expander"
)

func main() {
	var (
		appranks = flag.Int("appranks", 16, "number of application ranks")
		nodes    = flag.Int("nodes", 16, "number of nodes")
		degree   = flag.Int("degree", 4, "offloading degree (edges per apprank)")
		seed     = flag.Int64("seed", 1, "generation seed")
		shape    = flag.String("shape", "expander", "graph family: expander, ring, or full")
		store    = flag.String("store", "", "directory to cache graphs in (optional)")
	)
	flag.Parse()

	var sh expander.Shape
	switch *shape {
	case "expander":
		sh = expander.ShapeExpander
	case "ring":
		sh = expander.ShapeRing
	case "full":
		sh = expander.ShapeFull
	default:
		fatal(fmt.Errorf("unknown shape %q", *shape))
	}
	p := expander.Params{
		Appranks: *appranks,
		Nodes:    *nodes,
		Degree:   *degree,
		Seed:     *seed,
		Shape:    sh,
	}
	var g *expander.Graph
	var err error
	if *store != "" {
		g, err = expander.NewStore(*store).Get(p)
	} else {
		g, err = expander.Generate(p)
	}
	if err != nil {
		fatal(err)
	}
	if err := g.Validate(); err != nil {
		fatal(err)
	}
	fmt.Printf("graph: %d appranks x %d nodes, degree %d (%s)\n", g.Appranks, g.Nodes, g.Degree, *shape)
	fmt.Printf("connected: %v\n", g.IsConnected())
	fmt.Printf("spectral gap: %.4f (Ramanujan-optimal sigma2/sigma1: %.4f)\n",
		g.SpectralGap(), g.RamanujanBound())
	if g.Appranks <= 20 {
		fmt.Printf("vertex isoperimetric number (exact): %.4f\n", g.IsoperimetricNumber())
	} else {
		fmt.Printf("vertex isoperimetric number (sampled upper bound): %.4f\n",
			g.EstimateIsoperimetric(5000, *seed))
	}
	fmt.Println("adjacency (home node first):")
	for a := 0; a < g.Appranks; a++ {
		fmt.Printf("  apprank %3d -> %v\n", a, g.Neighbors(a))
	}
	for n := 0; n < g.Nodes; n++ {
		fmt.Printf("node %3d hosts appranks %v\n", n, g.AppranksOn(n))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "expgen:", err)
	os.Exit(1)
}
