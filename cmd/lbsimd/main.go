// Command lbsimd serves the simulation experiments as a crash-safe job
// service: submissions are content-addressed, sweeps checkpoint their
// per-spec outcomes atomically, and a killed or drained server resumes
// its queue on restart and produces byte-identical results.
//
// Usage:
//
//	lbsimd -state ./lbsimd-state [-addr 127.0.0.1:8080]
//
//	curl -X POST localhost:8080/jobs -d '{"experiment":"fig8","scale":"quick"}'
//	curl localhost:8080/jobs/j1
//	curl localhost:8080/jobs/j1/result
//	curl -X POST localhost:8080/jobs/j1/cancel
//	curl localhost:8080/healthz
//
// SIGTERM/SIGINT drain gracefully: in-flight HTTP requests finish, the
// running job checkpoints and returns to the queue, and the process
// exits; the next start resumes it.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"syscall"
	"time"

	"ompsscluster/internal/jobs"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is main with its dependencies injected, in the repo's testable
// pattern: flags from args, output to the writers, failures as stderr
// messages plus a non-zero return. The crash/resume test drives a real
// lbsimd process through this entry point.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("lbsimd", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		addr     = fs.String("addr", "127.0.0.1:8080", "listen address (port 0 picks a free port; the bound address is printed)")
		stateDir = fs.String("state", "lbsimd-state", "state directory (queue, checkpoints, result cache)")
		retries  = fs.Int("retries", 3, "attempt budget per job before a panicking job is quarantined")
		backoff  = fs.Duration("backoff", 250*time.Millisecond, "base retry backoff, doubled per attempt")
		timeout  = fs.Duration("timeout", 0, "default per-job wall-clock budget (0 = unlimited; a spec's timeout_sec overrides)")
		parallel = fs.Int("parallel", runtime.NumCPU(), "default sweep parallelism for specs that leave it unset")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	fail := func(err error) int {
		fmt.Fprintln(stderr, "lbsimd:", err)
		return 1
	}
	if err := os.MkdirAll(*stateDir, 0o755); err != nil {
		return fail(err)
	}
	queue, err := jobs.OpenQueue(filepath.Join(*stateDir, "queue.json"))
	if err != nil {
		return fail(err)
	}
	cache := jobs.NewCache(filepath.Join(*stateDir, "cache"))
	runner := jobs.NewRunner(queue, cache, *stateDir)
	runner.Retries = *retries
	runner.Backoff = *backoff
	runner.Timeout = *timeout
	runner.DefaultParallel = *parallel

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return fail(err)
	}
	runner.Start()
	runner.Kick() // resume anything the previous process left pending

	srv := &http.Server{Handler: (&jobs.Server{Queue: queue, Cache: cache, Runner: runner}).Handler()}
	// The bound address line is the startup handshake scripts and tests
	// key on (mandatory with -addr :0).
	fmt.Fprintf(stdout, "lbsimd: listening on http://%s (state %s)\n", ln.Addr(), *stateDir)

	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, syscall.SIGTERM, syscall.SIGINT)
	done := make(chan struct{})
	go func() {
		defer close(done)
		<-sigs
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
		runner.Drain()
	}()

	if err := srv.Serve(ln); err != nil && err != http.ErrServerClosed {
		return fail(err)
	}
	<-done
	fmt.Fprintf(stdout, "lbsimd: drained; state saved in %s\n", *stateDir)
	return 0
}
