package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
	"syscall"
	"testing"
	"time"
)

// The crash tests need a real process to SIGKILL, so the test binary
// doubles as the daemon: with LBSIMD_CHILD set, TestMain bypasses the
// test framework and runs lbsimd's entry point directly.
func TestMain(m *testing.M) {
	if os.Getenv("LBSIMD_CHILD") == "1" {
		os.Exit(run(strings.Split(os.Getenv("LBSIMD_ARGS"), "\x1f"), os.Stdout, os.Stderr))
	}
	os.Exit(m.Run())
}

// server is one child lbsimd process.
type server struct {
	cmd  *exec.Cmd
	base string // http://127.0.0.1:port
}

var addrRe = regexp.MustCompile(`listening on (http://[^ ]+)`)

// startServer launches a child lbsimd on a free port over the given
// state dir and waits for its address line.
func startServer(t *testing.T, stateDir string) *server {
	t.Helper()
	args := []string{"-addr", "127.0.0.1:0", "-state", stateDir, "-backoff", "50ms"}
	cmd := exec.Command(os.Args[0])
	cmd.Env = append(os.Environ(),
		"LBSIMD_CHILD=1",
		"LBSIMD_ARGS="+strings.Join(args, "\x1f"))
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(stdout)
	lineCh := make(chan string, 1)
	go func() {
		for sc.Scan() {
			if m := addrRe.FindStringSubmatch(sc.Text()); m != nil {
				lineCh <- m[1]
			}
		}
	}()
	select {
	case base := <-lineCh:
		return &server{cmd: cmd, base: base}
	case <-time.After(30 * time.Second):
		cmd.Process.Kill()
		t.Fatal("lbsimd never printed its address")
		return nil
	}
}

func (s *server) kill(t *testing.T) {
	t.Helper()
	if err := s.cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	s.cmd.Wait()
}

func (s *server) sigterm(t *testing.T) {
	t.Helper()
	if err := s.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	if err := s.cmd.Wait(); err != nil {
		t.Fatalf("lbsimd exited non-zero after SIGTERM: %v", err)
	}
}

func (s *server) post(t *testing.T, path, body string) map[string]any {
	t.Helper()
	resp, err := http.Post(s.base+path, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(resp.Body)
	var v map[string]any
	if err := json.Unmarshal(data, &v); err != nil {
		t.Fatalf("POST %s: bad JSON %q: %v", path, data, err)
	}
	if resp.StatusCode >= 300 {
		t.Fatalf("POST %s: %d %v", path, resp.StatusCode, v)
	}
	return v
}

func (s *server) status(t *testing.T, id string) map[string]any {
	t.Helper()
	resp, err := http.Get(s.base + "/jobs/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(resp.Body)
	var v map[string]any
	if err := json.Unmarshal(data, &v); err != nil {
		t.Fatalf("status %s: bad JSON %q: %v", id, data, err)
	}
	return v
}

// waitSucceeded polls a job until it succeeds and returns its result
// document bytes.
func (s *server) waitSucceeded(t *testing.T, id string, timeout time.Duration) []byte {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		v := s.status(t, id)
		switch v["state"] {
		case "succeeded":
			resp, err := http.Get(fmt.Sprintf("%s/jobs/%s/result", s.base, id))
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			data, _ := io.ReadAll(resp.Body)
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("result of %s: %d %s", id, resp.StatusCode, data)
			}
			return data
		case "failed", "canceled":
			t.Fatalf("job %s reached %s: %v", id, v["state"], v["error"])
		}
		time.Sleep(50 * time.Millisecond)
	}
	t.Fatalf("job %s not done after %v", id, timeout)
	return nil
}

// crashSpec is the job the kill tests run: fig6c at quick scale with a
// sequential sweep, ~0.4s per spec across 11 specs — slow enough that
// a SIGKILL reliably lands mid-sweep, fast enough for CI.
const crashSpec = `{"experiment":"fig6c","scale":"quick","parallel":1}`

func TestCrashResumeByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns servers and runs multi-second sweeps")
	}
	dirA := filepath.Join(t.TempDir(), "a")
	dirB := filepath.Join(t.TempDir(), "b")

	// Server A: submit, let the sweep checkpoint a couple of specs,
	// then SIGKILL mid-run.
	a1 := startServer(t, dirA)
	v := a1.post(t, "/jobs", crashSpec)
	id, hash := v["id"].(string), v["hash"].(string)
	deadline := time.Now().Add(120 * time.Second)
	for {
		st := a1.status(t, id)
		if done, ok := st["specs_done"].(float64); ok && done >= 2 {
			if st["state"] == "succeeded" {
				t.Fatal("job finished before the kill; slow the spec down")
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("job never reached 2 completed specs")
		}
		time.Sleep(25 * time.Millisecond)
	}
	a1.kill(t)
	ckpt := filepath.Join(dirA, "checkpoints", hash+".json")
	if _, err := os.Stat(ckpt); err != nil {
		t.Fatalf("no checkpoint survived the kill: %v", err)
	}

	// Restart over the same state: the interrupted job resumes from its
	// checkpoint and completes.
	a2 := startServer(t, dirA)
	resumed := a2.waitSucceeded(t, id, 180*time.Second)
	if _, err := os.Stat(ckpt); !os.IsNotExist(err) {
		t.Errorf("checkpoint not cleaned up after success (err %v)", err)
	}

	// Server B: the same spec, uninterrupted, in fresh state.
	b := startServer(t, dirB)
	bv := b.post(t, "/jobs", crashSpec)
	uninterrupted := b.waitSucceeded(t, bv["id"].(string), 180*time.Second)

	if !bytes.Equal(resumed, uninterrupted) {
		t.Fatalf("resumed result differs from uninterrupted run:\n%s\nvs\n%s", resumed, uninterrupted)
	}

	// Resubmitting the identical spec to the restarted server is a pure
	// cache hit: same bytes, no simulation.
	rv := a2.post(t, "/jobs", crashSpec)
	if rv["cached"] != true {
		t.Fatalf("resubmission not served from cache: %v", rv)
	}
	cached := a2.waitSucceeded(t, rv["id"].(string), 30*time.Second)
	if !bytes.Equal(cached, resumed) {
		t.Fatal("cache returned different bytes than the original result")
	}
	st := a2.status(t, rv["id"].(string))
	if st["cache_hit"] != true {
		t.Fatalf("resubmitted job status %v, want cache_hit", st)
	}

	b.sigterm(t)
	a2.sigterm(t)
}

func TestDrainOnSIGTERMThenResume(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns servers and runs multi-second sweeps")
	}
	dir := filepath.Join(t.TempDir(), "state")
	s1 := startServer(t, dir)
	v := s1.post(t, "/jobs", crashSpec)
	id := v["id"].(string)
	// Let the job start, then drain. The server must exit cleanly with
	// the job parked as pending (or already succeeded if it won the race).
	deadline := time.Now().Add(60 * time.Second)
	for {
		if st := s1.status(t, id); st["state"] == "running" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("job never started")
		}
		time.Sleep(10 * time.Millisecond)
	}
	s1.sigterm(t)

	s2 := startServer(t, dir)
	s2.waitSucceeded(t, id, 180*time.Second)
	s2.sigterm(t)
}
