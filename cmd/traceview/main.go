// Command traceview runs the traced variant of an experiment (fig5,
// fig8, fig9, policies, or efficiency — unknown ids are a hard error)
// and renders its busy-core timelines as ASCII, dumps them as CSV for
// plotting, emits simplified Paraver records, or exports a Chrome trace
// JSON loadable in Perfetto (https://ui.perfetto.dev). With -pop it
// instead prints the POP efficiency reports (PE = LB x CommE) of the
// same representative configurations.
//
// Usage:
//
//	traceview -exp fig9 [-scale quick|default|paper] [-width 100] [-csv]
//	traceview -exp fig5 -prv -o fig5.prv
//	traceview -exp fig9 -chrome -o fig9.json
//	traceview -exp efficiency -pop
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"

	"ompsscluster/internal/experiments"
	"ompsscluster/internal/obs"
)

func main() {
	var (
		exp    = flag.String("exp", "fig9", "which experiment's traces to produce: fig5, fig8, fig9, policies, or efficiency")
		scale  = flag.String("scale", "quick", "scale: quick, default, or paper")
		width  = flag.Int("width", 100, "timeline width in characters")
		csv    = flag.Bool("csv", false, "emit CSV instead of ASCII art")
		prv    = flag.Bool("prv", false, "emit simplified Paraver (.prv) records")
		chrome = flag.Bool("chrome", false, "emit Chrome trace JSON (open in Perfetto)")
		pop    = flag.Bool("pop", false, "print POP efficiency reports (PE = LB x CommE) instead of timelines")
		oFlag  = flag.String("o", "", "write output to this file instead of stdout")
	)
	flag.Parse()

	var sc experiments.Scale
	switch *scale {
	case "quick":
		sc = experiments.QuickScale()
	case "default":
		sc = experiments.DefaultScale()
	case "paper":
		sc = experiments.PaperScale()
	default:
		fatal(fmt.Errorf("unknown scale %q", *scale))
	}

	var bundles []experiments.TraceBundle
	var pops []experiments.POPBundle
	var err error
	if *pop {
		pops, err = experiments.POPReports(*exp, sc)
	} else {
		bundles, err = experiments.TraceBundles(*exp, sc)
	}
	if err != nil {
		fatal(err)
	}

	var out io.Writer = os.Stdout
	if *oFlag != "" {
		f, err := os.Create(*oFlag)
		if err != nil {
			fatal(err)
		}
		defer func() {
			if err := f.Close(); err != nil {
				fatal(err)
			}
		}()
		bw := bufio.NewWriter(f)
		defer func() {
			if err := bw.Flush(); err != nil {
				fatal(err)
			}
		}()
		out = bw
	}

	if *pop {
		for _, b := range pops {
			fmt.Fprintf(out, "== %s ==\n%s\n", b.Label, b.Report)
		}
		return
	}
	if *chrome {
		recs := make([]*obs.Recorder, len(bundles))
		labels := make([]string, len(bundles))
		for i, b := range bundles {
			recs[i], labels[i] = b.Obs, b.Label
		}
		if err := obs.WriteChrome(out, recs, labels); err != nil {
			fatal(err)
		}
		return
	}
	for _, b := range bundles {
		fmt.Fprintf(out, "== %s ==\n", b.Label)
		switch {
		case *csv:
			fmt.Fprint(out, b.Trace.CSV())
		case *prv:
			fmt.Fprint(out, b.Trace.Paraver())
		default:
			fmt.Fprint(out, b.Trace.Render(*width, 0))
		}
		fmt.Fprintln(out)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "traceview:", err)
	os.Exit(1)
}
