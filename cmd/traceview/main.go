// Command traceview runs the trace-producing experiments (Figures 5 and
// 9) and renders their busy-core timelines as ASCII, or dumps them as
// CSV for plotting.
//
// Usage:
//
//	traceview -exp fig9 [-scale quick|default|paper] [-width 100] [-csv]
package main

import (
	"flag"
	"fmt"
	"os"

	"ompsscluster/internal/experiments"
	"ompsscluster/internal/trace"
)

func main() {
	var (
		exp   = flag.String("exp", "fig9", "which traces to produce: fig9")
		scale = flag.String("scale", "quick", "scale: quick, default, or paper")
		width = flag.Int("width", 100, "timeline width in characters")
		csv   = flag.Bool("csv", false, "emit CSV instead of ASCII art")
		prv   = flag.Bool("prv", false, "emit simplified Paraver (.prv) records")
	)
	flag.Parse()

	var sc experiments.Scale
	switch *scale {
	case "quick":
		sc = experiments.QuickScale()
	case "default":
		sc = experiments.DefaultScale()
	case "paper":
		sc = experiments.PaperScale()
	default:
		fatal(fmt.Errorf("unknown scale %q", *scale))
	}

	var recs []*trace.Recorder
	var labels []string
	switch *exp {
	case "fig9":
		recs, labels = experiments.Fig9Traces(sc)
	case "fig5":
		recs, labels = experiments.Fig5Traces(sc)
	default:
		fatal(fmt.Errorf("unknown experiment %q (try fig5 or fig9)", *exp))
	}
	for i, rec := range recs {
		fmt.Printf("== %s ==\n", labels[i])
		switch {
		case *csv:
			fmt.Print(rec.CSV())
		case *prv:
			fmt.Print(rec.Paraver())
		default:
			fmt.Print(rec.Render(*width, 0))
		}
		fmt.Println()
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "traceview:", err)
	os.Exit(1)
}
