package trace

import (
	"strings"
	"testing"

	"ompsscluster/internal/simtime"
)

const sec = simtime.Time(simtime.Second)

func TestSeriesStepFunction(t *testing.T) {
	var s Series
	s.Record(0, 1)
	s.Record(2*sec, 3)
	s.Record(5*sec, 0)
	if got := s.ValueAt(-1); got != 0 {
		t.Fatalf("ValueAt(-1) = %v", got)
	}
	if got := s.ValueAt(sec); got != 1 {
		t.Fatalf("ValueAt(1s) = %v, want 1", got)
	}
	if got := s.ValueAt(2 * sec); got != 3 {
		t.Fatalf("ValueAt(2s) = %v, want 3 (right-continuous)", got)
	}
	if got := s.ValueAt(10 * sec); got != 0 {
		t.Fatalf("ValueAt(10s) = %v, want 0", got)
	}
}

func TestSeriesOverwriteSameTime(t *testing.T) {
	var s Series
	s.Record(sec, 1)
	s.Record(sec, 5)
	if s.Len() != 1 || s.ValueAt(sec) != 5 {
		t.Fatalf("overwrite failed: len=%d val=%v", s.Len(), s.ValueAt(sec))
	}
}

func TestSeriesCompaction(t *testing.T) {
	var s Series
	s.Record(0, 2)
	s.Record(sec, 2) // unchanged value should not grow the series
	if s.Len() != 1 {
		t.Fatalf("len = %d, want 1 (compaction)", s.Len())
	}
}

func TestSeriesBackwardsTimePanics(t *testing.T) {
	var s Series
	s.Record(2*sec, 1)
	defer func() {
		if recover() == nil {
			t.Error("backwards time did not panic")
		}
	}()
	s.Record(sec, 2)
}

func TestSeriesIntegralAndAverage(t *testing.T) {
	var s Series
	s.Record(0, 1)
	s.Record(2*sec, 3)
	// Integral over [0, 4s]: 1*2 + 3*2 = 8 core-seconds.
	got := s.Integral(0, 4*sec) / float64(simtime.Second)
	if got != 8 {
		t.Fatalf("integral = %v, want 8", got)
	}
	if avg := s.Average(0, 4*sec); avg != 2 {
		t.Fatalf("average = %v, want 2", avg)
	}
	// Partial segment: [1s, 3s] = 1*1 + 3*1 = 4.
	got = s.Integral(sec, 3*sec) / float64(simtime.Second)
	if got != 4 {
		t.Fatalf("partial integral = %v, want 4", got)
	}
	if s.Integral(3*sec, 3*sec) != 0 {
		t.Fatal("empty interval integral must be 0")
	}
}

func TestSeriesMax(t *testing.T) {
	var s Series
	s.Record(0, 1)
	s.Record(sec, 7)
	s.Record(2*sec, 2)
	if s.Max() != 7 {
		t.Fatalf("max = %v", s.Max())
	}
}

func TestRecorderSeries(t *testing.T) {
	r := NewRecorder()
	r.RecordBusy(0, 0, 0, 4)
	r.RecordBusy(sec, 0, 0, 2)
	r.RecordBusy(0, 1, 0, 1)
	r.RecordOwned(0, 0, 0, 4)
	if got := r.Busy(0, 0).ValueAt(sec); got != 2 {
		t.Fatalf("busy = %v", got)
	}
	if got := r.Owned(0, 0).ValueAt(0); got != 4 {
		t.Fatalf("owned = %v", got)
	}
	if r.Busy(9, 9).Len() != 0 {
		t.Fatal("missing series should be empty, not nil panic")
	}
	keys := r.Keys()
	if len(keys) != 2 || keys[0] != (Key{0, 0}) || keys[1] != (Key{1, 0}) {
		t.Fatalf("keys = %v", keys)
	}
	if r.End() != sec {
		t.Fatalf("end = %v", r.End())
	}
}

func TestRecorderCustom(t *testing.T) {
	r := NewRecorder()
	r.RecordCustom("imbalance", 0, 2.0)
	r.RecordCustom("imbalance", sec, 1.5)
	if got := r.Custom("imbalance").ValueAt(sec); got != 1.5 {
		t.Fatalf("custom = %v", got)
	}
	if r.Custom("missing").Len() != 0 {
		t.Fatal("missing custom series not empty")
	}
}

func TestCSV(t *testing.T) {
	r := NewRecorder()
	r.RecordBusy(0, 0, 1, 3)
	r.RecordOwned(sec, 1, 0, 2)
	csv := r.CSV()
	if !strings.HasPrefix(csv, "kind,node,apprank,time_s,value\n") {
		t.Fatalf("csv header wrong:\n%s", csv)
	}
	if !strings.Contains(csv, "busy,0,1,0.000000,3.000") {
		t.Fatalf("csv missing busy row:\n%s", csv)
	}
	if !strings.Contains(csv, "owned,1,0,1.000000,2.000") {
		t.Fatalf("csv missing owned row:\n%s", csv)
	}
}

func TestRender(t *testing.T) {
	r := NewRecorder()
	r.RecordBusy(0, 0, 0, 4)
	r.RecordBusy(2*sec, 0, 0, 0)
	r.RecordBusy(0, 1, 0, 0)
	r.RecordBusy(2*sec, 1, 0, 4)
	r.RecordBusy(4*sec, 1, 0, 0)
	out := r.Render(40, 4)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("render rows = %d:\n%s", len(lines), out)
	}
	// Row 0 is busy in the first half, idle in the second; row 1 the
	// opposite. Check the dense/space pattern at the quarters.
	row0 := lines[0][strings.Index(lines[0], "|")+1:]
	row1 := lines[1][strings.Index(lines[1], "|")+1:]
	if row0[5] == ' ' || row0[35] != ' ' {
		t.Fatalf("row0 pattern wrong: %q", row0)
	}
	if row1[5] != ' ' || row1[25] == ' ' {
		t.Fatalf("row1 pattern wrong: %q", row1)
	}
}

func TestRenderEmpty(t *testing.T) {
	r := NewRecorder()
	if !strings.Contains(r.Render(10, 0), "empty") {
		t.Fatal("empty render")
	}
}

func TestParaverExport(t *testing.T) {
	r := NewRecorder()
	r.RecordBusy(0, 0, 0, 4)
	r.RecordBusy(sec, 0, 0, 2)
	r.RecordBusy(2*sec, 0, 0, 0)
	r.RecordBusy(0, 1, 1, 1)
	r.RecordBusy(2*sec, 1, 1, 0)
	prv := r.Paraver()
	lines := strings.Split(strings.TrimRight(prv, "\n"), "\n")
	if !strings.HasPrefix(lines[0], "#Paraver") {
		t.Fatalf("missing header: %q", lines[0])
	}
	if !strings.Contains(lines[0], "2000000000_ns:2(2):1:2(") {
		t.Fatalf("header fields wrong: %q", lines[0])
	}
	// State records: task 1 has [0,1s)=4, [1s,2s)=2; task 2 [0,2s)=1.
	want := []string{
		"1:1:1:1:1:0:1000000000:4",
		"1:2:1:2:1:0:2000000000:1",
		"1:1:1:1:1:1000000000:2000000000:2",
	}
	for i, w := range want {
		if lines[i+1] != w {
			t.Fatalf("record %d = %q, want %q", i, lines[i+1], w)
		}
	}
}
