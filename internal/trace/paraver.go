package trace

import (
	"fmt"
	"sort"
	"strings"

	"ompsscluster/internal/simtime"
)

// Paraver renders the recorder's busy timelines in a simplified Paraver
// (.prv) format, the trace format of the BSC tool chain the paper's
// figures were produced with. The header names one application with one
// task per (node, apprank) timeline; each state change becomes a state
// record:
//
//	#Paraver (dd/mm/yy at hh:mm):<endtime>_ns:<nnodes>(<cpus>):1:<ntasks>(...)
//	1:<cpu>:1:<task>:1:<begin>:<end>:<value>
//
// where value is the number of busy cores during [begin, end). It is a
// faithful enough subset for paramedir-style post-processing and for
// regression-testing the timeline content.
func (r *Recorder) Paraver() string {
	keys := r.Keys()
	var b strings.Builder
	nodes := map[int]bool{}
	for _, k := range keys {
		nodes[k.Node] = true
	}
	fmt.Fprintf(&b, "#Paraver (01/01/00 at 00:00):%d_ns:%d(%d):1:%d(",
		int64(r.end), len(nodes), len(keys), len(keys))
	for i := range keys {
		if i > 0 {
			b.WriteString(",")
		}
		fmt.Fprintf(&b, "1:%d", keys[i].Node+1)
	}
	b.WriteString(")\n")
	// Emit state records in global time order for determinism.
	type rec struct {
		begin, end simtime.Time
		task       int
		value      float64
	}
	var recs []rec
	for ti, k := range keys {
		s := r.busy[k]
		times, values := s.Samples()
		for i := range times {
			end := r.end
			if i+1 < len(times) {
				end = times[i+1]
			}
			if end > times[i] {
				recs = append(recs, rec{times[i], end, ti + 1, values[i]})
			}
		}
	}
	sort.Slice(recs, func(i, j int) bool {
		if recs[i].begin != recs[j].begin {
			return recs[i].begin < recs[j].begin
		}
		return recs[i].task < recs[j].task
	})
	for _, rc := range recs {
		fmt.Fprintf(&b, "1:%d:1:%d:1:%d:%d:%d\n",
			rc.task, rc.task, int64(rc.begin), int64(rc.end), int64(rc.value))
	}
	return b.String()
}
