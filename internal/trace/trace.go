// Package trace records Paraver-style execution timelines from the
// simulated runtime: for every (node, apprank) pair, the number of cores
// busy executing that apprank's tasks over time, and the number of cores
// owned by that apprank's worker on that node. These are the quantities
// plotted in Figures 5 and 9 of the paper.
//
// Series are step functions: a recorded value holds until the next
// record. The package can export CSV and render coarse ASCII timelines.
package trace

import (
	"fmt"
	"sort"
	"strings"

	"ompsscluster/internal/simtime"
)

// Key identifies one timeline: apprank's activity on a node.
type Key struct {
	Node, Apprank int
}

func (k Key) String() string { return fmt.Sprintf("node%d/apprank%d", k.Node, k.Apprank) }

// Series is a right-continuous step function of time.
type Series struct {
	times  []simtime.Time
	values []float64
}

// Record appends a sample at time t. Times must be non-decreasing; a
// sample at an existing last time overwrites it.
func (s *Series) Record(t simtime.Time, v float64) {
	if n := len(s.times); n > 0 {
		if t < s.times[n-1] {
			panic(fmt.Sprintf("trace: time went backwards: %v after %v", t, s.times[n-1]))
		}
		if t == s.times[n-1] {
			s.values[n-1] = v
			return
		}
		if s.values[n-1] == v {
			return // no change; keep the series compact
		}
	}
	s.times = append(s.times, t)
	s.values = append(s.values, v)
}

// Len returns the number of stored samples.
func (s *Series) Len() int { return len(s.times) }

// ValueAt returns the value of the step function at time t (0 before the
// first sample).
func (s *Series) ValueAt(t simtime.Time) float64 {
	i := sort.Search(len(s.times), func(i int) bool { return s.times[i] > t })
	if i == 0 {
		return 0
	}
	return s.values[i-1]
}

// Integral returns the integral of the step function over [t0, t1].
func (s *Series) Integral(t0, t1 simtime.Time) float64 {
	if t1 <= t0 || len(s.times) == 0 {
		return 0
	}
	total := 0.0
	// Iterate segments overlapping [t0, t1].
	i := sort.Search(len(s.times), func(i int) bool { return s.times[i] > t0 })
	if i > 0 {
		i--
	}
	for ; i < len(s.times); i++ {
		segStart := s.times[i]
		if segStart < t0 {
			segStart = t0
		}
		segEnd := t1
		if i+1 < len(s.times) && s.times[i+1] < t1 {
			segEnd = s.times[i+1]
		}
		if segEnd > segStart {
			total += s.values[i] * float64(segEnd-segStart)
		}
		if i+1 < len(s.times) && s.times[i+1] >= t1 {
			break
		}
	}
	return total
}

// Average returns the time-average over [t0, t1].
func (s *Series) Average(t0, t1 simtime.Time) float64 {
	if t1 <= t0 {
		return 0
	}
	return s.Integral(t0, t1) / float64(t1-t0)
}

// Max returns the maximum recorded value.
func (s *Series) Max() float64 {
	m := 0.0
	for _, v := range s.values {
		if v > m {
			m = v
		}
	}
	return m
}

// Samples returns copies of the stored (time, value) pairs.
func (s *Series) Samples() ([]simtime.Time, []float64) {
	return append([]simtime.Time(nil), s.times...), append([]float64(nil), s.values...)
}

// Recorder collects busy and owned timelines plus named scalar series
// (for example, node imbalance over time).
type Recorder struct {
	busy   map[Key]*Series
	owned  map[Key]*Series
	custom map[string]*Series
	end    simtime.Time
}

// NewRecorder returns an empty recorder.
func NewRecorder() *Recorder {
	return &Recorder{
		busy:   make(map[Key]*Series),
		owned:  make(map[Key]*Series),
		custom: make(map[string]*Series),
	}
}

func (r *Recorder) get(m map[Key]*Series, k Key) *Series {
	s, ok := m[k]
	if !ok {
		s = &Series{}
		m[k] = s
	}
	return s
}

// RecordBusy records the number of cores busy for apprank on node at t.
func (r *Recorder) RecordBusy(t simtime.Time, node, apprank int, v float64) {
	r.get(r.busy, Key{node, apprank}).Record(t, v)
	if t > r.end {
		r.end = t
	}
}

// RecordOwned records the cores owned by apprank's worker on node at t.
func (r *Recorder) RecordOwned(t simtime.Time, node, apprank int, v float64) {
	r.get(r.owned, Key{node, apprank}).Record(t, v)
	if t > r.end {
		r.end = t
	}
}

// RecordCustom records a named scalar series sample.
func (r *Recorder) RecordCustom(name string, t simtime.Time, v float64) {
	s, ok := r.custom[name]
	if !ok {
		s = &Series{}
		r.custom[name] = s
	}
	s.Record(t, v)
	if t > r.end {
		r.end = t
	}
}

// Busy returns the busy series for (node, apprank), or an empty series.
func (r *Recorder) Busy(node, apprank int) *Series {
	if s, ok := r.busy[Key{node, apprank}]; ok {
		return s
	}
	return &Series{}
}

// Owned returns the owned series for (node, apprank), or an empty series.
func (r *Recorder) Owned(node, apprank int) *Series {
	if s, ok := r.owned[Key{node, apprank}]; ok {
		return s
	}
	return &Series{}
}

// Custom returns the named scalar series, or an empty series.
func (r *Recorder) Custom(name string) *Series {
	if s, ok := r.custom[name]; ok {
		return s
	}
	return &Series{}
}

// End returns the largest recorded time.
func (r *Recorder) End() simtime.Time { return r.end }

// Keys returns the busy-series keys, sorted by node then apprank.
func (r *Recorder) Keys() []Key {
	keys := make([]Key, 0, len(r.busy))
	for k := range r.busy {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].Node != keys[j].Node {
			return keys[i].Node < keys[j].Node
		}
		return keys[i].Apprank < keys[j].Apprank
	})
	return keys
}

// CSV renders every busy/owned series as long-format CSV:
// kind,node,apprank,time_s,value.
func (r *Recorder) CSV() string {
	var b strings.Builder
	b.WriteString("kind,node,apprank,time_s,value\n")
	emit := func(kind string, m map[Key]*Series) {
		keys := make([]Key, 0, len(m))
		for k := range m {
			keys = append(keys, k)
		}
		sort.Slice(keys, func(i, j int) bool {
			if keys[i].Node != keys[j].Node {
				return keys[i].Node < keys[j].Node
			}
			return keys[i].Apprank < keys[j].Apprank
		})
		for _, k := range keys {
			s := m[k]
			for i := range s.times {
				fmt.Fprintf(&b, "%s,%d,%d,%.6f,%.3f\n", kind, k.Node, k.Apprank, s.times[i].Seconds(), s.values[i])
			}
		}
	}
	emit("busy", r.busy)
	emit("owned", r.owned)
	return b.String()
}

// Render draws an ASCII timeline of the busy series, one row per
// (node, apprank), width columns wide, scaled to maxVal cores (0 means
// autoscale per row). It is the textual analogue of the paper's traces.
func (r *Recorder) Render(width int, maxVal float64) string {
	if width <= 0 {
		width = 80
	}
	ramp := []rune(" .:-=+*#%@")
	var b strings.Builder
	end := r.end
	if end == 0 {
		return "(empty trace)\n"
	}
	for _, k := range r.Keys() {
		s := r.busy[k]
		scale := maxVal
		if scale <= 0 {
			scale = s.Max()
		}
		if scale <= 0 {
			scale = 1
		}
		fmt.Fprintf(&b, "%-22s |", k.String())
		for c := 0; c < width; c++ {
			t0 := simtime.Time(float64(end) * float64(c) / float64(width))
			t1 := simtime.Time(float64(end) * float64(c+1) / float64(width))
			avg := s.Average(t0, t1)
			idx := int(avg / scale * float64(len(ramp)-1))
			if idx < 0 {
				idx = 0
			}
			if idx >= len(ramp) {
				idx = len(ramp) - 1
			}
			b.WriteRune(ramp[idx])
		}
		b.WriteString("|\n")
	}
	return b.String()
}
