package core

import (
	"testing"

	"ompsscluster/internal/cluster"
	"ompsscluster/internal/simtime"
	"ompsscluster/internal/trace"
)

// multiSpecs builds a heavy app and a light app sharing the machine.
func multiSpecs(heavyTasks, lightTasks int, done *[2]simtime.Time) []AppSpec {
	mk := func(idx, tasks int) func(app *App) {
		return func(app *App) {
			submitBatch(app, tasks, 10*ms)
			app.TaskWait()
			app.Barrier()
			if app.Rank() == 0 {
				done[idx] = app.Now()
			}
		}
	}
	return []AppSpec{
		{Name: "heavy", RanksPerNode: 1, Degree: 2, Main: mk(0, heavyTasks)},
		{Name: "light", RanksPerNode: 1, Degree: 2, Main: mk(1, lightTasks)},
	}
}

func TestMultiAppCoScheduling(t *testing.T) {
	var done [2]simtime.Time
	rt, err := NewMulti(Config{
		Machine:      cluster.New(2, 8, cluster.DefaultNet()),
		LeWI:         true,
		DROM:         DROMGlobal,
		GlobalPeriod: 30 * ms,
	}, multiSpecs(160, 16, &done))
	if err != nil {
		t.Fatal(err)
	}
	if rt.NumApps() != 2 {
		t.Fatalf("NumApps = %d", rt.NumApps())
	}
	if err := rt.RunAll(); err != nil {
		t.Fatal(err)
	}
	// 2 apps x 2 ranks x tasks.
	if got := rt.TotalTasks(); got != 2*160+2*16 {
		t.Fatalf("tasks = %d, want %d", got, 2*160+2*16)
	}
	if done[1] >= done[0] {
		t.Fatalf("light app (%v) should finish before heavy (%v)", done[1], done[0])
	}
}

func TestMultiAppDLBSharesCoresAcrossApplications(t *testing.T) {
	// The heavy application should run faster when co-scheduled with a
	// light one under LeWI+DROM than under static equal ownership,
	// because DLB shifts the light app's idle cores to the heavy app —
	// DLB's defining multi-application capability (§3.3).
	run := func(lewi bool, drom DROMMode) simtime.Duration {
		var done [2]simtime.Time
		rt, err := NewMulti(Config{
			Machine:      cluster.New(2, 8, cluster.DefaultNet()),
			LeWI:         lewi,
			DROM:         drom,
			GlobalPeriod: 30 * ms,
			LocalPeriod:  20 * ms,
		}, multiSpecs(160, 16, &done))
		if err != nil {
			t.Fatal(err)
		}
		if err := rt.RunAll(); err != nil {
			t.Fatal(err)
		}
		return simtime.Duration(done[0])
	}
	static := run(false, DROMOff)
	balanced := run(true, DROMGlobal)
	// Static: heavy app's home worker owns ~(8-2)/2 = 3 cores per node.
	// Balanced: it can grow toward ~7 per node once the light app ends.
	if balanced >= static {
		t.Fatalf("DLB did not help across applications: %v >= %v", balanced, static)
	}
	if float64(balanced) > 0.7*float64(static) {
		t.Logf("note: balanced %v vs static %v", balanced, static)
	}
}

func TestMultiAppIsolatedWorlds(t *testing.T) {
	// The two applications have separate MPI worlds: identical (rank,
	// tag) messages never cross.
	var got [2]any
	specs := []AppSpec{
		{Name: "a", RanksPerNode: 1, Main: func(app *App) {
			if app.Rank() == 0 {
				app.Comm().Send(1, 5, "from-a", 8)
			} else {
				got[0], _ = app.Comm().Recv(0, 5)
			}
		}},
		{Name: "b", RanksPerNode: 1, Main: func(app *App) {
			if app.Rank() == 0 {
				app.Comm().Send(1, 5, "from-b", 8)
			} else {
				got[1], _ = app.Comm().Recv(0, 5)
			}
		}},
	}
	rt, err := NewMulti(Config{Machine: cluster.New(2, 4, cluster.DefaultNet())}, specs)
	if err != nil {
		t.Fatal(err)
	}
	if err := rt.RunAll(); err != nil {
		t.Fatal(err)
	}
	if got[0] != "from-a" || got[1] != "from-b" {
		t.Fatalf("cross-application message leak: %v", got)
	}
}

func TestMultiAppTraceKeys(t *testing.T) {
	rec := trace.NewRecorder()
	var done [2]simtime.Time
	rt, err := NewMulti(Config{
		Machine:  cluster.New(2, 8, cluster.DefaultNet()),
		LeWI:     true,
		Recorder: rec,
	}, multiSpecs(40, 40, &done))
	if err != nil {
		t.Fatal(err)
	}
	if err := rt.RunAll(); err != nil {
		t.Fatal(err)
	}
	// Global apprank ids 0..1 belong to app 0, 2..3 to app 1.
	if idx, local := rt.AppOf(2); idx != 1 || local != 0 {
		t.Fatalf("AppOf(2) = (%d, %d), want (1, 0)", idx, local)
	}
	if rec.Busy(0, 0).Max() < 1 || rec.Busy(0, 2).Max() < 1 {
		t.Fatal("traces missing for one of the applications")
	}
}

func TestMultiAppValidation(t *testing.T) {
	if _, err := NewMulti(Config{Machine: cluster.New(2, 4, cluster.DefaultNet())}, nil); err == nil {
		t.Fatal("empty spec list accepted")
	}
	// 2 apps x 2 ranks/node x degree 2 = 8 workers on 4-core nodes.
	specs := []AppSpec{
		{RanksPerNode: 2, Degree: 2, Main: func(*App) {}},
		{RanksPerNode: 2, Degree: 2, Main: func(*App) {}},
	}
	if _, err := NewMulti(Config{Machine: cluster.New(2, 4, cluster.DefaultNet())}, specs); err == nil {
		t.Fatal("over-committed node accepted")
	}
	if _, err := NewMulti(Config{Machine: cluster.New(2, 4, cluster.DefaultNet())},
		[]AppSpec{{RanksPerNode: 1}}); err == nil {
		t.Fatal("spec without Main accepted")
	}
	// Run on a multi-app runtime must be rejected.
	rt, err := NewMulti(Config{Machine: cluster.New(2, 8, cluster.DefaultNet())},
		[]AppSpec{
			{RanksPerNode: 1, Main: func(*App) {}},
			{RanksPerNode: 1, Main: func(*App) {}},
		})
	if err != nil {
		t.Fatal(err)
	}
	if err := rt.Run(func(*App) {}); err == nil {
		t.Fatal("Run accepted on a multi-application runtime")
	}
}
