// Package core implements the paper's contribution: transparent load
// balancing of MPI + OmpSs-2 programs by combining OmpSs-2@Cluster task
// offloading with DLB core arbitration.
//
// A ClusterRuntime lays appranks out on a simulated machine, gives each
// apprank helper workers on the nodes adjacent to it in a bipartite
// expander graph (§5.2), schedules ready tasks with the two-tasks-per-
// owned-core rule (§5.5), reacts to fine-grained imbalance with LeWI
// (§5.3), and reassigns core ownership with the local or global DROM
// policy (§5.4). Applications use the App type: an SPMD main per apprank,
// an MPI communicator (nanos6_app_communicator), task submission with
// region accesses, and taskwait.
package core

import (
	"fmt"

	"ompsscluster/internal/balance"
	"ompsscluster/internal/cluster"
	"ompsscluster/internal/expander"
	"ompsscluster/internal/faults"
	"ompsscluster/internal/obs"
	"ompsscluster/internal/simtime"
	"ompsscluster/internal/trace"
)

// DROMMode selects the coarse-grained (ownership) policy.
type DROMMode int

// DROM policy modes.
const (
	// DROMOff keeps the initial static ownership.
	DROMOff DROMMode = iota
	// DROMLocal runs the local convergence policy (§5.4.1).
	DROMLocal
	// DROMGlobal runs the global solver policy (§5.4.2).
	DROMGlobal
)

func (m DROMMode) String() string {
	switch m {
	case DROMOff:
		return "off"
	case DROMLocal:
		return "local"
	case DROMGlobal:
		return "global"
	}
	return fmt.Sprintf("DROMMode(%d)", int(m))
}

// Config describes a runtime instance.
type Config struct {
	// Machine is the hardware model. Required.
	Machine *cluster.Machine
	// AppranksPerNode is the number of application ranks homed on each
	// node (1 or 2 in the paper). Default 1.
	AppranksPerNode int
	// Degree is the offloading degree: the number of nodes (including
	// the home node) each apprank may execute tasks on. Degree 1
	// disables offloading. Default 1.
	Degree int
	// Shape selects the helper graph family (expander by default).
	Shape expander.Shape
	// Graphs, when non-nil, caches generated helper graphs so repeated
	// runs of the same layout (a sweep) share one generation. The store
	// is safe for concurrent use; the cached graphs are never mutated.
	Graphs *expander.Store
	// LeWI enables fine-grained lending/borrowing of idle cores.
	LeWI bool
	// DROM selects the ownership policy.
	DROM DROMMode
	// Seed drives graph generation and any randomized choices.
	Seed int64

	// TasksPerCore is the scheduler's assignment threshold: a worker
	// accepts immediate scheduling while it holds fewer than
	// TasksPerCore tasks per owned core (§5.5). Default 2.
	TasksPerCore int
	// CountBorrowed makes the scheduler count borrowed cores in the
	// threshold (an ablation; the paper deliberately does not, §5.5).
	CountBorrowed bool
	// Incentive is the own-node work weighting of the global policy.
	// Zero means the paper's default of 1e-6; a negative value disables
	// the incentive entirely (for the ablation).
	Incentive float64
	// GlobalUseSimplex switches the global policy to the simplex solver.
	GlobalUseSimplex bool
	// GlobalPeriod is the global solver invocation period. Default 2s.
	GlobalPeriod simtime.Duration
	// GlobalPartition caps the number of nodes per solver group. The
	// paper: the solve time grows roughly quadratically with the graph,
	// so "larger graphs than 32 nodes should be partitioned and solved
	// in parts". 0 solves the whole machine at once.
	GlobalPartition int
	// GlobalSolveCost is the delay between measuring the load and
	// applying the allocation, modelling the external solver's solve
	// time (the paper reports ~57ms for 32 nodes, growing roughly
	// quadratically). Zero uses that model scaled to the group size; a
	// negative value disables the delay entirely.
	GlobalSolveCost simtime.Duration
	// LocalPeriod is the local policy adjustment period. Default 100ms.
	LocalPeriod simtime.Duration
	// BusyEMA is the exponential smoothing weight applied to each new
	// busy-core window measurement before it reaches the allocation
	// policies (1 = use the raw window). Smoothing plays the role of
	// the paper's long (2-second) measurement horizon when the policy
	// period is scaled down, preventing ownership thrash when the
	// window aliases with iteration phases. Default 0.4.
	BusyEMA float64

	// OverheadFixed and OverheadFrac model non-idle runtime time per
	// task: execution occupies the core for
	// work/speed + OverheadFixed + OverheadFrac*work.
	// Defaults 20us and 0.5%.
	OverheadFixed simtime.Duration
	OverheadFrac  float64
	// CtlMsgBytes is the size of offload control messages. Default 256.
	CtlMsgBytes int64

	// Recorder, when non-nil, captures busy/owned timelines and the
	// node-imbalance series (SamplePeriod, default 50ms).
	Recorder     *trace.Recorder
	SamplePeriod simtime.Duration

	// Obs, when non-nil, receives the structured runtime event stream
	// (task lifecycle, messages, DLB ownership, scheduler decisions) for
	// Chrome-trace export and metrics aggregation. When either Obs or
	// Recorder is set the runtime routes the busy/owned timelines through
	// the event stream, so the two views can never disagree; when both
	// are nil the hot paths stay allocation-free.
	Obs *obs.Recorder

	// EngineStats, when non-nil, receives the run's event-engine
	// counters and host execution time once the simulation completes.
	// Sweeps share one collector across runs (it is safe for concurrent
	// use) to track aggregate engine throughput.
	EngineStats *simtime.StatsCollector

	// POP enables full TALP accounting and the POP efficiency report:
	// per-apprank and per-node useful/overhead/MPI/idle/borrowed time
	// with ownership and capacity core-time integrals, queried after the
	// run with Runtime.POP. Accounting uses dedicated fold points so the
	// measurements feeding the allocation policies — and therefore the
	// schedule, every figure CSV, trace and metric — are byte-identical
	// with POP on or off. Default off: the hot paths skip the extra
	// integrals entirely.
	POP bool
	// POPWindow, when positive with POP set, additionally buckets useful
	// core-time into fixed windows of this width, producing the
	// time-resolved PE/LB/CommE series in the POP report (and, when Obs
	// is attached, per-node Perfetto counter tracks). Zero disables the
	// windowed series; POP totals are unaffected.
	POPWindow simtime.Duration

	// Dynamic enables dynamic work spreading: the helper graph grows at
	// runtime under queue pressure instead of being fixed by Degree
	// (§5.2's sketched extension). Typically used with Degree 1.
	Dynamic DynamicConfig

	// Faults, when non-nil, arms a deterministic fault plan on the run:
	// node slowdowns, core loss, flaky links, apprank stalls, node
	// crashes and helper drains, all at fixed virtual times (the plan is
	// bound to Seed, so probabilistic link decisions are reproducible).
	// When nil — the default — every resilience code path is bypassed
	// and the schedule is byte-identical to a build without this
	// subsystem.
	Faults *faults.Plan
	// FaultRetryBudget is how many times an offloaded task is re-placed
	// on another helper after a deadline expiry or target death before
	// falling back to local execution at home. Default 3.
	FaultRetryBudget int
	// OffloadDeadline is the completion deadline carried by offloaded
	// tasks under a fault plan. Zero derives a per-task deadline from
	// the task's work. Deadlines are health-checked, not preemptive: a
	// task observed running on a live node has its deadline extended.
	OffloadDeadline simtime.Duration
	// OnFault, when non-nil, is invoked synchronously after every fault
	// event application (both edges). Tests use it to check invariants
	// at each transition.
	OnFault func(ev faults.Event, phase faults.Phase)

	// SelfSched, when not balance.SelfSchedOff, replaces the reactive
	// §5.5 scheduler for offloadable tasks with a per-apprank dynamic
	// loop self-scheduling chunk server: ready offloadable tasks are
	// held centrally and granted to workers in chunks sized by the
	// selected policy (static chunking, guided, factoring, weighted
	// factoring, or the two-level scheme pairing a weighted inter-node
	// chunk server with LeWI below). Worker weights are snapshot at
	// construction from per-node speed factors and initial core
	// ownership. Non-offloadable tasks still bind to the home worker,
	// and DROM/LeWI keep arbitrating cores underneath the granted
	// chunks. Incompatible with Dynamic spreading (the worker set must
	// be fixed).
	SelfSched balance.SelfSched

	// GoroutineEngine forces the legacy per-task closure paths in the
	// runtime hot path instead of the pooled continuation records
	// (continuations.go). Both engines produce byte-identical schedules
	// and results; the flag exists for the engine differential test and
	// for A/B benchmarking. Default false: continuation records.
	GoroutineEngine bool

	// SimParallel requests the conservative parallel event engine: the
	// simulation is partitioned per simulated node, partitions run
	// concurrently up to the link-latency lookahead horizon, and events
	// with no single-node home (policy ticks, fault edges) run as global
	// barrier events. Results are byte-identical to the sequential
	// engines. Configurations the partitioned engine cannot honor —
	// degree > 1, observability, dynamic spreading, link-fault plans,
	// single-node machines, or a zero-lookahead network — silently fall
	// back to sequential execution and record the reason with
	// EngineStats.RecordFallback.
	SimParallel bool
	// SimWorkers caps the worker threads driving partitions when
	// SimParallel engages. 0 uses GOMAXPROCS; the effective count never
	// exceeds the partition count. Ignored when SimParallel is off.
	SimWorkers int

	// CustomPolicy, when non-nil, replaces the built-in DROM policies
	// with a user-provided core allocator, invoked every LocalPeriod
	// with the smoothed busy measurements (DROM is ignored). This is the
	// extension point for researching new allocation policies on top of
	// the runtime.
	CustomPolicy Allocator
}

// Allocator is the pluggable core-allocation policy interface: it
// receives the measured per-worker busy loads and returns the new
// per-worker core ownership (>= 1 core per worker, per-node sums equal
// to the node's cores). balance.LocalPolicy and balance.GlobalPolicy
// implement it.
type Allocator interface {
	Allocate(p *balance.Problem) (balance.Allocation, error)
}

// withDefaults fills zero values and validates the configuration.
func (c Config) withDefaults() (Config, error) {
	if c.Machine == nil {
		return c, fmt.Errorf("core: Config.Machine is required")
	}
	if c.AppranksPerNode == 0 {
		c.AppranksPerNode = 1
	}
	if c.AppranksPerNode < 0 {
		return c, fmt.Errorf("core: negative AppranksPerNode")
	}
	if c.Degree == 0 {
		c.Degree = 1
	}
	if c.Degree < 1 || c.Degree > c.Machine.NumNodes() {
		return c, fmt.Errorf("core: degree %d out of range [1, %d]", c.Degree, c.Machine.NumNodes())
	}
	if c.TasksPerCore == 0 {
		c.TasksPerCore = 2
	}
	if c.Incentive == 0 {
		c.Incentive = 1e-6
	} else if c.Incentive < 0 {
		c.Incentive = 0
	}
	if c.GlobalPeriod == 0 {
		c.GlobalPeriod = 2 * simtime.Second
	}
	if c.LocalPeriod == 0 {
		c.LocalPeriod = 100 * simtime.Millisecond
	}
	if c.BusyEMA == 0 {
		c.BusyEMA = 0.4
	}
	if c.BusyEMA < 0 || c.BusyEMA > 1 {
		return c, fmt.Errorf("core: BusyEMA %v outside (0, 1]", c.BusyEMA)
	}
	if c.OverheadFixed == 0 {
		c.OverheadFixed = 20 * simtime.Microsecond
	}
	if c.OverheadFrac == 0 {
		c.OverheadFrac = 0.005
	}
	if c.CtlMsgBytes == 0 {
		c.CtlMsgBytes = 256
	}
	if c.SamplePeriod == 0 {
		c.SamplePeriod = 50 * simtime.Millisecond
	}
	if c.SimWorkers < 0 {
		return c, fmt.Errorf("core: negative SimWorkers %d", c.SimWorkers)
	}
	if c.FaultRetryBudget == 0 {
		c.FaultRetryBudget = 3
	}
	if c.FaultRetryBudget < 0 {
		return c, fmt.Errorf("core: negative FaultRetryBudget")
	}
	if c.OffloadDeadline < 0 {
		return c, fmt.Errorf("core: negative OffloadDeadline")
	}
	if c.POPWindow < 0 {
		return c, fmt.Errorf("core: negative POPWindow")
	}
	if c.POPWindow > 0 && !c.POP {
		return c, fmt.Errorf("core: POPWindow requires POP")
	}
	if !c.SelfSched.Valid() {
		return c, fmt.Errorf("core: invalid SelfSched %v", c.SelfSched)
	}
	if c.SelfSched != balance.SelfSchedOff && c.Dynamic.Enabled {
		return c, fmt.Errorf("core: SelfSched %v cannot be combined with dynamic spreading (the chunk server needs a fixed worker set)", c.SelfSched)
	}
	// Every worker must be able to own one core: workers per node =
	// AppranksPerNode * Degree.
	workersPerNode := c.AppranksPerNode * c.Degree
	for _, n := range c.Machine.Nodes {
		if workersPerNode > n.Cores {
			return c, fmt.Errorf("core: node %d has %d cores but %d workers (appranks/node %d x degree %d)",
				n.ID, n.Cores, workersPerNode, c.AppranksPerNode, c.Degree)
		}
	}
	return c, nil
}
