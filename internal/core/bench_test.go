package core

import (
	"testing"

	"ompsscluster/internal/cluster"
)

// BenchmarkEndToEndTasks measures whole-stack task throughput (create,
// schedule, execute, complete) with the full mechanism enabled.
func BenchmarkEndToEndTasks(b *testing.B) {
	rt := MustNew(Config{
		Machine:      cluster.New(8, 8, cluster.DefaultNet()),
		Degree:       4,
		LeWI:         true,
		DROM:         DROMGlobal,
		GlobalPeriod: 100 * ms,
	})
	n := b.N
	b.ResetTimer()
	err := rt.Run(func(app *App) {
		per := n / rt.NumAppranks()
		if app.Rank() == 0 {
			per += n % rt.NumAppranks()
		}
		submitBatch(app, per, ms)
		app.TaskWait()
	})
	if err != nil {
		b.Fatal(err)
	}
}
