package core

import "ompsscluster/internal/nanos"

// The runtime's hottest per-task callbacks — task completion on a worker,
// the arrival of an offload's staged input data, and the completion
// notification releasing successors at the apprank's home — used to be
// fresh closures, one or two heap allocations per task execution. They
// are now explicit continuation records drawn from per-node free
// lists: each record is armed with its (worker, task) state, handed to
// the event engine as a pre-bound func, fired exactly once, and then
// recycled. The event the engine sees is identical to the closure it
// replaced (same call site, same delay, same (time, seq) key), so the
// conversion cannot change any schedule; it only removes the per-task
// allocations. Config.GoroutineEngine retains the closure paths for the
// engine differential check.
//
// Recycling is safe because a record is returned to its free list only
// from inside its own fire method: an armed record is referenced by
// exactly one pending event and can never be aliased. A record whose
// event never fires (a ctl message abandoned by a link-fault plan) is
// simply never recycled and falls to the garbage collector with the rest
// of the run.

// execRec is one in-flight task execution on a worker: the continuation
// that completes the task after its modelled execution time. The worker
// epoch is stamped at arming, as in the closure it replaced: if the
// worker died mid-task (crash or drain), recovery has already
// force-finished and re-placed the task and the record must no-op.
type execRec struct {
	w     *Worker
	t     *nanos.Task
	epoch uint64
	fn    func() // pre-bound fire, allocated once per record
}

func (ns *nodeState) getExec(w *Worker, t *nanos.Task) *execRec {
	var r *execRec
	if n := len(ns.freeExec); n > 0 {
		r, ns.freeExec = ns.freeExec[n-1], ns.freeExec[:n-1]
	} else {
		r = &execRec{}
		r.fn = r.fire
	}
	r.w, r.t, r.epoch = w, t, w.epoch
	return r
}

func (r *execRec) fire() {
	w, t := r.w, r.t
	stale := w.epoch != r.epoch
	r.w, r.t = nil, nil
	w.ns.freeExec = append(w.ns.freeExec, r)
	if stale {
		return
	}
	w.complete(t)
}

// stageRec is one offload staging in flight: the continuation that makes
// the task runnable at the target worker once the control message and
// input data have arrived. Used on fault-free runs only; fault plans
// route offloads through dispatchOffload's tracked records instead.
type stageRec struct {
	w  *Worker
	t  *nanos.Task
	fn func()
}

func (ns *nodeState) getStage(w *Worker, t *nanos.Task) *stageRec {
	var r *stageRec
	if n := len(ns.freeStage); n > 0 {
		r, ns.freeStage = ns.freeStage[n-1], ns.freeStage[:n-1]
	} else {
		r = &stageRec{}
		r.fn = r.fire
	}
	r.w, r.t = w, t
	return r
}

func (r *stageRec) fire() {
	w, t := r.w, r.t
	r.w, r.t = nil, nil
	w.ns.freeStage = append(w.ns.freeStage, r)
	w.inflight--
	w.enqueue(t)
}

// finishRec is one completion notification travelling home: the
// continuation that releases the task's successors in the dependency
// graph when the ctl message arrives at the apprank's home node. Under a
// link-fault plan the message may be dropped, in which case the record
// is abandoned unfired (the deadline machinery re-places the work).
type finishRec struct {
	a  *Apprank
	t  *nanos.Task
	fn func()
}

func (ns *nodeState) getFinish(a *Apprank, t *nanos.Task) *finishRec {
	var r *finishRec
	if n := len(ns.freeFinish); n > 0 {
		r, ns.freeFinish = ns.freeFinish[n-1], ns.freeFinish[:n-1]
	} else {
		r = &finishRec{}
		r.fn = r.fire
	}
	r.a, r.t = a, t
	return r
}

func (r *finishRec) fire() {
	a, t := r.a, r.t
	r.a, r.t = nil, nil
	a.rt.nodes[a.home].freeFinish = append(a.rt.nodes[a.home].freeFinish, r)
	a.finishTask(t)
}
