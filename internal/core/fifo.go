package core

import "ompsscluster/internal/nanos"

// taskFIFO is a pop-from-front task queue that recycles its backing
// array. The scheduler's queues churn constantly (central apprank queue,
// per-worker runnable queues); popping by reslicing the head strands the
// popped prefix, so every refill cycle reallocates. Here popping advances
// a head index and pushing compacts the live tail back to the front when
// the array fills, so steady-state churn allocates nothing.
type taskFIFO struct {
	buf  []*nanos.Task
	head int
}

// Len returns the number of queued tasks.
func (q *taskFIFO) Len() int { return len(q.buf) - q.head }

// Push appends a task at the back.
func (q *taskFIFO) Push(t *nanos.Task) {
	if q.head > 0 && len(q.buf) == cap(q.buf) {
		n := copy(q.buf, q.buf[q.head:])
		clear(q.buf[n:])
		q.buf = q.buf[:n]
		q.head = 0
	}
	q.buf = append(q.buf, t)
}

// Pop removes and returns the front task. It panics on an empty queue.
func (q *taskFIFO) Pop() *nanos.Task {
	t := q.buf[q.head]
	q.buf[q.head] = nil // release for GC
	q.head++
	if q.head == len(q.buf) {
		q.buf = q.buf[:0]
		q.head = 0
	}
	return t
}

// Remove deletes the first occurrence of t, preserving FIFO order, and
// reports whether it was present (the fault-recovery path pulls a task
// out of a dead worker's queue).
func (q *taskFIFO) Remove(t *nanos.Task) bool {
	for i := q.head; i < len(q.buf); i++ {
		if q.buf[i] != t {
			continue
		}
		copy(q.buf[i:], q.buf[i+1:])
		q.buf[len(q.buf)-1] = nil
		q.buf = q.buf[:len(q.buf)-1]
		if q.head == len(q.buf) {
			q.buf = q.buf[:0]
			q.head = 0
		}
		return true
	}
	return false
}

// Clear empties the queue.
func (q *taskFIFO) Clear() {
	clear(q.buf)
	q.buf = q.buf[:0]
	q.head = 0
}
