package core

import (
	"testing"

	"ompsscluster/internal/cluster"
	"ompsscluster/internal/simtime"
)

func TestDynamicSpreadingGrowsUnderImbalance(t *testing.T) {
	rt := MustNew(Config{
		Machine:      cluster.New(4, 8, cluster.DefaultNet()),
		Degree:       1,
		LeWI:         true,
		DROM:         DROMGlobal,
		GlobalPeriod: 40 * ms,
		Dynamic: DynamicConfig{
			Enabled:    true,
			GrowPeriod: 20 * ms,
		},
	})
	err := rt.Run(func(app *App) {
		if app.Rank() == 0 {
			submitBatch(app, 400, 10*ms) // heavy, sustained pressure
		}
		app.TaskWait()
	})
	if err != nil {
		t.Fatal(err)
	}
	if rt.HelpersGrown() == 0 {
		t.Fatal("no helpers grown despite sustained imbalance")
	}
	if rt.DegreeOf(0) < 2 {
		t.Fatalf("apprank 0 degree = %d, want >= 2", rt.DegreeOf(0))
	}
	if rt.TotalOffloadedTasks() == 0 {
		t.Fatal("grown helpers executed nothing")
	}
}

func TestDynamicSpreadingIdleWhenBalanced(t *testing.T) {
	rt := MustNew(Config{
		Machine:      cluster.New(4, 8, cluster.DefaultNet()),
		Degree:       1,
		LeWI:         true,
		DROM:         DROMGlobal,
		GlobalPeriod: 40 * ms,
		Dynamic: DynamicConfig{
			Enabled:    true,
			GrowPeriod: 20 * ms,
		},
	})
	err := rt.Run(func(app *App) {
		// Balanced: modest load that fits each node.
		submitBatch(app, 40, 10*ms)
		app.TaskWait()
	})
	if err != nil {
		t.Fatal(err)
	}
	// Queues exceed capacity (40 tasks vs 16 slots) but the workers are
	// saturated only while work remains everywhere; the grower may add
	// the odd helper under transient pressure, but must not approach
	// full connectivity.
	if rt.HelpersGrown() > 4 {
		t.Fatalf("grew %d helpers on a balanced load", rt.HelpersGrown())
	}
}

func TestDynamicSpreadingRespectsMaxDegree(t *testing.T) {
	rt := MustNew(Config{
		Machine:      cluster.New(8, 4, cluster.DefaultNet()),
		Degree:       1,
		LeWI:         true,
		DROM:         DROMGlobal,
		GlobalPeriod: 30 * ms,
		Dynamic: DynamicConfig{
			Enabled:      true,
			GrowPeriod:   10 * ms,
			MaxDegree:    2,
			GrowPressure: 0.1,
		},
	})
	err := rt.Run(func(app *App) {
		if app.Rank() == 0 {
			submitBatch(app, 600, 10*ms)
		}
		app.TaskWait()
	})
	if err != nil {
		t.Fatal(err)
	}
	for a := 0; a < rt.NumAppranks(); a++ {
		if d := rt.DegreeOf(a); d > 2 {
			t.Fatalf("apprank %d degree %d exceeds MaxDegree 2", a, d)
		}
	}
}

func TestDynamicComparableToStaticDegree(t *testing.T) {
	run := func(dynamic bool, degree int) simtime.Duration {
		cfg := Config{
			Machine:      cluster.New(4, 8, cluster.DefaultNet()),
			Degree:       degree,
			LeWI:         true,
			DROM:         DROMGlobal,
			GlobalPeriod: 40 * ms,
		}
		if dynamic {
			cfg.Dynamic = DynamicConfig{Enabled: true, GrowPeriod: 20 * ms}
		}
		rt := MustNew(cfg)
		err := rt.Run(func(app *App) {
			n := 40
			if app.Rank() == 0 {
				n = 280 // imbalance ~2.8 across 4 ranks
			}
			submitBatch(app, n, 10*ms)
			app.TaskWait()
		})
		if err != nil {
			t.Fatal(err)
		}
		return rt.Elapsed()
	}
	static1 := run(false, 1)
	static3 := run(false, 3)
	dynamic := run(true, 1)
	if dynamic >= static1 {
		t.Fatalf("dynamic (%v) no better than degree 1 (%v)", dynamic, static1)
	}
	// Dynamic spreading should recover most of the static degree-3
	// benefit without the parameter.
	if float64(dynamic) > 1.5*float64(static3) {
		t.Fatalf("dynamic (%v) far behind static degree 3 (%v)", dynamic, static3)
	}
}

func TestPartitionedGlobalSolver(t *testing.T) {
	run := func(partition int) simtime.Duration {
		rt := MustNew(Config{
			Machine:         cluster.New(8, 4, cluster.DefaultNet()),
			Degree:          4,
			LeWI:            true,
			DROM:            DROMGlobal,
			GlobalPeriod:    40 * ms,
			GlobalPartition: partition,
			GlobalSolveCost: -1, // isolate partitioning from solve cost
			Seed:            3,
		})
		err := rt.Run(func(app *App) {
			if app.Rank()%4 == 0 {
				submitBatch(app, 160, 10*ms)
			} else {
				submitBatch(app, 20, 10*ms)
			}
			app.TaskWait()
		})
		if err != nil {
			t.Fatal(err)
		}
		return rt.Elapsed()
	}
	whole := run(0)
	halves := run(4)
	// Each 4-node group contains one heavy rank (ranks 0 and 4), so the
	// partitioned solve balances almost as well as the whole-machine
	// solve.
	if float64(halves) > 1.3*float64(whole) {
		t.Fatalf("partitioned solver (%v) much worse than whole-machine (%v)", halves, whole)
	}
}

func TestGlobalSolveCostDelaysConvergence(t *testing.T) {
	run := func(cost simtime.Duration) simtime.Duration {
		rt := MustNew(Config{
			Machine:         cluster.New(2, 8, cluster.DefaultNet()),
			Degree:          2,
			LeWI:            false, // make DROM the only mechanism
			DROM:            DROMGlobal,
			GlobalPeriod:    40 * ms,
			GlobalSolveCost: cost,
		})
		err := rt.Run(func(app *App) {
			if app.Rank() == 0 {
				submitBatch(app, 160, 10*ms)
			}
			app.TaskWait()
		})
		if err != nil {
			t.Fatal(err)
		}
		return rt.Elapsed()
	}
	fast := run(-1)
	slow := run(100 * ms)
	if slow < fast {
		t.Fatalf("a 100ms solve delay should not speed things up: %v < %v", slow, fast)
	}
}

func TestSolveCostModel(t *testing.T) {
	rt := MustNew(Config{Machine: cluster.New(2, 2, cluster.DefaultNet())})
	if got := rt.solveCost(32); got != 57*ms {
		t.Fatalf("solveCost(32) = %v, want 57ms", got)
	}
	if got := rt.solveCost(64); got != 228*ms {
		t.Fatalf("solveCost(64) = %v, want 228ms (quadratic)", got)
	}
	if rt.solveCost(8) >= rt.solveCost(16) {
		t.Fatal("solve cost not increasing")
	}
}

func TestSolverGroups(t *testing.T) {
	rt := MustNew(Config{Machine: cluster.New(10, 2, cluster.DefaultNet()), GlobalPartition: 4})
	groups := rt.solverGroups()
	if len(groups) != 3 || len(groups[0]) != 4 || len(groups[2]) != 2 {
		t.Fatalf("groups = %d (%d,%d,%d)", len(groups), len(groups[0]), len(groups[1]), len(groups[2]))
	}
	rt2 := MustNew(Config{Machine: cluster.New(10, 2, cluster.DefaultNet())})
	if len(rt2.solverGroups()) != 1 {
		t.Fatal("unpartitioned runtime should have one group")
	}
}
