package core

import (
	"fmt"

	"ompsscluster/internal/dlb"
	"ompsscluster/internal/simtime"
)

// POP builds the run's POP efficiency report from the TALP cells, the
// arbiter core-time integrals, the MPI operation counters, and the task
// graphs. It is available after Run/RunAll on a runtime configured with
// Config.POP.
//
// Determinism: every input is either accumulated in a fixed per-(apprank,
// node) cell by a single writer, or folded at context-clock timestamps
// that are identical across the goroutine, continuation, and parallel
// engines. The builder iterates appranks and nodes in ascending id order,
// so the report — and its JSON rendering — is byte-identical across
// engines at any -simworkers count.
func (rt *ClusterRuntime) POP() (*dlb.POPReport, error) {
	if !rt.cfg.POP {
		return nil, fmt.Errorf("core: POP report requested but Config.POP is off")
	}
	if !rt.started {
		return nil, fmt.Errorf("core: POP report before Run")
	}
	// The accounting horizon: the last apprank finish, extended to the
	// latest integral fold point (a trailing policy tick can fold the
	// ownership integrals slightly past the finish; using the maximum
	// keeps capacity and busy spans identical and AvgCores physical).
	end := rt.finishedAt
	for _, ns := range rt.nodes {
		if h := ns.arb.POPHorizon(); h > end {
			end = h
		}
	}
	in := dlb.POPInput{
		Elapsed: float64(end),
		Window:  rt.talp.Window(),
	}
	// Per-apprank entities, ascending id (rt.appranks is id-ordered).
	for _, a := range rt.appranks {
		e := dlb.POPEntityInput{
			ID:           a.id,
			MPI:          rt.talp.MPITime(a.id),
			DeclaredWork: float64(a.graph.TotalWork()),
		}
		st := rt.apps[a.appIdx]
		colls, recvs := st.world.RankOps(a.localRank)
		e.MPIOps = int64(colls + recvs)
		for n := range rt.nodes {
			c := rt.talp.Cell(a.id, n)
			e.Useful += c.Useful
			e.Overhead += c.Overhead
			e.Tasks += c.Tasks
			e.WinUseful = mergeWins(e.WinUseful, rt.talp.WindowUseful(a.id, n))
		}
		// Apprank capacity is the DLB allotment — owned plus LeWI-borrowed
		// core-time — so utilisation stays bounded by 1 when borrowing runs
		// an apprank far above its static allocation.
		for _, w := range a.workers {
			wp := w.ns.arb.WorkerPOPTotals(w.wid, end)
			e.Busy += wp.Busy
			e.Capacity += wp.Owned + wp.Borrowed
			e.Borrowed += wp.Borrowed
		}
		in.Appranks = append(in.Appranks, e)
	}
	// Per-node entities, ascending node id. MPI time and op counts are
	// attributed to the apprank's home node (the main process runs there).
	for _, ns := range rt.nodes {
		e := dlb.POPEntityInput{
			ID:       ns.id,
			Capacity: ns.arb.CapacityIntegral(end),
		}
		for _, a := range rt.appranks {
			c := rt.talp.Cell(a.id, ns.id)
			e.Useful += c.Useful
			e.Overhead += c.Overhead
			e.Tasks += c.Tasks
			e.WinUseful = mergeWins(e.WinUseful, rt.talp.WindowUseful(a.id, ns.id))
			if a.home == ns.id {
				e.MPI += rt.talp.MPITime(a.id)
				st := rt.apps[a.appIdx]
				colls, recvs := st.world.RankOps(a.localRank)
				e.MPIOps += int64(colls + recvs)
				e.DeclaredWork += float64(a.graph.TotalWork())
			}
		}
		for _, w := range ns.workers {
			wp := ns.arb.WorkerPOPTotals(w.wid, end)
			e.Busy += wp.Busy
			e.Borrowed += wp.Borrowed
		}
		in.Nodes = append(in.Nodes, e)
	}
	return dlb.ComputePOP(in), nil
}

// mergeWins adds the ragged per-window series src into dst, growing dst
// as needed. src is TALP's live accumulator and is never mutated.
func mergeWins(dst, src []float64) []float64 {
	for len(dst) < len(src) {
		dst = append(dst, 0)
	}
	for i, v := range src {
		dst[i] += v
	}
	return dst
}

// emitPOPWindows exports the windowed node-PE series as structured
// events at the end of a run, when POP windows and an observer are both
// configured. Samples are emitted window-ascending (nodes inner), so
// each node's Perfetto counter track is time-ordered. Without windows or
// an observer this is a no-op, leaving event streams — and the metrics
// derived from them — untouched.
func (rt *ClusterRuntime) emitPOPWindows() {
	if !rt.cfg.POP || rt.cfg.POPWindow <= 0 || rt.cfg.Obs == nil {
		return
	}
	rep, err := rt.POP()
	if err != nil {
		return
	}
	for wi, w := range rep.Windows {
		t := simtime.Time(wi) * simtime.Time(rt.cfg.POPWindow)
		for n, pe := range w.NodePE {
			rt.cfg.Obs.POPWindowSample(n, wi, t, pe)
		}
	}
}
