package core

import (
	"fmt"
	"sync/atomic"
	"time"

	"ompsscluster/internal/balance"
	"ompsscluster/internal/dlb"
	"ompsscluster/internal/expander"
	"ompsscluster/internal/metrics"
	"ompsscluster/internal/obs"
	"ompsscluster/internal/simmpi"
	"ompsscluster/internal/simtime"
	"ompsscluster/internal/trace"
)

// ClusterRuntime is one simulated execution of one or more
// MPI+OmpSs-2@Cluster applications with DLB load balancing.
type ClusterRuntime struct {
	cfg      Config
	env      *simtime.Env
	eng      *simtime.Engine // non-nil when the partitioned engine engaged
	apps     []*appState
	appranks []*Apprank // all applications' ranks, by global id
	nodes    []*nodeState
	talp     *dlb.TALP

	// activeApps is decremented by rank mains as they finish; under the
	// partitioned engine those decrements land on different partition
	// threads, hence atomic (the sequential engines pay one uncontended
	// atomic op per rank exit, which is noise).
	activeApps atomic.Int64
	started    bool
	finishedAt simtime.Time
	dyn        *dynamicState
	flt        *faultState // nil unless Config.Faults is set
	stats      RunStats
}

// RunStats aggregates runtime activity counters over a run.
type RunStats struct {
	// CtlMessages counts runtime control messages (offload commands and
	// completion notifications).
	CtlMessages int64
	// BytesTransferred counts task input bytes staged across nodes.
	BytesTransferred int64
	// Transfers counts cross-node data stagings.
	Transfers int64
	// PolicyRuns counts DROM policy invocations (per solver group).
	PolicyRuns int64
	// OwnershipChanges counts workers whose core ownership changed in a
	// policy application.
	OwnershipChanges int64
	// FaultEvents counts applied fault-plan edges (inject + recover).
	FaultEvents int64
	// Reoffloads counts recovery re-placements of offloaded tasks.
	Reoffloads int64
	// ChunkGrants counts self-scheduling chunk-server grants (one per
	// worker chunk, not per task).
	ChunkGrants int64
}

// nodeState groups the per-node runtime structures.
type nodeState struct {
	rt  *ClusterRuntime
	id  int
	arb *dlb.NodeArbiter
	// env is the event environment the node's activity runs on: the
	// runtime's single environment on the sequential engines, or the
	// node's own partition under the parallel engine.
	env     *simtime.Env
	workers []*Worker
	rr      int  // round-robin start index for fairness in dispatch
	dead    bool // crashed by a fault plan
	queued  bool
	// dispatchFn is the deduplicated dispatch-pass callback, allocated
	// once here instead of per scheduleDispatch call.
	dispatchFn func()

	// Free lists for the hot-path continuation records (continuations.go).
	// Per-node, so each partition thread of the parallel engine recycles
	// only its own records; no locking in either engine.
	freeExec   []*execRec
	freeStage  []*stageRec
	freeFinish []*finishRec
}

// New builds a single-application runtime from the configuration. The
// expander graph, worker layout, arbiters, and initial core ownership are
// all established here, as in the paper all Nanos6 instances are
// initialized at start-up.
func New(cfg Config) (*ClusterRuntime, error) {
	rt, err := newRuntime(cfg)
	if err != nil {
		return nil, err
	}
	if err := rt.addApp(AppSpec{
		Name:         "app0",
		RanksPerNode: rt.cfg.AppranksPerNode,
		Degree:       rt.cfg.Degree,
	}); err != nil {
		return nil, err
	}
	if err := rt.finishConstruction(); err != nil {
		return nil, err
	}
	return rt, nil
}

// newRuntime builds the shared substrate: environment, nodes, arbiters.
func newRuntime(cfg Config) (*ClusterRuntime, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	rt := &ClusterRuntime{
		cfg:  cfg,
		env:  simtime.NewEnv(),
		talp: dlb.NewTALP(),
	}
	// Observability: when either view is requested, both are driven from
	// the one event stream — the structured recorder emits, and a tap
	// reconstructs the legacy busy/owned step series, so the Paraver/CSV
	// exports and the Chrome/metrics exports can never disagree. When
	// neither is requested, rt.cfg.Obs stays nil and every emit site is a
	// free nil check.
	if rt.cfg.Obs != nil || rt.cfg.Recorder != nil {
		if rt.cfg.Obs == nil {
			rt.cfg.Obs = obs.NewRecorder(0) // tap-only: feed the trace, retain nothing
		}
		if rt.cfg.Recorder == nil {
			rt.cfg.Recorder = trace.NewRecorder()
		}
		rt.cfg.Obs.BindClock(rt.env.Now)
		rt.cfg.Obs.AddTap(obs.TraceTap(rt.cfg.Recorder))
	}
	for n := 0; n < cfg.Machine.NumNodes(); n++ {
		ns := &nodeState{
			rt:  rt,
			id:  n,
			env: rt.env,
			arb: dlb.NewNodeArbiter(n, cfg.Machine.Node(n).Cores, cfg.LeWI),
		}
		ns.arb.SetObs(rt.cfg.Obs)
		ns.dispatchFn = func() {
			ns.queued = false
			ns.dispatch()
		}
		rt.nodes = append(rt.nodes, ns)
	}
	return rt, nil
}

// finishConstruction installs ownership, policies, (when enabled)
// dynamic spreading, and the fault plan, once every application's
// workers are registered.
func (rt *ClusterRuntime) finishConstruction() error {
	rt.maybeParallel()
	// Preallocate the TALP entries so the accounting map never mutates
	// structurally once rank mains (possibly on partition threads) start
	// reporting.
	ids := make([]int, len(rt.appranks))
	for i := range ids {
		ids[i] = i
	}
	rt.talp.Preallocate(ids, len(rt.nodes))
	if rt.cfg.POP {
		if rt.cfg.POPWindow > 0 {
			rt.talp.SetWindow(rt.cfg.POPWindow)
		}
		// Give every arbiter a clock for the POP ownership/capacity
		// integrals. CtxNow, not Now: an ownership change from a global
		// barrier event (policy tick, fault edge) under the parallel
		// engine must be stamped with the barrier time even when the
		// node's partition clock lags, so the integral fold points are
		// identical across engines. The closure reads ns.env at call
		// time, so it stays correct after maybeParallel rebinds the
		// node environments.
		for _, ns := range rt.nodes {
			ns := ns
			ns.arb.SetClock(func() simtime.Time { return ns.env.CtxNow() })
		}
	}
	rt.installInitialOwnership()
	rt.installPolicies()
	if rt.cfg.SelfSched != balance.SelfSchedOff {
		// After installInitialOwnership: the chunk-server weights
		// snapshot the §5.4 initial core split.
		rt.installSelfSched()
	}
	if rt.cfg.Dynamic.Enabled {
		rt.installDynamicSpreading()
	}
	if rt.cfg.Faults != nil {
		return rt.armFaults()
	}
	return nil
}

// MustNew is New, panicking on error.
func MustNew(cfg Config) *ClusterRuntime {
	rt, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return rt
}

// Env returns the simulation environment.
func (rt *ClusterRuntime) Env() *simtime.Env { return rt.env }

// Graph returns the first application's expander graph.
func (rt *ClusterRuntime) Graph() *expander.Graph { return rt.apps[0].graph }

// TALP returns the efficiency accounting module.
func (rt *ClusterRuntime) TALP() *dlb.TALP { return rt.talp }

// NumAppranks returns the number of application ranks.
func (rt *ClusterRuntime) NumAppranks() int { return len(rt.appranks) }

// installInitialOwnership assigns each helper one core and splits the
// remaining cores of each node evenly among the appranks homed on it
// (§5.4: "each helper rank owns one core ... ownership of the remaining
// cores is divided equally among the appranks on the node").
func (rt *ClusterRuntime) installInitialOwnership() {
	for _, ns := range rt.nodes {
		owned := make([]int, len(ns.workers))
		var homes []int
		for i, w := range ns.workers {
			if w.isHome() {
				homes = append(homes, i)
			} else {
				owned[i] = 1
			}
		}
		rest := ns.arb.Cores() - (len(ns.workers) - len(homes))
		for k, i := range homes {
			share := rest / len(homes)
			if k < rest%len(homes) {
				share++
			}
			owned[i] = share
		}
		ns.arb.SetOwned(owned)
	}
}

// installPolicies arms the periodic DROM policy and the trace sampler.
func (rt *ClusterRuntime) installPolicies() {
	cfg := rt.cfg
	if cfg.CustomPolicy != nil {
		rt.env.Periodic(cfg.LocalPeriod, cfg.LocalPeriod, func() bool {
			rt.runPolicy(cfg.CustomPolicy)
			return rt.activeApps.Load() > 0 || !rt.started
		})
		if cfg.Recorder != nil {
			rt.env.Periodic(cfg.SamplePeriod, cfg.SamplePeriod, func() bool {
				rt.sampleImbalance()
				return rt.activeApps.Load() > 0 || !rt.started
			})
		}
		return
	}
	switch cfg.DROM {
	case DROMLocal:
		rt.env.Periodic(cfg.LocalPeriod, cfg.LocalPeriod, func() bool {
			rt.runPolicy(balance.LocalPolicy{})
			return rt.activeApps.Load() > 0 || !rt.started
		})
	case DROMGlobal:
		pol := balance.GlobalPolicy{Incentive: cfg.Incentive, UseSimplex: cfg.GlobalUseSimplex}
		rt.env.Periodic(cfg.GlobalPeriod, cfg.GlobalPeriod, func() bool {
			rt.runGlobalPartitioned(pol)
			return rt.activeApps.Load() > 0 || !rt.started
		})
	}
	if cfg.Recorder != nil {
		rt.env.Periodic(cfg.SamplePeriod, cfg.SamplePeriod, func() bool {
			rt.sampleImbalance()
			return rt.activeApps.Load() > 0 || !rt.started
		})
	}
}

// runPolicy gathers busy averages (exponentially smoothed, standing in
// for the paper's long measurement horizon), solves the allocation, and
// applies it via DROM on every node.
func (rt *ClusterRuntime) runPolicy(pol Allocator) {
	now := rt.env.Now()
	alpha := rt.cfg.BusyEMA
	prob := &balance.Problem{}
	for _, ns := range rt.nodes {
		if ns.dead || ns.liveWorkers() == 0 {
			continue // crashed or fully drained: nothing to allocate
		}
		prob.Nodes = append(prob.Nodes, balance.NodeInfo{ID: ns.id, Cores: ns.arb.Cores()})
		for _, w := range ns.workers {
			if w.dead {
				continue
			}
			sample := ns.arb.TakeBusyAverage(w.wid, now)
			w.busySmooth = alpha*sample + (1-alpha)*w.busySmooth
			prob.Workers = append(prob.Workers, balance.WorkerLoad{
				Key:  balance.WorkerKey{Apprank: w.app.id, Node: ns.id},
				Busy: w.busySmooth,
				Home: w.isHome(),
			})
		}
	}
	rt.stats.PolicyRuns++
	alloc, err := pol.Allocate(prob)
	if err != nil {
		panic(fmt.Sprintf("core: policy failed at %v: %v", now, err))
	}
	for _, ns := range rt.nodes {
		if ns.dead || ns.liveWorkers() == 0 {
			continue
		}
		owned := make([]int, len(ns.workers))
		for i, w := range ns.workers {
			if w.dead {
				continue // retired workers keep zero ownership
			}
			owned[i] = alloc[balance.WorkerKey{Apprank: w.app.id, Node: ns.id}]
			if owned[i] != ns.arb.Owned(w.wid) {
				rt.stats.OwnershipChanges++
			}
		}
		ns.arb.SetOwned(owned)
	}
	// Capacity changed: pull queued work and dispatch everywhere.
	for _, a := range rt.appranks {
		a.refillAll()
	}
	for _, ns := range rt.nodes {
		ns.scheduleDispatch()
	}
}

// solverGroups partitions the nodes into contiguous groups of at most
// GlobalPartition nodes (§5.4.2: graphs beyond ~32 nodes are solved in
// parts). With GlobalPartition 0 there is a single group.
func (rt *ClusterRuntime) solverGroups() [][]*nodeState {
	size := rt.cfg.GlobalPartition
	if size <= 0 || size >= len(rt.nodes) {
		return [][]*nodeState{rt.nodes}
	}
	var groups [][]*nodeState
	for i := 0; i < len(rt.nodes); i += size {
		end := i + size
		if end > len(rt.nodes) {
			end = len(rt.nodes)
		}
		groups = append(groups, rt.nodes[i:end])
	}
	return groups
}

// solveCost models the external solver's run time for a group of n
// nodes: ~57ms at 32 nodes, growing quadratically (§5.4.2).
func (rt *ClusterRuntime) solveCost(n int) simtime.Duration {
	if rt.cfg.GlobalSolveCost < 0 {
		return 0
	}
	if rt.cfg.GlobalSolveCost > 0 {
		return rt.cfg.GlobalSolveCost
	}
	f := float64(n) / 32.0
	return simtime.Duration(57 * float64(simtime.Millisecond) * f * f)
}

// runGlobalPartitioned measures each solver group now and applies its
// allocation after the modelled solve delay. Groups solve independently
// (in parallel, on separate nodes, as the paper suggests), so each pays
// only its own group's solve time.
func (rt *ClusterRuntime) runGlobalPartitioned(pol balance.GlobalPolicy) {
	now := rt.env.Now()
	alpha := rt.cfg.BusyEMA
	for _, grp := range rt.solverGroups() {
		grp := grp
		prob := &balance.Problem{}
		for _, ns := range grp {
			if ns.dead || ns.liveWorkers() == 0 {
				continue
			}
			prob.Nodes = append(prob.Nodes, balance.NodeInfo{ID: ns.id, Cores: ns.arb.Cores()})
			for _, w := range ns.workers {
				if w.dead {
					continue
				}
				sample := ns.arb.TakeBusyAverage(w.wid, now)
				w.busySmooth = alpha*sample + (1-alpha)*w.busySmooth
				prob.Workers = append(prob.Workers, balance.WorkerLoad{
					Key:  balance.WorkerKey{Apprank: w.app.id, Node: ns.id},
					Busy: w.busySmooth,
					Home: w.isHome(),
				})
			}
		}
		if len(prob.Nodes) == 0 {
			continue
		}
		apply := func() {
			rt.stats.PolicyRuns++
			alloc, err := pol.Allocate(prob)
			if err != nil {
				panic(fmt.Sprintf("core: global policy failed at %v: %v", rt.env.Now(), err))
			}
			for _, ns := range grp {
				if ns.dead || ns.liveWorkers() == 0 {
					continue
				}
				owned := make([]int, len(ns.workers))
				for i, w := range ns.workers {
					if w.dead {
						continue
					}
					owned[i] = alloc[balance.WorkerKey{Apprank: w.app.id, Node: ns.id}]
				}
				// The problem was measured before the modelled solve delay;
				// a core-loss or drain fault may have changed the node in
				// the meantime, leaving a stale total. Reconcile to the
				// node's core count as of now (no-op on fault-free runs).
				reconcileOwned(owned, ns.workers, ns.arb.Cores())
				for i, w := range ns.workers {
					if !w.dead && owned[i] != ns.arb.Owned(w.wid) {
						rt.stats.OwnershipChanges++
					}
				}
				ns.arb.SetOwned(owned)
			}
			for _, a := range rt.appranks {
				a.refillAll()
			}
			for _, ns := range grp {
				ns.scheduleDispatch()
			}
		}
		if cost := rt.solveCost(len(grp)); cost > 0 {
			rt.env.Schedule(cost, apply)
		} else {
			apply()
		}
	}
}

// reconcileOwned adjusts a solver allocation to the node's core count at
// apply time. A fault landing during the modelled solve delay can leave
// the allocation stale: a core loss shrinks the node below the measured
// total, a drain zeroes a dead worker's share. Excess is revoked from
// the largest owners (keeping the one-core floor while possible, as
// loseCores does); shortfall goes to the emptiest live worker. On
// fault-free runs the allocation already sums to the core count and
// both loops are never entered.
func reconcileOwned(owned []int, workers []*Worker, cores int) {
	sum := 0
	for _, o := range owned {
		sum += o
	}
	for floor := 1; sum > cores; {
		best := -1
		for i, o := range owned {
			if o > floor && (best == -1 || o > owned[best]) {
				best = i
			}
		}
		if best == -1 {
			floor = 0 // everyone at the floor: give up the floor
			continue
		}
		owned[best]--
		sum--
	}
	for sum < cores {
		best := -1
		for i, w := range workers {
			if w.dead {
				continue
			}
			if best == -1 || owned[i] < owned[best] {
				best = i
			}
		}
		if best == -1 {
			return // no live workers; the caller skips such nodes
		}
		owned[best]++
		sum++
	}
}

// sampleImbalance records the node-level imbalance (Figure 11's metric):
// max over nodes of windowed busy load divided by the average.
func (rt *ClusterRuntime) sampleImbalance() {
	now := rt.env.Now()
	w := rt.cfg.SamplePeriod
	t0 := now - simtime.Time(w)
	if t0 < 0 {
		t0 = 0
	}
	loads := make([]float64, len(rt.nodes))
	for i, ns := range rt.nodes {
		total := 0.0
		for _, a := range rt.appranks {
			total += rt.cfg.Recorder.Busy(ns.id, a.id).Average(t0, now)
		}
		loads[i] = total
	}
	v := metrics.Imbalance(loads)
	rt.cfg.Recorder.RecordCustom("node_imbalance", now, v)
	rt.cfg.Obs.Imbalance(v)
}

// sendCtl models a runtime control message from one node to another,
// invoking fn on arrival.
func (rt *ClusterRuntime) sendCtl(from, to int, bytes int64, fn func()) {
	rt.stats.CtlMessages++
	rt.cfg.Obs.CtlMsg(from, to, bytes)
	d := rt.cfg.Machine.Net.TransferTime(from, to, bytes)
	if rt.flt != nil {
		rt.scheduleLinked(from, to, d, fn)
		return
	}
	rt.env.Schedule(d, fn)
}

// Stats returns the run's activity counters. Per-apprank counters (chunk
// grants are incremented on the apprank's own partition thread under the
// parallel engine) are folded in here.
func (rt *ClusterRuntime) Stats() RunStats {
	s := rt.stats
	for _, a := range rt.appranks {
		s.ChunkGrants += a.chunkGrants
	}
	return s
}

// Run spawns the SPMD main on every apprank of the (single) application
// and executes the simulation to completion. It returns an error if a
// rank program panicked, blocked forever, or left tasks unfinished.
// Multi-application runtimes built with NewMulti use RunAll instead.
func (rt *ClusterRuntime) Run(main func(app *App)) error {
	if rt.started {
		return fmt.Errorf("core: runtime already ran")
	}
	if len(rt.apps) != 1 {
		return fmt.Errorf("core: Run on a %d-application runtime; use RunAll", len(rt.apps))
	}
	rt.started = true
	st := rt.apps[0]
	rt.activeApps.Store(int64(len(st.ranks)))
	for _, a := range st.ranks {
		a := a
		a.proc = st.world.Spawn(a.localRank, func(c *simmpi.Comm) {
			app := &App{rt: rt, apprank: a, comm: c}
			rt.talp.StartApp(a.id, a.env.Now())
			main(app)
			// Implicit taskwait at the end of main, as in OmpSs-2.
			app.TaskWait()
			a.finishedMain = true
			a.finishedAt = a.env.Now()
			rt.activeApps.Add(-1)
		})
	}
	return rt.finishRun()
}

// finishRun executes the simulation and checks the end-of-run invariants.
func (rt *ClusterRuntime) finishRun() error {
	start := time.Now()
	var err error
	if rt.eng != nil {
		err = rt.eng.Run()
		rt.cfg.EngineStats.Record(rt.eng.EngineStats(), time.Since(start))
		rt.cfg.EngineStats.RecordPartitions(rt.eng.PartitionStats())
	} else {
		err = rt.env.Run()
		rt.cfg.EngineStats.Record(rt.env.EngineStats(), time.Since(start))
	}
	// Each rank stamped its own finish time on its own environment; the
	// run finished when the last one did.
	for _, a := range rt.appranks {
		if a.finishedAt > rt.finishedAt {
			rt.finishedAt = a.finishedAt
		}
	}
	hiwater := 0
	for _, a := range rt.appranks {
		if hw := a.graph.RegistryHighWater(); hw > hiwater {
			hiwater = hw
		}
	}
	rt.cfg.EngineStats.RecordRegistryHiWater(uint64(hiwater))
	if err != nil {
		return err
	}
	if rt.flt != nil && rt.flt.abortErr != nil {
		return rt.flt.abortErr
	}
	if rt.eng != nil {
		if dl := rt.eng.Deadlock(); dl != nil {
			return dl
		}
	} else if dl := rt.env.Deadlock(); dl != nil {
		return dl
	}
	for _, a := range rt.appranks {
		if a.aborted {
			continue
		}
		if _, _, out := a.graph.Stats(); out != 0 {
			return fmt.Errorf("core: apprank %d finished with %d tasks outstanding", a.id, out)
		}
	}
	for _, ns := range rt.nodes {
		if err := ns.arb.CheckInvariants(); err != nil {
			return err
		}
	}
	rt.emitPOPWindows()
	return nil
}

// Elapsed returns the virtual time at which the last apprank's main
// function completed (excluding any trailing policy ticks).
func (rt *ClusterRuntime) Elapsed() simtime.Duration {
	return simtime.Duration(rt.finishedAt)
}

// TotalOffloadedTasks counts tasks that executed away from their
// apprank's home node.
func (rt *ClusterRuntime) TotalOffloadedTasks() int64 {
	n := int64(0)
	for _, a := range rt.appranks {
		n += a.offloaded
	}
	return n
}

// TotalTasks counts completed tasks across all appranks.
func (rt *ClusterRuntime) TotalTasks() int64 {
	n := int64(0)
	for _, a := range rt.appranks {
		_, c, _ := a.graph.Stats()
		n += c
	}
	return n
}
