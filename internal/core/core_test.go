package core

import (
	"testing"

	"ompsscluster/internal/balance"
	"ompsscluster/internal/cluster"
	"ompsscluster/internal/nanos"
	"ompsscluster/internal/simmpi"
	"ompsscluster/internal/simtime"
	"ompsscluster/internal/trace"
)

const ms = simtime.Millisecond

// submitBatch submits n independent offloadable tasks of the given work,
// each writing its own region.
func submitBatch(app *App, n int, work simtime.Duration) {
	for i := 0; i < n; i++ {
		r := app.Alloc(1 << 10)
		app.Submit(TaskSpec{
			Label:       "batch",
			Work:        work,
			Accesses:    []nanos.Access{{Region: r, Mode: nanos.InOut}},
			Offloadable: true,
		})
	}
}

func TestSingleNodeThroughput(t *testing.T) {
	rt := MustNew(Config{
		Machine: cluster.New(1, 4, cluster.DefaultNet()),
	})
	err := rt.Run(func(app *App) {
		submitBatch(app, 40, 10*ms)
		app.TaskWait()
	})
	if err != nil {
		t.Fatal(err)
	}
	elapsed := rt.Elapsed()
	// 40 tasks x ~10.07ms on 4 cores = ~100.7ms.
	if elapsed < 100*ms || elapsed > 115*ms {
		t.Fatalf("elapsed = %v, want ~101ms", elapsed)
	}
	if rt.TotalTasks() != 40 {
		t.Fatalf("completed %d tasks, want 40", rt.TotalTasks())
	}
	if rt.TotalOffloadedTasks() != 0 {
		t.Fatal("single node cannot offload")
	}
}

func TestDependenciesRespectVirtualTime(t *testing.T) {
	rt := MustNew(Config{Machine: cluster.New(1, 4, cluster.DefaultNet())})
	err := rt.Run(func(app *App) {
		r := app.Alloc(64)
		// A chain of 5 dependent tasks cannot use more than one core.
		for i := 0; i < 5; i++ {
			app.Submit(TaskSpec{Label: "chain", Work: 10 * ms,
				Accesses: []nanos.Access{{Region: r, Mode: nanos.InOut}}})
		}
		app.TaskWait()
	})
	if err != nil {
		t.Fatal(err)
	}
	if rt.Elapsed() < 50*ms {
		t.Fatalf("chain of 5x10ms finished in %v (dependencies ignored?)", rt.Elapsed())
	}
}

func TestLeWIBalancesTwoApprnksOneNode(t *testing.T) {
	run := func(lewi bool) simtime.Duration {
		rt := MustNew(Config{
			Machine:         cluster.New(1, 8, cluster.DefaultNet()),
			AppranksPerNode: 2,
			LeWI:            lewi,
		})
		err := rt.Run(func(app *App) {
			if app.Rank() == 0 {
				submitBatch(app, 80, 10*ms) // heavy
			}
			app.TaskWait()
		})
		if err != nil {
			t.Fatal(err)
		}
		return rt.Elapsed()
	}
	without := run(false)
	with := run(true)
	// Without LeWI apprank 0 has 4 cores: 80*10/4 = 200ms. With LeWI it
	// borrows the idle 4: ~100ms.
	if without < 195*ms {
		t.Fatalf("baseline = %v, want >= ~200ms", without)
	}
	if with > 120*ms {
		t.Fatalf("LeWI run = %v, want ~100ms", with)
	}
}

func TestOffloadingSpreadsAcrossNodes(t *testing.T) {
	run := func(degree int, drom DROMMode, lewi bool) simtime.Duration {
		rt := MustNew(Config{
			Machine: cluster.New(2, 4, cluster.DefaultNet()),
			Degree:  degree,
			LeWI:    lewi,
			DROM:    drom,
		})
		err := rt.Run(func(app *App) {
			if app.Rank() == 0 {
				submitBatch(app, 80, 10*ms)
			}
			app.TaskWait()
		})
		if err != nil {
			t.Fatal(err)
		}
		return rt.Elapsed()
	}
	baseline := run(1, DROMOff, false)
	balanced := run(2, DROMGlobal, true)
	// Baseline: 80 tasks on 4 cores = ~200ms. Offloading: ~100ms plus
	// policy latency (first global tick is early in the run relative to
	// 100ms? the global period is 2s — LeWI does the work here).
	if baseline < 195*ms {
		t.Fatalf("baseline = %v, want ~200ms", baseline)
	}
	if balanced > 150*ms {
		t.Fatalf("offloaded run = %v, want well under baseline", balanced)
	}
}

func TestNonOffloadableStaysHome(t *testing.T) {
	rt := MustNew(Config{
		Machine: cluster.New(2, 2, cluster.DefaultNet()),
		Degree:  2,
		LeWI:    true,
	})
	err := rt.Run(func(app *App) {
		if app.Rank() == 0 {
			for i := 0; i < 20; i++ {
				r := app.Alloc(64)
				app.Submit(TaskSpec{Label: "pinned", Work: 5 * ms,
					Accesses:    []nanos.Access{{Region: r, Mode: nanos.InOut}},
					Offloadable: false})
			}
		}
		app.TaskWait()
	})
	if err != nil {
		t.Fatal(err)
	}
	if rt.TotalOffloadedTasks() != 0 {
		t.Fatalf("%d non-offloadable tasks ran remotely", rt.TotalOffloadedTasks())
	}
}

func TestDegreeOneNeverOffloads(t *testing.T) {
	rt := MustNew(Config{
		Machine: cluster.New(4, 2, cluster.DefaultNet()),
		Degree:  1,
		LeWI:    true,
		DROM:    DROMLocal,
	})
	err := rt.Run(func(app *App) {
		submitBatch(app, 10, ms)
		app.TaskWait()
	})
	if err != nil {
		t.Fatal(err)
	}
	if rt.TotalOffloadedTasks() != 0 {
		t.Fatal("degree 1 offloaded tasks")
	}
	if rt.TotalTasks() != 40 {
		t.Fatalf("tasks = %d, want 40", rt.TotalTasks())
	}
}

func TestMPIInterop(t *testing.T) {
	rt := MustNew(Config{
		Machine:         cluster.New(2, 2, cluster.DefaultNet()),
		AppranksPerNode: 1,
		Degree:          2,
		LeWI:            true,
	})
	sums := make([]float64, 2)
	err := rt.Run(func(app *App) {
		for iter := 0; iter < 3; iter++ {
			submitBatch(app, 4, ms)
			app.TaskWait()
			sums[app.Rank()] = app.AllreduceFloat(float64(app.Rank()+1), simmpi.Sum)
			app.Barrier()
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if sums[0] != 3 || sums[1] != 3 {
		t.Fatalf("allreduce sums = %v, want [3 3]", sums)
	}
}

func TestGlobalPolicyShiftsOwnership(t *testing.T) {
	rec := trace.NewRecorder()
	rt := MustNew(Config{
		Machine:      cluster.New(2, 4, cluster.DefaultNet()),
		Degree:       2,
		LeWI:         true,
		DROM:         DROMGlobal,
		GlobalPeriod: 50 * ms,
		Recorder:     rec,
	})
	err := rt.Run(func(app *App) {
		if app.Rank() == 0 {
			submitBatch(app, 400, 10*ms) // ~1s of imbalance on 4 cores
		}
		app.TaskWait()
	})
	if err != nil {
		t.Fatal(err)
	}
	// After the policy has run, apprank 0's helper on node 1 must own
	// more than its initial single core at some point.
	maxOwned := rec.Owned(1, 0).Max()
	if maxOwned < 2 {
		t.Fatalf("helper ownership never grew (max %v)", maxOwned)
	}
	if rt.TotalOffloadedTasks() == 0 {
		t.Fatal("no tasks offloaded despite imbalance")
	}
}

func TestLocalPolicyBalances(t *testing.T) {
	rt := MustNew(Config{
		Machine:     cluster.New(2, 4, cluster.DefaultNet()),
		Degree:      2,
		LeWI:        true,
		DROM:        DROMLocal,
		LocalPeriod: 20 * ms,
	})
	err := rt.Run(func(app *App) {
		if app.Rank() == 0 {
			submitBatch(app, 160, 10*ms)
		}
		app.TaskWait()
	})
	if err != nil {
		t.Fatal(err)
	}
	// 160 x 10ms on 8 cores = 200ms ideal; 4 cores = 400ms unbalanced.
	if rt.Elapsed() > 300*ms {
		t.Fatalf("local policy run = %v, want well under 400ms", rt.Elapsed())
	}
}

func TestDeterminism(t *testing.T) {
	run := func() (simtime.Duration, uint64, int64) {
		rt := MustNew(Config{
			Machine:         cluster.New(2, 4, cluster.DefaultNet()),
			AppranksPerNode: 2,
			Degree:          2,
			LeWI:            true,
			DROM:            DROMGlobal,
			GlobalPeriod:    30 * ms,
			Seed:            7,
		})
		err := rt.Run(func(app *App) {
			submitBatch(app, 20*(app.Rank()+1), 5*ms)
			app.TaskWait()
			app.Barrier()
			submitBatch(app, 10, 5*ms)
			app.TaskWait()
		})
		if err != nil {
			t.Fatal(err)
		}
		return rt.Elapsed(), rt.Env().Steps(), rt.TotalOffloadedTasks()
	}
	e1, s1, o1 := run()
	e2, s2, o2 := run()
	if e1 != e2 || s1 != s2 || o1 != o2 {
		t.Fatalf("nondeterministic: (%v,%d,%d) vs (%v,%d,%d)", e1, s1, o1, e2, s2, o2)
	}
}

func TestIsolatedAddressSpaces(t *testing.T) {
	// Both appranks allocate the same virtual region; their tasks must
	// not interfere (no cross-apprank dependencies).
	rt := MustNew(Config{
		Machine:         cluster.New(1, 4, cluster.DefaultNet()),
		AppranksPerNode: 2,
		LeWI:            true,
	})
	err := rt.Run(func(app *App) {
		r := app.Alloc(128) // same numeric region on both appranks
		for i := 0; i < 3; i++ {
			app.Submit(TaskSpec{Label: "iso", Work: ms,
				Accesses: []nanos.Access{{Region: r, Mode: nanos.InOut}}})
		}
		app.TaskWait()
	})
	if err != nil {
		t.Fatal(err)
	}
	if rt.TotalTasks() != 6 {
		t.Fatalf("tasks = %d, want 6", rt.TotalTasks())
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("missing machine accepted")
	}
	if _, err := New(Config{Machine: cluster.New(2, 2, cluster.DefaultNet()), Degree: 3}); err == nil {
		t.Fatal("degree > nodes accepted")
	}
	// 2 appranks x degree 2 = 4 workers on a 2-core node: impossible.
	if _, err := New(Config{Machine: cluster.New(2, 2, cluster.DefaultNet()),
		AppranksPerNode: 2, Degree: 2}); err == nil {
		t.Fatal("more workers than cores accepted")
	}
}

func TestRunTwicePanics(t *testing.T) {
	rt := MustNew(Config{Machine: cluster.New(1, 1, cluster.DefaultNet())})
	if err := rt.Run(func(app *App) {}); err != nil {
		t.Fatal(err)
	}
	if err := rt.Run(func(app *App) {}); err == nil {
		t.Fatal("second Run accepted")
	}
}

func TestTALPAccounting(t *testing.T) {
	rt := MustNew(Config{Machine: cluster.New(1, 2, cluster.DefaultNet())})
	err := rt.Run(func(app *App) {
		submitBatch(app, 8, 10*ms)
		app.TaskWait()
	})
	if err != nil {
		t.Fatal(err)
	}
	rep := rt.TALP().Snapshot(rt.Env().Now(), map[int]float64{0: 2})
	if len(rep.Appranks) != 1 {
		t.Fatal("TALP lost the apprank")
	}
	// 8 x ~10ms on 2 cores over ~40ms: efficiency should be near 1.
	if eff := rep.Appranks[0].Efficiency; eff < 0.9 || eff > 1.05 {
		t.Fatalf("efficiency = %v, want ~1.0", eff)
	}
}

func TestRunStatsCounters(t *testing.T) {
	rt := MustNew(Config{
		Machine:      cluster.New(2, 4, cluster.DefaultNet()),
		Degree:       2,
		LeWI:         true,
		DROM:         DROMGlobal,
		GlobalPeriod: 30 * ms,
	})
	err := rt.Run(func(app *App) {
		if app.Rank() == 0 {
			submitBatch(app, 120, 10*ms)
		}
		app.TaskWait()
	})
	if err != nil {
		t.Fatal(err)
	}
	st := rt.Stats()
	if st.CtlMessages == 0 {
		t.Error("no control messages despite offloading")
	}
	if st.BytesTransferred == 0 || st.Transfers == 0 {
		t.Errorf("no data transfers counted: %+v", st)
	}
	if st.PolicyRuns == 0 {
		t.Error("global policy never ran")
	}
	if st.OwnershipChanges == 0 {
		t.Error("ownership never changed under imbalance")
	}
}

// equalSharesPolicy is a trivial Allocator for the extension-point test:
// every worker on a node gets an equal share.
type equalSharesPolicy struct{}

func (equalSharesPolicy) Allocate(p *balance.Problem) (balance.Allocation, error) {
	perNode := map[int][]balance.WorkerKey{}
	for _, w := range p.Workers {
		perNode[w.Key.Node] = append(perNode[w.Key.Node], w.Key)
	}
	alloc := balance.Allocation{}
	for _, n := range p.Nodes {
		ws := perNode[n.ID]
		for i, k := range ws {
			share := n.Cores / len(ws)
			if i < n.Cores%len(ws) {
				share++
			}
			alloc[k] = share
		}
	}
	return alloc, nil
}

func TestCustomPolicyHook(t *testing.T) {
	rt := MustNew(Config{
		Machine:      cluster.New(2, 4, cluster.DefaultNet()),
		Degree:       2,
		LeWI:         true,
		CustomPolicy: equalSharesPolicy{},
		LocalPeriod:  20 * ms,
	})
	err := rt.Run(func(app *App) {
		submitBatch(app, 40, 5*ms)
		app.TaskWait()
	})
	if err != nil {
		t.Fatal(err)
	}
	if rt.Stats().PolicyRuns == 0 {
		t.Fatal("custom policy never ran")
	}
	// Equal shares on a 4-core node with 2 workers: everyone owns 2.
	// The run must still complete all tasks.
	if rt.TotalTasks() != 80 {
		t.Fatalf("tasks = %d, want 80", rt.TotalTasks())
	}
}

func TestTaskWaitOn(t *testing.T) {
	rt := MustNew(Config{Machine: cluster.New(1, 2, cluster.DefaultNet())})
	var waitedAt, allDoneAt simtime.Time
	err := rt.Run(func(app *App) {
		fast := app.Alloc(64)
		slow := app.Alloc(64)
		app.Submit(TaskSpec{Label: "fast", Work: 5 * ms,
			Accesses: []nanos.Access{{Region: fast, Mode: nanos.Out}}})
		app.Submit(TaskSpec{Label: "slow", Work: 50 * ms,
			Accesses: []nanos.Access{{Region: slow, Mode: nanos.Out}}})
		// Wait only on the fast region: must return at ~5ms, while the
		// slow task is still running.
		app.TaskWaitOn([]nanos.Access{{Region: fast, Mode: nanos.In}})
		waitedAt = app.Now()
		app.TaskWait()
		allDoneAt = app.Now()
	})
	if err != nil {
		t.Fatal(err)
	}
	if waitedAt >= simtime.Time(40*ms) {
		t.Fatalf("TaskWaitOn returned at %v, should not wait for the slow task", waitedAt)
	}
	if allDoneAt < simtime.Time(50*ms) {
		t.Fatalf("TaskWait returned at %v, before the slow task finished", allDoneAt)
	}
}

func TestTaskWaitOnUnwrittenRegion(t *testing.T) {
	rt := MustNew(Config{Machine: cluster.New(1, 1, cluster.DefaultNet())})
	err := rt.Run(func(app *App) {
		r := app.Alloc(64)
		// Nothing ever wrote r: the wait must return immediately.
		app.TaskWaitOn([]nanos.Access{{Region: r, Mode: nanos.In}})
	})
	if err != nil {
		t.Fatal(err)
	}
	if rt.Elapsed() != 0 {
		t.Fatalf("TaskWaitOn on untouched region took %v", rt.Elapsed())
	}
}

// TestSimplexPolicyMatchesFlowPolicy runs the same workload under the
// flow-based and simplex-based global solvers: the elapsed times must be
// close (the allocators find equally good optima in vivo).
func TestSimplexPolicyMatchesFlowPolicy(t *testing.T) {
	run := func(simplex bool) simtime.Duration {
		rt := MustNew(Config{
			Machine:          cluster.New(4, 8, cluster.DefaultNet()),
			Degree:           3,
			LeWI:             true,
			DROM:             DROMGlobal,
			GlobalPeriod:     30 * ms,
			GlobalUseSimplex: simplex,
			Seed:             5,
		})
		err := rt.Run(func(app *App) {
			submitBatch(app, 30*(app.Rank()+1), 5*ms)
			app.TaskWait()
		})
		if err != nil {
			t.Fatal(err)
		}
		return rt.Elapsed()
	}
	flowT := run(false)
	simplexT := run(true)
	ratio := float64(simplexT) / float64(flowT)
	if ratio < 0.9 || ratio > 1.1 {
		t.Fatalf("solver paths diverge: flow %v vs simplex %v", flowT, simplexT)
	}
}
