package core

import (
	"math"

	"ompsscluster/internal/balance"
	"ompsscluster/internal/expander"
	"ompsscluster/internal/nanos"
	"ompsscluster/internal/obs"
	"ompsscluster/internal/simtime"
)

// Apprank is one application rank: a home worker plus helper workers on
// the nodes adjacent in its application's expander graph, a task
// dependency graph, and a central ready queue for tasks that no worker
// can accept yet.
type Apprank struct {
	rt        *ClusterRuntime
	id        int // global id across all co-scheduled applications
	localRank int // rank within the owning application
	appIdx    int // owning application index
	home      int
	// env is the event environment the apprank's activity (its rank
	// process, graph callbacks, chunk pump) runs on: the runtime's single
	// environment on the sequential engines, or the home node's partition
	// under the parallel engine.
	env          *simtime.Env
	finishedAt   simtime.Time // when this rank's main (or abort) completed
	chunkGrants  int64        // per-apprank so partition threads never share a counter
	workers      []*Worker    // workers[0] is the home worker
	graph        *nanos.TaskGraph
	queue        taskFIFO      // centrally held ready tasks (§5.5)
	allocNext    uint64        // bump allocator for the apprank's address space
	offloaded    int64         // tasks started away from home
	pendingWaits []pendingWait // taskwait-on sentinels
	locBuf       nanos.LocVec  // reusable location vector for the hot scheduling path

	// Fault-plan state (nil/zero on fault-free runs).
	proc         *simtime.Proc // the rank's main process, for crash kill
	aborted      bool          // application aborted by a node crash
	finishedMain bool          // main returned (its implicit taskwait passed)
	stalled      bool          // dispatch frozen by a stall fault
	offRecs      []*offloadRec // offload records in placement order
	offByTask    map[*nanos.Task]*offloadRec

	// Self-scheduling state (nil/zero unless Config.SelfSched is set).
	chunks     *balance.ChunkServer
	pumpQueued bool   // a pump pass is already scheduled at the current time
	pumpFn     func() // deduplicated pump callback, allocated once
}

func newApprank(rt *ClusterRuntime, id, localRank, appIdx int, g *expander.Graph) *Apprank {
	a := &Apprank{
		rt:        rt,
		id:        id,
		localRank: localRank,
		appIdx:    appIdx,
		home:      g.Home(localRank),
		env:       rt.env,
		allocNext: 1 << 12,
		locBuf:    nanos.NewLocVec(rt.cfg.Machine.NumNodes()),
	}
	for _, n := range g.Neighbors(localRank) {
		ns := rt.nodes[n]
		w := &Worker{app: a, ns: ns, wid: ns.arb.AddWorker()}
		ns.workers = append(ns.workers, w)
		a.workers = append(a.workers, w)
		rt.cfg.Obs.RegisterWorker(ns.id, int(w.wid), a.id)
	}
	a.graph = nanos.NewTaskGraph(a.onReady)
	a.graph.SetObs(rt.cfg.Obs, a.id)
	return a
}

// workerOn returns the apprank's worker on the given node, or nil.
func (a *Apprank) workerOn(node int) *Worker {
	for _, w := range a.workers {
		if w.ns.id == node {
			return w
		}
	}
	return nil
}

// onReady implements the tentative scheduling decision of §5.5: schedule
// to the locality-best worker if it holds fewer than TasksPerCore tasks
// per owned core; otherwise to the emptiest alternative under the
// threshold; otherwise hold centrally (tasks are then stolen as others
// complete).
func (a *Apprank) onReady(t *nanos.Task) {
	if a.aborted {
		return
	}
	if len(a.pendingWaits) > 0 && a.resolveWait(t) {
		return
	}
	if !t.Offloadable {
		// Non-offloadable tasks bind to the home worker immediately;
		// they must never sit in the central queue, which any worker
		// (including helpers) may steal from.
		a.assign(a.workers[0], t, a.dataLocation(t))
		return
	}
	if a.chunks != nil {
		// Self-scheduling: offloadable tasks park centrally and the
		// chunk pump grants them in policy-sized chunks.
		a.schedDecision(t, nil, nil, obs.SchedQueued)
		a.queue.Push(t)
		a.schedulePump()
		return
	}
	// One registry walk serves the whole decision: the locality choice
	// below and the transfer estimate inside assign both read loc.
	loc := a.dataLocation(t)
	best := a.localityBest(loc)
	if best.underThreshold() {
		a.schedDecision(t, best, loc, obs.SchedBest)
		a.assign(best, t, loc)
		return
	}
	var alt *Worker
	bestRatio := math.Inf(1)
	for _, w := range a.workers {
		if w == best || w.dead || !w.underThreshold() {
			continue
		}
		cap := w.capacity()
		if cap == 0 {
			continue
		}
		if r := float64(w.load()) / float64(cap); r < bestRatio {
			bestRatio, alt = r, w
		}
	}
	if alt != nil {
		a.schedDecision(t, alt, loc, obs.SchedAlt)
		a.assign(alt, t, loc)
		return
	}
	a.schedDecision(t, nil, loc, obs.SchedQueued)
	a.queue.Push(t)
}

// schedDecision reports one scheduler choice to the structured recorder:
// the candidate-set size (workers currently under the threshold), the
// winning worker's node, and the task input bytes already resident there.
// Gated on the recorder so the candidate count is never computed when
// tracing is off.
func (a *Apprank) schedDecision(t *nanos.Task, w *Worker, loc nanos.LocVec, outcome int) {
	o := a.rt.cfg.Obs
	if o == nil {
		return
	}
	candidates := 0
	for _, cw := range a.workers {
		if cw.underThreshold() {
			candidates++
		}
	}
	node, bytes := -1, int64(0)
	if w != nil {
		node = w.ns.id
		bytes = loc.On(node)
	}
	o.SchedDecision(a.id, t.ID, node, candidates, bytes, outcome)
}

// dataLocation fills the apprank's reusable location vector for the
// task's input accesses, folding bytes of unknown location into the home
// node. The returned vector aliases a.locBuf: it is valid only until the
// next dataLocation call and must not be retained across events.
func (a *Apprank) dataLocation(t *nanos.Task) nanos.LocVec {
	a.graph.DataLocationInto(t.Accesses, a.locBuf)
	loc := a.locBuf
	loc[a.home+1] += loc[0]
	loc[0] = 0
	return loc
}

// localityBest picks the adjacent worker holding the most input bytes of
// the task per the location vector (unknown bytes already folded home).
func (a *Apprank) localityBest(loc nanos.LocVec) *Worker {
	best := a.workers[0]
	bestBytes := loc.On(a.home)
	for _, w := range a.workers[1:] {
		if w.dead {
			continue
		}
		if b := loc.On(w.ns.id); b > bestBytes {
			best, bestBytes = w, b
		}
	}
	return best
}

// transferDelay estimates the time to stage the task's input data on the
// target node: parallel transfers from each holding node, so the maximum
// single-source transfer time. It is a pure estimator — speculative
// callers are safe; the moved bytes are accounted by assign, the commit
// point.
func (a *Apprank) transferDelay(loc nanos.LocVec, target int) (delay, moved int64) {
	for node := 0; node < loc.NumNodes(); node++ {
		bytes := loc.On(node)
		if node == target || bytes == 0 {
			continue
		}
		moved += bytes
		if d := int64(a.rt.cfg.Machine.Net.TransferTime(node, target, bytes)); d > delay {
			delay = d
		}
	}
	return delay, moved
}

// assign hands a ready task to a worker. Offloading (and pulling remote
// input data) costs a control message plus the data transfer; the task
// becomes runnable at the worker when everything has arrived. Offload is
// final: the task will execute on that worker's node (§5.5). loc is the
// task's current location vector (from dataLocation); the transfer stats
// are accounted here, when the placement is committed.
func (a *Apprank) assign(w *Worker, t *nanos.Task, loc nanos.LocVec) {
	rt := a.rt
	dataDelay, moved := a.transferDelay(loc, w.ns.id)
	rt.cfg.Obs.TaskScheduled(a.id, t.ID, w.ns.id, moved, simtimeDuration(dataDelay))
	if moved > 0 {
		rt.stats.BytesTransferred += moved
		rt.stats.Transfers++
	}
	if w.ns.id == a.home && dataDelay == 0 {
		if rt.flt != nil {
			// A task pulled back home (recovery's local fallback, or a
			// plain home assignment) no longer needs tracking.
			a.retireOffload(t)
		}
		w.enqueue(t)
		return
	}
	ctl := int64(rt.cfg.Machine.Net.TransferTime(a.home, w.ns.id, rt.cfg.CtlMsgBytes))
	w.inflight++
	if rt.flt != nil {
		a.dispatchOffload(w, t, simtimeDuration(ctl+dataDelay))
		return
	}
	if rt.cfg.GoroutineEngine {
		w.ns.after(simtimeDuration(ctl+dataDelay), func() {
			w.inflight--
			w.enqueue(t)
		})
		return
	}
	w.ns.after(simtimeDuration(ctl+dataDelay), w.ns.getStage(w, t).fn)
}

// refillAll pulls centrally queued tasks into any worker below the
// threshold (after a DROM ownership change raises capacities).
func (a *Apprank) refillAll() {
	for _, w := range a.workers {
		a.refill(w)
	}
}

// refill lets worker w steal centrally queued tasks while it is under the
// scheduling threshold ("will be stolen as tasks complete", §5.5).
func (a *Apprank) refill(w *Worker) {
	if w.dead || a.aborted {
		return
	}
	if a.chunks != nil {
		// The chunk server owns the central queue: a completion raises
		// demand through the pump instead of direct stealing.
		a.schedulePump()
		return
	}
	for a.queue.Len() > 0 && w.underThreshold() {
		t := a.queue.Pop()
		a.assign(w, t, a.dataLocation(t))
	}
}

// borrowRefill lets a worker pull centrally queued tasks beyond the
// owned-core threshold when LeWI could run them on borrowed (currently
// idle) cores. The pull target counts the cores the worker is already
// using plus the node's idle cores, so it is aggressive enough to keep a
// stream of work on lent cores but bounded by what could start now —
// mirroring the paper's observation that borrowed-core usage stays under
// 100% because borrowed cores must not be taken for granted (§5.5).
func (a *Apprank) borrowRefill(w *Worker) {
	if a.chunks != nil {
		// Under self-scheduling only the chunk server hands out central
		// tasks; LeWI still lends idle cores to already-granted chunks
		// through the dispatcher's borrow pass.
		return
	}
	if a.queue.Len() == 0 || !w.ns.arb.LeWIEnabled() {
		return
	}
	target := w.running + w.ns.arb.IdleCores()
	if c := w.capacity(); c > target {
		target = c
	}
	for a.queue.Len() > 0 && w.load() < target {
		t := a.queue.Pop()
		a.assign(w, t, a.dataLocation(t))
	}
}

// finishTask runs at the apprank's home when a task completion becomes
// visible there, releasing successors in the dependency graph.
func (a *Apprank) finishTask(t *nanos.Task) {
	if a.rt.flt != nil {
		if a.aborted {
			return
		}
		a.retireOffload(t)
	}
	a.graph.Complete(t)
}

// waitOn submits a zero-work sentinel task whose readiness means every
// earlier task overlapping its accesses has completed; fn runs then. The
// sentinel never occupies a core: it completes the moment it becomes
// ready.
func (a *Apprank) waitOn(sentinel *nanos.Task, fn func()) {
	a.pendingWaits = append(a.pendingWaits, pendingWait{sentinel, fn})
	a.graph.Submit(sentinel)
}

// pendingWait pairs a sentinel task with its continuation.
type pendingWait struct {
	task *nanos.Task
	fn   func()
}

// resolveWait completes a ready sentinel immediately and runs its
// continuation; it reports whether t was a sentinel.
func (a *Apprank) resolveWait(t *nanos.Task) bool {
	for i, pw := range a.pendingWaits {
		if pw.task == t {
			a.pendingWaits = append(a.pendingWaits[:i], a.pendingWaits[i+1:]...)
			a.graph.MarkRunning(t, a.home)
			a.graph.Complete(t)
			pw.fn()
			return true
		}
	}
	return false
}
