package core

import (
	"fmt"

	"ompsscluster/internal/simtime"
)

// Dynamic work spreading (§5.2, "Dynamic work spreading"): instead of a
// static expander graph fixed at start-up, helper workers are spawned at
// runtime where the load requires them. The paper describes this as the
// natural extension of its design — it removes the offloading-degree
// parameter and avoids reserving helper cores that may never be used —
// but leaves it unimplemented, expecting the benefit "would likely not be
// sufficient to compensate for the extra implementation and evaluation
// complexity". This implementation lets the ablation test that claim.
//
// The growth policy is deliberately simple and local, in the spirit of
// §5.4.1: every GrowPeriod, an apprank whose central ready queue has
// stayed non-empty (smoothed pressure above GrowPressure) while all of
// its current workers' capacity is saturated gains one helper on the
// node with the most idle capacity that it does not use yet. Shrinking
// never happens: as in the static design, offload targets are stable and
// an unused helper costs one core (its DROM floor), which LeWI lends
// back while idle.

// DynamicConfig tunes dynamic work spreading.
type DynamicConfig struct {
	// Enabled turns the feature on. The static Degree (usually 1) seeds
	// the initial graph.
	Enabled bool
	// MaxDegree caps the number of nodes an apprank may spread over
	// (0 = number of nodes).
	MaxDegree int
	// GrowPeriod is how often growth decisions are made (default: the
	// policy period of the configured DROM mode, or 100ms).
	GrowPeriod simtime.Duration
	// GrowPressure is the smoothed queue-pressure threshold (tasks per
	// owned core held in the central queue) above which an apprank asks
	// for a new helper. Default 1.0.
	GrowPressure float64
}

// dynamicState tracks per-apprank queue pressure.
type dynamicState struct {
	pressure []float64 // smoothed central-queue tasks per owned core
	grown    int
}

// installDynamicSpreading arms the periodic grower.
func (rt *ClusterRuntime) installDynamicSpreading() {
	cfg := rt.cfg.Dynamic
	period := cfg.GrowPeriod
	if period == 0 {
		switch rt.cfg.DROM {
		case DROMGlobal:
			period = rt.cfg.GlobalPeriod
		default:
			period = rt.cfg.LocalPeriod
		}
	}
	rt.dyn = &dynamicState{pressure: make([]float64, len(rt.appranks))}
	rt.env.Periodic(period, period, func() bool {
		rt.growStep()
		return rt.activeApps.Load() > 0 || !rt.started
	})
}

// growStep updates pressures and spawns at most one helper per apprank.
func (rt *ClusterRuntime) growStep() {
	cfg := rt.cfg.Dynamic
	maxDeg := cfg.MaxDegree
	if maxDeg <= 0 || maxDeg > len(rt.nodes) {
		maxDeg = len(rt.nodes)
	}
	threshold := cfg.GrowPressure
	if threshold == 0 {
		threshold = 1.0
	}
	for _, a := range rt.appranks {
		if a.aborted || a.stalled {
			continue
		}
		owned := 0
		totalLoad := a.queue.Len()
		totalCap := 0
		for _, w := range a.workers {
			owned += w.owned()
			totalLoad += w.load()
			totalCap += w.capacity()
		}
		if owned == 0 {
			owned = 1
		}
		// Backlog beyond what the current workers may be assigned: the
		// demand signal that a static graph cannot absorb.
		p := float64(totalLoad-totalCap) / float64(owned)
		if p < 0 {
			p = 0
		}
		st := rt.dyn
		st.pressure[a.id] = 0.5*p + 0.5*st.pressure[a.id]
		if st.pressure[a.id] < threshold || len(a.workers) >= maxDeg {
			continue
		}
		// Saturation check: a queue can be non-empty transiently; only
		// grow when every current worker is at its threshold.
		saturated := true
		for _, w := range a.workers {
			if w.underThreshold() {
				saturated = false
				break
			}
		}
		if !saturated {
			continue
		}
		if node := rt.bestGrowthNode(a); node >= 0 {
			rt.addHelper(a, node)
			st.grown++
			st.pressure[a.id] = 0
		}
	}
}

// bestGrowthNode picks the node with the most idle cores among nodes the
// apprank does not use yet and that can still host another worker.
func (rt *ClusterRuntime) bestGrowthNode(a *Apprank) int {
	best, bestIdle := -1, -1
	for _, ns := range rt.nodes {
		if ns.dead || a.workerOn(ns.id) != nil {
			continue
		}
		if len(ns.workers) >= ns.arb.Cores() {
			continue // every worker needs a one-core floor
		}
		if idle := ns.arb.IdleCores(); idle > bestIdle {
			best, bestIdle = ns.id, idle
		}
	}
	return best
}

// addHelper spawns a helper worker for apprank a on the given node at
// runtime. The worker starts with zero owned cores (the node's ownership
// is unchanged, so the arbiter's conservation invariant holds); the next
// DROM tick grants its floor, and with LeWI it can borrow idle cores
// immediately.
func (rt *ClusterRuntime) addHelper(a *Apprank, node int) *Worker {
	if a.workerOn(node) != nil {
		panic(fmt.Sprintf("core: apprank %d already has a worker on node %d", a.id, node))
	}
	ns := rt.nodes[node]
	w := &Worker{app: a, ns: ns, wid: ns.arb.AddWorker()}
	ns.workers = append(ns.workers, w)
	a.workers = append(a.workers, w)
	rt.cfg.Obs.RegisterWorker(node, int(w.wid), a.id)
	ns.arb.EmitOwnership()
	// Let it pull queued work right away (via LeWI borrow if any core
	// on the node is idle).
	a.refill(w)
	ns.scheduleDispatch()
	return w
}

// HelpersGrown reports how many helpers dynamic spreading has added.
func (rt *ClusterRuntime) HelpersGrown() int {
	if rt.dyn == nil {
		return 0
	}
	return rt.dyn.grown
}

// DegreeOf returns the current number of nodes apprank a can execute on.
func (rt *ClusterRuntime) DegreeOf(apprank int) int {
	return len(rt.appranks[apprank].workers)
}
