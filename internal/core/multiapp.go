package core

import (
	"fmt"

	"ompsscluster/internal/expander"
	"ompsscluster/internal/simmpi"
)

// Multi-application support: DLB's defining capability (§3.3) is
// balancing cores "among multiple processes on the same node, from either
// the same or different applications". NewMulti co-schedules several
// independent MPI+OmpSs-2@Cluster applications on one machine: each
// application has its own appranks, expander graph, and MPI world (they
// cannot message each other), while all workers share the per-node DLB
// arbiters — so LeWI lends cores between applications at fine grain and
// the DROM policies move ownership between applications at coarse grain.

// AppSpec describes one co-scheduled application.
type AppSpec struct {
	// Name labels the application (defaults to "appN").
	Name string
	// RanksPerNode is the application's appranks per node (>= 1).
	RanksPerNode int
	// Degree overrides Config.Degree for this application (0 = inherit).
	Degree int
	// Main is the application's SPMD main function.
	Main func(app *App)
}

// appState groups one application's per-app structures.
type appState struct {
	spec  AppSpec
	graph *expander.Graph
	world *simmpi.World
	ranks []*Apprank
}

// NewMulti builds a runtime hosting several applications. Config's
// AppranksPerNode and Degree act as defaults; every worker (across all
// applications) still needs a one-core DROM floor, so the summed
// ranks-per-node x degree must fit each node.
func NewMulti(cfg Config, specs []AppSpec) (*ClusterRuntime, error) {
	if len(specs) == 0 {
		return nil, fmt.Errorf("core: NewMulti with no applications")
	}
	// Validate against a synthetic workers-per-node count.
	workersPerNode := 0
	for i := range specs {
		if specs[i].RanksPerNode <= 0 {
			return nil, fmt.Errorf("core: app %d has RanksPerNode %d", i, specs[i].RanksPerNode)
		}
		if specs[i].Main == nil {
			return nil, fmt.Errorf("core: app %d has no Main", i)
		}
		if specs[i].Name == "" {
			specs[i].Name = fmt.Sprintf("app%d", i)
		}
		deg := specs[i].Degree
		if deg == 0 {
			deg = cfg.Degree
		}
		if deg == 0 {
			deg = 1
		}
		specs[i].Degree = deg
		workersPerNode += specs[i].RanksPerNode * deg
	}
	// withDefaults validates per-app constraints only for the implicit
	// single app; check the combined floor here.
	base := cfg
	base.AppranksPerNode = 1
	base.Degree = 1
	rt, err := newRuntime(base)
	if err != nil {
		return nil, err
	}
	for _, n := range cfg.Machine.Nodes {
		if workersPerNode > n.Cores {
			return nil, fmt.Errorf("core: node %d has %d cores but the %d applications need %d workers",
				n.ID, n.Cores, len(specs), workersPerNode)
		}
	}
	for i := range specs {
		if err := rt.addApp(specs[i]); err != nil {
			return nil, err
		}
	}
	if err := rt.finishConstruction(); err != nil {
		return nil, err
	}
	return rt, nil
}

// addApp instantiates one application's graph, world, and appranks.
func (rt *ClusterRuntime) addApp(spec AppSpec) error {
	cfg := rt.cfg
	nNodes := cfg.Machine.NumNodes()
	nApp := nNodes * spec.RanksPerNode
	p := expander.Params{
		Appranks: nApp,
		Nodes:    nNodes,
		Degree:   spec.Degree,
		Seed:     cfg.Seed + int64(len(rt.apps))*7919,
		Shape:    cfg.Shape,
	}
	var g *expander.Graph
	var err error
	if cfg.Graphs != nil {
		g, err = cfg.Graphs.Get(p)
	} else {
		g, err = expander.Generate(p)
	}
	if err != nil {
		return err
	}
	placement := make([]int, nApp)
	for a := 0; a < nApp; a++ {
		placement[a] = g.Home(a)
	}
	st := &appState{
		spec:  spec,
		graph: g,
		world: simmpi.NewWorld(rt.env, cfg.Machine, placement),
	}
	// World ranks are application-local; the event stream identifies
	// ranks by global apprank id, so offset by the ids already assigned.
	st.world.SetObs(cfg.Obs, len(rt.appranks))
	for local := 0; local < nApp; local++ {
		a := newApprank(rt, len(rt.appranks), local, len(rt.apps), g)
		rt.appranks = append(rt.appranks, a)
		st.ranks = append(st.ranks, a)
	}
	rt.apps = append(rt.apps, st)
	return nil
}

// RunAll spawns every application's mains and executes the simulation to
// completion (the multi-application analogue of Run).
func (rt *ClusterRuntime) RunAll() error {
	if rt.started {
		return fmt.Errorf("core: runtime already ran")
	}
	rt.started = true
	total := 0
	for _, st := range rt.apps {
		total += len(st.ranks)
	}
	rt.activeApps.Store(int64(total))
	for _, st := range rt.apps {
		st := st
		for _, a := range st.ranks {
			a := a
			a.proc = st.world.Spawn(a.localRank, func(c *simmpi.Comm) {
				app := &App{rt: rt, apprank: a, comm: c}
				rt.talp.StartApp(a.id, a.env.Now())
				st.spec.Main(app)
				app.TaskWait()
				a.finishedMain = true
				a.finishedAt = a.env.Now()
				rt.activeApps.Add(-1)
			})
		}
	}
	return rt.finishRun()
}

// AppElapsed would require per-app completion times; the shared Elapsed
// covers the co-scheduled workload end. Per-application statistics are
// available through TALP (keyed by global apprank id; see AppOf) and the
// trace recorder.

// AppOf returns the application index and local rank of a global apprank
// id.
func (rt *ClusterRuntime) AppOf(global int) (appIdx, localRank int) {
	a := rt.appranks[global]
	return a.appIdx, a.localRank
}

// NumApps returns the number of co-scheduled applications.
func (rt *ClusterRuntime) NumApps() int { return len(rt.apps) }
