package core

import (
	"fmt"
	"testing"

	"ompsscluster/internal/balance"
	"ompsscluster/internal/cluster"
	"ompsscluster/internal/faults"
	"ompsscluster/internal/obs"
	"ompsscluster/internal/simtime"
)

// TestSelfSchedRunsToCompletion drives every self-scheduling policy over
// a small multi-node workload: all tasks must complete, the chunk server
// must have granted at least once, and the run must beat the trivial
// serial bound (the chunks actually spread across workers).
func TestSelfSchedRunsToCompletion(t *testing.T) {
	for _, name := range balance.SelfSchedNames() {
		name := name
		t.Run(name, func(t *testing.T) {
			kind, err := balance.ParseSelfSched(name)
			if err != nil {
				t.Fatal(err)
			}
			rt := MustNew(Config{
				Machine:   cluster.New(4, 4, cluster.DefaultNet()),
				Degree:    3,
				LeWI:      kind == balance.SelfSchedTwoLevel,
				SelfSched: kind,
			})
			err = rt.Run(func(app *App) {
				for iter := 0; iter < 3; iter++ {
					if app.Rank() == 0 {
						submitBatch(app, 96, 10*ms)
					}
					app.TaskWait()
					app.Barrier()
				}
			})
			if err != nil {
				t.Fatal(err)
			}
			if got := rt.TotalTasks(); got != 3*96 {
				t.Fatalf("completed %d tasks, want %d", got, 3*96)
			}
			if rt.Stats().ChunkGrants == 0 {
				t.Fatal("chunk server never granted")
			}
			if rt.TotalOffloadedTasks() == 0 {
				t.Fatal("chunks never left the home node")
			}
			// Under DROMOff apprank 0 owns 4 cores machine-wide (2 at
			// home + 1 per helper): 3x96 x ~10.07ms tasks land at
			// ~725ms. Home-only execution (2 cores) would be ~1450ms,
			// so < 800ms proves the chunks spread. Two-level borrows
			// idle cores underneath and must clearly beat the
			// ownership bound.
			bound := 800 * ms
			if kind == balance.SelfSchedTwoLevel {
				bound = 600 * ms
			}
			if rt.Elapsed() > bound {
				t.Fatalf("elapsed %v > %v: chunks did not spread work", rt.Elapsed(), bound)
			}
		})
	}
}

// TestSelfSchedEmitsChunkGrantEvents checks the obs plumbing end to end:
// chunk grants appear in the event stream and in the derived metrics,
// with granted tasks summing to the submitted count.
func TestSelfSchedEmitsChunkGrantEvents(t *testing.T) {
	rec := obs.NewRecorder(1 << 16)
	rt := MustNew(Config{
		Machine:   cluster.New(2, 4, cluster.DefaultNet()),
		Degree:    2,
		SelfSched: balance.SelfSchedGuided,
		Obs:       rec,
	})
	if err := rt.Run(func(app *App) {
		if app.Rank() == 0 {
			submitBatch(app, 40, 10*ms)
		}
		app.TaskWait()
	}); err != nil {
		t.Fatal(err)
	}
	grants, tasks := 0, int64(0)
	for _, e := range rec.Events() {
		if e.Kind == obs.KindChunkGrant {
			grants++
			tasks += e.B
		}
	}
	if grants == 0 {
		t.Fatal("no KindChunkGrant events recorded")
	}
	if int64(grants) != rt.Stats().ChunkGrants {
		t.Fatalf("events %d != Stats().ChunkGrants %d", grants, rt.Stats().ChunkGrants)
	}
	if tasks != 40 {
		t.Fatalf("granted task sizes sum to %d, want 40", tasks)
	}
	m := obs.BuildMetrics(rec)
	if got := m.Counters["chunk_grants"]; got != uint64(grants) {
		t.Fatalf("metrics chunk_grants = %d, want %d", got, grants)
	}
	if got := m.Counters["chunk_tasks_granted"]; got != 40 {
		t.Fatalf("metrics chunk_tasks_granted = %d, want 40", got)
	}
}

// TestSelfSchedConfigValidation: unknown policy values and the
// SelfSched+Dynamic combination must be rejected at construction.
func TestSelfSchedConfigValidation(t *testing.T) {
	_, err := New(Config{
		Machine:   cluster.New(2, 4, cluster.DefaultNet()),
		SelfSched: balance.SelfSched(99),
	})
	if err == nil {
		t.Fatal("invalid SelfSched value accepted")
	}
	_, err = New(Config{
		Machine:   cluster.New(2, 4, cluster.DefaultNet()),
		SelfSched: balance.SelfSchedGuided,
		Dynamic:   DynamicConfig{Enabled: true},
	})
	if err == nil {
		t.Fatal("SelfSched combined with Dynamic accepted")
	}
}

// TestSelfSchedWithFaultPlan runs the weighted policy under a fault plan
// (slowdown + drain) to completion: recovery re-parks and the guided
// fallback must drain everything through live workers.
func TestSelfSchedWithFaultPlan(t *testing.T) {
	plan := &faults.Plan{
		Name: "selfsched-mix",
		Events: []faults.Event{
			{Kind: faults.Slow, At: 10 * simtime.Duration(ms), Until: 150 * simtime.Duration(ms), Node: 1, Speed: 0.4},
			{Kind: faults.Drain, At: 40 * simtime.Duration(ms), Node: 3},
		},
	}
	rt := MustNew(Config{
		Machine:   cluster.New(4, 4, cluster.DefaultNet()),
		Degree:    3,
		SelfSched: balance.SelfSchedWeighted,
		Faults:    plan,
	})
	err := rt.Run(func(app *App) {
		for iter := 0; iter < 4; iter++ {
			if app.Rank() == 0 {
				submitBatch(app, 64, 10*ms)
			}
			app.TaskWait()
			app.Barrier()
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := rt.TotalTasks(); got != 4*64 {
		t.Fatalf("completed %d tasks, want %d", got, 4*64)
	}
	if rt.Stats().FaultEvents == 0 {
		t.Fatal("fault plan never fired")
	}
}

// TestSelfSchedDeterminism: the same configuration must produce the same
// elapsed time and grant count on repeated runs.
func TestSelfSchedDeterminism(t *testing.T) {
	run := func() (string, error) {
		rt := MustNew(Config{
			Machine:   cluster.New(4, 4, cluster.DefaultNet()),
			Degree:    3,
			LeWI:      true,
			SelfSched: balance.SelfSchedTwoLevel,
		})
		err := rt.Run(func(app *App) {
			if app.Rank() == 0 {
				submitBatch(app, 128, 10*ms)
			}
			app.TaskWait()
		})
		return fmt.Sprintf("%v/%d/%d", rt.Elapsed(), rt.Stats().ChunkGrants, rt.TotalOffloadedTasks()), err
	}
	a, err := run()
	if err != nil {
		t.Fatal(err)
	}
	b, err := run()
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("two identical runs diverged: %s vs %s", a, b)
	}
}
