package core

import (
	"runtime"

	"ompsscluster/internal/faults"
	"ompsscluster/internal/simtime"
)

// Parallel-engine wiring: when Config.SimParallel is set and the
// configuration is eligible, the runtime partitions the simulation per
// simulated node. Each node's workers, dispatcher, and the appranks
// homed on it run on the node's own event environment; rank-to-rank MPI
// traffic becomes timestamped inter-partition events carried by the
// engine; everything with no single-node home — DROM policy ticks, the
// imbalance sampler, fault-plan edges, deadline checks — stays on the
// global environment and runs as a barrier event while the partitions
// are quiesced. The per-partition (time, seq) order is preserved and
// sequence allocation is partition-deterministic, so results are
// byte-identical to the sequential engines at any worker count.
//
// Eligibility is deliberately conservative. Configurations that would
// need zero-latency cross-partition state access fall back to the
// sequential engine with the reason recorded on the stats collector:
//
//   - degree > 1: offload placement reads and mutates remote workers'
//     queues synchronously in the §5.5 scheduler;
//   - observability (Obs/Recorder): the event stream is defined as one
//     globally ordered sequence;
//   - dynamic spreading: the worker set grows across nodes at runtime;
//   - link-fault plans: probabilistic drop decisions consume one global
//     sequence tied to message order;
//   - a single-node machine (nothing to partition);
//   - a zero-lookahead network model (no conservative horizon exists).
func (rt *ClusterRuntime) maybeParallel() {
	if !rt.cfg.SimParallel {
		return
	}
	if reason := rt.parallelIneligible(); reason != "" {
		rt.cfg.EngineStats.RecordFallback(reason)
		return
	}
	la := rt.parallelLookahead()
	workers := rt.cfg.SimWorkers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	rt.eng = simtime.NewEngine(rt.env, rt.cfg.Machine.NumNodes(), la, workers)
	for _, ns := range rt.nodes {
		ns.env = rt.eng.Partition(ns.id)
	}
	for _, a := range rt.appranks {
		a.env = rt.eng.Partition(a.home)
	}
	for _, st := range rt.apps {
		envs := make([]*simtime.Env, len(st.ranks))
		for i, a := range st.ranks {
			envs[i] = a.env
		}
		st.world.Partition(rt.eng, envs)
	}
}

// parallelLookahead returns the conservative horizon width: the smallest
// virtual time any cross-node effect needs to propagate. Point-to-point
// messages are bounded below by Net.MinRemoteLatency; collective
// completions are modelled per hop as Latency + size/bandwidth without
// the topology surcharge (simmpi.hopCost), so the bound is clamped to
// the base latency.
func (rt *ClusterRuntime) parallelLookahead() simtime.Duration {
	la := rt.cfg.Machine.Net.MinRemoteLatency()
	if l := rt.cfg.Machine.Net.Latency; l < la {
		la = l
	}
	return la
}

// parallelIneligible returns a human-readable reason the partitioned
// engine cannot honor this configuration, or "" when it can.
func (rt *ClusterRuntime) parallelIneligible() string {
	cfg := rt.cfg
	if cfg.Machine.NumNodes() < 2 {
		return "single-node machine"
	}
	if rt.parallelLookahead() <= 0 {
		return "zero-lookahead network model"
	}
	if cfg.Obs != nil || cfg.Recorder != nil {
		return "observability needs the global event order"
	}
	if cfg.Dynamic.Enabled {
		return "dynamic spreading grows the worker set across nodes"
	}
	for _, st := range rt.apps {
		if st.spec.Degree != 1 {
			return "offloading degree > 1 schedules across nodes synchronously"
		}
	}
	if cfg.Faults != nil {
		for _, ev := range cfg.Faults.Events {
			if ev.Kind == faults.Link {
				return "link-fault plans order message drops globally"
			}
		}
	}
	return ""
}

// Engine returns the partitioned engine, or nil when the runtime runs
// sequentially (SimParallel off or the configuration fell back).
func (rt *ClusterRuntime) Engine() *simtime.Engine { return rt.eng }
