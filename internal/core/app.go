package core

import (
	"fmt"

	"ompsscluster/internal/nanos"
	"ompsscluster/internal/simmpi"
	"ompsscluster/internal/simtime"
)

// App is the programmer's model handle (§4): each apprank's main function
// receives one. It exposes the application communicator
// (nanos6_app_communicator), task submission with OmpSs-2-style region
// accesses, taskwait, and a per-apprank virtual address allocator.
//
// As in the paper, each apprank has an isolated virtual address space:
// regions allocated by different appranks may coincide numerically and
// never alias, because dependencies and data location are tracked per
// apprank.
type App struct {
	rt      *ClusterRuntime
	apprank *Apprank
	comm    *simmpi.Comm
}

// Rank returns the apprank's rank within its application (its rank in
// the app communicator).
func (app *App) Rank() int { return app.apprank.localRank }

// GlobalID returns the apprank's global id across all co-scheduled
// applications (the key used by TALP and the trace recorder).
func (app *App) GlobalID() int { return app.apprank.id }

// AppName returns the owning application's name ("app0" for single-app
// runtimes).
func (app *App) AppName() string { return app.rt.apps[app.apprank.appIdx].spec.Name }

// NumRanks returns the number of appranks in this application.
func (app *App) NumRanks() int { return len(app.rt.apps[app.apprank.appIdx].ranks) }

// Comm returns the application communicator, the analogue of
// nanos6_app_communicator(): MPI collectives and point-to-point messages
// among appranks. MPI calls are valid from the main function only (tasks
// must not communicate), consistent with §4.
func (app *App) Comm() *simmpi.Comm { return app.comm }

// Now returns the current virtual time as seen by this apprank (its
// home partition's clock under the parallel engine; the single global
// clock otherwise).
func (app *App) Now() simtime.Time { return app.apprank.env.Now() }

// HomeNode returns the node the apprank is homed on.
func (app *App) HomeNode() int { return app.apprank.home }

// Cores returns the number of cores of the apprank's home node.
func (app *App) Cores() int { return app.rt.cfg.Machine.Node(app.apprank.home).Cores }

// NodeSpeed returns the relative speed of the apprank's home node (1.0 =
// nominal). Applications can use it the way real codes use per-rank
// timing measurements.
func (app *App) NodeSpeed() float64 { return app.rt.cfg.Machine.Node(app.apprank.home).Speed }

// Alloc reserves size bytes in the apprank's address space and returns
// the region. The align parameter of real allocators is irrelevant here.
func (app *App) Alloc(size int64) nanos.Region {
	if size < 0 {
		panic(fmt.Sprintf("core: Alloc(%d)", size))
	}
	r := nanos.Region{Start: app.apprank.allocNext, End: app.apprank.allocNext + uint64(size)}
	app.apprank.allocNext = r.End
	return r
}

// TaskSpec describes one task submission.
type TaskSpec struct {
	// Label names the task kind (for traces).
	Label string
	// Work is the nominal compute time at node speed 1.0.
	Work simtime.Duration
	// Accesses declares the data regions (drives dependencies, locality,
	// and transfer costs).
	Accesses []nanos.Access
	// Offloadable marks the task as executable on helper nodes.
	Offloadable bool
}

// Submit creates and submits a task. If its dependencies are already
// satisfied it is scheduled immediately per §5.5.
func (app *App) Submit(spec TaskSpec) {
	if spec.Work < 0 {
		panic(fmt.Sprintf("core: negative work %v", spec.Work))
	}
	app.apprank.graph.Submit(&nanos.Task{
		Label:       spec.Label,
		Work:        spec.Work,
		Accesses:    spec.Accesses,
		Offloadable: spec.Offloadable,
	})
}

// TaskWait blocks the main function until every task submitted so far by
// this apprank (including offloaded ones) has completed.
func (app *App) TaskWait() {
	ev := app.apprank.env.NewEvent()
	app.apprank.graph.OnQuiescent(func() { ev.Trigger(nil) })
	app.comm.Proc().SetBlockReason("taskwait", int64(app.apprank.id), 0)
	app.comm.Proc().Wait(ev)
}

// TaskWaitOn blocks until every earlier task touching the given accesses
// has completed — OmpSs-2's dependency-scoped taskwait ("taskwait on").
// Unrelated tasks keep running. It is implemented, as in Nanos6, as an
// empty task with the given accesses whose completion is awaited.
func (app *App) TaskWaitOn(accesses []nanos.Access) {
	ev := app.apprank.env.NewEvent()
	sentinel := &nanos.Task{Label: "taskwait-on", Accesses: accesses}
	app.apprank.waitOn(sentinel, func() { ev.Trigger(nil) })
	app.comm.Proc().SetBlockReason("taskwait", int64(app.apprank.id), 1)
	app.comm.Proc().Wait(ev)
}

// Barrier synchronizes all appranks, accounting the wait as MPI time for
// TALP.
func (app *App) Barrier() {
	t0 := app.apprank.env.Now()
	app.comm.Barrier()
	app.rt.talp.AddMPISpan(app.apprank.id, t0, app.apprank.env.Now())
}

// AllreduceFloat combines a float64 across appranks with TALP accounting.
func (app *App) AllreduceFloat(v float64, op simmpi.Op) float64 {
	t0 := app.apprank.env.Now()
	out := app.comm.Allreduce(v, op).(float64)
	app.rt.talp.AddMPISpan(app.apprank.id, t0, app.apprank.env.Now())
	return out
}
