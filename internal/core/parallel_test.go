package core

import (
	"reflect"
	"strings"
	"testing"

	"ompsscluster/internal/balance"
	"ompsscluster/internal/cluster"
	"ompsscluster/internal/faults"
	"ompsscluster/internal/nanos"
	"ompsscluster/internal/simmpi"
	"ompsscluster/internal/simtime"
	"ompsscluster/internal/trace"
)

// parallelWorkload is a degree-1 SPMD program with per-rank imbalance,
// dependencies, MPI collectives and point-to-point traffic — enough to
// exercise the dispatcher, the policies, the graph, and the partitioned
// MPI layer together.
func parallelWorkload(app *App) {
	r := app.Rank()
	p := app.NumRanks()
	state := app.Alloc(1 << 16)
	for iter := 0; iter < 4; iter++ {
		n := 6 + 3*((r+iter)%p)
		for i := 0; i < n; i++ {
			buf := app.Alloc(1 << 10)
			app.Submit(TaskSpec{
				Label: "work",
				Work:  simtime.Duration(2+((r+i)%3)) * ms,
				Accesses: []nanos.Access{
					{Region: buf, Mode: nanos.InOut},
					{Region: state, Mode: nanos.In},
				},
				// Offloadable so the self-scheduling variant routes these
				// through the chunk server (degree 1 keeps them home).
				Offloadable: true,
			})
		}
		app.Submit(TaskSpec{Label: "update", Work: 1 * ms,
			Accesses: []nanos.Access{{Region: state, Mode: nanos.InOut}}})
		app.TaskWait()
		sum := app.AllreduceFloat(float64(r+iter), simmpi.Sum)
		app.Comm().Send((r+1)%p, 3, sum, 128)
		app.Comm().Recv((r-1+p)%p, 3)
		app.Barrier()
	}
}

type parallelOutcome struct {
	elapsed  simtime.Duration
	tasks    int64
	stats    RunStats
	talp     string
	runErr   string
	parallel bool // the partitioned engine actually engaged
}

func runParallelWorkload(t *testing.T, mutate func(*Config), workers int, parallel bool) parallelOutcome {
	t.Helper()
	col := &simtime.StatsCollector{}
	cfg := Config{
		Machine:     cluster.New(4, 4, cluster.DefaultNet()),
		LeWI:        true,
		DROM:        DROMLocal,
		Seed:        7,
		EngineStats: col,
		SimParallel: parallel,
		SimWorkers:  workers,
	}
	if mutate != nil {
		mutate(&cfg)
	}
	rt := MustNew(cfg)
	err := rt.Run(parallelWorkload)
	out := parallelOutcome{
		elapsed:  rt.Elapsed(),
		tasks:    rt.TotalTasks(),
		stats:    rt.Stats(),
		talp:     rt.TALP().Snapshot(simtime.Time(rt.Elapsed()), nil).String(),
		parallel: rt.Engine() != nil,
	}
	if err != nil {
		out.runErr = err.Error()
	}
	return out
}

// TestParallelEngineMatchesSequential is the tentpole acceptance check at
// the runtime level: the partitioned engine produces results identical to
// the sequential engine at any worker count.
func TestParallelEngineMatchesSequential(t *testing.T) {
	ref := runParallelWorkload(t, nil, 0, false)
	if ref.parallel {
		t.Fatal("sequential reference engaged the parallel engine")
	}
	if ref.tasks == 0 || ref.elapsed == 0 {
		t.Fatalf("degenerate reference run: %+v", ref)
	}
	for _, workers := range []int{1, 2, 8} {
		got := runParallelWorkload(t, nil, workers, true)
		if !got.parallel {
			t.Fatalf("workers=%d: parallel engine did not engage", workers)
		}
		got.parallel = ref.parallel
		if !reflect.DeepEqual(got, ref) {
			t.Errorf("workers=%d diverged from sequential:\nseq: %+v\npar: %+v", workers, ref, got)
		}
	}
}

// TestParallelTwoApranksPerNode pins the configuration that makes
// same-partition wake order observable: two appranks share each node, so
// when a collective completes, the order in which co-located entrants
// resume — and where events their continuations schedule at the same
// instant land between them (LeWI reclaim, dispatch) — shows up in the
// balancing outcome. One apprank per node masks all of this because
// every wake lands on a different partition.
func TestParallelTwoApranksPerNode(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Config)
	}{
		{"lewi+dromlocal", func(c *Config) { c.AppranksPerNode = 2 }},
		{"lewi-only", func(c *Config) { c.AppranksPerNode = 2; c.DROM = DROMOff }},
		{"drom-only", func(c *Config) { c.AppranksPerNode = 2; c.LeWI = false }},
		{"neither", func(c *Config) { c.AppranksPerNode = 2; c.LeWI = false; c.DROM = DROMOff }},
		{"dromglobal", func(c *Config) { c.AppranksPerNode = 2; c.DROM = DROMGlobal }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			ref := runParallelWorkload(t, tc.mutate, 0, false)
			got := runParallelWorkload(t, tc.mutate, 4, true)
			if !got.parallel {
				t.Fatal("parallel engine did not engage")
			}
			got.parallel = ref.parallel
			if !reflect.DeepEqual(got, ref) {
				t.Errorf("diverged:\nseq: %+v\npar: %+v", ref, got)
			}
		})
	}
}

// TestParallelSelfSchedMatchesSequential covers the chunk-server path
// (per-apprank grant counters, the pump on the partition environment).
func TestParallelSelfSchedMatchesSequential(t *testing.T) {
	mutate := func(cfg *Config) {
		cfg.SelfSched = balance.SelfSchedGuided
		cfg.DROM = DROMOff
	}
	ref := runParallelWorkload(t, mutate, 0, false)
	got := runParallelWorkload(t, mutate, 4, true)
	if !got.parallel {
		t.Fatal("parallel engine did not engage")
	}
	if got.stats.ChunkGrants == 0 {
		t.Fatal("self-scheduling produced no chunk grants")
	}
	got.parallel = ref.parallel
	if !reflect.DeepEqual(got, ref) {
		t.Errorf("self-sched diverged:\nseq: %+v\npar: %+v", ref, got)
	}
}

// TestParallelFaultPlanMatchesSequential covers barrier-event fault
// edges (slow, core loss, stall — every kind the gate admits).
func TestParallelFaultPlanMatchesSequential(t *testing.T) {
	plan := &faults.Plan{
		Name: "mixed",
		Events: []faults.Event{
			{Kind: faults.Slow, At: 3 * ms, Until: 30 * ms, Node: 1, Speed: 0.5},
			{Kind: faults.CoreLoss, At: 8 * ms, Node: 2, Cores: 2},
			{Kind: faults.Stall, At: 12 * ms, Until: 25 * ms, Apprank: 3},
		},
	}
	mutate := func(cfg *Config) { cfg.Faults = plan }
	ref := runParallelWorkload(t, mutate, 0, false)
	got := runParallelWorkload(t, mutate, 4, true)
	if !got.parallel {
		t.Fatal("parallel engine did not engage for a link-free fault plan")
	}
	got.parallel = ref.parallel
	if !reflect.DeepEqual(got, ref) {
		t.Errorf("fault plan diverged:\nseq: %+v\npar: %+v", ref, got)
	}
}

// TestParallelGoroutineEngineMatches pins the third engine against the
// partitioned one: the legacy closure paths must survive partitioning too.
func TestParallelGoroutineEngineMatches(t *testing.T) {
	mutate := func(cfg *Config) { cfg.GoroutineEngine = true }
	ref := runParallelWorkload(t, mutate, 0, false)
	got := runParallelWorkload(t, mutate, 4, true)
	if !got.parallel {
		t.Fatal("parallel engine did not engage")
	}
	got.parallel = ref.parallel
	if !reflect.DeepEqual(got, ref) {
		t.Errorf("goroutine-engine run diverged:\nseq: %+v\npar: %+v", ref, got)
	}
}

// TestParallelMultiAppMatches runs two co-scheduled applications under
// the partitioned engine.
func TestParallelMultiAppMatches(t *testing.T) {
	run := func(parallel bool) parallelOutcome {
		col := &simtime.StatsCollector{}
		rt, err := NewMulti(Config{
			Machine:     cluster.New(3, 6, cluster.DefaultNet()),
			LeWI:        true,
			Seed:        11,
			EngineStats: col,
			SimParallel: parallel,
			SimWorkers:  3,
		}, []AppSpec{
			{Name: "a", RanksPerNode: 1, Main: parallelWorkload},
			{Name: "b", RanksPerNode: 1, Main: func(app *App) {
				submitBatchLocal(app, 12+4*app.Rank(), 3*ms)
				app.TaskWait()
				app.Barrier()
			}},
		})
		if err != nil {
			t.Fatal(err)
		}
		rerr := rt.RunAll()
		out := parallelOutcome{
			elapsed:  rt.Elapsed(),
			tasks:    rt.TotalTasks(),
			stats:    rt.Stats(),
			talp:     rt.TALP().Snapshot(simtime.Time(rt.Elapsed()), nil).String(),
			parallel: rt.Engine() != nil,
		}
		if rerr != nil {
			out.runErr = rerr.Error()
		}
		return out
	}
	ref := run(false)
	got := run(true)
	if !got.parallel {
		t.Fatal("parallel engine did not engage")
	}
	got.parallel = ref.parallel
	if !reflect.DeepEqual(got, ref) {
		t.Errorf("multi-app diverged:\nseq: %+v\npar: %+v", ref, got)
	}
}

// TestParallelMatrixClonesMachine runs the engine x workers matrix off
// one shared prototype Machine, cloning it per cell. Fault plans mutate
// the run's machine in place (SetSpeed, RemoveCores), so sharing the
// prototype would leak one cell's faults into the next and turn the
// determinism comparison into a comparison of different machines.
func TestParallelMatrixClonesMachine(t *testing.T) {
	proto := cluster.New(4, 4, cluster.DefaultNet())
	plan := &faults.Plan{
		Name: "matrix",
		Events: []faults.Event{
			{Kind: faults.Slow, At: 2 * ms, Until: 20 * ms, Node: 1, Speed: 0.25},
			{Kind: faults.CoreLoss, At: 6 * ms, Node: 2, Cores: 1},
		},
	}
	cell := func(parallel bool, workers int) parallelOutcome {
		return runParallelWorkload(t, func(c *Config) {
			c.Machine = proto.Clone()
			c.Faults = plan
		}, workers, parallel)
	}
	ref := cell(false, 0)
	for _, workers := range []int{1, 8} {
		got := cell(true, workers)
		if !got.parallel {
			t.Fatalf("workers=%d: parallel engine did not engage", workers)
		}
		got.parallel = ref.parallel
		if !reflect.DeepEqual(got, ref) {
			t.Errorf("workers=%d diverged:\nseq: %+v\npar: %+v", workers, ref, got)
		}
	}
	// The cells must have mutated only their clones.
	if proto.Node(1).Speed != 1.0 || proto.Node(2).Cores != 4 {
		t.Fatalf("a cell mutated the shared prototype machine: %+v", proto.Nodes)
	}
}

// submitBatchLocal submits non-offloadable independent tasks.
func submitBatchLocal(app *App, n int, work simtime.Duration) {
	for i := 0; i < n; i++ {
		r := app.Alloc(1 << 10)
		app.Submit(TaskSpec{Label: "local", Work: work,
			Accesses: []nanos.Access{{Region: r, Mode: nanos.InOut}}})
	}
}

// TestParallelFallbacks checks every gate: ineligible configurations run
// sequentially and record why.
func TestParallelFallbacks(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Config)
		why    string
	}{
		{"single node", func(c *Config) { c.Machine = cluster.New(1, 4, cluster.DefaultNet()) }, "single-node"},
		{"zero lookahead", func(c *Config) { c.Machine = cluster.New(4, 4, cluster.NetModel{}) }, "zero-lookahead"},
		{"degree", func(c *Config) { c.Degree = 2 }, "degree"},
		{"observability", func(c *Config) { c.Recorder = trace.NewRecorder() }, "observability"},
		{"dynamic", func(c *Config) { c.Dynamic = DynamicConfig{Enabled: true} }, "dynamic spreading"},
		{"link faults", func(c *Config) {
			c.Faults = &faults.Plan{Events: []faults.Event{
				{Kind: faults.Link, At: 1 * ms, Until: 2 * ms, Node: 0, NodeB: 1, Drop: 0.5},
			}}
		}, "link-fault"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			col := &simtime.StatsCollector{}
			cfg := Config{
				Machine:     cluster.New(4, 4, cluster.DefaultNet()),
				Seed:        3,
				EngineStats: col,
				SimParallel: true,
			}
			tc.mutate(&cfg)
			rt := MustNew(cfg)
			if rt.Engine() != nil {
				t.Fatal("ineligible configuration engaged the parallel engine")
			}
			reasons := strings.Join(col.FallbackReasons(), "; ")
			if !strings.Contains(reasons, tc.why) {
				t.Fatalf("fallback reasons %q do not mention %q", reasons, tc.why)
			}
			if err := rt.Run(func(app *App) {
				submitBatchLocal(app, 4, 1*ms)
				app.TaskWait()
			}); err != nil && tc.name != "link faults" {
				t.Fatal(err)
			}
		})
	}
	// And the eligible shape engages without recording anything.
	col := &simtime.StatsCollector{}
	rt := MustNew(Config{
		Machine:     cluster.New(4, 4, cluster.DefaultNet()),
		EngineStats: col,
		SimParallel: true,
	})
	if rt.Engine() == nil {
		t.Fatal("eligible configuration did not engage the parallel engine")
	}
	if rs := col.FallbackReasons(); len(rs) != 0 {
		t.Fatalf("unexpected fallback reasons: %v", rs)
	}
}
