package core

import (
	"errors"
	"testing"

	"ompsscluster/internal/cluster"
	"ompsscluster/internal/faults"
	"ompsscluster/internal/simtime"
)

// faultCfg is a 4-node offloading setup small enough to finish fast but
// with enough helpers that recovery has somewhere to go.
func faultCfg(plan *faults.Plan) Config {
	return Config{
		Machine: cluster.New(4, 4, cluster.DefaultNet()),
		Degree:  3,
		LeWI:    true,
		DROM:    DROMLocal,
		Seed:    7,
		Faults:  plan,
	}
}

func faultMain(app *App) {
	for it := 0; it < 4; it++ {
		submitBatch(app, 12, 3*ms)
		app.TaskWait()
	}
}

// TestDrainRecoversOffloadedTasks is the acceptance scenario: a fault
// plan kills the helper workers of one node mid-run; every offloaded
// task queued, in flight, or running there is re-executed elsewhere and
// the run completes with no hang and no lost tasks.
func TestDrainRecoversOffloadedTasks(t *testing.T) {
	plan := &faults.Plan{
		Name:   "drain-mid-run",
		Events: []faults.Event{{Kind: faults.Drain, At: 20 * simtime.Duration(ms), Node: 3}},
	}
	rt, err := New(faultCfg(plan))
	if err != nil {
		t.Fatal(err)
	}
	if err := rt.Run(faultMain); err != nil {
		t.Fatalf("run failed: %v", err)
	}
	want := int64(4 * 4 * 12) // ranks x iterations x batch
	if got := rt.TotalTasks(); got != want {
		t.Fatalf("completed %d tasks, want %d", got, want)
	}
	// The drained node's workers must be dead and own nothing.
	for _, w := range rt.nodes[3].workers {
		if !w.isHome() {
			if !w.dead {
				t.Fatalf("helper on node 3 still alive after drain")
			}
			if o := rt.nodes[3].arb.Owned(w.wid); o != 0 {
				t.Fatalf("dead helper owns %d cores", o)
			}
		}
	}
	if rt.Stats().FaultEvents != 1 {
		t.Fatalf("FaultEvents = %d, want 1", rt.Stats().FaultEvents)
	}
}

// TestCrashAbortsWithTypedError: a node crash kills the application
// homed there; the run terminates (no hang) and surfaces AbortError.
func TestCrashAbortsWithTypedError(t *testing.T) {
	plan := &faults.Plan{
		Name:   "crash-mid-run",
		Events: []faults.Event{{Kind: faults.Crash, At: 20 * simtime.Duration(ms), Node: 3}},
	}
	rt, err := New(faultCfg(plan))
	if err != nil {
		t.Fatal(err)
	}
	err = rt.Run(faultMain)
	var abort *AbortError
	if !errors.As(err, &abort) {
		t.Fatalf("run returned %v, want AbortError", err)
	}
	if abort.Node != 3 {
		t.Fatalf("AbortError.Node = %d, want 3", abort.Node)
	}
	for _, ns := range rt.nodes {
		if err := ns.arb.CheckInvariants(); err != nil {
			t.Fatalf("node %d inconsistent after crash: %v", ns.id, err)
		}
	}
}

// TestCrashWithParkedCProc: continuation procs parked mid-wait must not
// change the crash-abort surface, and killing them afterwards must not
// leak synchronization state. A monitor CProc parks in PopThen on a queue
// that never fills and a second one in WaitThen on an event that never
// fires while a crash plan aborts the job; the run still returns the
// typed AbortError, the parked CProcs survive (they belong to the
// harness, not the dead application), and Kill reclaims them with Done
// triggered and the queue still usable.
func TestCrashWithParkedCProc(t *testing.T) {
	plan := &faults.Plan{
		Name:   "crash-with-cproc",
		Events: []faults.Event{{Kind: faults.Crash, At: 20 * simtime.Duration(ms), Node: 3}},
	}
	rt, err := New(faultCfg(plan))
	if err != nil {
		t.Fatal(err)
	}
	env := rt.Env()
	q := env.NewQueue()
	ev := env.NewEvent()
	popper := env.SpawnC("monitor-pop", func(cp *simtime.CProc) {
		cp.SetBlockReason("monitor-pop", 0, 0)
		q.PopThen(cp, func(v any) {
			t.Errorf("monitor woke with %v; queue never filled", v)
			cp.End()
		})
	})
	waiter := env.SpawnC("monitor-wait", func(cp *simtime.CProc) {
		cp.SetBlockReason("monitor-wait", 0, 0)
		cp.WaitThen(ev, func(v any) {
			t.Errorf("waiter woke with %v; event never fired", v)
			cp.End()
		})
	})
	err = rt.Run(faultMain)
	var abort *AbortError
	if !errors.As(err, &abort) {
		t.Fatalf("run returned %v, want AbortError", err)
	}
	if abort.Node != 3 {
		t.Fatalf("AbortError.Node = %d, want 3", abort.Node)
	}
	// The monitors are harness-side processes: the crash must not have
	// touched them.
	if live := env.LiveProcs(); len(live) != 2 {
		t.Fatalf("live procs after abort = %v, want the two monitors", live)
	}
	popDone, waitDone := false, false
	popper.Done().Subscribe(func(any) { popDone = true })
	waiter.Done().Subscribe(func(any) { waitDone = true })
	popper.Kill()
	waiter.Kill()
	if err := env.Run(); err != nil { // drain the Done subscription callbacks
		t.Fatal(err)
	}
	if !popDone || !waitDone {
		t.Fatalf("Done after Kill: pop=%v wait=%v, want both", popDone, waitDone)
	}
	if live := env.LiveProcs(); len(live) != 0 {
		t.Fatalf("live procs after Kill: %v", live)
	}
	// The dead waiter must not swallow a later item or break the queue.
	q.Push("later")
	if q.Len() != 1 {
		t.Fatalf("queue len after post-kill Push = %d, want 1", q.Len())
	}
	for _, ns := range rt.nodes {
		if err := ns.arb.CheckInvariants(); err != nil {
			t.Fatalf("node %d inconsistent after crash: %v", ns.id, err)
		}
	}
}

// TestEmptyPlanMatchesNilPlan pins the byte-identity contract at its
// root: an armed but empty fault plan adds bookkeeping events (offload
// records, deadlines) yet must not change a single scheduling decision,
// so the virtual timeline and task counts are identical to a nil plan.
func TestEmptyPlanMatchesNilPlan(t *testing.T) {
	run := func(plan *faults.Plan) (simtime.Duration, int64, int64) {
		rt, err := New(faultCfg(plan))
		if err != nil {
			t.Fatal(err)
		}
		if err := rt.Run(faultMain); err != nil {
			t.Fatal(err)
		}
		return rt.Elapsed(), rt.TotalTasks(), rt.TotalOffloadedTasks()
	}
	e0, t0, o0 := run(nil)
	e1, t1, o1 := run(&faults.Plan{Name: "empty"})
	if e0 != e1 || t0 != t1 || o0 != o1 {
		t.Fatalf("empty plan diverged: elapsed %v vs %v, tasks %d vs %d, offloaded %d vs %d",
			e0, e1, t0, t1, o0, o1)
	}
}

// TestSlowAndRecoverExtendsRun: a severe mid-run slowdown must stretch
// time-to-solution, and recovery must restore the node's speed exactly.
func TestSlowAndRecoverExtendsRun(t *testing.T) {
	plan := &faults.Plan{
		Name: "slow-episode",
		Events: []faults.Event{{
			Kind: faults.Slow, At: 10 * simtime.Duration(ms), Until: 120 * simtime.Duration(ms),
			Node: 1, Speed: 0.25,
		}},
	}
	cfg := faultCfg(plan)
	rtSlow, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := rtSlow.Run(faultMain); err != nil {
		t.Fatal(err)
	}
	if s := cfg.Machine.Node(1).Speed; s != 1.0 {
		t.Fatalf("speed after recovery = %v, want 1.0", s)
	}
	rtBase, err := New(faultCfg(nil))
	if err != nil {
		t.Fatal(err)
	}
	if err := rtBase.Run(faultMain); err != nil {
		t.Fatal(err)
	}
	if rtSlow.Elapsed() <= rtBase.Elapsed() {
		t.Fatalf("slowdown did not extend the run: %v <= %v", rtSlow.Elapsed(), rtBase.Elapsed())
	}
}

// TestCoreLossShrinksNode: permanent core loss reduces the arbiter's
// capacity while keeping its conservation invariants. Degree 2 leaves a
// two-core floor on the four-core nodes, so the full loss fits.
func TestCoreLossShrinksNode(t *testing.T) {
	plan := &faults.Plan{
		Name:   "coreloss",
		Events: []faults.Event{{Kind: faults.CoreLoss, At: 15 * simtime.Duration(ms), Node: 2, Cores: 2}},
	}
	cfg := faultCfg(plan)
	cfg.Degree = 2
	rt, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := rt.Run(faultMain); err != nil {
		t.Fatal(err)
	}
	if c := rt.nodes[2].arb.Cores(); c != 2 {
		t.Fatalf("node 2 has %d cores after loss, want 2", c)
	}
	want := int64(4 * 4 * 12)
	if got := rt.TotalTasks(); got != want {
		t.Fatalf("completed %d tasks, want %d", got, want)
	}
}

// TestFlakyLinkStillCompletes: heavy drop and jitter on the busiest
// link slows delivery but the backoff resend keeps the run finishing
// with every task accounted for.
func TestFlakyLinkStillCompletes(t *testing.T) {
	plan := &faults.Plan{
		Name: "flaky",
		Events: []faults.Event{{
			Kind: faults.Link, At: 0, Until: 200 * simtime.Duration(ms),
			Node: 0, NodeB: 1,
			Delay: 2 * simtime.Duration(ms), Jitter: simtime.Duration(ms), Drop: 0.2,
		}},
	}
	rt, err := New(faultCfg(plan))
	if err != nil {
		t.Fatal(err)
	}
	if err := rt.Run(faultMain); err != nil {
		t.Fatal(err)
	}
	want := int64(4 * 4 * 12)
	if got := rt.TotalTasks(); got != want {
		t.Fatalf("completed %d tasks, want %d", got, want)
	}
}

// TestStallEpisodeRecovers: freezing one apprank's dispatch for a while
// must not lose work or deadlock once it thaws.
func TestStallEpisodeRecovers(t *testing.T) {
	plan := &faults.Plan{
		Name: "stall",
		Events: []faults.Event{{
			Kind: faults.Stall, At: 10 * simtime.Duration(ms), Until: 60 * simtime.Duration(ms),
			Apprank: 1,
		}},
	}
	rt, err := New(faultCfg(plan))
	if err != nil {
		t.Fatal(err)
	}
	if err := rt.Run(faultMain); err != nil {
		t.Fatal(err)
	}
	want := int64(4 * 4 * 12)
	if got := rt.TotalTasks(); got != want {
		t.Fatalf("completed %d tasks, want %d", got, want)
	}
}

// TestFaultPlanDeterminism: the same plan and seed give bit-identical
// timelines; a different seed reshuffles the probabilistic link
// decisions (sanity that the seed actually feeds the hash).
func TestFaultPlanDeterminism(t *testing.T) {
	run := func(seed int64) simtime.Duration {
		plan := &faults.Plan{
			Name: "det",
			Events: []faults.Event{
				{Kind: faults.Slow, At: 10 * simtime.Duration(ms), Until: 80 * simtime.Duration(ms), Node: 1, Speed: 0.5},
				{Kind: faults.Link, At: 0, Until: 150 * simtime.Duration(ms), Node: 0, NodeB: 2,
					Delay: simtime.Duration(ms), Drop: 0.1},
				{Kind: faults.Drain, At: 40 * simtime.Duration(ms), Node: 3},
			},
		}
		cfg := faultCfg(plan)
		cfg.Seed = seed
		rt, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := rt.Run(faultMain); err != nil {
			t.Fatal(err)
		}
		return rt.Elapsed()
	}
	a, b := run(7), run(7)
	if a != b {
		t.Fatalf("same seed diverged: %v vs %v", a, b)
	}
}
