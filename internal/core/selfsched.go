package core

import (
	"ompsscluster/internal/balance"
)

// Self-scheduling integration: when Config.SelfSched names a policy,
// each apprank owns a balance.ChunkServer and its central queue switches
// roles — instead of a spill-over buffer the reactive scheduler steals
// from, it becomes the loop the chunk server grants from. Ready
// offloadable tasks park there, and a deduplicated "pump" (mirroring the
// node dispatcher's scheduleDispatch pattern) grants policy-sized chunks
// to workers with demand. Because task submission is instantaneous in
// virtual time, all of an iteration's submits land at one timestamp and
// the pump sees the whole loop at once; completions raise demand again
// through refill. Under the two-level policy the runtime keeps LeWI
// below: a granted chunk beyond the worker's owned cores runs on idle
// cores the node lends through the dispatcher's borrow pass.

// installSelfSched builds one chunk server per apprank. It runs after
// installInitialOwnership so ownership-derived weights see the §5.4
// initial split. Weights are per-worker relative capacities:
//
//   - two-level: the worker's even share of its node's cores x speed
//     (optimistic — LeWI below makes idle node capacity reachable);
//   - every other policy: the worker's owned cores x node speed, so
//     weighted static chunking and WF respect both heterogeneity and
//     the one-core helper floor.
//
// Weights are a construction-time snapshot: mid-run speed faults or
// DROM changes do not re-weight the server (the demand side — who asks
// when — still reacts to them).
func (rt *ClusterRuntime) installSelfSched() {
	kind := rt.cfg.SelfSched
	for _, a := range rt.appranks {
		a := a
		weights := make([]float64, len(a.workers))
		for i, w := range a.workers {
			n := rt.cfg.Machine.Node(w.ns.id)
			if kind == balance.SelfSchedTwoLevel {
				weights[i] = n.Speed * float64(n.Cores) / float64(len(w.ns.workers))
			} else {
				weights[i] = n.Speed * float64(w.owned())
			}
		}
		a.chunks = balance.NewChunkServer(kind, weights)
		a.pumpFn = func() {
			a.pumpQueued = false
			a.pump()
		}
	}
}

// schedulePump arranges a chunk-grant pass for the apprank at the
// current time (deduplicated, so a submit burst or completion storm
// costs one pass).
func (a *Apprank) schedulePump() {
	if a.pumpQueued || a.aborted {
		return
	}
	a.pumpQueued = true
	a.env.At(a.env.CtxNow(), a.pumpFn)
}

// chunkDemand reports whether a worker should receive another chunk: it
// holds fewer tasks than owned cores (some owned core would otherwise
// idle). The two-level policy also counts the node's currently idle
// cores — capacity LeWI can lend the chunk underneath.
func (a *Apprank) chunkDemand(w *Worker) bool {
	d := w.owned()
	if a.chunks.Kind() == balance.SelfSchedTwoLevel {
		d += w.ns.arb.IdleCores()
	}
	return w.load() < d
}

// pump is the chunk-server grant cycle: begin a new loop if tasks
// arrived since the last one drained, then grant chunks to workers with
// demand (home worker first, then helpers in graph order) until demand
// or tasks run out. Each granted task goes through the normal assign
// path, so offload control messages, data staging, and fault tracking
// are identical to the reactive scheduler's.
func (a *Apprank) pump() {
	if a.aborted || a.queue.Len() == 0 {
		return
	}
	cs := a.chunks
	if a.queue.Len() > cs.Remaining() {
		// New ready tasks beyond the current loop's remainder (a fresh
		// iteration, or recovery re-parks): restart the loop over
		// everything currently held. Grants keep queue length and the
		// server's remainder in lockstep, so this fires exactly at loop
		// boundaries on the steady path.
		cs.BeginLoop(a.queue.Len())
	}
	for granted := true; granted && a.queue.Len() > 0; {
		granted = false
		for i, w := range a.workers {
			if a.queue.Len() == 0 {
				break
			}
			if w.dead || !a.chunkDemand(w) {
				continue
			}
			k := cs.Grant(i)
			if k > a.queue.Len() {
				k = a.queue.Len()
			}
			if k == 0 {
				continue
			}
			for j := 0; j < k; j++ {
				t := a.queue.Pop()
				a.assign(w, t, a.dataLocation(t))
			}
			a.chunkGrants++
			a.rt.cfg.Obs.ChunkGrant(a.id, w.ns.id, int(w.wid), k, cs.Remaining(), int(cs.Kind()))
			granted = true
		}
	}
}
