package core

import (
	"testing"

	"ompsscluster/internal/cluster"
	"ompsscluster/internal/nanos"
	"ompsscluster/internal/simtime"
	"ompsscluster/internal/trace"
)

// TestLocalitySchedulesNearData: a consumer task should execute on the
// node where its producer wrote the data, when that worker has room.
func TestLocalitySchedulesNearData(t *testing.T) {
	rec := trace.NewRecorder()
	rt := MustNew(Config{
		Machine:  cluster.New(2, 4, cluster.DefaultNet()),
		Degree:   2,
		LeWI:     true,
		Recorder: rec,
	})
	err := rt.Run(func(app *App) {
		if app.Rank() != 0 {
			return
		}
		// Saturate home with filler so producers offload to node 1.
		filler := app.Alloc(1 << 20)
		for i := 0; i < 8; i++ {
			r := nanos.Region{Start: filler.Start + uint64(i*1024), End: filler.Start + uint64(i*1024+512)}
			app.Submit(TaskSpec{Label: "filler", Work: 50 * ms,
				Accesses: []nanos.Access{{Region: r, Mode: nanos.InOut}}, Offloadable: false})
		}
		data := app.Alloc(1 << 20) // 1 MB: meaningful transfer
		app.Submit(TaskSpec{Label: "producer", Work: 10 * ms,
			Accesses: []nanos.Access{{Region: data, Mode: nanos.Out}}, Offloadable: true})
		// The consumer reads the 1MB and should follow it to node 1.
		app.Submit(TaskSpec{Label: "consumer", Work: 10 * ms,
			Accesses: []nanos.Access{{Region: data, Mode: nanos.In}}, Offloadable: true})
		app.TaskWait()
	})
	if err != nil {
		t.Fatal(err)
	}
	// Producer and consumer both run on node 1 (home is full of
	// non-offloadable fillers): apprank 0 busy on node 1 must have been
	// non-zero.
	if rec.Busy(1, 0).Max() < 1 {
		t.Fatal("producer/consumer never executed on node 1")
	}
	if rt.TotalOffloadedTasks() < 2 {
		t.Fatalf("offloaded %d tasks, want producer and consumer", rt.TotalOffloadedTasks())
	}
}

// TestTransferCostDelaysOffload: offloading a task with a large input
// charges the interconnect transfer time before it can run.
func TestTransferCostDelaysOffload(t *testing.T) {
	run := func(bytes int64) simtime.Duration {
		net := cluster.NetModel{
			Latency:        simtime.Microsecond,
			BytesPerSecond: 1e9, // 1 GB/s: 1 MB costs 1ms
			LocalLatency:   100 * simtime.Nanosecond,
		}
		rt := MustNew(Config{
			Machine: cluster.New(2, 2, net),
			Degree:  2,
			LeWI:    true,
		})
		err := rt.Run(func(app *App) {
			if app.Rank() != 0 {
				return
			}
			data := app.Alloc(bytes)
			app.Submit(TaskSpec{Label: "producer", Work: ms,
				Accesses: []nanos.Access{{Region: data, Mode: nanos.Out}}, Offloadable: false})
			// Two consumers: one must offload; it pays the transfer.
			for i := 0; i < 4; i++ {
				app.Submit(TaskSpec{Label: "consumer", Work: 5 * ms,
					Accesses: []nanos.Access{{Region: data, Mode: nanos.In}}, Offloadable: true})
			}
			app.TaskWait()
		})
		if err != nil {
			t.Fatal(err)
		}
		return rt.Elapsed()
	}
	small := run(1 << 10)  // 1 KB: ~1us transfer
	large := run(64 << 20) // 64 MB: ~64ms per transfer
	if large <= small+50*ms {
		t.Fatalf("large transfers not charged: small=%v large=%v", small, large)
	}
}

// TestRemoteCompletionLatency: successors of an offloaded task are
// released only after the completion notification returns home.
func TestRemoteCompletionLatency(t *testing.T) {
	slowNet := cluster.NetModel{
		Latency:      10 * ms, // extreme latency makes the effect visible
		LocalLatency: 100 * simtime.Nanosecond,
	}
	rt := MustNew(Config{
		Machine: cluster.New(2, 2, slowNet),
		Degree:  2,
		LeWI:    true,
	})
	err := rt.Run(func(app *App) {
		if app.Rank() != 0 {
			return
		}
		data := app.Alloc(64)
		// Chain of 4 dependent offloadable tasks on a single-core home:
		// some run remotely, each hop paying 10ms each way.
		for i := 0; i < 4; i++ {
			app.Submit(TaskSpec{Label: "chain", Work: ms,
				Accesses: []nanos.Access{{Region: data, Mode: nanos.InOut}}, Offloadable: true})
		}
		app.TaskWait()
	})
	if err != nil {
		t.Fatal(err)
	}
	// 4 x 1ms of work; any remote execution adds >= 20ms round trips.
	// With a 1-core home and filler-free run everything may stay home;
	// at minimum the run must respect the serial chain.
	if rt.Elapsed() < 4*ms {
		t.Fatalf("chain finished too fast: %v", rt.Elapsed())
	}
}

// TestBusyIntegralMatchesTaskTime: the sum of busy integrals across all
// nodes equals the summed execution time of all tasks.
func TestBusyIntegralMatchesTaskTime(t *testing.T) {
	rec := trace.NewRecorder()
	rt := MustNew(Config{
		Machine:       cluster.New(2, 4, cluster.DefaultNet()),
		Degree:        2,
		LeWI:          true,
		Recorder:      rec,
		OverheadFixed: simtime.Nanosecond, // negligible, non-zero to avoid default
		OverheadFrac:  1e-12,
	})
	const n = 32
	err := rt.Run(func(app *App) {
		submitBatch(app, n, 10*ms)
		app.TaskWait()
	})
	if err != nil {
		t.Fatal(err)
	}
	end := rec.End()
	total := 0.0
	for node := 0; node < 2; node++ {
		for a := 0; a < 2; a++ {
			total += rec.Busy(node, a).Integral(0, end)
		}
	}
	want := float64(2*n) * float64(10*ms)
	if diff := total - want; diff < -float64(ms) || diff > float64(2*n)*1000 {
		t.Fatalf("busy integral = %v, want ~%v", total, want)
	}
}
