package core

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"ompsscluster/internal/cluster"
	"ompsscluster/internal/faults"
	"ompsscluster/internal/nanos"
	"ompsscluster/internal/simtime"
)

// TestQuickChaos runs randomized configurations and workloads (random
// degrees, policies, dependency patterns, task sizes, slow nodes, dynamic
// spreading) and checks the system-wide invariants: the run terminates,
// every task completes exactly once, nothing deadlocks, non-offloadable
// tasks stay home, and the arbiters stay consistent.
func TestQuickChaos(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nodes := 2 + rng.Intn(4)
		cores := 2 + rng.Intn(6)
		rpn := 1 + rng.Intn(2)
		degree := 1 + rng.Intn(nodes)
		for degree*rpn > cores {
			degree--
		}
		cfg := Config{
			Machine:         cluster.New(nodes, cores, cluster.DefaultNet()),
			AppranksPerNode: rpn,
			Degree:          degree,
			LeWI:            rng.Intn(2) == 0,
			DROM:            DROMMode(rng.Intn(3)),
			GlobalPeriod:    simtime.Duration(10+rng.Intn(50)) * simtime.Millisecond,
			LocalPeriod:     simtime.Duration(5+rng.Intn(30)) * simtime.Millisecond,
			TasksPerCore:    1 + rng.Intn(3),
			CountBorrowed:   rng.Intn(4) == 0,
			Seed:            seed,
		}
		if rng.Intn(3) == 0 {
			cfg.Dynamic = DynamicConfig{
				Enabled:    true,
				GrowPeriod: simtime.Duration(5+rng.Intn(20)) * simtime.Millisecond,
			}
		}
		if rng.Intn(3) == 0 {
			cfg.Machine.SetSpeed(rng.Intn(nodes), 0.3+rng.Float64()*0.7)
		}
		rt, err := New(cfg)
		if err != nil {
			t.Logf("seed %d: config rejected: %v", seed, err)
			return false
		}
		var wantTasks int64
		appranks := nodes * rpn
		perRank := make([]int, appranks)
		for a := range perRank {
			perRank[a] = rng.Intn(40)
			wantTasks += int64(perRank[a])
		}
		iterations := 1 + rng.Intn(3)
		wantTasks *= int64(iterations)
		seedBase := seed
		err = rt.Run(func(app *App) {
			r := rand.New(rand.NewSource(seedBase + int64(app.Rank())))
			regions := make([]nanos.Region, 8)
			for i := range regions {
				regions[i] = app.Alloc(1 << 10)
			}
			for it := 0; it < iterations; it++ {
				for i := 0; i < perRank[app.Rank()]; i++ {
					var acc []nanos.Access
					for k := 0; k < 1+r.Intn(2); k++ {
						acc = append(acc, nanos.Access{
							Region: regions[r.Intn(len(regions))],
							Mode:   nanos.AccessMode(r.Intn(4)),
						})
					}
					app.Submit(TaskSpec{
						Label:       "chaos",
						Work:        simtime.Duration(r.Intn(10)+1) * simtime.Millisecond,
						Accesses:    acc,
						Offloadable: r.Intn(4) != 0,
					})
				}
				app.TaskWait()
				app.Barrier()
			}
		})
		if err != nil {
			t.Logf("seed %d: run failed: %v", seed, err)
			return false
		}
		if got := rt.TotalTasks(); got != wantTasks {
			t.Logf("seed %d: completed %d tasks, want %d", seed, got, wantTasks)
			return false
		}
		if cfg.Degree == 1 && !cfg.Dynamic.Enabled && rt.TotalOffloadedTasks() != 0 {
			t.Logf("seed %d: offloaded with degree 1", seed)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// randomPlan builds a random but valid fault plan: a mix of slowdowns,
// link episodes, core losses, stalls, and drains (no crashes — those
// abort by design and are exercised separately).
func randomPlan(rng *rand.Rand, nodes, appranks int) *faults.Plan {
	p := &faults.Plan{Name: "chaos"}
	n := 1 + rng.Intn(4)
	for i := 0; i < n; i++ {
		at := simtime.Duration(5+rng.Intn(60)) * simtime.Millisecond
		until := at + simtime.Duration(10+rng.Intn(80))*simtime.Millisecond
		switch rng.Intn(5) {
		case 0:
			p.Events = append(p.Events, faults.Event{
				Kind: faults.Slow, At: at, Until: until,
				Node: rng.Intn(nodes), Speed: 0.25 + rng.Float64()*0.7,
			})
		case 1:
			a := rng.Intn(nodes)
			b := (a + 1 + rng.Intn(nodes-1)) % nodes
			p.Events = append(p.Events, faults.Event{
				Kind: faults.Link, At: at, Until: until, Node: a, NodeB: b,
				Delay:  simtime.Duration(rng.Intn(3)) * simtime.Millisecond,
				Jitter: simtime.Duration(rng.Intn(1000)) * simtime.Microsecond,
				Drop:   rng.Float64() * 0.3,
			})
		case 2:
			p.Events = append(p.Events, faults.Event{
				Kind: faults.CoreLoss, At: at, Node: rng.Intn(nodes), Cores: 1 + rng.Intn(2),
			})
		case 3:
			p.Events = append(p.Events, faults.Event{
				Kind: faults.Stall, At: at, Until: until, Apprank: rng.Intn(appranks),
			})
		case 4:
			p.Events = append(p.Events, faults.Event{
				Kind: faults.Drain, At: at, Node: rng.Intn(nodes),
			})
		}
	}
	return p
}

// TestQuickFaultChaos runs randomized configurations under randomized
// fault plans and checks, after every injected fault edge and at the
// end, that the arbiters and dependency graphs stay consistent, the run
// terminates, and no task is lost.
func TestQuickFaultChaos(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nodes := 3 + rng.Intn(3)
		cores := 3 + rng.Intn(4)
		degree := 2 + rng.Intn(2)
		if degree > nodes {
			degree = nodes
		}
		for degree > cores {
			degree--
		}
		cfg := Config{
			Machine:      cluster.New(nodes, cores, cluster.DefaultNet()),
			Degree:       degree,
			LeWI:         rng.Intn(2) == 0,
			DROM:         DROMMode(rng.Intn(3)),
			GlobalPeriod: simtime.Duration(10+rng.Intn(50)) * simtime.Millisecond,
			LocalPeriod:  simtime.Duration(5+rng.Intn(30)) * simtime.Millisecond,
			Seed:         seed,
			Faults:       randomPlan(rng, nodes, nodes),
		}
		var rt *ClusterRuntime
		checkInvariants := func() error {
			for _, ns := range rt.nodes {
				if ns.dead {
					continue
				}
				if err := ns.arb.CheckInvariants(); err != nil {
					return err
				}
			}
			for _, a := range rt.appranks {
				if a.aborted {
					continue
				}
				sub, comp, out := a.graph.Stats()
				if sub != comp+int64(out) {
					return fmt.Errorf("apprank %d: submitted %d != completed %d + outstanding %d",
						a.id, sub, comp, out)
				}
			}
			return nil
		}
		var faultErr error
		cfg.OnFault = func(ev faults.Event, phase faults.Phase) {
			if faultErr == nil {
				if err := checkInvariants(); err != nil {
					faultErr = fmt.Errorf("after %s/%d: %w", ev.Kind, phase, err)
				}
			}
		}
		rt, err := New(cfg)
		if err != nil {
			t.Logf("seed %d: config rejected: %v", seed, err)
			return false
		}
		var wantTasks int64
		perRank := make([]int, nodes)
		for a := range perRank {
			perRank[a] = rng.Intn(30)
			wantTasks += int64(perRank[a])
		}
		seedBase := seed
		err = rt.Run(func(app *App) {
			r := rand.New(rand.NewSource(seedBase + int64(app.Rank())))
			for i := 0; i < perRank[app.Rank()]; i++ {
				reg := app.Alloc(1 << 10)
				app.Submit(TaskSpec{
					Label:       "chaos",
					Work:        simtime.Duration(r.Intn(8)+1) * simtime.Millisecond,
					Accesses:    []nanos.Access{{Region: reg, Mode: nanos.InOut}},
					Offloadable: r.Intn(5) != 0,
				})
			}
			app.TaskWait()
		})
		if faultErr != nil {
			t.Logf("seed %d: invariant broken %v", seed, faultErr)
			return false
		}
		if err != nil {
			t.Logf("seed %d: run failed: %v", seed, err)
			return false
		}
		if err := checkInvariants(); err != nil {
			t.Logf("seed %d: final invariants: %v", seed, err)
			return false
		}
		if got := rt.TotalTasks(); got != wantTasks {
			t.Logf("seed %d: completed %d tasks, want %d", seed, got, wantTasks)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickDeterminismAcrossConfigs: identical config and workload seeds
// give bit-identical elapsed times and event counts.
func TestQuickDeterminismAcrossConfigs(t *testing.T) {
	f := func(seed int64) bool {
		run := func() (simtime.Duration, uint64) {
			rng := rand.New(rand.NewSource(seed))
			nodes := 2 + rng.Intn(3)
			rt := MustNew(Config{
				Machine:      cluster.New(nodes, 4, cluster.DefaultNet()),
				Degree:       1 + rng.Intn(nodes),
				LeWI:         true,
				DROM:         DROMGlobal,
				GlobalPeriod: 20 * ms,
				Seed:         seed,
			})
			if err := rt.Run(func(app *App) {
				submitBatch(app, 10+app.Rank()*7, 3*ms)
				app.TaskWait()
			}); err != nil {
				t.Fatal(err)
			}
			return rt.Elapsed(), rt.Env().Steps()
		}
		e1, s1 := run()
		e2, s2 := run()
		return e1 == e2 && s1 == s2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}
