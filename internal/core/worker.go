package core

import (
	"ompsscluster/internal/dlb"
	"ompsscluster/internal/nanos"
	"ompsscluster/internal/simtime"
)

// simtimeDuration converts an int64 nanosecond count (used for arithmetic
// convenience) back to a Duration.
func simtimeDuration(ns int64) simtime.Duration { return simtime.Duration(ns) }

// Worker is one apprank's executor on one node: the home worker or a
// helper. It holds tasks assigned to it (runnable or with data still in
// flight) and executes them on cores granted by the node's DLB arbiter.
type Worker struct {
	app        *Apprank
	ns         *nodeState
	wid        dlb.WorkerID
	queued     taskFIFO // runnable, waiting for a core
	inflight   int      // assigned, input data still in transit
	running    int
	busySmooth float64 // exponentially smoothed busy-core average

	// Fault-plan state (zero on fault-free runs): a dead worker's node
	// runtime died (drain/crash); epoch stamps in-flight completion
	// closures so a death invalidates them.
	dead  bool
	epoch uint64
}

// isHome reports whether this is the apprank's main worker.
func (w *Worker) isHome() bool { return w.ns.id == w.app.home }

// owned returns the worker's DROM core ownership.
func (w *Worker) owned() int { return w.ns.arb.Owned(w.wid) }

// capacity is the §5.5 assignment threshold: TasksPerCore per owned core.
// Owned counts DROM ownership only — never LeWI-borrowed cores — unless
// the CountBorrowed ablation is enabled.
func (w *Worker) capacity() int {
	o := w.owned()
	if w.app.rt.cfg.CountBorrowed {
		if b := w.running - o; b > 0 {
			o += b
		}
	}
	return w.app.rt.cfg.TasksPerCore * o
}

// load counts tasks bound to this worker in any pre-completion stage.
func (w *Worker) load() int { return w.queued.Len() + w.inflight + w.running }

// underThreshold reports whether the scheduler may assign another task.
func (w *Worker) underThreshold() bool { return w.load() < w.capacity() }

// enqueue makes a task runnable at this worker and pokes the dispatcher.
func (w *Worker) enqueue(t *nanos.Task) {
	w.queued.Push(t)
	w.ns.scheduleDispatch()
}

// after schedules fn on the node's environment d after the current
// context time. CtxNow (not Now) so a global barrier event — a policy
// tick or fault edge under the parallel engine — lands the callback at
// the barrier time even when the node's partition clock lags.
func (ns *nodeState) after(d simtime.Duration, fn func()) {
	ns.env.At(ns.env.CtxNow()+simtime.Time(d), fn)
}

// start executes the head task on a core the dispatcher secured.
func (w *Worker) start() {
	rt := w.app.rt
	now := w.ns.env.Now()
	t := w.queued.Pop()
	w.ns.arb.Start(w.wid, now)
	w.running++
	w.app.graph.MarkRunning(t, w.ns.id)
	if !w.isHome() {
		w.app.offloaded++
	}
	borrowed := w.running > w.owned()
	rt.cfg.Obs.ExecStart(w.ns.id, w.app.id, t.ID, int(w.wid), borrowed, t.Label)
	// Occupied time: compute plus runtime overhead, both scaled by node
	// speed, plus a fixed overhead.
	work := t.Work + simtime.Duration(rt.cfg.OverheadFrac*float64(t.Work))
	exec := rt.cfg.Machine.ExecTime(w.ns.id, work) + rt.cfg.OverheadFixed
	// TALP splits the occupied interval into useful compute (the task's
	// work at this node's speed) and runtime overhead (the fixed and
	// fractional model terms), attributed to the (apprank, node) cell —
	// this thread is the only writer for the cell in every engine, so
	// the accounting is lock-free and deterministic.
	useful := float64(rt.cfg.Machine.ExecTime(w.ns.id, t.Work))
	rt.talp.AddExec(w.app.id, w.ns.id, now, now+simtime.Time(exec),
		useful, float64(exec)-useful, borrowed)
	if rt.cfg.GoroutineEngine {
		// Legacy closure path, kept for the engine differential check.
		// The completion is only valid while the worker lives: if the
		// node dies mid-task the recovery path force-finishes and
		// re-places the task, and the epoch stamp makes this a no-op.
		epoch := w.epoch
		w.ns.env.Schedule(exec, func() {
			if w.epoch != epoch {
				return
			}
			w.complete(t)
		})
		return
	}
	// Continuation engine: a pooled record instead of a per-task closure
	// (same event, same (time, seq) key — see continuations.go).
	w.ns.env.Schedule(exec, w.ns.getExec(w, t).fn)
}

// complete handles a task finishing on this worker.
func (w *Worker) complete(t *nanos.Task) {
	rt := w.app.rt
	now := w.ns.env.Now()
	w.ns.arb.Finish(w.wid, now)
	w.running--
	rt.cfg.Obs.ExecEnd(w.ns.id, w.app.id, t.ID, int(w.wid), t.Label)
	a := w.app
	if w.isHome() {
		a.finishTask(t)
	} else {
		// The completion notification travels back to the apprank's home
		// node before successors are released there.
		if rt.flt != nil {
			a.markCompletedRemote(t)
		}
		if rt.cfg.GoroutineEngine {
			rt.sendCtl(w.ns.id, a.home, rt.cfg.CtlMsgBytes, func() { a.finishTask(t) })
		} else {
			rt.sendCtl(w.ns.id, a.home, rt.cfg.CtlMsgBytes, w.ns.getFinish(a, t).fn)
		}
	}
	// Steal centrally held tasks now that this worker has room ("will be
	// stolen as tasks complete", §5.5).
	a.refill(w)
	w.ns.scheduleDispatch()
}

// scheduleDispatch arranges a dispatch pass for the node at the current
// time (deduplicated, so event storms cost one pass). The callback is
// allocated once per node at construction, not per pass.
func (ns *nodeState) scheduleDispatch() {
	if ns.queued {
		return
	}
	ns.queued = true
	ns.env.At(ns.env.CtxNow(), ns.dispatchFn)
}

// dispatch greedily starts runnable tasks on the node: owners use their
// own cores first (including DROM reclaims at task boundaries); with LeWI
// enabled, remaining idle cores are lent to any worker with runnable
// tasks. Round-robin rotation keeps the borrow pass fair.
func (ns *nodeState) dispatch() {
	n := len(ns.workers)
	if n == 0 {
		return
	}
	for changed := true; changed; {
		changed = false
		for k := 0; k < n; k++ {
			w := ns.workers[(ns.rr+k)%n]
			if w.dead || w.app.stalled {
				continue
			}
			for w.queued.Len() > 0 && ns.arb.CanStartOwned(w.wid) {
				w.start()
				changed = true
			}
		}
		for k := 0; k < n; k++ {
			w := ns.workers[(ns.rr+k)%n]
			if w.dead || w.app.stalled {
				continue
			}
			// An idle lent core polls the apprank's central queue
			// directly: this is how LeWI-borrowed cores keep receiving
			// work beyond the owned-core threshold.
			w.app.borrowRefill(w)
			if w.queued.Len() > 0 && ns.arb.CanBorrow(w.wid) {
				w.start()
				changed = true
			}
		}
	}
	ns.rr = (ns.rr + 1) % n
}
