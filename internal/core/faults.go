package core

import (
	"fmt"

	"ompsscluster/internal/faults"
	"ompsscluster/internal/nanos"
	"ompsscluster/internal/simtime"
)

// Runtime resilience under an injected fault plan. Everything in this
// file is reached only when Config.Faults is non-nil: a fault-free run
// schedules exactly the same events as a build without this file, so
// its figure outputs stay byte-identical.
//
// The recovery model follows the offloading design of §5.5: offload is
// normally final, but under a fault plan every offloaded task carries a
// completion deadline at its home apprank. When the deadline expires
// with the target dead, drained, or severely degraded — or when the
// target dies outright — the home apprank re-places the task on the
// next-best healthy helper from its locality vector, up to
// FaultRetryBudget times, and then falls back to executing locally.
// Work lost on a dying core re-enters the dependency graph via
// nanos.Reschedule, so a run never hangs and never loses tasks; a
// whole-node crash aborts the applications homed there with a typed
// AbortError while co-scheduled applications keep running.

// faultState is the per-runtime fault-plan context.
type faultState struct {
	plan     *faults.Plan
	links    *faults.Links
	ctlSeq   uint64 // per-runtime sequence for conditioning control traffic
	abortErr error
}

// AbortError reports that a node crash killed one or more applications
// (the MPI job abort of a real machine). Co-scheduled applications on
// surviving nodes run to completion; the runtime then surfaces this
// error instead of their result.
type AbortError struct {
	// Node is the crashed node.
	Node int
	// App names the first application aborted by the crash.
	App string
	// Time is the virtual time of the crash.
	Time simtime.Time
}

func (e *AbortError) Error() string {
	return fmt.Sprintf("core: node %d crashed at %v, application %q aborted", e.Node, e.Time, e.App)
}

// offloadRec tracks one offloaded task at its home apprank: where it
// went, which placement generation is current, and how many recovery
// attempts it has consumed. Records live in both a map (lookup by task)
// and an append-ordered slice (deterministic iteration — map order must
// never influence the schedule).
type offloadRec struct {
	t *nanos.Task
	w *Worker
	// gen is bumped on every (re)placement; in-flight arrival closures
	// and pending deadline checks capture it and no-op when stale.
	gen uint64
	// attempt counts recovery re-placements (0 = original placement).
	attempt int
	// arrived: control message and input data reached w, so the task
	// sits in w's runnable queue (or runs there).
	arrived bool
	// completedAt: the task finished executing at a remote worker and
	// the completion notification is travelling home. The work is done;
	// a subsequent worker death must not re-execute it.
	completedAt bool
	// done: the record is retired (task completed at home, or the task
	// was pulled back into the home-direct path).
	done bool
}

// armFaults validates and binds the configured plan and schedules its
// event edges. Called from finishConstruction once all appranks exist.
func (rt *ClusterRuntime) armFaults() error {
	p := rt.cfg.Faults.Bind(rt.cfg.Seed)
	if err := p.Validate(rt.cfg.Machine.NumNodes(), len(rt.appranks)); err != nil {
		return fmt.Errorf("core: fault plan: %w", err)
	}
	rt.flt = &faultState{plan: p, links: faults.NewLinks(p)}
	if rt.flt.links != nil {
		for _, st := range rt.apps {
			st.world.SetLinkFaults(rt.flt.links)
		}
	}
	for _, a := range rt.appranks {
		a.offByTask = make(map[*nanos.Task]*offloadRec)
	}
	faults.Arm(rt.env, p, rt.applyFault)
	return nil
}

// applyFault dispatches one fault-plan edge.
func (rt *ClusterRuntime) applyFault(idx int, ev faults.Event, phase faults.Phase) {
	if phase == faults.Inject {
		rt.injectFault(idx, ev)
	} else {
		rt.recoverFault(idx, ev)
	}
	rt.stats.FaultEvents++
	if rt.cfg.OnFault != nil {
		rt.cfg.OnFault(ev, phase)
	}
}

func (rt *ClusterRuntime) injectFault(idx int, ev faults.Event) {
	node, apprank := -1, -1
	switch ev.Kind {
	case faults.Slow:
		node = ev.Node
		m := rt.cfg.Machine
		// Multiplicative, so overlapping episodes compose and recovery
		// divides back out without stored state.
		m.SetSpeed(ev.Node, m.Node(ev.Node).Speed*ev.Speed)
	case faults.CoreLoss:
		node = ev.Node
		rt.loseCores(ev.Node, ev.Cores)
	case faults.Link:
		node = ev.Node // Links itself gates on the episode window
	case faults.Stall:
		apprank = ev.Apprank
		rt.appranks[ev.Apprank].stalled = true
	case faults.Crash:
		node = ev.Node
		rt.crashNode(ev.Node)
	case faults.Drain:
		node = ev.Node
		rt.drainNode(ev.Node)
	}
	rt.cfg.Obs.FaultInject(idx, string(ev.Kind), node, apprank, simtime.Time(ev.Until), int64(ev.Cores), 0)
}

func (rt *ClusterRuntime) recoverFault(idx int, ev faults.Event) {
	node, apprank := -1, -1
	switch ev.Kind {
	case faults.Slow:
		node = ev.Node
		m := rt.cfg.Machine
		m.SetSpeed(ev.Node, m.Node(ev.Node).Speed/ev.Speed)
	case faults.Link:
		node = ev.Node
	case faults.Stall:
		apprank = ev.Apprank
		a := rt.appranks[ev.Apprank]
		a.stalled = false
		if !a.aborted {
			a.refillAll()
			for _, w := range a.workers {
				if !w.dead {
					w.ns.scheduleDispatch()
				}
			}
		}
	}
	rt.cfg.Obs.FaultRecover(idx, string(ev.Kind), node, apprank)
}

// loseCores permanently removes k cores from a node (hardware fault,
// thermal offlining). Ownership is revoked from the workers with the
// most idle owned cores first — lent cores go before busy ones — while
// keeping every worker's one-core floor. Tasks already running are
// unaffected (the failed cores are the idle ones); the node simply
// dispatches less from now on.
func (rt *ClusterRuntime) loseCores(node, k int) {
	ns := rt.nodes[node]
	if ns.dead {
		return
	}
	cores := ns.arb.Cores()
	floor := len(ns.workers)
	if floor < 1 {
		floor = 1
	}
	if cores-k < floor {
		k = cores - floor
	}
	if k <= 0 {
		return
	}
	owned := ns.arb.OwnedAll()
	for i := 0; i < k; i++ {
		best, bestIdle := -1, 0
		for wi := range owned {
			if owned[wi] <= 1 {
				continue // keep the floor (dead workers own 0 and are skipped)
			}
			idle := owned[wi] - ns.arb.Running(ns.workers[wi].wid)
			if best == -1 || idle > bestIdle {
				best, bestIdle = wi, idle
			}
		}
		if best == -1 {
			return // nothing left above the floor
		}
		owned[best]--
	}
	rt.cfg.Machine.RemoveCores(node, k)
	ns.arb.SetCores(cores - k)
	ns.arb.SetOwned(owned)
}

// drainNode kills the helper workers on a node (the runtime daemon
// died; the node itself and the appranks homed on it keep running).
// Their queued, in-flight, and running offloaded tasks are re-placed by
// their home appranks.
func (rt *ClusterRuntime) drainNode(node int) {
	ns := rt.nodes[node]
	if ns.dead {
		return
	}
	for _, w := range ns.workers {
		if !w.isHome() && !w.dead {
			rt.killWorker(w)
		}
	}
}

// crashNode models a whole node dying: every application with an
// apprank homed on it aborts (MPI semantics: losing a rank kills the
// job), surviving applications lose their helper workers there, and the
// node's arbiter shuts down.
func (rt *ClusterRuntime) crashNode(node int) {
	ns := rt.nodes[node]
	if ns.dead {
		return
	}
	for _, st := range rt.apps {
		for _, a := range st.ranks {
			if a.home == node && !a.aborted {
				rt.abortApp(st, node)
				break
			}
		}
	}
	for _, w := range ns.workers {
		if !w.dead {
			rt.killWorker(w)
		}
	}
	ns.dead = true
	ns.arb.Shutdown()
}

// abortApp tears one application down after a crash killed one of its
// home nodes: every rank process is killed, every worker (on every
// node) is retired with its running tasks force-finished, and the
// typed AbortError is recorded for finishRun.
func (rt *ClusterRuntime) abortApp(st *appState, node int) {
	now := rt.env.Now()
	if rt.flt.abortErr == nil {
		rt.flt.abortErr = &AbortError{Node: node, App: st.spec.Name, Time: now}
	}
	for _, a := range st.ranks {
		if a.aborted {
			continue
		}
		a.aborted = true
		a.stalled = false
		if !a.finishedMain && a.proc != nil {
			a.proc.Kill()
			a.finishedAt = now
			rt.activeApps.Add(-1)
		}
		a.queue.Clear()
		for _, w := range a.workers {
			if w.dead {
				continue
			}
			w.dead = true
			w.epoch++
			for w.running > 0 {
				w.ns.arb.Finish(w.wid, now)
				w.running--
			}
			w.queued.Clear()
			retireWorkerOwnership(w.ns, w)
		}
	}
}

// killWorker retires one worker whose node-side runtime died. Running
// tasks are force-finished at the arbiter (the core died under them)
// and re-enter the dependency graph; queued and in-flight offloads are
// re-placed immediately. Tasks that had already completed — with the
// completion notification still travelling home — stay completed.
func (rt *ClusterRuntime) killWorker(w *Worker) {
	now := rt.env.Now()
	w.dead = true
	w.epoch++ // pending completion closures become stale
	a := w.app
	for _, rec := range a.offRecs {
		if rec.done || rec.w != w || rec.completedAt {
			continue
		}
		t := rec.t
		if t.State() == nanos.Running {
			w.ns.arb.Finish(w.wid, now)
			w.running--
			rt.cfg.Obs.ExecEnd(w.ns.id, a.id, t.ID, int(w.wid), t.Label)
			a.graph.Reschedule(t)
		}
		a.reoffload(rec)
	}
	w.queued.Clear()
	retireWorkerOwnership(w.ns, w)
}

// retireWorkerOwnership hands a dead worker's owned cores to the live
// worker on the node owning the fewest, so the arbiter's per-node
// conservation (sum owned == cores) holds without counting the dead.
// With no live worker left the stale ownership stays: the node idles
// and the policies skip it.
func retireWorkerOwnership(ns *nodeState, w *Worker) {
	owned := ns.arb.OwnedAll()
	freed := owned[int(w.wid)]
	if freed == 0 {
		return
	}
	target := -1
	for _, ww := range ns.workers {
		if ww.dead || ww == w {
			continue
		}
		if target == -1 || owned[int(ww.wid)] < owned[target] {
			target = int(ww.wid)
		}
	}
	if target == -1 {
		return
	}
	owned[int(w.wid)] = 0
	owned[target] += freed
	ns.arb.SetOwned(owned)
}

// liveWorkers counts non-dead workers on the node.
func (ns *nodeState) liveWorkers() int {
	n := 0
	for _, w := range ns.workers {
		if !w.dead {
			n++
		}
	}
	return n
}

// degraded reports whether a target node is so much slower than the
// apprank's home that waiting out the deadline there is worse than
// re-placing (the paper's slow-node scenario taken to the extreme).
func (rt *ClusterRuntime) degraded(node, home int) bool {
	m := rt.cfg.Machine
	return m.Node(node).Speed < 0.5*m.Node(home).Speed
}

// nextCtlSeq returns a fresh sequence number for link-conditioning one
// control transfer.
func (f *faultState) nextCtlSeq() uint64 {
	s := f.ctlSeq
	f.ctlSeq++
	return s
}

// scheduleLinked schedules fn after the base delay d from node a to
// node b, applying link-fault conditioning: episode delay and jitter
// stretch the transfer; a drop consumes one attempt and resends with
// exponential backoff. Transfers abandoned after the attempt budget
// leave the receiver to the deadline/deadlock machinery.
func (rt *ClusterRuntime) scheduleLinked(from, to int, d simtime.Duration, fn func()) {
	links := rt.flt.links
	if links == nil || from == to {
		rt.env.Schedule(d, fn)
		return
	}
	rt.linkedAttempt(from, to, d, rt.flt.nextCtlSeq(), 0, fn)
}

func (rt *ClusterRuntime) linkedAttempt(from, to int, d simtime.Duration, seq uint64, attempt int, fn func()) {
	links := rt.flt.links
	extra, drop := links.Condition(rt.env.Now(), from, to, seq, attempt)
	if drop {
		rt.cfg.Obs.MsgDrop(-1, from, to, attempt)
		if attempt+1 >= links.MaxAttempts() {
			return
		}
		rt.env.Schedule(d+extra+links.BackoffDelay(attempt+1), func() {
			rt.linkedAttempt(from, to, d, seq, attempt+1, fn)
		})
		return
	}
	rt.env.Schedule(d+extra, fn)
}

// --- Offload tracking at the home apprank ---------------------------

// dispatchOffload (fault-plan runs only) records or re-records the
// placement of an offloaded task, schedules the link-conditioned
// transfer, and arms the completion deadline. Mirrors the untracked
// Schedule in assign.
func (a *Apprank) dispatchOffload(w *Worker, t *nanos.Task, d simtime.Duration) {
	rec := a.offByTask[t]
	if rec == nil {
		rec = &offloadRec{t: t}
		a.offByTask[t] = rec
		a.offRecs = append(a.offRecs, rec)
	}
	rec.gen++
	rec.w = w
	rec.arrived = false
	gen := rec.gen
	rt := a.rt
	rt.scheduleLinked(a.home, w.ns.id, d, func() {
		w.inflight--
		if rec.done || rec.gen != gen || a.aborted {
			return // superseded by a re-placement or an abort
		}
		rec.arrived = true
		w.enqueue(t)
	})
	a.armDeadline(rec)
}

// retireOffload drops the tracking record of a task that completed (or
// was pulled back into the home-direct path). The slice entry is
// compacted lazily.
func (a *Apprank) retireOffload(t *nanos.Task) {
	rec := a.offByTask[t]
	if rec == nil {
		return
	}
	rec.done = true
	delete(a.offByTask, t)
	if len(a.offRecs) >= 64 && len(a.offByTask) < len(a.offRecs)/2 {
		live := a.offRecs[:0]
		for _, r := range a.offRecs {
			if !r.done {
				live = append(live, r)
			}
		}
		clear(a.offRecs[len(live):])
		a.offRecs = live
	}
}

// deadlineFor derives the completion deadline of one offloaded task:
// generous enough that a healthy run never trips it, tight enough that
// a lost task is recovered well before the deadlock horizon.
func (a *Apprank) deadlineFor(t *nanos.Task) simtime.Duration {
	if d := a.rt.cfg.OffloadDeadline; d > 0 {
		return d
	}
	return 50*simtime.Millisecond + 8*(t.Work+a.rt.cfg.OverheadFixed)
}

func (a *Apprank) armDeadline(rec *offloadRec) {
	gen := rec.gen
	a.rt.env.Schedule(a.deadlineFor(rec.t), func() { a.checkDeadline(rec, gen) })
}

// checkDeadline is the health check behind the deadline: it never
// preempts — a task observed running on a live worker just gets more
// time — but a task stuck queued or in flight at a dead, drained, or
// severely degraded target is re-placed.
func (a *Apprank) checkDeadline(rec *offloadRec, gen uint64) {
	if rec.done || rec.gen != gen || a.aborted {
		return
	}
	w := rec.w
	switch {
	case rec.completedAt:
		// Finished remotely; the completion notification is in flight.
	case rec.t.State() == nanos.Running:
		if !w.dead {
			a.armDeadline(rec)
		}
	case w.dead || w.ns.dead || a.rt.degraded(w.ns.id, a.home):
		a.reoffload(rec)
	default:
		a.armDeadline(rec)
	}
}

// reoffload re-places one offloaded task after its target died or timed
// out, consuming one attempt of the retry budget.
func (a *Apprank) reoffload(rec *offloadRec) {
	t := rec.t
	old := rec.w
	if rec.arrived {
		old.queued.Remove(t)
	}
	rec.attempt++
	loc := a.dataLocation(t)
	nw := a.pickHealthy(loc, rec.attempt)
	a.rt.stats.Reoffloads++
	a.rt.cfg.Obs.Reoffload(a.id, t.ID, old.ns.id, nw.ns.id, rec.attempt, nw == a.workers[0])
	a.assign(nw, t, loc)
}

// pickHealthy chooses the recovery target: the locality-best healthy
// helper under the scheduling threshold, then any healthy helper, and —
// once the retry budget is spent or no helper survives — the home
// worker, which can always execute the task locally.
func (a *Apprank) pickHealthy(loc nanos.LocVec, attempt int) *Worker {
	home := a.workers[0]
	if attempt > a.rt.cfg.FaultRetryBudget {
		return home
	}
	var best *Worker
	bestBytes := int64(-1)
	for _, w := range a.workers[1:] {
		if w.dead || w.ns.dead || a.rt.degraded(w.ns.id, a.home) || !w.underThreshold() {
			continue
		}
		if b := loc.On(w.ns.id); b > bestBytes {
			best, bestBytes = w, b
		}
	}
	if best != nil {
		return best
	}
	for _, w := range a.workers[1:] {
		if !w.dead && !w.ns.dead {
			return w
		}
	}
	return home
}

// markCompletedRemote flags the task's record when it finishes
// executing at a helper, before the completion notification travels
// home: from here on the work must not be re-executed.
func (a *Apprank) markCompletedRemote(t *nanos.Task) {
	if rec := a.offByTask[t]; rec != nil {
		rec.completedAt = true
	}
}
