package core

import (
	"bytes"
	"math"
	"reflect"
	"testing"

	"ompsscluster/internal/cluster"
	"ompsscluster/internal/simtime"
)

// runPOPWorkload executes the shared cross-engine workload with full POP
// accounting and returns the report's deterministic JSON rendering.
func runPOPWorkload(t *testing.T, mutate func(*Config), workers int, parallel bool) string {
	t.Helper()
	cfg := Config{
		Machine:     cluster.New(4, 4, cluster.DefaultNet()),
		LeWI:        true,
		DROM:        DROMLocal,
		Seed:        7,
		POP:         true,
		POPWindow:   5 * ms,
		SimParallel: parallel,
		SimWorkers:  workers,
	}
	if mutate != nil {
		mutate(&cfg)
	}
	rt := MustNew(cfg)
	if err := rt.Run(parallelWorkload); err != nil {
		t.Fatalf("run failed: %v", err)
	}
	rep, err := rt.POP()
	if err != nil {
		t.Fatalf("POP: %v", err)
	}
	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	return buf.String()
}

// TestPOPDeterministicAcrossEngines is the tentpole acceptance check:
// the POP report's JSON bytes are identical under the continuation,
// goroutine, and parallel engines at every worker count.
func TestPOPDeterministicAcrossEngines(t *testing.T) {
	ref := runPOPWorkload(t, nil, 0, false)
	if ref == "" {
		t.Fatal("empty reference report")
	}
	goro := runPOPWorkload(t, func(c *Config) { c.GoroutineEngine = true }, 0, false)
	if goro != ref {
		t.Errorf("goroutine engine POP JSON diverged:\ncontinuation:\n%s\ngoroutine:\n%s", ref, goro)
	}
	for _, workers := range []int{1, 2, 3, 4, 5, 6, 7, 8} {
		got := runPOPWorkload(t, nil, workers, true)
		if got != ref {
			t.Errorf("simworkers=%d POP JSON diverged:\nsequential:\n%s\nparallel:\n%s", workers, ref, got)
		}
	}
}

// TestPOPReportContent checks the report semantics on a real run: the
// multiplicative decomposition holds over both entity sets and in every
// window, utilisations are sane, and the counters are populated.
func TestPOPReportContent(t *testing.T) {
	cfg := Config{
		Machine:   cluster.New(4, 4, cluster.DefaultNet()),
		LeWI:      true,
		DROM:      DROMLocal,
		Seed:      7,
		POP:       true,
		POPWindow: 5 * ms,
	}
	rt := MustNew(cfg)
	if err := rt.Run(parallelWorkload); err != nil {
		t.Fatal(err)
	}
	rep, err := rt.POP()
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Appranks) != 4 || len(rep.Nodes) != 4 {
		t.Fatalf("want 4 appranks and 4 nodes, got %d/%d", len(rep.Appranks), len(rep.Nodes))
	}
	check := func(name string, pe, lb, commE float64) {
		if math.Abs(pe-lb*commE) > 1e-12 {
			t.Errorf("%s: PE %v != LB %v x CommE %v", name, pe, lb, commE)
		}
		if pe <= 0 || pe > 1+1e-9 || commE <= 0 || commE > 1+1e-9 {
			t.Errorf("%s: implausible PE/CommE %v/%v", name, pe, commE)
		}
	}
	check("appranks", rep.ApprankPOP.PE, rep.ApprankPOP.LB, rep.ApprankPOP.CommE)
	check("nodes", rep.NodePOP.PE, rep.NodePOP.LB, rep.NodePOP.CommE)
	if len(rep.Windows) == 0 {
		t.Fatal("no windows despite POPWindow")
	}
	for _, w := range rep.Windows {
		if w.CommE > 0 && math.Abs(w.PE-w.LB*w.CommE) > 1e-12 {
			t.Errorf("window [%v,%v): PE %v != LB x CommE %v", w.Start, w.End, w.PE, w.LB*w.CommE)
		}
	}
	var tasks, mpiOps int64
	for _, e := range rep.Appranks {
		tasks += e.Tasks
		mpiOps += e.MPIOps
		if e.Capacity <= 0 || e.DeclaredWork <= 0 {
			t.Errorf("apprank %d: capacity %v, declared work %v", e.ID, e.Capacity, e.DeclaredWork)
		}
	}
	if got := rt.TotalTasks(); tasks != got {
		t.Errorf("POP counted %d tasks, runtime ran %d", tasks, got)
	}
	// Each rank enters 8 collectives (4 allreduces + 4 barriers) and 4
	// point-to-point receives per the workload loop.
	if want := int64(4 * (8 + 4)); mpiOps != want {
		t.Errorf("POP counted %d MPI ops, want %d", mpiOps, want)
	}
	// MPI ops must also land on the node breakdown (home attribution).
	var nodeOps int64
	for _, e := range rep.Nodes {
		nodeOps += e.MPIOps
	}
	if nodeOps != mpiOps {
		t.Errorf("node MPI ops %d != apprank MPI ops %d", nodeOps, mpiOps)
	}
}

// TestPOPOffLeavesRunUnchanged pins the opt-in contract: enabling the
// accounting must not change a single scheduling outcome — elapsed time,
// task counts, run stats, and the TALP report all match a POP-off run.
func TestPOPOffLeavesRunUnchanged(t *testing.T) {
	off := runParallelWorkload(t, func(c *Config) { c.POP = false }, 0, false)
	on := runParallelWorkload(t, func(c *Config) { c.POP = true; c.POPWindow = 5 * ms }, 0, false)
	if !reflect.DeepEqual(off, on) {
		t.Errorf("POP accounting perturbed the run:\noff: %+v\non:  %+v", off, on)
	}
}

func TestPOPConfigValidation(t *testing.T) {
	rt := MustNew(Config{Machine: cluster.New(1, 2, cluster.DefaultNet())})
	if _, err := rt.POP(); err == nil {
		t.Error("POP() without Config.POP should error")
	}
	rt = MustNew(Config{Machine: cluster.New(1, 2, cluster.DefaultNet()), POP: true})
	if _, err := rt.POP(); err == nil {
		t.Error("POP() before Run should error")
	}
	if _, err := New(Config{Machine: cluster.New(1, 2, cluster.DefaultNet()), POPWindow: simtime.Duration(5 * ms)}); err == nil {
		t.Error("POPWindow without POP should be rejected")
	}
	if _, err := New(Config{Machine: cluster.New(1, 2, cluster.DefaultNet()), POP: true, POPWindow: -1}); err == nil {
		t.Error("negative POPWindow should be rejected")
	}
}
