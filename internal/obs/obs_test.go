package obs_test

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"ompsscluster/internal/cluster"
	"ompsscluster/internal/core"
	"ompsscluster/internal/nanos"
	"ompsscluster/internal/obs"
	"ompsscluster/internal/simmpi"
	"ompsscluster/internal/simtime"
	"ompsscluster/internal/trace"
)

var update = flag.Bool("update", false, "rewrite golden files")

// tinyRun executes a small, fully deterministic cluster run with both
// recorders attached: two nodes, two appranks, an imbalanced task load,
// point-to-point messages, collectives, and the local DROM policy, so
// every event kind the runtime emits shows up in the stream.
func tinyRun(t testing.TB) (*obs.Recorder, *trace.Recorder) {
	t.Helper()
	ob := obs.NewRecorder(-1)
	tr := trace.NewRecorder()
	m := cluster.New(2, 4, cluster.DefaultNet())
	rt := core.MustNew(core.Config{
		Machine:     m,
		Degree:      2,
		LeWI:        true,
		DROM:        core.DROMLocal,
		LocalPeriod: 20 * simtime.Millisecond,
		Seed:        7,
		Obs:         ob,
		Recorder:    tr,
	})
	err := rt.Run(func(app *core.App) {
		regions := make([]nanos.Region, 8)
		for i := range regions {
			regions[i] = app.Alloc(1 << 16)
		}
		for iter := 0; iter < 3; iter++ {
			n := 8
			if app.Rank() == 0 {
				n = 24
			}
			for k := 0; k < n; k++ {
				app.Submit(core.TaskSpec{
					Label:       "work",
					Work:        4 * simtime.Millisecond,
					Accesses:    []nanos.Access{{Region: regions[k%len(regions)], Mode: nanos.InOut}},
					Offloadable: true,
				})
			}
			app.TaskWait()
			// A point-to-point exchange and a collective per iteration so
			// message post/match/deliver and collective events appear.
			if app.Rank() == 0 {
				app.Comm().Send(1, 3, iter, 4096)
			} else {
				app.Comm().Recv(0, 3)
			}
			app.AllreduceFloat(float64(iter), simmpi.Sum)
			app.Barrier()
		}
	})
	if err != nil {
		t.Fatalf("tiny run failed: %v", err)
	}
	return ob, tr
}

func chromeBytes(t testing.TB, ob *obs.Recorder) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := obs.WriteChrome(&buf, []*obs.Recorder{ob}, []string{"tiny"}); err != nil {
		t.Fatalf("WriteChrome: %v", err)
	}
	return buf.Bytes()
}

// TestChromeGolden pins the exact Chrome trace bytes of the tiny run.
// Refresh with `go test ./internal/obs -run Golden -update` after an
// intentional format or runtime-behaviour change.
func TestChromeGolden(t *testing.T) {
	ob, _ := tinyRun(t)
	got := chromeBytes(t, ob)
	golden := filepath.Join("testdata", "tiny_chrome.json")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("reading golden (run with -update to create): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("Chrome trace differs from golden (%d vs %d bytes); run with -update if intentional",
			len(got), len(want))
	}
}

func TestChromeValid(t *testing.T) {
	ob, _ := tinyRun(t)
	if err := obs.ValidateChrome(chromeBytes(t, ob)); err != nil {
		t.Fatalf("ValidateChrome: %v", err)
	}
}

// TestChromeDeterministic runs the identical simulation twice and
// demands byte-identical exports.
func TestChromeDeterministic(t *testing.T) {
	ob1, _ := tinyRun(t)
	ob2, _ := tinyRun(t)
	if !bytes.Equal(chromeBytes(t, ob1), chromeBytes(t, ob2)) {
		t.Fatal("identical runs produced different Chrome traces")
	}
}

// TestTraceTapAgreement replays the retained event ring through a fresh
// TraceTap and checks the reconstructed busy/owned series match the ones
// the runtime built live — the ring and the tap are views of one stream.
func TestTraceTapAgreement(t *testing.T) {
	ob, tr := tinyRun(t)
	replayed := trace.NewRecorder()
	tap := obs.TraceTap(replayed)
	for _, e := range ob.Events() {
		e := e
		tap(&e)
	}
	for node := 0; node < 2; node++ {
		for a := 0; a < 2; a++ {
			for _, s := range []struct {
				name      string
				live, rep *trace.Series
			}{
				{"busy", tr.Busy(node, a), replayed.Busy(node, a)},
				{"owned", tr.Owned(node, a), replayed.Owned(node, a)},
			} {
				lt, lv := s.live.Samples()
				rt, rv := s.rep.Samples()
				if len(lt) != len(rt) {
					t.Fatalf("%s n%d/a%d: live %d samples, replayed %d", s.name, node, a, len(lt), len(rt))
				}
				for i := range lt {
					if lt[i] != rt[i] || lv[i] != rv[i] {
						t.Fatalf("%s n%d/a%d sample %d: live (%v,%v) replayed (%v,%v)",
							s.name, node, a, i, lt[i], lv[i], rt[i], rv[i])
					}
				}
			}
		}
	}
}

// TestBuildMetricsConsistency checks the replay-derived registry against
// invariants of the event stream itself.
func TestBuildMetricsConsistency(t *testing.T) {
	ob, _ := tinyRun(t)
	m := obs.BuildMetrics(ob)
	execs := ob.Count(obs.KindExecStart)
	if execs == 0 {
		t.Fatal("no exec events recorded")
	}
	if got := m.Counters["events_exec_start"]; got != execs {
		t.Fatalf("events_exec_start %d, Count %d", got, execs)
	}
	if got := m.Histograms["task_exec_seconds"].Count(); got != execs {
		t.Fatalf("task_exec_seconds count %d, execs %d", got, execs)
	}
	if m.Counters["events_dropped"] != 0 {
		t.Fatalf("tiny run dropped %d events", m.Counters["events_dropped"])
	}
	if m.Gauges["trace_end_seconds"] <= 0 {
		t.Fatal("trace_end_seconds not positive")
	}
	if ob.Count(obs.KindMsgPost) == 0 || ob.Count(obs.KindMsgMatch) == 0 {
		t.Fatal("expected point-to-point message events")
	}
	if ob.Count(obs.KindCollective) == 0 {
		t.Fatal("expected collective events")
	}
	if ob.Count(obs.KindOwnSet) == 0 {
		t.Fatal("expected ownership events")
	}
	var buf bytes.Buffer
	if err := m.WriteJSON(&buf); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	if !bytes.HasPrefix(buf.Bytes(), []byte("{")) || !bytes.HasSuffix(buf.Bytes(), []byte("}\n")) {
		t.Fatal("metrics JSON malformed at the edges")
	}
}

// TestRingWrap exercises the bounded ring: a capacity-3 recorder keeps
// the newest three events and counts the overwritten ones.
func TestRingWrap(t *testing.T) {
	r := obs.NewRecorder(3)
	for i := 0; i < 5; i++ {
		r.TaskReady(0, int64(i))
	}
	evs := r.Events()
	if len(evs) != 3 {
		t.Fatalf("retained %d events, want 3", len(evs))
	}
	for i, e := range evs {
		if e.ID != int64(i+2) {
			t.Fatalf("event %d has ID %d, want %d (oldest dropped first)", i, e.ID, i+2)
		}
	}
	if r.Dropped() != 2 {
		t.Fatalf("Dropped %d, want 2", r.Dropped())
	}
	if r.Count(obs.KindTaskReady) != 5 {
		t.Fatalf("Count %d, want 5 (counts survive drops)", r.Count(obs.KindTaskReady))
	}
}

// TestNilRecorderAllocs pins the disabled path: every emitter on a nil
// recorder must be a single branch, never an allocation.
func TestNilRecorderAllocs(t *testing.T) {
	var r *obs.Recorder
	allocs := testing.AllocsPerRun(1000, func() {
		r.TaskCreated(1, 2, "w", 64)
		r.TaskReady(1, 2)
		r.SchedDecision(1, 2, 0, 3, 64, obs.SchedBest)
		r.TaskScheduled(1, 2, 0, 64, 10)
		r.ExecStart(0, 1, 2, 0, false, "w")
		r.ExecEnd(0, 1, 2, 0, "w")
		r.MsgPost(1, 0, 1, 9, 128)
		r.MsgDeliver(1, 0, 1, 9, 128)
		r.MsgMatch(1, 0, 1, 5, 7)
		r.CtlMsg(0, 1, 256)
		r.Collective(1, "allreduce", 3, 8, 2)
		r.OwnershipSet(0, 0, 2, 3)
		r.CoreBorrow(0, 0, 2)
		r.CoreReturn(0, 0, 1)
		r.Imbalance(1.25)
		r.RegisterWorker(0, 0, 1)
		r.BindClock(nil)
		r.AddTap(nil)
	})
	if allocs != 0 {
		t.Fatalf("nil-recorder emit path allocates (%v allocs/run)", allocs)
	}
}
