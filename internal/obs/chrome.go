package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// Chrome Trace Format export: one JSON document loadable in Perfetto
// (https://ui.perfetto.dev) or chrome://tracing. Track layout, per
// recorder i with pid base i*10000:
//
//   - pid base+node        — execution on that node. One thread lane per
//     concurrently running task slot ("core N"), assigned greedily so a
//     lane never holds two overlapping slices; task executions are B/E
//     duration slices. tid 999 is the DLB ownership track (own_set /
//     core_borrow / core_return instants), tid 997 the runtime
//     control-message track, and tid 993 the self-scheduling
//     chunk-server track (chunk-grant instants).
//   - pid base+5000+rank   — per-apprank causality. tid 0: task
//     lifecycle instants (created, ready, scheduled); tid 1: scheduler
//     decisions; tid 2: message events (matched sends as async b/e
//     spans named by tag, deliveries as instants); tid 3: collectives
//     as complete "X" slices spanning entry to exit.
//   - pid base+9000        — sampled gauges as "C" counter events
//     (imbalance).
//
// Timestamps are virtual nanoseconds divided by 1000 (the format wants
// microseconds) with three decimals, so nothing is rounded away.

const (
	chromeApprankPid = 5000
	chromeCounterPid = 9000
	chromeDlbTid     = 999
	chromeCtlTid     = 997
	chromeFaultTid   = 995
	chromeChunkTid   = 993
	pidStride        = 10000
)

// chromeWriter accumulates trace-event JSON objects plus the metadata
// naming their tracks, then writes metadata first so viewers label
// every track.
type chromeWriter struct {
	events []string
	meta   map[string]struct{} // metadata lines, deduped
}

func (cw *chromeWriter) event(line string)    { cw.events = append(cw.events, line) }
func (cw *chromeWriter) metadata(line string) { cw.meta[line] = struct{}{} }
func (cw *chromeWriter) processName(pid int, name string) {
	cw.metadata(fmt.Sprintf(`{"ph":"M","pid":%d,"tid":0,"name":"process_name","args":{"name":%s}}`, pid, strconv.Quote(name)))
}
func (cw *chromeWriter) threadName(pid, tid int, name string) {
	cw.metadata(fmt.Sprintf(`{"ph":"M","pid":%d,"tid":%d,"name":"thread_name","args":{"name":%s}}`, pid, tid, strconv.Quote(name)))
}

// ts renders virtual nanoseconds as microseconds with nanosecond
// precision preserved.
func ts(ns int64) string { return strconv.FormatFloat(float64(ns)/1e3, 'f', 3, 64) }

// laneTable assigns overlapping task executions on one node to stable
// "core" lanes: ExecStart takes the lowest free lane, ExecEnd frees it.
type laneTable struct {
	busy  []bool
	byKey map[int64]int // (apprank<<32|taskID-ish) -> lane
}

func newLaneTable() *laneTable { return &laneTable{byKey: make(map[int64]int)} }

func laneKey(e *Event) int64 { return int64(e.Apprank)<<40 ^ e.ID }

func (lt *laneTable) start(e *Event) int {
	for i, b := range lt.busy {
		if !b {
			lt.busy[i] = true
			lt.byKey[laneKey(e)] = i
			return i
		}
	}
	lt.busy = append(lt.busy, true)
	i := len(lt.busy) - 1
	lt.byKey[laneKey(e)] = i
	return i
}

func (lt *laneTable) end(e *Event) (int, bool) {
	i, ok := lt.byKey[laneKey(e)]
	if !ok {
		return 0, false
	}
	delete(lt.byKey, laneKey(e))
	lt.busy[i] = false
	return i, true
}

// WriteChrome exports the recorders' retained events as one Chrome
// trace. labels (one per recorder, optional) prefix the process names so
// multi-configuration bundles — e.g. fig9's baseline/LeWI/DROM runs —
// stay distinguishable in a single Perfetto view.
func WriteChrome(w io.Writer, recs []*Recorder, labels []string) error {
	cw := &chromeWriter{meta: make(map[string]struct{})}
	for ri, r := range recs {
		if r == nil {
			continue
		}
		label := ""
		if ri < len(labels) {
			label = labels[ri]
		}
		writeRecorder(cw, ri, label, r)
	}
	lines := make([]string, 0, len(cw.meta)+len(cw.events))
	meta := make([]string, 0, len(cw.meta))
	for m := range cw.meta {
		meta = append(meta, m)
	}
	sort.Strings(meta)
	lines = append(lines, meta...)
	lines = append(lines, cw.events...)
	if _, err := io.WriteString(w, "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n"); err != nil {
		return err
	}
	if _, err := io.WriteString(w, strings.Join(lines, ",\n")); err != nil {
		return err
	}
	_, err := io.WriteString(w, "\n]}\n")
	return err
}

func writeRecorder(cw *chromeWriter, ri int, label string, r *Recorder) {
	events := r.Events()
	pidBase := ri * pidStride
	prefix := ""
	if label != "" {
		prefix = label + "/"
	}

	// Prepass: messages that were eventually matched become async spans;
	// unmatched ones stay instants (a span with no end would dangle).
	matched := make(map[int64]bool)
	opened := make(map[int64]bool) // posts whose "b" span was actually emitted
	// Fault episodes mirror the message pattern: an inject becomes an
	// async "b" span only when its recover edge is also retained,
	// otherwise it degrades to an instant so spans never dangle.
	recovered := make(map[int64]bool)
	faultOpened := make(map[int64]bool)
	maxT := int64(0)
	for i := range events {
		e := &events[i]
		if e.Kind == KindMsgMatch {
			matched[e.ID] = true
		}
		if e.Kind == KindFaultRecover {
			recovered[e.ID] = true
		}
		if int64(e.T) > maxT {
			maxT = int64(e.T)
		}
	}

	lanes := make(map[int32]*laneTable)
	lane := func(node int32) *laneTable {
		lt, ok := lanes[node]
		if !ok {
			lt = newLaneTable()
			lanes[node] = lt
		}
		return lt
	}
	nodePid := func(node int32) int { return pidBase + int(node) }
	rankPid := func(rank int32) int { return pidBase + chromeApprankPid + int(rank) }
	// Async-span ids must be unique across recorders sharing the file.
	msgID := func(id int64) string { return fmt.Sprintf("\"%d.%d\"", ri, id) }

	// openStarts tracks (pid, tid) of unterminated B slices so the export
	// can close them at trace end and keep B/E balanced even if a run is
	// cut short mid-task.
	type openSlice struct {
		pid, tid int
		label    string
	}
	open := make(map[int64]openSlice)

	for i := range events {
		e := &events[i]
		t := ts(int64(e.T))
		switch e.Kind {
		case KindExecStart:
			pid := nodePid(e.Node)
			tid := lane(e.Node).start(e)
			cw.processName(pid, fmt.Sprintf("%snode%d", prefix, e.Node))
			cw.threadName(pid, tid, fmt.Sprintf("core %d", tid))
			borrowed := "false"
			if e.B != 0 {
				borrowed = "true"
			}
			name := e.Label
			if name == "" {
				name = fmt.Sprintf("task %d", e.ID)
			}
			cw.event(fmt.Sprintf(`{"ph":"B","pid":%d,"tid":%d,"ts":%s,"name":%s,"cat":"task","args":{"apprank":%d,"task":%d,"worker":%d,"borrowed":%s}}`,
				pid, tid, t, strconv.Quote(name), e.Apprank, e.ID, e.A, borrowed))
			open[int64(pid)<<20|int64(tid)] = openSlice{pid, tid, name}
		case KindExecEnd:
			pid := nodePid(e.Node)
			tid, ok := lane(e.Node).end(e)
			if !ok {
				continue // end without a recorded start (ring wrapped)
			}
			cw.event(fmt.Sprintf(`{"ph":"E","pid":%d,"tid":%d,"ts":%s}`, pid, tid, t))
			delete(open, int64(pid)<<20|int64(tid))
		case KindOwnSet, KindCoreBorrow, KindCoreReturn:
			pid := nodePid(e.Node)
			cw.processName(pid, fmt.Sprintf("%snode%d", prefix, e.Node))
			cw.threadName(pid, chromeDlbTid, "dlb ownership")
			var name, args string
			switch e.Kind {
			case KindOwnSet:
				name = fmt.Sprintf("own core%d: %d->%d", e.A, e.B, e.C)
				args = fmt.Sprintf(`{"apprank":%d,"worker":%d,"old_owned":%d,"new_owned":%d}`, e.Apprank, e.A, e.B, e.C)
			case KindCoreBorrow:
				name = fmt.Sprintf("borrow core%d", e.A)
				args = fmt.Sprintf(`{"apprank":%d,"worker":%d,"running":%d}`, e.Apprank, e.A, e.B)
			default:
				name = fmt.Sprintf("return core%d", e.A)
				args = fmt.Sprintf(`{"apprank":%d,"worker":%d,"running":%d}`, e.Apprank, e.A, e.B)
			}
			cw.event(fmt.Sprintf(`{"ph":"i","pid":%d,"tid":%d,"ts":%s,"s":"t","name":%s,"cat":"dlb","args":%s}`,
				pid, chromeDlbTid, t, strconv.Quote(name), args))
		case KindTaskCreated, KindTaskReady, KindTaskScheduled:
			pid := rankPid(e.Apprank)
			cw.processName(pid, fmt.Sprintf("%sapprank%d", prefix, e.Apprank))
			cw.threadName(pid, 0, "task lifecycle")
			var name, args string
			switch e.Kind {
			case KindTaskCreated:
				name = fmt.Sprintf("created %d", e.ID)
				args = fmt.Sprintf(`{"task":%d,"access_bytes":%d}`, e.ID, e.A)
			case KindTaskReady:
				name = fmt.Sprintf("ready %d", e.ID)
				args = fmt.Sprintf(`{"task":%d}`, e.ID)
			default:
				name = fmt.Sprintf("scheduled %d -> node%d", e.ID, e.Node)
				args = fmt.Sprintf(`{"task":%d,"node":%d,"moved_bytes":%d,"transfer_ns":%d}`, e.ID, e.Node, e.A, e.B)
			}
			cw.event(fmt.Sprintf(`{"ph":"i","pid":%d,"tid":0,"ts":%s,"s":"t","name":%s,"cat":"lifecycle","args":%s}`,
				pid, t, strconv.Quote(name), args))
		case KindSchedDecision:
			pid := rankPid(e.Apprank)
			cw.processName(pid, fmt.Sprintf("%sapprank%d", prefix, e.Apprank))
			cw.threadName(pid, 1, "scheduler")
			outcome := [...]string{"best", "alt", "queued"}[e.D]
			cw.event(fmt.Sprintf(`{"ph":"i","pid":%d,"tid":1,"ts":%s,"s":"t","name":%s,"cat":"sched","args":{"task":%d,"winner_node":%d,"candidates":%d,"local_bytes":%d,"outcome":%s}}`,
				pid, t, strconv.Quote("sched "+outcome), e.ID, e.A, e.B, e.C, strconv.Quote(outcome)))
		case KindMsgPost:
			pid := rankPid(int32(e.B))
			cw.processName(pid, fmt.Sprintf("%sapprank%d", prefix, e.B))
			cw.threadName(pid, 2, "messages")
			if matched[e.ID] {
				opened[e.ID] = true
				cw.event(fmt.Sprintf(`{"ph":"b","pid":%d,"tid":2,"ts":%s,"cat":"msg","id":%s,"name":%s,"args":{"src":%d,"dst":%d,"tag":%d,"bytes":%d}}`,
					pid, t, msgID(e.ID), strconv.Quote(fmt.Sprintf("msg tag%d", e.C)), e.A, e.B, e.C, e.D))
			} else {
				cw.event(fmt.Sprintf(`{"ph":"i","pid":%d,"tid":2,"ts":%s,"s":"t","name":%s,"cat":"msg","args":{"src":%d,"dst":%d,"tag":%d,"bytes":%d}}`,
					pid, t, strconv.Quote(fmt.Sprintf("post tag%d", e.C)), e.A, e.B, e.C, e.D))
			}
		case KindMsgDeliver:
			pid := rankPid(int32(e.B))
			cw.processName(pid, fmt.Sprintf("%sapprank%d", prefix, e.B))
			cw.threadName(pid, 2, "messages")
			cw.event(fmt.Sprintf(`{"ph":"i","pid":%d,"tid":2,"ts":%s,"s":"t","name":%s,"cat":"msg","args":{"src":%d,"dst":%d,"tag":%d,"bytes":%d}}`,
				pid, t, strconv.Quote(fmt.Sprintf("deliver tag%d", e.C)), e.A, e.B, e.C, e.D))
		case KindMsgMatch:
			if !opened[e.ID] {
				continue // the post fell off the ring; no span to close
			}
			pid := rankPid(int32(e.B))
			cw.event(fmt.Sprintf(`{"ph":"e","pid":%d,"tid":2,"ts":%s,"cat":"msg","id":%s,"args":{"queue_wait_ns":%d,"inflight_ns":%d}}`,
				pid, t, msgID(e.ID), e.C, e.D))
		case KindCtlMsg:
			pid := nodePid(e.Node)
			cw.processName(pid, fmt.Sprintf("%snode%d", prefix, e.Node))
			cw.threadName(pid, chromeCtlTid, "ctl messages")
			cw.event(fmt.Sprintf(`{"ph":"i","pid":%d,"tid":%d,"ts":%s,"s":"t","name":"ctl","cat":"msg","args":{"from_node":%d,"to_node":%d,"bytes":%d}}`,
				pid, chromeCtlTid, t, e.A, e.B, e.C))
		case KindCollective:
			pid := rankPid(e.Apprank)
			cw.processName(pid, fmt.Sprintf("%sapprank%d", prefix, e.Apprank))
			cw.threadName(pid, 3, "collectives")
			dur := int64(e.T) - e.A
			if dur < 0 {
				dur = 0
			}
			cw.event(fmt.Sprintf(`{"ph":"X","pid":%d,"tid":3,"ts":%s,"dur":%s,"name":%s,"cat":"coll","args":{"bytes":%d,"ranks":%d}}`,
				pid, ts(e.A), ts(dur), strconv.Quote(e.Label), e.B, e.C))
		case KindFaultInject, KindFaultRecover:
			// Node-scoped faults land on the node's "faults" track;
			// apprank-scoped ones (stall) on the apprank's.
			var pid, tid int
			if e.Node >= 0 {
				pid, tid = nodePid(e.Node), chromeFaultTid
				cw.processName(pid, fmt.Sprintf("%snode%d", prefix, e.Node))
			} else {
				pid, tid = rankPid(e.Apprank), 4
				cw.processName(pid, fmt.Sprintf("%sapprank%d", prefix, e.Apprank))
			}
			cw.threadName(pid, tid, "faults")
			fid := fmt.Sprintf("\"f%d.%d\"", ri, e.ID)
			if e.Kind == KindFaultRecover {
				if !faultOpened[e.ID] {
					continue // the inject fell off the ring; no span to close
				}
				cw.event(fmt.Sprintf(`{"ph":"e","pid":%d,"tid":%d,"ts":%s,"cat":"fault","id":%s,"args":{}}`,
					pid, tid, t, fid))
				continue
			}
			args := fmt.Sprintf(`{"kind":%s,"plan_event":%d,"until_ns":%d,"b":%d,"c":%d}`,
				strconv.Quote(e.Label), e.ID, e.A, e.B, e.C)
			if recovered[e.ID] {
				faultOpened[e.ID] = true
				cw.event(fmt.Sprintf(`{"ph":"b","pid":%d,"tid":%d,"ts":%s,"cat":"fault","id":%s,"name":%s,"args":%s}`,
					pid, tid, t, fid, strconv.Quote("fault "+e.Label), args))
			} else {
				cw.event(fmt.Sprintf(`{"ph":"i","pid":%d,"tid":%d,"ts":%s,"s":"t","name":%s,"cat":"fault","args":%s}`,
					pid, tid, t, strconv.Quote("fault "+e.Label), args))
			}
		case KindReoffload:
			pid := rankPid(e.Apprank)
			cw.processName(pid, fmt.Sprintf("%sapprank%d", prefix, e.Apprank))
			cw.threadName(pid, 1, "scheduler")
			cw.event(fmt.Sprintf(`{"ph":"i","pid":%d,"tid":1,"ts":%s,"s":"t","name":%s,"cat":"sched","args":{"task":%d,"old_node":%d,"new_node":%d,"attempt":%d,"local":%d}}`,
				pid, t, strconv.Quote(fmt.Sprintf("reoffload %d", e.ID)), e.ID, e.A, e.Node, e.B, e.C))
		case KindMsgDrop:
			pid := rankPid(int32(e.B))
			cw.processName(pid, fmt.Sprintf("%sapprank%d", prefix, e.B))
			cw.threadName(pid, 2, "messages")
			cw.event(fmt.Sprintf(`{"ph":"i","pid":%d,"tid":2,"ts":%s,"s":"t","name":%s,"cat":"msg","args":{"src":%d,"dst":%d,"attempt":%d}}`,
				pid, t, strconv.Quote("drop"), e.A, e.B, e.C))
		case KindChunkGrant:
			pid := nodePid(e.Node)
			cw.processName(pid, fmt.Sprintf("%snode%d", prefix, e.Node))
			cw.threadName(pid, chromeChunkTid, "chunk server")
			cw.event(fmt.Sprintf(`{"ph":"i","pid":%d,"tid":%d,"ts":%s,"s":"t","name":%s,"cat":"sched","args":{"apprank":%d,"worker":%d,"tasks":%d,"remaining":%d}}`,
				pid, chromeChunkTid, t, strconv.Quote(fmt.Sprintf("chunk %d", e.B)), e.Apprank, e.A, e.B, e.C))
		case KindImbalance:
			pid := pidBase + chromeCounterPid
			cw.processName(pid, prefix+"metrics")
			cw.event(fmt.Sprintf(`{"ph":"C","pid":%d,"tid":0,"ts":%s,"name":"imbalance","args":{"imbalance":%g}}`,
				pid, t, e.ImbalanceValue()))
		case KindPOPWindow:
			// Windowed POP series: one counter track per node in the
			// metrics process (tid 1+node keeps each node's samples
			// time-ordered within its own track; the events are stamped
			// with their window start, not the end-of-run emit time).
			pid := pidBase + chromeCounterPid
			cw.processName(pid, prefix+"metrics")
			cw.event(fmt.Sprintf(`{"ph":"C","pid":%d,"tid":%d,"ts":%s,"name":"PE node%d","args":{"pe":%g}}`,
				pid, 1+int(e.Node), t, e.Node, e.POPValue()))
		}
	}

	// Close any slice still open at trace end so B/E stay balanced.
	closes := make([]openSlice, 0, len(open))
	for _, s := range open {
		closes = append(closes, s)
	}
	sort.Slice(closes, func(i, j int) bool {
		if closes[i].pid != closes[j].pid {
			return closes[i].pid < closes[j].pid
		}
		return closes[i].tid < closes[j].tid
	})
	for _, s := range closes {
		cw.event(fmt.Sprintf(`{"ph":"E","pid":%d,"tid":%d,"ts":%s}`, s.pid, s.tid, ts(maxT)))
	}
}

// chromeEvent is the subset of fields ValidateChrome inspects.
type chromeEvent struct {
	Ph   string  `json:"ph"`
	Pid  int     `json:"pid"`
	Tid  int     `json:"tid"`
	Ts   float64 `json:"ts"`
	Dur  float64 `json:"dur"`
	Cat  string  `json:"cat"`
	ID   string  `json:"id"`
	Name string  `json:"name"`
}

// ValidateChrome checks structural invariants of a Chrome trace produced
// by WriteChrome: every event has a known phase, timestamps are
// non-decreasing within each (pid, tid) track, B/E duration slices are
// balanced per track, and async b/e spans are balanced per (cat, id).
func ValidateChrome(data []byte) error {
	var doc struct {
		TraceEvents []chromeEvent `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		return fmt.Errorf("chrome trace: not valid JSON: %w", err)
	}
	if len(doc.TraceEvents) == 0 {
		return fmt.Errorf("chrome trace: no events")
	}
	type track struct{ pid, tid int }
	lastTs := make(map[track]float64)
	depth := make(map[track]int)
	asyncOpen := make(map[string]int)
	for i, e := range doc.TraceEvents {
		switch e.Ph {
		case "M":
			continue
		case "B", "E", "X", "i", "b", "e", "C":
		default:
			return fmt.Errorf("chrome trace: event %d: unknown phase %q", i, e.Ph)
		}
		k := track{e.Pid, e.Tid}
		if last, ok := lastTs[k]; ok && e.Ts < last {
			return fmt.Errorf("chrome trace: event %d: ts %v before %v on pid=%d tid=%d",
				i, e.Ts, last, e.Pid, e.Tid)
		}
		lastTs[k] = e.Ts
		switch e.Ph {
		case "B":
			depth[k]++
		case "E":
			depth[k]--
			if depth[k] < 0 {
				return fmt.Errorf("chrome trace: event %d: E without B on pid=%d tid=%d", i, e.Pid, e.Tid)
			}
		case "b":
			asyncOpen[e.Cat+"/"+e.ID]++
		case "e":
			key := e.Cat + "/" + e.ID
			asyncOpen[key]--
			if asyncOpen[key] < 0 {
				return fmt.Errorf("chrome trace: event %d: async e without b for %s", i, key)
			}
		case "X":
			if e.Dur < 0 {
				return fmt.Errorf("chrome trace: event %d: negative duration %v", i, e.Dur)
			}
		}
	}
	for k, d := range depth {
		if d != 0 {
			return fmt.Errorf("chrome trace: unbalanced B/E (depth %d) on pid=%d tid=%d", d, k.pid, k.tid)
		}
	}
	for id, d := range asyncOpen {
		if d != 0 {
			return fmt.Errorf("chrome trace: unbalanced async span %s (depth %d)", id, d)
		}
	}
	return nil
}
