package obs

import (
	"ompsscluster/internal/trace"
)

// TraceTap returns a tap that reconstructs the legacy trace.Recorder
// busy/owned step series from the structured event stream. The core
// runtime used to write those series directly from the worker start /
// complete and arbiter SetOwned paths; routing them through the tap
// instead guarantees the Paraver/CSV exports and the structured
// exporters are views of the same events and can never disagree.
//
// Equivalence contract: each (node, apprank) hosts exactly one worker,
// so a running-task count maintained from ExecStart/ExecEnd equals the
// worker's running counter at the same emit sites, and OwnershipSet's
// new-owned payload equals what recordOwned used to write. Emits happen
// at the same virtual times and in the same order as the old direct
// calls, so the resulting series — and the figure CSVs derived from
// them — are byte-identical.
func TraceTap(tr *trace.Recorder) func(*Event) {
	running := make(map[trace.Key]float64)
	return func(e *Event) {
		switch e.Kind {
		case KindExecStart:
			k := trace.Key{Node: int(e.Node), Apprank: int(e.Apprank)}
			running[k]++
			tr.RecordBusy(e.T, k.Node, k.Apprank, running[k])
		case KindExecEnd:
			k := trace.Key{Node: int(e.Node), Apprank: int(e.Apprank)}
			running[k]--
			tr.RecordBusy(e.T, k.Node, k.Apprank, running[k])
		case KindOwnSet:
			if e.Apprank >= 0 {
				tr.RecordOwned(e.T, int(e.Node), int(e.Apprank), float64(e.C))
			}
		}
	}
}
