package obs

import (
	"fmt"
	"io"
	"sort"
	"strconv"

	"ompsscluster/internal/metrics"
	"ompsscluster/internal/simtime"
)

// Metrics is the aggregate view of one (or several merged) event
// streams: monotonic counters, last-value gauges, and fixed-bucket
// latency/size histograms, all derived by replaying retained events.
type Metrics struct {
	Counters   map[string]uint64
	Gauges     map[string]float64
	Histograms map[string]*metrics.Histogram
}

// Histogram bucket ladders. Durations are in seconds (virtual), sizes in
// bytes; ladders are fixed so registries from different runs merge.
func newMetrics() *Metrics {
	secs := func() *metrics.Histogram { return metrics.NewHistogram(metrics.ExpBuckets(1e-6, 2, 24)) }
	return &Metrics{
		Counters: make(map[string]uint64),
		Gauges:   make(map[string]float64),
		Histograms: map[string]*metrics.Histogram{
			"task_exec_seconds":       secs(),
			"task_ready_wait_seconds": secs(),
			"msg_queue_wait_seconds":  secs(),
			"msg_inflight_seconds":    secs(),
			"collective_seconds":      secs(),
			"transfer_bytes":          metrics.NewHistogram(metrics.ExpBuckets(64, 4, 16)),
			"msg_bytes":               metrics.NewHistogram(metrics.ExpBuckets(64, 4, 16)),
			"sched_candidates":        metrics.NewHistogram(metrics.LinearBuckets(1, 1, 16)),
			"chunk_size_tasks":        metrics.NewHistogram(metrics.ExpBuckets(1, 2, 16)),
			"imbalance":               metrics.NewHistogram(metrics.LinearBuckets(1, 0.25, 20)),
		},
	}
}

// BuildMetrics replays r's retained events into a fresh registry.
// Events dropped from the ring are reported in the events_dropped
// counter; lifecycle pairs whose opening half was dropped are skipped.
func BuildMetrics(r *Recorder) *Metrics {
	m := newMetrics()
	if r == nil {
		return m
	}
	type taskKey struct {
		apprank int32
		id      int64
	}
	readyAt := make(map[taskKey]int64)
	startAt := make(map[taskKey]int64)
	for _, e := range r.Events() {
		m.Counters["events_"+e.Kind.String()]++
		switch e.Kind {
		case KindTaskReady:
			readyAt[taskKey{e.Apprank, e.ID}] = int64(e.T)
		case KindTaskScheduled:
			m.Counters["transfer_bytes_total"] += uint64(e.A)
			if e.A > 0 {
				m.Histograms["transfer_bytes"].Observe(float64(e.A))
			}
		case KindSchedDecision:
			m.Histograms["sched_candidates"].Observe(float64(e.B))
			switch e.D {
			case SchedBest:
				m.Counters["sched_locality_best"]++
			case SchedAlt:
				m.Counters["sched_locality_alt"]++
			case SchedQueued:
				m.Counters["sched_queued"]++
			}
		case KindExecStart:
			k := taskKey{e.Apprank, e.ID}
			startAt[k] = int64(e.T)
			if readyT, ok := readyAt[k]; ok {
				m.Histograms["task_ready_wait_seconds"].Observe(float64(int64(e.T)-readyT) / 1e9)
				delete(readyAt, k)
			}
			if e.B != 0 {
				m.Counters["exec_on_borrowed_core"]++
			}
		case KindExecEnd:
			k := taskKey{e.Apprank, e.ID}
			if startT, ok := startAt[k]; ok {
				m.Histograms["task_exec_seconds"].Observe(float64(int64(e.T)-startT) / 1e9)
				delete(startAt, k)
			}
		case KindMsgPost:
			m.Counters["msg_bytes_total"] += uint64(e.D)
			if e.D > 0 {
				m.Histograms["msg_bytes"].Observe(float64(e.D))
			}
		case KindMsgMatch:
			m.Histograms["msg_queue_wait_seconds"].Observe(float64(e.C) / 1e9)
			m.Histograms["msg_inflight_seconds"].Observe(float64(e.D) / 1e9)
		case KindCtlMsg:
			m.Counters["ctl_bytes_total"] += uint64(e.C)
		case KindCollective:
			m.Histograms["collective_seconds"].Observe(float64(int64(e.T)-e.A) / 1e9)
		case KindOwnSet:
			if e.B != e.C {
				m.Counters["ownership_changes"]++
			}
		case KindCoreBorrow:
			m.Counters["core_borrows"]++
		case KindCoreReturn:
			m.Counters["core_returns"]++
		case KindFaultInject:
			m.Counters["faults_injected"]++
		case KindFaultRecover:
			m.Counters["faults_recovered"]++
		case KindReoffload:
			m.Counters["reoffloads"]++
			if e.C != 0 {
				m.Counters["reoffload_local_fallbacks"]++
			}
		case KindMsgDrop:
			m.Counters["msg_drops"]++
		case KindChunkGrant:
			m.Counters["chunk_grants"]++
			m.Counters["chunk_tasks_granted"] += uint64(e.B)
			m.Histograms["chunk_size_tasks"].Observe(float64(e.B))
		case KindImbalance:
			v := e.ImbalanceValue()
			m.Histograms["imbalance"].Observe(v)
			m.Gauges["imbalance_last"] = v
		}
	}
	m.Counters["events_dropped"] = r.Dropped()
	m.Gauges["trace_end_seconds"] = lastTime(r).Seconds()
	return m
}

func lastTime(r *Recorder) (t simtime.Time) {
	for _, e := range r.Events() {
		if e.T > t {
			t = e.T
		}
	}
	return t
}

// Merge folds o into m: counters add, gauges take o's value (last run
// wins), histograms merge bucket-wise.
func (m *Metrics) Merge(o *Metrics) error {
	for k, v := range o.Counters {
		m.Counters[k] += v
	}
	for k, v := range o.Gauges {
		m.Gauges[k] = v
	}
	for k, h := range o.Histograms {
		mine, ok := m.Histograms[k]
		if !ok {
			m.Histograms[k] = h
			continue
		}
		if err := mine.Merge(h); err != nil {
			return fmt.Errorf("metric %s: %w", k, err)
		}
	}
	return nil
}

// WriteJSON serialises the registry deterministically: map keys sorted,
// histograms rendered with bounds, bucket counts, and summary stats
// including interpolated p50/p90/p99.
func (m *Metrics) WriteJSON(w io.Writer) error {
	var b []byte
	b = append(b, "{\n  \"counters\": {"...)
	b = appendSortedU64(b, m.Counters)
	b = append(b, "},\n  \"gauges\": {"...)
	b = appendSortedF64(b, m.Gauges)
	b = append(b, "},\n  \"histograms\": {"...)
	names := make([]string, 0, len(m.Histograms))
	for k := range m.Histograms {
		names = append(names, k)
	}
	sort.Strings(names)
	for i, name := range names {
		if i > 0 {
			b = append(b, ',')
		}
		h := m.Histograms[name]
		b = append(b, "\n    "...)
		b = strconv.AppendQuote(b, name)
		b = append(b, ": {\"count\": "...)
		b = strconv.AppendUint(b, h.Count(), 10)
		b = appendF64Field(b, "sum", h.Sum())
		b = appendF64Field(b, "min", h.Min())
		b = appendF64Field(b, "max", h.Max())
		b = appendF64Field(b, "mean", h.Mean())
		b = appendF64Field(b, "p50", h.Quantile(0.5))
		b = appendF64Field(b, "p90", h.Quantile(0.9))
		b = appendF64Field(b, "p99", h.Quantile(0.99))
		b = append(b, ", \"bounds\": ["...)
		for j, v := range h.Bounds() {
			if j > 0 {
				b = append(b, ',')
			}
			b = appendF64(b, v)
		}
		b = append(b, "], \"buckets\": ["...)
		for j, c := range h.BucketCounts() {
			if j > 0 {
				b = append(b, ',')
			}
			b = strconv.AppendUint(b, c, 10)
		}
		b = append(b, "]}"...)
	}
	if len(names) > 0 {
		b = append(b, "\n  "...)
	}
	b = append(b, "}\n}\n"...)
	_, err := w.Write(b)
	return err
}

func appendSortedU64(b []byte, m map[string]uint64) []byte {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for i, k := range keys {
		if i > 0 {
			b = append(b, ',')
		}
		b = append(b, "\n    "...)
		b = strconv.AppendQuote(b, k)
		b = append(b, ": "...)
		b = strconv.AppendUint(b, m[k], 10)
	}
	if len(keys) > 0 {
		b = append(b, "\n  "...)
	}
	return b
}

func appendSortedF64(b []byte, m map[string]float64) []byte {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for i, k := range keys {
		if i > 0 {
			b = append(b, ',')
		}
		b = append(b, "\n    "...)
		b = strconv.AppendQuote(b, k)
		b = append(b, ": "...)
		b = appendF64(b, m[k])
	}
	if len(keys) > 0 {
		b = append(b, "\n  "...)
	}
	return b
}

func appendF64Field(b []byte, name string, v float64) []byte {
	b = append(b, ", \""...)
	b = append(b, name...)
	b = append(b, "\": "...)
	return appendF64(b, v)
}

func appendF64(b []byte, v float64) []byte {
	return strconv.AppendFloat(b, v, 'g', 12, 64)
}
