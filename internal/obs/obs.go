// Package obs is the runtime-wide structured observability layer: a
// typed, ring-buffered event recorder stamped with virtual time. The
// simulated runtime (task graph, scheduler, workers, simmpi, DLB
// arbiter) emits flat events describing the causal lifecycle of tasks
// (created → ready → scheduled → exec start/end), messages (post →
// match → deliver), DLB core ownership (set/borrow/return), and
// scheduler decisions.
//
// The recorder is passive: emitting never schedules simulation events,
// so enabling it cannot perturb virtual time. Every emit method is safe
// on a nil *Recorder and returns immediately, so the disabled path costs
// one predicted branch and zero allocations — hot loops keep their
// allocation pins from earlier optimisation passes.
//
// Consumers attach taps (live per-event callbacks, e.g. TraceTap feeding
// the legacy trace.Recorder) or read the retained ring afterwards for
// export (Chrome trace JSON via WriteChrome, aggregate metrics via
// BuildMetrics).
package obs

import (
	"math"

	"ompsscluster/internal/simtime"
)

// Kind discriminates event types.
type Kind uint8

// Event kinds. The integer payload fields A..D are interpreted per kind;
// see the emitter methods for each kind's field layout.
const (
	KindInvalid Kind = iota
	KindTaskCreated
	KindTaskReady
	KindSchedDecision
	KindTaskScheduled
	KindExecStart
	KindExecEnd
	KindMsgPost
	KindMsgMatch
	KindMsgDeliver
	KindCtlMsg
	KindCollective
	KindOwnSet
	KindCoreBorrow
	KindCoreReturn
	KindImbalance
	KindFaultInject
	KindFaultRecover
	KindReoffload
	KindMsgDrop
	KindChunkGrant
	KindPOPWindow
	numKinds
)

var kindNames = [numKinds]string{
	KindInvalid:       "invalid",
	KindTaskCreated:   "task_created",
	KindTaskReady:     "task_ready",
	KindSchedDecision: "sched_decision",
	KindTaskScheduled: "task_scheduled",
	KindExecStart:     "exec_start",
	KindExecEnd:       "exec_end",
	KindMsgPost:       "msg_post",
	KindMsgMatch:      "msg_match",
	KindMsgDeliver:    "msg_deliver",
	KindCtlMsg:        "ctl_msg",
	KindCollective:    "collective",
	KindOwnSet:        "own_set",
	KindCoreBorrow:    "core_borrow",
	KindCoreReturn:    "core_return",
	KindImbalance:     "imbalance",
	KindFaultInject:   "fault_inject",
	KindFaultRecover:  "fault_recover",
	KindReoffload:     "reoffload",
	KindMsgDrop:       "msg_drop",
	KindChunkGrant:    "chunk_grant",
	KindPOPWindow:     "pop_window",
}

func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return "unknown"
}

// Scheduling outcomes carried in SchedDecision's D field.
const (
	SchedBest   = 0 // assigned to the locality-best node immediately
	SchedAlt    = 1 // locality-best busy; assigned to an alternative node
	SchedQueued = 2 // no free slot; parked on the central queue
)

// Event is one observation. It is a flat value struct: emitting into the
// ring copies it without touching the heap. Node/Apprank are -1 when the
// dimension does not apply; ID is the task or message identity; A..D are
// per-kind integer payloads and Label an optional task/collective name.
type Event struct {
	T       simtime.Time
	Kind    Kind
	Node    int32
	Apprank int32
	ID      int64
	A       int64
	B       int64
	C       int64
	D       int64
	Label   string
}

// DefaultCapacity is the ring size used when NewRecorder is given a
// negative capacity: ~1M events, comfortably above a quick- or
// default-scale figure run, without preallocating (the buffer grows on
// demand and only wraps once the cap is reached).
const DefaultCapacity = 1 << 20

// Recorder collects events. Construct with NewRecorder; a nil *Recorder
// is a valid, free-to-call disabled recorder. Recorders are not
// concurrency-safe — the simulator is single-threaded per run, and each
// run owns its recorder.
type Recorder struct {
	clock   func() simtime.Time
	cap     int
	buf     []Event // grows by append to cap, then wraps (ring)
	next    int     // next overwrite position once len(buf) == cap
	wrapped bool
	dropped uint64 // events overwritten after the ring wrapped
	taps    []func(*Event)
	workers map[int64]int32 // node<<32|worker -> apprank, for dlb emits
	counts  [numKinds]uint64
}

// NewRecorder returns a recorder retaining up to capacity events.
// capacity 0 keeps nothing (tap-only mode: the trace.Recorder bridge
// without ring memory); negative capacity selects DefaultCapacity.
func NewRecorder(capacity int) *Recorder {
	if capacity < 0 {
		capacity = DefaultCapacity
	}
	return &Recorder{
		cap:     capacity,
		workers: make(map[int64]int32),
	}
}

// BindClock sets the virtual-time source, normally env.Now of the run's
// simtime.Env. Events emitted with no clock bound are stamped 0.
func (r *Recorder) BindClock(now func() simtime.Time) {
	if r == nil {
		return
	}
	r.clock = now
}

// AddTap registers fn to be called synchronously for every event, in
// registration order, before the event is retained. The *Event is only
// valid for the duration of the call.
func (r *Recorder) AddTap(fn func(*Event)) {
	if r == nil {
		return
	}
	r.taps = append(r.taps, fn)
}

// RegisterWorker maps (node, worker slot) to an apprank so DLB-level
// emits — which see only node-local core indices — can be attributed.
func (r *Recorder) RegisterWorker(node, worker, apprank int) {
	if r == nil {
		return
	}
	r.workers[int64(node)<<32|int64(worker)] = int32(apprank)
}

func (r *Recorder) workerApprank(node, worker int) int32 {
	if a, ok := r.workers[int64(node)<<32|int64(worker)]; ok {
		return a
	}
	return -1
}

func (r *Recorder) now() simtime.Time {
	if r.clock == nil {
		return 0
	}
	return r.clock()
}

// emit stamps, taps, and retains e. Split so every typed emitter is a
// thin wrapper and the nil check stays at the top of each.
func (r *Recorder) emit(e Event) {
	e.T = r.now()
	r.emitStamped(e)
}

// emitStamped taps and retains e with its caller-set timestamp. The POP
// window series is computed and emitted after the run ends, so its
// events carry their window times rather than the end-of-run clock.
func (r *Recorder) emitStamped(e Event) {
	r.counts[e.Kind]++
	for _, tap := range r.taps {
		tap(&e)
	}
	if r.cap == 0 {
		return
	}
	if len(r.buf) < r.cap {
		r.buf = append(r.buf, e)
		return
	}
	r.buf[r.next] = e
	r.next++
	if r.next == r.cap {
		r.next = 0
	}
	r.wrapped = true
	r.dropped++
}

// Events returns the retained events in chronological order (a copy).
func (r *Recorder) Events() []Event {
	if r == nil || len(r.buf) == 0 {
		return nil
	}
	out := make([]Event, 0, len(r.buf))
	if r.wrapped {
		out = append(out, r.buf[r.next:]...)
	}
	out = append(out, r.buf[:r.next]...)
	if !r.wrapped {
		out = append(out, r.buf[r.next:]...)
	}
	return out
}

// Dropped reports how many events were overwritten after the ring
// wrapped. Nonzero means exports are missing the oldest events.
func (r *Recorder) Dropped() uint64 {
	if r == nil {
		return 0
	}
	return r.dropped
}

// Count returns how many events of kind k were emitted (including any
// later dropped from the ring).
func (r *Recorder) Count(k Kind) uint64 {
	if r == nil || k >= numKinds {
		return 0
	}
	return r.counts[k]
}

// --- Task lifecycle -------------------------------------------------

// TaskCreated records task submission. A = total access bytes.
func (r *Recorder) TaskCreated(apprank int, id int64, label string, accessBytes int64) {
	if r == nil {
		return
	}
	r.emit(Event{Kind: KindTaskCreated, Node: -1, Apprank: int32(apprank), ID: id, A: accessBytes, Label: label})
}

// TaskReady records all dependencies of a task being satisfied.
func (r *Recorder) TaskReady(apprank int, id int64) {
	if r == nil {
		return
	}
	r.emit(Event{Kind: KindTaskReady, Node: -1, Apprank: int32(apprank), ID: id})
}

// SchedDecision records the scheduler's placement choice for a ready
// task. A = locality-winner node, B = candidate set size (nodes with a
// free slot), C = bytes already local at the winner, D = outcome
// (SchedBest, SchedAlt, SchedQueued).
func (r *Recorder) SchedDecision(apprank int, id int64, winner, candidates int, winnerBytes int64, outcome int) {
	if r == nil {
		return
	}
	r.emit(Event{Kind: KindSchedDecision, Node: -1, Apprank: int32(apprank), ID: id,
		A: int64(winner), B: int64(candidates), C: winnerBytes, D: int64(outcome)})
}

// TaskScheduled records the commit of a task to a node. A = bytes moved
// to satisfy locality, B = modelled transfer delay in virtual ns.
func (r *Recorder) TaskScheduled(apprank int, id int64, node int, movedBytes int64, delay simtime.Duration) {
	if r == nil {
		return
	}
	r.emit(Event{Kind: KindTaskScheduled, Node: int32(node), Apprank: int32(apprank), ID: id,
		A: movedBytes, B: int64(delay)})
}

// ExecStart records a task starting on a worker core. A = worker slot on
// the node, B = 1 if the core is borrowed (running beyond owned), 0 if
// owned.
func (r *Recorder) ExecStart(node, apprank int, id int64, worker int, borrowed bool, label string) {
	if r == nil {
		return
	}
	b := int64(0)
	if borrowed {
		b = 1
	}
	r.emit(Event{Kind: KindExecStart, Node: int32(node), Apprank: int32(apprank), ID: id,
		A: int64(worker), B: b, Label: label})
}

// ExecEnd records a task finishing. Fields mirror ExecStart.
func (r *Recorder) ExecEnd(node, apprank int, id int64, worker int, label string) {
	if r == nil {
		return
	}
	r.emit(Event{Kind: KindExecEnd, Node: int32(node), Apprank: int32(apprank), ID: id,
		A: int64(worker), Label: label})
}

// --- Messages -------------------------------------------------------

// MsgPost records a point-to-point send entering the network. src/dst
// are global apprank ids, A = src, B = dst, C = tag, D = size bytes.
func (r *Recorder) MsgPost(id int64, src, dst, tag int, size int64) {
	if r == nil {
		return
	}
	r.emit(Event{Kind: KindMsgPost, Node: -1, Apprank: int32(dst), ID: id,
		A: int64(src), B: int64(dst), C: int64(tag), D: size})
}

// MsgDeliver records a message arriving at the destination mailbox.
// Fields mirror MsgPost; C = tag, D = size.
func (r *Recorder) MsgDeliver(id int64, src, dst, tag int, size int64) {
	if r == nil {
		return
	}
	r.emit(Event{Kind: KindMsgDeliver, Node: -1, Apprank: int32(dst), ID: id,
		A: int64(src), B: int64(dst), C: int64(tag), D: size})
}

// MsgMatch records a receiver consuming a message. A = src, B = dst,
// C = queue wait (arrival → match, virtual ns; 0 when a receiver was
// already blocked), D = total in-flight latency (post → match, ns).
func (r *Recorder) MsgMatch(id int64, src, dst int, queueWait, inflight simtime.Duration) {
	if r == nil {
		return
	}
	r.emit(Event{Kind: KindMsgMatch, Node: -1, Apprank: int32(dst), ID: id,
		A: int64(src), B: int64(dst), C: int64(queueWait), D: int64(inflight)})
}

// CtlMsg records a runtime control message between nodes (offload
// commands and completion notifications travel outside simmpi).
// A = source node, B = destination node, C = size bytes; Node is the
// destination.
func (r *Recorder) CtlMsg(fromNode, toNode int, size int64) {
	if r == nil {
		return
	}
	r.emit(Event{Kind: KindCtlMsg, Node: int32(toNode), Apprank: -1, ID: -1,
		A: int64(fromNode), B: int64(toNode), C: size})
}

// Collective records one rank completing a collective operation.
// A = virtual ns when the rank entered the collective, B = size bytes,
// C = communicator size. Label names the operation ("allreduce", ...).
func (r *Recorder) Collective(apprank int, op string, entered simtime.Time, size int64, ranks int) {
	if r == nil {
		return
	}
	r.emit(Event{Kind: KindCollective, Node: -1, Apprank: int32(apprank), ID: -1,
		A: int64(entered), B: size, C: int64(ranks), Label: op})
}

// --- DLB core ownership ---------------------------------------------

// OwnershipSet records a DROM-style ownership change of one core.
// A = worker slot, B = old owned count for that slot's apprank on the
// node, C = new owned count.
func (r *Recorder) OwnershipSet(node, worker, oldOwned, newOwned int) {
	if r == nil {
		return
	}
	r.emit(Event{Kind: KindOwnSet, Node: int32(node), Apprank: r.workerApprank(node, worker), ID: -1,
		A: int64(worker), B: int64(oldOwned), C: int64(newOwned)})
}

// CoreBorrow records a LeWI borrow: a worker starts running beyond its
// owned core count on idle cores lent by others. A = worker slot,
// B = running count after the borrow.
func (r *Recorder) CoreBorrow(node, worker, runningAfter int) {
	if r == nil {
		return
	}
	r.emit(Event{Kind: KindCoreBorrow, Node: int32(node), Apprank: r.workerApprank(node, worker), ID: -1,
		A: int64(worker), B: int64(runningAfter)})
}

// CoreReturn records a borrowed core being handed back at a task
// boundary. A = worker slot, B = running count after the return.
func (r *Recorder) CoreReturn(node, worker, runningAfter int) {
	if r == nil {
		return
	}
	r.emit(Event{Kind: KindCoreReturn, Node: int32(node), Apprank: r.workerApprank(node, worker), ID: -1,
		A: int64(worker), B: int64(runningAfter)})
}

// --- Fault injection and resilience ---------------------------------

// FaultInject records a fault-plan event taking effect. ID = the
// event's index within the bound plan (pairing inject/recover edges),
// Label = the fault kind ("slow", "link", ...). Node is the target node
// (-1 for apprank-scoped faults), Apprank the target apprank (-1 for
// node-scoped faults). A = episode end in virtual ns (0 for permanent
// faults), B/C = kind-specific magnitudes (slow: B = speed in
// math.Float64bits; coreloss: B = cores removed; link: B = peer node,
// C = drop probability in Float64bits).
func (r *Recorder) FaultInject(planIdx int, kind string, node, apprank int, until simtime.Time, b, c int64) {
	if r == nil {
		return
	}
	r.emit(Event{Kind: KindFaultInject, Node: int32(node), Apprank: int32(apprank), ID: int64(planIdx),
		A: int64(until), B: b, C: c, Label: kind})
}

// FaultRecover records the recovery edge of an episodic fault. Fields
// mirror FaultInject.
func (r *Recorder) FaultRecover(planIdx int, kind string, node, apprank int) {
	if r == nil {
		return
	}
	r.emit(Event{Kind: KindFaultRecover, Node: int32(node), Apprank: int32(apprank), ID: int64(planIdx), Label: kind})
}

// Reoffload records the home apprank re-placing an offloaded task after
// a deadline expiry or target death. Node = the new target node,
// A = the old (failed) target node, B = the retry attempt number,
// C = 1 when the task fell back to local execution at home.
func (r *Recorder) Reoffload(apprank int, id int64, oldNode, newNode, attempt int, local bool) {
	if r == nil {
		return
	}
	c := int64(0)
	if local {
		c = 1
	}
	r.emit(Event{Kind: KindReoffload, Node: int32(newNode), Apprank: int32(apprank), ID: id,
		A: int64(oldNode), B: int64(attempt), C: c})
}

// MsgDrop records a link fault dropping one delivery attempt of a
// message. A = src, B = dst (global apprank ids), C = the attempt
// number that was dropped.
func (r *Recorder) MsgDrop(id int64, src, dst, attempt int) {
	if r == nil {
		return
	}
	r.emit(Event{Kind: KindMsgDrop, Node: -1, Apprank: int32(dst), ID: id,
		A: int64(src), B: int64(dst), C: int64(attempt)})
}

// --- Self-scheduling chunk server ------------------------------------

// ChunkGrant records the self-scheduling chunk server handing a chunk of
// centrally held tasks to a worker. Node = the receiving worker's node,
// A = worker slot on the node, B = chunk size in tasks, C = tasks still
// ungranted in the loop after the grant, D = the numeric policy id
// (balance.SelfSched).
func (r *Recorder) ChunkGrant(apprank, node, worker, size, remaining, policy int) {
	if r == nil {
		return
	}
	r.emit(Event{Kind: KindChunkGrant, Node: int32(node), Apprank: int32(apprank), ID: -1,
		A: int64(worker), B: int64(size), C: int64(remaining), D: int64(policy)})
}

// --- Sampled gauges -------------------------------------------------

// Imbalance records a sampled cross-node load-imbalance value (max/mean
// busy cores). The float is carried in A as math.Float64bits.
func (r *Recorder) Imbalance(v float64) {
	if r == nil {
		return
	}
	r.emit(Event{Kind: KindImbalance, Node: -1, Apprank: -1, ID: -1, A: int64(math.Float64bits(v))})
}

// ImbalanceValue decodes the gauge payload of a KindImbalance event.
func (e *Event) ImbalanceValue() float64 { return math.Float64frombits(uint64(e.A)) }

// POPWindowSample records one node's windowed POP utilisation: window
// index, the window's start time t (the event is stamped with t, not
// the emit-time clock — the series is exported at end of run), and the
// node's parallel-efficiency value in A as float bits.
func (r *Recorder) POPWindowSample(node, window int, t simtime.Time, pe float64) {
	if r == nil {
		return
	}
	r.emitStamped(Event{T: t, Kind: KindPOPWindow, Node: int32(node), Apprank: -1, ID: -1,
		A: int64(math.Float64bits(pe)), B: int64(window)})
}

// POPValue decodes the utilisation payload of a KindPOPWindow event.
func (e *Event) POPValue() float64 { return math.Float64frombits(uint64(e.A)) }
