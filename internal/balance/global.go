package balance

import (
	"fmt"
	"math"
	"sort"

	"ompsscluster/internal/flow"
	"ompsscluster/internal/lp"
)

// GlobalPolicy is the global solver approach (§5.4.2). It gathers the
// total work per apprank (busy-core averages summed over the apprank's
// workers, offloaded work weighted by 1+Incentive) and minimises
// max_a work_a/cores_a subject to the expander-graph adjacency, one core
// per worker, and per-node capacity.
type GlobalPolicy struct {
	// Incentive is the own-node preference: offloaded busy cores are
	// counted as (1+Incentive) of work, so the solver avoids offloading
	// whenever it is free to. The paper uses 1e-6.
	Incentive float64
	// UseSimplex solves the subproblems with the simplex solver instead
	// of min-cost flow. Results are equivalent; the flow solver is the
	// default and the simplex path exists for cross-validation.
	UseSimplex bool
}

// problemView is the indexed form of a Problem used by the solvers.
type problemView struct {
	p        *Problem
	nodeIdx  map[int]int // node id -> index in p.Nodes
	appranks []int       // sorted apprank ids
	appIdx   map[int]int
	workers  [][]int // apprank index -> worker indices (into p.Workers)
	onNode   [][]int // node index -> worker indices
	work     []float64

	// Solver scratch: the bisection in solveT rebuilds the same-shaped
	// flow network up to 60 times, so the graph and the demand/capacity
	// buffers are allocated once per view and reused across rebuilds.
	g     *flow.Graph
	dbuf  []float64 // demands
	cbuf  []float64 // residual capacities
	webuf []int     // per-worker edge ids
}

func buildView(p *Problem, incentive float64) *problemView {
	v := &problemView{p: p, nodeIdx: map[int]int{}, appIdx: map[int]int{}}
	for i, n := range p.Nodes {
		v.nodeIdx[n.ID] = i
	}
	seen := map[int]bool{}
	for _, w := range p.Workers {
		if !seen[w.Key.Apprank] {
			seen[w.Key.Apprank] = true
			v.appranks = append(v.appranks, w.Key.Apprank)
		}
	}
	sort.Ints(v.appranks)
	for i, a := range v.appranks {
		v.appIdx[a] = i
	}
	v.workers = make([][]int, len(v.appranks))
	v.onNode = make([][]int, len(p.Nodes))
	v.work = make([]float64, len(v.appranks))
	for wi, w := range p.Workers {
		ai := v.appIdx[w.Key.Apprank]
		v.workers[ai] = append(v.workers[ai], wi)
		ni := v.nodeIdx[w.Key.Node]
		v.onNode[ni] = append(v.onNode[ni], wi)
		if w.Home {
			v.work[ai] += w.Busy
		} else {
			v.work[ai] += w.Busy * (1 + incentive)
		}
	}
	return v
}

// demands returns each apprank's core demand beyond the one-per-worker
// floor at objective value t. The returned slice is the view's reusable
// buffer: valid until the next demands call.
func (v *problemView) demands(t float64) []float64 {
	if v.dbuf == nil {
		v.dbuf = make([]float64, len(v.appranks))
	}
	d := v.dbuf
	for ai := range v.appranks {
		base := float64(len(v.workers[ai]))
		need := v.work[ai]/t - base
		if need > 0 {
			d[ai] = need
		} else {
			d[ai] = 0
		}
	}
	return d
}

// residualCap returns each node's capacity beyond the one-per-worker
// floor, in the view's reusable buffer (valid until the next call).
func (v *problemView) residualCap() []float64 {
	if v.cbuf == nil {
		v.cbuf = make([]float64, len(v.p.Nodes))
	}
	caps := v.cbuf
	for ni, n := range v.p.Nodes {
		caps[ni] = float64(n.Cores - len(v.onNode[ni]))
	}
	return caps
}

// feasibleFlow reports whether the demands at t can be met, using max
// flow: source -> apprank (demand), apprank -> node (adjacency), node ->
// sink (residual capacity).
func (v *problemView) feasibleFlow(t float64) bool {
	demands := v.demands(t)
	total := 0.0
	for _, d := range demands {
		total += d
	}
	if total == 0 {
		return true
	}
	g, src, sink, _ := v.buildFlowGraph(demands, false)
	return g.MaxFlow(src, sink) >= total-1e-7
}

// buildFlowGraph assembles the allocation network. When costed is true,
// helper edges cost 1 and home edges cost 0. It returns the per-worker
// edge ids. The graph and the edge-id slice are the view's reusable
// scratch: both are valid until the next buildFlowGraph call.
func (v *problemView) buildFlowGraph(demands []float64, costed bool) (g *flow.Graph, src, sink int, workerEdge []int) {
	nApp, nNode := len(v.appranks), len(v.p.Nodes)
	if v.g == nil {
		v.g = flow.NewGraph(nApp + nNode + 2)
	} else {
		v.g.Reinit(nApp + nNode + 2)
	}
	g = v.g
	src = nApp + nNode
	sink = src + 1
	caps := v.residualCap()
	for ai, d := range demands {
		if d > 0 {
			g.AddEdge(src, ai, d, 0)
		}
	}
	if cap(v.webuf) < len(v.p.Workers) {
		v.webuf = make([]int, len(v.p.Workers))
	}
	workerEdge = v.webuf[:len(v.p.Workers)]
	for i := range workerEdge {
		workerEdge[i] = -1
	}
	for ai := range v.appranks {
		for _, wi := range v.workers[ai] {
			w := v.p.Workers[wi]
			ni := v.nodeIdx[w.Key.Node]
			cost := 0.0
			if costed && !w.Home {
				cost = 1.0
			}
			workerEdge[wi] = g.AddEdge(ai, nApp+ni, caps[ni], cost)
		}
	}
	for ni := range v.p.Nodes {
		g.AddEdge(nApp+ni, sink, caps[ni], 0)
	}
	return g, src, sink, workerEdge
}

// feasibleSimplex is the LP cross-validation of feasibleFlow.
func (v *problemView) feasibleSimplex(t float64) bool {
	nw := len(v.p.Workers)
	prob := lp.NewProblem(nw)
	// Node capacities: sum of C_w on node <= cores (C here excludes the
	// floor of 1, so capacity is the residual).
	caps := v.residualCap()
	for ni := range v.p.Nodes {
		coef := make([]float64, nw)
		for _, wi := range v.onNode[ni] {
			coef[wi] = 1
		}
		prob.AddConstraint(coef, lp.LE, caps[ni])
	}
	for ai, d := range v.demands(t) {
		if d <= 0 {
			continue
		}
		coef := make([]float64, nw)
		for _, wi := range v.workers[ai] {
			coef[wi] = 1
		}
		prob.AddConstraint(coef, lp.GE, d)
	}
	sol, err := prob.Solve()
	return err == nil && sol.Status == lp.Optimal
}

// minOffloadSimplex solves the allocation at t with the simplex solver,
// minimising offloaded cores. It returns per-worker extra cores (above
// the floor of one).
func (v *problemView) minOffloadSimplex(t float64) ([]float64, error) {
	nw := len(v.p.Workers)
	prob := lp.NewProblem(nw)
	obj := make([]float64, nw)
	for wi, w := range v.p.Workers {
		if !w.Home {
			obj[wi] = 1
		}
	}
	prob.SetObjective(obj)
	caps := v.residualCap()
	for ni := range v.p.Nodes {
		coef := make([]float64, nw)
		for _, wi := range v.onNode[ni] {
			coef[wi] = 1
		}
		prob.AddConstraint(coef, lp.LE, caps[ni])
	}
	for ai, d := range v.demands(t) {
		if d <= 0 {
			continue
		}
		coef := make([]float64, nw)
		for _, wi := range v.workers[ai] {
			coef[wi] = 1
		}
		prob.AddConstraint(coef, lp.GE, d)
	}
	sol, err := prob.Solve()
	if err != nil {
		return nil, err
	}
	return sol.X, nil
}

// minOffloadFlow solves the allocation at t with min-cost max flow.
func (v *problemView) minOffloadFlow(t float64) []float64 {
	demands := v.demands(t)
	g, src, sink, workerEdge := v.buildFlowGraph(demands, true)
	g.MinCostMaxFlow(src, sink)
	x := make([]float64, len(v.p.Workers))
	for wi, eid := range workerEdge {
		if eid >= 0 {
			x[wi] = g.Flow(eid)
		}
	}
	return x
}

// Allocate runs the global policy.
func (g GlobalPolicy) Allocate(p *Problem) (Allocation, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	v := buildView(p, g.Incentive)
	tStar := v.solveT(g.UseSimplex)
	var extra []float64
	if g.UseSimplex {
		x, err := v.minOffloadSimplex(tStar)
		if err != nil {
			return nil, fmt.Errorf("balance: simplex allocation at t*=%v: %w", tStar, err)
		}
		extra = x
	} else {
		extra = v.minOffloadFlow(tStar)
	}
	alloc := v.roundAndFill(extra)
	if err := p.checkAllocation(alloc); err != nil {
		return nil, err
	}
	return alloc, nil
}

// SolveObjective exposes the optimal max work/cores value (for tests and
// the convergence analysis).
func (g GlobalPolicy) SolveObjective(p *Problem) (float64, error) {
	if err := p.Validate(); err != nil {
		return 0, err
	}
	v := buildView(p, g.Incentive)
	return v.solveT(g.UseSimplex), nil
}

// solveT finds the minimal feasible t by bisection.
func (v *problemView) solveT(useSimplex bool) float64 {
	totalWork := 0.0
	for _, w := range v.work {
		totalWork += w
	}
	if totalWork <= 1e-12 {
		return 1 // any t; no demands
	}
	feasible := func(t float64) bool {
		if useSimplex {
			return v.feasibleSimplex(t)
		}
		return v.feasibleFlow(t)
	}
	// Upper bound: demands vanish when every apprank's work fits its
	// one-core-per-worker floor.
	hi := 1e-9
	for ai := range v.appranks {
		if t := v.work[ai] / float64(len(v.workers[ai])); t > hi {
			hi = t
		}
	}
	// Lower bound: total capacity, and each apprank's reachable capacity.
	totalCores := 0.0
	for _, n := range v.p.Nodes {
		totalCores += float64(n.Cores)
	}
	lo := totalWork / totalCores
	for ai := range v.appranks {
		reach := 0.0
		seen := map[int]bool{}
		for _, wi := range v.workers[ai] {
			id := v.p.Workers[wi].Key.Node
			if !seen[id] {
				seen[id] = true
				reach += float64(v.p.Nodes[v.nodeIdx[id]].Cores)
			}
		}
		if t := v.work[ai] / reach; t > lo {
			lo = t
		}
	}
	if lo > hi {
		lo = hi
	}
	if feasible(lo) {
		return lo
	}
	for iter := 0; iter < 60 && hi-lo > 1e-9*hi; iter++ {
		mid := 0.5 * (lo + hi)
		if feasible(mid) {
			hi = mid
		} else {
			lo = mid
		}
	}
	return hi
}

// roundAndFill converts fractional extra cores to an integer allocation.
// Per node: every worker gets its floor of one core; the solved extras
// are rounded with largest remainder; any remaining spare cores go to the
// node's home workers, so a balanced load converges to home-owned nodes
// with helpers at exactly one core (no spurious offloading, Figure 5(b)).
func (v *problemView) roundAndFill(extra []float64) Allocation {
	alloc := make(Allocation, len(v.p.Workers))
	for ni, n := range v.p.Nodes {
		wis := v.onNode[ni]
		if len(wis) == 0 {
			continue
		}
		residual := n.Cores - len(wis)
		raw := make([]float64, len(wis))
		sumExtra := 0.0
		for i, wi := range wis {
			raw[i] = extra[wi]
			sumExtra += extra[wi]
		}
		m := int(math.Round(sumExtra))
		if m > residual {
			m = residual
		}
		shares := apportion(raw, m)
		spare := residual - m
		// Spares go to home workers (evenly), falling back to every
		// worker when the node hosts only helpers.
		var homeRaw []float64
		var homeIdx []int
		for i, wi := range wis {
			if v.p.Workers[wi].Home {
				homeRaw = append(homeRaw, 1)
				homeIdx = append(homeIdx, i)
			}
		}
		if len(homeIdx) == 0 {
			for i := range wis {
				homeRaw = append(homeRaw, 1)
				homeIdx = append(homeIdx, i)
			}
		}
		for j, s := range apportion(homeRaw, spare) {
			shares[homeIdx[j]] += s
		}
		for i, wi := range wis {
			alloc[v.p.Workers[wi].Key] = 1 + shares[i]
		}
	}
	return alloc
}
