// Dynamic loop self-scheduling policies (the "policy family" extension):
// instead of the paper's reactive two-tasks-per-owned-core scheduler, an
// apprank can hold its ready offloadable tasks centrally and hand them to
// workers in chunks sized by a classic self-scheduling rule. The family
// follows the loop-scheduling literature the two-level MPI+MPI designs
// build on (arXiv 1903.09510, 1911.06714):
//
//   - static chunking: one pre-planned block per worker, proportional to
//     the worker's weight (equal weights give the textbook N/P blocks);
//   - guided self-scheduling (GSS): each request takes ceil(R/P) of the
//     R remaining iterations, so chunks decay geometrically;
//   - factoring (FAC): iterations are released in batches of P equal
//     chunks sized ceil(R/2P), halving the outstanding work per batch;
//   - weighted factoring (WF): each batch releases ceil(R/2) iterations
//     split across workers proportionally to their weights, so faster
//     (or better-provisioned) workers receive larger chunks;
//   - two-level: the inter-node tier grants WF-style weighted chunks
//     while the runtime keeps LeWI enabled below, so a node's idle cores
//     absorb a granted chunk beyond the receiving worker's ownership.
//
// GSS and FAC deliberately ignore the weights — they assume homogeneous
// workers, and their degradation on heterogeneous core ownership is one
// of the comparisons the policies experiment makes.
package balance

import (
	"fmt"
	"math"
	"strings"
)

// SelfSched selects a dynamic loop self-scheduling policy.
type SelfSched int

// Self-scheduling policy kinds.
const (
	// SelfSchedOff disables self-scheduling (the default §5.5 scheduler).
	SelfSchedOff SelfSched = iota
	// SelfSchedStatic pre-plans one weighted block per worker.
	SelfSchedStatic
	// SelfSchedGuided grants ceil(R/P) per request (GSS).
	SelfSchedGuided
	// SelfSchedFactoring grants batches of P chunks of ceil(R/2P) (FAC).
	SelfSchedFactoring
	// SelfSchedWeighted grants weighted shares of ceil(R/2) batches (WF).
	SelfSchedWeighted
	// SelfSchedTwoLevel pairs WF-style inter-node chunks with LeWI below.
	SelfSchedTwoLevel
)

var selfSchedNames = map[SelfSched]string{
	SelfSchedOff:       "off",
	SelfSchedStatic:    "static",
	SelfSchedGuided:    "guided",
	SelfSchedFactoring: "factoring",
	SelfSchedWeighted:  "wfactoring",
	SelfSchedTwoLevel:  "twolevel",
}

func (s SelfSched) String() string {
	if n, ok := selfSchedNames[s]; ok {
		return n
	}
	return fmt.Sprintf("SelfSched(%d)", int(s))
}

// Valid reports whether s names a member of the policy family (including
// SelfSchedOff).
func (s SelfSched) Valid() bool {
	_, ok := selfSchedNames[s]
	return ok
}

// SelfSchedNames lists the parseable policy names, excluding "off", in
// family order (for flag help and error messages).
func SelfSchedNames() []string {
	return []string{"static", "guided", "factoring", "wfactoring", "twolevel"}
}

// ParseSelfSched maps a policy name to its SelfSched value.
func ParseSelfSched(name string) (SelfSched, error) {
	for s, n := range selfSchedNames {
		if n == name {
			return s, nil
		}
	}
	return SelfSchedOff, fmt.Errorf("balance: unknown self-scheduling policy %q (have off, %s)",
		name, strings.Join(SelfSchedNames(), ", "))
}

// ChunkServer issues self-scheduling chunks for one loop (one batch of
// ready tasks) at a time. BeginLoop resets it for a loop of n tasks;
// Grant hands the calling worker its next chunk. The grant sequence for
// any request order sums exactly to n with no zero-size chunks: Grant
// returns a positive size while tasks remain and 0 once the loop is
// drained. All per-request state lives in buffers sized at construction,
// so both BeginLoop and Grant are allocation-free.
type ChunkServer struct {
	kind    SelfSched
	weights []float64

	remaining  int
	plan       []int // static: per-worker planned block for this loop
	batchChunk int   // factoring: chunk size of the open batch
	batchLeft  int   // factoring: chunks left in the open batch
	batchPlan  []int // weighted/two-level: per-worker share of the open batch

	frac  []float64 // apportioning scratch
	order []int     // apportioning scratch
}

// NewChunkServer builds a server for len(weights) workers. Weights are
// the workers' relative capacities (cores x speed); static, weighted
// factoring, and two-level use them, guided and factoring ignore them.
// Weights must be non-negative and not all zero.
func NewChunkServer(kind SelfSched, weights []float64) *ChunkServer {
	if kind == SelfSchedOff || !kind.Valid() {
		panic(fmt.Sprintf("balance: chunk server needs an active policy, got %v", kind))
	}
	if len(weights) == 0 {
		panic("balance: chunk server needs at least one worker")
	}
	sum := 0.0
	for i, w := range weights {
		if w < 0 || math.IsNaN(w) || math.IsInf(w, 0) {
			panic(fmt.Sprintf("balance: worker %d has invalid weight %v", i, w))
		}
		sum += w
	}
	if sum == 0 {
		panic("balance: all chunk-server weights are zero")
	}
	p := len(weights)
	return &ChunkServer{
		kind:      kind,
		weights:   append([]float64(nil), weights...),
		plan:      make([]int, p),
		batchPlan: make([]int, p),
		frac:      make([]float64, p),
		order:     make([]int, p),
	}
}

// Kind returns the server's policy.
func (cs *ChunkServer) Kind() SelfSched { return cs.kind }

// Workers returns the number of workers the server grants to.
func (cs *ChunkServer) Workers() int { return len(cs.weights) }

// Remaining returns the ungranted tasks of the current loop.
func (cs *ChunkServer) Remaining() int { return cs.remaining }

// BeginLoop resets the server for a loop of n tasks, discarding any
// ungranted remainder of the previous loop (callers begin a new loop
// only over the full set of currently parked tasks).
func (cs *ChunkServer) BeginLoop(n int) {
	if n < 0 {
		panic(fmt.Sprintf("balance: negative loop size %d", n))
	}
	cs.remaining = n
	cs.batchChunk, cs.batchLeft = 0, 0
	for i := range cs.batchPlan {
		cs.batchPlan[i] = 0
	}
	if cs.kind == SelfSchedStatic {
		apportionInto(cs.plan, cs.weights, n, cs.frac, cs.order)
	}
}

// Grant returns the chunk size for the given worker's request: positive
// while the loop has ungranted tasks, 0 once it is drained. The policy
// math never yields a zero-size chunk mid-loop — even static falls back
// to a guided-style share when the requester's planned block is spent
// (a re-request under jitter, or blocks stranded by dead workers), so a
// loop always drains through whichever workers keep requesting.
func (cs *ChunkServer) Grant(worker int) int {
	if cs.remaining <= 0 {
		return 0
	}
	p := len(cs.weights)
	var k int
	switch cs.kind {
	case SelfSchedStatic:
		k = cs.plan[worker]
		cs.plan[worker] = 0
		if k == 0 {
			k = ceilDiv(cs.remaining, p)
		}
	case SelfSchedGuided:
		k = ceilDiv(cs.remaining, p)
	case SelfSchedFactoring:
		if cs.batchLeft == 0 {
			cs.batchChunk = ceilDiv(cs.remaining, 2*p)
			cs.batchLeft = p
		}
		k = cs.batchChunk
		cs.batchLeft--
	case SelfSchedWeighted, SelfSchedTwoLevel:
		if cs.batchPlan[worker] == 0 {
			// Open a new batch over half the remainder. Recomputing on a
			// spent entry (rather than once per batch) keeps the halving
			// self-consistent however requests interleave.
			apportionInto(cs.batchPlan, cs.weights, cs.remaining-cs.remaining/2, cs.frac, cs.order)
		}
		k = cs.batchPlan[worker]
		cs.batchPlan[worker] = 0
	}
	if k < 1 {
		k = 1
	}
	if k > cs.remaining {
		k = cs.remaining
	}
	cs.remaining -= k
	return k
}

func ceilDiv(a, b int) int { return (a + b - 1) / b }

// apportionInto is apportion (largest-remainder, no floor) into caller
// buffers: dst receives the integer shares, frac and order are scratch.
// All four slices have the same length; nothing is allocated.
func apportionInto(dst []int, raw []float64, total int, frac []float64, order []int) {
	n := len(raw)
	for i := range dst {
		dst[i] = 0
	}
	if n == 0 || total <= 0 {
		return
	}
	sum := 0.0
	for _, r := range raw {
		sum += r
	}
	used := 0
	for i, r := range raw {
		share := float64(total) / float64(n)
		if sum > 0 {
			share = float64(total) * r / sum
		}
		fl := math.Floor(share + 1e-12)
		dst[i] = int(fl)
		frac[i] = share - fl
		order[i] = i
		used += int(fl)
	}
	// Stable insertion sort by descending fractional part (n is the
	// worker count of one apprank — tiny).
	for i := 1; i < n; i++ {
		for j := i; j > 0 && frac[order[j-1]] < frac[order[j]]; j-- {
			order[j-1], order[j] = order[j], order[j-1]
		}
	}
	for i := 0; i < total-used; i++ {
		dst[order[i%n]]++
	}
}
