package balance

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// twoNodeProblem builds the running example: 2 nodes x 4 cores, apprank 0
// homed on node 0 with a helper on node 1, apprank 1 homed on node 1.
func twoNodeProblem(busyHome0, busyHelper0, busyHome1 float64) *Problem {
	return &Problem{
		Nodes: []NodeInfo{{ID: 0, Cores: 4}, {ID: 1, Cores: 4}},
		Workers: []WorkerLoad{
			{Key: WorkerKey{0, 0}, Busy: busyHome0, Home: true},
			{Key: WorkerKey{0, 1}, Busy: busyHelper0},
			{Key: WorkerKey{1, 1}, Busy: busyHome1, Home: true},
		},
	}
}

func TestValidate(t *testing.T) {
	p := twoNodeProblem(1, 0, 1)
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := &Problem{
		Nodes:   []NodeInfo{{ID: 0, Cores: 1}},
		Workers: []WorkerLoad{{Key: WorkerKey{0, 9}}},
	}
	if bad.Validate() == nil {
		t.Fatal("unknown node accepted")
	}
	bad2 := &Problem{
		Nodes: []NodeInfo{{ID: 0, Cores: 1}},
		Workers: []WorkerLoad{
			{Key: WorkerKey{0, 0}, Home: true},
			{Key: WorkerKey{1, 0}, Home: true},
		},
	}
	if bad2.Validate() == nil {
		t.Fatal("more workers than cores accepted")
	}
}

func TestLargestRemainder(t *testing.T) {
	out := largestRemainder([]float64{3, 1}, 8)
	if out[0]+out[1] != 8 || out[0] < out[1] {
		t.Fatalf("largestRemainder = %v", out)
	}
	// Floor of one even for zero weight.
	out = largestRemainder([]float64{10, 0}, 4)
	if out[1] != 1 || out[0] != 3 {
		t.Fatalf("largestRemainder = %v, want [3 1]", out)
	}
	// Zero weights split evenly.
	out = largestRemainder([]float64{0, 0, 0, 0}, 8)
	for _, v := range out {
		if v != 2 {
			t.Fatalf("even split = %v", out)
		}
	}
}

func TestApportion(t *testing.T) {
	out := apportion([]float64{1, 1, 1}, 7)
	sum := 0
	for _, v := range out {
		sum += v
	}
	if sum != 7 {
		t.Fatalf("apportion sum = %d", sum)
	}
	out = apportion([]float64{5, 0}, 5)
	if out[0] != 5 || out[1] != 0 {
		t.Fatalf("apportion = %v", out)
	}
	out = apportion(nil, 5)
	if len(out) != 0 {
		t.Fatal("apportion on empty input")
	}
}

func TestLocalProportional(t *testing.T) {
	// Node 1 has helper of apprank 0 with busy 3 and home apprank 1 with
	// busy 1: ownership should be ~3:1.
	p := twoNodeProblem(4, 3, 1)
	alloc, err := LocalPolicy{}.Allocate(p)
	if err != nil {
		t.Fatal(err)
	}
	if alloc[WorkerKey{0, 0}] != 4 {
		t.Fatalf("home0 owns %d, want all 4 (sole worker)", alloc[WorkerKey{0, 0}])
	}
	if alloc[WorkerKey{0, 1}] != 3 || alloc[WorkerKey{1, 1}] != 1 {
		t.Fatalf("node1 split = %d/%d, want 3/1",
			alloc[WorkerKey{0, 1}], alloc[WorkerKey{1, 1}])
	}
}

func TestLocalIdleNodeFavoursHome(t *testing.T) {
	p := twoNodeProblem(0, 0, 0)
	alloc, err := LocalPolicy{}.Allocate(p)
	if err != nil {
		t.Fatal(err)
	}
	if alloc[WorkerKey{1, 1}] != 3 || alloc[WorkerKey{0, 1}] != 1 {
		t.Fatalf("idle node gave home %d, helper %d; want 3, 1",
			alloc[WorkerKey{1, 1}], alloc[WorkerKey{0, 1}])
	}
}

func TestLocalMinimumOneCore(t *testing.T) {
	p := twoNodeProblem(4, 0, 8)
	alloc, err := LocalPolicy{}.Allocate(p)
	if err != nil {
		t.Fatal(err)
	}
	if alloc[WorkerKey{0, 1}] < 1 {
		t.Fatal("idle helper lost its floor core")
	}
}

func TestGlobalImbalancedShiftsCores(t *testing.T) {
	// Apprank 0 has 6 busy cores of work, apprank 1 has 2: apprank 0
	// should receive cores on node 1 through its helper.
	p := twoNodeProblem(4, 2, 2)
	alloc, err := GlobalPolicy{Incentive: 1e-6}.Allocate(p)
	if err != nil {
		t.Fatal(err)
	}
	// Optimal t = 8/8 = 1.0: apprank 0 gets 6 cores (4 home + 2 helper),
	// apprank 1 gets 2.
	if got := alloc[WorkerKey{0, 0}] + alloc[WorkerKey{0, 1}]; got != 6 {
		t.Fatalf("apprank 0 owns %d cores, want 6 (alloc=%v)", got, alloc)
	}
	if alloc[WorkerKey{1, 1}] != 2 {
		t.Fatalf("apprank 1 owns %d, want 2", alloc[WorkerKey{1, 1}])
	}
}

func TestGlobalBalancedAvoidsOffload(t *testing.T) {
	// Equal loads that fit each home node: helpers must stay at one core.
	p := twoNodeProblem(3, 0, 3)
	alloc, err := GlobalPolicy{Incentive: 1e-6}.Allocate(p)
	if err != nil {
		t.Fatal(err)
	}
	if alloc[WorkerKey{0, 1}] != 1 {
		t.Fatalf("balanced load but helper owns %d cores (Figure 5(b) property)", alloc[WorkerKey{0, 1}])
	}
	if alloc[WorkerKey{0, 0}] != 4 || alloc[WorkerKey{1, 1}] != 3 {
		t.Fatalf("alloc = %v", alloc)
	}
}

func TestGlobalObjectiveValue(t *testing.T) {
	p := twoNodeProblem(4, 2, 2)
	obj, err := GlobalPolicy{}.SolveObjective(p)
	if err != nil {
		t.Fatal(err)
	}
	// Work: apprank0 ~6, apprank1 2, 8 cores total, adjacency full for
	// a0; optimum max ratio = 1.0.
	if math.Abs(obj-1.0) > 1e-3 {
		t.Fatalf("objective = %v, want ~1.0", obj)
	}
}

func TestGlobalAdjacencyRestricts(t *testing.T) {
	// Apprank 0 has no helper: its work cannot spread, so the optimum is
	// bounded by its home node capacity.
	p := &Problem{
		Nodes: []NodeInfo{{ID: 0, Cores: 4}, {ID: 1, Cores: 4}},
		Workers: []WorkerLoad{
			{Key: WorkerKey{0, 0}, Busy: 8, Home: true},
			{Key: WorkerKey{1, 1}, Busy: 1, Home: true},
		},
	}
	obj, err := GlobalPolicy{}.SolveObjective(p)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(obj-2.0) > 1e-3 {
		t.Fatalf("objective = %v, want 2.0 (8 work / 4 reachable cores)", obj)
	}
	alloc, err := GlobalPolicy{}.Allocate(p)
	if err != nil {
		t.Fatal(err)
	}
	if alloc[WorkerKey{0, 0}] != 4 || alloc[WorkerKey{1, 1}] != 4 {
		t.Fatalf("alloc = %v", alloc)
	}
}

func TestGlobalZeroWork(t *testing.T) {
	p := twoNodeProblem(0, 0, 0)
	alloc, err := GlobalPolicy{}.Allocate(p)
	if err != nil {
		t.Fatal(err)
	}
	if alloc[WorkerKey{0, 1}] != 1 {
		t.Fatalf("idle helper owns %d, want 1", alloc[WorkerKey{0, 1}])
	}
	if alloc[WorkerKey{0, 0}] != 4 || alloc[WorkerKey{1, 1}] != 3 {
		t.Fatalf("alloc = %v", alloc)
	}
}

func TestGlobalSimplexAgreesWithFlow(t *testing.T) {
	cases := []*Problem{
		twoNodeProblem(4, 2, 2),
		twoNodeProblem(3, 0, 3),
		twoNodeProblem(8, 4, 1),
		twoNodeProblem(0.5, 0.1, 3.7),
	}
	for i, p := range cases {
		flowAlloc, err := GlobalPolicy{Incentive: 1e-6}.Allocate(p)
		if err != nil {
			t.Fatalf("case %d flow: %v", i, err)
		}
		simplexAlloc, err := GlobalPolicy{Incentive: 1e-6, UseSimplex: true}.Allocate(p)
		if err != nil {
			t.Fatalf("case %d simplex: %v", i, err)
		}
		// The allocations must offload the same number of cores (the
		// optima agree even if ties break differently).
		offload := func(a Allocation) int {
			n := 0
			for _, w := range p.Workers {
				if !w.Home {
					n += a[w.Key]
				}
			}
			return n
		}
		if offload(flowAlloc) != offload(simplexAlloc) {
			t.Fatalf("case %d: flow offloads %d, simplex %d (flow=%v simplex=%v)",
				i, offload(flowAlloc), offload(simplexAlloc), flowAlloc, simplexAlloc)
		}
	}
}

// buildRandomProblem produces a random valid problem on a small machine.
func buildRandomProblem(rng *rand.Rand) *Problem {
	nNodes := 2 + rng.Intn(4)
	cores := 4 + rng.Intn(5)
	p := &Problem{}
	for n := 0; n < nNodes; n++ {
		p.Nodes = append(p.Nodes, NodeInfo{ID: n, Cores: cores})
	}
	// One apprank per node, each with a helper on the next node.
	for a := 0; a < nNodes; a++ {
		p.Workers = append(p.Workers,
			WorkerLoad{Key: WorkerKey{a, a}, Busy: rng.Float64() * float64(cores) * 2, Home: true},
			WorkerLoad{Key: WorkerKey{a, (a + 1) % nNodes}, Busy: rng.Float64()},
		)
	}
	return p
}

// Property: both policies return allocations with >= 1 core per worker
// and per-node sums equal to node cores (conservation), for random loads.
func TestQuickAllocationsValid(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := buildRandomProblem(rng)
		la, err := LocalPolicy{}.Allocate(p)
		if err != nil || p.checkAllocation(la) != nil {
			return false
		}
		ga, err := GlobalPolicy{Incentive: 1e-6}.Allocate(p)
		if err != nil || p.checkAllocation(ga) != nil {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// Property: the flow and simplex objective values agree.
func TestQuickFlowSimplexObjectiveAgree(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := buildRandomProblem(rng)
		o1, err1 := GlobalPolicy{}.SolveObjective(p)
		o2, err2 := GlobalPolicy{UseSimplex: true}.SolveObjective(p)
		if err1 != nil || err2 != nil {
			return false
		}
		return math.Abs(o1-o2) <= 1e-5*math.Max(1, o1)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: the global objective never exceeds the no-offload objective
// (offloading can only help), and is at least total work / total cores.
func TestQuickGlobalObjectiveBounds(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := buildRandomProblem(rng)
		obj, err := GlobalPolicy{}.SolveObjective(p)
		if err != nil {
			return false
		}
		totalWork, totalCores := 0.0, 0.0
		noOffload := 0.0
		perApp := map[int]float64{}
		for _, w := range p.Workers {
			totalWork += w.Busy
			perApp[w.Key.Apprank] += w.Busy
		}
		for _, n := range p.Nodes {
			totalCores += float64(n.Cores)
		}
		for a, wk := range perApp {
			// Without offloading each apprank has its home node's cores
			// minus one core lent to the resident helper.
			r := wk / float64(p.Nodes[a].Cores-1)
			if r > noOffload {
				noOffload = r
			}
		}
		return obj >= totalWork/totalCores-1e-6 && obj <= noOffload+1e-6+1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
