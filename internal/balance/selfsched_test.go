package balance

import (
	"math/rand"
	"testing"
)

func allKinds() []SelfSched {
	return []SelfSched{SelfSchedStatic, SelfSchedGuided, SelfSchedFactoring,
		SelfSchedWeighted, SelfSchedTwoLevel}
}

// drain runs one loop of n tasks to exhaustion under the given request
// order and returns the grant sequence. next(i) yields the worker making
// the i-th request.
func drain(t *testing.T, cs *ChunkServer, n int, next func(i int) int) []int {
	t.Helper()
	cs.BeginLoop(n)
	var grants []int
	for i := 0; cs.Remaining() > 0; i++ {
		if i > n+cs.Workers() {
			t.Fatalf("loop of %d tasks not drained after %d requests (remaining %d)", n, i, cs.Remaining())
		}
		k := cs.Grant(next(i))
		if k < 1 {
			t.Fatalf("request %d: zero-size chunk with %d tasks remaining", i, cs.Remaining())
		}
		grants = append(grants, k)
	}
	if g := cs.Grant(0); g != 0 {
		t.Fatalf("drained loop granted %d", g)
	}
	return grants
}

// TestChunkSequencesSumExactly is the ISSUE's property test: for every
// policy, worker count, weight vector, loop size, and request order, the
// chunk sequence sums exactly to the loop size with no zero-size chunks.
func TestChunkSequencesSumExactly(t *testing.T) {
	weightSets := [][]float64{
		{1},
		{1, 1},
		{1, 1, 1, 1},
		{4, 1, 1},
		{10, 1, 1, 1, 1},
		{3, 0, 2, 1}, // a zero-weight worker may still request
		{0.5, 2.5, 1.0},
	}
	sizes := []int{1, 2, 3, 7, 10, 64, 120, 1000}
	for _, kind := range allKinds() {
		for wi, weights := range weightSets {
			cs := NewChunkServer(kind, weights)
			p := len(weights)
			rng := rand.New(rand.NewSource(int64(wi + 1)))
			orders := map[string]func(i int) int{
				"roundrobin": func(i int) int { return i % p },
				"greedy0":    func(i int) int { return 0 },
				"random":     func(i int) int { return rng.Intn(p) },
			}
			for _, n := range sizes {
				for name, next := range orders {
					grants := drain(t, cs, n, next)
					sum := 0
					for _, g := range grants {
						sum += g
					}
					if sum != n {
						t.Errorf("%v weights=%v n=%d order=%s: grants sum to %d, want %d (%v)",
							kind, weights, n, name, sum, n, grants)
					}
				}
			}
		}
	}
}

func TestChunkGuidedGeometricDecay(t *testing.T) {
	cs := NewChunkServer(SelfSchedGuided, []float64{1, 1, 1, 1})
	grants := drain(t, cs, 400, func(i int) int { return i % 4 })
	if grants[0] != 100 {
		t.Errorf("first GSS chunk = %d, want ceil(400/4) = 100", grants[0])
	}
	for i := 1; i < len(grants); i++ {
		if grants[i] > grants[i-1] {
			t.Errorf("GSS chunks grew: %v", grants)
			break
		}
	}
}

func TestChunkFactoringBatches(t *testing.T) {
	cs := NewChunkServer(SelfSchedFactoring, []float64{1, 1, 1, 1})
	grants := drain(t, cs, 400, func(i int) int { return i % 4 })
	// First batch: 4 chunks of ceil(400/8) = 50; second: 4 of ceil(200/8) = 25.
	want := []int{50, 50, 50, 50, 25, 25, 25, 25}
	for i, w := range want {
		if grants[i] != w {
			t.Fatalf("FAC grant %d = %d, want %d (%v)", i, grants[i], w, grants[:8])
		}
	}
}

func TestChunkWeightedProportional(t *testing.T) {
	cs := NewChunkServer(SelfSchedWeighted, []float64{3, 1})
	cs.BeginLoop(80)
	// First batch is ceil(80/2) = 40, split 3:1.
	if g := cs.Grant(0); g != 30 {
		t.Errorf("heavy worker's first WF chunk = %d, want 30", g)
	}
	if g := cs.Grant(1); g != 10 {
		t.Errorf("light worker's first WF chunk = %d, want 10", g)
	}
}

func TestChunkStaticPlanFollowsWeights(t *testing.T) {
	cs := NewChunkServer(SelfSchedStatic, []float64{10, 1, 1})
	cs.BeginLoop(120)
	if g := cs.Grant(0); g != 100 {
		t.Errorf("static block for weight 10/12 = %d, want 100", g)
	}
	if g := cs.Grant(1); g != 10 {
		t.Errorf("static block for weight 1/12 = %d, want 10", g)
	}
	if g := cs.Grant(2); g != 10 {
		t.Errorf("static block for weight 1/12 = %d, want 10", g)
	}
	if r := cs.Remaining(); r != 0 {
		t.Errorf("remaining after all blocks = %d", r)
	}
}

func TestParseSelfSched(t *testing.T) {
	for _, kind := range append(allKinds(), SelfSchedOff) {
		got, err := ParseSelfSched(kind.String())
		if err != nil || got != kind {
			t.Errorf("ParseSelfSched(%q) = %v, %v", kind.String(), got, err)
		}
	}
	if _, err := ParseSelfSched("bogus"); err == nil {
		t.Error("ParseSelfSched(bogus) succeeded")
	}
}

// TestChunkServerGrantAllocs pins the chunk-server hot path: BeginLoop
// and Grant never allocate, for every policy.
func TestChunkServerGrantAllocs(t *testing.T) {
	for _, kind := range allKinds() {
		cs := NewChunkServer(kind, []float64{4, 1, 1, 2})
		i := 0
		allocs := testing.AllocsPerRun(200, func() {
			if cs.Remaining() == 0 {
				cs.BeginLoop(1 << 20)
			}
			cs.Grant(i % 4)
			i++
		})
		if allocs != 0 {
			t.Errorf("%v: %v allocs per Grant, want 0", kind, allocs)
		}
	}
}

func TestNewChunkServerRejectsBadInput(t *testing.T) {
	for _, f := range []func(){
		func() { NewChunkServer(SelfSchedOff, []float64{1}) },
		func() { NewChunkServer(SelfSchedGuided, nil) },
		func() { NewChunkServer(SelfSchedGuided, []float64{0, 0}) },
		func() { NewChunkServer(SelfSchedGuided, []float64{-1, 2}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("invalid chunk-server construction did not panic")
				}
			}()
			f()
		}()
	}
}
