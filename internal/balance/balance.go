// Package balance implements the paper's two DROM core-allocation
// policies (§5.4).
//
// The local convergence policy adjusts each node independently: core
// ownership is set proportional to each worker's windowed average busy
// cores, with a floor of one core per worker.
//
// The global solver policy minimises max_a (work_a / cores_a) over all
// appranks subject to: every worker owns at least one core, the cores
// owned on each node sum to the node's core count, and an apprank may own
// cores only on nodes adjacent to it in the expander graph. The paper
// solves a linear program with CVXOPT; here the quasiconvex program is
// solved exactly by bisection on the objective value t, with each
// feasibility subproblem reduced to a max-flow, and the own-node
// incentive (offloaded work weighted 1+1e-6, §5.4.2) expressed as a
// min-cost flow at the optimal t. A simplex-based solver over the same
// formulation (internal/lp) cross-validates the flow solution.
package balance

import (
	"fmt"
	"math"
	"sort"
)

// WorkerKey identifies apprank Apprank's worker on node Node.
type WorkerKey struct {
	Apprank, Node int
}

func (k WorkerKey) String() string { return fmt.Sprintf("a%d@n%d", k.Apprank, k.Node) }

// WorkerLoad is the policy-facing view of one worker.
type WorkerLoad struct {
	Key WorkerKey
	// Busy is the windowed average number of busy cores (§5.4).
	Busy float64
	// Home marks the apprank's main worker (its own node).
	Home bool
}

// NodeInfo describes one node's capacity.
type NodeInfo struct {
	ID    int
	Cores int
}

// Problem is the input to an allocation policy.
type Problem struct {
	Nodes   []NodeInfo
	Workers []WorkerLoad
}

// Allocation maps each worker to its new core ownership.
type Allocation map[WorkerKey]int

// Validate checks structural soundness of a problem: known nodes, at most
// one home worker per apprank, and at least as many cores as workers per
// node (every worker must be able to own one core).
func (p *Problem) Validate() error {
	nodeIdx := make(map[int]int, len(p.Nodes))
	for i, n := range p.Nodes {
		if n.Cores <= 0 {
			return fmt.Errorf("balance: node %d has %d cores", n.ID, n.Cores)
		}
		nodeIdx[n.ID] = i
	}
	workersPerNode := make(map[int]int)
	homes := make(map[int]int)
	for _, w := range p.Workers {
		if _, ok := nodeIdx[w.Key.Node]; !ok {
			return fmt.Errorf("balance: worker %v on unknown node", w.Key)
		}
		if w.Busy < 0 {
			return fmt.Errorf("balance: worker %v has negative busy %v", w.Key, w.Busy)
		}
		workersPerNode[w.Key.Node]++
		if w.Home {
			homes[w.Key.Apprank]++
		}
	}
	for a, n := range homes {
		if n > 1 {
			return fmt.Errorf("balance: apprank %d has %d home workers", a, n)
		}
	}
	for id, n := range workersPerNode {
		if n > p.Nodes[nodeIdx[id]].Cores {
			return fmt.Errorf("balance: node %d hosts %d workers but only %d cores", id, n, p.Nodes[nodeIdx[id]].Cores)
		}
	}
	return nil
}

// checkAllocation verifies an allocation against the problem: >= 1 core
// per worker and exact per-node sums.
func (p *Problem) checkAllocation(alloc Allocation) error {
	perNode := make(map[int]int)
	for _, w := range p.Workers {
		c, ok := alloc[w.Key]
		if !ok {
			return fmt.Errorf("balance: worker %v missing from allocation", w.Key)
		}
		if c < 1 {
			return fmt.Errorf("balance: worker %v owns %d cores", w.Key, c)
		}
		perNode[w.Key.Node] += c
	}
	for _, n := range p.Nodes {
		if perNode[n.ID] != n.Cores {
			return fmt.Errorf("balance: node %d ownership sums to %d, want %d", n.ID, perNode[n.ID], n.Cores)
		}
	}
	return nil
}

// largestRemainder rounds shares proportional to raw to integers summing
// to total, with a floor of one per entry. Proportionality is preserved
// for entries above the floor: entries whose proportional share falls
// below one core are clamped to one and the rest re-apportioned.
func largestRemainder(raw []float64, total int) []int {
	n := len(raw)
	if total < n {
		panic(fmt.Sprintf("balance: cannot give %d entries a floor of 1 with %d units", n, total))
	}
	out := make([]int, n)
	active := make([]int, n)
	for i := range active {
		active[i] = i
	}
	budget := total
	// Iteratively clamp entries whose proportional share is below one.
	for {
		sum := 0.0
		for _, i := range active {
			sum += raw[i]
		}
		clamped := false
		next := active[:0]
		for _, i := range active {
			share := float64(budget) / float64(len(active))
			if sum > 0 {
				share = float64(budget) * raw[i] / sum
			}
			if share < 1 {
				out[i] = 1
				budget--
				clamped = true
			} else {
				next = append(next, i)
			}
		}
		active = next
		if !clamped || len(active) == 0 {
			break
		}
	}
	if len(active) == 0 {
		// Everything clamped; hand any leftovers out round-robin.
		for i := 0; budget > 0; i, budget = (i+1)%n, budget-1 {
			out[i]++
		}
		return out
	}
	// Largest-remainder rounding of the surviving proportional shares.
	sum := 0.0
	for _, i := range active {
		sum += raw[i]
	}
	frac := make(map[int]float64, len(active))
	used := 0
	for _, i := range active {
		share := float64(budget) / float64(len(active))
		if sum > 0 {
			share = float64(budget) * raw[i] / sum
		}
		fl := math.Floor(share + 1e-12)
		out[i] = int(fl)
		frac[i] = share - fl
		used += int(fl)
	}
	order := append([]int(nil), active...)
	sort.SliceStable(order, func(x, y int) bool { return frac[order[x]] > frac[order[y]] })
	for k := 0; k < budget-used; k++ {
		out[order[k%len(order)]]++
	}
	return out
}

// apportion rounds raw shares to integers summing exactly to total
// (largest-remainder, no floor). raw values must be non-negative; a zero
// raw vector splits total evenly.
func apportion(raw []float64, total int) []int {
	n := len(raw)
	out := make([]int, n)
	if n == 0 || total <= 0 {
		return out
	}
	sum := 0.0
	for _, r := range raw {
		sum += r
	}
	frac := make([]float64, n)
	used := 0
	for i, r := range raw {
		share := float64(total) / float64(n)
		if sum > 0 {
			share = float64(total) * r / sum
		}
		fl := math.Floor(share + 1e-12)
		out[i] = int(fl)
		frac[i] = share - fl
		used += int(fl)
	}
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(x, y int) bool { return frac[order[x]] > frac[order[y]] })
	for i := 0; i < total-used; i++ {
		out[order[i%n]]++
	}
	return out
}

// LocalPolicy is the local convergence approach (§5.4.1): each node sets
// ownership proportional to its workers' busy averages, floor one core.
type LocalPolicy struct{}

// Allocate computes the new ownership for every worker, node by node.
func (LocalPolicy) Allocate(p *Problem) (Allocation, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	alloc := make(Allocation, len(p.Workers))
	for _, n := range p.Nodes {
		var keys []WorkerKey
		var raw []float64
		totalBusy := 0.0
		for _, w := range p.Workers {
			if w.Key.Node != n.ID {
				continue
			}
			keys = append(keys, w.Key)
			b := w.Busy
			if w.Home {
				// An idle node gives its cores to home workers rather
				// than helpers; the epsilon only matters when every
				// worker on the node is idle.
				b += 1e-6
			}
			raw = append(raw, b)
			totalBusy += b
		}
		if len(keys) == 0 {
			continue
		}
		shares := largestRemainder(raw, n.Cores)
		for i, k := range keys {
			alloc[k] = shares[i]
		}
	}
	if err := p.checkAllocation(alloc); err != nil {
		return nil, err
	}
	return alloc, nil
}
