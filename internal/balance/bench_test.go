package balance

import (
	"math/rand"
	"testing"
)

// benchProblem builds a 64-node, degree-4 allocation problem.
func benchProblem(seed int64) *Problem {
	rng := rand.New(rand.NewSource(seed))
	const nodes = 64
	p := &Problem{}
	for n := 0; n < nodes; n++ {
		p.Nodes = append(p.Nodes, NodeInfo{ID: n, Cores: 48})
	}
	for a := 0; a < nodes; a++ {
		p.Workers = append(p.Workers, WorkerLoad{
			Key: WorkerKey{a, a}, Busy: rng.Float64() * 96, Home: true,
		})
		for k := 1; k < 4; k++ {
			p.Workers = append(p.Workers, WorkerLoad{
				Key: WorkerKey{a, (a + k*7) % nodes}, Busy: rng.Float64(),
			})
		}
	}
	return p
}

// BenchmarkGlobalFlow measures the bisection + min-cost-flow solver at
// the paper's largest configuration (the paper's CVXOPT solve: ~57ms).
func BenchmarkGlobalFlow(b *testing.B) {
	p := benchProblem(1)
	pol := GlobalPolicy{Incentive: 1e-6}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := pol.Allocate(p); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGlobalSimplex measures the same solve through the simplex.
func BenchmarkGlobalSimplex(b *testing.B) {
	p := benchProblem(1)
	pol := GlobalPolicy{Incentive: 1e-6, UseSimplex: true}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := pol.Allocate(p); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLocalPolicy measures the per-node proportional allocation.
func BenchmarkLocalPolicy(b *testing.B) {
	p := benchProblem(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := (LocalPolicy{}).Allocate(p); err != nil {
			b.Fatal(err)
		}
	}
}
