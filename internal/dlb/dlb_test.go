package dlb

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"ompsscluster/internal/simtime"
)

func newArb(cores int, lewi bool, owned ...int) (*NodeArbiter, []WorkerID) {
	a := NewNodeArbiter(0, cores, lewi)
	ids := make([]WorkerID, len(owned))
	for i := range owned {
		ids[i] = a.AddWorker()
	}
	a.SetOwned(owned)
	return a, ids
}

func TestOwnershipAccessors(t *testing.T) {
	a, ids := newArb(8, false, 6, 1, 1)
	if a.Cores() != 8 || a.NumWorkers() != 3 {
		t.Fatal("basic accessors wrong")
	}
	if a.Owned(ids[0]) != 6 || a.Owned(ids[2]) != 1 {
		t.Fatal("ownership wrong")
	}
	all := a.OwnedAll()
	if len(all) != 3 || all[0] != 6 {
		t.Fatalf("OwnedAll = %v", all)
	}
}

func TestSetOwnedValidation(t *testing.T) {
	a := NewNodeArbiter(0, 4, false)
	a.AddWorker()
	a.AddWorker()
	for _, bad := range [][]int{
		{3},       // wrong length
		{5, 0},    // sums above cores
		{1, 1},    // sums below cores
		{-1, 5},   // negative
		{2, 2, 0}, // wrong length
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("SetOwned(%v) did not panic", bad)
				}
			}()
			a.SetOwned(bad)
		}()
	}
	a.SetOwned([]int{3, 1})
}

func TestOwnerStartWithinOwnership(t *testing.T) {
	a, ids := newArb(4, false, 3, 1)
	for i := 0; i < 3; i++ {
		if !a.CanStartOwned(ids[0]) {
			t.Fatalf("owner blocked at %d/3 running", i)
		}
		a.Start(ids[0], 0)
	}
	if a.CanStartOwned(ids[0]) {
		t.Fatal("owner allowed beyond ownership")
	}
	if a.CanBorrow(ids[0]) {
		t.Fatal("borrow allowed without LeWI")
	}
	if !a.CanStartOwned(ids[1]) {
		t.Fatal("second worker blocked despite owning a free core")
	}
}

func TestLeWIBorrowAndBoundaryReclaim(t *testing.T) {
	a, ids := newArb(4, true, 2, 2)
	// Worker 1 idle: worker 0 runs 2 owned and borrows 2.
	now := simtime.Time(0)
	for i := 0; i < 2; i++ {
		a.Start(ids[0], now)
	}
	if !a.CanBorrow(ids[0]) {
		t.Fatal("borrow denied with idle cores")
	}
	a.Start(ids[0], now)
	a.Start(ids[0], now)
	if a.TotalRunning() != 4 || a.IdleCores() != 0 {
		t.Fatal("node should be saturated")
	}
	// Owner 1 now has work: cannot start (no physical core) — the
	// reclaim must wait for a borrower's task boundary.
	if a.CanStartOwned(ids[1]) {
		t.Fatal("reclaim should not preempt")
	}
	// A borrower task finishes: the owner can now start.
	a.Finish(ids[0], 100)
	if !a.CanStartOwned(ids[1]) {
		t.Fatal("owner cannot start after borrower boundary")
	}
	a.Start(ids[1], 100)
	if err := a.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestDROMOwnershipShiftTakesEffectAtBoundaries(t *testing.T) {
	a, ids := newArb(4, false, 2, 2)
	a.Start(ids[0], 0)
	a.Start(ids[0], 0)
	// DROM shifts a core from worker 0 to worker 1 while 0 is running 2.
	a.SetOwned([]int{1, 3})
	// Worker 0 is now over-ownership (running 2 > owned 1) but keeps its
	// running tasks (non-preemptive).
	if a.Running(ids[0]) != 2 {
		t.Fatal("running tasks must not be preempted")
	}
	// Worker 0 may not start more; worker 1 may use the free cores.
	if a.CanStartOwned(ids[0]) {
		t.Fatal("over-ownership worker allowed to start")
	}
	if !a.CanStartOwned(ids[1]) {
		t.Fatal("new owner cannot start")
	}
	a.Start(ids[1], 0)
	a.Start(ids[1], 0)
	// Node is saturated (2+2); worker 1 still under ownership (2 < 3)
	// but must wait for worker 0's boundary.
	if a.CanStartOwned(ids[1]) {
		t.Fatal("no physical core free")
	}
	a.Finish(ids[0], 50)
	if !a.CanStartOwned(ids[1]) {
		t.Fatal("reclaim after boundary failed")
	}
}

func TestStartPanicsWhenOversubscribed(t *testing.T) {
	a, ids := newArb(1, true, 1)
	a.Start(ids[0], 0)
	defer func() {
		if recover() == nil {
			t.Error("oversubscription did not panic")
		}
	}()
	a.Start(ids[0], 0)
}

func TestFinishPanicsWhenIdle(t *testing.T) {
	a, ids := newArb(1, true, 1)
	defer func() {
		if recover() == nil {
			t.Error("finish on idle worker did not panic")
		}
	}()
	a.Finish(ids[0], 0)
}

func TestBusyIntegralAndAverages(t *testing.T) {
	a, ids := newArb(4, false, 4)
	sec := simtime.Time(simtime.Second)
	a.Start(ids[0], 0)      // 1 core from t=0
	a.Start(ids[0], sec)    // 2 cores from t=1s
	a.Finish(ids[0], 3*sec) // 1 core from t=3s
	// Integral at 4s: 1*1 + 2*2 + 1*1 = 6 core-seconds.
	got := a.BusyIntegral(ids[0], 4*sec) / float64(simtime.Second)
	if math.Abs(got-6) > 1e-9 {
		t.Fatalf("busy integral = %v core-s, want 6", got)
	}
	// Average over [0, 4s] = 1.5 busy cores.
	avg := a.TakeBusyAverage(ids[0], 4*sec)
	if math.Abs(avg-1.5) > 1e-9 {
		t.Fatalf("busy average = %v, want 1.5", avg)
	}
	// The window restarted: over (4s, 6s] with 1 running core, avg = 1.
	avg = a.TakeBusyAverage(ids[0], 6*sec)
	if math.Abs(avg-1.0) > 1e-9 {
		t.Fatalf("second window average = %v, want 1.0", avg)
	}
}

func TestPeekDoesNotResetWindow(t *testing.T) {
	a, ids := newArb(2, false, 2)
	sec := simtime.Time(simtime.Second)
	a.Start(ids[0], 0)
	p1 := a.PeekBusyAverage(ids[0], 2*sec)
	p2 := a.TakeBusyAverage(ids[0], 2*sec)
	if math.Abs(p1-p2) > 1e-9 || math.Abs(p1-1.0) > 1e-9 {
		t.Fatalf("peek = %v, take = %v, want both 1.0", p1, p2)
	}
}

func TestNodeBusyAverage(t *testing.T) {
	a, ids := newArb(4, false, 2, 2)
	sec := simtime.Time(simtime.Second)
	a.Start(ids[0], 0)
	a.Start(ids[1], 0)
	a.Start(ids[1], 0)
	got := a.NodeBusyAverage(2 * sec)
	if math.Abs(got-3.0) > 1e-9 {
		t.Fatalf("node busy average = %v, want 3.0", got)
	}
}

func TestTALPReport(t *testing.T) {
	talp := NewTALP()
	sec := float64(simtime.Second)
	talp.StartApp(0, 0)
	talp.StartApp(1, 0)
	talp.AddUseful(0, 8*sec) // 8 core-seconds useful
	talp.AddMPI(0, 1*sec)
	talp.AddUseful(1, 2*sec)
	rep := talp.Snapshot(simtime.Time(4*simtime.Second), map[int]float64{0: 4, 1: 4})
	if len(rep.Appranks) != 2 {
		t.Fatalf("report has %d appranks", len(rep.Appranks))
	}
	// Apprank 0: 8 core-s useful over 4s x 4 cores = 50%.
	if math.Abs(rep.Appranks[0].Efficiency-0.5) > 1e-9 {
		t.Fatalf("efficiency = %v, want 0.5", rep.Appranks[0].Efficiency)
	}
	if math.Abs(rep.Appranks[1].Efficiency-0.125) > 1e-9 {
		t.Fatalf("efficiency = %v, want 0.125", rep.Appranks[1].Efficiency)
	}
	s := rep.String()
	if !strings.Contains(s, "50.0%") || !strings.Contains(s, "apprank") {
		t.Fatalf("report rendering wrong:\n%s", s)
	}
}

// Property: under random start/finish/SetOwned storms, invariants hold and
// the busy integral is non-decreasing.
func TestQuickArbiterInvariants(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		cores := 2 + rng.Intn(7)
		nw := 1 + rng.Intn(4)
		a := NewNodeArbiter(0, cores, rng.Intn(2) == 0)
		ids := make([]WorkerID, nw)
		for i := range ids {
			ids[i] = a.AddWorker()
		}
		owned := make([]int, nw)
		left := cores
		for i := 0; i < nw-1; i++ {
			owned[i] = rng.Intn(left + 1)
			left -= owned[i]
		}
		owned[nw-1] = left
		a.SetOwned(owned)
		now := simtime.Time(0)
		lastIntegral := 0.0
		for step := 0; step < 200; step++ {
			now += simtime.Time(rng.Intn(1000) + 1)
			w := ids[rng.Intn(nw)]
			switch rng.Intn(3) {
			case 0:
				if a.CanStartOwned(w) || a.CanBorrow(w) {
					a.Start(w, now)
				}
			case 1:
				if a.Running(w) > 0 {
					a.Finish(w, now)
				}
			case 2:
				// Random DROM shuffle.
				left := cores
				for i := 0; i < nw-1; i++ {
					owned[i] = rng.Intn(left + 1)
					left -= owned[i]
				}
				owned[nw-1] = left
				a.SetOwned(owned)
			}
			if a.CheckInvariants() != nil {
				return false
			}
			total := 0.0
			for _, id := range ids {
				total += a.BusyIntegral(id, now)
			}
			if total < lastIntegral-1e-6 {
				return false
			}
			lastIntegral = total
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
