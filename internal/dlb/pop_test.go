package dlb

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"ompsscluster/internal/simtime"
)

const sec = 1e9 // ns per second, matching the POP input unit

func TestComputePOPIdentity(t *testing.T) {
	in := POPInput{
		Elapsed: 100 * sec,
		Appranks: []POPEntityInput{
			{ID: 0, Useful: 50 * sec, Busy: 60 * sec, Capacity: 100 * sec},
			{ID: 1, Useful: 90 * sec, Busy: 95 * sec, Capacity: 100 * sec, Borrowed: 5 * sec},
			{ID: 2, Useful: 30 * sec, Busy: 40 * sec, Capacity: 100 * sec},
		},
		Nodes: []POPEntityInput{
			{ID: 0, Useful: 170 * sec, Busy: 195 * sec, Capacity: 300 * sec, Borrowed: 5 * sec},
		},
	}
	r := ComputePOP(in)

	wantPE := (0.5 + 0.9 + 0.3) / 3
	if math.Abs(r.ApprankPOP.PE-wantPE) > 1e-12 {
		t.Errorf("apprank PE = %v, want %v", r.ApprankPOP.PE, wantPE)
	}
	if math.Abs(r.ApprankPOP.CommE-0.9) > 1e-12 {
		t.Errorf("apprank CommE = %v, want 0.9", r.ApprankPOP.CommE)
	}
	// LB is defined as PE/CommE, so the decomposition holds exactly.
	for _, s := range []POPSummary{r.ApprankPOP, r.NodePOP} {
		if got := s.LB * s.CommE; math.Abs(got-s.PE) > 1e-15 {
			t.Errorf("PE = %v but LB x CommE = %v", s.PE, got)
		}
		if s.LB < 0 || s.LB > 1+1e-12 {
			t.Errorf("LB out of range: %v", s.LB)
		}
	}
	// LentUtil: idle = capacity - busy per entity: 40 + 5 + 60 = 105 idle
	// core-s, 5 borrowed, so borrowers filled 5 of the 110 owner-unused.
	wantLent := 5.0 / 110.0
	if math.Abs(r.ApprankPOP.LentUtil-wantLent) > 1e-12 {
		t.Errorf("LentUtil = %v, want %v", r.ApprankPOP.LentUtil, wantLent)
	}
	if got := r.Appranks[1].Idle; math.Abs(got-5) > 1e-9 {
		t.Errorf("apprank 1 idle = %v core-s, want 5", got)
	}
}

func TestComputePOPIdleClamp(t *testing.T) {
	// Owned-busy above capacity (e.g. a mid-window DROM shrink) must not
	// produce negative idle.
	r := ComputePOP(POPInput{
		Elapsed:  10 * sec,
		Appranks: []POPEntityInput{{ID: 0, Useful: 11 * sec, Busy: 12 * sec, Capacity: 10 * sec}},
	})
	if r.Appranks[0].Idle != 0 {
		t.Errorf("idle = %v, want clamp to 0", r.Appranks[0].Idle)
	}
}

func TestComputePOPEmpty(t *testing.T) {
	r := ComputePOP(POPInput{Elapsed: 10 * sec, Window: 1 * sec})
	if r.ApprankPOP != (POPSummary{}) || r.NodePOP != (POPSummary{}) {
		t.Errorf("empty input produced nonzero summaries: %+v %+v", r.ApprankPOP, r.NodePOP)
	}
	// Zero-capacity entities must not divide by zero.
	r = ComputePOP(POPInput{
		Elapsed:  0,
		Appranks: []POPEntityInput{{ID: 0}},
		Nodes:    []POPEntityInput{{ID: 0}},
	})
	if r.Appranks[0].Utilisation != 0 || r.Nodes[0].AvgCores != 0 {
		t.Errorf("zero-capacity entity: %+v", r.Appranks[0])
	}
	if len(r.Windows) != 0 {
		t.Errorf("zero elapsed grew %d windows", len(r.Windows))
	}
}

func TestComputePOPWindows(t *testing.T) {
	in := POPInput{
		Elapsed: 25 * sec,
		Window:  10 * sec,
		Nodes: []POPEntityInput{
			// avgCores = 2: 50 capacity core-s over 25 s.
			{ID: 0, Capacity: 50 * sec, WinUseful: []float64{20 * sec, 10 * sec, 5 * sec}},
			{ID: 1, Capacity: 50 * sec, WinUseful: []float64{10 * sec}},
		},
	}
	r := ComputePOP(in)
	if len(r.Windows) != 3 {
		t.Fatalf("got %d windows, want 3", len(r.Windows))
	}
	// Window 0: full width 10 s, node utilisations 20/(2*10)=1.0 and 0.5.
	w := r.Windows[0]
	if math.Abs(w.NodePE[0]-1.0) > 1e-12 || math.Abs(w.NodePE[1]-0.5) > 1e-12 {
		t.Errorf("window 0 node PE = %v", w.NodePE)
	}
	if math.Abs(w.PE-0.75) > 1e-12 || math.Abs(w.CommE-1.0) > 1e-12 {
		t.Errorf("window 0 PE/CommE = %v/%v", w.PE, w.CommE)
	}
	// Window 2 is truncated at the run end: width 5 s, so node 0 has
	// 5/(2*5) = 0.5; node 1's ragged series has ended.
	w = r.Windows[2]
	if math.Abs(w.End-25) > 1e-12 {
		t.Errorf("window 2 end = %v s, want 25", w.End)
	}
	if math.Abs(w.NodePE[0]-0.5) > 1e-12 || w.NodePE[1] != 0 {
		t.Errorf("window 2 node PE = %v", w.NodePE)
	}
	for _, w := range r.Windows {
		if w.CommE > 0 && math.Abs(w.LB*w.CommE-w.PE) > 1e-15 {
			t.Errorf("window [%v,%v): PE %v != LB x CommE %v", w.Start, w.End, w.PE, w.LB*w.CommE)
		}
	}
}

func TestPOPWriteJSONDeterministic(t *testing.T) {
	in := POPInput{
		Elapsed: 25 * sec,
		Window:  10 * sec,
		Appranks: []POPEntityInput{
			{ID: 0, Useful: 30 * sec, Busy: 35 * sec, Capacity: 50 * sec, Tasks: 7, MPIOps: 3, DeclaredWork: 29 * sec},
			{ID: 1, Useful: 10 * sec, Busy: 12 * sec, Capacity: 50 * sec, Borrowed: 2 * sec, Tasks: 4},
		},
		Nodes: []POPEntityInput{
			{ID: 0, Useful: 40 * sec, Busy: 47 * sec, Capacity: 100 * sec, Borrowed: 2 * sec,
				WinUseful: []float64{20 * sec, 15 * sec, 5 * sec}},
		},
	}
	var a, b bytes.Buffer
	if err := ComputePOP(in).WriteJSON(&a); err != nil {
		t.Fatal(err)
	}
	if err := ComputePOP(in).WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("two renders of the same input differ")
	}
	s := a.String()
	for _, key := range []string{
		`"elapsed_seconds"`, `"window_seconds"`, `"appranks"`, `"nodes"`,
		`"apprank_pop"`, `"node_pop"`, `"windows"`, `"useful_core_s"`,
		`"borrowed_core_s"`, `"lent_utilisation"`, `"node_pe"`, `"declared_work_s"`,
		`"mpi_ops"`,
	} {
		if !strings.Contains(s, key) {
			t.Errorf("JSON missing key %s:\n%s", key, s)
		}
	}
	if strings.Count(s, `"start_s"`) != 3 {
		t.Errorf("want 3 windows in JSON:\n%s", s)
	}
}

func TestAddWindowedSplit(t *testing.T) {
	// Span [5, 25) over 10-wide windows: overlap 5/10/5 of span 20.
	wins := addWindowed(nil, 10, 5, 25, 100)
	want := []float64{25, 50, 25}
	if len(wins) != len(want) {
		t.Fatalf("got %v, want %v", wins, want)
	}
	var sum float64
	for i := range want {
		if math.Abs(wins[i]-want[i]) > 1e-9 {
			t.Errorf("window %d = %v, want %v", i, wins[i], want[i])
		}
		sum += wins[i]
	}
	if math.Abs(sum-100) > 1e-9 {
		t.Errorf("split does not conserve the amount: %v", sum)
	}
}

func TestAddWindowedBoundary(t *testing.T) {
	// [start, end) half-open: a span ending exactly on a boundary stays
	// entirely below it.
	wins := addWindowed(nil, 10, 0, 10, 40)
	if len(wins) != 1 || wins[0] != 40 {
		t.Errorf("boundary span: got %v, want [40]", wins)
	}
	wins = addWindowed(wins, 10, 10, 20, 7)
	if len(wins) != 2 || wins[1] != 7 {
		t.Errorf("second window: got %v", wins)
	}
}

func TestAddWindowedZeroSpan(t *testing.T) {
	wins := addWindowed(nil, 10, 30, 30, 7)
	if len(wins) != 4 || wins[3] != 7 {
		t.Errorf("zero-length span: got %v, want it attributed to window 3", wins)
	}
}

func TestAddExecWindowedConserves(t *testing.T) {
	talp := NewTALP()
	talp.Preallocate([]int{0}, 2)
	talp.SetWindow(10)
	talp.AddExec(0, 1, 5, 25, 100, 4, false)
	talp.AddExec(0, 1, 20, 30, 50, 2, true)
	var sum float64
	for _, v := range talp.WindowUseful(0, 1) {
		sum += v
	}
	c := talp.Cell(0, 1)
	if math.Abs(sum-c.Useful) > 1e-9 {
		t.Errorf("windowed useful %v != cell useful %v", sum, c.Useful)
	}
	if c.Borrowed != 52 {
		t.Errorf("borrowed = %v, want 52", c.Borrowed)
	}
}

// TestAddExecZeroAlloc pins the accounting hot path: with windows off
// (the default), reporting a task execution must not allocate.
func TestAddExecZeroAlloc(t *testing.T) {
	talp := NewTALP()
	talp.Preallocate([]int{0, 1}, 4)
	if allocs := testing.AllocsPerRun(200, func() {
		talp.AddExec(1, 3, 0, 10, 8, 1, false)
	}); allocs != 0 {
		t.Errorf("AddExec allocates %v objects/op, want 0", allocs)
	}
}

func BenchmarkAddExec(b *testing.B) {
	talp := NewTALP()
	talp.Preallocate([]int{0, 1, 2, 3}, 4)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		talp.AddExec(i&3, i&3, simtime.Time(i), simtime.Time(i+10), 8, 1, i&1 == 0)
	}
}
