package dlb

import (
	"fmt"
	"io"
	"strconv"
	"strings"

	"ompsscluster/internal/simtime"
)

// POP efficiency model. The POP centre of excellence decomposes Parallel
// Efficiency multiplicatively:
//
//	PE = LB x CommE
//
// Here each entity i (an apprank or a node) gets a utilisation
//
//	u_i = useful_i / capacity_i
//
// where capacity is the entity's allotted core-time over the run: owned
// plus LeWI-borrowed for appranks (so utilisation stays bounded by 1
// when DLB runs an apprank far above its static allocation), physical
// for nodes. Then
//
//	PE    = mean_i(u_i)         (parallel efficiency)
//	CommE = max_i(u_i)          (communication efficiency: the best
//	                             entity's losses to MPI/runtime/idle)
//	LB    = PE / CommE          (load balance: mean over max)
//
// LB is defined as the quotient, so PE = LB x CommE holds by
// construction (the classic mean-over-max load-balance metric). The DLB
// extension is lent-core utilisation: of the core-time owners left
// unused, the fraction LeWI borrowers actually filled,
//
//	lentUtil = borrowed / (borrowed + idle).
//
// All inputs are integrals over the run accumulated in a fixed
// per-(apprank, node) cell order, so a report is byte-identical across
// simulation engines and worker counts.

// POPEntityInput is one entity's raw integrals (core-nanoseconds unless
// noted) handed to ComputePOP by the runtime.
type POPEntityInput struct {
	ID           int
	Useful       float64 // task compute core-time
	Overhead     float64 // runtime overhead core-time
	MPI          float64 // main-process time inside MPI (ns)
	Borrowed     float64 // busy core-time above ownership (LeWI)
	Busy         float64 // total busy core-time
	Capacity     float64 // allotted core-time: owned+borrowed (apprank) or physical (node)
	Tasks        int64
	MPIOps       int64   // blocking MPI operations entered
	DeclaredWork float64 // submitted task work before speed/overhead (ns)
	WinUseful    []float64
}

// POPInput is the full set of integrals for one run.
type POPInput struct {
	Elapsed  float64 // run elapsed virtual time (ns)
	Window   float64 // series window width (ns); 0 disables the series
	Appranks []POPEntityInput
	Nodes    []POPEntityInput
}

// POPEntity is the reported per-entity breakdown, in (core-)seconds.
type POPEntity struct {
	ID           int
	Useful       float64 // core-s of task compute
	Overhead     float64 // core-s of runtime overhead
	MPI          float64 // s inside MPI
	Idle         float64 // core-s of capacity left unoccupied
	Borrowed     float64 // core-s run on borrowed cores
	Capacity     float64 // core-s allotted: owned+borrowed (apprank) / physical (node)
	AvgCores     float64 // Capacity / Elapsed
	Utilisation  float64 // Useful / Capacity
	Tasks        int64
	MPIOps       int64
	DeclaredWork float64 // s of submitted task work
}

// POPSummary is one PE = LB x CommE decomposition.
type POPSummary struct {
	PE       float64
	LB       float64
	CommE    float64
	LentUtil float64
}

// POPWindow is one time window of the cluster-level series, computed
// over nodes.
type POPWindow struct {
	Start  float64 // s
	End    float64 // s
	PE     float64
	LB     float64
	CommE  float64
	NodePE []float64 // per-node utilisation in the window
}

// POPReport is the full POP efficiency report for one run.
type POPReport struct {
	Elapsed    simtime.Duration
	Window     simtime.Duration
	Appranks   []POPEntity
	Nodes      []POPEntity
	ApprankPOP POPSummary // decomposition over appranks
	NodePOP    POPSummary // decomposition over nodes
	Windows    []POPWindow
}

const nsPerSec = 1e9

// ComputePOP derives the report from the raw integrals.
func ComputePOP(in POPInput) *POPReport {
	r := &POPReport{
		Elapsed: simtime.Duration(in.Elapsed),
		Window:  simtime.Duration(in.Window),
	}
	r.Appranks, r.ApprankPOP = popEntities(in.Appranks, in.Elapsed)
	r.Nodes, r.NodePOP = popEntities(in.Nodes, in.Elapsed)
	if in.Window > 0 && in.Elapsed > 0 {
		r.Windows = popWindows(in)
	}
	return r
}

func popEntities(ins []POPEntityInput, elapsed float64) ([]POPEntity, POPSummary) {
	ents := make([]POPEntity, len(ins))
	var sumU, maxU, sumBorrowed, sumIdle float64
	for i, e := range ins {
		idle := e.Capacity - e.Busy
		if idle < 0 {
			idle = 0
		}
		u := 0.0
		if e.Capacity > 0 {
			u = e.Useful / e.Capacity
		}
		avg := 0.0
		if elapsed > 0 {
			avg = e.Capacity / elapsed
		}
		ents[i] = POPEntity{
			ID:           e.ID,
			Useful:       e.Useful / nsPerSec,
			Overhead:     e.Overhead / nsPerSec,
			MPI:          e.MPI / nsPerSec,
			Idle:         idle / nsPerSec,
			Borrowed:     e.Borrowed / nsPerSec,
			Capacity:     e.Capacity / nsPerSec,
			AvgCores:     avg,
			Utilisation:  u,
			Tasks:        e.Tasks,
			MPIOps:       e.MPIOps,
			DeclaredWork: e.DeclaredWork / nsPerSec,
		}
		sumU += u
		if u > maxU {
			maxU = u
		}
		sumBorrowed += e.Borrowed
		sumIdle += idle
	}
	var s POPSummary
	if n := len(ins); n > 0 && maxU > 0 {
		s.PE = sumU / float64(n)
		s.CommE = maxU
		s.LB = s.PE / s.CommE
	}
	if d := sumBorrowed + sumIdle; d > 0 {
		s.LentUtil = sumBorrowed / d
	}
	return ents, s
}

// popWindows builds the cluster series over nodes. Each node's window
// utilisation normalises its windowed useful core-time by its average
// core count (static capacity spread uniformly; fault-shrunk capacity
// is averaged rather than tracked per window — documented in DESIGN
// §13) times the window width, with the final window truncated at the
// run end.
func popWindows(in POPInput) []POPWindow {
	nwin := int((in.Elapsed + in.Window - 1) / in.Window)
	for _, n := range in.Nodes {
		if len(n.WinUseful) > nwin {
			nwin = len(n.WinUseful)
		}
	}
	wins := make([]POPWindow, nwin)
	for w := range wins {
		start := float64(w) * in.Window
		end := start + in.Window
		if end > in.Elapsed {
			end = in.Elapsed
		}
		width := end - start
		var sumU, maxU float64
		nodePE := make([]float64, len(in.Nodes))
		for i, n := range in.Nodes {
			avgCores := 0.0
			if in.Elapsed > 0 {
				avgCores = n.Capacity / in.Elapsed
			}
			u := 0.0
			if w < len(n.WinUseful) && avgCores > 0 && width > 0 {
				u = n.WinUseful[w] / (avgCores * width)
			}
			nodePE[i] = u
			sumU += u
			if u > maxU {
				maxU = u
			}
		}
		pw := POPWindow{Start: start / nsPerSec, End: end / nsPerSec, NodePE: nodePE}
		if len(in.Nodes) > 0 && maxU > 0 {
			pw.PE = sumU / float64(len(in.Nodes))
			pw.CommE = maxU
			pw.LB = pw.PE / pw.CommE
		}
		wins[w] = pw
	}
	return wins
}

// WriteJSON serialises the report deterministically: fixed field order,
// floats rendered with strconv at 12 significant digits, no map
// iteration anywhere. Byte-identical across engines and -simworkers.
func (r *POPReport) WriteJSON(w io.Writer) error {
	var b []byte
	b = append(b, "{\n  \"elapsed_seconds\": "...)
	b = popF64(b, r.Elapsed.Seconds())
	b = append(b, ",\n  \"window_seconds\": "...)
	b = popF64(b, r.Window.Seconds())
	b = append(b, ",\n  \"appranks\": ["...)
	b = popEntitiesJSON(b, r.Appranks, false)
	b = append(b, "],\n  \"nodes\": ["...)
	b = popEntitiesJSON(b, r.Nodes, true)
	b = append(b, "],\n  \"apprank_pop\": "...)
	b = popSummaryJSON(b, r.ApprankPOP)
	b = append(b, ",\n  \"node_pop\": "...)
	b = popSummaryJSON(b, r.NodePOP)
	b = append(b, ",\n  \"windows\": ["...)
	for i, win := range r.Windows {
		if i > 0 {
			b = append(b, ',')
		}
		b = append(b, "\n    {\"start_s\": "...)
		b = popF64(b, win.Start)
		b = append(b, ", \"end_s\": "...)
		b = popF64(b, win.End)
		b = append(b, ", \"pe\": "...)
		b = popF64(b, win.PE)
		b = append(b, ", \"lb\": "...)
		b = popF64(b, win.LB)
		b = append(b, ", \"comm_e\": "...)
		b = popF64(b, win.CommE)
		b = append(b, ", \"node_pe\": ["...)
		for j, u := range win.NodePE {
			if j > 0 {
				b = append(b, ',')
			}
			b = popF64(b, u)
		}
		b = append(b, "]}"...)
	}
	if len(r.Windows) > 0 {
		b = append(b, "\n  "...)
	}
	b = append(b, "]\n}\n"...)
	_, err := w.Write(b)
	return err
}

func popEntitiesJSON(b []byte, ents []POPEntity, node bool) []byte {
	key := "\n    {\"id\": "
	for i, e := range ents {
		if i > 0 {
			b = append(b, ',')
		}
		b = append(b, key...)
		b = strconv.AppendInt(b, int64(e.ID), 10)
		b = popF64Field(b, "useful_core_s", e.Useful)
		b = popF64Field(b, "overhead_core_s", e.Overhead)
		b = popF64Field(b, "mpi_s", e.MPI)
		b = popF64Field(b, "idle_core_s", e.Idle)
		b = popF64Field(b, "borrowed_core_s", e.Borrowed)
		b = popF64Field(b, "capacity_core_s", e.Capacity)
		b = popF64Field(b, "avg_cores", e.AvgCores)
		b = popF64Field(b, "utilisation", e.Utilisation)
		b = append(b, ", \"tasks\": "...)
		b = strconv.AppendInt(b, e.Tasks, 10)
		b = append(b, ", \"mpi_ops\": "...)
		b = strconv.AppendInt(b, e.MPIOps, 10)
		b = popF64Field(b, "declared_work_s", e.DeclaredWork)
		b = append(b, '}')
	}
	if len(ents) > 0 {
		b = append(b, "\n  "...)
	}
	return b
}

func popSummaryJSON(b []byte, s POPSummary) []byte {
	b = append(b, "{\"pe\": "...)
	b = popF64(b, s.PE)
	b = append(b, ", \"lb\": "...)
	b = popF64(b, s.LB)
	b = append(b, ", \"comm_e\": "...)
	b = popF64(b, s.CommE)
	b = append(b, ", \"lent_utilisation\": "...)
	b = popF64(b, s.LentUtil)
	b = append(b, '}')
	return b
}

func popF64Field(b []byte, name string, v float64) []byte {
	b = append(b, ", \""...)
	b = append(b, name...)
	b = append(b, "\": "...)
	return popF64(b, v)
}

func popF64(b []byte, v float64) []byte {
	return strconv.AppendFloat(b, v, 'g', 12, 64)
}

// String renders the report as tables mirroring DLB's TALP output,
// extended with the POP decomposition lines.
func (r *POPReport) String() string {
	var s strings.Builder
	fmt.Fprintf(&s, "POP efficiency report (elapsed %v", r.Elapsed)
	if r.Window > 0 {
		fmt.Fprintf(&s, ", window %v", r.Window)
	}
	s.WriteString(")\n")
	popTable(&s, "apprank", r.Appranks)
	fmt.Fprintf(&s, "apprank POP: PE %5.1f%% = LB %5.1f%% x CommE %5.1f%%\n",
		100*r.ApprankPOP.PE, 100*r.ApprankPOP.LB, 100*r.ApprankPOP.CommE)
	popTable(&s, "node", r.Nodes)
	fmt.Fprintf(&s, "node POP:    PE %5.1f%% = LB %5.1f%% x CommE %5.1f%%  lent-core util %5.1f%%\n",
		100*r.NodePOP.PE, 100*r.NodePOP.LB, 100*r.NodePOP.CommE, 100*r.NodePOP.LentUtil)
	if len(r.Windows) > 0 {
		s.WriteString("window   start(s)  end(s)    PE      LB      CommE\n")
		for i, w := range r.Windows {
			fmt.Fprintf(&s, "%6d   %-8.3f  %-8.3f  %5.1f%%  %5.1f%%  %5.1f%%\n",
				i, w.Start, w.End, 100*w.PE, 100*w.LB, 100*w.CommE)
		}
	}
	return s.String()
}

func popTable(s *strings.Builder, kind string, ents []POPEntity) {
	fmt.Fprintf(s, "%7s  useful(c-s)  ovh(c-s)  mpi(s)    idle(c-s)  lent(c-s)  avgcores  util\n", kind)
	for _, e := range ents {
		fmt.Fprintf(s, "%7d  %-11.3f  %-8.3f  %-8.3f  %-9.3f  %-9.3f  %-8.2f  %5.1f%%\n",
			e.ID, e.Useful, e.Overhead, e.MPI, e.Idle, e.Borrowed, e.AvgCores, 100*e.Utilisation)
	}
}
