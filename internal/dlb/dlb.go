// Package dlb models the Dynamic Load Balancing library: per-node
// arbitration of CPU cores among the worker processes running on that
// node.
//
// Every core on a node is owned by exactly one worker (an apprank's main
// worker or a helper worker of a remote apprank). The arbiter enforces the
// paper's two mechanisms:
//
//   - LeWI (Lend When Idle, §5.3): a worker whose owned cores would
//     otherwise sit idle implicitly lends them; another worker with
//     runnable tasks may borrow any idle core. The owner reclaims at the
//     next task boundary — tasks are non-preemptive, so a reclaim takes
//     effect when the borrower's task finishes.
//
//   - DROM (Dynamic Resource Ownership Management, §5.4): ownership of
//     cores is reassigned at runtime via SetOwned; the running set adapts
//     at task boundaries.
//
// The arbiter also integrates per-worker busy-core time, which is the load
// measurement both allocation policies consume, and offers a TALP-style
// efficiency report.
//
// The arbiter holds no clock and schedules nothing; the distributed
// runtime (internal/core) calls it at task boundaries with the current
// virtual time.
package dlb

import (
	"fmt"

	"ompsscluster/internal/obs"
	"ompsscluster/internal/simtime"
)

// WorkerID identifies a worker registered with a NodeArbiter.
type WorkerID int

// workerState is the arbiter's view of one worker process.
type workerState struct {
	owned   int
	running int
	// busyIntegral accumulates running x elapsed in core-nanoseconds.
	busyIntegral float64
	lastUpdate   simtime.Time
	// markIntegral / markTime snapshot the integral for windowed
	// averages taken by the allocation policies.
	markIntegral float64
	markTime     simtime.Time
	// POP accounting integrals (core-nanoseconds), maintained only when
	// a clock is installed via SetClock. They use their own fold point
	// (popLast) so enabling POP cannot perturb busyIntegral's float
	// accumulation sequence, which feeds the allocation policies.
	ownedIntegral    float64 // owned x elapsed
	borrowedIntegral float64 // max(0, running-owned) x elapsed
	popLast          simtime.Time
}

// NodeArbiter arbitrates the cores of one node among its workers.
type NodeArbiter struct {
	node         int
	cores        int
	lewi         bool
	workers      []workerState
	totalRunning int
	// overbooked counts tasks still running on cores revoked by SetCores
	// (tasks are non-preemptive, so a core loss takes full effect only
	// as the running tasks drain at their boundaries).
	overbooked int
	obs        *obs.Recorder
	// clock timestamps ownership/capacity changes for the POP
	// integrals. Ownership changes arrive through SetOwned/SetCores/
	// Shutdown, which carry no time argument; a nil clock (the default)
	// disables the integrals entirely.
	clock       func() simtime.Time
	capIntegral float64 // cores x elapsed, core-nanoseconds
	capLast     simtime.Time
}

// SetObs attaches the structured event recorder. Ownership changes and
// LeWI borrow/return transitions are emitted through it; a nil recorder
// (the default) costs nothing.
func (a *NodeArbiter) SetObs(rec *obs.Recorder) { a.obs = rec }

// SetClock installs a virtual-time source and enables the POP
// accounting integrals (owned, borrowed, and capacity core-time). The
// arbiter itself holds no clock; ownership mutations (SetOwned,
// SetCores, Shutdown) carry no time argument because the legacy API
// treats them as instantaneous, so the POP integrals read the runtime's
// context clock at those boundaries instead. Under the partitioned
// engine the context clock is max(partition, global) time, which is
// exactly the mutation's event time in both barrier and partition
// contexts — the integral fold points are therefore identical across
// engines.
func (a *NodeArbiter) SetClock(fn func() simtime.Time) { a.clock = fn }

// NewNodeArbiter creates an arbiter for a node with the given core count.
// lewi enables borrowing of idle cores.
func NewNodeArbiter(node, cores int, lewi bool) *NodeArbiter {
	if cores <= 0 {
		panic(fmt.Sprintf("dlb: node %d with %d cores", node, cores))
	}
	return &NodeArbiter{node: node, cores: cores, lewi: lewi}
}

// Node returns the node id.
func (a *NodeArbiter) Node() int { return a.node }

// Cores returns the number of physical cores on the node.
func (a *NodeArbiter) Cores() int { return a.cores }

// LeWIEnabled reports whether borrowing is enabled.
func (a *NodeArbiter) LeWIEnabled() bool { return a.lewi }

// NumWorkers returns the number of registered workers.
func (a *NodeArbiter) NumWorkers() int { return len(a.workers) }

// AddWorker registers a worker with zero initial ownership; call SetOwned
// once all workers are registered.
func (a *NodeArbiter) AddWorker() WorkerID {
	a.workers = append(a.workers, workerState{})
	return WorkerID(len(a.workers) - 1)
}

// SetOwned installs a DROM ownership assignment. The values must be
// non-negative and sum to the node's core count; every worker should own
// at least one core under the paper's policies, but the arbiter does not
// enforce that (the policies do).
func (a *NodeArbiter) SetOwned(owned []int) {
	if len(owned) != len(a.workers) {
		panic(fmt.Sprintf("dlb: SetOwned with %d entries for %d workers", len(owned), len(a.workers)))
	}
	sum := 0
	for _, o := range owned {
		if o < 0 {
			panic(fmt.Sprintf("dlb: negative ownership %d", o))
		}
		sum += o
	}
	if sum != a.cores {
		panic(fmt.Sprintf("dlb: ownership sums to %d, node has %d cores", sum, a.cores))
	}
	if a.clock != nil {
		a.popSyncAll(a.clock())
	}
	for i := range a.workers {
		old := a.workers[i].owned
		a.workers[i].owned = owned[i]
		a.obs.OwnershipSet(a.node, i, old, owned[i])
	}
}

// SetCores shrinks the node's physical core count after a fault removes
// cores (growth is not modelled). Tasks already running on revoked
// cores are not preempted; they are accounted as overbooked and the
// excess drains at task boundaries (Finish). The caller must follow up
// with SetOwned so ownership sums to the new core count.
func (a *NodeArbiter) SetCores(cores int) {
	if cores < 0 || cores > a.cores {
		panic(fmt.Sprintf("dlb: SetCores %d on node %d with %d cores (shrink only)", cores, a.node, a.cores))
	}
	if a.clock != nil {
		a.capSync(a.clock())
	}
	a.cores = cores
	if over := a.totalRunning - a.cores; over > a.overbooked {
		a.overbooked = over
	}
}

// Shutdown retires the node entirely: zero cores, zero ownership. The
// caller must have drained all running tasks first. A dead node's
// invariants hold trivially (sums of zero), so fleet-wide checks need
// no special case.
func (a *NodeArbiter) Shutdown() {
	if a.totalRunning != 0 {
		panic(fmt.Sprintf("dlb: shutdown of node %d with %d tasks running", a.node, a.totalRunning))
	}
	if a.clock != nil {
		now := a.clock()
		a.popSyncAll(now)
		a.capSync(now)
	}
	a.cores = 0
	a.overbooked = 0
	for i := range a.workers {
		old := a.workers[i].owned
		a.workers[i].owned = 0
		a.obs.OwnershipSet(a.node, i, old, 0)
	}
}

// EmitOwnership re-emits the current ownership of every worker as OwnSet
// events (old == new). The runtime calls it when the worker set changes
// without a reassignment — e.g. a dynamically grown helper joining with
// zero cores — so ownership timelines gain a sample for the new worker.
func (a *NodeArbiter) EmitOwnership() {
	if a.obs == nil {
		return
	}
	for i := range a.workers {
		a.obs.OwnershipSet(a.node, i, a.workers[i].owned, a.workers[i].owned)
	}
}

// Owned returns the cores currently owned by w.
func (a *NodeArbiter) Owned(w WorkerID) int { return a.workers[w].owned }

// OwnedAll returns a copy of the ownership vector.
func (a *NodeArbiter) OwnedAll() []int {
	out := make([]int, len(a.workers))
	for i := range a.workers {
		out[i] = a.workers[i].owned
	}
	return out
}

// Running returns the cores currently executing tasks of w.
func (a *NodeArbiter) Running(w WorkerID) int { return a.workers[w].running }

// TotalRunning returns the number of busy cores on the node.
func (a *NodeArbiter) TotalRunning() int { return a.totalRunning }

// IdleCores returns the number of idle cores on the node (zero while
// revoked cores are still draining their last tasks).
func (a *NodeArbiter) IdleCores() int {
	if idle := a.cores - a.totalRunning; idle > 0 {
		return idle
	}
	return 0
}

// CanStartOwned reports whether w may start a task on a core it owns: it
// is below its ownership and a physical core is free. (If it is below its
// ownership but all cores are busy, some other worker is over-borrowing;
// the reclaim happens at that worker's next task boundary.)
func (a *NodeArbiter) CanStartOwned(w WorkerID) bool {
	return a.workers[w].running < a.workers[w].owned && a.totalRunning < a.cores
}

// CanBorrow reports whether w may start a task on a borrowed core under
// LeWI: borrowing is enabled and a physical core is idle. An idle core's
// owner by definition has nothing to run, which is exactly the LeWI
// lending condition.
func (a *NodeArbiter) CanBorrow(w WorkerID) bool {
	return a.lewi && a.totalRunning < a.cores
}

// Start accounts a task start for w at virtual time now. The caller must
// have checked CanStartOwned or CanBorrow.
func (a *NodeArbiter) Start(w WorkerID, now simtime.Time) {
	if a.totalRunning >= a.cores {
		panic(fmt.Sprintf("dlb: node %d oversubscribed", a.node))
	}
	a.accumulate(w, now)
	if a.clock != nil {
		a.popSync(w, now)
	}
	a.workers[w].running++
	a.totalRunning++
	if ws := &a.workers[w]; ws.running > ws.owned {
		a.obs.CoreBorrow(a.node, int(w), ws.running)
	}
}

// Finish accounts a task completion for w at virtual time now.
func (a *NodeArbiter) Finish(w WorkerID, now simtime.Time) {
	if a.workers[w].running <= 0 {
		panic(fmt.Sprintf("dlb: node %d worker %d finish with nothing running", a.node, w))
	}
	a.accumulate(w, now)
	if a.clock != nil {
		a.popSync(w, now)
	}
	borrowed := a.workers[w].running > a.workers[w].owned
	a.workers[w].running--
	a.totalRunning--
	if a.overbooked > 0 {
		// A revoked core just freed up; the overbooking debt shrinks
		// toward whatever excess remains.
		if over := a.totalRunning - a.cores; over < 0 {
			a.overbooked = 0
		} else if over < a.overbooked {
			a.overbooked = over
		}
	}
	if borrowed {
		a.obs.CoreReturn(a.node, int(w), a.workers[w].running)
	}
}

// accumulate folds the busy integral forward to now.
func (a *NodeArbiter) accumulate(w WorkerID, now simtime.Time) {
	ws := &a.workers[w]
	if now > ws.lastUpdate {
		ws.busyIntegral += float64(ws.running) * float64(now-ws.lastUpdate)
		ws.lastUpdate = now
	}
}

// popSync folds w's POP integrals forward to now. Every fold point is a
// worker-local task boundary or a globally-timed ownership change, so
// the (dt, owned, running) sequence — and therefore the float sums —
// are identical across simulation engines.
func (a *NodeArbiter) popSync(w WorkerID, now simtime.Time) {
	ws := &a.workers[w]
	if now > ws.popLast {
		dt := float64(now - ws.popLast)
		ws.ownedIntegral += float64(ws.owned) * dt
		if b := ws.running - ws.owned; b > 0 {
			ws.borrowedIntegral += float64(b) * dt
		}
		ws.popLast = now
	}
}

// popSyncAll folds every worker's POP integrals to now (ownership is
// about to change for all of them).
func (a *NodeArbiter) popSyncAll(now simtime.Time) {
	for i := range a.workers {
		a.popSync(WorkerID(i), now)
	}
}

// capSync folds the node capacity integral to now.
func (a *NodeArbiter) capSync(now simtime.Time) {
	if now > a.capLast {
		a.capIntegral += float64(a.cores) * float64(now-a.capLast)
		a.capLast = now
	}
}

// WorkerPOP is the per-worker core-time breakdown (core-nanoseconds up
// to the fold time) used by the POP report builder.
type WorkerPOP struct {
	Busy     float64 // running cores x time
	Owned    float64 // owned cores x time
	Borrowed float64 // cores running above ownership x time
}

// WorkerPOPTotals folds w's integrals to now and returns them. Requires
// SetClock to have been active for the whole run; otherwise the owned
// and borrowed integrals are zero.
func (a *NodeArbiter) WorkerPOPTotals(w WorkerID, now simtime.Time) WorkerPOP {
	a.accumulate(w, now)
	a.popSync(w, now)
	ws := &a.workers[w]
	return WorkerPOP{Busy: ws.busyIntegral, Owned: ws.ownedIntegral, Borrowed: ws.borrowedIntegral}
}

// CapacityIntegral folds the node capacity integral to now and returns
// it (core-nanoseconds of physical core time, shrinking with SetCores
// and Shutdown).
func (a *NodeArbiter) CapacityIntegral(now simtime.Time) float64 {
	a.capSync(now)
	return a.capIntegral
}

// POPHorizon returns the latest fold point any of the node's integrals
// has reached. Trailing policy ticks can fold past the last apprank's
// finish time; the POP builder extends its horizon to the maximum so
// capacity and busy integrals cover identical spans.
func (a *NodeArbiter) POPHorizon() simtime.Time {
	h := a.capLast
	for i := range a.workers {
		if a.workers[i].popLast > h {
			h = a.workers[i].popLast
		}
		if a.workers[i].lastUpdate > h {
			h = a.workers[i].lastUpdate
		}
	}
	return h
}

// BusyIntegral returns w's accumulated busy time in core-nanoseconds up
// to now.
func (a *NodeArbiter) BusyIntegral(w WorkerID, now simtime.Time) float64 {
	a.accumulate(w, now)
	return a.workers[w].busyIntegral
}

// TakeBusyAverage returns the average number of busy cores of w since the
// previous call (or since the start), and restarts the window. This is
// the "average number of busy cores" measurement of §5.4.
func (a *NodeArbiter) TakeBusyAverage(w WorkerID, now simtime.Time) float64 {
	a.accumulate(w, now)
	ws := &a.workers[w]
	dt := now - ws.markTime
	if dt <= 0 {
		return float64(ws.running)
	}
	avg := (ws.busyIntegral - ws.markIntegral) / float64(dt)
	ws.markIntegral = ws.busyIntegral
	ws.markTime = now
	return avg
}

// PeekBusyAverage returns the average busy cores of w since the last
// TakeBusyAverage without restarting the window.
func (a *NodeArbiter) PeekBusyAverage(w WorkerID, now simtime.Time) float64 {
	a.accumulate(w, now)
	ws := &a.workers[w]
	dt := now - ws.markTime
	if dt <= 0 {
		return float64(ws.running)
	}
	return (ws.busyIntegral - ws.markIntegral) / float64(dt)
}

// NodeBusyAverage returns the node-wide average busy cores since each
// worker's current window start (the windows are aligned when one policy
// ticks them together).
func (a *NodeArbiter) NodeBusyAverage(now simtime.Time) float64 {
	total := 0.0
	for i := range a.workers {
		total += a.PeekBusyAverage(WorkerID(i), now)
	}
	return total
}

// CheckInvariants validates internal consistency; tests call it after
// event storms.
func (a *NodeArbiter) CheckInvariants() error {
	sumOwned, sumRunning := 0, 0
	for i, ws := range a.workers {
		if ws.running < 0 {
			return fmt.Errorf("dlb: worker %d negative running", i)
		}
		sumOwned += ws.owned
		sumRunning += ws.running
	}
	if sumRunning != a.totalRunning {
		return fmt.Errorf("dlb: running sum %d != total %d", sumRunning, a.totalRunning)
	}
	if a.totalRunning > a.cores+a.overbooked {
		return fmt.Errorf("dlb: node %d oversubscribed: %d running on %d cores (+%d overbooked)",
			a.node, a.totalRunning, a.cores, a.overbooked)
	}
	if sumOwned != a.cores && sumOwned != 0 {
		return fmt.Errorf("dlb: ownership sum %d != %d cores", sumOwned, a.cores)
	}
	return nil
}
