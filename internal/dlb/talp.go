package dlb

import (
	"fmt"
	"sort"

	"ompsscluster/internal/simtime"
)

// TALP (Tracking Application Live Performance) measures parallel
// efficiency per apprank: the fraction of the compute time owned by the
// apprank's workers that was spent executing useful work (tasks), the
// remainder being idle or runtime overhead time. The paper's TALP module
// intercepts MPI calls; here the same accounting is fed by the runtime at
// task boundaries and MPI-operation boundaries.
//
// Accounting is cellular: every apprank keeps one accumulator cell per
// node, and the runtime reports each task execution into the (apprank,
// executing-node) cell. Under the partitioned simulation engine a node is
// a partition and each cell is written by exactly one partition thread
// (an apprank's work lands on its home partition — offloading degrees
// above one are parallel-ineligible), so the per-cell sums are free of
// cross-thread interleaving. Snapshot and the POP builder merge cells in
// fixed (apprank, node) order, which makes every derived report
// byte-identical across the goroutine, continuation, and parallel
// engines at any worker count.
type TALP struct {
	apps     map[int]*talpApp
	numNodes int
	// window is the POP series window width in virtual nanoseconds;
	// 0 (the default) disables the windowed series and keeps AddExec
	// allocation-free.
	window float64
}

// talpCell accumulates one (apprank, node) slot. All values are
// core-nanoseconds except tasks.
type talpCell struct {
	useful    float64 // task compute time (work at node speed)
	overhead  float64 // runtime overhead folded into executions
	borrowed  float64 // portion of useful+overhead run on borrowed cores
	tasks     int64
	winUseful []float64 // per-window useful core-ns (window > 0 only)
}

type talpApp struct {
	started simtime.Time
	mpi     float64 // nanoseconds the main process spent inside MPI calls
	cells   []talpCell
}

// NewTALP creates an empty TALP accounting module with a single
// accounting cell per apprank (node breakdown disabled until
// Preallocate sizes the topology).
func NewTALP() *TALP {
	return &TALP{apps: make(map[int]*talpApp), numNodes: 1}
}

// SetWindow enables the time-windowed POP series with the given window
// width. Must be called before the run starts; zero disables windows.
func (t *TALP) SetWindow(w simtime.Duration) {
	if w < 0 {
		panic(fmt.Sprintf("dlb: negative TALP window %v", w))
	}
	t.window = float64(w)
}

// Window returns the configured window width in virtual nanoseconds
// (0 when the windowed series is disabled).
func (t *TALP) Window() float64 { return t.window }

// NumNodes returns the per-apprank cell count.
func (t *TALP) NumNodes() int { return t.numNodes }

func (t *TALP) app(apprank int) *talpApp {
	a, ok := t.apps[apprank]
	if !ok {
		a = &talpApp{cells: make([]talpCell, t.numNodes)}
		t.apps[apprank] = a
	}
	return a
}

// Preallocate creates the accounting entries for the given appranks up
// front, each with one cell per node. The partitioned simulation engine
// reports useful/MPI time from per-node partition threads; with every
// entry preallocated the map is never mutated structurally after
// construction, so those reports only touch the apprank's own cells
// (one writer per cell) and concurrent map reads stay safe.
func (t *TALP) Preallocate(ids []int, numNodes int) {
	if numNodes > t.numNodes {
		t.numNodes = numNodes
	}
	for _, id := range ids {
		t.app(id)
	}
}

// StartApp records the start time of an apprank's main function.
func (t *TALP) StartApp(apprank int, now simtime.Time) {
	t.app(apprank).started = now
}

// cell returns the (apprank, node) accumulator, growing the cell vector
// for out-of-topology nodes (legacy callers that skip Preallocate).
func (t *TALP) cell(apprank, node int) *talpCell {
	a := t.app(apprank)
	if node >= len(a.cells) {
		grown := make([]talpCell, node+1)
		copy(grown, a.cells)
		a.cells = grown
		if node >= t.numNodes {
			t.numNodes = node + 1
		}
	}
	return &a.cells[node]
}

// AddExec accounts one task execution of apprank on node over the
// virtual span [start, end): useful core-nanoseconds of compute plus
// overhead core-nanoseconds of runtime cost, flagged if the execution
// ran on a borrowed (LeWI) core. With a window configured the useful
// time is also spread across the overlapping windows in proportion to
// the overlap.
func (t *TALP) AddExec(apprank, node int, start, end simtime.Time, useful, overhead float64, borrowed bool) {
	c := t.cell(apprank, node)
	c.useful += useful
	c.overhead += overhead
	if borrowed {
		c.borrowed += useful + overhead
	}
	c.tasks++
	if t.window > 0 {
		c.winUseful = addWindowed(c.winUseful, t.window, float64(start), float64(end), useful)
	}
}

// addWindowed spreads amount over the windows covering [start, end),
// proportionally to each window's overlap with the span.
func addWindowed(wins []float64, window, start, end, amount float64) []float64 {
	if end <= start {
		// Zero-length span: attribute everything to its window.
		i := int(start / window)
		wins = growWins(wins, i)
		wins[i] += amount
		return wins
	}
	last := int(end / window)
	if float64(last)*window == end && last > 0 {
		last-- // [start, end) is half-open: a span ending exactly on a boundary stays below it
	}
	wins = growWins(wins, last)
	span := end - start
	for i := int(start / window); i <= last; i++ {
		lo := float64(i) * window
		hi := lo + window
		if lo < start {
			lo = start
		}
		if hi > end {
			hi = end
		}
		wins[i] += amount * (hi - lo) / span
	}
	return wins
}

func growWins(wins []float64, i int) []float64 {
	for len(wins) <= i {
		wins = append(wins, 0)
	}
	return wins
}

// AddUseful accumulates core-nanoseconds of task execution for apprank
// into its first cell. Legacy entry point; the runtime reports through
// AddExec.
func (t *TALP) AddUseful(apprank int, coreNanos float64) {
	t.cell(apprank, 0).useful += coreNanos
}

// AddMPI accumulates nanoseconds spent in MPI calls by apprank's main.
func (t *TALP) AddMPI(apprank int, nanos float64) {
	t.app(apprank).mpi += nanos
}

// AddMPISpan accounts one blocking MPI operation of apprank's main
// process over [t0, t1).
func (t *TALP) AddMPISpan(apprank int, t0, t1 simtime.Time) {
	t.app(apprank).mpi += float64(t1 - t0)
}

// Appranks returns the accounted apprank ids in ascending order.
func (t *TALP) Appranks() []int {
	ids := make([]int, 0, len(t.apps))
	for id := range t.apps {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	return ids
}

// CellTotals is the read-only view of one (apprank, node) cell.
type CellTotals struct {
	Useful   float64 // core-ns of task compute
	Overhead float64 // core-ns of runtime overhead
	Borrowed float64 // core-ns executed on borrowed cores
	Tasks    int64
}

// Cell returns the totals of the (apprank, node) cell (zero if never
// written).
func (t *TALP) Cell(apprank, node int) CellTotals {
	a, ok := t.apps[apprank]
	if !ok || node >= len(a.cells) {
		return CellTotals{}
	}
	c := &a.cells[node]
	return CellTotals{Useful: c.useful, Overhead: c.overhead, Borrowed: c.borrowed, Tasks: c.tasks}
}

// WindowUseful returns the per-window useful core-ns of the (apprank,
// node) cell. The slice is the live accumulator; callers must not
// mutate it. It is ragged: windows after the cell's last activity are
// absent.
func (t *TALP) WindowUseful(apprank, node int) []float64 {
	a, ok := t.apps[apprank]
	if !ok || node >= len(a.cells) {
		return nil
	}
	return a.cells[node].winUseful
}

// MPITime returns apprank's accumulated MPI nanoseconds.
func (t *TALP) MPITime(apprank int) float64 {
	if a, ok := t.apps[apprank]; ok {
		return a.mpi
	}
	return 0
}

// Started returns the recorded start time of apprank's main.
func (t *TALP) Started(apprank int) simtime.Time {
	if a, ok := t.apps[apprank]; ok {
		return a.started
	}
	return 0
}

// Report summarises efficiency: one line per apprank, mirroring DLB's
// end-of-run TALP report.
type Report struct {
	Appranks []AppReport
}

// AppReport is the TALP summary for one apprank.
type AppReport struct {
	Apprank    int
	Elapsed    simtime.Duration
	UsefulTime simtime.Duration // core-time executing tasks
	MPITime    simtime.Duration // main-process time inside MPI
	Efficiency float64          // useful / (elapsed * avgCores)
}

// Snapshot builds the report at time now. avgCores maps apprank to its
// average owned cores over the run (the caller knows this from the
// arbiters); missing entries default to 1. Cells merge in ascending
// (apprank, node) order, so the report is independent of the engine's
// execution interleaving.
func (t *TALP) Snapshot(now simtime.Time, avgCores map[int]float64) Report {
	var r Report
	for _, id := range t.Appranks() {
		a := t.apps[id]
		useful := 0.0
		for n := range a.cells {
			c := &a.cells[n]
			useful += c.useful + c.overhead
		}
		elapsed := now - a.started
		cores := avgCores[id]
		if cores <= 0 {
			cores = 1
		}
		eff := 0.0
		if elapsed > 0 {
			eff = useful / (float64(elapsed) * cores)
		}
		r.Appranks = append(r.Appranks, AppReport{
			Apprank:    id,
			Elapsed:    simtime.Duration(elapsed),
			UsefulTime: simtime.Duration(useful),
			MPITime:    simtime.Duration(a.mpi),
			Efficiency: eff,
		})
	}
	return r
}

// String renders the report as a table.
func (r Report) String() string {
	s := "TALP report\napprank  elapsed      useful(core-s)  mpi(s)     efficiency\n"
	for _, a := range r.Appranks {
		s += fmt.Sprintf("%7d  %-11v  %-14.3f  %-9.3f  %5.1f%%\n",
			a.Apprank, a.Elapsed, a.UsefulTime.Seconds(), a.MPITime.Seconds(), a.Efficiency*100)
	}
	return s
}
