package dlb

import (
	"fmt"
	"sort"

	"ompsscluster/internal/simtime"
)

// TALP (Tracking Application Live Performance) measures parallel
// efficiency per apprank: the fraction of the compute time owned by the
// apprank's workers that was spent executing useful work (tasks), the
// remainder being idle or runtime overhead time. The paper's TALP module
// intercepts MPI calls; here the same accounting is fed by the runtime at
// task boundaries and MPI-operation boundaries.
type TALP struct {
	apps map[int]*talpApp
}

type talpApp struct {
	useful  float64 // core-nanoseconds executing tasks
	mpi     float64 // nanoseconds the main process spent inside MPI calls
	started simtime.Time
}

// NewTALP creates an empty TALP accounting module.
func NewTALP() *TALP {
	return &TALP{apps: make(map[int]*talpApp)}
}

func (t *TALP) app(apprank int) *talpApp {
	a, ok := t.apps[apprank]
	if !ok {
		a = &talpApp{}
		t.apps[apprank] = a
	}
	return a
}

// Preallocate creates the accounting entries for the given appranks up
// front. The partitioned simulation engine reports useful/MPI time from
// per-node partition threads; with every entry preallocated the map is
// never mutated structurally after construction, so those reports only
// touch the apprank's own entry (one writer per apprank) and concurrent
// map reads stay safe.
func (t *TALP) Preallocate(ids []int) {
	for _, id := range ids {
		t.app(id)
	}
}

// StartApp records the start time of an apprank's main function.
func (t *TALP) StartApp(apprank int, now simtime.Time) {
	t.app(apprank).started = now
}

// AddUseful accumulates core-nanoseconds of task execution for apprank.
func (t *TALP) AddUseful(apprank int, coreNanos float64) {
	t.app(apprank).useful += coreNanos
}

// AddMPI accumulates nanoseconds spent in MPI calls by apprank's main.
func (t *TALP) AddMPI(apprank int, nanos float64) {
	t.app(apprank).mpi += nanos
}

// Report summarises efficiency: one line per apprank, mirroring DLB's
// end-of-run TALP report.
type Report struct {
	Appranks []AppReport
}

// AppReport is the TALP summary for one apprank.
type AppReport struct {
	Apprank    int
	Elapsed    simtime.Duration
	UsefulTime simtime.Duration // core-time executing tasks
	MPITime    simtime.Duration // main-process time inside MPI
	Efficiency float64          // useful / (elapsed * avgCores)
}

// Snapshot builds the report at time now. avgCores maps apprank to its
// average owned cores over the run (the caller knows this from the
// arbiters); missing entries default to 1.
func (t *TALP) Snapshot(now simtime.Time, avgCores map[int]float64) Report {
	var r Report
	ids := make([]int, 0, len(t.apps))
	for id := range t.apps {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		a := t.apps[id]
		elapsed := now - a.started
		cores := avgCores[id]
		if cores <= 0 {
			cores = 1
		}
		eff := 0.0
		if elapsed > 0 {
			eff = a.useful / (float64(elapsed) * cores)
		}
		r.Appranks = append(r.Appranks, AppReport{
			Apprank:    id,
			Elapsed:    simtime.Duration(elapsed),
			UsefulTime: simtime.Duration(a.useful),
			MPITime:    simtime.Duration(a.mpi),
			Efficiency: eff,
		})
	}
	return r
}

// String renders the report as a table.
func (r Report) String() string {
	s := "TALP report\napprank  elapsed      useful(core-s)  mpi(s)     efficiency\n"
	for _, a := range r.Appranks {
		s += fmt.Sprintf("%7d  %-11v  %-14.3f  %-9.3f  %5.1f%%\n",
			a.Apprank, a.Elapsed, a.UsefulTime.Seconds(), a.MPITime.Seconds(), a.Efficiency*100)
	}
	return s
}
