package stencil

import (
	"math"
	"testing"

	"ompsscluster/internal/cluster"
	"ompsscluster/internal/core"
	"ompsscluster/internal/simtime"
)

const ms = simtime.Millisecond

func testConfig() Config {
	return Config{
		RowsPerRank:   16,
		Cols:          32,
		BlockRows:     2,
		CostPerCell:   2 * simtime.Microsecond,
		Iterations:    8,
		HotspotRank:   0,
		HotspotFactor: 3,
		TopBoundary:   100,
	}
}

// runStencil executes the benchmark on a fresh runtime.
func runStencil(t *testing.T, b *Benchmark, ranks, degree int, lewi bool, drom core.DROMMode) *core.ClusterRuntime {
	t.Helper()
	m := cluster.New(ranks, 4, cluster.DefaultNet())
	rt := core.MustNew(core.Config{
		Machine:      m,
		Degree:       degree,
		LeWI:         lewi,
		DROM:         drom,
		GlobalPeriod: 20 * ms,
		Seed:         1,
	})
	if err := rt.Run(b.Main()); err != nil {
		t.Fatal(err)
	}
	return rt
}

func TestPhysicsHeatFlowsDown(t *testing.T) {
	cfg := testConfig()
	b := New(cfg, 4)
	runStencil(t, b, 4, 2, true, core.DROMOff)
	// After a few sweeps, rows near the hot top edge are warmer than
	// rows far from it.
	top := b.Temperature(0, cfg.Cols/2)
	bottom := b.Temperature(4*cfg.RowsPerRank-1, cfg.Cols/2)
	if top <= bottom {
		t.Fatalf("top %v not hotter than bottom %v", top, bottom)
	}
	if top <= 0 || top > cfg.TopBoundary {
		t.Fatalf("top temperature %v outside (0, %v]", top, cfg.TopBoundary)
	}
}

func TestResidualDecreases(t *testing.T) {
	b := New(testConfig(), 4)
	runStencil(t, b, 4, 2, true, core.DROMOff)
	res := b.Residuals()
	if len(res) != 8 {
		t.Fatalf("got %d residuals, want 8", len(res))
	}
	if res[len(res)-1] >= res[0] {
		t.Fatalf("residual did not decrease: %v -> %v", res[0], res[len(res)-1])
	}
	for _, r := range res {
		if math.IsNaN(r) || r < 0 {
			t.Fatalf("bad residual %v", r)
		}
	}
}

func TestPhysicsIndependentOfRuntimeConfig(t *testing.T) {
	// The simulated runtime must not alter the numerics: the grid after
	// the run is identical whatever the balancing configuration.
	b1 := New(testConfig(), 4)
	runStencil(t, b1, 4, 1, false, core.DROMOff)
	b2 := New(testConfig(), 4)
	runStencil(t, b2, 4, 3, true, core.DROMGlobal)
	cfg := testConfig()
	for row := 0; row < 4*cfg.RowsPerRank; row += 7 {
		for col := 0; col < cfg.Cols; col += 5 {
			v1, v2 := b1.Temperature(row, col), b2.Temperature(row, col)
			if math.Abs(v1-v2) > 1e-12 {
				t.Fatalf("grid diverged at (%d,%d): %v vs %v", row, col, v1, v2)
			}
		}
	}
}

func TestHotspotImbalanceAndOffloading(t *testing.T) {
	base := New(testConfig(), 4)
	rtBase := runStencil(t, base, 4, 1, false, core.DROMOff)
	bal := New(testConfig(), 4)
	rtBal := runStencil(t, bal, 4, 3, true, core.DROMGlobal)
	if rtBal.Elapsed() >= rtBase.Elapsed() {
		t.Fatalf("offloading did not help the hotspot: %v >= %v", rtBal.Elapsed(), rtBase.Elapsed())
	}
	if rtBal.TotalOffloadedTasks() == 0 {
		t.Fatal("no tasks offloaded")
	}
}

func TestNoHotspotBalanced(t *testing.T) {
	cfg := testConfig()
	cfg.HotspotFactor = 1
	b := New(cfg, 4)
	rt := runStencil(t, b, 4, 1, false, core.DROMOff)
	ends := b.IterationEnds()
	if len(ends) != cfg.Iterations {
		t.Fatalf("iteration ends = %d, want %d", len(ends), cfg.Iterations)
	}
	// Balanced run: per-iteration times are nearly equal.
	first := float64(ends[0])
	last := float64(ends[len(ends)-1] - ends[len(ends)-2])
	if math.Abs(first-last) > 0.2*first {
		t.Fatalf("iteration times vary too much: first %v, last %v", first, last)
	}
	_ = rt
}

func TestConfigPanics(t *testing.T) {
	good := testConfig()
	for _, mod := range []func(*Config){
		func(c *Config) { c.RowsPerRank = 0 },
		func(c *Config) { c.Cols = 0 },
		func(c *Config) { c.Iterations = 0 },
		func(c *Config) { c.BlockRows = 0 },
		func(c *Config) { c.BlockRows = c.RowsPerRank + 1 },
		func(c *Config) { c.HotspotFactor = 0.5 },
	} {
		cfg := good
		mod(&cfg)
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("config %+v did not panic", cfg)
				}
			}()
			New(cfg, 4)
		}()
	}
}

func TestTotalWork(t *testing.T) {
	cfg := testConfig()
	b := New(cfg, 2)
	// Rank 0 at factor 3, rank 1 at 1: (3+1) x rows x cols x cost x iters.
	want := 4.0 * float64(cfg.RowsPerRank*cfg.Cols) * float64(cfg.CostPerCell) * float64(cfg.Iterations)
	if got := b.TotalWork(); math.Abs(got-want) > 1e-6*want {
		t.Fatalf("TotalWork = %v, want %v", got, want)
	}
}
