// Package stencil is a 2-D Jacobi heat-diffusion solver with 1-D domain
// decomposition and MPI halo exchange — the classic MPI+tasks pattern the
// paper's programming model (§4) targets: point-to-point MPI from the
// main function, offloadable compute tasks per row block.
//
// Unlike the synthetic benchmark, the computation is real: every rank
// owns a slab of the global grid, exchanges boundary rows with its
// neighbours through the simulated MPI library (the actual float64 rows
// travel in the messages), and updates its slab. Load imbalance comes
// from a "hotspot" rank whose cells cost more to update (standing in for
// local mesh refinement).
package stencil

import (
	"fmt"
	"math"

	"ompsscluster/internal/core"
	"ompsscluster/internal/nanos"
	"ompsscluster/internal/simmpi"
	"ompsscluster/internal/simtime"
)

// Config parameterises the solver.
type Config struct {
	// RowsPerRank and Cols fix each rank's slab (weak scaling).
	RowsPerRank, Cols int
	// BlockRows is the task granularity: one task updates BlockRows rows.
	BlockRows int
	// CostPerCell is the nominal task time per grid cell.
	CostPerCell simtime.Duration
	// Iterations is the number of Jacobi sweeps.
	Iterations int
	// HotspotRank's cells cost HotspotFactor times more (local
	// refinement); factor 1 disables the imbalance.
	HotspotRank   int
	HotspotFactor float64
	// TopBoundary is the fixed temperature of the global top edge.
	TopBoundary float64
}

// Benchmark holds the distributed grid state.
type Benchmark struct {
	cfg      Config
	ranks    int
	slabs    [][][]float64 // per rank: (RowsPerRank+2) x Cols, rows 0 and last are halos
	next     [][][]float64
	residual []float64 // per-iteration global residual
	iterEnds []simtime.Time
	applied  int
}

// New builds the benchmark for the given rank count. The initial grid is
// zero with a fixed hot top edge.
func New(cfg Config, ranks int) *Benchmark {
	if cfg.RowsPerRank <= 0 || cfg.Cols <= 0 || cfg.Iterations <= 0 {
		panic("stencil: RowsPerRank, Cols and Iterations must be positive")
	}
	if cfg.BlockRows <= 0 || cfg.BlockRows > cfg.RowsPerRank {
		panic(fmt.Sprintf("stencil: BlockRows %d outside [1, %d]", cfg.BlockRows, cfg.RowsPerRank))
	}
	if cfg.HotspotFactor == 0 {
		cfg.HotspotFactor = 1
	}
	if cfg.HotspotFactor < 1 {
		panic("stencil: HotspotFactor must be >= 1")
	}
	b := &Benchmark{cfg: cfg, ranks: ranks, applied: -1}
	for r := 0; r < ranks; r++ {
		b.slabs = append(b.slabs, newSlab(cfg.RowsPerRank+2, cfg.Cols))
		b.next = append(b.next, newSlab(cfg.RowsPerRank+2, cfg.Cols))
	}
	// Global top boundary: the halo row above rank 0 is fixed hot.
	for c := 0; c < cfg.Cols; c++ {
		b.slabs[0][0][c] = cfg.TopBoundary
		b.next[0][0][c] = cfg.TopBoundary
	}
	return b
}

func newSlab(rows, cols int) [][]float64 {
	s := make([][]float64, rows)
	for i := range s {
		s[i] = make([]float64, cols)
	}
	return s
}

// Residuals returns the per-iteration global residual (max cell change).
// Valid after the run.
func (b *Benchmark) Residuals() []float64 { return append([]float64(nil), b.residual...) }

// IterationEnds returns the per-iteration completion times (rank 0).
func (b *Benchmark) IterationEnds() []simtime.Time {
	return append([]simtime.Time(nil), b.iterEnds...)
}

// Temperature returns the current value at a global (row, col).
func (b *Benchmark) Temperature(row, col int) float64 {
	return b.slabs[row/b.cfg.RowsPerRank][row%b.cfg.RowsPerRank+1][col]
}

// blockCost returns the nominal task time for one row block on rank r.
func (b *Benchmark) blockCost(r, rows int) simtime.Duration {
	cost := simtime.Duration(rows*b.cfg.Cols) * b.cfg.CostPerCell
	if r == b.cfg.HotspotRank {
		cost = simtime.Duration(float64(cost) * b.cfg.HotspotFactor)
	}
	return cost
}

// TotalWork returns the nominal task work of the run in core-nanoseconds.
func (b *Benchmark) TotalWork() float64 {
	total := 0.0
	for r := 0; r < b.ranks; r++ {
		total += float64(b.blockCost(r, b.cfg.RowsPerRank)) * float64(b.cfg.Iterations)
	}
	return total
}

// Main returns the SPMD main function: per iteration, halo exchange by
// real point-to-point MPI, one offloadable task per row block, taskwait,
// and a residual allreduce.
func (b *Benchmark) Main() func(app *core.App) {
	const haloTag = 77
	return func(app *core.App) {
		r := app.Rank()
		cfg := b.cfg
		rowBytes := int64(cfg.Cols * 8)
		nblocks := (cfg.RowsPerRank + cfg.BlockRows - 1) / cfg.BlockRows
		blockRegions := make([]nanos.Region, nblocks)
		for i := range blockRegions {
			blockRegions[i] = app.Alloc(int64(cfg.BlockRows) * rowBytes)
		}
		haloRegion := app.Alloc(2 * rowBytes)
		comm := app.Comm()
		for iter := 0; iter < cfg.Iterations; iter++ {
			// Real halo exchange: send our edge rows, receive the
			// neighbours' (the float64 data rides in the messages).
			slab := b.slabs[r]
			if r > 0 {
				comm.Send(r-1, haloTag, append([]float64(nil), slab[1]...), rowBytes)
			}
			if r < b.ranks-1 {
				comm.Send(r+1, haloTag, append([]float64(nil), slab[cfg.RowsPerRank]...), rowBytes)
			}
			if r > 0 {
				v, _ := comm.Recv(r-1, haloTag)
				copy(slab[0], v.([]float64))
			}
			if r < b.ranks-1 {
				v, _ := comm.Recv(r+1, haloTag)
				copy(slab[cfg.RowsPerRank+1], v.([]float64))
			}
			// The real Jacobi sweep for this rank (host computation; the
			// simulated time is carried by the tasks below).
			b.sweep(r)
			// One offloadable task per row block; the halo region is a
			// read so boundary blocks prefer home.
			for blk := 0; blk < nblocks; blk++ {
				rows := cfg.BlockRows
				if (blk+1)*cfg.BlockRows > cfg.RowsPerRank {
					rows = cfg.RowsPerRank - blk*cfg.BlockRows
				}
				acc := []nanos.Access{{Region: blockRegions[blk], Mode: nanos.InOut}}
				if blk == 0 || blk == nblocks-1 {
					acc = append(acc, nanos.Access{Region: haloRegion, Mode: nanos.In})
				}
				app.Submit(core.TaskSpec{
					Label:       "jacobi-block",
					Work:        b.blockCost(r, rows),
					Accesses:    acc,
					Offloadable: true,
				})
			}
			app.TaskWait()
			// Residual allreduce; the first rank past it commits the
			// sweep (swap current/next) exactly once.
			local := b.localResidual(r)
			global := app.AllreduceFloat(local, simmpi.Max)
			if b.applied < iter {
				b.applied = iter
				b.commit()
				b.residual = append(b.residual, global)
			}
			if r == 0 {
				b.iterEnds = append(b.iterEnds, app.Now())
			}
		}
	}
}

// sweep computes rank r's next slab from the current one.
func (b *Benchmark) sweep(r int) {
	cfg := b.cfg
	cur, nxt := b.slabs[r], b.next[r]
	for i := 1; i <= cfg.RowsPerRank; i++ {
		for j := 0; j < cfg.Cols; j++ {
			left, right := j-1, j+1
			if left < 0 {
				left = 0
			}
			if right >= cfg.Cols {
				right = cfg.Cols - 1
			}
			nxt[i][j] = 0.25 * (cur[i-1][j] + cur[i+1][j] + cur[i][left] + cur[i][right])
		}
	}
}

// localResidual returns rank r's max cell change of the pending sweep.
func (b *Benchmark) localResidual(r int) float64 {
	cfg := b.cfg
	maxd := 0.0
	for i := 1; i <= cfg.RowsPerRank; i++ {
		for j := 0; j < cfg.Cols; j++ {
			if d := math.Abs(b.next[r][i][j] - b.slabs[r][i][j]); d > maxd {
				maxd = d
			}
		}
	}
	return maxd
}

// commit swaps current and next slabs for every rank (replicated update,
// applied once per iteration) while preserving the fixed boundary halos.
func (b *Benchmark) commit() {
	for r := range b.slabs {
		cur, nxt := b.slabs[r], b.next[r]
		for i := 1; i <= b.cfg.RowsPerRank; i++ {
			cur[i], nxt[i] = nxt[i], cur[i]
		}
	}
}
