// Package micropp is a workload surrogate for Alya MicroPP, the 3-D
// finite-element micro-scale solid-mechanics library used in the paper's
// evaluation (§6.2). MicroPP's execution is unbalanced because each
// apprank holds a different mix of linear and non-linear finite elements:
// linear elements cost one assembly pass, non-linear ones run a
// Newton-Raphson loop whose iteration count varies by element and by
// timestep.
//
// The surrogate reproduces that cost structure. Each apprank owns a fixed
// set of element chunks (weak scaling: the per-apprank element count is
// constant). A chunk's nominal cost is
//
//	elements x LinearCost x (1 + nonlinearFrac x (NRIterations-1))
//
// with the per-apprank non-linear fraction chosen so that the apprank
// load vector matches a target imbalance (Equation 2), apprank 0 being
// the heaviest as in the paper's traces (Figure 9). Per-chunk,
// per-timestep Newton-Raphson variability adds the fine-grained
// imbalance that LeWI reacts to.
package micropp

import (
	"fmt"
	"math/rand"

	"ompsscluster/internal/cluster"
	"ompsscluster/internal/core"
	"ompsscluster/internal/metrics"
	"ompsscluster/internal/nanos"
	"ompsscluster/internal/simmpi"
	"ompsscluster/internal/simtime"
)

// Config parameterises the surrogate.
type Config struct {
	// ChunksPerApprank is the number of element-chunk tasks each apprank
	// submits per timestep (weak scaling).
	ChunksPerApprank int
	// ElementsPerChunk is the number of finite elements per chunk.
	ElementsPerChunk int
	// LinearCost is the nominal per-element assembly cost.
	LinearCost simtime.Duration
	// NRIterations is the Newton-Raphson iteration count of a fully
	// non-linear element (>= 1).
	NRIterations float64
	// Imbalance is the target per-apprank load imbalance (Equation 2).
	Imbalance float64
	// Timesteps is the number of time-loop iterations.
	Timesteps int
	// NRJitter is the relative half-width of per-chunk, per-step
	// Newton-Raphson variability (default 0.15 when zero).
	NRJitter float64
	// Seed drives fraction placement and jitter.
	Seed int64
}

// Problem is an instantiated MicroPP surrogate.
type Problem struct {
	cfg          Config
	appranks     int
	nonlinFrac   []float64      // per apprank, in [0, 1]
	chunkNominal []float64      // per apprank nominal chunk cost, ns
	stepEnds     []simtime.Time // per-timestep completion times (rank 0)
}

// New builds the problem for the given apprank count.
func New(cfg Config, appranks int) *Problem {
	if cfg.ChunksPerApprank <= 0 || cfg.ElementsPerChunk <= 0 || cfg.Timesteps <= 0 {
		panic("micropp: ChunksPerApprank, ElementsPerChunk and Timesteps must be positive")
	}
	if cfg.LinearCost <= 0 {
		panic("micropp: LinearCost must be positive")
	}
	if cfg.NRIterations < 1 {
		panic(fmt.Sprintf("micropp: NRIterations %v < 1", cfg.NRIterations))
	}
	if cfg.Imbalance < 1 {
		panic(fmt.Sprintf("micropp: imbalance %v < 1", cfg.Imbalance))
	}
	if cfg.NRJitter == 0 {
		cfg.NRJitter = 0.15
	}
	// An apprank's chunk cost factor is f = 1 + frac*(NR-1) with frac in
	// [0, 1]: between all-linear (factor 1) and all-non-linear (factor
	// NR). The imbalance of the factor vector is NR / (1 + (NR-1)*E[g])
	// when the heaviest apprank is fully non-linear (g = frac/fracMax,
	// max g = 1). Choosing the mean of g as
	//
	//	E[g] = (NR/I - 1) / (NR - 1)
	//
	// realises the target imbalance I exactly, as long as the element
	// mix can express it (I <= A*NR/(NR+A-1)); beyond that the mix
	// saturates at its maximum expressible imbalance.
	p := &Problem{cfg: cfg, appranks: appranks}
	nr := cfg.NRIterations
	lin := float64(cfg.LinearCost) * float64(cfg.ElementsPerChunk)
	var g []float64
	switch {
	case cfg.Imbalance == 1 || nr == 1 || appranks == 1:
		g = make([]float64, appranks)
		for i := range g {
			g[i] = 1
		}
	default:
		meanG := (nr/cfg.Imbalance - 1) / (nr - 1)
		if lo := 1 / float64(appranks); meanG < lo {
			meanG = lo // saturate at the maximum expressible imbalance
		}
		rng := rand.New(rand.NewSource(cfg.Seed ^ 0x41c0))
		g = metrics.SpreadLoads(appranks, meanG, 1/meanG, rng.Float64)
	}
	// g[0] is the maximum (apprank 0 heaviest, as in Figure 9).
	for a := 0; a < appranks; a++ {
		frac := g[a]
		p.nonlinFrac = append(p.nonlinFrac, frac)
		p.chunkNominal = append(p.chunkNominal, lin*(1+frac*(nr-1)))
	}
	return p
}

// NonlinearFractions returns the per-apprank non-linear element fraction.
func (p *Problem) NonlinearFractions() []float64 {
	return append([]float64(nil), p.nonlinFrac...)
}

// LoadImbalance returns the Equation-2 imbalance of the nominal apprank
// loads actually realised by the element mix.
func (p *Problem) LoadImbalance() float64 {
	return metrics.Imbalance(p.chunkNominal)
}

// TotalWork returns the total nominal work in core-nanoseconds.
func (p *Problem) TotalWork() float64 {
	total := 0.0
	for _, c := range p.chunkNominal {
		total += c * float64(p.cfg.ChunksPerApprank) * float64(p.cfg.Timesteps)
	}
	return total
}

// OptimalTime is the perfect-balance bound on machine m.
func (p *Problem) OptimalTime(m *cluster.Machine) simtime.Duration {
	return simtime.Duration(p.TotalWork() / m.TotalCapacity())
}

// Main returns the SPMD main: per timestep, one task per element chunk
// (inout on the chunk's state, in on the apprank's mesh), a taskwait, and
// a residual allreduce.
func (p *Problem) Main() func(app *core.App) {
	return func(app *core.App) {
		rng := rand.New(rand.NewSource(p.cfg.Seed*104729 + int64(app.Rank())))
		mesh := app.Alloc(int64(p.cfg.ChunksPerApprank) * 256)
		chunks := make([]nanos.Region, p.cfg.ChunksPerApprank)
		for i := range chunks {
			chunks[i] = app.Alloc(int64(p.cfg.ElementsPerChunk) * 96)
		}
		nominal := p.chunkNominal[app.Rank()]
		for ts := 0; ts < p.cfg.Timesteps; ts++ {
			for i := range chunks {
				jitter := 1 + p.cfg.NRJitter*(2*rng.Float64()-1)
				app.Submit(core.TaskSpec{
					Label: "assemble+solve",
					Work:  simtime.Duration(nominal * jitter),
					Accesses: []nanos.Access{
						{Region: chunks[i], Mode: nanos.InOut},
						{Region: mesh, Mode: nanos.In},
					},
					Offloadable: true,
				})
			}
			app.TaskWait()
			app.AllreduceFloat(nominal, simmpi.Max) // convergence residual
			if app.Rank() == 0 {
				p.stepEnds = append(p.stepEnds, app.Now())
			}
		}
	}
}

// StepEnds returns the per-timestep completion times observed by rank 0.
// Valid after the run; a Problem must not be reused across runs.
func (p *Problem) StepEnds() []simtime.Time {
	return append([]simtime.Time(nil), p.stepEnds...)
}
