package micropp

import (
	"math"
	"testing"

	"ompsscluster/internal/cluster"
	"ompsscluster/internal/core"
	"ompsscluster/internal/simtime"
)

const us = simtime.Microsecond

func testConfig(imb float64) Config {
	return Config{
		ChunksPerApprank: 32,
		ElementsPerChunk: 64,
		LinearCost:       2 * us,
		NRIterations:     10,
		Imbalance:        imb,
		Timesteps:        2,
		Seed:             3,
	}
}

func TestRealisedImbalanceMatchesTarget(t *testing.T) {
	for _, imb := range []float64{1.0, 1.5, 2.0, 3.0} {
		p := New(testConfig(imb), 8)
		got := p.LoadImbalance()
		if math.Abs(got-imb) > 1e-6 {
			t.Fatalf("imbalance = %v, want %v", got, imb)
		}
	}
}

func TestApprankZeroHeaviest(t *testing.T) {
	p := New(testConfig(2.0), 8)
	fr := p.NonlinearFractions()
	for i := 1; i < len(fr); i++ {
		if fr[i] > fr[0]+1e-12 {
			t.Fatalf("apprank %d fraction %v exceeds apprank 0's %v", i, fr[i], fr[0])
		}
	}
	if math.Abs(fr[0]-1.0) > 1e-9 {
		t.Fatalf("heaviest apprank fraction = %v, want 1.0 (fully non-linear)", fr[0])
	}
}

func TestFractionsWithinRange(t *testing.T) {
	p := New(testConfig(2.5), 16)
	for i, f := range p.NonlinearFractions() {
		if f < -1e-12 || f > 1+1e-12 {
			t.Fatalf("fraction[%d] = %v outside [0,1]", i, f)
		}
	}
}

func TestImbalanceSaturates(t *testing.T) {
	// 2 appranks, NR=10: maximum expressible imbalance is
	// 2*10/(10+1) = 1.818... A target of 1.9 must saturate, not panic.
	cfg := testConfig(1.9)
	p := New(cfg, 2)
	maxImb := 2.0 * 10 / 11
	if got := p.LoadImbalance(); math.Abs(got-maxImb) > 1e-6 {
		t.Fatalf("saturated imbalance = %v, want %v", got, maxImb)
	}
}

func TestBalancedCase(t *testing.T) {
	p := New(testConfig(1.0), 4)
	if got := p.LoadImbalance(); math.Abs(got-1.0) > 1e-9 {
		t.Fatalf("imbalance = %v, want 1.0", got)
	}
}

func TestEndToEndImbalancedRun(t *testing.T) {
	p := New(testConfig(2.0), 4)
	m := cluster.New(4, 4, cluster.DefaultNet())
	baseline := core.MustNew(core.Config{Machine: m, Degree: 1})
	if err := baseline.Run(p.Main()); err != nil {
		t.Fatal(err)
	}
	balanced := core.MustNew(core.Config{
		Machine:      m,
		Degree:       3,
		LeWI:         true,
		DROM:         core.DROMGlobal,
		GlobalPeriod: 10 * simtime.Millisecond,
		Seed:         1,
	})
	if err := balanced.Run(p.Main()); err != nil {
		t.Fatal(err)
	}
	if balanced.Elapsed() >= baseline.Elapsed() {
		t.Fatalf("balancing did not help: %v >= %v", balanced.Elapsed(), baseline.Elapsed())
	}
	opt := p.OptimalTime(m)
	if balanced.Elapsed() > opt*2 {
		t.Fatalf("balanced run %v far from optimal %v", balanced.Elapsed(), opt)
	}
}

func TestPanicsOnBadConfig(t *testing.T) {
	good := testConfig(2.0)
	for _, mod := range []func(*Config){
		func(c *Config) { c.ChunksPerApprank = 0 },
		func(c *Config) { c.ElementsPerChunk = 0 },
		func(c *Config) { c.LinearCost = 0 },
		func(c *Config) { c.NRIterations = 0.5 },
		func(c *Config) { c.Imbalance = 0.9 },
		func(c *Config) { c.Timesteps = 0 },
	} {
		cfg := good
		mod(&cfg)
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("config %+v did not panic", cfg)
				}
			}()
			New(cfg, 4)
		}()
	}
}
