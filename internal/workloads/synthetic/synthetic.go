// Package synthetic implements the paper's synthetic benchmark (§6.2): a
// configurable-imbalance iterative program. Each iteration submits
// TasksPerCore tasks per core with an average nominal duration of
// MeanTask; per-apprank task durations differ so that the load vector
// meets the target imbalance (Equation 2), with the heaviest rank at
// MeanTask x Imbalance and the others uniformly distributed over the
// space of values respecting the constraints.
//
// The slow-node sweep of Figure 10 uses the same benchmark on a machine
// with one slow node; the signed imbalance decides whether the slow node
// hosts the most (positive) or the least (negative) loaded apprank.
package synthetic

import (
	"fmt"
	"math/rand"

	"ompsscluster/internal/cluster"
	"ompsscluster/internal/core"
	"ompsscluster/internal/metrics"
	"ompsscluster/internal/nanos"
	"ompsscluster/internal/simtime"
)

// Config parameterises the benchmark.
type Config struct {
	// Imbalance is the target Equation-2 imbalance, >= 1.
	Imbalance float64
	// TasksPerCore is the number of tasks per core per iteration
	// (paper: 100).
	TasksPerCore int
	// MeanTask is the average nominal task duration (paper: 50ms).
	MeanTask simtime.Duration
	// Iterations is the number of outer iterations.
	Iterations int
	// Jitter is the relative half-width of the per-task uniform duration
	// noise (0.1 = +/-10%). Fine-grained variation is what LeWI reacts
	// to; zero disables it.
	Jitter float64
	// Seed drives load placement and jitter.
	Seed int64
	// HeaviestApprank, when > 0, pins the maximum-load apprank to a
	// specific rank (Figure 10 places it on or away from the slow node);
	// 0 leaves it at rank 0.
	HeaviestApprank int
	// LightestApprank, when > 0 (or PinLightest is set for rank 0), pins
	// the minimum-load apprank, for the "slow node has the least work"
	// side of Figure 10.
	LightestApprank int
	PinLightest     bool
}

// Benchmark is an instantiated synthetic workload for a given apprank
// count and per-apprank core count.
type Benchmark struct {
	cfg          Config
	appranks     int
	coresPerRank int
	meanPerRank  []float64 // nominal task duration per apprank, ns
	tasksPerIter int
	iterEnds     []simtime.Time // barrier-exit times observed by rank 0
}

// New builds the workload. coresPerApprank is the number of cores each
// apprank starts with (node cores / appranks per node).
func New(cfg Config, appranks, coresPerApprank int) *Benchmark {
	if cfg.Imbalance < 1 {
		panic(fmt.Sprintf("synthetic: imbalance %v < 1", cfg.Imbalance))
	}
	if cfg.TasksPerCore <= 0 || cfg.MeanTask <= 0 || cfg.Iterations <= 0 {
		panic("synthetic: TasksPerCore, MeanTask and Iterations must be positive")
	}
	rng := rand.New(rand.NewSource(cfg.Seed ^ 0x5a17))
	loads := metrics.SpreadLoads(appranks, float64(cfg.MeanTask), cfg.Imbalance, rng.Float64)
	if cfg.HeaviestApprank > 0 && cfg.HeaviestApprank < appranks {
		loads[0], loads[cfg.HeaviestApprank] = loads[cfg.HeaviestApprank], loads[0]
	}
	if cfg.PinLightest || (cfg.LightestApprank > 0 && cfg.LightestApprank < appranks) {
		minIdx := 0
		for i, l := range loads {
			if l < loads[minIdx] {
				minIdx = i
			}
		}
		loads[cfg.LightestApprank], loads[minIdx] = loads[minIdx], loads[cfg.LightestApprank]
	}
	return &Benchmark{
		cfg:          cfg,
		appranks:     appranks,
		coresPerRank: coresPerApprank,
		meanPerRank:  loads,
		tasksPerIter: cfg.TasksPerCore * coresPerApprank,
	}
}

// Loads returns the per-apprank nominal task durations (for tests).
func (b *Benchmark) Loads() []float64 { return append([]float64(nil), b.meanPerRank...) }

// TotalWork returns the total nominal work of the whole run in
// core-nanoseconds.
func (b *Benchmark) TotalWork() float64 {
	total := 0.0
	for _, l := range b.meanPerRank {
		total += l * float64(b.tasksPerIter) * float64(b.cfg.Iterations)
	}
	return total
}

// OptimalTime returns the perfect-load-balance time bound on machine m:
// total work divided by aggregate capacity (the grey line of Figures 8
// and 10).
func (b *Benchmark) OptimalTime(m *cluster.Machine) simtime.Duration {
	return simtime.Duration(b.TotalWork() / m.TotalCapacity())
}

// Main returns the SPMD main function to pass to core.Run.
func (b *Benchmark) Main() func(app *core.App) {
	return func(app *core.App) {
		// Deterministic per-rank jitter stream.
		rng := rand.New(rand.NewSource(b.cfg.Seed*7919 + int64(app.Rank())))
		mean := b.meanPerRank[app.Rank()]
		regions := make([]nanos.Region, b.tasksPerIter)
		for i := range regions {
			regions[i] = app.Alloc(1 << 12)
		}
		for iter := 0; iter < b.cfg.Iterations; iter++ {
			for i := 0; i < b.tasksPerIter; i++ {
				d := mean
				if b.cfg.Jitter > 0 {
					d *= 1 + b.cfg.Jitter*(2*rng.Float64()-1)
				}
				app.Submit(core.TaskSpec{
					Label:       "synth",
					Work:        simtime.Duration(d),
					Accesses:    []nanos.Access{{Region: regions[i], Mode: nanos.InOut}},
					Offloadable: true,
				})
			}
			app.TaskWait()
			app.Barrier()
			if app.Rank() == 0 {
				b.iterEnds = append(b.iterEnds, app.Now())
			}
		}
	}
}

// IterationEnds returns the virtual times at which each iteration's
// closing barrier completed (as seen by rank 0). Valid after the run.
func (b *Benchmark) IterationEnds() []simtime.Time {
	return append([]simtime.Time(nil), b.iterEnds...)
}

// SteadyIterTime returns the average per-iteration time after skipping
// warm warm-up iterations (the paper's Figures 8 and 10 report execution
// time per iteration in steady state).
func (b *Benchmark) SteadyIterTime(warm int) simtime.Duration {
	return SteadyIterTime(b.iterEnds, warm)
}

// SteadyIterTime averages iteration durations from boundary timestamps,
// skipping the first warm iterations (at least one is always kept).
func SteadyIterTime(ends []simtime.Time, warm int) simtime.Duration {
	if len(ends) == 0 {
		return 0
	}
	if warm >= len(ends) {
		warm = len(ends) - 1
	}
	if warm == 0 {
		return simtime.Duration(ends[len(ends)-1]) / simtime.Duration(len(ends))
	}
	return simtime.Duration(ends[len(ends)-1]-ends[warm-1]) / simtime.Duration(len(ends)-warm)
}
