package synthetic

import (
	"math"
	"testing"

	"ompsscluster/internal/cluster"
	"ompsscluster/internal/core"
	"ompsscluster/internal/metrics"
	"ompsscluster/internal/simtime"
)

const ms = simtime.Millisecond

func testConfig(imb float64) Config {
	return Config{
		Imbalance:    imb,
		TasksPerCore: 10,
		MeanTask:     5 * ms,
		Iterations:   2,
		Jitter:       0.1,
		Seed:         1,
	}
}

func TestLoadsMeetTarget(t *testing.T) {
	for _, imb := range []float64{1.0, 1.5, 2.0, 3.0} {
		b := New(testConfig(imb), 8, 4)
		got := metrics.Imbalance(b.Loads())
		if math.Abs(got-imb) > 1e-6 {
			t.Fatalf("imbalance = %v, want %v", got, imb)
		}
	}
}

func TestHeaviestApprankPinning(t *testing.T) {
	cfg := testConfig(2.0)
	cfg.HeaviestApprank = 3
	b := New(cfg, 8, 4)
	loads := b.Loads()
	maxIdx := 0
	for i, l := range loads {
		if l > loads[maxIdx] {
			maxIdx = i
		}
	}
	if maxIdx != 3 {
		t.Fatalf("heaviest apprank = %d, want 3", maxIdx)
	}
}

func TestOptimalTime(t *testing.T) {
	b := New(testConfig(2.0), 4, 4)
	m := cluster.New(4, 4, cluster.DefaultNet())
	// Total work = 4 ranks * 40 tasks * 5ms (mean) * 2 iters = 1.6 core-s
	// over 16 cores = 100ms.
	want := 100 * ms
	got := b.OptimalTime(m)
	if math.Abs(float64(got-want)) > float64(ms) {
		t.Fatalf("optimal = %v, want ~%v", got, want)
	}
}

func TestBaselineMatchesImbalanceBound(t *testing.T) {
	// Without balancing, the elapsed time per iteration should be the
	// heaviest rank's work on its own cores.
	cfg := testConfig(2.0)
	cfg.Jitter = 0
	b := New(cfg, 4, 4)
	m := cluster.New(4, 4, cluster.DefaultNet())
	rt := core.MustNew(core.Config{Machine: m, Degree: 1})
	if err := rt.Run(b.Main()); err != nil {
		t.Fatal(err)
	}
	// Heaviest rank: 40 tasks x 10ms on 4 cores = 100ms/iter, 2 iters.
	elapsed := rt.Elapsed()
	if elapsed < 200*ms || elapsed > 215*ms {
		t.Fatalf("baseline = %v, want ~201ms", elapsed)
	}
}

func TestBalancedRunApproachesOptimal(t *testing.T) {
	cfg := testConfig(2.0)
	b := New(cfg, 4, 4)
	m := cluster.New(4, 4, cluster.DefaultNet())
	rt := core.MustNew(core.Config{
		Machine:      m,
		Degree:       3,
		LeWI:         true,
		DROM:         DROMGlobalAlias,
		GlobalPeriod: 20 * ms,
	})
	if err := rt.Run(b.Main()); err != nil {
		t.Fatal(err)
	}
	opt := b.OptimalTime(m)
	if rt.Elapsed() > opt*3/2 {
		t.Fatalf("balanced = %v, want within 50%% of optimal %v", rt.Elapsed(), opt)
	}
	if rt.TotalOffloadedTasks() == 0 {
		t.Fatal("imbalanced run offloaded nothing")
	}
}

// DROMGlobalAlias avoids importing core's constant under a clash-prone
// name in table-driven tests.
const DROMGlobalAlias = core.DROMGlobal

func TestPanicsOnBadConfig(t *testing.T) {
	for _, fn := range []func(){
		func() { New(Config{Imbalance: 0.5, TasksPerCore: 1, MeanTask: ms, Iterations: 1}, 2, 1) },
		func() { New(Config{Imbalance: 1, MeanTask: ms, Iterations: 1}, 2, 1) },
		func() { New(Config{Imbalance: 1, TasksPerCore: 1, Iterations: 1}, 2, 1) },
		func() { New(Config{Imbalance: 1, TasksPerCore: 1, MeanTask: ms}, 2, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}
