package metrics

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestHistogramBasics(t *testing.T) {
	h := NewHistogram([]float64{1, 2, 4, 8})
	if h.Count() != 0 || h.Sum() != 0 || h.Mean() != 0 || h.Quantile(0.5) != 0 {
		t.Fatalf("empty histogram not zero-valued: count=%d sum=%v mean=%v q50=%v",
			h.Count(), h.Sum(), h.Mean(), h.Quantile(0.5))
	}
	for _, v := range []float64{0.5, 1, 1.5, 3, 9, 100} {
		h.Observe(v)
	}
	if got, want := h.Count(), uint64(6); got != want {
		t.Errorf("Count = %d, want %d", got, want)
	}
	if got, want := h.Sum(), 115.0; got != want {
		t.Errorf("Sum = %v, want %v", got, want)
	}
	if got, want := h.Min(), 0.5; got != want {
		t.Errorf("Min = %v, want %v", got, want)
	}
	if got, want := h.Max(), 100.0; got != want {
		t.Errorf("Max = %v, want %v", got, want)
	}
	if got, want := h.Mean(), 115.0/6; math.Abs(got-want) > 1e-12 {
		t.Errorf("Mean = %v, want %v", got, want)
	}
	// Buckets: (-inf,1] = {0.5, 1}; (1,2] = {1.5}; (2,4] = {3};
	// (4,8] = {}; overflow = {9, 100}.
	want := []uint64{2, 1, 1, 0, 2}
	got := h.BucketCounts()
	if len(got) != len(want) {
		t.Fatalf("BucketCounts len = %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("bucket %d = %d, want %d", i, got[i], want[i])
		}
	}
}

func TestHistogramBucketEdges(t *testing.T) {
	h := NewHistogram([]float64{1, 2})
	// Upper bounds are inclusive.
	h.Observe(1)
	h.Observe(2)
	h.Observe(2.0000001)
	got := h.BucketCounts()
	want := []uint64{1, 1, 1}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("bucket %d = %d, want %d (edges must be inclusive)", i, got[i], want[i])
		}
	}
}

func TestHistogramMerge(t *testing.T) {
	bounds := []float64{1, 10, 100}
	a := NewHistogram(bounds)
	b := NewHistogram(bounds)
	for _, v := range []float64{0.5, 5, 50} {
		a.Observe(v)
	}
	for _, v := range []float64{500, 0.1} {
		b.Observe(v)
	}
	if err := a.Merge(b); err != nil {
		t.Fatalf("Merge: %v", err)
	}
	if a.Count() != 5 {
		t.Errorf("merged Count = %d, want 5", a.Count())
	}
	if got, want := a.Sum(), 555.6; math.Abs(got-want) > 1e-9 {
		t.Errorf("merged Sum = %v, want %v", got, want)
	}
	if a.Min() != 0.1 || a.Max() != 500 {
		t.Errorf("merged Min/Max = %v/%v, want 0.1/500", a.Min(), a.Max())
	}
	// Merging an empty histogram is a no-op.
	before := a.BucketCounts()
	if err := a.Merge(NewHistogram(bounds)); err != nil {
		t.Fatalf("Merge empty: %v", err)
	}
	after := a.BucketCounts()
	for i := range before {
		if before[i] != after[i] {
			t.Errorf("empty merge changed bucket %d: %d -> %d", i, before[i], after[i])
		}
	}
	// Mismatched bounds are rejected.
	if err := a.Merge(NewHistogram([]float64{1, 10})); err == nil {
		t.Error("Merge with fewer bounds: want error, got nil")
	}
	if err := a.Merge(NewHistogram([]float64{1, 10, 99})); err == nil {
		t.Error("Merge with different bounds: want error, got nil")
	}
}

func TestHistogramQuantileExact(t *testing.T) {
	h := NewHistogram(LinearBuckets(1, 1, 100))
	for i := 1; i <= 100; i++ {
		h.Observe(float64(i))
	}
	// With one observation per unit bucket, interpolation is near-exact.
	for _, tc := range []struct{ q, want, tol float64 }{
		{0, 1, 0},
		{0.5, 50, 1},
		{0.9, 90, 1},
		{0.99, 99, 1},
		{1, 100, 0},
	} {
		if got := h.Quantile(tc.q); math.Abs(got-tc.want) > tc.tol {
			t.Errorf("Quantile(%v) = %v, want %v +/- %v", tc.q, got, tc.want, tc.tol)
		}
	}
}

func TestBucketBuilders(t *testing.T) {
	exp := ExpBuckets(1, 2, 4)
	wantExp := []float64{1, 2, 4, 8}
	for i := range wantExp {
		if exp[i] != wantExp[i] {
			t.Errorf("ExpBuckets[%d] = %v, want %v", i, exp[i], wantExp[i])
		}
	}
	lin := LinearBuckets(0.5, 0.25, 3)
	wantLin := []float64{0.5, 0.75, 1.0}
	for i := range wantLin {
		if lin[i] != wantLin[i] {
			t.Errorf("LinearBuckets[%d] = %v, want %v", i, lin[i], wantLin[i])
		}
	}
}

func TestHistogramPanicsOnBadBounds(t *testing.T) {
	for _, bounds := range [][]float64{nil, {}, {1, 1}, {2, 1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewHistogram(%v): want panic", bounds)
				}
			}()
			NewHistogram(bounds)
		}()
	}
}

// genValues draws a bounded value set for the quickcheck properties.
func genValues(rnd *rand.Rand) []float64 {
	n := 1 + rnd.Intn(200)
	out := make([]float64, n)
	for i := range out {
		// Span several orders of magnitude, including sub-bucket values.
		out[i] = math.Exp(rnd.Float64()*12 - 3)
	}
	return out
}

// TestHistogramProperties checks the core invariants over random value
// sets: counts are conserved, the bucket that holds each value respects
// its bounds, and quantiles are monotone within [min, max].
func TestHistogramProperties(t *testing.T) {
	bounds := ExpBuckets(0.1, 2, 16)
	prop := func(seed int64) bool {
		rnd := rand.New(rand.NewSource(seed))
		vals := genValues(rnd)
		h := NewHistogram(bounds)
		sum := 0.0
		for _, v := range vals {
			h.Observe(v)
			sum += v
		}
		if h.Count() != uint64(len(vals)) {
			t.Logf("count mismatch: %d vs %d", h.Count(), len(vals))
			return false
		}
		if math.Abs(h.Sum()-sum) > 1e-9*math.Abs(sum) {
			t.Logf("sum mismatch: %v vs %v", h.Sum(), sum)
			return false
		}
		var total uint64
		for _, c := range h.BucketCounts() {
			total += c
		}
		if total != h.Count() {
			t.Logf("bucket counts do not sum to count: %d vs %d", total, h.Count())
			return false
		}
		sorted := append([]float64(nil), vals...)
		sort.Float64s(sorted)
		if h.Min() != sorted[0] || h.Max() != sorted[len(sorted)-1] {
			t.Logf("min/max mismatch")
			return false
		}
		prev := math.Inf(-1)
		for q := 0.0; q <= 1.0; q += 0.05 {
			est := h.Quantile(q)
			if est < h.Min() || est > h.Max() {
				t.Logf("Quantile(%v) = %v outside [%v, %v]", q, est, h.Min(), h.Max())
				return false
			}
			if est < prev {
				t.Logf("Quantile not monotone at %v: %v < %v", q, est, prev)
				return false
			}
			prev = est
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// TestHistogramMergeProperty checks that merging two histograms equals
// observing the concatenation of their value sets.
func TestHistogramMergeProperty(t *testing.T) {
	bounds := ExpBuckets(0.1, 2, 16)
	prop := func(seed int64) bool {
		rnd := rand.New(rand.NewSource(seed))
		va, vb := genValues(rnd), genValues(rnd)
		a, b, both := NewHistogram(bounds), NewHistogram(bounds), NewHistogram(bounds)
		for _, v := range va {
			a.Observe(v)
			both.Observe(v)
		}
		for _, v := range vb {
			b.Observe(v)
			both.Observe(v)
		}
		if err := a.Merge(b); err != nil {
			t.Logf("Merge: %v", err)
			return false
		}
		if a.Count() != both.Count() || a.Min() != both.Min() || a.Max() != both.Max() {
			return false
		}
		if math.Abs(a.Sum()-both.Sum()) > 1e-9*math.Abs(both.Sum()) {
			return false
		}
		ac, bc := a.BucketCounts(), both.BucketCounts()
		for i := range ac {
			if ac[i] != bc[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// TestHistogramQuantileBracket checks the interpolation stays within the
// bracketing bucket's true value range on a known distribution.
func TestHistogramQuantileBracket(t *testing.T) {
	h := NewHistogram([]float64{10, 20, 30})
	for i := 0; i < 10; i++ {
		h.Observe(5) // all in first bucket
	}
	for i := 0; i < 10; i++ {
		h.Observe(25) // all in third bucket
	}
	// q=0.25 is inside the first bucket: estimate must lie in [min, 10].
	if got := h.Quantile(0.25); got < 5 || got > 10 {
		t.Errorf("Quantile(0.25) = %v, want within [5, 10]", got)
	}
	// q=0.75 is inside the (20,30] bucket: estimate in [20, 25]⊂[20, 30],
	// clamped to max 25.
	if got := h.Quantile(0.75); got < 20 || got > 25 {
		t.Errorf("Quantile(0.75) = %v, want within [20, 25]", got)
	}
}

// TestHistogramQuantileEmptyEdges pins the degenerate quantile inputs on
// an empty histogram: every q, including NaN and out-of-range values,
// returns 0 rather than interpolating garbage.
func TestHistogramQuantileEmptyEdges(t *testing.T) {
	h := NewHistogram([]float64{1, 2, 4})
	for _, q := range []float64{math.NaN(), -1, 0, 0.5, 1, 2} {
		if got := h.Quantile(q); got != 0 {
			t.Errorf("empty Quantile(%v) = %v, want 0", q, got)
		}
	}
}

// TestHistogramSingleBucket covers the smallest legal ladder: one bound,
// so every observation lands in bucket 0 or the overflow bucket, and
// quantile interpolation has to fall back to the observed min/max for
// the unknown edges.
func TestHistogramSingleBucket(t *testing.T) {
	h := NewHistogram([]float64{10})
	for _, v := range []float64{2, 4, 6, 8} {
		h.Observe(v)
	}
	if got := h.BucketCounts(); got[0] != 4 || got[1] != 0 {
		t.Fatalf("bucket counts = %v, want [4 0]", got)
	}
	for _, q := range []float64{0, 0.25, 0.5, 0.75, 1} {
		got := h.Quantile(q)
		if got < h.Min() || got > h.Max() {
			t.Errorf("Quantile(%v) = %v outside observed [%v, %v]", q, got, h.Min(), h.Max())
		}
	}
	if got := h.Quantile(0); got != 2 {
		t.Errorf("Quantile(0) = %v, want the min 2", got)
	}
	if got := h.Quantile(1); got != 8 {
		t.Errorf("Quantile(1) = %v, want the max 8", got)
	}
	// Overflow-only content: quantiles clamp to the observed range even
	// though the overflow bucket has no upper bound.
	o := NewHistogram([]float64{10})
	o.Observe(20)
	o.Observe(30)
	for _, q := range []float64{0.1, 0.5, 0.9} {
		if got := o.Quantile(q); got < 20 || got > 30 {
			t.Errorf("overflow Quantile(%v) = %v outside [20, 30]", q, got)
		}
	}
}

// TestHistogramMergeDisjointRanges merges two histograms whose
// observations occupy disjoint bucket ranges: counts concatenate, the
// min/max span both ranges, and quantiles bridge the empty gap between
// them without inventing mass there.
func TestHistogramMergeDisjointRanges(t *testing.T) {
	bounds := LinearBuckets(10, 10, 10) // 10, 20, ..., 100
	lo := NewHistogram(bounds)
	hi := NewHistogram(bounds)
	for _, v := range []float64{5, 15, 18} { // buckets 0 and 1
		lo.Observe(v)
	}
	for _, v := range []float64{85, 95, 99} { // buckets 8 and 9
		hi.Observe(v)
	}
	if err := lo.Merge(hi); err != nil {
		t.Fatalf("Merge: %v", err)
	}
	if lo.Count() != 6 {
		t.Errorf("Count = %d, want 6", lo.Count())
	}
	if lo.Min() != 5 || lo.Max() != 99 {
		t.Errorf("Min/Max = %v/%v, want 5/99", lo.Min(), lo.Max())
	}
	counts := lo.BucketCounts()
	for i, want := range []uint64{1, 2, 0, 0, 0, 0, 0, 0, 1, 2, 0} {
		if counts[i] != want {
			t.Errorf("bucket %d = %d, want %d", i, counts[i], want)
		}
	}
	// Half the mass sits at or below bucket 1, so the median must land in
	// the gap's edges, never below the low cluster or above the high one.
	q50 := lo.Quantile(0.5)
	if q50 < 10 || q50 > 90 {
		t.Errorf("median %v escaped the bracket [10, 90]", q50)
	}
	// The quartiles stay inside their originating clusters.
	if q := lo.Quantile(0.25); q < 5 || q > 20 {
		t.Errorf("q25 = %v, want within the low cluster [5, 20]", q)
	}
	if q := lo.Quantile(0.9); q < 80 || q > 99 {
		t.Errorf("q90 = %v, want within the high cluster [80, 99]", q)
	}
}
