package metrics

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestImbalance(t *testing.T) {
	cases := []struct {
		loads []float64
		want  float64
	}{
		{[]float64{1, 1, 1, 1}, 1.0},
		{[]float64{2, 1, 1}, 1.5},
		{[]float64{4, 0, 0, 0}, 4.0},
		{nil, 1.0},
		{[]float64{0, 0}, 1.0},
	}
	for _, c := range cases {
		if got := Imbalance(c.loads); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("Imbalance(%v) = %v, want %v", c.loads, got, c.want)
		}
	}
}

func TestImbalanceNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("negative load did not panic")
		}
	}()
	Imbalance([]float64{1, -1})
}

func TestBasicStats(t *testing.T) {
	xs := []float64{4, 1, 3, 2}
	if Mean(xs) != 2.5 || Max(xs) != 4 || Min(xs) != 1 || Median(xs) != 2.5 {
		t.Fatalf("stats wrong: mean=%v max=%v min=%v median=%v", Mean(xs), Max(xs), Min(xs), Median(xs))
	}
	if Mean(nil) != 0 || Max(nil) != 0 || Min(nil) != 0 || Median(nil) != 0 {
		t.Fatal("empty-input stats should be 0")
	}
	if Median([]float64{3, 1, 2}) != 2 {
		t.Fatal("odd median wrong")
	}
	if got := Stddev([]float64{2, 2, 2}); got != 0 {
		t.Fatalf("stddev of constant = %v", got)
	}
	if got := Stddev([]float64{1, 3}); math.Abs(got-1) > 1e-12 {
		t.Fatalf("stddev = %v, want 1", got)
	}
}

func TestSpreadLoadsExactImbalance(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, imb := range []float64{1.0, 1.5, 2.0, 3.0, 4.0} {
		loads := SpreadLoads(8, 50, imb, rng.Float64)
		if len(loads) != 8 {
			t.Fatal("wrong length")
		}
		got := Imbalance(loads)
		if math.Abs(got-imb) > 1e-6 {
			t.Fatalf("imbalance = %v, want %v (loads %v)", got, imb, loads)
		}
		if math.Abs(Mean(loads)-50) > 1e-6 {
			t.Fatalf("mean = %v, want 50", Mean(loads))
		}
		for _, l := range loads {
			if l < -1e-9 {
				t.Fatalf("negative load in %v", loads)
			}
		}
	}
}

func TestSpreadLoadsSingleRank(t *testing.T) {
	loads := SpreadLoads(1, 50, 1.0, func() float64 { return 0.5 })
	if len(loads) != 1 || loads[0] != 50 {
		t.Fatalf("loads = %v", loads)
	}
}

func TestSpreadLoadsPanics(t *testing.T) {
	for _, fn := range []func(){
		func() { SpreadLoads(0, 50, 1, nil) },
		func() { SpreadLoads(4, 50, 0.5, nil) },
		func() { SpreadLoads(4, 50, 5.0, nil) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}

// Property: SpreadLoads always hits the target imbalance and mean, for
// any valid (n, imbalance) pair.
func TestQuickSpreadLoads(t *testing.T) {
	f := func(seed int64, nRaw, imbRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(nRaw%15) + 2
		imb := 1 + float64(imbRaw)/256*float64(n-1)
		loads := SpreadLoads(n, 50, imb, rng.Float64)
		return math.Abs(Imbalance(loads)-imb) < 1e-6 &&
			math.Abs(Mean(loads)-50) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: imbalance is within [1, n].
func TestQuickImbalanceBounds(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		loads := make([]float64, len(raw))
		for i, r := range raw {
			loads[i] = float64(r)
		}
		got := Imbalance(loads)
		return got >= 1-1e-12 && got <= float64(len(raw))+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
