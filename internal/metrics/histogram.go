package metrics

import (
	"fmt"
	"math"
)

// Histogram is a fixed-bucket histogram: observations are counted into
// buckets delimited by a strictly increasing upper-bound ladder, with one
// implicit overflow bucket above the last bound. It tracks count, sum,
// min, and max exactly; quantiles are estimated by linear interpolation
// within the containing bucket. Two histograms with the same bounds can be
// merged, so per-run registries aggregate across a sweep.
//
// The zero Histogram is not usable; construct with NewHistogram.
type Histogram struct {
	bounds []float64 // upper bounds, strictly increasing
	counts []uint64  // len(bounds)+1; counts[len(bounds)] is overflow
	count  uint64
	sum    float64
	min    float64
	max    float64
}

// NewHistogram builds a histogram over the given upper bounds, which must
// be non-empty and strictly increasing. An observation v lands in the
// first bucket with v <= bound, or in the overflow bucket.
func NewHistogram(bounds []float64) *Histogram {
	if len(bounds) == 0 {
		panic("metrics: NewHistogram with no bounds")
	}
	for i := 1; i < len(bounds); i++ {
		if !(bounds[i] > bounds[i-1]) {
			panic(fmt.Sprintf("metrics: histogram bounds not strictly increasing at %d: %v after %v",
				i, bounds[i], bounds[i-1]))
		}
	}
	return &Histogram{
		bounds: append([]float64(nil), bounds...),
		counts: make([]uint64, len(bounds)+1),
	}
}

// ExpBuckets returns n exponentially spaced upper bounds starting at
// start, each factor times the previous.
func ExpBuckets(start, factor float64, n int) []float64 {
	if start <= 0 || factor <= 1 || n <= 0 {
		panic(fmt.Sprintf("metrics: ExpBuckets(%v, %v, %d)", start, factor, n))
	}
	out := make([]float64, n)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// LinearBuckets returns n linearly spaced upper bounds starting at start
// with the given width.
func LinearBuckets(start, width float64, n int) []float64 {
	if width <= 0 || n <= 0 {
		panic(fmt.Sprintf("metrics: LinearBuckets(%v, %v, %d)", start, width, n))
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = start + float64(i)*width
	}
	return out
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := h.bucketOf(v)
	h.counts[i]++
	if h.count == 0 || v < h.min {
		h.min = v
	}
	if h.count == 0 || v > h.max {
		h.max = v
	}
	h.count++
	h.sum += v
}

// bucketOf returns the index of the bucket containing v (binary search).
func (h *Histogram) bucketOf(v float64) int {
	lo, hi := 0, len(h.bounds)
	for lo < hi {
		mid := (lo + hi) / 2
		if v <= h.bounds[mid] {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count }

// Sum returns the sum of observations.
func (h *Histogram) Sum() float64 { return h.sum }

// Min returns the smallest observation (0 when empty).
func (h *Histogram) Min() float64 { return h.min }

// Max returns the largest observation (0 when empty).
func (h *Histogram) Max() float64 { return h.max }

// Mean returns the arithmetic mean of observations (0 when empty).
func (h *Histogram) Mean() float64 {
	if h.count == 0 {
		return 0
	}
	return h.sum / float64(h.count)
}

// Bounds returns a copy of the bucket upper bounds.
func (h *Histogram) Bounds() []float64 { return append([]float64(nil), h.bounds...) }

// BucketCounts returns a copy of the per-bucket counts; the final entry is
// the overflow bucket.
func (h *Histogram) BucketCounts() []uint64 { return append([]uint64(nil), h.counts...) }

// Merge folds o into h. Both histograms must share identical bounds.
func (h *Histogram) Merge(o *Histogram) error {
	if len(h.bounds) != len(o.bounds) {
		return fmt.Errorf("metrics: merging histograms with %d and %d bounds", len(h.bounds), len(o.bounds))
	}
	for i := range h.bounds {
		if h.bounds[i] != o.bounds[i] {
			return fmt.Errorf("metrics: merging histograms with different bounds at %d: %v vs %v",
				i, h.bounds[i], o.bounds[i])
		}
	}
	if o.count == 0 {
		return nil
	}
	if h.count == 0 || o.min < h.min {
		h.min = o.min
	}
	if h.count == 0 || o.max > h.max {
		h.max = o.max
	}
	for i := range h.counts {
		h.counts[i] += o.counts[i]
	}
	h.count += o.count
	h.sum += o.sum
	return nil
}

// Quantile estimates the q-quantile (q in [0, 1]) by linear interpolation
// within the containing bucket, clamped to the observed [min, max] range.
// Empty histograms return 0.
func (h *Histogram) Quantile(q float64) float64 {
	if h.count == 0 {
		return 0
	}
	if math.IsNaN(q) || q <= 0 {
		return h.min
	}
	if q >= 1 {
		return h.max
	}
	target := q * float64(h.count)
	cum := uint64(0)
	for i, c := range h.counts {
		if c == 0 {
			continue
		}
		if float64(cum+c) < target {
			cum += c
			continue
		}
		// The target rank falls in bucket i; interpolate between its
		// edges. The first bucket's lower edge and the overflow bucket's
		// upper edge are unknown, so the observed min/max stand in.
		lo := h.min
		if i > 0 {
			lo = h.bounds[i-1]
		}
		hi := h.max
		if i < len(h.bounds) && h.bounds[i] < hi {
			hi = h.bounds[i]
		}
		if hi < lo {
			hi = lo
		}
		frac := (target - float64(cum)) / float64(c)
		v := lo + (hi-lo)*frac
		return clamp(v, h.min, h.max)
	}
	return h.max
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
