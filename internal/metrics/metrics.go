// Package metrics provides the paper's load-imbalance metric (Equation 2)
// and small statistics helpers shared by the experiments.
package metrics

import (
	"fmt"
	"math"
	"sort"
)

// Imbalance computes Equation 2: max(load) / mean(load), which is >= 1
// and dimensionless. A zero or empty load vector returns 1 (perfectly
// balanced: there is nothing to balance).
func Imbalance(loads []float64) float64 {
	if len(loads) == 0 {
		return 1
	}
	maxL, sum := 0.0, 0.0
	for _, l := range loads {
		if l < 0 {
			panic(fmt.Sprintf("metrics: negative load %v", l))
		}
		if l > maxL {
			maxL = l
		}
		sum += l
	}
	if sum == 0 {
		return 1
	}
	return maxL / (sum / float64(len(loads)))
}

// Mean returns the arithmetic mean (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Max returns the maximum (0 for empty input).
func Max(xs []float64) float64 {
	m := math.Inf(-1)
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	if math.IsInf(m, -1) {
		return 0
	}
	return m
}

// Min returns the minimum (0 for empty input).
func Min(xs []float64) float64 {
	m := math.Inf(1)
	for _, x := range xs {
		if x < m {
			m = x
		}
	}
	if math.IsInf(m, 1) {
		return 0
	}
	return m
}

// Median returns the median (0 for empty input).
func Median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	n := len(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return 0.5 * (s[n/2-1] + s[n/2])
}

// Stddev returns the population standard deviation.
func Stddev(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := Mean(xs)
	v := 0.0
	for _, x := range xs {
		v += (x - m) * (x - m)
	}
	return math.Sqrt(v / float64(len(xs)))
}

// SpreadLoads builds a load vector with a prescribed imbalance (Equation
// 2), the construction used by the paper's synthetic benchmark (§6.2):
// the heaviest entry is mean*imbalance and the others are uniformly
// distributed over the space of values that keep the overall mean at
// mean. next is a uniform [0,1) random source.
func SpreadLoads(n int, mean, imbalance float64, next func() float64) []float64 {
	if n <= 0 {
		panic("metrics: SpreadLoads with n <= 0")
	}
	if imbalance < 1 || imbalance > float64(n) {
		panic(fmt.Sprintf("metrics: imbalance %v outside [1, %d]", imbalance, n))
	}
	loads := make([]float64, n)
	loads[0] = mean * imbalance
	if n == 1 {
		return loads
	}
	// The remaining n-1 entries must sum to rem = n*mean - max, each in
	// [0, max]. Draw uniform points, rescale to the target sum, and
	// iteratively clamp entries exceeding max while redistributing the
	// excess — this always terminates because (n-1)*max >= rem whenever
	// imbalance >= 1 (with equality at imbalance 1, where every entry is
	// clamped to exactly max = mean).
	maxV := loads[0]
	rem := float64(n)*mean - maxV
	vals := loads[1:]
	sum := 0.0
	for i := range vals {
		vals[i] = next()
		sum += vals[i]
	}
	clamped := make([]bool, len(vals))
	for {
		free := 0.0
		budget := rem
		for i := range vals {
			if clamped[i] {
				budget -= maxV
			} else {
				free += vals[i]
			}
		}
		if budget < 0 {
			budget = 0
		}
		again := false
		for i := range vals {
			if clamped[i] {
				vals[i] = maxV
				continue
			}
			if free > 0 {
				vals[i] = vals[i] / free * budget
			} else {
				vals[i] = budget / float64(len(vals))
			}
			if vals[i] > maxV+1e-12 {
				clamped[i] = true
				again = true
			}
		}
		if !again {
			return loads
		}
	}
}
