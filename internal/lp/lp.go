// Package lp implements a dense two-phase primal simplex solver for small
// linear programs.
//
// It plays the role of CVXOPT in the paper's global core-allocation policy
// (§5.4.2): the bisection feasibility subproblems and the minimum-offload
// secondary objective are linear programs over a few hundred variables.
// Problems are stated as
//
//	minimize    c.x
//	subject to  A x {<=,=,>=} b,   x >= 0.
//
// Bland's pivoting rule is used throughout, which guarantees termination
// (no cycling) at the cost of speed — irrelevant at this scale.
package lp

import (
	"errors"
	"fmt"
	"math"
)

// Rel is a constraint relation.
type Rel int

// Constraint relations.
const (
	LE Rel = iota // <=
	GE            // >=
	EQ            // =
)

func (r Rel) String() string {
	switch r {
	case LE:
		return "<="
	case GE:
		return ">="
	case EQ:
		return "="
	}
	return fmt.Sprintf("Rel(%d)", int(r))
}

// Status is the outcome of Solve.
type Status int

// Solver outcomes.
const (
	Optimal Status = iota
	Infeasible
	Unbounded
)

func (s Status) String() string {
	switch s {
	case Optimal:
		return "optimal"
	case Infeasible:
		return "infeasible"
	case Unbounded:
		return "unbounded"
	}
	return fmt.Sprintf("Status(%d)", int(s))
}

// ErrNotSolved reports that the problem has no optimal solution.
var ErrNotSolved = errors.New("lp: no optimal solution")

type constraint struct {
	coef []float64
	rel  Rel
	rhs  float64
}

// Problem is a linear program under construction.
type Problem struct {
	nvars int
	c     []float64
	cons  []constraint
}

// NewProblem creates a problem with nvars non-negative variables and a
// zero objective.
func NewProblem(nvars int) *Problem {
	if nvars <= 0 {
		panic("lp: non-positive variable count")
	}
	return &Problem{nvars: nvars, c: make([]float64, nvars)}
}

// NumVars returns the number of variables.
func (p *Problem) NumVars() int { return p.nvars }

// SetObjective sets the minimization objective coefficients.
func (p *Problem) SetObjective(c []float64) {
	if len(c) != p.nvars {
		panic(fmt.Sprintf("lp: objective has %d coefficients, want %d", len(c), p.nvars))
	}
	copy(p.c, c)
}

// AddConstraint appends the constraint coef.x rel rhs.
func (p *Problem) AddConstraint(coef []float64, rel Rel, rhs float64) {
	if len(coef) != p.nvars {
		panic(fmt.Sprintf("lp: constraint has %d coefficients, want %d", len(coef), p.nvars))
	}
	p.cons = append(p.cons, constraint{coef: append([]float64(nil), coef...), rel: rel, rhs: rhs})
}

// Solution is the result of Solve.
type Solution struct {
	Status    Status
	X         []float64 // variable values (valid when Status == Optimal)
	Objective float64   // c.x at the optimum
}

const eps = 1e-9

// Solve runs two-phase simplex and returns the solution. The error is
// non-nil exactly when Status != Optimal.
func (p *Problem) Solve() (*Solution, error) {
	t := newTableau(p)
	// Phase 1: minimize the sum of artificial variables.
	if t.nart > 0 {
		t.setPhase1Objective()
		if status := t.iterate(); status == Unbounded {
			// Phase 1 is bounded below by 0; this cannot happen.
			return &Solution{Status: Infeasible}, fmt.Errorf("lp: %w (phase-1 unbounded)", ErrNotSolved)
		}
		if t.objectiveValue() > 1e-7 {
			return &Solution{Status: Infeasible}, fmt.Errorf("lp: %w (infeasible)", ErrNotSolved)
		}
		t.driveOutArtificials()
	}
	// Phase 2: original objective.
	t.setPhase2Objective(p.c)
	if status := t.iterate(); status == Unbounded {
		return &Solution{Status: Unbounded}, fmt.Errorf("lp: %w (unbounded)", ErrNotSolved)
	}
	x := t.extract(p.nvars)
	obj := 0.0
	for i, ci := range p.c {
		obj += ci * x[i]
	}
	return &Solution{Status: Optimal, X: x, Objective: obj}, nil
}

// tableau is the dense simplex tableau. Columns are ordered: original
// variables, slack/surplus variables, artificial variables, rhs.
type tableau struct {
	m, n    int // constraints, total columns excluding rhs
	norig   int
	nart    int
	artCol0 int         // first artificial column
	a       [][]float64 // m rows x (n+1); last column is rhs
	obj     []float64   // n+1 entries; reduced costs and objective value
	basis   []int       // basic variable (column) of each row
	phase2  bool        // artificials frozen
}

func newTableau(p *Problem) *tableau {
	m := len(p.cons)
	// Count slack/surplus and artificial columns. Rows with negative rhs
	// are negated, which flips LE<->GE; both need one slack either way.
	nslack, nart := 0, 0
	for _, c := range p.cons {
		rel := c.rel
		if c.rhs < 0 {
			switch rel {
			case LE:
				rel = GE
			case GE:
				rel = LE
			}
		}
		switch rel {
		case LE:
			nslack++
		case GE:
			nslack++
			nart++
		case EQ:
			nart++
		}
	}
	n := p.nvars + nslack + nart
	t := &tableau{
		m: m, n: n, norig: p.nvars, nart: nart,
		artCol0: p.nvars + nslack,
		a:       make([][]float64, m),
		obj:     make([]float64, n+1),
		basis:   make([]int, m),
	}
	slack := p.nvars
	art := t.artCol0
	for i, c := range p.cons {
		row := make([]float64, n+1)
		coef := c.coef
		rhs := c.rhs
		rel := c.rel
		sign := 1.0
		if rhs < 0 {
			sign = -1.0
			rhs = -rhs
			switch rel {
			case LE:
				rel = GE
			case GE:
				rel = LE
			}
		}
		for j, v := range coef {
			row[j] = sign * v
		}
		row[n] = rhs
		switch rel {
		case LE:
			row[slack] = 1
			t.basis[i] = slack
			slack++
		case GE:
			row[slack] = -1
			slack++
			row[art] = 1
			t.basis[i] = art
			art++
		case EQ:
			row[art] = 1
			t.basis[i] = art
			art++
		}
		t.a[i] = row
	}
	return t
}

// setPhase1Objective installs minimize sum(artificials), expressed in terms
// of the current (artificial) basis.
func (t *tableau) setPhase1Objective() {
	for j := range t.obj {
		t.obj[j] = 0
	}
	for j := t.artCol0; j < t.artCol0+t.nart; j++ {
		t.obj[j] = 1
	}
	// Price out the basic artificials: subtract their rows.
	for i, b := range t.basis {
		if b >= t.artCol0 {
			for j := 0; j <= t.n; j++ {
				t.obj[j] -= t.a[i][j]
			}
		}
	}
}

// setPhase2Objective installs minimize c.x priced out against the current
// basis; artificial columns are frozen (treated as forbidden to enter).
func (t *tableau) setPhase2Objective(c []float64) {
	t.phase2 = true
	for j := range t.obj {
		t.obj[j] = 0
	}
	for j := 0; j < t.norig; j++ {
		t.obj[j] = c[j]
	}
	for i, b := range t.basis {
		cb := 0.0
		if b < t.norig {
			cb = c[b]
		}
		if cb != 0 {
			for j := 0; j <= t.n; j++ {
				t.obj[j] -= cb * t.a[i][j]
			}
		}
	}
}

// objectiveValue returns the current objective value (phase-1 form stores
// -value in the rhs entry).
func (t *tableau) objectiveValue() float64 { return -t.obj[t.n] }

// forbidden reports whether column j may not enter the basis (artificials
// in phase 2).
func (t *tableau) forbidden(j int, phase2 bool) bool {
	return phase2 && j >= t.artCol0 && j < t.artCol0+t.nart
}

// iterate runs simplex pivots (Bland's rule) until optimal or unbounded.
// Phase is inferred: after setPhase2Objective artificials are frozen.
func (t *tableau) iterate() Status {
	phase2 := t.phase2
	for iter := 0; ; iter++ {
		if iter > 100000 {
			panic("lp: iteration limit exceeded (cycling despite Bland's rule?)")
		}
		// Entering column: smallest index with negative reduced cost.
		enter := -1
		for j := 0; j < t.n; j++ {
			if t.forbidden(j, phase2) {
				continue
			}
			if t.obj[j] < -eps {
				enter = j
				break
			}
		}
		if enter < 0 {
			return Optimal
		}
		// Leaving row: min ratio, ties broken by smallest basis index.
		leave := -1
		best := math.Inf(1)
		for i := 0; i < t.m; i++ {
			if t.a[i][enter] > eps {
				ratio := t.a[i][t.n] / t.a[i][enter]
				if ratio < best-eps || (ratio < best+eps && (leave < 0 || t.basis[i] < t.basis[leave])) {
					best = ratio
					leave = i
				}
			}
		}
		if leave < 0 {
			return Unbounded
		}
		t.pivot(leave, enter)
	}
}

func (t *tableau) pivot(row, col int) {
	p := t.a[row][col]
	for j := 0; j <= t.n; j++ {
		t.a[row][j] /= p
	}
	for i := 0; i < t.m; i++ {
		if i == row {
			continue
		}
		f := t.a[i][col]
		if f == 0 {
			continue
		}
		for j := 0; j <= t.n; j++ {
			t.a[i][j] -= f * t.a[row][j]
		}
	}
	f := t.obj[col]
	if f != 0 {
		for j := 0; j <= t.n; j++ {
			t.obj[j] -= f * t.a[row][j]
		}
	}
	t.basis[row] = col
}

// driveOutArtificials pivots basic artificial variables out of the basis
// where possible (degenerate rows) so phase 2 starts clean.
func (t *tableau) driveOutArtificials() {
	for i := 0; i < t.m; i++ {
		if t.basis[i] < t.artCol0 {
			continue
		}
		// Find any non-artificial column with a non-zero entry.
		swapped := false
		for j := 0; j < t.artCol0; j++ {
			if math.Abs(t.a[i][j]) > eps {
				t.pivot(i, j)
				swapped = true
				break
			}
		}
		if !swapped {
			// Redundant row: the artificial stays basic at value ~0,
			// which is harmless because its column is frozen in phase 2.
			continue
		}
	}
}

// extract reads the values of the first nvars variables from the tableau.
func (t *tableau) extract(nvars int) []float64 {
	x := make([]float64, nvars)
	for i, b := range t.basis {
		if b < nvars {
			x[b] = t.a[i][t.n]
			if x[b] < 0 && x[b] > -1e-7 {
				x[b] = 0
			}
		}
	}
	return x
}
