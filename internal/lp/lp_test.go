package lp

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func solveOK(t *testing.T, p *Problem) *Solution {
	t.Helper()
	s, err := p.Solve()
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if s.Status != Optimal {
		t.Fatalf("status = %v, want optimal", s.Status)
	}
	return s
}

func approx(a, b float64) bool { return math.Abs(a-b) < 1e-6 }

func TestSimpleMaximization(t *testing.T) {
	// max 3x + 5y s.t. x <= 4, 2y <= 12, 3x + 2y <= 18  => x=2, y=6, obj=36.
	// As minimization of -(3x + 5y).
	p := NewProblem(2)
	p.SetObjective([]float64{-3, -5})
	p.AddConstraint([]float64{1, 0}, LE, 4)
	p.AddConstraint([]float64{0, 2}, LE, 12)
	p.AddConstraint([]float64{3, 2}, LE, 18)
	s := solveOK(t, p)
	if !approx(s.X[0], 2) || !approx(s.X[1], 6) || !approx(s.Objective, -36) {
		t.Fatalf("x = %v, obj = %v; want [2 6], -36", s.X, s.Objective)
	}
}

func TestEqualityConstraint(t *testing.T) {
	// min x + 2y s.t. x + y = 10, x <= 4  => x=4, y=6, obj=16.
	p := NewProblem(2)
	p.SetObjective([]float64{1, 2})
	p.AddConstraint([]float64{1, 1}, EQ, 10)
	p.AddConstraint([]float64{1, 0}, LE, 4)
	s := solveOK(t, p)
	if !approx(s.X[0], 4) || !approx(s.X[1], 6) || !approx(s.Objective, 16) {
		t.Fatalf("x = %v, obj = %v; want [4 6], 16", s.X, s.Objective)
	}
}

func TestGEConstraint(t *testing.T) {
	// min 2x + 3y s.t. x + y >= 5, x >= 1  => x=5, y=0, obj=10.
	p := NewProblem(2)
	p.SetObjective([]float64{2, 3})
	p.AddConstraint([]float64{1, 1}, GE, 5)
	p.AddConstraint([]float64{1, 0}, GE, 1)
	s := solveOK(t, p)
	if !approx(s.Objective, 10) {
		t.Fatalf("obj = %v, want 10 (x=%v)", s.Objective, s.X)
	}
}

func TestNegativeRHS(t *testing.T) {
	// min x s.t. -x <= -3  (i.e. x >= 3) => x=3.
	p := NewProblem(1)
	p.SetObjective([]float64{1})
	p.AddConstraint([]float64{-1}, LE, -3)
	s := solveOK(t, p)
	if !approx(s.X[0], 3) {
		t.Fatalf("x = %v, want 3", s.X)
	}
}

func TestInfeasible(t *testing.T) {
	p := NewProblem(1)
	p.SetObjective([]float64{1})
	p.AddConstraint([]float64{1}, GE, 5)
	p.AddConstraint([]float64{1}, LE, 3)
	s, err := p.Solve()
	if err == nil || s.Status != Infeasible {
		t.Fatalf("status = %v, err = %v; want infeasible", s.Status, err)
	}
}

func TestUnbounded(t *testing.T) {
	p := NewProblem(2)
	p.SetObjective([]float64{-1, 0}) // maximize x with no upper bound
	p.AddConstraint([]float64{0, 1}, LE, 1)
	s, err := p.Solve()
	if err == nil || s.Status != Unbounded {
		t.Fatalf("status = %v, err = %v; want unbounded", s.Status, err)
	}
}

func TestDegenerate(t *testing.T) {
	// A classic degenerate LP; Bland's rule must terminate.
	// min -0.75x4 + 150x5 - 0.02x6 + 6x7 (Beale's cycling example).
	p := NewProblem(4)
	p.SetObjective([]float64{-0.75, 150, -0.02, 6})
	p.AddConstraint([]float64{0.25, -60, -0.04, 9}, LE, 0)
	p.AddConstraint([]float64{0.5, -90, -0.02, 3}, LE, 0)
	p.AddConstraint([]float64{0, 0, 1, 0}, LE, 1)
	s := solveOK(t, p)
	if !approx(s.Objective, -0.05) {
		t.Fatalf("obj = %v, want -0.05", s.Objective)
	}
}

func TestRedundantEqualities(t *testing.T) {
	// x + y = 4 stated twice; min x => x=0, y=4.
	p := NewProblem(2)
	p.SetObjective([]float64{1, 0})
	p.AddConstraint([]float64{1, 1}, EQ, 4)
	p.AddConstraint([]float64{2, 2}, EQ, 8)
	s := solveOK(t, p)
	if !approx(s.X[0], 0) || !approx(s.X[1], 4) {
		t.Fatalf("x = %v, want [0 4]", s.X)
	}
}

func TestZeroObjectiveFeasibilityCheck(t *testing.T) {
	// Pure feasibility: any x with x1 + x2 >= 2, x1 <= 1, x2 <= 2.
	p := NewProblem(2)
	p.AddConstraint([]float64{1, 1}, GE, 2)
	p.AddConstraint([]float64{1, 0}, LE, 1)
	p.AddConstraint([]float64{0, 1}, LE, 2)
	s := solveOK(t, p)
	if s.X[0]+s.X[1] < 2-1e-9 || s.X[0] > 1+1e-9 || s.X[1] > 2+1e-9 {
		t.Fatalf("returned infeasible point %v", s.X)
	}
}

func TestAllocationShapedProblem(t *testing.T) {
	// A miniature of the paper's core-allocation LP at fixed t:
	// workers w0 (apprank 0 on node 0), w1 (apprank 0 on node 1),
	// w2 (apprank 1 on node 1). Node capacities 4 and 4.
	// Apprank 0 needs >= 6 cores, apprank 1 needs >= 2.
	// Minimize offloaded cores (w1).
	p := NewProblem(3)
	p.SetObjective([]float64{0, 1, 0})
	p.AddConstraint([]float64{1, 0, 0}, LE, 4) // node 0 capacity
	p.AddConstraint([]float64{0, 1, 1}, LE, 4) // node 1 capacity
	p.AddConstraint([]float64{1, 1, 0}, GE, 6) // apprank 0 demand
	p.AddConstraint([]float64{0, 0, 1}, GE, 2) // apprank 1 demand
	for i := 0; i < 3; i++ {
		coef := make([]float64, 3)
		coef[i] = 1
		p.AddConstraint(coef, GE, 1) // every worker owns >= 1 core
	}
	s := solveOK(t, p)
	if !approx(s.X[0], 4) || !approx(s.X[1], 2) || !approx(s.X[2], 2) {
		t.Fatalf("x = %v, want [4 2 2]", s.X)
	}
}

func TestInputValidationPanics(t *testing.T) {
	for _, fn := range []func(){
		func() { NewProblem(0) },
		func() { NewProblem(2).SetObjective([]float64{1}) },
		func() { NewProblem(2).AddConstraint([]float64{1}, LE, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}

// TestQuickFeasibleBoundedLP builds random LPs that are feasible and
// bounded by construction (box constraints plus random LE cuts that keep
// the origin feasible) and checks that the solver's optimum is no worse
// than a cloud of random feasible points.
func TestQuickFeasibleBoundedLP(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(4)
		p := NewProblem(n)
		c := make([]float64, n)
		for i := range c {
			c[i] = rng.Float64()*4 - 2
		}
		p.SetObjective(c)
		// Box: x_i <= 10 keeps the problem bounded in every direction
		// that decreases the objective... except negative c with x free
		// upward; box handles it.
		for i := 0; i < n; i++ {
			coef := make([]float64, n)
			coef[i] = 1
			p.AddConstraint(coef, LE, 10)
		}
		// Random cuts a.x <= b with b >= 0 keep the origin feasible.
		cuts := rng.Intn(4)
		type cut struct {
			coef []float64
			rhs  float64
		}
		var cutList []cut
		for k := 0; k < cuts; k++ {
			coef := make([]float64, n)
			for i := range coef {
				coef[i] = rng.Float64()*2 - 1
			}
			rhs := rng.Float64() * 5
			p.AddConstraint(coef, LE, rhs)
			cutList = append(cutList, cut{coef, rhs})
		}
		s, err := p.Solve()
		if err != nil || s.Status != Optimal {
			return false
		}
		// The optimum must be feasible.
		for i := 0; i < n; i++ {
			if s.X[i] < -1e-7 || s.X[i] > 10+1e-7 {
				return false
			}
		}
		for _, cu := range cutList {
			dot := 0.0
			for i := range cu.coef {
				dot += cu.coef[i] * s.X[i]
			}
			if dot > cu.rhs+1e-6 {
				return false
			}
		}
		// And at least as good as random feasible samples.
		for trial := 0; trial < 200; trial++ {
			x := make([]float64, n)
			for i := range x {
				x[i] = rng.Float64() * 10
			}
			ok := true
			for _, cu := range cutList {
				dot := 0.0
				for i := range cu.coef {
					dot += cu.coef[i] * x[i]
				}
				if dot > cu.rhs {
					ok = false
					break
				}
			}
			if !ok {
				continue
			}
			obj := 0.0
			for i := range x {
				obj += c[i] * x[i]
			}
			if obj < s.Objective-1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
