package lp

import (
	"math/rand"
	"testing"
)

// BenchmarkAllocationLP measures a 64-node-shaped feasibility +
// min-offload solve (256 worker variables, ~130 constraints).
func BenchmarkAllocationLP(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	const nodes, workersPer = 64, 4
	nvars := nodes * workersPer
	build := func() *Problem {
		p := NewProblem(nvars)
		obj := make([]float64, nvars)
		for w := 0; w < nvars; w++ {
			if w%workersPer != 0 {
				obj[w] = 1
			}
		}
		p.SetObjective(obj)
		for n := 0; n < nodes; n++ {
			coef := make([]float64, nvars)
			for k := 0; k < workersPer; k++ {
				coef[n*workersPer+k] = 1
			}
			p.AddConstraint(coef, LE, 44)
		}
		for a := 0; a < nodes; a++ {
			coef := make([]float64, nvars)
			for k := 0; k < workersPer; k++ {
				coef[a*workersPer+k] = 1
			}
			p.AddConstraint(coef, GE, rng.Float64()*40)
		}
		return p
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := build().Solve(); err != nil {
			b.Fatal(err)
		}
	}
}
