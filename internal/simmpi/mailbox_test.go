package simmpi

import (
	"strings"
	"testing"

	"ompsscluster/internal/cluster"
	"ompsscluster/internal/simtime"
)

// The Post→Handle delivery path is the runtime's control-message
// mechanism and runs once per offloaded task, so its allocation budget is
// pinned: one message struct plus the delivery closure, with the mailbox
// buckets reusing their backing arrays in steady state.
func TestAllocsPerMessage(t *testing.T) {
	env := simtime.NewEnv()
	m := cluster.New(2, 4, cluster.DefaultNet())
	w := NewWorld(env, m, []int{0, 1})
	got := 0
	w.Handle(1, func(src, tag int, data any, size int64) { got++ })
	const batch = 256
	warm := func() {
		for i := 0; i < batch; i++ {
			w.Post(0, 1, i%16, nil, 64)
		}
	}
	warm()
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	var runErr error
	allocs := testing.AllocsPerRun(50, func() {
		warm()
		if err := env.Run(); err != nil {
			runErr = err
		}
	})
	if runErr != nil {
		t.Fatal(runErr)
	}
	if per := allocs / batch; per > 3.5 {
		t.Errorf("allocs per message = %.2f (%.0f per %d messages), want <= 3.5", per, allocs, batch)
	}
}

// Receiving in reverse tag order exercises every per-(src,tag) bucket:
// each Recv must find its message while dozens of non-matching messages
// sit in other buckets. The payloads verify no cross-bucket mixups.
func TestBucketedReverseTagRecv(t *testing.T) {
	const tags = 32
	env, w := newTestWorld(2)
	w.Spawn(0, func(c *Comm) {
		for tag := 0; tag < tags; tag++ {
			c.Send(1, tag, 100+tag, 8)
		}
	})
	w.Spawn(1, func(c *Comm) {
		c.Proc().Sleep(simtime.Second) // let every message arrive first
		for tag := tags - 1; tag >= 0; tag-- {
			v, st := c.Recv(0, tag)
			if v.(int) != 100+tag || st.Tag != tag {
				t.Errorf("tag %d: got %v (status %+v)", tag, v, st)
			}
		}
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
}

// A wildcard Recv must match messages in ARRIVAL order, not post order.
// Rank 1 posts first but with a large payload (slow transfer); rank 2
// posts later with a tiny one that overtakes it on the wire. The receiver
// waits for both and must see rank 2's message first — this is the
// ordered fallback over the bucket heads, which selects the minimum
// arrival stamp rather than iterating the map.
func TestWildcardArrivalOrder(t *testing.T) {
	env, w := newTestWorld(3)
	w.Spawn(1, func(c *Comm) {
		c.Send(0, 5, "slow", 1<<20) // 1 MiB: long transfer
	})
	w.Spawn(2, func(c *Comm) {
		c.Proc().Sleep(simtime.Microsecond)
		c.Send(0, 5, "fast", 8) // posted later, arrives earlier
	})
	w.Spawn(0, func(c *Comm) {
		c.Proc().Sleep(60 * simtime.Second) // both are unexpected messages
		v1, st1 := c.Recv(AnySource, AnyTag)
		v2, st2 := c.Recv(AnySource, AnyTag)
		if v1 != "fast" || st1.Source != 2 {
			t.Errorf("first wildcard recv = %v from %d, want fast from 2", v1, st1.Source)
		}
		if v2 != "slow" || st2.Source != 1 {
			t.Errorf("second wildcard recv = %v from %d, want slow from 1", v2, st2.Source)
		}
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
}

// A message from a rank outside the receiver's communicator must fail
// loudly: translating the foreign global rank used to return the
// AnySource sentinel, silently corrupting wildcard matching. Rank 1
// sends on the world communicator while rank 0 receives on a singleton
// sub-communicator that rank 1 does not belong to.
func TestCommRankOfForeignRankPanics(t *testing.T) {
	env, w := newTestWorld(2)
	w.Spawn(0, func(c *Comm) {
		sub := c.Split(0, 0) // {0} only
		sub.Recv(AnySource, 7)
	})
	w.Spawn(1, func(c *Comm) {
		c.Split(1, 0) // separate color: not a member of rank 0's sub-comm
		c.Send(0, 7, nil, 8)
	})
	err := env.Run()
	if err == nil {
		t.Fatal("receiving a foreign rank's message did not fail")
	}
	if !strings.Contains(err.Error(), "not a member") {
		t.Fatalf("error = %v, want mention of membership", err)
	}
}
