package simmpi

import (
	"fmt"
	"testing"
	"testing/quick"

	"ompsscluster/internal/cluster"
	"ompsscluster/internal/simtime"
)

// newTestWorld builds a world of n ranks, one per node, on a homogeneous
// machine with the default network.
func newTestWorld(n int) (*simtime.Env, *World) {
	env := simtime.NewEnv()
	m := cluster.New(n, 4, cluster.DefaultNet())
	placement := make([]int, n)
	for i := range placement {
		placement[i] = i
	}
	return env, NewWorld(env, m, placement)
}

func TestSendRecv(t *testing.T) {
	env, w := newTestWorld(2)
	var got any
	var st Status
	w.Spawn(0, func(c *Comm) {
		c.Send(1, 7, "payload", 100)
	})
	w.Spawn(1, func(c *Comm) {
		got, st = c.Recv(0, 7)
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if got != "payload" {
		t.Fatalf("got = %v", got)
	}
	if st.Source != 0 || st.Tag != 7 || st.Size != 100 {
		t.Fatalf("status = %+v", st)
	}
	if env.Now() <= 0 {
		t.Fatal("message delivery took no virtual time")
	}
}

func TestRecvBeforeSend(t *testing.T) {
	env, w := newTestWorld(2)
	var got any
	w.Spawn(0, func(c *Comm) {
		got, _ = c.Recv(1, 3)
	})
	w.Spawn(1, func(c *Comm) {
		c.Proc().Sleep(simtime.Millisecond)
		c.Send(0, 3, 42, 8)
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if got != 42 {
		t.Fatalf("got = %v", got)
	}
}

func TestTagMatching(t *testing.T) {
	env, w := newTestWorld(2)
	var order []int
	w.Spawn(0, func(c *Comm) {
		c.Send(1, 5, "five", 8)
		c.Send(1, 6, "six", 8)
	})
	w.Spawn(1, func(c *Comm) {
		v6, _ := c.Recv(0, 6)
		v5, _ := c.Recv(0, 5)
		if v6 != "six" || v5 != "five" {
			t.Errorf("tag matching wrong: %v %v", v6, v5)
		}
		order = append(order, 1)
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if len(order) != 1 {
		t.Fatal("receiver did not finish")
	}
}

func TestAnySourceAnyTag(t *testing.T) {
	env, w := newTestWorld(3)
	var sources []int
	for r := 1; r <= 2; r++ {
		r := r
		w.Spawn(r, func(c *Comm) {
			c.Proc().Sleep(simtime.Duration(r) * simtime.Millisecond)
			c.Send(0, r*10, r, 8)
		})
	}
	w.Spawn(0, func(c *Comm) {
		for i := 0; i < 2; i++ {
			_, st := c.Recv(AnySource, AnyTag)
			sources = append(sources, st.Source)
		}
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if len(sources) != 2 || sources[0] != 1 || sources[1] != 2 {
		t.Fatalf("sources = %v (wildcard receives must arrive in time order)", sources)
	}
}

func TestBarrierSynchronizes(t *testing.T) {
	env, w := newTestWorld(4)
	var after []simtime.Time
	for r := 0; r < 4; r++ {
		r := r
		w.Spawn(r, func(c *Comm) {
			c.Proc().Sleep(simtime.Duration(r+1) * simtime.Millisecond)
			c.Barrier()
			after = append(after, env.Now())
		})
	}
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if len(after) != 4 {
		t.Fatalf("only %d ranks passed the barrier", len(after))
	}
	for _, ts := range after {
		if ts < simtime.Time(4*simtime.Millisecond) {
			t.Fatalf("rank passed barrier at %v, before the slowest arrival", ts)
		}
		if ts != after[0] {
			t.Fatalf("ranks left barrier at different times: %v", after)
		}
	}
}

func TestBcast(t *testing.T) {
	env, w := newTestWorld(4)
	got := make([]any, 4)
	for r := 0; r < 4; r++ {
		r := r
		w.Spawn(r, func(c *Comm) {
			v := any(nil)
			if r == 2 {
				v = "root-value"
			}
			got[r] = c.Bcast(2, v, 64)
		})
	}
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	for r, v := range got {
		if v != "root-value" {
			t.Fatalf("rank %d got %v", r, v)
		}
	}
}

func TestReduceAndAllreduce(t *testing.T) {
	env, w := newTestWorld(5)
	reduced := make([]any, 5)
	allred := make([]any, 5)
	for r := 0; r < 5; r++ {
		r := r
		w.Spawn(r, func(c *Comm) {
			reduced[r] = c.Reduce(0, float64(r+1), Sum)
			allred[r] = c.Allreduce(r, Max)
		})
	}
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if reduced[0] != 15.0 {
		t.Fatalf("Reduce on root = %v, want 15", reduced[0])
	}
	for r := 1; r < 5; r++ {
		if reduced[r] != nil {
			t.Fatalf("Reduce on rank %d = %v, want nil", r, reduced[r])
		}
	}
	for r := 0; r < 5; r++ {
		if allred[r] != 4 {
			t.Fatalf("Allreduce on rank %d = %v, want 4", r, allred[r])
		}
	}
}

func TestReduceMin(t *testing.T) {
	env, w := newTestWorld(3)
	var got any
	for r := 0; r < 3; r++ {
		r := r
		w.Spawn(r, func(c *Comm) {
			v := c.Allreduce(float64(10-r), Min)
			if r == 0 {
				got = v
			}
		})
	}
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if got != 8.0 {
		t.Fatalf("Allreduce Min = %v, want 8", got)
	}
}

func TestGatherAllgather(t *testing.T) {
	env, w := newTestWorld(3)
	var rootGather []any
	all := make([][]any, 3)
	for r := 0; r < 3; r++ {
		r := r
		w.Spawn(r, func(c *Comm) {
			g := c.Gather(1, fmt.Sprintf("v%d", r), 8)
			if r == 1 {
				rootGather = g
			} else if g != nil {
				t.Errorf("Gather returned non-nil on non-root %d", r)
			}
			all[r] = c.Allgather(r*r, 8)
		})
	}
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if len(rootGather) != 3 || rootGather[0] != "v0" || rootGather[2] != "v2" {
		t.Fatalf("Gather = %v", rootGather)
	}
	for r := 0; r < 3; r++ {
		for i := 0; i < 3; i++ {
			if all[r][i] != i*i {
				t.Fatalf("Allgather[%d] = %v", r, all[r])
			}
		}
	}
}

func TestSplit(t *testing.T) {
	env, w := newTestWorld(6)
	type res struct{ rank, size int }
	results := make([]res, 6)
	for r := 0; r < 6; r++ {
		r := r
		w.Spawn(r, func(c *Comm) {
			sub := c.Split(r%2, r)
			// Even ranks {0,2,4} form one comm, odd {1,3,5} another.
			results[r] = res{sub.Rank(), sub.Size()}
			// The sub-communicator must support collectives.
			sum := sub.Allreduce(r, Sum)
			wantSum := 0 + 2 + 4
			if r%2 == 1 {
				wantSum = 1 + 3 + 5
			}
			if sum != wantSum {
				t.Errorf("rank %d: sub Allreduce = %v, want %d", r, sum, wantSum)
			}
		})
	}
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	for r := 0; r < 6; r++ {
		if results[r].size != 3 {
			t.Fatalf("rank %d sub size = %d", r, results[r].size)
		}
		if results[r].rank != r/2 {
			t.Fatalf("rank %d sub rank = %d, want %d", r, results[r].rank, r/2)
		}
	}
}

func TestSplitNegativeColor(t *testing.T) {
	env, w := newTestWorld(2)
	var r0 *Comm
	w.Spawn(0, func(c *Comm) { r0 = c.Split(-1, 0) })
	w.Spawn(1, func(c *Comm) {
		sub := c.Split(0, 0)
		if sub == nil || sub.Size() != 1 {
			t.Error("rank 1 sub comm wrong")
		}
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if r0 != nil {
		t.Fatal("negative color must return nil comm")
	}
}

func TestPostAndHandle(t *testing.T) {
	env, w := newTestWorld(2)
	var got []string
	w.Handle(1, func(src, tag int, data any, size int64) {
		got = append(got, fmt.Sprintf("%d/%d/%v/%d", src, tag, data, size))
	})
	env.Schedule(simtime.Millisecond, func() {
		w.Post(0, 1, 9, "ctl", 16)
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0] != "0/9/ctl/16" {
		t.Fatalf("handler got %v", got)
	}
}

func TestLocalVsRemoteLatency(t *testing.T) {
	env := simtime.NewEnv()
	m := cluster.New(2, 4, cluster.DefaultNet())
	// ranks 0,1 on node 0; rank 2 on node 1
	w := NewWorld(env, m, []int{0, 0, 1})
	var localAt, remoteAt simtime.Time
	w.Spawn(0, func(c *Comm) {
		c.Send(1, 1, nil, 1<<20)
		c.Send(2, 1, nil, 1<<20)
	})
	w.Spawn(1, func(c *Comm) { c.Recv(0, 1); localAt = env.Now() })
	w.Spawn(2, func(c *Comm) { c.Recv(0, 1); remoteAt = env.Now() })
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if localAt >= remoteAt {
		t.Fatalf("local delivery at %v not faster than remote at %v", localAt, remoteAt)
	}
}

func TestNodeOfAndSize(t *testing.T) {
	env := simtime.NewEnv()
	m := cluster.New(2, 4, cluster.DefaultNet())
	w := NewWorld(env, m, []int{0, 1, 1})
	if w.Size() != 3 {
		t.Fatalf("Size = %d", w.Size())
	}
	if w.NodeOf(0) != 0 || w.NodeOf(2) != 1 {
		t.Fatal("NodeOf wrong")
	}
}

func TestInvalidPlacementPanics(t *testing.T) {
	env := simtime.NewEnv()
	m := cluster.New(2, 4, cluster.DefaultNet())
	defer func() {
		if recover() == nil {
			t.Error("invalid placement did not panic")
		}
	}()
	NewWorld(env, m, []int{0, 5})
}

// Property: Allreduce(Sum) over random int contributions equals the serial
// sum regardless of rank count.
func TestQuickAllreduceSum(t *testing.T) {
	f := func(raw []int8) bool {
		n := len(raw)
		if n == 0 || n > 12 {
			return true
		}
		env, w := newTestWorld(n)
		want := 0
		for _, v := range raw {
			want += int(v)
		}
		ok := true
		for r := 0; r < n; r++ {
			r := r
			w.Spawn(r, func(c *Comm) {
				if got := c.Allreduce(int(raw[r]), Sum); got != want {
					ok = false
				}
			})
		}
		if err := env.Run(); err != nil {
			return false
		}
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: every point-to-point message is delivered exactly once, in
// order per (src, dst, tag) stream.
func TestQuickMessageDelivery(t *testing.T) {
	f := func(count uint8) bool {
		n := int(count%20) + 1
		env, w := newTestWorld(2)
		var got []int
		w.Spawn(0, func(c *Comm) {
			for i := 0; i < n; i++ {
				c.Send(1, 4, i, 8)
			}
		})
		w.Spawn(1, func(c *Comm) {
			for i := 0; i < n; i++ {
				v, _ := c.Recv(0, 4)
				got = append(got, v.(int))
			}
		})
		if err := env.Run(); err != nil {
			return false
		}
		if len(got) != n {
			return false
		}
		for i, v := range got {
			if v != i {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
