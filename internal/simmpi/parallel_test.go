package simmpi

import (
	"fmt"
	"reflect"
	"testing"

	"ompsscluster/internal/cluster"
	"ompsscluster/internal/simtime"
)

// rankProgram is a small SPMD program exercising p2p rings, collectives
// of every flavor, and local compute. Each rank appends to its own log
// slice (race-free: the rank process runs on its home environment).
func rankProgram(logs []*[]string) func(c *Comm) {
	return func(c *Comm) {
		r := c.Rank()
		p := c.Size()
		log := logs[r]
		rec := func(format string, args ...any) {
			*log = append(*log, fmt.Sprintf("@%d ", c.Proc().Env().Now())+fmt.Sprintf(format, args...))
		}
		for iter := 0; iter < 3; iter++ {
			c.Proc().Sleep(simtime.Duration(100 + 37*r + 11*iter))
			sum := c.Allreduce(float64(r+iter), Sum).(float64)
			rec("iter %d allreduce=%v", iter, sum)
			c.Send((r+1)%p, 7, fmt.Sprintf("hello %d->%d", r, (r+1)%p), 64)
			data, st := c.Recv((r-1+p)%p, 7)
			rec("iter %d recv %q from %d size %d", iter, data, st.Source, st.Size)
			if r%2 == 0 {
				got := c.Bcast(0, fmt.Sprintf("b%d", iter), 32)
				rec("iter %d bcast=%v", iter, got)
			} else {
				got := c.Bcast(0, nil, 32)
				rec("iter %d bcast=%v", iter, got)
			}
			c.Barrier()
			rec("iter %d past barrier", iter)
		}
		all := c.Allgather(r*10, 8)
		rec("allgather=%v", all)
		if v := c.Reduce(0, r, Sum); r == 0 {
			rec("reduce=%v", v)
		}
	}
}

func runRankProgram(t *testing.T, nodes, workers int, parallel bool) [][]string {
	t.Helper()
	m := cluster.New(nodes, 4, cluster.DefaultNet())
	placement := make([]int, nodes)
	for i := range placement {
		placement[i] = i
	}
	logs := make([]*[]string, nodes)
	for i := range logs {
		logs[i] = new([]string)
	}
	if !parallel {
		env := simtime.NewEnv()
		w := NewWorld(env, m, placement)
		for r := range placement {
			w.Spawn(r, rankProgram(logs))
		}
		if err := env.Run(); err != nil {
			t.Fatal(err)
		}
	} else {
		la := m.Net.MinRemoteLatency()
		if m.Net.Latency < la {
			la = m.Net.Latency
		}
		eng := simtime.NewEngine(simtime.NewEnv(), nodes, la, workers)
		w := NewWorld(eng.Global(), m, placement)
		envs := make([]*simtime.Env, nodes)
		for r, n := range placement {
			envs[r] = eng.Partition(n)
		}
		w.Partition(eng, envs)
		for r := range placement {
			w.Spawn(r, rankProgram(logs))
		}
		if err := eng.Run(); err != nil {
			t.Fatal(err)
		}
		if dl := eng.Deadlock(); dl != nil {
			t.Fatal(dl)
		}
	}
	out := make([][]string, nodes)
	for i, l := range logs {
		out[i] = *l
	}
	return out
}

// TestParallelWorldMatchesSequential pins the tentpole property at the
// MPI layer: every rank observes the identical sequence of operations,
// values, and virtual times under the partitioned engine — at any
// worker count — as under the sequential engine.
func TestParallelWorldMatchesSequential(t *testing.T) {
	for _, nodes := range []int{2, 4, 7} {
		ref := runRankProgram(t, nodes, 0, false)
		for _, workers := range []int{1, 4} {
			got := runRankProgram(t, nodes, workers, true)
			if !reflect.DeepEqual(got, ref) {
				for r := range ref {
					if !reflect.DeepEqual(got[r], ref[r]) {
						t.Errorf("nodes=%d workers=%d rank %d diverged\nseq: %v\npar: %v",
							nodes, workers, r, ref[r], got[r])
					}
				}
				t.FailNow()
			}
		}
	}
}
