package simmpi

import (
	"testing"

	"ompsscluster/internal/cluster"
	"ompsscluster/internal/simtime"
)

// BenchmarkMailboxMatch stresses unexpected-message matching: the sender
// posts a burst of messages with distinct tags, and the receiver consumes
// them in reverse tag order, so every Recv must locate a message that a
// linear arrival-order scan would find last. With per-(src,tag) buckets
// each lookup is O(1); the pre-bucketing list made this quadratic in the
// burst size.
func BenchmarkMailboxMatch(b *testing.B) {
	const tags = 64
	env := simtime.NewEnv()
	m := cluster.New(2, 4, cluster.DefaultNet())
	w := NewWorld(env, m, []int{0, 1})
	w.Spawn(0, func(c *Comm) {
		for i := 0; i < b.N; i++ {
			for tag := 0; tag < tags; tag++ {
				c.Send(1, tag, tag, 8)
			}
			// Wait for the round-trip ack so bursts do not pile up.
			c.Recv(1, tags)
		}
	})
	w.Spawn(1, func(c *Comm) {
		for i := 0; i < b.N; i++ {
			for tag := tags - 1; tag >= 0; tag-- {
				if v, _ := c.Recv(0, tag); v.(int) != tag {
					b.Errorf("got %v for tag %d", v, tag)
					return
				}
			}
			c.Send(0, tags, nil, 8)
		}
	})
	b.ResetTimer()
	if err := env.Run(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkPostDeliver measures the event-driven delivery path (World.Post
// into a Handle callback), the mechanism runtime control messages use.
func BenchmarkPostDeliver(b *testing.B) {
	b.ReportAllocs()
	env := simtime.NewEnv()
	m := cluster.New(2, 4, cluster.DefaultNet())
	w := NewWorld(env, m, []int{0, 1})
	got := 0
	w.Handle(1, func(src, tag int, data any, size int64) { got++ })
	for i := 0; i < b.N; i++ {
		w.Post(0, 1, i%16, nil, 64)
	}
	b.ResetTimer()
	if err := env.Run(); err != nil {
		b.Fatal(err)
	}
	if got != b.N {
		b.Fatalf("delivered %d of %d", got, b.N)
	}
}
