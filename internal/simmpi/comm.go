package simmpi

import (
	"fmt"
	"sort"

	"ompsscluster/internal/simtime"
)

// Op selects the combining operator for Reduce/Allreduce. Values may be
// float64 or int; all ranks must contribute the same type.
type Op int

// Reduction operators.
const (
	Sum Op = iota
	Max
	Min
)

func (op Op) apply(a, b any) any {
	switch x := a.(type) {
	case float64:
		y := b.(float64)
		switch op {
		case Sum:
			return x + y
		case Max:
			if x > y {
				return x
			}
			return y
		case Min:
			if x < y {
				return x
			}
			return y
		}
	case int:
		y := b.(int)
		switch op {
		case Sum:
			return x + y
		case Max:
			if x > y {
				return x
			}
			return y
		case Min:
			if x < y {
				return x
			}
			return y
		}
	}
	panic(fmt.Sprintf("simmpi: unsupported reduction operand %T", a))
}

// commState is the shared state of one communicator.
type commState struct {
	w      *World
	group  []int       // comm rank -> global rank
	rankOf map[int]int // global rank -> comm rank (lazy)
	colls  map[int]*collOp
}

// buildRankOf materializes the global-rank -> comm-rank map. Partitioned
// worlds call it up front so rank processes on different partitions
// never race to initialize it lazily.
func (cs *commState) buildRankOf() {
	if cs.rankOf == nil {
		cs.rankOf = make(map[int]int, len(cs.group))
		for cr, g := range cs.group {
			cs.rankOf[g] = cr
		}
	}
}

func (cs *commState) commRankOf(global int) int {
	if cs.rankOf == nil {
		cs.buildRankOf()
	}
	cr, ok := cs.rankOf[global]
	if !ok {
		// Returning a sentinel here would alias the AnySource wildcard
		// and silently corrupt matching; a rank outside the group is a
		// program bug, so fail loudly.
		panic(fmt.Sprintf("simmpi: global rank %d is not a member of this communicator (group %v)",
			global, cs.group))
	}
	return cr
}

// Comm is one rank's handle on a communicator. Each rank process owns its
// own handle; operations are called without passing the process explicitly.
type Comm struct {
	state *commState
	rank  int // global rank
	proc  *simtime.Proc
	opSeq int // number of collectives this rank has entered on this comm
}

// Rank returns the caller's rank within the communicator.
func (c *Comm) Rank() int { return c.state.commRankOf(c.rank) }

// GlobalRank returns the caller's rank in the world.
func (c *Comm) GlobalRank() int { return c.rank }

// Size returns the number of ranks in the communicator.
func (c *Comm) Size() int { return len(c.state.group) }

// World returns the world this communicator belongs to.
func (c *Comm) World() *World { return c.state.w }

// Proc returns the simulation process bound to this handle.
func (c *Comm) Proc() *simtime.Proc { return c.proc }

// Send transmits data of the given modelled size to dst (a comm rank) with
// a tag. It is a buffered send: the caller does not block; the message is
// delivered after the modelled transfer time.
func (c *Comm) Send(dst, tag int, data any, size int64) {
	c.state.w.Post(c.rank, c.state.group[dst], tag, data, size)
}

// Recv blocks until a message matching (src, tag) arrives. src may be
// AnySource and tag may be AnyTag. It returns the payload and a status
// whose Source is a comm rank.
func (c *Comm) Recv(src, tag int) (any, Status) {
	gsrc := src
	if src != AnySource {
		gsrc = c.state.group[src]
	}
	msg := c.state.w.recv(c.proc, c.rank, gsrc, tag)
	return msg.data, Status{Source: c.state.commRankOf(msg.src), Tag: msg.tag, Size: msg.size}
}

// collOp accumulates one in-flight collective operation.
type collOp struct {
	kind    string
	arrived int
	vals    []any // by comm rank
	waiters []*simtime.Proc
	widx    []int // comm rank of each waiter
	size    int64
	entered []simtime.Time // by comm rank, only when observability is on

	// Partitioned-engine fields (collectiveParallel only): the parked
	// process, home environment and finish mapping of each entrant, plus
	// the deterministic entry order used to replay the sequential wake
	// order at completion.
	procs []*simtime.Proc
	penvs []*simtime.Env
	fin   []func(vals []any, commRank int) any
	order []int // comm ranks in entry order
}

// collective runs one collective step: all ranks of the communicator must
// call it in the same order with the same kind. The finish function maps
// the contributed values to each rank's result.
func (c *Comm) collective(kind string, contrib any, size int64, finish func(vals []any, commRank int) any) any {
	cs := c.state
	cs.w.ops[c.rank].colls++
	if cs.w.eng != nil {
		return c.collectiveParallel(kind, contrib, size, finish)
	}
	seq := c.opSeq
	c.opSeq++
	op, ok := cs.colls[seq]
	if !ok {
		op = &collOp{kind: kind, vals: make([]any, len(cs.group)), size: size}
		if cs.w.obs != nil {
			op.entered = make([]simtime.Time, len(cs.group))
		}
		cs.colls[seq] = op
	}
	if op.kind != kind {
		panic(fmt.Sprintf("simmpi: collective mismatch: rank %d called %s, others called %s",
			c.rank, kind, op.kind))
	}
	cr := c.Rank()
	op.vals[cr] = contrib
	if op.entered != nil {
		op.entered[cr] = cs.w.env.Now()
	}
	op.arrived++
	if size > op.size {
		op.size = size
	}
	if op.arrived < len(cs.group) {
		op.waiters = append(op.waiters, c.proc)
		op.widx = append(op.widx, cr)
		c.proc.SetBlockReason(kind, int64(cr), int64(seq))
		return c.proc.Park()
	}
	// Last participant: complete after the modelled collective cost. Every
	// entrant — this one included — resumes through the same two-hop wake:
	// the completion trigger schedules one callback per rank in entry
	// order, and each callback schedules the real resume at the queue
	// tail. A symmetric shape keeps the resume order a pure function of
	// entry order, which the partitioned engine replays exactly; a
	// shorter wake path for the last entrant would make same-timestamp
	// ordering depend on which rank happened to arrive last — invisible
	// sequentially, but unreconstructible across partitions when several
	// ranks enter at the same instant.
	delete(cs.colls, seq)
	w := cs.w
	cost := w.hopCost(len(cs.group), op.size)
	done := w.env.NewEvent()
	w.env.Schedule(cost, func() {
		if op.entered != nil {
			// One event per participating rank, spanning its entry to the
			// shared completion instant.
			for cri, g := range cs.group {
				w.obs.Collective(w.rankBase+g, kind, op.entered[cri], op.size, len(cs.group))
			}
		}
		done.Trigger(nil)
	})
	op.waiters = append(op.waiters, c.proc)
	op.widx = append(op.widx, cr)
	for i, p := range op.waiters {
		p := p
		cri := op.widx[i]
		done.Subscribe(func(any) { w.env.WakeProc(p, finish(op.vals, cri)) })
	}
	c.proc.SetBlockReason(kind, int64(cr), int64(seq))
	return c.proc.Park()
}

// collectiveParallel is the collective step under a partitioned engine.
// Entering ranks stage their contribution to the global environment
// (where the shared collOp lives) and park; the completion — a global
// event — wakes every entrant via barrier-context injections into its
// home partition, replaying the sequential wake order: every entrant in
// entry order, two event hops after completion. The completion fires
// hopCost(p >= 2) >= Latency >= lookahead after the last entry, so the
// injections never land below a partition's horizon.
func (c *Comm) collectiveParallel(kind string, contrib any, size int64, finish func(vals []any, commRank int) any) any {
	cs := c.state
	w := cs.w
	seq := c.opSeq
	c.opSeq++
	cr := cs.commRankOf(c.rank)
	myEnv := w.envFor(c.rank)
	proc := c.proc
	if len(cs.group) == 1 {
		// Single-member communicator: no cross-partition coordination and
		// zero modelled cost; complete on the rank's own environment with
		// the same two-hop wake shape as the shared path.
		done := myEnv.NewEvent()
		myEnv.Schedule(0, func() { done.Trigger(nil) })
		done.Subscribe(func(any) { myEnv.WakeProc(proc, finish([]any{contrib}, cr)) })
		proc.SetBlockReason(kind, int64(cr), int64(seq))
		return proc.Park()
	}
	w.eng.Send(myEnv, w.env, 0, func() {
		cs.collEnter(kind, seq, cr, contrib, size, proc, myEnv, finish)
	})
	proc.SetBlockReason(kind, int64(cr), int64(seq))
	return proc.Park()
}

// collEnter records one rank's entry into a collective. It runs on the
// global environment (barrier context), so mutation of the shared
// collOp is single-threaded and ordered by the deterministic outbox
// merge.
func (cs *commState) collEnter(kind string, seq, cr int, contrib any, size int64,
	proc *simtime.Proc, penv *simtime.Env, finish func(vals []any, commRank int) any) {
	w := cs.w
	op, ok := cs.colls[seq]
	if !ok {
		n := len(cs.group)
		op = &collOp{
			kind:  kind,
			vals:  make([]any, n),
			size:  size,
			procs: make([]*simtime.Proc, n),
			penvs: make([]*simtime.Env, n),
			fin:   make([]func([]any, int) any, n),
			order: make([]int, 0, n),
		}
		cs.colls[seq] = op
	}
	if op.kind != kind {
		panic(fmt.Sprintf("simmpi: collective mismatch: rank %d called %s, others called %s",
			cs.group[cr], kind, op.kind))
	}
	op.vals[cr] = contrib
	op.procs[cr] = proc
	op.penvs[cr] = penv
	op.fin[cr] = finish
	op.order = append(op.order, cr)
	op.arrived++
	if size > op.size {
		op.size = size
	}
	if op.arrived < len(cs.group) {
		return
	}
	delete(cs.colls, seq)
	cost := w.hopCost(len(cs.group), op.size)
	w.env.Schedule(cost, func() {
		now := w.env.Now()
		// Replay the sequential wake shape: every entrant resumes two
		// event hops after the completion instant, in entry order. The
		// injection is the first hop (the sequential Subscribe callback)
		// and the pe.At it performs is the second (the WakeProc), so
		// events a resumed rank schedules at this timestamp land after
		// every co-located entrant's hop event but before later entrants'
		// resumes — the sequential interleaving exactly. Because the
		// shape is symmetric, cross-partition entry order — where the
		// outbox merge breaks same-instant ties by partition index rather
		// than by the sequential engine's global arrival order — is
		// unobservable: only the per-partition projection of the wake
		// order matters, and the merge preserves that.
		for _, cri := range op.order {
			cri := cri
			p, pe, fin := op.procs[cri], op.penvs[cri], op.fin[cri]
			w.eng.Inject(pe, now, func() {
				// op.vals is read-only by completion time, so the
				// concurrent per-partition reads the finish mappings do
				// are safe.
				pe.At(now, func() { pe.WakeProc(p, fin(op.vals, cri)) })
			})
		}
	})
}

// Barrier blocks until all ranks of the communicator have entered it.
func (c *Comm) Barrier() {
	c.collective("barrier", nil, 8, func([]any, int) any { return nil })
}

// Bcast distributes root's value (of the given modelled size) to all
// ranks and returns it.
func (c *Comm) Bcast(root int, v any, size int64) any {
	return c.collective("bcast", v, size, func(vals []any, _ int) any { return vals[root] })
}

// Reduce combines all contributions with op; the result is returned on
// root and nil elsewhere.
func (c *Comm) Reduce(root int, v any, op Op) any {
	return c.collective("reduce", v, 8, func(vals []any, cr int) any {
		if cr != root {
			return nil
		}
		return reduceVals(vals, op)
	})
}

// Allreduce combines all contributions with op and returns the result on
// every rank.
func (c *Comm) Allreduce(v any, op Op) any {
	return c.collective("allreduce", v, 8, func(vals []any, _ int) any {
		return reduceVals(vals, op)
	})
}

func reduceVals(vals []any, op Op) any {
	acc := vals[0]
	for _, v := range vals[1:] {
		acc = op.apply(acc, v)
	}
	return acc
}

// Gather collects every rank's value on root (indexed by comm rank); other
// ranks receive nil.
func (c *Comm) Gather(root int, v any, size int64) []any {
	r := c.collective("gather", v, size, func(vals []any, cr int) any {
		if cr != root {
			return nil
		}
		return append([]any(nil), vals...)
	})
	if r == nil {
		return nil
	}
	return r.([]any)
}

// Allgather collects every rank's value on all ranks, indexed by comm rank.
func (c *Comm) Allgather(v any, size int64) []any {
	r := c.collective("allgather", v, size, func(vals []any, _ int) any {
		return append([]any(nil), vals...)
	})
	return r.([]any)
}

// splitKey is the per-rank contribution to Split.
type splitKey struct {
	color, key, global int
}

// Split partitions the communicator: ranks with the same color form a new
// communicator, ordered by (key, current rank). Ranks passing a negative
// color receive nil.
func (c *Comm) Split(color, key int) *Comm {
	if c.state.w.eng != nil {
		// Interning the derived communicator is a world-level mutation the
		// partitioned ranks would race on; no workload uses Split, so the
		// eligibility gate in core keeps such programs sequential.
		panic("simmpi: Split is not supported under the partitioned engine")
	}
	r := c.collective("split", splitKey{color, key, c.rank}, 16, func(vals []any, cr int) any {
		me := vals[cr].(splitKey)
		if me.color < 0 {
			return nil
		}
		var members []splitKey
		for _, v := range vals {
			sk := v.(splitKey)
			if sk.color == me.color {
				members = append(members, sk)
			}
		}
		sort.Slice(members, func(i, j int) bool {
			if members[i].key != members[j].key {
				return members[i].key < members[j].key
			}
			return members[i].global < members[j].global
		})
		group := make([]int, len(members))
		for i, m := range members {
			group[i] = m.global
		}
		return group
	})
	if r == nil {
		return nil
	}
	group := r.([]int)
	// Each rank builds an identical commState; sharing is unnecessary
	// because collectives coordinate through the world mailboxes... but
	// collOp state *must* be shared. Deduplicate via a registry keyed by
	// the group signature.
	return &Comm{state: c.state.w.internComm(group), rank: c.rank, proc: c.proc}
}

// internComm returns a shared commState for the given group, creating it
// on first use.
func (w *World) internComm(group []int) *commState {
	key := fmt.Sprint(group)
	if w.commCache == nil {
		w.commCache = map[string]*commState{}
	}
	if cs, ok := w.commCache[key]; ok {
		return cs
	}
	cs := &commState{w: w, group: append([]int(nil), group...), colls: map[int]*collOp{}}
	w.commCache[key] = cs
	return cs
}
