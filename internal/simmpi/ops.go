package simmpi

import (
	"fmt"

	"ompsscluster/internal/simtime"
)

// Request is a handle on a nonblocking operation, in the style of
// MPI_Request. Wait blocks the owning process until completion; Test
// polls.
type Request struct {
	done bool
	data any
	st   Status
	ev   *simtime.Event
}

// Wait blocks until the operation completes and returns the payload and
// status (meaningful for receives; sends return nil payload).
func (r *Request) Wait(c *Comm) (any, Status) {
	if !r.done {
		c.proc.Wait(r.ev)
	}
	return r.data, r.st
}

// Test reports whether the operation has completed, without blocking.
func (r *Request) Test() bool { return r.done }

// Isend starts a nonblocking send. In this model sends are buffered, so
// the request completes immediately; it exists for source compatibility
// with MPI-style code.
func (c *Comm) Isend(dst, tag int, data any, size int64) *Request {
	c.Send(dst, tag, data, size)
	return &Request{done: true}
}

// Irecv posts a nonblocking receive for (src, tag). The matching message
// completes the request; Wait returns its payload.
func (c *Comm) Irecv(src, tag int) *Request {
	w := c.state.w
	req := &Request{ev: w.env.NewEvent()}
	gsrc := src
	if src != AnySource {
		gsrc = c.state.group[src]
	}
	mb := w.mail[c.rank]
	if mb.handler != nil {
		panic("simmpi: Irecv on a rank with an event handler installed")
	}
	// Immediate match against already-arrived messages.
	if msg := mb.takeArrived(gsrc, tag); msg != nil {
		w.obsMatch(c.rank, msg)
		req.complete(c, msg)
		return req
	}
	mb.irecvs = append(mb.irecvs, &pendingIrecv{src: gsrc, tag: tag, req: req, comm: c})
	return req
}

func (r *Request) complete(c *Comm, msg *message) {
	r.done = true
	r.data = msg.data
	r.st = Status{Source: c.state.commRankOf(msg.src), Tag: msg.tag, Size: msg.size}
	if r.ev != nil && !r.ev.Triggered() {
		r.ev.Trigger(nil)
	}
}

// pendingIrecv is a posted nonblocking receive.
type pendingIrecv struct {
	src, tag int
	req      *Request
	comm     *Comm
}

// Probe blocks until a message matching (src, tag) is available without
// consuming it, returning its status.
func (c *Comm) Probe(src, tag int) Status {
	w := c.state.w
	gsrc := src
	if src != AnySource {
		gsrc = c.state.group[src]
	}
	mb := w.mail[c.rank]
	if _, msg := mb.findArrived(gsrc, tag); msg != nil {
		return Status{Source: c.state.commRankOf(msg.src), Tag: msg.tag, Size: msg.size}
	}
	mb.probes = append(mb.probes, &pendingRecv{src: gsrc, tag: tag, proc: c.proc})
	c.proc.SetBlockReason("probe", int64(gsrc), int64(tag))
	msg := c.proc.Park().(*message)
	return Status{Source: c.state.commRankOf(msg.src), Tag: msg.tag, Size: msg.size}
}

// Iprobe reports whether a matching message is available, without
// blocking or consuming it.
func (c *Comm) Iprobe(src, tag int) (Status, bool) {
	gsrc := src
	if src != AnySource {
		gsrc = c.state.group[src]
	}
	if _, msg := c.state.w.mail[c.rank].findArrived(gsrc, tag); msg != nil {
		return Status{Source: c.state.commRankOf(msg.src), Tag: msg.tag, Size: msg.size}, true
	}
	return Status{}, false
}

// Sendrecv sends to dst and receives from src in one step (deadlock-free
// because sends are buffered).
func (c *Comm) Sendrecv(dst, sendTag int, data any, size int64, src, recvTag int) (any, Status) {
	c.Send(dst, sendTag, data, size)
	return c.Recv(src, recvTag)
}

// Scatter distributes root's slice of per-rank values: rank i receives
// values[i]. Non-root ranks pass nil.
func (c *Comm) Scatter(root int, values []any, size int64) any {
	if c.Rank() == root && len(values) != c.Size() {
		panic(fmt.Sprintf("simmpi: Scatter with %d values for %d ranks", len(values), c.Size()))
	}
	var contrib any
	if c.Rank() == root {
		contrib = values
	}
	return c.collective("scatter", contrib, size, func(vals []any, cr int) any {
		rootVals := vals[root].([]any)
		return rootVals[cr]
	})
}

// Alltoall performs a complete exchange: each rank contributes a slice of
// per-destination values and receives a slice indexed by source rank.
func (c *Comm) Alltoall(values []any, size int64) []any {
	if len(values) != c.Size() {
		panic(fmt.Sprintf("simmpi: Alltoall with %d values for %d ranks", len(values), c.Size()))
	}
	r := c.collective("alltoall", values, size, func(vals []any, cr int) any {
		out := make([]any, len(vals))
		for src, v := range vals {
			out[src] = v.([]any)[cr]
		}
		return out
	})
	return r.([]any)
}

// ReduceScatter combines all contributions element-wise with op and
// scatters the result: each rank contributes a []float64 of length Size
// and receives its own element of the combined vector.
func (c *Comm) ReduceScatter(values []float64, op Op) float64 {
	if len(values) != c.Size() {
		panic(fmt.Sprintf("simmpi: ReduceScatter with %d values for %d ranks", len(values), c.Size()))
	}
	r := c.collective("reducescatter", values, 8*int64(len(values)), func(vals []any, cr int) any {
		acc := vals[0].([]float64)[cr]
		for _, v := range vals[1:] {
			acc = op.apply(acc, v.([]float64)[cr]).(float64)
		}
		return acc
	})
	return r.(float64)
}
