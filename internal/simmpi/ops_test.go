package simmpi

import (
	"testing"

	"ompsscluster/internal/simtime"
)

func TestIsendCompletesImmediately(t *testing.T) {
	env, w := newTestWorld(2)
	var got any
	w.Spawn(0, func(c *Comm) {
		req := c.Isend(1, 1, "x", 8)
		if !req.Test() {
			t.Error("buffered Isend should complete immediately")
		}
		req.Wait(c)
	})
	w.Spawn(1, func(c *Comm) { got, _ = c.Recv(0, 1) })
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if got != "x" {
		t.Fatalf("got %v", got)
	}
}

func TestIrecvBeforeSend(t *testing.T) {
	env, w := newTestWorld(2)
	var got any
	var st Status
	w.Spawn(0, func(c *Comm) {
		req := c.Irecv(1, 5)
		if req.Test() {
			t.Error("Irecv completed before any send")
		}
		// Overlap "computation" with the receive.
		c.Proc().Sleep(simtime.Millisecond)
		got, st = req.Wait(c)
	})
	w.Spawn(1, func(c *Comm) {
		c.Proc().Sleep(2 * simtime.Millisecond)
		c.Send(0, 5, 99, 8)
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if got != 99 || st.Source != 1 || st.Tag != 5 {
		t.Fatalf("got %v st %+v", got, st)
	}
}

func TestIrecvAfterArrival(t *testing.T) {
	env, w := newTestWorld(2)
	var got any
	w.Spawn(0, func(c *Comm) {
		c.Proc().Sleep(simtime.Millisecond) // let the message arrive first
		req := c.Irecv(1, 2)
		if !req.Test() {
			t.Error("Irecv should match an already-arrived message")
		}
		got, _ = req.Wait(c)
	})
	w.Spawn(1, func(c *Comm) { c.Send(0, 2, "pre", 8) })
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if got != "pre" {
		t.Fatalf("got %v", got)
	}
}

func TestMultipleIrecvOrdered(t *testing.T) {
	env, w := newTestWorld(2)
	var order []int
	w.Spawn(0, func(c *Comm) {
		r1 := c.Irecv(1, AnyTag)
		r2 := c.Irecv(1, AnyTag)
		v2, _ := r2.Wait(c)
		v1, _ := r1.Wait(c)
		order = append(order, v1.(int), v2.(int))
	})
	w.Spawn(1, func(c *Comm) {
		c.Send(0, 1, 10, 8)
		c.Send(0, 2, 20, 8)
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	// Posted-receive order must match arrival order.
	if order[0] != 10 || order[1] != 20 {
		t.Fatalf("order = %v", order)
	}
}

func TestProbeBlocksUntilMessage(t *testing.T) {
	env, w := newTestWorld(2)
	var probedAt simtime.Time
	var st Status
	w.Spawn(0, func(c *Comm) {
		st = c.Probe(1, 7)
		probedAt = env.Now()
		v, _ := c.Recv(1, 7)
		if v != "m" {
			t.Errorf("message consumed by probe: %v", v)
		}
	})
	w.Spawn(1, func(c *Comm) {
		c.Proc().Sleep(3 * simtime.Millisecond)
		c.Send(0, 7, "m", 64)
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if probedAt < simtime.Time(3*simtime.Millisecond) {
		t.Fatal("probe returned before the message was sent")
	}
	if st.Source != 1 || st.Tag != 7 || st.Size != 64 {
		t.Fatalf("status = %+v", st)
	}
}

func TestIprobe(t *testing.T) {
	env, w := newTestWorld(2)
	w.Spawn(0, func(c *Comm) {
		if _, ok := c.Iprobe(1, 1); ok {
			t.Error("Iprobe true before send")
		}
		c.Proc().Sleep(simtime.Millisecond)
		st, ok := c.Iprobe(1, 1)
		if !ok || st.Source != 1 {
			t.Errorf("Iprobe after arrival: %+v %v", st, ok)
		}
		c.Recv(1, 1)
	})
	w.Spawn(1, func(c *Comm) { c.Send(0, 1, nil, 8) })
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestSendrecv(t *testing.T) {
	env, w := newTestWorld(2)
	got := make([]any, 2)
	main := func(c *Comm) {
		other := 1 - c.Rank()
		v, _ := c.Sendrecv(other, 3, c.Rank()*100, 8, other, 3)
		got[c.Rank()] = v
	}
	w.Spawn(0, main)
	w.Spawn(1, main)
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if got[0] != 100 || got[1] != 0 {
		t.Fatalf("got = %v", got)
	}
}

func TestScatter(t *testing.T) {
	env, w := newTestWorld(3)
	got := make([]any, 3)
	for r := 0; r < 3; r++ {
		r := r
		w.Spawn(r, func(c *Comm) {
			var vals []any
			if r == 1 {
				vals = []any{"a", "b", "c"}
			}
			got[r] = c.Scatter(1, vals, 16)
		})
	}
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	want := []any{"a", "b", "c"}
	for r := range got {
		if got[r] != want[r] {
			t.Fatalf("got = %v", got)
		}
	}
}

func TestAlltoall(t *testing.T) {
	env, w := newTestWorld(3)
	got := make([][]any, 3)
	for r := 0; r < 3; r++ {
		r := r
		w.Spawn(r, func(c *Comm) {
			vals := make([]any, 3)
			for d := range vals {
				vals[d] = r*10 + d
			}
			got[r] = c.Alltoall(vals, 8)
		})
	}
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	for r := 0; r < 3; r++ {
		for src := 0; src < 3; src++ {
			if got[r][src] != src*10+r {
				t.Fatalf("rank %d got %v", r, got[r])
			}
		}
	}
}

func TestReduceScatter(t *testing.T) {
	env, w := newTestWorld(3)
	got := make([]float64, 3)
	for r := 0; r < 3; r++ {
		r := r
		w.Spawn(r, func(c *Comm) {
			contrib := []float64{float64(r), float64(r * 10), float64(r * 100)}
			got[r] = c.ReduceScatter(contrib, Sum)
		})
	}
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	// Element i = sum over ranks of rank*10^i.
	if got[0] != 3 || got[1] != 30 || got[2] != 300 {
		t.Fatalf("got = %v", got)
	}
}

func TestScatterSizeMismatchPanics(t *testing.T) {
	env, w := newTestWorld(2)
	w.Spawn(0, func(c *Comm) {
		defer func() {
			if recover() == nil {
				t.Error("Scatter with wrong value count did not panic")
			}
			panic("stop") // unwind the process cleanly
		}()
		c.Scatter(0, []any{"only-one"}, 8)
	})
	w.Spawn(1, func(c *Comm) {})
	env.Run() // the panic surfaces as a process failure; ignore
	env.KillAll()
}
