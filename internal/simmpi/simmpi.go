// Package simmpi is an MPI-like message-passing library running inside the
// simtime discrete-event engine. It provides a World of ranks placed on the
// nodes of a cluster.Machine, point-to-point messages with tag matching and
// wildcard receives, and the usual collectives (Barrier, Bcast, Reduce,
// Allreduce, Gather, Allgather).
//
// Rank programs run as simtime processes and use blocking operations
// through their *Comm handle, in the style of MPI. Event-driven code (the
// task runtime) can inject messages with World.Post and subscribe to
// deliveries with World.Handle, without being a process.
//
// Message timing follows the machine's NetModel: latency plus size over
// bandwidth between distinct nodes, a small local cost within a node.
// Collectives charge ceil(log2 P) network hops, mimicking tree algorithms.
package simmpi

import (
	"fmt"
	"math/bits"

	"ompsscluster/internal/cluster"
	"ompsscluster/internal/faults"
	"ompsscluster/internal/obs"
	"ompsscluster/internal/simtime"
)

// Wildcards for Recv.
const (
	AnySource = -1
	AnyTag    = -1
)

// Status describes a received message.
type Status struct {
	Source int // sender rank (within the communicator)
	Tag    int
	Size   int64 // modelled payload size in bytes
}

// message is an in-flight or delivered point-to-point message.
type message struct {
	src  int // global rank
	tag  int
	size int64
	data any
	arr  uint64 // per-mailbox arrival stamp, set when queued as unexpected

	// Observability stamps, populated only when the world's recorder is
	// attached: a world-unique message id plus the post and delivery
	// times, from which match events derive queue-wait and in-flight
	// latency.
	obsID    int64
	postT    simtime.Time
	deliverT simtime.Time

	// linkSeq is the world-unique send sequence number used to hash
	// per-message drop/jitter decisions; assigned only when link fault
	// conditioning is active.
	linkSeq uint64
}

// pendingRecv is a blocked receive posted by a process.
type pendingRecv struct {
	src, tag int // global src or AnySource
	proc     *simtime.Proc
}

// mbKey identifies a wildcard-free message class within one mailbox.
type mbKey struct{ src, tag int }

// msgq is a FIFO of queued messages with O(1) pop: consumed entries
// advance a head index instead of splicing, and the backing array is
// reused once drained.
type msgq struct {
	msgs []*message
	head int
}

func (q *msgq) len() int { return len(q.msgs) - q.head }

func (q *msgq) peek() *message { return q.msgs[q.head] }

func (q *msgq) push(m *message) { q.msgs = append(q.msgs, m) }

func (q *msgq) pop() *message {
	m := q.msgs[q.head]
	q.msgs[q.head] = nil
	q.head++
	if q.head == len(q.msgs) {
		q.msgs = q.msgs[:0]
		q.head = 0
	}
	return m
}

// mailbox holds the per-rank unexpected-message queues, posted receives
// (blocking and nonblocking), probes, and an optional event-driven
// handler.
//
// Unexpected messages are bucketed by (src, tag), so the wildcard-free
// matching the workloads do almost exclusively is one map lookup instead
// of a scan-and-splice over a single arrival list. Wildcard matching
// (AnySource/AnyTag) falls back to comparing the arrival stamps of the
// candidate bucket heads: each message is stamped with a per-mailbox
// arrival sequence number when queued, so the earliest-arrival choice is
// exactly the message the former ordered-list scan would have found,
// independent of map iteration order.
type mailbox struct {
	arrived  map[mbKey]*msgq
	narrived int    // queued messages across all buckets
	arrSeq   uint64 // next arrival stamp
	recvs    []*pendingRecv
	irecvs   []*pendingIrecv
	probes   []*pendingRecv
	handler  func(src, tag int, data any, size int64)
}

// enqueue stamps msg with its arrival order and queues it as unexpected.
func (mb *mailbox) enqueue(msg *message) {
	msg.arr = mb.arrSeq
	mb.arrSeq++
	k := mbKey{msg.src, msg.tag}
	q := mb.arrived[k]
	if q == nil {
		if mb.arrived == nil {
			mb.arrived = make(map[mbKey]*msgq)
		}
		q = &msgq{}
		mb.arrived[k] = q
	}
	q.push(msg)
	mb.narrived++
}

// findArrived returns the earliest-arrived queued message matching
// (src, tag) and its bucket, or nil if none is queued. src and tag may be
// wildcards.
func (mb *mailbox) findArrived(src, tag int) (*msgq, *message) {
	if mb.narrived == 0 {
		return nil, nil
	}
	if src != AnySource && tag != AnyTag {
		if q := mb.arrived[mbKey{src, tag}]; q != nil && q.len() > 0 {
			return q, q.peek()
		}
		return nil, nil
	}
	// Wildcard fallback: earliest arrival among matching bucket heads.
	// Arrival stamps are unique, so the winner is deterministic even
	// though map iteration order is not.
	var (
		bq   *msgq
		best *message
	)
	for k, q := range mb.arrived {
		if q.len() == 0 {
			continue
		}
		if (src == AnySource || src == k.src) && (tag == AnyTag || tag == k.tag) {
			if m := q.peek(); best == nil || m.arr < best.arr {
				bq, best = q, m
			}
		}
	}
	return bq, best
}

// takeArrived removes and returns the earliest queued message matching
// (src, tag), or nil.
func (mb *mailbox) takeArrived(src, tag int) *message {
	q, m := mb.findArrived(src, tag)
	if m == nil {
		return nil
	}
	q.pop()
	mb.narrived--
	return m
}

// World is a set of ranks placed on machine nodes.
type World struct {
	env       *simtime.Env
	machine   *cluster.Machine
	placement []int // global rank -> node
	mail      []*mailbox
	world     *commState
	commCache map[string]*commState

	obs      *obs.Recorder
	rankBase int   // global apprank id of this world's rank 0
	msgSeq   int64 // next message id for observability stamps

	// links conditions point-to-point deliveries when a fault plan with
	// link episodes is armed; nil (the default) keeps Post on the exact
	// pre-fault code path, preserving byte-identical schedules.
	links   *faults.Links
	linkSeq uint64

	// eng/penv attach the world to a conservative parallel engine: rank
	// r's process and mailbox live on penv[r], the partition of its home
	// node, and cross-partition deliveries route through the engine. Both
	// nil (the default) keeps every path on the sequential w.env.
	eng  *simtime.Engine
	penv []*simtime.Env

	// ops counts blocking MPI operations per global rank (collectives
	// entered and blocking receives). Each slot is written only by its
	// rank's own process — on its home partition under the parallel
	// engine — and read after the run, so the counters are lock-free and
	// deterministic across engines. They feed the POP efficiency report.
	ops []rankOps
}

// rankOps is one rank's blocking-operation tally.
type rankOps struct {
	colls uint64 // collective operations entered (Barrier, Allreduce, ...)
	recvs uint64 // blocking point-to-point receives
}

// RankOps returns the number of collectives entered and blocking receives
// completed by the given global rank so far.
func (w *World) RankOps(rank int) (colls, recvs uint64) {
	o := w.ops[rank]
	return o.colls, o.recvs
}

// Partition attaches the world to a parallel engine. envs[r] is the
// partition environment of rank r's home node; the world's own env must
// be the engine's global environment. Must be called before Spawn.
func (w *World) Partition(eng *simtime.Engine, envs []*simtime.Env) {
	if len(envs) != len(w.placement) {
		panic(fmt.Sprintf("simmpi: Partition with %d envs for %d ranks", len(envs), len(w.placement)))
	}
	w.eng = eng
	w.penv = append([]*simtime.Env(nil), envs...)
	// Build the world communicator's rank map eagerly: ranks on different
	// partitions would otherwise race to initialize it lazily.
	w.world.buildRankOf()
}

// envFor returns the environment owning the given global rank.
func (w *World) envFor(rank int) *simtime.Env {
	if w.penv == nil {
		return w.env
	}
	return w.penv[rank]
}

// SetLinkFaults attaches a link-fault conditioner. Pass nil to detach.
func (w *World) SetLinkFaults(l *faults.Links) { w.links = l }

// SetObs attaches the structured event recorder. Message events carry
// rankBase + world rank so several worlds (co-scheduled applications)
// report globally unique apprank ids. A nil recorder (the default) keeps
// the messaging paths free of any observability work.
func (w *World) SetObs(rec *obs.Recorder, rankBase int) {
	w.obs = rec
	w.rankBase = rankBase
}

// obsMatch emits the match event for a message being consumed by dst at
// the current time. deliverT equals the match time when a receiver was
// already waiting (queue wait zero).
func (w *World) obsMatch(dst int, msg *message) {
	if w.obs == nil {
		return
	}
	now := w.env.Now()
	w.obs.MsgMatch(msg.obsID, w.rankBase+msg.src, w.rankBase+dst,
		simtime.Duration(now-msg.deliverT), simtime.Duration(now-msg.postT))
}

// NewWorld creates a world with len(placement) ranks; placement[r] is the
// node hosting rank r.
func NewWorld(env *simtime.Env, m *cluster.Machine, placement []int) *World {
	if len(placement) == 0 {
		panic("simmpi: empty placement")
	}
	for r, n := range placement {
		if n < 0 || n >= m.NumNodes() {
			panic(fmt.Sprintf("simmpi: rank %d placed on invalid node %d", r, n))
		}
	}
	w := &World{
		env:       env,
		machine:   m,
		placement: append([]int(nil), placement...),
		mail:      make([]*mailbox, len(placement)),
		ops:       make([]rankOps, len(placement)),
	}
	for i := range w.mail {
		w.mail[i] = &mailbox{}
	}
	group := make([]int, len(placement))
	for i := range group {
		group[i] = i
	}
	w.world = &commState{w: w, group: group, colls: map[int]*collOp{}}
	return w
}

// Env returns the simulation environment.
func (w *World) Env() *simtime.Env { return w.env }

// Machine returns the hardware model.
func (w *World) Machine() *cluster.Machine { return w.machine }

// Size returns the number of ranks in the world.
func (w *World) Size() int { return len(w.placement) }

// NodeOf returns the node hosting the given global rank.
func (w *World) NodeOf(rank int) int { return w.placement[rank] }

// Spawn starts the program for one global rank as a simulation process.
// The program receives a *Comm bound to the world communicator.
func (w *World) Spawn(rank int, main func(c *Comm)) *simtime.Proc {
	return w.envFor(rank).Spawn(fmt.Sprintf("rank%d", rank), func(p *simtime.Proc) {
		main(&Comm{state: w.world, rank: rank, proc: p})
	})
}

// Handle installs an event-driven delivery handler for a rank. Messages
// arriving for that rank are passed to fn instead of being queued for
// Recv. This is how runtime instances (not processes) receive control
// messages. A rank with a handler must not also call Recv.
func (w *World) Handle(rank int, fn func(src, tag int, data any, size int64)) {
	mb := w.mail[rank]
	if mb.narrived > 0 {
		panic("simmpi: Handle installed after messages were queued")
	}
	mb.handler = fn
}

// Post sends a message from src to dst (global ranks) without blocking any
// process. It may be called from event callbacks. Delivery happens after
// the modelled transfer time.
func (w *World) Post(src, dst, tag int, data any, size int64) {
	if src < 0 || src >= len(w.placement) || dst < 0 || dst >= len(w.placement) {
		panic(fmt.Sprintf("simmpi: Post with invalid ranks %d->%d", src, dst))
	}
	msg := &message{src: src, tag: tag, size: size, data: data}
	if w.obs != nil {
		msg.obsID = w.msgSeq
		w.msgSeq++
		msg.postT = w.env.Now()
		w.obs.MsgPost(msg.obsID, w.rankBase+src, w.rankBase+dst, tag, size)
	}
	if w.links != nil {
		msg.linkSeq = w.linkSeq
		w.linkSeq++
		w.send(msg, dst, 0)
		return
	}
	d := w.machine.Net.TransferTime(w.placement[src], w.placement[dst], size)
	if w.eng != nil {
		// Partitioned world: Post runs on the sender's environment (rank
		// processes post from their home partition; barrier-context posts
		// come from the global environment). Cross-node transfer times are
		// bounded below by MinRemoteLatency >= the engine lookahead, so
		// the conservative send is always legal.
		w.eng.Send(w.envFor(src), w.envFor(dst), d, func() { w.deliver(dst, msg) })
		return
	}
	w.env.Schedule(d, func() { w.deliver(dst, msg) })
}

// send models one delivery attempt of msg under link-fault conditioning:
// the nominal transfer time plus any episode delay and jitter, or — if
// the hashed drop decision fires — a sender-side timeout of one transfer
// time followed by an exponential-backoff resend. After MaxAttempts
// failed attempts the message is abandoned; a receiver blocked on it is
// then surfaced by the deadlock detector rather than hanging silently.
func (w *World) send(msg *message, dst, attempt int) {
	a, b := w.placement[msg.src], w.placement[dst]
	d := w.machine.Net.TransferTime(a, b, msg.size)
	extra, drop := w.links.Condition(w.env.Now(), a, b, msg.linkSeq, attempt)
	if drop {
		if w.obs != nil {
			w.obs.MsgDrop(msg.obsID, w.rankBase+msg.src, w.rankBase+dst, attempt)
		}
		if attempt+1 >= w.links.MaxAttempts() {
			return // abandoned
		}
		w.env.Schedule(d+extra+w.links.BackoffDelay(attempt+1), func() {
			w.send(msg, dst, attempt+1)
		})
		return
	}
	w.env.Schedule(d+extra, func() { w.deliver(dst, msg) })
}

// deliver places a message in dst's mailbox, completing a matching posted
// receive (blocking first, then nonblocking), waking matching probes, or
// invoking the rank's handler.
func (w *World) deliver(dst int, msg *message) {
	mb := w.mail[dst]
	if w.obs != nil {
		msg.deliverT = w.env.Now()
		w.obs.MsgDeliver(msg.obsID, w.rankBase+msg.src, w.rankBase+dst, msg.tag, msg.size)
	}
	if mb.handler != nil {
		w.obsMatch(dst, msg)
		mb.handler(msg.src, msg.tag, msg.data, msg.size)
		return
	}
	// Probes observe the message without consuming it.
	remaining := mb.probes[:0]
	for _, pr := range mb.probes {
		if matches(pr.src, pr.tag, msg) {
			w.env.WakeProc(pr.proc, msg)
		} else {
			remaining = append(remaining, pr)
		}
	}
	mb.probes = remaining
	for i, pr := range mb.recvs {
		if matches(pr.src, pr.tag, msg) {
			mb.recvs = append(mb.recvs[:i], mb.recvs[i+1:]...)
			w.obsMatch(dst, msg)
			w.env.WakeProc(pr.proc, msg)
			return
		}
	}
	for i, ir := range mb.irecvs {
		if matches(ir.src, ir.tag, msg) {
			mb.irecvs = append(mb.irecvs[:i], mb.irecvs[i+1:]...)
			w.obsMatch(dst, msg)
			ir.req.complete(ir.comm, msg)
			return
		}
	}
	mb.enqueue(msg)
}

func matches(src, tag int, msg *message) bool {
	return (src == AnySource || src == msg.src) && (tag == AnyTag || tag == msg.tag)
}

// recv blocks proc until a message matching (src, tag) arrives at rank.
func (w *World) recv(p *simtime.Proc, rank, src, tag int) *message {
	w.ops[rank].recvs++
	mb := w.mail[rank]
	if mb.handler != nil {
		panic("simmpi: Recv on a rank with an event handler installed")
	}
	if msg := mb.takeArrived(src, tag); msg != nil {
		w.obsMatch(rank, msg)
		return msg
	}
	mb.recvs = append(mb.recvs, &pendingRecv{src: src, tag: tag, proc: p})
	p.SetBlockReason("recv", int64(src), int64(tag))
	return p.Park().(*message)
}

// hopCost returns the modelled completion cost of a tree-structured
// collective over p participants moving size bytes per hop.
func (w *World) hopCost(p int, size int64) simtime.Duration {
	if p <= 1 {
		return 0
	}
	hops := bits.Len(uint(p - 1)) // ceil(log2 p)
	per := w.machine.Net.Latency
	if w.machine.Net.BytesPerSecond > 0 && size > 0 {
		per += simtime.FromSeconds(float64(size) / w.machine.Net.BytesPerSecond)
	}
	return simtime.Duration(hops) * per
}
