package jobs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"

	"ompsscluster/internal/expander"
	"ompsscluster/internal/experiments"
	"ompsscluster/internal/simtime"
)

func TestQueueFIFOAndCrashRecovery(t *testing.T) {
	path := filepath.Join(t.TempDir(), "queue.json")
	q, err := OpenQueue(path)
	if err != nil {
		t.Fatal(err)
	}
	var ids []string
	for i := 0; i < 3; i++ {
		j, err := q.Submit(Spec{Experiment: "fig8", Scale: "quick"}, fmt.Sprintf("hash%d", i))
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, j.ID)
	}
	first, ok := q.ClaimNext()
	if !ok || first.ID != ids[0] || first.State != Running {
		t.Fatalf("ClaimNext = %+v, want running %s", first, ids[0])
	}

	// Reopen mid-run, as after a SIGKILL: the running job is demoted to
	// pending with its place in line kept.
	q2, err := OpenQueue(path)
	if err != nil {
		t.Fatal(err)
	}
	j, ok := q2.Get(ids[0])
	if !ok || j.State != Pending {
		t.Fatalf("after reopen, %s = %+v, want pending", ids[0], j)
	}
	again, ok := q2.ClaimNext()
	if !ok || again.ID != ids[0] {
		t.Fatalf("reopened queue claimed %s, want %s (FIFO preserved)", again.ID, ids[0])
	}
	q2.SetState(ids[0], Succeeded, "")
	next, ok := q2.ClaimNext()
	if !ok || next.ID != ids[1] {
		t.Fatalf("claimed %s, want %s", next.ID, ids[1])
	}
	if !q2.CancelPending(ids[2]) {
		t.Fatal("CancelPending refused a pending job")
	}
	if q2.CancelPending(ids[1]) {
		t.Fatal("CancelPending canceled a running job")
	}
	counts := q2.Counts()
	if counts[Succeeded] != 1 || counts[Running] != 1 || counts[Canceled] != 1 {
		t.Fatalf("counts = %v", counts)
	}
}

func TestCheckpointerRoundTripAndCorruption(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ck", "h.json")
	c := OpenCheckpoint(path)
	c.Record(0, []byte("0x1.8p+01"))
	c.Record(7, []byte(`{"y":3,"err":"boom"}`))

	re := OpenCheckpoint(path)
	if got, ok := re.Cached(7); !ok || string(got) != `{"y":3,"err":"boom"}` {
		t.Fatalf("Cached(7) = %q, %v", got, ok)
	}
	if _, ok := re.Cached(3); ok {
		t.Fatal("Cached(3) hit for an unrecorded index")
	}
	if got := re.Indices(); len(got) != 2 || got[0] != 0 || got[1] != 7 {
		t.Fatalf("Indices = %v", got)
	}

	// A torn or corrupt snapshot must read as empty, never error: the
	// job just recomputes.
	if err := os.WriteFile(path, []byte(`{"done":{"0":`), 0o644); err != nil {
		t.Fatal(err)
	}
	if OpenCheckpoint(path).Len() != 0 {
		t.Fatal("corrupt checkpoint not treated as empty")
	}
	if err := c.Remove(); err != nil {
		t.Fatal(err)
	}
	if err := c.Remove(); err != nil {
		t.Fatal("Remove of a missing checkpoint should be a no-op")
	}
}

func TestCacheRoundTrip(t *testing.T) {
	c := NewCache(filepath.Join(t.TempDir(), "cache"))
	hash := "ab12cd"
	if _, ok := c.Get(hash); ok {
		t.Fatal("hit on empty cache")
	}
	doc := []byte(`{"hash":"ab12cd"}` + "\n")
	if err := c.Put(hash, doc); err != nil {
		t.Fatal(err)
	}
	got, ok := c.Get(hash)
	if !ok || !bytes.Equal(got, doc) {
		t.Fatalf("Get = %q, %v", got, ok)
	}
}

// newTestRunner builds a runner over a fresh state dir.
func newTestRunner(t *testing.T) (*Runner, *Queue, *Cache, string) {
	t.Helper()
	dir := t.TempDir()
	q, err := OpenQueue(filepath.Join(dir, "queue.json"))
	if err != nil {
		t.Fatal(err)
	}
	cache := NewCache(filepath.Join(dir, "cache"))
	r := NewRunner(q, cache, dir)
	r.Backoff = time.Millisecond
	r.DefaultParallel = 2
	return r, q, cache, dir
}

// waitState polls until the job reaches a terminal state.
func waitState(t *testing.T, q *Queue, id string, timeout time.Duration) Job {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		j, ok := q.Get(id)
		if !ok {
			t.Fatalf("job %s vanished", id)
		}
		switch j.State {
		case Succeeded, Failed, Canceled:
			return j
		}
		time.Sleep(5 * time.Millisecond)
	}
	j, _ := q.Get(id)
	t.Fatalf("job %s stuck in %s after %v", id, j.State, timeout)
	return Job{}
}

func submit(t *testing.T, q *Queue, r *Runner, spec Spec) Job {
	t.Helper()
	spec, err := spec.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	hash, err := spec.Hash()
	if err != nil {
		t.Fatal(err)
	}
	j, err := q.Submit(spec, hash)
	if err != nil {
		t.Fatal(err)
	}
	r.Kick()
	return j
}

func TestRunnerQuarantinesPanickingJobThenSurvives(t *testing.T) {
	r, q, _, _ := newTestRunner(t)
	r.Retries = 3
	r.runFn = func(spec Spec, sc experiments.Scale) (*experiments.Result, error) {
		if spec.Seed == 42 {
			panic("poisoned spec")
		}
		return &experiments.Result{ID: spec.Experiment, Title: "ok"}, nil
	}
	r.Start()
	defer r.Drain()

	bad := submit(t, q, r, Spec{Experiment: "fig8", Scale: "quick", Seed: 42})
	good := submit(t, q, r, Spec{Experiment: "fig8", Scale: "quick"})

	j := waitState(t, q, bad.ID, 10*time.Second)
	if j.State != Failed || j.Attempts != 3 {
		t.Fatalf("poisoned job = %+v, want failed after 3 attempts", j)
	}
	for _, want := range []string{"quarantined after 3 attempts", "poisoned spec"} {
		if !bytes.Contains([]byte(j.Error), []byte(want)) {
			t.Errorf("error %q missing %q", j.Error, want)
		}
	}
	// The server outlived the panics and ran the next job.
	if j := waitState(t, q, good.ID, 10*time.Second); j.State != Succeeded {
		t.Fatalf("job after quarantine = %+v, want succeeded", j)
	}
}

func TestRunnerTimeoutCancelAndDrain(t *testing.T) {
	r, q, _, _ := newTestRunner(t)
	// The fake job blocks until its context is canceled, so each
	// terminal cause is exercised deterministically.
	r.runFn = func(spec Spec, sc experiments.Scale) (*experiments.Result, error) {
		<-sc.Jobs.Ctx.Done()
		return &experiments.Result{ID: "blocked"}, nil
	}
	r.Start()

	timed := submit(t, q, r, Spec{Experiment: "fig8", Scale: "quick", TimeoutSec: 1})
	if j := waitState(t, q, timed.ID, 10*time.Second); j.State != Failed ||
		!bytes.Contains([]byte(j.Error), []byte("timeout")) {
		t.Fatalf("timed-out job = %+v, want failed with timeout", j)
	}

	canceled := submit(t, q, r, Spec{Experiment: "fig8", Scale: "quick", Seed: 5})
	for {
		if j, _ := q.Get(canceled.ID); j.State == Running {
			break
		}
		time.Sleep(time.Millisecond)
	}
	if !r.Cancel(canceled.ID) {
		t.Fatal("Cancel refused the running job")
	}
	if j := waitState(t, q, canceled.ID, 10*time.Second); j.State != Canceled {
		t.Fatalf("canceled job = %+v", j)
	}

	drained := submit(t, q, r, Spec{Experiment: "fig8", Scale: "quick", Seed: 6})
	for {
		if j, _ := q.Get(drained.ID); j.State == Running {
			break
		}
		time.Sleep(time.Millisecond)
	}
	r.Drain()
	if j, _ := q.Get(drained.ID); j.State != Pending {
		t.Fatalf("drained job = %+v, want pending (resumable on restart)", j)
	}
}

// quickScale returns the experiment scale the real-figure tests run at.
func quickScale() experiments.Scale {
	sc, _ := experiments.ScaleByName("quick")
	sc.Parallel = 2
	sc.Graphs = expander.NewStore("")
	sc.Engine = simtime.NewStatsCollector()
	return sc
}

func TestResultByteIdenticalAcrossEnginesAndCache(t *testing.T) {
	// The same spec, executed fresh under each of the three engines in
	// separate state dirs, must produce byte-identical result documents
	// — the invariant that lets the cache serve a result computed under
	// one engine to submissions under another.
	spec := Spec{Experiment: "fig8", Scale: "quick"}
	var docs [][]byte
	for _, engine := range []string{"continuation", "goroutine", "parallel"} {
		r, q, cache, _ := newTestRunner(t)
		r.Start()
		s := spec
		s.Engine = engine
		if engine == "parallel" {
			s.SimWorkers = 2
		}
		j := submit(t, q, r, s)
		done := waitState(t, q, j.ID, 60*time.Second)
		if done.State != Succeeded {
			t.Fatalf("engine %s: job = %+v", engine, done)
		}
		if done.CacheHit {
			t.Fatalf("engine %s: fresh state dir reported a cache hit", engine)
		}
		doc, ok := cache.Get(done.Hash)
		if !ok {
			t.Fatalf("engine %s: result missing from cache", engine)
		}
		docs = append(docs, doc)

		// Resubmitting the identical spec — under any engine name — is a
		// cache hit returning the same bytes without re-simulating.
		s2 := spec
		s2.Engine = "goroutine"
		j2 := submit(t, q, r, s2)
		done2 := waitState(t, q, j2.ID, 10*time.Second)
		if done2.State != Succeeded || !done2.CacheHit {
			t.Fatalf("engine %s: resubmission = %+v, want cache hit", engine, done2)
		}
		if done2.Hash != done.Hash {
			t.Fatalf("engine hint changed the content address: %s vs %s", done2.Hash, done.Hash)
		}
		r.Drain()
	}
	for i := 1; i < len(docs); i++ {
		if !bytes.Equal(docs[0], docs[i]) {
			t.Fatalf("engine %d produced different result bytes than engine 0:\n%s\nvs\n%s",
				i, docs[i], docs[0])
		}
	}
	var doc ResultDoc
	if err := json.Unmarshal(docs[0], &doc); err != nil {
		t.Fatalf("result document is not valid JSON: %v", err)
	}
	if doc.ID != "fig8" || doc.CSV == "" {
		t.Fatalf("result document incomplete: %+v", doc)
	}
}

func TestResumeFromPartialCheckpointByteIdentical(t *testing.T) {
	// Run a figure once with full checkpointing, then replay it from a
	// checkpoint holding only half the spec outcomes. The resumed run
	// must recompute exactly the missing specs and assemble the same
	// figure byte for byte — the core crash-recovery guarantee, tested
	// here without process surgery (cmd/lbsimd's test does the SIGKILL
	// version).
	dir := t.TempDir()
	full := OpenCheckpoint(filepath.Join(dir, "full.json"))
	sc := quickScale()
	sc.Jobs = &experiments.JobHooks{Cached: full.Cached, Done: full.Record}
	r1 := experiments.Fig8(sc)
	doc1, err := EncodeResult("h", r1)
	if err != nil {
		t.Fatal(err)
	}
	indices := full.Indices()
	if len(indices) < 4 {
		t.Fatalf("fig8 checkpointed only %d specs", len(indices))
	}

	// Seed a partial checkpoint with every other outcome.
	partial := OpenCheckpoint(filepath.Join(dir, "partial.json"))
	for n, idx := range indices {
		if n%2 == 0 {
			enc, _ := full.Cached(idx)
			partial.Record(idx, enc)
		}
	}
	seeded := partial.Len()

	// Done fires for every completed spec, cached or fresh (so resumed
	// runs keep refreshing the snapshot); the recompute count is the
	// number of checkpoint misses.
	recomputed := 0
	reopened := OpenCheckpoint(filepath.Join(dir, "partial.json"))
	sc2 := quickScale()
	sc2.Parallel = 1 // sequential, so the miss counter needs no lock
	sc2.Jobs = &experiments.JobHooks{
		Cached: func(idx int) ([]byte, bool) {
			enc, ok := reopened.Cached(idx)
			if !ok {
				recomputed++
			}
			return enc, ok
		},
		Done: reopened.Record,
	}
	r2 := experiments.Fig8(sc2)
	doc2, err := EncodeResult("h", r2)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(doc1, doc2) {
		t.Fatalf("resumed figure differs from uninterrupted run:\n%s\nvs\n%s", doc2, doc1)
	}
	if recomputed != len(indices)-seeded {
		t.Fatalf("resume recomputed %d specs, want %d (seeded %d of %d)",
			recomputed, len(indices)-seeded, seeded, len(indices))
	}
}
