package jobs

import (
	"encoding/json"
	"fmt"

	"ompsscluster/internal/experiments"
)

// ResultDoc is the finished form of a job: the figure rendered to
// strings. It deliberately contains no timestamps, host names, or raw
// floats — only the spec's content address and deterministic renderings
// — so the same spec always produces the same bytes, a cache hit is
// byte-identical to a fresh computation, and a resumed run's document
// diffs clean against an uninterrupted one.
type ResultDoc struct {
	// Hash is the content address of the spec that produced this.
	Hash string `json:"hash"`
	// ID, Title, XLabel, YLabel mirror the experiments.Result header.
	ID     string `json:"id"`
	Title  string `json:"title"`
	XLabel string `json:"xlabel"`
	YLabel string `json:"ylabel"`
	// CSV is the figure in long format (series,x,y; RFC 4180 quoting).
	CSV string `json:"csv"`
	// Notes are the figure's annotations.
	Notes []string `json:"notes,omitempty"`
	// Err records the first typed run error behind the figure ("" =
	// every run completed). A crash fault plan aborting its run lands
	// here, not in the job state: the job itself succeeded.
	Err string `json:"err,omitempty"`
}

// EncodeResult renders a figure into the canonical result-document
// bytes stored in the cache and served by GET /jobs/{id}/result.
func EncodeResult(hash string, r *experiments.Result) ([]byte, error) {
	doc := ResultDoc{
		Hash:   hash,
		ID:     r.ID,
		Title:  r.Title,
		XLabel: r.XLabel,
		YLabel: r.YLabel,
		CSV:    r.CSV(),
		Notes:  r.Notes,
	}
	if r.Err != nil {
		doc.Err = fmt.Sprintf("%v", r.Err)
	}
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(data, '\n'), nil
}
