package jobs

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
)

// Server is the HTTP/JSON surface of the job service:
//
//	POST /jobs              submit a spec; 202 with the created job
//	GET  /jobs              list jobs in submission order
//	GET  /jobs/{id}         status with live progress
//	GET  /jobs/{id}/result  the finished result document (cache bytes)
//	POST /jobs/{id}/cancel  withdraw a pending or running job
//	GET  /healthz           liveness plus queue counts
//
// Bad submissions are rejected with 400s whose error message names the
// offending spec field — and for fault plans, the offending event index
// and field.
type Server struct {
	Queue  *Queue
	Cache  *Cache
	Runner *Runner
}

// maxSpecBytes bounds a submission body; inline fault plans are small.
const maxSpecBytes = 1 << 20

// Handler returns the route table.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /jobs", s.submit)
	mux.HandleFunc("GET /jobs", s.list)
	mux.HandleFunc("GET /jobs/{id}", s.status)
	mux.HandleFunc("GET /jobs/{id}/result", s.result)
	mux.HandleFunc("POST /jobs/{id}/cancel", s.cancel)
	mux.HandleFunc("GET /healthz", s.health)
	return mux
}

// jobView is a job as the API renders it.
type jobView struct {
	ID        string `json:"id"`
	Hash      string `json:"hash"`
	State     State  `json:"state"`
	Attempts  int    `json:"attempts,omitempty"`
	SpecsDone int    `json:"specs_done"`
	CacheHit  bool   `json:"cache_hit,omitempty"`
	Error     string `json:"error,omitempty"`
	Spec      Spec   `json:"spec"`
}

func viewOf(j Job) jobView {
	return jobView{
		ID:        j.ID,
		Hash:      j.Hash,
		State:     j.State,
		Attempts:  j.Attempts,
		SpecsDone: j.SpecsDone,
		CacheHit:  j.CacheHit,
		Error:     j.Error,
		Spec:      j.Spec,
	}
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		fmt.Fprintf(w, "{\"error\":%q}\n", err.Error())
		return
	}
	w.Write(append(data, '\n'))
}

func writeError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, map[string]string{"error": fmt.Sprintf(format, args...)})
}

func (s *Server) submit(w http.ResponseWriter, req *http.Request) {
	body, err := io.ReadAll(io.LimitReader(req.Body, maxSpecBytes+1))
	if err != nil {
		writeError(w, http.StatusBadRequest, "reading body: %v", err)
		return
	}
	if len(body) > maxSpecBytes {
		writeError(w, http.StatusRequestEntityTooLarge, "spec exceeds %d bytes", maxSpecBytes)
		return
	}
	spec, err := ParseSpec(body)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	spec, err = spec.Normalize()
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	hash, err := spec.Hash()
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	job, err := s.Queue.Submit(spec, hash)
	if err != nil {
		writeError(w, http.StatusInternalServerError, "persisting job: %v", err)
		return
	}
	s.Runner.Kick()
	_, cached := s.Cache.Get(hash)
	writeJSON(w, http.StatusAccepted, struct {
		jobView
		Cached bool `json:"cached"`
	}{viewOf(job), cached})
}

func (s *Server) list(w http.ResponseWriter, _ *http.Request) {
	jobs := s.Queue.List()
	views := make([]jobView, len(jobs))
	for i, j := range jobs {
		views[i] = viewOf(j)
	}
	writeJSON(w, http.StatusOK, map[string]any{"jobs": views})
}

func (s *Server) status(w http.ResponseWriter, req *http.Request) {
	j, ok := s.Queue.Get(req.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown job %q", req.PathValue("id"))
		return
	}
	writeJSON(w, http.StatusOK, viewOf(j))
}

func (s *Server) result(w http.ResponseWriter, req *http.Request) {
	j, ok := s.Queue.Get(req.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown job %q", req.PathValue("id"))
		return
	}
	if j.State != Succeeded {
		writeError(w, http.StatusConflict, "job %s is %s%s", j.ID, j.State, errSuffix(j.Error))
		return
	}
	doc, ok := s.Cache.Get(j.Hash)
	if !ok {
		writeError(w, http.StatusInternalServerError, "result of %s missing from cache", j.ID)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(doc)
}

func errSuffix(msg string) string {
	if msg == "" {
		return ""
	}
	return ": " + msg
}

func (s *Server) cancel(w http.ResponseWriter, req *http.Request) {
	id := req.PathValue("id")
	j, ok := s.Queue.Get(id)
	if !ok {
		writeError(w, http.StatusNotFound, "unknown job %q", id)
		return
	}
	switch j.State {
	case Pending, Running:
		if !s.Runner.Cancel(id) {
			// The job reached a terminal state between Get and Cancel.
			j, _ = s.Queue.Get(id)
			writeError(w, http.StatusConflict, "job %s already %s", id, j.State)
			return
		}
		j, _ = s.Queue.Get(id)
		writeJSON(w, http.StatusOK, viewOf(j))
	default:
		writeError(w, http.StatusConflict, "job %s already %s", id, j.State)
	}
}

func (s *Server) health(w http.ResponseWriter, _ *http.Request) {
	counts := s.Queue.Counts()
	writeJSON(w, http.StatusOK, map[string]any{
		"ok":        true,
		"pending":   counts[Pending],
		"running":   counts[Running],
		"succeeded": counts[Succeeded],
		"failed":    counts[Failed],
		"canceled":  counts[Canceled],
	})
}
