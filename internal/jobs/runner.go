package jobs

import (
	"context"
	"errors"
	"fmt"
	"path/filepath"
	"runtime/debug"
	"sync"
	"time"

	"ompsscluster/internal/expander"
	"ompsscluster/internal/experiments"
	"ompsscluster/internal/simtime"
	"ompsscluster/internal/sweep"
)

// Terminal causes the runner distinguishes on a job context.
var (
	// errDraining stops the current job for a graceful shutdown; the
	// job goes back to Pending and resumes from its checkpoint on the
	// next start.
	errDraining = errors.New("server draining")
	// errCanceled is a client cancellation of the running job.
	errCanceled = errors.New("canceled by request")
)

// Runner executes queued jobs one at a time, in FIFO order, on a
// single goroutine. One-at-a-time is a feature, not a limitation: each
// figure already sweeps its simulator runs in parallel (Spec.Parallel),
// and serial job execution keeps the global spec indexing — and with
// it the checkpoint format — trivially deterministic.
//
// A job that panics is retried with exponential backoff up to Retries
// attempts and then quarantined as Failed; the panic never reaches the
// server. Every attempt resumes from the job's checkpoint, so work
// completed before a panic is never redone — and if the panic is
// deterministic, each retry still makes progress up to the poisoned
// spec.
type Runner struct {
	queue *Queue
	cache *Cache
	// ckptDir holds per-spec-hash checkpoint snapshots.
	ckptDir string

	// Retries is the attempt budget per job (default 3).
	Retries int
	// Backoff is the base retry delay, doubled per attempt (default
	// 250ms).
	Backoff time.Duration
	// Timeout is the default per-job wall-clock budget; a spec's
	// timeout_sec overrides it. 0 = unlimited.
	Timeout time.Duration
	// DefaultParallel is the sweep parallelism for specs that leave
	// Parallel unset.
	DefaultParallel int

	// runFn computes a spec's figure; tests substitute failure modes.
	runFn func(spec Spec, sc experiments.Scale) (*experiments.Result, error)

	mu        sync.Mutex
	curID     string
	curCancel context.CancelCauseFunc

	wake chan struct{}
	stop chan struct{}
	wg   sync.WaitGroup
}

// NewRunner wires a runner to its queue, cache, and state directory.
func NewRunner(q *Queue, cache *Cache, stateDir string) *Runner {
	return &Runner{
		queue:   q,
		cache:   cache,
		ckptDir: filepath.Join(stateDir, "checkpoints"),
		Retries: 3,
		Backoff: 250 * time.Millisecond,
		runFn:   runSpec,
		wake:    make(chan struct{}, 1),
		stop:    make(chan struct{}),
	}
}

// runSpec is the per-spec runner entry point into the experiments
// package: the spec's run kind dispatches exactly like the lbsim CLI.
// sc arrives fully configured, including the job hooks that thread
// checkpointing and cancellation through every figure sweep.
func runSpec(spec Spec, sc experiments.Scale) (*experiments.Result, error) {
	plan, err := spec.Plan()
	if err != nil {
		return nil, err
	}
	switch {
	case spec.Policy != "":
		return experiments.PolicyDemo(sc, spec.Policy, plan)
	case plan != nil:
		return experiments.FaultDemo(sc, plan), nil
	default:
		return experiments.ByID(spec.Experiment, sc)
	}
}

// Start launches the worker goroutine.
func (r *Runner) Start() {
	r.wg.Add(1)
	go r.loop()
}

// Kick nudges the worker after a submission.
func (r *Runner) Kick() {
	select {
	case r.wake <- struct{}{}:
	default:
	}
}

// Drain stops the runner gracefully: the running job is interrupted
// (its sweep stops drawing specs; its checkpoint stays) and demoted
// back to Pending, then the worker exits. Safe to call once.
func (r *Runner) Drain() {
	close(r.stop)
	r.cancelCurrent(errDraining)
	r.wg.Wait()
}

// Cancel withdraws a job: pending jobs flip to Canceled directly, the
// running job has its context canceled and the runner records the
// state. Returns false for unknown or already-finished jobs.
func (r *Runner) Cancel(id string) bool {
	r.mu.Lock()
	if r.curID == id && r.curCancel != nil {
		r.curCancel(errCanceled)
		r.mu.Unlock()
		return true
	}
	r.mu.Unlock()
	return r.queue.CancelPending(id)
}

func (r *Runner) cancelCurrent(cause error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.curCancel != nil {
		r.curCancel(cause)
	}
}

func (r *Runner) stopping() bool {
	select {
	case <-r.stop:
		return true
	default:
		return false
	}
}

func (r *Runner) loop() {
	defer r.wg.Done()
	for {
		if r.stopping() {
			return
		}
		job, ok := r.queue.ClaimNext()
		if !ok {
			select {
			case <-r.wake:
			case <-r.stop:
				return
			}
			continue
		}
		r.process(job)
	}
}

// process drives one claimed job to a terminal state (or back to
// Pending when draining).
func (r *Runner) process(job Job) {
	// Content-address lookup first: an identical spec that already
	// completed — under any engine — is served from disk in O(1).
	if _, ok := r.cache.Get(job.Hash); ok {
		r.queue.MarkCacheHit(job.ID)
		return
	}
	ckptPath := filepath.Join(r.ckptDir, job.Hash+".json")
	for attempt := 1; ; attempt++ {
		r.queue.IncAttempts(job.ID)
		ckpt := OpenCheckpoint(ckptPath)
		r.queue.SetProgress(job.ID, ckpt.Len())
		res, err := r.runOnce(job, ckpt)
		cause := err
		switch {
		case cause == nil:
			doc, encErr := EncodeResult(job.Hash, res)
			if encErr != nil {
				r.queue.SetState(job.ID, Failed, fmt.Sprintf("encoding result: %v", encErr))
				return
			}
			if putErr := r.cache.Put(job.Hash, doc); putErr != nil {
				r.queue.SetState(job.ID, Failed, fmt.Sprintf("caching result: %v", putErr))
				return
			}
			ckpt.Remove()
			r.queue.SetState(job.ID, Succeeded, "")
			return
		case errors.Is(cause, errDraining):
			r.queue.SetState(job.ID, Pending, "")
			return
		case errors.Is(cause, errCanceled):
			r.queue.SetState(job.ID, Canceled, "canceled while running (checkpoint kept; resubmit to resume)")
			return
		case errors.Is(cause, context.DeadlineExceeded):
			r.queue.SetState(job.ID, Failed, "wall-clock timeout (checkpoint kept; resubmit to resume)")
			return
		default:
			var pe *panicError
			if !errors.As(cause, &pe) {
				// A plain error (unknown policy slipping past validation,
				// a figure refusing its configuration): terminal, no retry.
				r.queue.SetState(job.ID, Failed, cause.Error())
				return
			}
			// Panic: retry with backoff inside the attempt budget, then
			// quarantine. The server never crashes with the job, and each
			// retry resumes from the checkpoint, so pre-panic work is
			// never redone.
			if attempt >= r.Retries {
				r.queue.SetState(job.ID, Failed, fmt.Sprintf(
					"quarantined after %d attempts: %s", attempt, pe.Error()))
				return
			}
			delay := r.Backoff << (attempt - 1)
			select {
			case <-time.After(delay):
			case <-r.stop:
				r.queue.SetState(job.ID, Pending, "")
				return
			}
		}
	}
}

// panicError is a recovered job panic, carrying the panic site's stack
// (for a sweep worker panic, the original job goroutine's stack that
// sweep.JobPanic preserved).
type panicError struct {
	value any
	stack []byte
}

func (e *panicError) Error() string {
	return fmt.Sprintf("job panicked: %v\n%s", e.value, e.stack)
}

// runOnce executes one attempt of a job with checkpoint hooks and the
// cancellation/timeout context attached, converting panics to errors.
func (r *Runner) runOnce(job Job, ckpt *Checkpointer) (res *experiments.Result, err error) {
	sc, scErr := experiments.ScaleByName(job.Spec.Scale)
	if scErr != nil {
		return nil, scErr
	}
	sc.Seed = job.Spec.Seed
	sc.Parallel = job.Spec.Parallel
	if sc.Parallel == 0 {
		sc.Parallel = r.DefaultParallel
	}
	switch job.Spec.Engine {
	case "goroutine":
		sc.GoroutineEngine = true
	case "parallel":
		sc.SimParallel = true
		sc.SimWorkers = job.Spec.SimWorkers
	}
	sc.Graphs = expander.NewStore("")
	sc.Engine = simtime.NewStatsCollector()

	ctx, cancel := context.WithCancelCause(context.Background())
	timeout := r.Timeout
	if job.Spec.TimeoutSec > 0 {
		timeout = time.Duration(job.Spec.TimeoutSec) * time.Second
	}
	if timeout > 0 {
		tctx, tcancel := context.WithTimeoutCause(ctx, timeout, context.DeadlineExceeded)
		defer tcancel()
		ctx = tctx
	}
	r.mu.Lock()
	r.curID, r.curCancel = job.ID, cancel
	r.mu.Unlock()
	defer func() {
		r.mu.Lock()
		r.curID, r.curCancel = "", nil
		r.mu.Unlock()
		cancel(nil)
		if v := recover(); v != nil {
			if jp, ok := v.(*sweep.JobPanic); ok {
				err = &panicError{value: jp.Value, stack: jp.Stack}
			} else {
				err = &panicError{value: v, stack: debug.Stack()}
			}
			res = nil
		}
	}()

	hooks := &experiments.JobHooks{
		Ctx:    ctx,
		Cached: ckpt.Cached,
		Done: func(idx int, enc []byte) {
			ckpt.Record(idx, enc)
			r.queue.SetProgress(job.ID, ckpt.Len())
		},
	}
	sc.Jobs = hooks
	res, err = r.runFn(job.Spec, sc)
	if hooks.Canceled() {
		// The sweep stopped drawing specs; the assembled Result is
		// partial garbage by contract. Surface why — the cause
		// (draining, cancel, deadline) decides the job's fate.
		return nil, context.Cause(ctx)
	}
	return res, err
}
