package jobs

import (
	"encoding/json"
	"fmt"
	"os"
	"sync"
)

// State is a job's lifecycle position.
type State string

const (
	// Pending jobs wait in FIFO order for the runner.
	Pending State = "pending"
	// Running is the (single) job the runner is executing.
	Running State = "running"
	// Succeeded jobs have their result document in the cache.
	Succeeded State = "succeeded"
	// Failed jobs exhausted their retry budget, timed out, or hit a
	// terminal error; Job.Error says which.
	Failed State = "failed"
	// Canceled jobs were withdrawn by the client. Their checkpoint is
	// kept: resubmitting the same spec resumes where they stopped.
	Canceled State = "canceled"
)

// Job is one queued spec and its progress. The persisted fields
// deliberately exclude wall-clock timestamps, so the queue file stays
// deterministic for a given submission history.
type Job struct {
	ID   string `json:"id"`
	Spec Spec   `json:"spec"`
	// Hash is the spec's content address.
	Hash  string `json:"hash"`
	State State  `json:"state"`
	// Attempts counts started executions (a job that panics and is
	// retried has Attempts > 1).
	Attempts int `json:"attempts,omitempty"`
	// Error is the terminal failure reason (Failed) or cancellation
	// note (Canceled).
	Error string `json:"error,omitempty"`
	// CacheHit marks a success served from the result cache without
	// any simulation.
	CacheHit bool `json:"cache_hit,omitempty"`

	// SpecsDone is the live progress counter (completed simulator
	// specs, including checkpointed ones adopted on resume). Not
	// persisted — the checkpoint file is the durable record.
	SpecsDone int `json:"-"`
}

// Queue is the FIFO job queue, persisted atomically on every state
// transition so a killed server restarts exactly where it stopped:
// OpenQueue demotes Running back to Pending, and the job's checkpoint
// (keyed by spec hash, not job id) makes the re-run a resume.
type Queue struct {
	path string

	mu     sync.Mutex
	jobs   map[string]*Job
	order  []string // submission order; FIFO scheduling scans this
	nextID int
}

// queueFile is the on-disk format.
type queueFile struct {
	NextID int   `json:"next_id"`
	Jobs   []Job `json:"jobs"`
}

// OpenQueue loads the queue persisted at path (a missing file is an
// empty queue). Jobs found Running were interrupted by a crash or kill;
// they are demoted to Pending — with their checkpoints intact — so the
// runner resumes them.
func OpenQueue(path string) (*Queue, error) {
	q := &Queue{path: path, jobs: map[string]*Job{}, nextID: 1}
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return q, nil
	}
	if err != nil {
		return nil, err
	}
	var f queueFile
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, fmt.Errorf("jobs: queue file %s is corrupt: %w", path, err)
	}
	q.nextID = f.NextID
	for i := range f.Jobs {
		j := f.Jobs[i]
		if j.State == Running {
			j.State = Pending
		}
		q.jobs[j.ID] = &j
		q.order = append(q.order, j.ID)
	}
	return q, nil
}

// Submit appends a normalized spec with its content address and
// persists. The returned copy is the job as created.
func (q *Queue) Submit(spec Spec, hash string) (Job, error) {
	q.mu.Lock()
	defer q.mu.Unlock()
	j := &Job{
		ID:    fmt.Sprintf("j%d", q.nextID),
		Spec:  spec,
		Hash:  hash,
		State: Pending,
	}
	q.nextID++
	q.jobs[j.ID] = j
	q.order = append(q.order, j.ID)
	if err := q.persistLocked(); err != nil {
		return Job{}, err
	}
	return *j, nil
}

// ClaimNext atomically promotes the oldest Pending job to Running and
// returns it. ok is false when nothing is pending.
func (q *Queue) ClaimNext() (Job, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for _, id := range q.order {
		j := q.jobs[id]
		if j.State != Pending {
			continue
		}
		j.State = Running
		q.persistLocked()
		return *j, true
	}
	return Job{}, false
}

// SetState records a transition (and clears or sets the error note)
// and persists.
func (q *Queue) SetState(id string, st State, errMsg string) {
	q.mu.Lock()
	defer q.mu.Unlock()
	j, ok := q.jobs[id]
	if !ok {
		return
	}
	j.State = st
	j.Error = errMsg
	q.persistLocked()
}

// IncAttempts bumps the persisted attempt counter (one per started
// execution, including retries after a panic) and returns the total.
func (q *Queue) IncAttempts(id string) int {
	q.mu.Lock()
	defer q.mu.Unlock()
	j, ok := q.jobs[id]
	if !ok {
		return 0
	}
	j.Attempts++
	q.persistLocked()
	return j.Attempts
}

// MarkCacheHit flags a success as served from the cache.
func (q *Queue) MarkCacheHit(id string) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if j, ok := q.jobs[id]; ok {
		j.CacheHit = true
		j.State = Succeeded
		q.persistLocked()
	}
}

// CancelPending cancels a job only if it has not started; the runner
// owns cancellation of the running job.
func (q *Queue) CancelPending(id string) bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	j, ok := q.jobs[id]
	if !ok || j.State != Pending {
		return false
	}
	j.State = Canceled
	j.Error = "canceled before start"
	q.persistLocked()
	return true
}

// SetProgress updates the live spec counter (in-memory only).
func (q *Queue) SetProgress(id string, specsDone int) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if j, ok := q.jobs[id]; ok {
		j.SpecsDone = specsDone
	}
}

// Get returns a copy of the job.
func (q *Queue) Get(id string) (Job, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	j, ok := q.jobs[id]
	if !ok {
		return Job{}, false
	}
	return *j, true
}

// List returns copies of every job in submission order.
func (q *Queue) List() []Job {
	q.mu.Lock()
	defer q.mu.Unlock()
	out := make([]Job, 0, len(q.order))
	for _, id := range q.order {
		out = append(out, *q.jobs[id])
	}
	return out
}

// Counts returns the number of jobs in each state.
func (q *Queue) Counts() map[State]int {
	q.mu.Lock()
	defer q.mu.Unlock()
	out := map[State]int{}
	for _, j := range q.jobs {
		out[j.State]++
	}
	return out
}

func (q *Queue) persistLocked() error {
	f := queueFile{NextID: q.nextID, Jobs: make([]Job, 0, len(q.order))}
	for _, id := range q.order {
		f.Jobs = append(f.Jobs, *q.jobs[id])
	}
	data, err := json.MarshalIndent(f, "", " ")
	if err != nil {
		return err
	}
	return writeFileAtomic(q.path, append(data, '\n'))
}
