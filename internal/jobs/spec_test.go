package jobs

import (
	"strings"
	"testing"
)

// mustHash parses, normalizes, and hashes a submission document.
func mustHash(t *testing.T, doc string) string {
	t.Helper()
	spec, err := ParseSpec([]byte(doc))
	if err != nil {
		t.Fatalf("parse %s: %v", doc, err)
	}
	spec, err = spec.Normalize()
	if err != nil {
		t.Fatalf("normalize %s: %v", doc, err)
	}
	h, err := spec.Hash()
	if err != nil {
		t.Fatalf("hash %s: %v", doc, err)
	}
	return h
}

func TestHashIndependentOfFieldOrderAndHints(t *testing.T) {
	base := mustHash(t, `{"experiment":"fig8","scale":"quick","seed":1}`)
	same := []string{
		// Key order and whitespace don't matter.
		`{"seed":1,  "scale":"quick","experiment":"fig8"}`,
		// Defaults normalize: quick's default seed is 1.
		`{"experiment":"fig8","scale":"quick"}`,
		// Execution hints are excluded from the address.
		`{"experiment":"fig8","scale":"quick","engine":"goroutine"}`,
		`{"experiment":"fig8","scale":"quick","engine":"parallel","simworkers":4}`,
		`{"experiment":"fig8","scale":"quick","parallel":8,"timeout_sec":60}`,
	}
	for _, doc := range same {
		if h := mustHash(t, doc); h != base {
			t.Errorf("hash of %s = %s, want %s", doc, h, base)
		}
	}
}

func TestHashFaultPlanCanonicalization(t *testing.T) {
	a := mustHash(t, `{"scale":"quick","faults":{
		"name":"demo","events":[{"kind":"slow","at":"20ms","until":"50ms","node":1,"speed":0.5}]}}`)
	// Same plan, different key order and formatting.
	b := mustHash(t, `{"faults":{"events":[{"speed":0.5,"node":1,"until":"50ms","at":"20000us","kind":"slow"}],"name":"demo"},"scale":"quick"}`)
	if a != b {
		t.Errorf("equivalent fault plans hashed differently: %s vs %s", a, b)
	}
}

func TestHashDifferentialNoCollisions(t *testing.T) {
	// Every result-affecting field perturbation must move the address.
	docs := []string{
		`{"experiment":"fig8","scale":"quick"}`,
		`{"experiment":"fig8","scale":"default"}`,
		`{"experiment":"fig8","scale":"quick","seed":2}`,
		`{"experiment":"fig9","scale":"quick"}`,
		`{"policy":"guided","scale":"quick"}`,
		`{"policy":"twolevel","scale":"quick"}`,
		`{"policy":"guided","scale":"quick","faults":"slownode"}`,
		`{"faults":"slownode","scale":"quick"}`,
		`{"faults":{"name":"x","events":[{"kind":"drain","at":"1ms","node":1}]},"scale":"quick"}`,
		`{"faults":{"name":"x","events":[{"kind":"drain","at":"1ms","node":2}]},"scale":"quick"}`,
		`{"faults":{"name":"x","events":[{"kind":"drain","at":"2ms","node":1}]},"scale":"quick"}`,
	}
	seen := map[string]string{}
	for _, doc := range docs {
		h := mustHash(t, doc)
		if prev, ok := seen[h]; ok {
			t.Errorf("collision: %s and %s share hash %s", prev, doc, h)
		}
		seen[h] = doc
	}
}

func TestParseSpecActionableErrors(t *testing.T) {
	cases := []struct {
		name string
		doc  string
		want []string
	}{
		{"unknown field", `{"experimnt":"fig8"}`, []string{`unknown field "experimnt"`, "valid fields"}},
		{"type error names field", `{"seed":"one"}`, []string{`field "seed"`, "int64"}},
		{"trailing garbage", `{"experiment":"fig8"} junk`, []string{"trailing data"}},
	}
	for _, tc := range cases {
		_, err := ParseSpec([]byte(tc.doc))
		if err == nil {
			t.Errorf("%s: want error, got nil", tc.name)
			continue
		}
		for _, w := range tc.want {
			if !strings.Contains(err.Error(), w) {
				t.Errorf("%s: error %q missing %q", tc.name, err, w)
			}
		}
	}
}

func TestNormalizeRejects(t *testing.T) {
	cases := []struct {
		name string
		doc  string
		want string
	}{
		{"no run selected", `{"scale":"quick"}`, "selects no run"},
		{"unknown experiment", `{"experiment":"fig99"}`, "unknown experiment"},
		{"unknown scale", `{"experiment":"fig8","scale":"huge"}`, "unknown scale"},
		{"unknown policy", `{"policy":"roundrobin"}`, "unknown policy"},
		{"unknown engine", `{"experiment":"fig8","engine":"warp"}`, "unknown engine"},
		{"experiment+policy", `{"experiment":"fig8","policy":"guided"}`, "mutually exclusive"},
		{"experiment+faults", `{"experiment":"fig8","faults":"slownode"}`, "mutually exclusive"},
		{"simworkers without parallel engine", `{"experiment":"fig8","simworkers":2}`, "simworkers"},
		{"unknown preset", `{"faults":"meteorstorm"}`, "unknown faults preset"},
		{"bad plan event indexed", `{"faults":{"events":[{"kind":"slow","at":"1ms","until":"2ms","speed":0.5},{"kind":"coreloss","at":"1ms","cores":"two"}]}}`, "event 1"},
		{"plan invalid for demo machine", `{"faults":{"events":[{"kind":"crash","at":"1ms","node":9}]}}`, "out of range"},
	}
	for _, tc := range cases {
		spec, err := ParseSpec([]byte(tc.doc))
		if err == nil {
			_, err = spec.Normalize()
		}
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: want error containing %q, got %v", tc.name, tc.want, err)
		}
	}
}

func TestNormalizeFillsDefaults(t *testing.T) {
	spec, err := ParseSpec([]byte(`{"experiment":"fig8"}`))
	if err != nil {
		t.Fatal(err)
	}
	spec, err = spec.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	if spec.Scale != "default" || spec.Seed != 1 || spec.Engine != "continuation" {
		t.Fatalf("defaults not filled: %+v", spec)
	}
}
