// Package jobs is the crash-safe simulation service behind cmd/lbsimd:
// a job spec with a canonical content address, a FIFO queue with
// persisted states, a checkpointer that snapshots per-spec sweep
// outcomes atomically so a killed server resumes and produces
// byte-identical output, a content-addressed result cache, and an
// HTTP/JSON server.
//
// Everything leans on the simulator's determinism: a spec's result is a
// pure function of its result-affecting fields (experiment, scale,
// seed, policy, fault plan), identical across sweep parallelism,
// engines, and worker counts. That is what makes the content address
// sound — and what makes a resumed run provably byte-identical to an
// uninterrupted one.
package jobs

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"strings"

	"ompsscluster/internal/balance"
	"ompsscluster/internal/experiments"
	"ompsscluster/internal/faults"
)

// Spec describes one simulation job. Exactly one of Experiment, Policy,
// or Faults-without-Experiment selects the run kind, mirroring the
// lbsim CLI: -exp, -policy (optionally with -faults), -faults alone.
//
// Engine, SimWorkers, Parallel, and TimeoutSec are execution hints:
// they change how fast the job runs, never what it computes (results
// are byte-identical across engines by the simulator's determinism
// contract), so they are excluded from the content address — a result
// cached under one engine serves resubmissions under any other.
type Spec struct {
	// Experiment is a figure id from experiments.IDs() ("fig8", ...).
	Experiment string `json:"experiment,omitempty"`
	// Scale is "quick", "default", or "paper" ("" = default).
	Scale string `json:"scale,omitempty"`
	// Seed overrides the scale's seed (0 = the scale default).
	Seed int64 `json:"seed,omitempty"`
	// Policy selects a self-scheduling policy demo run.
	Policy string `json:"policy,omitempty"`
	// Faults is either a JSON string naming a preset plan or an inline
	// fault-plan object (the same wire format lbsim -faults accepts
	// from a file).
	Faults json.RawMessage `json:"faults,omitempty"`

	// Execution hints — never part of the content address.
	Engine     string `json:"engine,omitempty"`      // continuation (default), goroutine, parallel
	SimWorkers int    `json:"simworkers,omitempty"`  // parallel-engine host workers
	Parallel   int    `json:"parallel,omitempty"`    // concurrent simulator runs per sweep
	TimeoutSec int    `json:"timeout_sec,omitempty"` // per-job wall-clock budget (0 = server default)
}

// demoNodes/demoAppranks are the fault- and policy-demo machine size
// (4 nodes, one apprank per node — see experiments.resilienceNodes);
// inline fault plans are validated against it at submission time.
const (
	demoNodes    = 4
	demoAppranks = 4
)

// ParseSpec decodes a job submission strictly: unknown fields and type
// mismatches are reported with the offending field name so lbsimd can
// reject bad submissions with actionable 400s instead of bare JSON
// errors.
func ParseSpec(data []byte) (Spec, error) {
	var s Spec
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&s); err != nil {
		var te *json.UnmarshalTypeError
		if errors.As(err, &te) {
			field := te.Field
			if field == "" {
				field = "(document)"
			}
			return Spec{}, fmt.Errorf("spec field %q: got JSON %s, want %s", field, te.Value, te.Type)
		}
		if msg := err.Error(); strings.HasPrefix(msg, "json: unknown field ") {
			return Spec{}, fmt.Errorf("spec: %s (valid fields: experiment, scale, seed, policy, faults, engine, simworkers, parallel, timeout_sec)",
				strings.TrimPrefix(msg, "json: "))
		}
		return Spec{}, fmt.Errorf("spec: %w", err)
	}
	if dec.More() {
		return Spec{}, fmt.Errorf("spec: trailing data after the JSON document")
	}
	return s, nil
}

// Normalize validates the spec and fills the defaulted result-affecting
// fields (scale name, effective seed) plus the engine hint, returning
// the normalized copy the queue stores and the hash covers. The fault
// plan is parsed (with indexed, field-named errors) and semantically
// validated against the demo machine here, so every queued job is
// known runnable.
func (s Spec) Normalize() (Spec, error) {
	if s.Scale == "" {
		s.Scale = "default"
	}
	sc, err := experiments.ScaleByName(s.Scale)
	if err != nil {
		return Spec{}, err
	}
	if s.Seed == 0 {
		s.Seed = sc.Seed
	}
	switch s.Engine {
	case "":
		s.Engine = "continuation"
	case "continuation", "goroutine", "parallel":
	default:
		return Spec{}, fmt.Errorf("unknown engine %q (continuation, goroutine, parallel)", s.Engine)
	}
	if s.SimWorkers < 0 {
		return Spec{}, fmt.Errorf("simworkers must be >= 0, got %d", s.SimWorkers)
	}
	if s.SimWorkers != 0 && s.Engine != "parallel" {
		return Spec{}, fmt.Errorf("simworkers only applies to engine \"parallel\" (got engine %q)", s.Engine)
	}
	if s.Parallel < 0 {
		return Spec{}, fmt.Errorf("parallel must be >= 0, got %d", s.Parallel)
	}
	if s.TimeoutSec < 0 {
		return Spec{}, fmt.Errorf("timeout_sec must be >= 0, got %d", s.TimeoutSec)
	}

	// Run-kind selection, mirroring the CLI's hard errors: an
	// experiment run silently dropping a fault plan would run something
	// other than what was submitted.
	switch {
	case s.Experiment != "" && s.Policy != "":
		return Spec{}, fmt.Errorf("experiment and policy are mutually exclusive (the policy demo is its own run; use experiment \"policies\" for the full sweep)")
	case s.Experiment != "" && len(s.Faults) != 0:
		return Spec{}, fmt.Errorf("experiment and faults are mutually exclusive (the fault demo is its own run; use experiment \"resilience\" for the fault sweep)")
	case s.Experiment == "" && s.Policy == "" && len(s.Faults) == 0:
		return Spec{}, fmt.Errorf("spec selects no run: set experiment (one of %s), policy (one of %s), or faults",
			strings.Join(experiments.IDs(), ", "), strings.Join(balance.SelfSchedNames(), ", "))
	}
	if s.Experiment != "" && !validExperiment(s.Experiment) {
		return Spec{}, fmt.Errorf("unknown experiment %q (have %s)", s.Experiment, strings.Join(experiments.IDs(), ", "))
	}
	if s.Policy != "" && !validPolicy(s.Policy) {
		return Spec{}, fmt.Errorf("unknown policy %q (have %s)", s.Policy, strings.Join(balance.SelfSchedNames(), ", "))
	}
	if _, err := s.Plan(); err != nil {
		return Spec{}, err
	}
	return s, nil
}

func validExperiment(id string) bool {
	for _, have := range experiments.IDs() {
		if have == id {
			return true
		}
	}
	return false
}

func validPolicy(name string) bool {
	for _, have := range balance.SelfSchedNames() {
		if have == name {
			return true
		}
	}
	return false
}

// Plan resolves the spec's fault plan: nil when unset, the named preset
// when Faults is a JSON string, the parsed and validated plan when it
// is an inline object. Parse errors carry the offending event index and
// field (see faults.Parse).
func (s Spec) Plan() (*faults.Plan, error) {
	if len(s.Faults) == 0 {
		return nil, nil
	}
	raw := bytes.TrimSpace(s.Faults)
	if len(raw) > 0 && raw[0] == '"' {
		var name string
		if err := json.Unmarshal(raw, &name); err != nil {
			return nil, fmt.Errorf("faults preset name: %w", err)
		}
		p, ok := faults.Preset(name)
		if !ok {
			return nil, fmt.Errorf("unknown faults preset %q (have %s)", name, strings.Join(faults.PresetNames(), ", "))
		}
		return p, nil
	}
	p, err := faults.Parse(raw)
	if err != nil {
		return nil, err
	}
	if err := p.Validate(demoNodes, demoAppranks); err != nil {
		return nil, fmt.Errorf("%w (the demo machine has %d nodes, %d appranks)", err, demoNodes, demoAppranks)
	}
	return p, nil
}

// canonicalSpec is the hashed document: only result-affecting fields,
// in a fixed struct order, with the fault plan re-encoded from its
// parsed form — so submissions that differ in JSON key order,
// whitespace, or execution hints produce the same address.
type canonicalSpec struct {
	Experiment string         `json:"experiment"`
	Scale      string         `json:"scale"`
	Seed       int64          `json:"seed"`
	Policy     string         `json:"policy"`
	Faults     *canonicalPlan `json:"faults"`
}

type canonicalPlan struct {
	Name        string           `json:"name"`
	Seed        uint64           `json:"seed"`
	PinSeed     bool             `json:"pin_seed"`
	MaxAttempts int              `json:"max_attempts"`
	Backoff     int64            `json:"backoff"`
	Events      []canonicalEvent `json:"events"`
}

type canonicalEvent struct {
	Kind    string  `json:"kind"`
	At      int64   `json:"at"`
	Until   int64   `json:"until"`
	Node    int     `json:"node"`
	NodeB   int     `json:"node_b"`
	Apprank int     `json:"apprank"`
	Speed   float64 `json:"speed"`
	Cores   int     `json:"cores"`
	Delay   int64   `json:"delay"`
	Jitter  int64   `json:"jitter"`
	Drop    float64 `json:"drop"`
}

// Canonical returns the canonical serialization of a normalized spec —
// the document whose sha256 is the spec's content address.
func (s Spec) Canonical() ([]byte, error) {
	plan, err := s.Plan()
	if err != nil {
		return nil, err
	}
	c := canonicalSpec{
		Experiment: s.Experiment,
		Scale:      s.Scale,
		Seed:       s.Seed,
		Policy:     s.Policy,
	}
	if plan != nil {
		cp := &canonicalPlan{
			Name:        plan.Name,
			Seed:        plan.Seed,
			PinSeed:     plan.PinSeed,
			MaxAttempts: plan.MaxAttempts,
			Backoff:     int64(plan.Backoff),
			Events:      make([]canonicalEvent, len(plan.Events)),
		}
		for i, ev := range plan.Events {
			cp.Events[i] = canonicalEvent{
				Kind:    string(ev.Kind),
				At:      int64(ev.At),
				Until:   int64(ev.Until),
				Node:    ev.Node,
				NodeB:   ev.NodeB,
				Apprank: ev.Apprank,
				Speed:   ev.Speed,
				Cores:   ev.Cores,
				Delay:   int64(ev.Delay),
				Jitter:  int64(ev.Jitter),
				Drop:    ev.Drop,
			}
		}
		c.Faults = cp
	}
	return json.Marshal(c)
}

// Hash returns the spec's content address: the hex sha256 of its
// canonical serialization.
func (s Spec) Hash() (string, error) {
	doc, err := s.Canonical()
	if err != nil {
		return "", err
	}
	sum := sha256.Sum256(doc)
	return hex.EncodeToString(sum[:]), nil
}
