package jobs

import (
	"os"
	"path/filepath"
)

// Cache is the content-addressed result store: the finished result
// document of a spec lives at <dir>/<hh>/<hash>.json, where hh is the
// first two hex digits of the spec's content address (a fan-out so no
// single directory grows unboundedly). Resubmitting an identical spec
// is an O(1) disk lookup — the cached bytes are returned verbatim,
// which is sound because results are a pure function of the hashed
// fields.
type Cache struct {
	dir string
}

// NewCache returns a cache rooted at dir (created lazily on Put).
func NewCache(dir string) *Cache { return &Cache{dir: dir} }

func (c *Cache) path(hash string) string {
	return filepath.Join(c.dir, hash[:2], hash+".json")
}

// Get returns the cached result document for a content address.
func (c *Cache) Get(hash string) ([]byte, bool) {
	if len(hash) < 2 {
		return nil, false
	}
	data, err := os.ReadFile(c.path(hash))
	if err != nil {
		return nil, false
	}
	return data, true
}

// Put stores a result document under its content address, atomically:
// concurrent or crashed writers leave either nothing or complete bytes.
func (c *Cache) Put(hash string, doc []byte) error {
	if err := os.MkdirAll(filepath.Dir(c.path(hash)), 0o755); err != nil {
		return err
	}
	return writeFileAtomic(c.path(hash), doc)
}
