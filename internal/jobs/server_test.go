package jobs

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"ompsscluster/internal/experiments"
)

// newTestServer wires a full service (real runner, injectable runFn)
// behind an httptest server.
func newTestServer(t *testing.T, runFn func(Spec, experiments.Scale) (*experiments.Result, error)) (*httptest.Server, *Queue) {
	t.Helper()
	r, q, cache, _ := newTestRunner(t)
	if runFn != nil {
		r.runFn = runFn
	}
	r.Start()
	t.Cleanup(r.Drain)
	ts := httptest.NewServer((&Server{Queue: q, Cache: cache, Runner: r}).Handler())
	t.Cleanup(ts.Close)
	return ts, q
}

func postJSON(t *testing.T, url, body string) (int, map[string]any) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var v map[string]any
	data, _ := io.ReadAll(resp.Body)
	if err := json.Unmarshal(data, &v); err != nil {
		t.Fatalf("response %q is not JSON: %v", data, err)
	}
	return resp.StatusCode, v
}

func getJSON(t *testing.T, url string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, data
}

func TestServerRejectsBadSubmissionsWith400s(t *testing.T) {
	ts, _ := newTestServer(t, nil)
	cases := []struct {
		name string
		body string
		want string
	}{
		{"syntax", `{"experiment":`, "spec"},
		{"unknown field", `{"experimnt":"fig8"}`, `unknown field \"experimnt\"`},
		{"unknown experiment", `{"experiment":"fig99"}`, "unknown experiment"},
		{"no run", `{"scale":"quick"}`, "selects no run"},
		{"fault plan event indexed", `{"faults":{"events":[{"kind":"slow","at":"1ms","until":"2ms","speed":0.5},{"kind":"slow","at":"oops","until":"2ms","speed":0.5}]}}`, "event 1"},
		{"fault plan unknown field", `{"faults":{"events":[{"kind":"drain","at":"1ms","nodeb":2}]}}`, `unknown field \"nodeb\"`},
	}
	for _, tc := range cases {
		code, v := postJSON(t, ts.URL+"/jobs", tc.body)
		if code != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400 (%v)", tc.name, code, v)
			continue
		}
		msg, _ := v["error"].(string)
		want := strings.ReplaceAll(tc.want, `\"`, `"`)
		if !strings.Contains(msg, want) {
			t.Errorf("%s: error %q missing %q", tc.name, msg, want)
		}
	}
}

func TestServerLifecycleEndpoints(t *testing.T) {
	block := make(chan struct{})
	ts, q := newTestServer(t, func(spec Spec, sc experiments.Scale) (*experiments.Result, error) {
		if spec.Seed == 7 {
			select {
			case <-block:
			case <-sc.Jobs.Ctx.Done():
				return nil, sc.Jobs.Ctx.Err()
			}
		}
		return &experiments.Result{ID: spec.Experiment, Title: "T", XLabel: "x", YLabel: "y",
			Series: []experiments.Series{{Label: "s", Points: []experiments.Point{{X: 1, Y: 2}}}},
		}, nil
	})
	defer close(block)

	// Submit a blocking job and one behind it.
	code, v := postJSON(t, ts.URL+"/jobs", `{"experiment":"fig8","scale":"quick","seed":7}`)
	if code != http.StatusAccepted {
		t.Fatalf("submit: %d %v", code, v)
	}
	blockedID := v["id"].(string)
	code, v = postJSON(t, ts.URL+"/jobs", `{"experiment":"fig9","scale":"quick"}`)
	if code != http.StatusAccepted {
		t.Fatalf("submit: %d %v", code, v)
	}
	queuedID := v["id"].(string)

	// Status shows the FIFO: first running, second pending.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if j, _ := q.Get(blockedID); j.State == Running {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("first job never started")
		}
		time.Sleep(time.Millisecond)
	}
	if code, data := getJSON(t, ts.URL+"/jobs/"+queuedID); code != http.StatusOK ||
		!strings.Contains(string(data), `"state": "pending"`) {
		t.Fatalf("queued status: %d %s", code, data)
	}

	// Result of an unfinished job is a 409; unknown ids are 404s.
	if code, _ := getJSON(t, ts.URL+"/jobs/"+blockedID+"/result"); code != http.StatusConflict {
		t.Fatalf("result of running job: %d, want 409", code)
	}
	if code, _ := getJSON(t, ts.URL+"/jobs/zzz"); code != http.StatusNotFound {
		t.Fatalf("unknown job: %d, want 404", code)
	}

	// Cancel the pending job, then the running one.
	code, v = postJSON(t, ts.URL+"/jobs/"+queuedID+"/cancel", "")
	if code != http.StatusOK || v["state"] != string(Canceled) {
		t.Fatalf("cancel pending: %d %v", code, v)
	}
	code, _ = postJSON(t, ts.URL+"/jobs/"+blockedID+"/cancel", "")
	if code != http.StatusOK {
		t.Fatalf("cancel running: %d", code)
	}
	if j := waitState(t, q, blockedID, 5*time.Second); j.State != Canceled {
		t.Fatalf("blocked job = %+v, want canceled", j)
	}
	if code, _ = postJSON(t, ts.URL+"/jobs/"+blockedID+"/cancel", ""); code != http.StatusConflict {
		t.Fatalf("double cancel: %d, want 409", code)
	}

	// A clean job completes; its result document is served verbatim.
	code, v = postJSON(t, ts.URL+"/jobs", `{"experiment":"fig10","scale":"quick"}`)
	if code != http.StatusAccepted {
		t.Fatalf("submit: %d %v", code, v)
	}
	doneID := v["id"].(string)
	hash := v["hash"].(string)
	waitState(t, q, doneID, 10*time.Second)
	code, data := getJSON(t, ts.URL+"/jobs/"+doneID+"/result")
	if code != http.StatusOK {
		t.Fatalf("result: %d %s", code, data)
	}
	var doc ResultDoc
	if err := json.Unmarshal(data, &doc); err != nil || doc.Hash != hash || doc.ID != "fig10" {
		t.Fatalf("result doc %+v (err %v), want hash %s", doc, err, hash)
	}

	// Resubmission of the identical spec reports the cache.
	code, v = postJSON(t, ts.URL+"/jobs", `{"experiment":"fig10","scale":"quick"}`)
	if code != http.StatusAccepted || v["cached"] != true {
		t.Fatalf("resubmit: %d %v, want cached true", code, v)
	}
	resubID := v["id"].(string)
	if j := waitState(t, q, resubID, 5*time.Second); !j.CacheHit {
		t.Fatalf("resubmitted job %+v, want cache hit", j)
	}

	// Health reflects the queue.
	code, data = getJSON(t, ts.URL+"/healthz")
	if code != http.StatusOK || !strings.Contains(string(data), `"ok": true`) {
		t.Fatalf("health: %d %s", code, data)
	}
	var h map[string]any
	json.Unmarshal(data, &h)
	if h["canceled"].(float64) != 2 || h["succeeded"].(float64) != 2 {
		t.Fatalf("health counts: %v", h)
	}
}

// TestServerEndToEndRealFigure exercises the full stack — HTTP, queue,
// runner, checkpointer, cache — against a real quick-scale figure.
func TestServerEndToEndRealFigure(t *testing.T) {
	ts, q := newTestServer(t, nil)
	code, v := postJSON(t, ts.URL+"/jobs", `{"experiment":"fig8","scale":"quick","parallel":2}`)
	if code != http.StatusAccepted {
		t.Fatalf("submit: %d %v", code, v)
	}
	id := v["id"].(string)
	if j := waitState(t, q, id, 60*time.Second); j.State != Succeeded {
		t.Fatalf("job = %+v", j)
	}
	code, data := getJSON(t, ts.URL+fmt.Sprintf("/jobs/%s/result", id))
	if code != http.StatusOK {
		t.Fatalf("result: %d %s", code, data)
	}
	var doc ResultDoc
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatal(err)
	}
	if doc.ID != "fig8" || !strings.Contains(doc.CSV, "series,") {
		t.Fatalf("result doc incomplete: %+v", doc)
	}
}
