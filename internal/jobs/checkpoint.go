package jobs

import (
	"encoding/json"
	"errors"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"sync"
)

// writeFileAtomic writes data to path via a temp file in the same
// directory plus a rename, so readers (and a process killed mid-write)
// only ever observe the old complete file or the new complete file.
func writeFileAtomic(path string, data []byte) error {
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	return nil
}

// Checkpointer snapshots the per-spec outcomes of a running sweep. It
// is keyed by the job's content address, so a canceled or killed job's
// partial work survives and any later job with the same spec — the
// resumed job after a restart, or a fresh submission — picks it up.
//
// Every Record rewrites the whole snapshot atomically. The files are
// small (one short encoding per completed spec) and spec completions
// are seconds apart at the scales the figures run, so the simplicity
// is worth far more than the rewrite cost; and because each snapshot
// is complete and atomic, a SIGKILL at any instant leaves a loadable
// checkpoint.
//
// Correctness never depends on the checkpoint — only resume speed
// does. An unreadable or corrupt snapshot is treated as empty and the
// job simply recomputes.
type Checkpointer struct {
	path string

	mu   sync.Mutex
	done map[int]string
}

// checkpointFile is the on-disk format: completed global spec indices
// mapped to their exact outcome encodings. Encodings are produced by
// the experiments package's spec codecs and are always UTF-8 text
// (hex floats, decimal ints, JSON), so they round-trip through JSON
// strings byte-for-byte.
type checkpointFile struct {
	Done map[string]string `json:"done"`
}

// OpenCheckpoint loads the snapshot at path, or starts empty if the
// file is missing or unreadable.
func OpenCheckpoint(path string) *Checkpointer {
	c := &Checkpointer{path: path, done: map[int]string{}}
	data, err := os.ReadFile(path)
	if err != nil {
		return c
	}
	var f checkpointFile
	if err := json.Unmarshal(data, &f); err != nil {
		return c
	}
	for k, v := range f.Done {
		idx, err := strconv.Atoi(k)
		if err != nil || idx < 0 {
			continue
		}
		c.done[idx] = v
	}
	return c
}

// Cached returns the recorded encoding of a global spec index. It has
// the signature experiments.JobHooks.Cached wants.
func (c *Checkpointer) Cached(idx int) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	enc, ok := c.done[idx]
	if !ok {
		return nil, false
	}
	return []byte(enc), true
}

// Record stores a completed spec's encoding and flushes the snapshot
// atomically. Called concurrently from sweep workers. A flush error is
// swallowed: the outcome stays recorded in memory (so the running job
// is unaffected) and only resume coverage is lost.
func (c *Checkpointer) Record(idx int, enc []byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.done[idx] = string(enc)
	c.flushLocked()
}

func (c *Checkpointer) flushLocked() {
	f := checkpointFile{Done: make(map[string]string, len(c.done))}
	for idx, enc := range c.done {
		f.Done[strconv.Itoa(idx)] = enc
	}
	data, err := json.MarshalIndent(f, "", " ")
	if err != nil {
		return
	}
	if err := os.MkdirAll(filepath.Dir(c.path), 0o755); err != nil {
		return
	}
	writeFileAtomic(c.path, append(data, '\n'))
}

// Len reports how many spec outcomes are recorded — the job's live
// progress counter.
func (c *Checkpointer) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.done)
}

// Indices returns the recorded spec indices in ascending order.
func (c *Checkpointer) Indices() []int {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]int, 0, len(c.done))
	for idx := range c.done {
		out = append(out, idx)
	}
	sort.Ints(out)
	return out
}

// Remove deletes the snapshot (after the job's result is cached the
// checkpoint is redundant).
func (c *Checkpointer) Remove() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	err := os.Remove(c.path)
	if errors.Is(err, fs.ErrNotExist) {
		return nil
	}
	return err
}
