package cluster

import (
	"math"
	"testing"
	"testing/quick"

	"ompsscluster/internal/simtime"
)

func TestNewMachine(t *testing.T) {
	m := New(4, 48, DefaultNet())
	if m.NumNodes() != 4 {
		t.Fatalf("NumNodes = %d, want 4", m.NumNodes())
	}
	if m.TotalCores() != 192 {
		t.Fatalf("TotalCores = %d, want 192", m.TotalCores())
	}
	for i := 0; i < 4; i++ {
		n := m.Node(i)
		if n.ID != i || n.Cores != 48 || n.Speed != 1.0 {
			t.Fatalf("node %d = %+v", i, n)
		}
	}
}

func TestNewMachinePanics(t *testing.T) {
	for _, tc := range []struct{ n, c int }{{0, 4}, {4, 0}, {-1, 4}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%d, %d) did not panic", tc.n, tc.c)
				}
			}()
			New(tc.n, tc.c, NetModel{})
		}()
	}
}

func TestSetSpeedAndExecTime(t *testing.T) {
	m := New(2, 8, NetModel{})
	m.SetSpeed(1, 0.5)
	w := 100 * simtime.Millisecond
	if got := m.ExecTime(0, w); got != w {
		t.Fatalf("ExecTime(fast) = %v, want %v", got, w)
	}
	if got := m.ExecTime(1, w); got != 200*simtime.Millisecond {
		t.Fatalf("ExecTime(slow) = %v, want 200ms", got)
	}
}

func TestSetSpeedPanicsOnNonPositive(t *testing.T) {
	m := New(1, 1, NetModel{})
	defer func() {
		if recover() == nil {
			t.Error("SetSpeed(0) did not panic")
		}
	}()
	m.SetSpeed(0, 0)
}

func TestTotalCapacity(t *testing.T) {
	m := New(3, 16, NetModel{})
	m.SetSpeed(0, 0.6)
	want := 16*0.6 + 16 + 16
	if got := m.TotalCapacity(); math.Abs(got-want) > 1e-9 {
		t.Fatalf("TotalCapacity = %v, want %v", got, want)
	}
}

func TestTransferTime(t *testing.T) {
	net := NetModel{
		Latency:        1000 * simtime.Nanosecond,
		BytesPerSecond: 1e9, // 1 GB/s
		LocalLatency:   100 * simtime.Nanosecond,
	}
	if got := net.TransferTime(0, 0, 1<<20); got != 100*simtime.Nanosecond {
		t.Fatalf("local transfer = %v, want 100ns", got)
	}
	// 1 MB at 1 GB/s = ~1.048576 ms plus 1 us latency.
	got := net.TransferTime(0, 1, 1<<20)
	want := 1000*simtime.Nanosecond + simtime.FromSeconds(float64(1<<20)/1e9)
	if got != want {
		t.Fatalf("remote transfer = %v, want %v", got, want)
	}
}

func TestTransferTimeInfiniteBandwidth(t *testing.T) {
	net := NetModel{Latency: 500 * simtime.Nanosecond}
	if got := net.TransferTime(0, 1, 1<<30); got != 500*simtime.Nanosecond {
		t.Fatalf("transfer with infinite bandwidth = %v, want latency only", got)
	}
}

func TestPresets(t *testing.T) {
	mn4 := MareNostrum4(32)
	if mn4.NumNodes() != 32 || mn4.Node(0).Cores != 48 {
		t.Fatal("MareNostrum4 preset wrong")
	}
	n3 := Nord3(16, 0)
	if n3.Node(0).Cores != 16 {
		t.Fatal("Nord3 cores wrong")
	}
	if math.Abs(n3.Node(0).Speed-0.6) > 1e-9 {
		t.Fatalf("slow node speed = %v, want 0.6", n3.Node(0).Speed)
	}
	if n3.Node(1).Speed != 1.0 {
		t.Fatal("non-slow node speed wrong")
	}
}

// Property: transfer time is monotone non-decreasing in message size and
// always at least the latency for remote transfers.
func TestQuickTransferMonotone(t *testing.T) {
	net := DefaultNet()
	f := func(a, b uint32) bool {
		s1, s2 := int64(a), int64(b)
		if s1 > s2 {
			s1, s2 = s2, s1
		}
		t1 := net.TransferTime(0, 1, s1)
		t2 := net.TransferTime(0, 1, s2)
		return t1 <= t2 && t1 >= net.Latency
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: ExecTime scales inversely with speed.
func TestQuickExecTimeScales(t *testing.T) {
	f := func(wRaw uint32, sRaw uint8) bool {
		w := simtime.Duration(wRaw) + 1
		speed := 0.1 + float64(sRaw)/64.0
		m := New(1, 1, NetModel{})
		m.SetSpeed(0, speed)
		got := m.ExecTime(0, w)
		want := float64(w) / speed
		return math.Abs(float64(got)-want) <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFatTreeHops(t *testing.T) {
	net := NetModel{
		Latency:    1000 * simtime.Nanosecond,
		TreeRadix:  4,
		HopLatency: 500 * simtime.Nanosecond,
	}
	// Nodes 0 and 1 share a leaf switch: 1 level = 2 hops extra.
	if got := net.TransferTime(0, 1, 0); got != 2000*simtime.Nanosecond {
		t.Fatalf("same-switch transfer = %v, want 2000ns", got)
	}
	// Nodes 0 and 5 cross one switch boundary: 2 levels.
	if got := net.TransferTime(0, 5, 0); got != 3000*simtime.Nanosecond {
		t.Fatalf("cross-switch transfer = %v, want 3000ns", got)
	}
	// Nodes 0 and 17 cross two levels... 0/4=0,17/4=4 -> 0/4=0,4/4=1 -> 0,1 -> 3 levels.
	if got := net.TransferTime(0, 17, 0); got != 4000*simtime.Nanosecond {
		t.Fatalf("far transfer = %v, want 4000ns", got)
	}
	// Distance-oblivious when TreeRadix is 0.
	flat := NetModel{Latency: 1000 * simtime.Nanosecond}
	if flat.TransferTime(0, 17, 0) != flat.TransferTime(0, 1, 0) {
		t.Fatal("flat network should be distance-oblivious")
	}
}

func TestMinRemoteLatency(t *testing.T) {
	flat := DefaultNet()
	if got := flat.MinRemoteLatency(); got != flat.Latency {
		t.Fatalf("flat MinRemoteLatency = %v, want %v", got, flat.Latency)
	}
	tree := NetModel{
		Latency:    1000 * simtime.Nanosecond,
		TreeRadix:  4,
		HopLatency: 500 * simtime.Nanosecond,
	}
	// Closest distinct nodes share a leaf switch: one level up + down.
	if got, want := tree.MinRemoteLatency(), 2000*simtime.Nanosecond; got != want {
		t.Fatalf("tree MinRemoteLatency = %v, want %v", got, want)
	}
	// Radix without hop latency (and vice versa) degrades to the flat bound.
	if got := (NetModel{Latency: 100, TreeRadix: 4}).MinRemoteLatency(); got != 100 {
		t.Fatalf("radix-only MinRemoteLatency = %v, want 100", got)
	}
	if got := (NetModel{Latency: 100, HopLatency: 50}).MinRemoteLatency(); got != 100 {
		t.Fatalf("hop-only MinRemoteLatency = %v, want 100", got)
	}
	// Zero-latency model: no lookahead at all.
	if got := (NetModel{}).MinRemoteLatency(); got != 0 {
		t.Fatalf("zero-net MinRemoteLatency = %v, want 0", got)
	}
}

// Property: MinRemoteLatency lower-bounds every remote transfer.
func TestQuickMinRemoteLatencyIsLowerBound(t *testing.T) {
	nets := []NetModel{
		DefaultNet(),
		{Latency: 700, TreeRadix: 4, HopLatency: 300},
		{Latency: 700, BytesPerSecond: 1e9, TreeRadix: 2, HopLatency: 90},
	}
	f := func(aRaw, bRaw uint8, size uint32) bool {
		a, b := int(aRaw)%64, int(bRaw)%64
		if a == b {
			return true
		}
		for _, net := range nets {
			if net.TransferTime(a, b, int64(size)) < net.MinRemoteLatency() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCloneIsolatesMutation(t *testing.T) {
	proto := New(4, 8, DefaultNet())
	c := proto.Clone()
	c.SetSpeed(1, 0.5)
	c.RemoveCores(2, 4)
	if proto.Nodes[1].Speed != 1.0 {
		t.Fatalf("clone SetSpeed leaked into prototype: %v", proto.Nodes[1].Speed)
	}
	if proto.Nodes[2].Cores != 8 {
		t.Fatalf("clone RemoveCores leaked into prototype: %d", proto.Nodes[2].Cores)
	}
	if c.Nodes[1].Speed != 0.5 || c.Nodes[2].Cores != 4 {
		t.Fatal("clone lost its own mutations")
	}
	if c.Net != proto.Net {
		t.Fatal("clone must copy the network model")
	}
}
