// Package cluster models the hardware platform: a machine made of nodes,
// each with a number of cores and a relative speed factor, connected by an
// interconnect with a latency + bandwidth cost model.
//
// Two presets mirror the paper's platforms: MareNostrum 4 (48 cores/node,
// 100 Gb/s Omni-Path) and Nord3 (16 cores/node, nodes at 3.0 GHz or a
// "slow" 1.8 GHz).
package cluster

import (
	"fmt"

	"ompsscluster/internal/simtime"
)

// Node describes one compute node.
type Node struct {
	// ID is the node index within the machine, starting at 0.
	ID int
	// Cores is the number of physical cores.
	Cores int
	// Speed is the relative execution speed (1.0 = nominal). A task with
	// nominal work w executes in w/Speed virtual time on this node.
	Speed float64
}

// NetModel is a latency + bandwidth interconnect cost model. The default
// is distance-oblivious (full fat-tree at full bisection, like
// MareNostrum 4's Omni-Path); setting TreeRadix adds per-hop latency by
// fat-tree distance, for topology-sensitivity studies (§5.2 notes the
// helper graph "could take account of specific communication latencies
// and thereby depend on the physical topology").
type NetModel struct {
	// Latency is the base one-way latency between distinct nodes.
	Latency simtime.Duration
	// BytesPerSecond is the point-to-point bandwidth between distinct
	// nodes. Zero means infinite bandwidth.
	BytesPerSecond float64
	// LocalLatency is the cost of a message between ranks on the same
	// node (shared-memory transport).
	LocalLatency simtime.Duration
	// TreeRadix, when > 0, groups nodes into switches of TreeRadix
	// leaves: messages crossing switch boundaries pay HopLatency per
	// tree level climbed (and descended).
	TreeRadix  int
	HopLatency simtime.Duration
}

// TransferTime returns the virtual time needed to move size bytes from
// node a to node b.
func (m NetModel) TransferTime(a, b int, size int64) simtime.Duration {
	if a == b {
		return m.LocalLatency
	}
	d := m.Latency
	if m.BytesPerSecond > 0 && size > 0 {
		d += simtime.FromSeconds(float64(size) / m.BytesPerSecond)
	}
	if m.TreeRadix > 1 && m.HopLatency > 0 {
		d += simtime.Duration(2*m.treeLevels(a, b)) * m.HopLatency
	}
	return d
}

// MinRemoteLatency returns the smallest possible transfer time between
// two distinct nodes: the base latency, plus — when the topology model
// is on — the per-hop cost of the closest cross-node distance (one tree
// level up and one down, since two distinct nodes are at least one level
// apart). This lower-bounds every cross-node message, so it is the
// lookahead available to a conservative parallel simulation partitioned
// by node. Collective completions are modelled per hop as Latency +
// size/bandwidth without the TreeRadix surcharge (see simmpi.hopCost),
// so the parallel engine clamps its lookahead to min(MinRemoteLatency,
// Latency); a zero result means no lookahead exists and the caller must
// fall back to sequential execution.
func (m NetModel) MinRemoteLatency() simtime.Duration {
	d := m.Latency
	if m.TreeRadix > 1 && m.HopLatency > 0 {
		d += 2 * m.HopLatency
	}
	return d
}

// treeLevels returns the number of fat-tree levels a message between a
// and b must climb: 0 within a leaf switch, 1 between adjacent switches,
// and so on up the radix-ary hierarchy.
func (m NetModel) treeLevels(a, b int) int {
	levels := 0
	for a != b {
		a /= m.TreeRadix
		b /= m.TreeRadix
		levels++
	}
	return levels
}

// Machine is a set of nodes plus an interconnect.
type Machine struct {
	Nodes []Node
	Net   NetModel
}

// New builds a homogeneous machine with n nodes of coresPerNode cores at
// speed 1.0 and the given network model.
func New(n, coresPerNode int, net NetModel) *Machine {
	if n <= 0 || coresPerNode <= 0 {
		panic(fmt.Sprintf("cluster: invalid machine %d nodes x %d cores", n, coresPerNode))
	}
	m := &Machine{Net: net, Nodes: make([]Node, n)}
	for i := range m.Nodes {
		m.Nodes[i] = Node{ID: i, Cores: coresPerNode, Speed: 1.0}
	}
	return m
}

// Clone returns a deep copy of the machine. Sweeps that mutate a run's
// machine (SetSpeed, RemoveCores) must clone a shared prototype rather
// than pass it to concurrent runs: Machine is not safe for concurrent
// mutation, and aliased Nodes slices would leak one run's faults into
// another.
func (m *Machine) Clone() *Machine {
	return &Machine{Nodes: append([]Node(nil), m.Nodes...), Net: m.Net}
}

// NumNodes returns the number of nodes.
func (m *Machine) NumNodes() int { return len(m.Nodes) }

// Node returns the node with the given id.
func (m *Machine) Node(id int) *Node { return &m.Nodes[id] }

// SetSpeed sets the relative speed of one node (for slow-node experiments).
func (m *Machine) SetSpeed(node int, speed float64) {
	if speed <= 0 {
		panic(fmt.Sprintf("cluster: non-positive speed %v for node %d", speed, node))
	}
	m.Nodes[node].Speed = speed
}

// RemoveCores permanently removes k cores from a node (fault injection:
// a partial hardware failure). At least one core always remains.
func (m *Machine) RemoveCores(node, k int) {
	if k <= 0 {
		panic(fmt.Sprintf("cluster: non-positive core removal %d on node %d", k, node))
	}
	if remaining := m.Nodes[node].Cores - k; remaining < 1 {
		panic(fmt.Sprintf("cluster: removing %d cores from node %d leaves %d", k, node, remaining))
	}
	m.Nodes[node].Cores -= k
}

// TotalCores returns the total number of physical cores in the machine.
func (m *Machine) TotalCores() int {
	total := 0
	for _, n := range m.Nodes {
		total += n.Cores
	}
	return total
}

// TotalCapacity returns the sum over nodes of cores x speed: the machine's
// aggregate processing rate in nominal core-seconds per second. It is the
// denominator of perfect-load-balance bounds.
func (m *Machine) TotalCapacity() float64 {
	total := 0.0
	for _, n := range m.Nodes {
		total += float64(n.Cores) * n.Speed
	}
	return total
}

// ExecTime returns the virtual time a task with nominal work w takes on
// the given node.
func (m *Machine) ExecTime(node int, w simtime.Duration) simtime.Duration {
	s := m.Nodes[node].Speed
	if s == 1.0 {
		return w
	}
	return simtime.Duration(float64(w) / s)
}

// DefaultNet returns an interconnect model resembling 100 Gb/s Omni-Path:
// 1.5 us one-way latency, 12.5 GB/s point-to-point bandwidth, 200 ns
// intra-node message cost.
func DefaultNet() NetModel {
	return NetModel{
		Latency:        1500 * simtime.Nanosecond,
		BytesPerSecond: 12.5e9,
		LocalLatency:   200 * simtime.Nanosecond,
	}
}

// MareNostrum4 returns an n-node machine with 48 cores per node, modelling
// the general-purpose block of MareNostrum 4.
func MareNostrum4(n int) *Machine { return New(n, 48, DefaultNet()) }

// Nord3 returns an n-node machine with 16 cores per node. If slowNodes is
// non-empty, those nodes run at 1.8/3.0 = 0.6 relative speed, mirroring
// Nord3's heterogeneous clock allocations.
func Nord3(n int, slowNodes ...int) *Machine {
	m := New(n, 16, DefaultNet())
	for _, id := range slowNodes {
		m.SetSpeed(id, 1.8/3.0)
	}
	return m
}
