// Package expander generates the bipartite biregular expander graphs of
// §5.2 of the paper: one partition is the application ranks (appranks), the
// other is the compute nodes, and an edge (a, n) means apprank a may
// execute tasks on node n. Each apprank has exactly Degree incident edges
// (the "offloading degree"), the first of which is its home node; each node
// has exactly Appranks*Degree/Nodes incident edges.
//
// Random bipartite biregular graphs are expanders with high probability;
// generation retries with local repair until the constraints hold, and
// small graphs can be validated by computing the vertex isoperimetric
// number exhaustively. Graphs are cached by a Store so each configuration
// is generated only once, as in the paper.
package expander

import (
	"fmt"
	"math/bits"
	"math/rand"
	"sort"
)

// Params selects a graph configuration.
type Params struct {
	// Appranks is the number of application ranks (left partition size).
	Appranks int
	// Nodes is the number of compute nodes (right partition size).
	// Appranks must be a multiple of Nodes.
	Nodes int
	// Degree is the offloading degree: the number of nodes (including the
	// home node) on which each apprank can execute tasks. Degree 1 means
	// no offloading.
	Degree int
	// Seed drives the random generation; the same Params always produce
	// the same graph.
	Seed int64
	// Shape selects the graph family; the zero value is ShapeExpander.
	Shape Shape
}

// Shape is a graph family. Random expanders are the paper's design; rings
// and full bipartite graphs exist for the ablation study.
type Shape int

const (
	// ShapeExpander is a random bipartite biregular graph (the default).
	ShapeExpander Shape = iota
	// ShapeRing connects each apprank to Degree consecutive nodes
	// starting at its home node.
	ShapeRing
	// ShapeFull connects each apprank to every node; Degree is forced to
	// Nodes.
	ShapeFull
)

func (s Shape) String() string {
	switch s {
	case ShapeExpander:
		return "expander"
	case ShapeRing:
		return "ring"
	case ShapeFull:
		return "full"
	}
	return fmt.Sprintf("Shape(%d)", int(s))
}

// Graph is a bipartite biregular graph between appranks and nodes.
type Graph struct {
	Appranks int
	Nodes    int
	Degree   int
	// Adj[a] lists the nodes adjacent to apprank a; Adj[a][0] is always
	// a's home node.
	Adj [][]int
}

// RanksPerNode returns the number of appranks homed on each node.
func (p Params) RanksPerNode() int { return p.Appranks / p.Nodes }

// HomeNode returns the home node of apprank a under the blocked placement
// used throughout: consecutive appranks share a node.
func (p Params) HomeNode(a int) int { return a / p.RanksPerNode() }

func (p Params) validate() error {
	if p.Appranks <= 0 || p.Nodes <= 0 {
		return fmt.Errorf("expander: non-positive partition sizes %d x %d", p.Appranks, p.Nodes)
	}
	if p.Appranks%p.Nodes != 0 {
		return fmt.Errorf("expander: %d appranks not a multiple of %d nodes", p.Appranks, p.Nodes)
	}
	if p.Shape == ShapeFull {
		return nil
	}
	if p.Degree < 1 || p.Degree > p.Nodes {
		return fmt.Errorf("expander: degree %d out of range [1, %d]", p.Degree, p.Nodes)
	}
	return nil
}

// Generate builds the graph described by p.
func Generate(p Params) (*Graph, error) {
	if err := p.validate(); err != nil {
		return nil, err
	}
	switch p.Shape {
	case ShapeRing:
		return generateRing(p), nil
	case ShapeFull:
		return generateFull(p), nil
	}
	return generateExpander(p)
}

// MustGenerate is Generate, panicking on error. Intended for experiment
// setup code with known-good parameters.
func MustGenerate(p Params) *Graph {
	g, err := Generate(p)
	if err != nil {
		panic(err)
	}
	return g
}

func generateRing(p Params) *Graph {
	g := newGraph(p)
	for a := 0; a < p.Appranks; a++ {
		home := p.HomeNode(a)
		g.Adj[a] = append(g.Adj[a], home)
		for k := 1; k < p.Degree; k++ {
			g.Adj[a] = append(g.Adj[a], (home+k)%p.Nodes)
		}
	}
	return g
}

func generateFull(p Params) *Graph {
	p.Degree = p.Nodes
	g := newGraph(p)
	for a := 0; a < p.Appranks; a++ {
		home := p.HomeNode(a)
		g.Adj[a] = append(g.Adj[a], home)
		for n := 0; n < p.Nodes; n++ {
			if n != home {
				g.Adj[a] = append(g.Adj[a], n)
			}
		}
	}
	return g
}

func newGraph(p Params) *Graph {
	return &Graph{
		Appranks: p.Appranks,
		Nodes:    p.Nodes,
		Degree:   p.Degree,
		Adj:      make([][]int, p.Appranks),
	}
}

// generateExpander builds a random bipartite biregular graph. Large graphs
// are expanders with high probability, so the first connected candidate
// from the configuration model (with local repair) is returned. Small
// graphs (<= 20 appranks), as in the paper, go through a heuristic-based
// search: candidates are scored by their exact vertex isoperimetric
// number and improved by hill-climbing edge swaps until the best
// achievable expansion for the configuration is reached.
func generateExpander(p Params) (*Graph, error) {
	if p.Degree == 1 {
		g := newGraph(p)
		for a := 0; a < p.Appranks; a++ {
			g.Adj[a] = []int{p.HomeNode(a)}
		}
		return g, nil
	}
	rng := rand.New(rand.NewSource(p.Seed ^ 0x5eed))
	const maxAttempts = 200
	small := p.Appranks <= 20 && p.Degree >= 2 && p.Degree < p.Nodes
	// Best achievable expansion: with one apprank per node a ratio
	// strictly above 1 is possible; with several appranks per node, a
	// subset holding half the appranks can reach at most all N nodes, so
	// the optimum is 1.0.
	target := 1.0
	if p.RanksPerNode() == 1 {
		target = 1.0 + 1e-9
	}
	var best *Graph
	bestScore := -1e18
	for attempt := 0; attempt < maxAttempts; attempt++ {
		g, ok := dealAndRepair(p, rng)
		if !ok {
			continue
		}
		if !small {
			if g.IsConnected() {
				return g, nil
			}
			continue
		}
		score := scoreGraph(g)
		if score >= target {
			return g, nil
		}
		if score > bestScore {
			best, bestScore = g, score
		}
		// A handful of random deals is usually enough to seed the climb.
		if attempt >= 10 {
			break
		}
	}
	if best == nil {
		return nil, fmt.Errorf("expander: failed to generate %+v after %d attempts", p, maxAttempts)
	}
	best, bestScore = hillClimb(best, bestScore, target, p, rng, 3000)
	if bestScore >= target || (bestScore >= 0 && best.IsConnected()) {
		return best, nil
	}
	return nil, fmt.Errorf("expander: no connected graph found for %+v", p)
}

// scoreGraph evaluates a candidate: its exact isoperimetric number,
// heavily penalised if disconnected.
func scoreGraph(g *Graph) float64 {
	h := g.IsoperimetricNumber()
	if !g.IsConnected() {
		return h - 100
	}
	return h
}

// hillClimb improves a small graph by random helper-edge swaps, keeping a
// swap when it does not decrease the score and stopping as soon as the
// target expansion is reached. Swapping two helper entries between
// appranks preserves biregularity by construction.
func hillClimb(g *Graph, score, target float64, p Params, rng *rand.Rand, iters int) (*Graph, float64) {
	helpers := p.Degree - 1
	if helpers == 0 {
		return g, score
	}
	validAt := func(a, pos int) bool {
		n := g.Adj[a][pos]
		if n == g.Adj[a][0] {
			return false
		}
		for i, m := range g.Adj[a] {
			if i != pos && i != 0 && m == n {
				return false
			}
		}
		return true
	}
	for it := 0; it < iters && score < target; it++ {
		a := rng.Intn(p.Appranks)
		b := rng.Intn(p.Appranks)
		if a == b {
			continue
		}
		i := 1 + rng.Intn(helpers)
		j := 1 + rng.Intn(helpers)
		g.Adj[a][i], g.Adj[b][j] = g.Adj[b][j], g.Adj[a][i]
		if !validAt(a, i) || !validAt(b, j) {
			g.Adj[a][i], g.Adj[b][j] = g.Adj[b][j], g.Adj[a][i]
			continue
		}
		if s := scoreGraph(g); s >= score {
			score = s
		} else {
			g.Adj[a][i], g.Adj[b][j] = g.Adj[b][j], g.Adj[a][i]
		}
	}
	// Restore sorted helper order for a canonical adjacency list.
	for a := 0; a < p.Appranks; a++ {
		h := g.Adj[a][1:]
		sort.Ints(h)
	}
	return g, score
}

// dealAndRepair performs one randomized construction attempt.
func dealAndRepair(p Params, rng *rand.Rand) (*Graph, bool) {
	helpers := p.Degree - 1
	perNode := p.RanksPerNode() * helpers
	slots := make([]int, 0, p.Appranks*helpers)
	for n := 0; n < p.Nodes; n++ {
		for k := 0; k < perNode; k++ {
			slots = append(slots, n)
		}
	}
	rng.Shuffle(len(slots), func(i, j int) { slots[i], slots[j] = slots[j], slots[i] })

	// assign[a] holds apprank a's helper nodes (may initially conflict).
	assign := make([][]int, p.Appranks)
	for a := 0; a < p.Appranks; a++ {
		assign[a] = slots[a*helpers : (a+1)*helpers : (a+1)*helpers]
	}
	conflict := func(a, pos int) bool {
		n := assign[a][pos]
		if n == p.HomeNode(a) {
			return true
		}
		for i, m := range assign[a] {
			if i != pos && m == n {
				return true
			}
		}
		return false
	}
	// Repair pass: swap conflicting entries with random entries elsewhere.
	const maxRepairs = 10000
	for repairs := 0; ; repairs++ {
		fixed := true
		for a := 0; a < p.Appranks && fixed; a++ {
			for pos := 0; pos < helpers; pos++ {
				if conflict(a, pos) {
					fixed = false
					break
				}
			}
		}
		if fixed {
			break
		}
		if repairs >= maxRepairs {
			return nil, false
		}
		for a := 0; a < p.Appranks; a++ {
			for pos := 0; pos < helpers; pos++ {
				if !conflict(a, pos) {
					continue
				}
				// Try random swap partners until both sides are valid.
				swapped := false
				for try := 0; try < 50 && !swapped; try++ {
					b := rng.Intn(p.Appranks)
					q := rng.Intn(helpers)
					if b == a {
						continue
					}
					assign[a][pos], assign[b][q] = assign[b][q], assign[a][pos]
					if !conflict(a, pos) && !conflict(b, q) {
						swapped = true
					} else {
						assign[a][pos], assign[b][q] = assign[b][q], assign[a][pos]
					}
				}
			}
		}
	}
	g := newGraph(p)
	for a := 0; a < p.Appranks; a++ {
		adj := make([]int, 0, p.Degree)
		adj = append(adj, p.HomeNode(a))
		helpersCopy := append([]int(nil), assign[a]...)
		sort.Ints(helpersCopy)
		adj = append(adj, helpersCopy...)
		g.Adj[a] = adj
	}
	return g, true
}

// Neighbors returns the nodes adjacent to apprank a. The first entry is
// the home node. The returned slice must not be modified.
func (g *Graph) Neighbors(a int) []int { return g.Adj[a] }

// Home returns apprank a's home node.
func (g *Graph) Home(a int) int { return g.Adj[a][0] }

// HasEdge reports whether apprank a is adjacent to node n.
func (g *Graph) HasEdge(a, n int) bool {
	for _, m := range g.Adj[a] {
		if m == n {
			return true
		}
	}
	return false
}

// NodeDegree returns the number of appranks adjacent to node n.
func (g *Graph) NodeDegree(n int) int {
	d := 0
	for a := range g.Adj {
		if g.HasEdge(a, n) {
			d++
		}
	}
	return d
}

// AppranksOn returns the appranks adjacent to node n, in increasing order.
func (g *Graph) AppranksOn(n int) []int {
	var out []int
	for a := range g.Adj {
		if g.HasEdge(a, n) {
			out = append(out, a)
		}
	}
	return out
}

// Validate checks structural invariants: per-apprank degree, per-node
// degree, home-first, and no duplicate edges.
func (g *Graph) Validate() error {
	wantNodeDeg := g.Appranks * g.Degree / g.Nodes
	for a, adj := range g.Adj {
		if len(adj) != g.Degree {
			return fmt.Errorf("expander: apprank %d has degree %d, want %d", a, len(adj), g.Degree)
		}
		seen := make(map[int]bool, len(adj))
		for _, n := range adj {
			if n < 0 || n >= g.Nodes {
				return fmt.Errorf("expander: apprank %d adjacent to invalid node %d", a, n)
			}
			if seen[n] {
				return fmt.Errorf("expander: apprank %d has duplicate edge to node %d", a, n)
			}
			seen[n] = true
		}
	}
	for n := 0; n < g.Nodes; n++ {
		if d := g.NodeDegree(n); d != wantNodeDeg {
			return fmt.Errorf("expander: node %d has degree %d, want %d (not biregular)", n, d, wantNodeDeg)
		}
	}
	return nil
}

// IsConnected reports whether the bipartite graph is connected.
func (g *Graph) IsConnected() bool {
	if g.Appranks == 0 {
		return true
	}
	seenA := make([]bool, g.Appranks)
	seenN := make([]bool, g.Nodes)
	queue := []int{0} // apprank ids; nodes encoded as id+Appranks
	seenA[0] = true
	countA, countN := 1, 0
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		if v < g.Appranks {
			for _, n := range g.Adj[v] {
				if !seenN[n] {
					seenN[n] = true
					countN++
					queue = append(queue, n+g.Appranks)
				}
			}
		} else {
			n := v - g.Appranks
			for a := 0; a < g.Appranks; a++ {
				if !seenA[a] && g.HasEdge(a, n) {
					seenA[a] = true
					countA++
					queue = append(queue, a)
				}
			}
		}
	}
	return countA == g.Appranks && countN == g.Nodes
}

// IsoperimetricNumber computes the vertex isoperimetric number
// min |N(S)|/|S| over all non-empty subsets S of appranks with
// |S| <= ceil(Appranks/2), by exhaustive enumeration with a
// subset-neighbourhood DP (O(2^Appranks) time and space). It panics above
// 20 appranks; use EstimateIsoperimetric for larger graphs.
func (g *Graph) IsoperimetricNumber() float64 {
	if g.Appranks > 20 {
		panic("expander: exhaustive isoperimetric number limited to 20 appranks")
	}
	nbRank := make([]uint64, g.Appranks)
	for a, adj := range g.Adj {
		for _, n := range adj {
			nbRank[a] |= 1 << uint(n)
		}
	}
	half := (g.Appranks + 1) / 2
	best := float64(g.Nodes)
	memo := make([]uint64, 1<<uint(g.Appranks))
	for mask := 1; mask < 1<<uint(g.Appranks); mask++ {
		low := mask & -mask
		memo[mask] = memo[mask^low] | nbRank[bits.TrailingZeros(uint(low))]
		size := bits.OnesCount(uint(mask))
		if size > half {
			continue
		}
		if ratio := float64(bits.OnesCount64(memo[mask])) / float64(size); ratio < best {
			best = ratio
		}
	}
	return best
}

// EstimateIsoperimetric estimates the isoperimetric number by sampling
// random subsets. The result is an upper bound on the true value.
func (g *Graph) EstimateIsoperimetric(samples int, seed int64) float64 {
	rng := rand.New(rand.NewSource(seed))
	half := (g.Appranks + 1) / 2
	best := float64(g.Nodes)
	for s := 0; s < samples; s++ {
		size := 1 + rng.Intn(half)
		perm := rng.Perm(g.Appranks)[:size]
		nb := make(map[int]bool)
		for _, a := range perm {
			for _, n := range g.Adj[a] {
				nb[n] = true
			}
		}
		if ratio := float64(len(nb)) / float64(size); ratio < best {
			best = ratio
		}
	}
	return best
}
