package expander

import (
	"testing"
	"testing/quick"
)

func TestSpectralGapCompleteBipartite(t *testing.T) {
	g := MustGenerate(Params{Appranks: 6, Nodes: 6, Shape: ShapeFull})
	if gap := g.SpectralGap(); gap < 0.999 {
		t.Fatalf("K_{6,6} spectral gap = %v, want ~1", gap)
	}
}

func TestSpectralGapDegreeOne(t *testing.T) {
	// Home-only graph: A Aᵀ = identity-ish, sigma2 = sigma1 = 1, gap 0.
	g := MustGenerate(Params{Appranks: 8, Nodes: 8, Degree: 1})
	if gap := g.SpectralGap(); gap > 1e-6 {
		t.Fatalf("degree-1 graph gap = %v, want 0 (disconnected)", gap)
	}
}

func TestSpectralGapRingVsExpander(t *testing.T) {
	// On large graphs at equal degree, a random expander has a larger
	// spectral gap than a ring (whose mixing is poor).
	n := 64
	ring := MustGenerate(Params{Appranks: n, Nodes: n, Degree: 3, Shape: ShapeRing})
	exp := MustGenerate(Params{Appranks: n, Nodes: n, Degree: 3, Seed: 5})
	rg, eg := ring.SpectralGap(), exp.SpectralGap()
	if eg <= 3*rg {
		t.Fatalf("expander gap %v not clearly larger than ring gap %v", eg, rg)
	}
	// A random degree-3 biregular graph should get close to the
	// Ramanujan optimum (gap ~0.057 at this degree).
	if optimum := 1 - exp.RamanujanBound(); eg < 0.5*optimum {
		t.Fatalf("random degree-3 expander gap = %v, far below the optimum %v", eg, optimum)
	}
}

func TestSpectralGapNearRamanujan(t *testing.T) {
	// Random biregular graphs concentrate near the Ramanujan bound: the
	// measured sigma2/sigma1 should be within a modest factor of it.
	g := MustGenerate(Params{Appranks: 128, Nodes: 64, Degree: 4, Seed: 9})
	gap := g.SpectralGap()
	bound := g.RamanujanBound() // normalised sigma2 at optimum
	sigma2Ratio := 1 - gap
	if sigma2Ratio > 1.5*bound {
		t.Fatalf("sigma2/sigma1 = %v, more than 1.5x the Ramanujan bound %v", sigma2Ratio, bound)
	}
}

func TestRamanujanBoundRange(t *testing.T) {
	g := MustGenerate(Params{Appranks: 16, Nodes: 16, Degree: 4, Seed: 2})
	b := g.RamanujanBound()
	if b <= 0 || b >= 1 {
		t.Fatalf("bound = %v, want in (0, 1)", b)
	}
}

// Property: the spectral gap is within [0, 1] for any generated graph.
func TestQuickSpectralGapBounds(t *testing.T) {
	f := func(dRaw uint8, seed int64) bool {
		deg := int(dRaw%4) + 1
		g, err := Generate(Params{Appranks: 12, Nodes: 12, Degree: deg, Seed: seed})
		if err != nil {
			return false
		}
		gap := g.SpectralGap()
		return gap >= 0 && gap <= 1+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
