package expander

import (
	"os"
	"testing"
	"testing/quick"
)

func TestDegreeOneIsHomeOnly(t *testing.T) {
	g, err := Generate(Params{Appranks: 8, Nodes: 4, Degree: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	for a := 0; a < 8; a++ {
		adj := g.Neighbors(a)
		if len(adj) != 1 || adj[0] != a/2 {
			t.Fatalf("apprank %d adj = %v, want home only", a, adj)
		}
	}
}

func TestGenerateBiregular(t *testing.T) {
	cases := []Params{
		{Appranks: 4, Nodes: 4, Degree: 2, Seed: 1},
		{Appranks: 8, Nodes: 8, Degree: 3, Seed: 2},
		{Appranks: 16, Nodes: 8, Degree: 4, Seed: 3},
		{Appranks: 32, Nodes: 16, Degree: 3, Seed: 4},
		{Appranks: 64, Nodes: 64, Degree: 4, Seed: 5},
		{Appranks: 128, Nodes: 64, Degree: 8, Seed: 6},
	}
	for _, p := range cases {
		g, err := Generate(p)
		if err != nil {
			t.Fatalf("%+v: %v", p, err)
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("%+v: %v", p, err)
		}
		if !g.IsConnected() {
			t.Fatalf("%+v: disconnected graph", p)
		}
		for a := 0; a < p.Appranks; a++ {
			if g.Home(a) != p.HomeNode(a) {
				t.Fatalf("%+v: apprank %d home = %d, want %d", p, a, g.Home(a), p.HomeNode(a))
			}
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	p := Params{Appranks: 16, Nodes: 16, Degree: 4, Seed: 99}
	g1 := MustGenerate(p)
	g2 := MustGenerate(p)
	for a := 0; a < p.Appranks; a++ {
		n1, n2 := g1.Neighbors(a), g2.Neighbors(a)
		for i := range n1 {
			if n1[i] != n2[i] {
				t.Fatal("same params produced different graphs")
			}
		}
	}
}

func TestGenerateDifferentSeeds(t *testing.T) {
	g1 := MustGenerate(Params{Appranks: 32, Nodes: 32, Degree: 4, Seed: 1})
	g2 := MustGenerate(Params{Appranks: 32, Nodes: 32, Degree: 4, Seed: 2})
	same := true
	for a := 0; a < 32 && same; a++ {
		n1, n2 := g1.Neighbors(a), g2.Neighbors(a)
		for i := range n1 {
			if n1[i] != n2[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("different seeds produced identical graphs (suspicious)")
	}
}

func TestRingShape(t *testing.T) {
	g := MustGenerate(Params{Appranks: 8, Nodes: 8, Degree: 3, Shape: ShapeRing})
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	adj := g.Neighbors(2)
	want := []int{2, 3, 4}
	for i := range want {
		if adj[i] != want[i] {
			t.Fatalf("ring adj(2) = %v, want %v", adj, want)
		}
	}
	adj = g.Neighbors(7)
	want = []int{7, 0, 1}
	for i := range want {
		if adj[i] != want[i] {
			t.Fatalf("ring adj(7) = %v, want %v (wraparound)", adj, want)
		}
	}
}

func TestFullShape(t *testing.T) {
	g := MustGenerate(Params{Appranks: 6, Nodes: 3, Shape: ShapeFull})
	if g.Degree != 3 {
		t.Fatalf("full graph degree = %d, want 3", g.Degree)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	for a := 0; a < 6; a++ {
		for n := 0; n < 3; n++ {
			if !g.HasEdge(a, n) {
				t.Fatalf("full graph missing edge %d-%d", a, n)
			}
		}
	}
}

func TestInvalidParams(t *testing.T) {
	bad := []Params{
		{Appranks: 0, Nodes: 4, Degree: 2},
		{Appranks: 5, Nodes: 4, Degree: 2},  // not a multiple
		{Appranks: 8, Nodes: 4, Degree: 5},  // degree > nodes
		{Appranks: 8, Nodes: 4, Degree: 0},  // degree < 1
		{Appranks: -4, Nodes: 4, Degree: 2}, // negative
	}
	for _, p := range bad {
		if _, err := Generate(p); err == nil {
			t.Errorf("Generate(%+v) did not fail", p)
		}
	}
}

func TestIsoperimetricFullGraph(t *testing.T) {
	// Full bipartite 4x4: any subset of size k<=2 has all 4 neighbors.
	g := MustGenerate(Params{Appranks: 4, Nodes: 4, Shape: ShapeFull})
	if h := g.IsoperimetricNumber(); h != 2.0 {
		t.Fatalf("isoperimetric number of K4,4 = %v, want 2.0 (4 nodes / subset of 2)", h)
	}
}

func TestIsoperimetricDegreeOne(t *testing.T) {
	// Degree-1 graph on one rank per node: |N(S)| = |S| exactly.
	g := MustGenerate(Params{Appranks: 6, Nodes: 6, Degree: 1})
	if h := g.IsoperimetricNumber(); h != 1.0 {
		t.Fatalf("isoperimetric number = %v, want 1.0", h)
	}
}

func TestGeneratedExpanderExpands(t *testing.T) {
	// A generated graph on 8 appranks/8 nodes with degree 3 should have
	// expansion strictly above 1 (it is checked during generation).
	g := MustGenerate(Params{Appranks: 8, Nodes: 8, Degree: 3, Seed: 7})
	if h := g.IsoperimetricNumber(); h <= 1.0 {
		t.Fatalf("isoperimetric number = %v, want > 1.0", h)
	}
}

func TestEstimateIsoperimetricUpperBounds(t *testing.T) {
	g := MustGenerate(Params{Appranks: 12, Nodes: 12, Degree: 3, Seed: 8})
	exact := g.IsoperimetricNumber()
	est := g.EstimateIsoperimetric(2000, 1)
	if est < exact-1e-9 {
		t.Fatalf("estimate %v below exact %v (must be an upper bound)", est, exact)
	}
}

func TestAppranksOn(t *testing.T) {
	g := MustGenerate(Params{Appranks: 8, Nodes: 4, Degree: 2, Seed: 11})
	for n := 0; n < 4; n++ {
		on := g.AppranksOn(n)
		if len(on) != g.Appranks*g.Degree/g.Nodes {
			t.Fatalf("node %d has %d appranks, want %d", n, len(on), 4)
		}
		for _, a := range on {
			if !g.HasEdge(a, n) {
				t.Fatalf("AppranksOn(%d) includes non-adjacent apprank %d", n, a)
			}
		}
	}
}

func TestStoreCachesInMemory(t *testing.T) {
	s := NewStore("")
	p := Params{Appranks: 8, Nodes: 8, Degree: 2, Seed: 5}
	g1, err := s.Get(p)
	if err != nil {
		t.Fatal(err)
	}
	g2, err := s.Get(p)
	if err != nil {
		t.Fatal(err)
	}
	if g1 != g2 {
		t.Fatal("store did not return the cached instance")
	}
}

func TestStorePersistsToDisk(t *testing.T) {
	dir := t.TempDir()
	p := Params{Appranks: 8, Nodes: 8, Degree: 3, Seed: 6}
	s1 := NewStore(dir)
	g1, err := s1.Get(p)
	if err != nil {
		t.Fatal(err)
	}
	// A fresh store over the same dir must load, not regenerate.
	s2 := NewStore(dir)
	g2, err := s2.Get(p)
	if err != nil {
		t.Fatal(err)
	}
	for a := 0; a < p.Appranks; a++ {
		n1, n2 := g1.Neighbors(a), g2.Neighbors(a)
		for i := range n1 {
			if n1[i] != n2[i] {
				t.Fatal("graph loaded from disk differs from the saved one")
			}
		}
	}
	if err := g2.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestStoreDistinguishesParams(t *testing.T) {
	s := NewStore("")
	g1, _ := s.Get(Params{Appranks: 8, Nodes: 8, Degree: 2, Seed: 5})
	g2, _ := s.Get(Params{Appranks: 8, Nodes: 8, Degree: 3, Seed: 5})
	if g1 == g2 || g1.Degree == g2.Degree {
		t.Fatal("store conflated distinct params")
	}
}

// Property: for any valid (ranksPerNode, nodes, degree) in a bounded
// range, generation succeeds and yields a validated, connected, biregular
// graph with home-first adjacency.
func TestQuickGenerateValid(t *testing.T) {
	f := func(rpnRaw, nRaw, dRaw uint8, seed int64) bool {
		rpn := int(rpnRaw%2) + 1  // 1..2 ranks per node
		nodes := int(nRaw%15) + 2 // 2..16 nodes
		deg := int(dRaw)%nodes + 1
		p := Params{Appranks: rpn * nodes, Nodes: nodes, Degree: deg, Seed: seed}
		g, err := Generate(p)
		if err != nil {
			// Generation may legitimately fail only if the search gives
			// up; treat failure on valid params as a bug.
			t.Logf("Generate(%+v) failed: %v", p, err)
			return false
		}
		if deg == 1 {
			// Home-only graphs have no offload edges and are naturally
			// disconnected across nodes.
			return g.Validate() == nil
		}
		return g.Validate() == nil && g.IsConnected()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: the isoperimetric number is within (0, Nodes] and equals at
// most the degree (a single apprank has exactly Degree neighbours).
func TestQuickIsoperimetricBounds(t *testing.T) {
	f := func(dRaw uint8, seed int64) bool {
		deg := int(dRaw%4) + 1
		p := Params{Appranks: 8, Nodes: 8, Degree: deg, Seed: seed}
		g, err := Generate(p)
		if err != nil {
			return false
		}
		h := g.IsoperimetricNumber()
		return h > 0 && h <= float64(deg)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestStoreRecoversFromCorruptFile(t *testing.T) {
	dir := t.TempDir()
	p := Params{Appranks: 4, Nodes: 4, Degree: 2, Seed: 9}
	s1 := NewStore(dir)
	if _, err := s1.Get(p); err != nil {
		t.Fatal(err)
	}
	// Corrupt the cached file; a fresh store must regenerate, not fail.
	path := s1.path(key(p))
	if err := os.WriteFile(path, []byte("{broken"), 0o644); err != nil {
		t.Fatal(err)
	}
	s2 := NewStore(dir)
	g, err := s2.Get(p)
	if err != nil {
		t.Fatalf("corrupt cache not recovered: %v", err)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}
