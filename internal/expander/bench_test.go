package expander

import "testing"

// BenchmarkGenerateLarge measures configuration-model generation at the
// paper's largest size.
func BenchmarkGenerateLarge(b *testing.B) {
	for i := 0; i < b.N; i++ {
		g, err := Generate(Params{Appranks: 128, Nodes: 64, Degree: 4, Seed: int64(i)})
		if err != nil {
			b.Fatal(err)
		}
		_ = g
	}
}

// BenchmarkIsoperimetric measures the exhaustive DP on a 16-apprank graph.
func BenchmarkIsoperimetric(b *testing.B) {
	g := MustGenerate(Params{Appranks: 16, Nodes: 16, Degree: 4, Seed: 1})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.IsoperimetricNumber()
	}
}

// BenchmarkSpectralGap measures deflated power iteration at 128 appranks.
func BenchmarkSpectralGap(b *testing.B) {
	g := MustGenerate(Params{Appranks: 128, Nodes: 64, Degree: 4, Seed: 1})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.SpectralGap()
	}
}
