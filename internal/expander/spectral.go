package expander

import "math"

// SpectralGap estimates the normalised spectral gap 1 - sigma2/sigma1 of
// the bipartite adjacency matrix, where sigma1 = sqrt(Degree *
// NodeDegree) is the trivial top singular value of a biregular graph and
// sigma2 is the second singular value, computed by power iteration on
// A·Aᵀ with the known uniform principal vector deflated.
//
// Random bipartite biregular graphs have sigma2 close to the Ramanujan
// bound sqrt(d1-1)+sqrt(d2-1) with high probability (Brito, Dumitriu,
// Harris 2018 — the paper's citation [17]), which is what makes them good
// expanders. A gap near zero indicates a disconnected or nearly
// disconnected graph; K_{n,n} has gap exactly 1.
func (g *Graph) SpectralGap() float64 {
	nA := g.Appranks
	if nA == 0 || g.Degree == 0 {
		return 0
	}
	dL := float64(g.Degree)
	dR := float64(g.Appranks*g.Degree) / float64(g.Nodes)
	sigma1 := math.Sqrt(dL * dR)

	// Power iteration on M = A Aᵀ (appranks x appranks), deflating the
	// all-ones vector (the principal eigenvector of a biregular graph).
	x := make([]float64, nA)
	for i := range x {
		// Deterministic non-uniform start.
		x[i] = float64((i*2654435761)%1000)/1000.0 - 0.5
	}
	deflate(x)
	normalize(x)
	y := make([]float64, g.Nodes)
	z := make([]float64, nA)
	lambda := 0.0
	for iter := 0; iter < 200; iter++ {
		// y = Aᵀ x ; z = A y.
		for j := range y {
			y[j] = 0
		}
		for a := 0; a < nA; a++ {
			for _, n := range g.Adj[a] {
				y[n] += x[a]
			}
		}
		for a := 0; a < nA; a++ {
			s := 0.0
			for _, n := range g.Adj[a] {
				s += y[n]
			}
			z[a] = s
		}
		deflate(z)
		l := norm(z)
		if l == 0 {
			return 1 // A Aᵀ restricted to 1-perp vanishes: complete bipartite
		}
		for i := range z {
			x[i] = z[i] / l
		}
		if math.Abs(l-lambda) < 1e-12*math.Max(1, l) {
			lambda = l
			break
		}
		lambda = l
	}
	sigma2 := math.Sqrt(lambda)
	gap := 1 - sigma2/sigma1
	if gap < 0 {
		gap = 0
	}
	return gap
}

// deflate removes the component along the all-ones vector.
func deflate(x []float64) {
	mean := 0.0
	for _, v := range x {
		mean += v
	}
	mean /= float64(len(x))
	for i := range x {
		x[i] -= mean
	}
}

func norm(x []float64) float64 {
	s := 0.0
	for _, v := range x {
		s += v * v
	}
	return math.Sqrt(s)
}

func normalize(x []float64) {
	n := norm(x)
	if n == 0 {
		return
	}
	for i := range x {
		x[i] /= n
	}
}

// RamanujanBound returns the second-singular-value bound
// sqrt(d1-1)+sqrt(d2-1) that near-optimal (Ramanujan) bipartite biregular
// graphs achieve, normalised by sigma1 so it can be compared against
// 1 - SpectralGap().
func (g *Graph) RamanujanBound() float64 {
	dL := float64(g.Degree)
	dR := float64(g.Appranks*g.Degree) / float64(g.Nodes)
	if dL <= 1 || dR <= 1 {
		return 1
	}
	return (math.Sqrt(dL-1) + math.Sqrt(dR-1)) / math.Sqrt(dL*dR)
}
