package expander

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"
)

// Store caches generated graphs, in memory and optionally on disk, so that
// each configuration is generated only once (as the paper does: "each
// graph is stored for future executions"). A Store is safe for concurrent
// use: parallel sweeps share one store so runs of the same layout share
// one graph. The returned graphs are read-only by convention — the
// runtime never mutates an expander graph after construction.
type Store struct {
	mu  sync.Mutex
	dir string // empty means memory-only
	mem map[string]*Graph
}

// NewStore returns a store backed by dir. If dir is empty the store is
// memory-only.
func NewStore(dir string) *Store {
	return &Store{dir: dir, mem: make(map[string]*Graph)}
}

func key(p Params) string {
	return fmt.Sprintf("a%d_n%d_d%d_s%d_%s", p.Appranks, p.Nodes, p.Degree, p.Seed, p.Shape)
}

// Get returns the graph for p, generating and caching it on first use.
func (s *Store) Get(p Params) (*Graph, error) {
	k := key(p)
	s.mu.Lock()
	defer s.mu.Unlock()
	if g, ok := s.mem[k]; ok {
		return g, nil
	}
	if s.dir != "" {
		if g, err := s.load(k); err == nil {
			if err := g.Validate(); err == nil {
				s.mem[k] = g
				return g, nil
			}
		}
	}
	g, err := Generate(p)
	if err != nil {
		return nil, err
	}
	s.mem[k] = g
	if s.dir != "" {
		if err := s.save(k, g); err != nil {
			return nil, fmt.Errorf("expander: saving graph: %w", err)
		}
	}
	return g, nil
}

func (s *Store) path(k string) string {
	return filepath.Join(s.dir, k+".json")
}

func (s *Store) load(k string) (*Graph, error) {
	data, err := os.ReadFile(s.path(k))
	if err != nil {
		return nil, err
	}
	var g Graph
	if err := json.Unmarshal(data, &g); err != nil {
		return nil, err
	}
	return &g, nil
}

func (s *Store) save(k string, g *Graph) error {
	if err := os.MkdirAll(s.dir, 0o755); err != nil {
		return err
	}
	data, err := json.MarshalIndent(g, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(s.path(k), data, 0o644)
}
