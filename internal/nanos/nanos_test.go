package nanos

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// harness collects readiness notifications.
type harness struct {
	g     *TaskGraph
	ready []*Task
}

func newHarness() *harness {
	h := &harness{}
	h.g = NewTaskGraph(func(t *Task) { h.ready = append(h.ready, t) })
	return h
}

// popReady removes and returns the first ready task, or nil.
func (h *harness) popReady() *Task {
	if len(h.ready) == 0 {
		return nil
	}
	t := h.ready[0]
	h.ready = h.ready[1:]
	return t
}

// run executes t to completion on node 0.
func (h *harness) run(t *Task) {
	h.g.MarkRunning(t, 0)
	h.g.Complete(t)
}

func region(s, e uint64) Region { return Region{Start: s, End: e} }

func TestIndependentTasksReadyImmediately(t *testing.T) {
	h := newHarness()
	for i := 0; i < 5; i++ {
		h.g.Submit(&Task{Label: "t", Accesses: []Access{
			{Region: region(uint64(i*100), uint64(i*100+50)), Mode: InOut},
		}})
	}
	if len(h.ready) != 5 {
		t.Fatalf("%d tasks ready, want 5 (disjoint regions are independent)", len(h.ready))
	}
}

func TestReadAfterWrite(t *testing.T) {
	h := newHarness()
	w := &Task{Label: "writer", Accesses: []Access{{region(0, 100), Out}}}
	r := &Task{Label: "reader", Accesses: []Access{{region(0, 100), In}}}
	h.g.Submit(w)
	h.g.Submit(r)
	if len(h.ready) != 1 || h.ready[0] != w {
		t.Fatalf("ready = %v, want writer only", h.ready)
	}
	if r.NumDeps() != 1 {
		t.Fatalf("reader deps = %d, want 1", r.NumDeps())
	}
	h.ready = nil
	h.run(w)
	if len(h.ready) != 1 || h.ready[0] != r {
		t.Fatal("reader not released by writer completion")
	}
}

func TestWriteAfterRead(t *testing.T) {
	h := newHarness()
	w1 := &Task{Label: "w1", Accesses: []Access{{region(0, 10), Out}}}
	r1 := &Task{Label: "r1", Accesses: []Access{{region(0, 10), In}}}
	r2 := &Task{Label: "r2", Accesses: []Access{{region(0, 10), In}}}
	w2 := &Task{Label: "w2", Accesses: []Access{{region(0, 10), Out}}}
	h.g.Submit(w1)
	h.g.Submit(r1)
	h.g.Submit(r2)
	h.g.Submit(w2)
	// w2 must wait for both readers plus a direct WAW edge on w1.
	if w2.NumDeps() != 3 {
		t.Fatalf("w2 deps = %d, want 3 (two readers + first writer)", w2.NumDeps())
	}
	h.ready = nil
	h.run(w1)
	// Both readers become ready; w2 still blocked.
	if len(h.ready) != 2 {
		t.Fatalf("%d ready after w1, want 2 readers", len(h.ready))
	}
	if w2.State() != Created {
		t.Fatal("w2 ran before readers finished")
	}
	h.ready = nil
	h.run(r1)
	if len(h.ready) != 0 {
		t.Fatal("w2 released after only one reader")
	}
	h.run(r2)
	if len(h.ready) != 1 || h.ready[0] != w2 {
		t.Fatal("w2 not released after both readers")
	}
}

func TestConcurrentReadersShareRegion(t *testing.T) {
	h := newHarness()
	for i := 0; i < 4; i++ {
		h.g.Submit(&Task{Label: "r", Accesses: []Access{{region(0, 1000), In}}})
	}
	if len(h.ready) != 4 {
		t.Fatalf("%d ready, want 4 (readers do not conflict)", len(h.ready))
	}
}

func TestInOutChainSerializes(t *testing.T) {
	h := newHarness()
	var tasks []*Task
	for i := 0; i < 5; i++ {
		tk := &Task{Label: "acc", Accesses: []Access{{region(0, 8), InOut}}}
		tasks = append(tasks, tk)
		h.g.Submit(tk)
	}
	// Only the first is ready; completing each releases exactly the next.
	for i := 0; i < 5; i++ {
		if len(h.ready) != 1 || h.ready[0] != tasks[i] {
			t.Fatalf("step %d: ready = %v", i, h.ready)
		}
		tk := h.popReady()
		h.run(tk)
	}
}

func TestPartialOverlapDependency(t *testing.T) {
	h := newHarness()
	w := &Task{Label: "w", Accesses: []Access{{region(0, 100), Out}}}
	r := &Task{Label: "r", Accesses: []Access{{region(50, 150), In}}}
	h.g.Submit(w)
	h.g.Submit(r)
	if r.NumDeps() != 1 {
		t.Fatalf("partial overlap produced %d deps, want 1", r.NumDeps())
	}
}

func TestAdjacentRegionsIndependent(t *testing.T) {
	h := newHarness()
	a := &Task{Label: "a", Accesses: []Access{{region(0, 100), Out}}}
	b := &Task{Label: "b", Accesses: []Access{{region(100, 200), Out}}}
	h.g.Submit(a)
	h.g.Submit(b)
	if len(h.ready) != 2 {
		t.Fatal("adjacent (non-overlapping) regions must not conflict")
	}
}

func TestMultipleDistinctPredecessors(t *testing.T) {
	h := newHarness()
	w1 := &Task{Label: "w1", Accesses: []Access{{region(0, 10), Out}}}
	w2 := &Task{Label: "w2", Accesses: []Access{{region(10, 20), Out}}}
	r := &Task{Label: "r", Accesses: []Access{{region(0, 20), In}}}
	h.g.Submit(w1)
	h.g.Submit(w2)
	h.g.Submit(r)
	if r.NumDeps() != 2 {
		t.Fatalf("r deps = %d, want 2", r.NumDeps())
	}
}

func TestDedupSinglePredecessor(t *testing.T) {
	h := newHarness()
	w := &Task{Label: "w", Accesses: []Access{{region(0, 10), Out}, {region(20, 30), Out}}}
	r := &Task{Label: "r", Accesses: []Access{{region(0, 10), In}, {region(20, 30), In}}}
	h.g.Submit(w)
	h.g.Submit(r)
	if r.NumDeps() != 1 {
		t.Fatalf("r deps = %d, want 1 (same predecessor via two regions)", r.NumDeps())
	}
}

func TestEmptyAccessIgnored(t *testing.T) {
	h := newHarness()
	h.g.Submit(&Task{Label: "w", Accesses: []Access{{region(0, 100), Out}}})
	r := &Task{Label: "r", Accesses: []Access{{region(50, 50), In}}}
	h.g.Submit(r)
	if r.NumDeps() != 0 {
		t.Fatal("zero-length access created a dependency")
	}
}

func TestInvertedRegionPanics(t *testing.T) {
	h := newHarness()
	defer func() {
		if recover() == nil {
			t.Error("inverted region did not panic")
		}
	}()
	h.g.Submit(&Task{Accesses: []Access{{Region{100, 50}, In}}})
}

func TestResubmitPanics(t *testing.T) {
	h := newHarness()
	tk := &Task{Label: "t"}
	h.g.Submit(tk)
	defer func() {
		if recover() == nil {
			t.Error("resubmit did not panic")
		}
	}()
	h.g.Submit(tk)
}

func TestQuiescence(t *testing.T) {
	h := newHarness()
	fired := 0
	h.g.OnQuiescent(func() { fired++ })
	if fired != 1 {
		t.Fatal("quiescence on empty graph must fire immediately")
	}
	t1 := &Task{Label: "t1"}
	t2 := &Task{Label: "t2"}
	h.g.Submit(t1)
	h.g.Submit(t2)
	h.g.OnQuiescent(func() { fired++ })
	h.run(t1)
	if fired != 1 {
		t.Fatal("quiescence fired with a task outstanding")
	}
	h.run(t2)
	if fired != 2 {
		t.Fatal("quiescence did not fire when the graph drained")
	}
}

func TestStats(t *testing.T) {
	h := newHarness()
	t1 := &Task{Label: "t1"}
	h.g.Submit(t1)
	sub, comp, out := h.g.Stats()
	if sub != 1 || comp != 0 || out != 1 {
		t.Fatalf("stats = %d/%d/%d", sub, comp, out)
	}
	h.run(t1)
	sub, comp, out = h.g.Stats()
	if sub != 1 || comp != 1 || out != 0 {
		t.Fatalf("stats = %d/%d/%d", sub, comp, out)
	}
}

func TestDataLocation(t *testing.T) {
	h := newHarness()
	w := &Task{Label: "w", Accesses: []Access{{region(0, 100), Out}}}
	h.g.Submit(w)
	h.g.MarkRunning(w, 3)
	h.g.Complete(w)
	// A reader of [0,150): 100 bytes on node 3, 50 unknown.
	loc := h.g.DataLocation([]Access{{region(0, 150), In}})
	if loc[3] != 100 || loc[-1] != 50 {
		t.Fatalf("loc = %v, want 100 on node 3 and 50 unknown", loc)
	}
	// Out accesses do not contribute.
	loc = h.g.DataLocation([]Access{{region(0, 150), Out}})
	if len(loc) != 0 {
		t.Fatalf("Out access produced location %v", loc)
	}
}

func TestDataLocationUnstartedWriter(t *testing.T) {
	h := newHarness()
	w := &Task{Label: "w", Accesses: []Access{{region(0, 64), Out}}}
	h.g.Submit(w)
	loc := h.g.DataLocation([]Access{{region(0, 64), In}})
	if loc[-1] != 64 {
		t.Fatalf("loc = %v, want all 64 bytes unknown (writer not started)", loc)
	}
}

func TestWritersQuery(t *testing.T) {
	h := newHarness()
	w1 := &Task{Label: "w1", Accesses: []Access{{region(0, 50), Out}}}
	w2 := &Task{Label: "w2", Accesses: []Access{{region(50, 100), Out}}}
	h.g.Submit(w1)
	h.g.Submit(w2)
	ws := h.g.Writers(region(0, 100))
	if len(ws) != 2 {
		t.Fatalf("writers = %d, want 2", len(ws))
	}
}

func TestRegistryScrubReleasesCompleted(t *testing.T) {
	h := newHarness()
	// Repeatedly rewrite the same region; intervals must not accumulate
	// and live pointers must be scrubbed.
	for i := 0; i < 100; i++ {
		tk := &Task{Label: "w", Accesses: []Access{{region(0, 64), InOut}}}
		h.g.Submit(tk)
		tk2 := h.popReady()
		if tk2 != tk {
			t.Fatal("chain broken")
		}
		h.run(tk)
	}
	if n := h.g.reg.numIntervals(); n > 2 {
		t.Fatalf("registry holds %d intervals after 100 rewrites, want <= 2", n)
	}
}

func TestSplitAndMergeBehaviour(t *testing.T) {
	h := newHarness()
	// Writer covers [0,100); two readers split it.
	w := &Task{Label: "w", Accesses: []Access{{region(0, 100), Out}}}
	h.g.Submit(w)
	r1 := &Task{Label: "r1", Accesses: []Access{{region(0, 30), In}}}
	r2 := &Task{Label: "r2", Accesses: []Access{{region(30, 100), In}}}
	h.g.Submit(r1)
	h.g.Submit(r2)
	// A writer over [20,40) must depend on w (RAW-ordering via intervals),
	// and on r1 and r2 (WAR).
	w2 := &Task{Label: "w2", Accesses: []Access{{region(20, 40), Out}}}
	h.g.Submit(w2)
	if w2.NumDeps() != 3 {
		t.Fatalf("w2 deps = %d, want 3 (w, r1, r2)", w2.NumDeps())
	}
}

// TestQuickSerializability generates random task sets with random accesses
// over a small address space, executes them in notification order, and
// verifies that the execution order is a valid serialization: for every
// pair of tasks with conflicting accesses (overlap, at least one writer),
// their execution order matches submission order.
func TestQuickSerializability(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 5 + rng.Intn(20)
		type spec struct {
			accs []Access
		}
		specs := make([]spec, n)
		for i := range specs {
			na := 1 + rng.Intn(3)
			for k := 0; k < na; k++ {
				s := uint64(rng.Intn(90))
				e := s + uint64(rng.Intn(30)+1)
				specs[i].accs = append(specs[i].accs, Access{
					Region: region(s, e),
					Mode:   AccessMode(rng.Intn(4)),
				})
			}
		}
		var execOrder []int64
		var readyQ []*Task
		g := NewTaskGraph(func(tk *Task) { readyQ = append(readyQ, tk) })
		tasks := make([]*Task, n)
		for i := range tasks {
			tasks[i] = &Task{Label: "q", Accesses: specs[i].accs}
			g.Submit(tasks[i])
		}
		// Execute in random ready order.
		for len(readyQ) > 0 {
			i := rng.Intn(len(readyQ))
			tk := readyQ[i]
			readyQ = append(readyQ[:i], readyQ[i+1:]...)
			g.MarkRunning(tk, 0)
			execOrder = append(execOrder, tk.ID)
			g.Complete(tk)
		}
		if len(execOrder) != n {
			return false // deadlock: not every task ran
		}
		pos := make(map[int64]int, n)
		for i, id := range execOrder {
			pos[id] = i
		}
		conflicts := func(a, b *Task) bool {
			for _, x := range a.Accesses {
				for _, y := range b.Accesses {
					if !x.Region.Overlaps(y.Region) {
						continue
					}
					// Readers don't conflict with readers; concurrent
					// accesses don't conflict with each other.
					if x.Mode == In && y.Mode == In {
						continue
					}
					if x.Mode == Concurrent && y.Mode == Concurrent {
						continue
					}
					return true
				}
			}
			return false
		}
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if conflicts(tasks[i], tasks[j]) && pos[tasks[i].ID] > pos[tasks[j].ID] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickQuiescenceAlwaysFires: any random DAG drains and fires
// quiescence exactly once.
func TestQuickQuiescenceAlwaysFires(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		fired := 0
		var readyQ []*Task
		g := NewTaskGraph(func(tk *Task) { readyQ = append(readyQ, tk) })
		n := 1 + rng.Intn(15)
		for i := 0; i < n; i++ {
			s := uint64(rng.Intn(50))
			g.Submit(&Task{Accesses: []Access{{region(s, s+10), AccessMode(rng.Intn(3))}}})
		}
		g.OnQuiescent(func() { fired++ })
		for len(readyQ) > 0 {
			tk := readyQ[0]
			readyQ = readyQ[1:]
			g.MarkRunning(tk, 0)
			g.Complete(tk)
		}
		return fired == 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentGroupRunsTogether(t *testing.T) {
	h := newHarness()
	w := &Task{Label: "init", Accesses: []Access{{region(0, 100), Out}}}
	h.g.Submit(w)
	var cs []*Task
	for i := 0; i < 4; i++ {
		c := &Task{Label: "acc", Accesses: []Access{{region(0, 100), Concurrent}}}
		cs = append(cs, c)
		h.g.Submit(c)
	}
	// All concurrent tasks depend only on the writer.
	for i, c := range cs {
		if c.NumDeps() != 1 {
			t.Fatalf("concurrent %d deps = %d, want 1 (the writer)", i, c.NumDeps())
		}
	}
	h.ready = nil
	h.run(w)
	if len(h.ready) != 4 {
		t.Fatalf("%d concurrent tasks released, want all 4", len(h.ready))
	}
}

func TestReaderAfterConcurrentWaitsForGroup(t *testing.T) {
	h := newHarness()
	c1 := &Task{Label: "c1", Accesses: []Access{{region(0, 10), Concurrent}}}
	c2 := &Task{Label: "c2", Accesses: []Access{{region(0, 10), Concurrent}}}
	r := &Task{Label: "r", Accesses: []Access{{region(0, 10), In}}}
	h.g.Submit(c1)
	h.g.Submit(c2)
	h.g.Submit(r)
	if r.NumDeps() != 2 {
		t.Fatalf("reader deps = %d, want 2 (both concurrents)", r.NumDeps())
	}
	h.ready = nil
	h.run(c1)
	if len(h.ready) != 0 {
		t.Fatal("reader released before the whole concurrent group finished")
	}
	h.run(c2)
	if len(h.ready) != 1 || h.ready[0] != r {
		t.Fatal("reader not released after the group")
	}
}

func TestWriterAfterConcurrentWaitsForGroup(t *testing.T) {
	h := newHarness()
	for i := 0; i < 3; i++ {
		h.g.Submit(&Task{Label: "c", Accesses: []Access{{region(0, 10), Concurrent}}})
	}
	w := &Task{Label: "w", Accesses: []Access{{region(0, 10), Out}}}
	h.g.Submit(w)
	if w.NumDeps() != 3 {
		t.Fatalf("writer deps = %d, want 3", w.NumDeps())
	}
}

func TestConcurrentAfterReaders(t *testing.T) {
	h := newHarness()
	r1 := &Task{Label: "r1", Accesses: []Access{{region(0, 10), In}}}
	h.g.Submit(r1)
	c := &Task{Label: "c", Accesses: []Access{{region(0, 10), Concurrent}}}
	h.g.Submit(c)
	if c.NumDeps() != 1 {
		t.Fatalf("concurrent deps = %d, want 1 (the reader, WAR)", c.NumDeps())
	}
}
