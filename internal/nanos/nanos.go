// Package nanos implements the task-graph core of a Nanos6-like runtime:
// tasks with region-based data accesses (in/out/inout over address
// ranges), dependency computation in program order, readiness
// notification, and taskwait quiescence.
//
// The package is deliberately independent of time, cores, and nodes: it is
// the per-apprank dependency engine. The distributed runtime in
// internal/core drives it and reacts to its callbacks.
//
// Dependency semantics follow OmpSs-2: task accesses are declared as byte
// ranges; a task reading a range depends on the last writer of any
// overlapping range; a task writing a range depends on the last writer and
// all readers since that write. Task order is inherited from submission
// (sequential program) order.
package nanos

import (
	"fmt"

	"ompsscluster/internal/obs"
	"ompsscluster/internal/simtime"
)

// AccessMode describes how a task uses a region.
type AccessMode int

// Access modes.
const (
	In AccessMode = iota
	Out
	InOut
	// Concurrent is OmpSs-2's concurrent clause: tasks accessing the
	// region concurrently may run in parallel with each other (typically
	// reductions into a shared buffer) but are ordered against readers
	// and writers on both sides.
	Concurrent
)

func (m AccessMode) String() string {
	switch m {
	case In:
		return "in"
	case Out:
		return "out"
	case InOut:
		return "inout"
	case Concurrent:
		return "concurrent"
	}
	return fmt.Sprintf("AccessMode(%d)", int(m))
}

// Region is a half-open byte range [Start, End) in the apprank's virtual
// address space.
type Region struct {
	Start, End uint64
}

// Size returns the region length in bytes.
func (r Region) Size() int64 { return int64(r.End - r.Start) }

// Overlaps reports whether two regions intersect.
func (r Region) Overlaps(o Region) bool { return r.Start < o.End && o.Start < r.End }

func (r Region) String() string { return fmt.Sprintf("[%#x,%#x)", r.Start, r.End) }

// Access is one declared task data access.
type Access struct {
	Region Region
	Mode   AccessMode
}

// TaskState is the lifecycle state of a task.
type TaskState int

// Task lifecycle states.
const (
	// Created: submitted, waiting for dependencies.
	Created TaskState = iota
	// Ready: all dependencies satisfied, not yet running.
	Ready
	// Running: executing on some worker.
	Running
	// Completed: finished; successors may run.
	Completed
)

func (s TaskState) String() string {
	switch s {
	case Created:
		return "created"
	case Ready:
		return "ready"
	case Running:
		return "running"
	case Completed:
		return "completed"
	}
	return fmt.Sprintf("TaskState(%d)", int(s))
}

// Task is a unit of work with declared data accesses.
type Task struct {
	// ID is unique within the TaskGraph, in submission order.
	ID int64
	// Label names the task kind for traces and debugging.
	Label string
	// Work is the nominal compute work (execution time at speed 1.0).
	Work simtime.Duration
	// Accesses declares the data regions the task reads and writes.
	Accesses []Access
	// Offloadable marks the task as eligible for execution on another
	// node (the paper's offloadable clause).
	Offloadable bool

	state     TaskState
	ndeps     int     // unsatisfied dependencies
	succs     []*Task // tasks depending on this one
	announced bool    // readiness callback delivered
	depMark   int64   // dedup marker: last task that added an edge to us
	queryMark int64   // dedup marker: last writers() query that saw us

	// ExecNode records where the task ran; set by the runtime at start.
	// It feeds the data-location registry for locality decisions.
	ExecNode int
}

// State returns the task's lifecycle state.
func (t *Task) State() TaskState { return t.state }

// NumDeps returns the number of unsatisfied dependencies (for tests).
func (t *Task) NumDeps() int { return t.ndeps }

// TaskGraph tracks submitted tasks, computes dependencies, and reports
// readiness and quiescence for one apprank.
type TaskGraph struct {
	nextID      int64
	onReady     func(*Task)
	outstanding int
	waiters     []func() // quiescence callbacks
	reg         registry
	submitted   int64
	completed   int64
	totalWork   simtime.Duration // declared Work summed over submissions
	obs         *obs.Recorder
	obsApprank  int
}

// SetObs attaches the structured event recorder, attributing this
// graph's task-lifecycle events to the given apprank. A nil recorder
// (the default) keeps Submit and announce allocation-free.
func (g *TaskGraph) SetObs(rec *obs.Recorder, apprank int) {
	g.obs = rec
	g.obsApprank = apprank
}

// NewTaskGraph creates an empty graph. onReady is invoked for every task
// whose dependencies are satisfied — possibly during Submit (for tasks
// with no predecessors) or during Complete.
func NewTaskGraph(onReady func(*Task)) *TaskGraph {
	// IDs start at 1 so the zero depMark never matches a real task.
	return &TaskGraph{onReady: onReady, nextID: 1}
}

// Stats returns (submitted, completed, outstanding) counters.
func (g *TaskGraph) Stats() (submitted, completed int64, outstanding int) {
	return g.submitted, g.completed, g.outstanding
}

// TotalWork returns the declared Work summed over every submitted task:
// the apprank's nominal compute demand at speed 1.0, before overhead and
// node-speed scaling. The POP report compares it with measured useful
// time.
func (g *TaskGraph) TotalWork() simtime.Duration { return g.totalWork }

// Submit registers a task, computes its dependencies against previously
// submitted tasks, and announces it ready if it has none.
func (g *TaskGraph) Submit(t *Task) {
	if t.state != Created || t.announced {
		panic(fmt.Sprintf("nanos: task %q resubmitted", t.Label))
	}
	t.ID = g.nextID
	g.nextID++
	t.ExecNode = -1
	g.submitted++
	g.outstanding++
	g.totalWork += t.Work
	for _, a := range t.Accesses {
		if a.Region.End < a.Region.Start {
			panic(fmt.Sprintf("nanos: task %q has inverted region %v", t.Label, a.Region))
		}
		g.reg.addAccess(t, a)
	}
	if g.obs != nil {
		bytes := int64(0)
		for _, a := range t.Accesses {
			bytes += a.Region.Size()
		}
		g.obs.TaskCreated(g.obsApprank, t.ID, t.Label, bytes)
	}
	if t.ndeps == 0 {
		g.announce(t)
	}
}

func (g *TaskGraph) announce(t *Task) {
	t.state = Ready
	t.announced = true
	g.obs.TaskReady(g.obsApprank, t.ID)
	g.onReady(t)
}

// MarkRunning transitions a ready task to running on the given node.
func (g *TaskGraph) MarkRunning(t *Task, node int) {
	if t.state != Ready {
		panic(fmt.Sprintf("nanos: MarkRunning on %v task %q", t.state, t.Label))
	}
	t.state = Running
	t.ExecNode = node
}

// Reschedule returns a running task to the ready state without
// releasing successors, for re-execution after its node died mid-task.
// The execution node is cleared; the task is NOT re-announced through
// onReady — the caller re-places it explicitly (recovery placement is a
// policy decision, not a readiness event).
func (g *TaskGraph) Reschedule(t *Task) {
	if t.state != Running {
		panic(fmt.Sprintf("nanos: Reschedule on %v task %q", t.state, t.Label))
	}
	t.state = Ready
	t.ExecNode = -1
}

// Complete transitions a task to completed, releases its successors, and
// fires quiescence callbacks if the graph drained.
func (g *TaskGraph) Complete(t *Task) {
	if t.state != Running && t.state != Ready {
		panic(fmt.Sprintf("nanos: Complete on %v task %q", t.state, t.Label))
	}
	t.state = Completed
	g.completed++
	g.outstanding--
	for _, s := range t.succs {
		s.ndeps--
		if s.ndeps == 0 && s.state == Created {
			g.announce(s)
		}
	}
	t.succs = nil
	if g.outstanding == 0 {
		ws := g.waiters
		g.waiters = nil
		for _, w := range ws {
			w()
		}
	}
}

// OnQuiescent registers fn to run when every submitted task has completed.
// If the graph is already quiescent, fn runs immediately. This is the
// taskwait primitive.
func (g *TaskGraph) OnQuiescent(fn func()) {
	if g.outstanding == 0 {
		fn()
		return
	}
	g.waiters = append(g.waiters, fn)
}

// addEdge records that succ depends on pred, unless pred already completed
// or the edge exists. Edges are only ever added while succ is being
// submitted, so marking pred with succ's unique ID dedups repeated pairs
// produced by scanning many overlapping intervals.
func addEdge(pred, succ *Task) {
	if pred == succ || pred.state == Completed || pred.depMark == succ.ID {
		return
	}
	pred.depMark = succ.ID
	pred.succs = append(pred.succs, succ)
	succ.ndeps++
}

// Writers returns the distinct live last-writer tasks overlapping the
// region.
func (g *TaskGraph) Writers(r Region) []*Task {
	return g.reg.writers(r)
}

// LocVec is a dense data-location vector: slot 0 counts bytes of unknown
// location (never written, or whose writer has not started), slot n+1
// counts bytes resident on node n. Node counts are small and fixed at
// startup, so one vector per apprank is allocated once and reused for
// every locality query — the scheduler's hot path allocates nothing.
type LocVec []int64

// NewLocVec returns a zeroed vector with room for numNodes nodes.
func NewLocVec(numNodes int) LocVec { return make(LocVec, numNodes+1) }

// Reset zeroes the vector for reuse.
func (v LocVec) Reset() {
	for i := range v {
		v[i] = 0
	}
}

// Unknown returns the bytes whose location is unknown.
func (v LocVec) Unknown() int64 { return v[0] }

// On returns the bytes resident on the given node; node -1 is unknown.
func (v LocVec) On(node int) int64 { return v[node+1] }

// NumNodes returns the node capacity of the vector.
func (v LocVec) NumNodes() int { return len(v) - 1 }

// DataLocationInto accumulates, for the read portions (In and InOut) of
// the given accesses, the number of bytes currently residing on each node
// into dst, which is reset first. This is the allocation-free form of
// DataLocation the runtime uses for the locality-first scheduling
// decision of §5.5 and for data-transfer cost estimation.
func (g *TaskGraph) DataLocationInto(accesses []Access, dst LocVec) {
	dst.Reset()
	for _, a := range accesses {
		if a.Mode == Out {
			continue
		}
		g.reg.locationVec(a.Region, dst)
	}
}

// DataLocation returns, for the read portions (In and InOut) of the given
// accesses, the number of bytes currently residing on each node, keyed by
// node id. Bytes whose location is unknown are keyed under -1. It is the
// map-shaped convenience form of DataLocationInto (which the scheduler's
// hot path uses instead, as this one allocates its result).
func (g *TaskGraph) DataLocation(accesses []Access) map[int]int64 {
	loc := make(map[int]int64)
	for _, a := range accesses {
		if a.Mode == Out {
			continue
		}
		g.reg.location(a.Region, loc)
	}
	return loc
}

// RegistryHighWater reports the maximum interval count the dependency
// registry ever held — the figure of merit for interval coalescing, since
// every locality query and access walk is linear in the live interval
// count.
func (g *TaskGraph) RegistryHighWater() int { return g.reg.highWater() }
