package nanos

import (
	"math/rand"
	"testing"
)

// byteState is the reference model's per-byte access history — the
// registry's interval semantics with the intervals taken to the limit of
// one byte each. Keeping one state per byte removes every splitting,
// splicing, and coalescing concern from the model, so any divergence
// points at the registry's interval bookkeeping.
type byteState struct {
	lastWriter  *Task
	writerNode  int
	readers     []*Task
	concurrents []*Task
}

// refRegistry is the naive differential reference: a map from byte
// address to its full history.
type refRegistry struct {
	bytes map[uint64]*byteState
}

func newRefRegistry() *refRegistry {
	return &refRegistry{bytes: make(map[uint64]*byteState)}
}

func (r *refRegistry) state(addr uint64) *byteState {
	bs := r.bytes[addr]
	if bs == nil {
		bs = &byteState{writerNode: -1}
		r.bytes[addr] = bs
	}
	return bs
}

// scrub mirrors interval.scrub at byte granularity. The real registry
// scrubs exactly the intervals an access touches — which is exactly the
// accessed byte range — so scrubbing on access keeps the models in
// lockstep.
func (bs *byteState) scrub() {
	if bs.lastWriter != nil && bs.lastWriter.state == Completed {
		bs.writerNode = bs.lastWriter.ExecNode
		bs.lastWriter = nil
	}
	live := bs.readers[:0]
	for _, t := range bs.readers {
		if t.state != Completed {
			live = append(live, t)
		}
	}
	bs.readers = live
	liveC := bs.concurrents[:0]
	for _, t := range bs.concurrents {
		if t.state != Completed {
			liveC = append(liveC, t)
		}
	}
	bs.concurrents = liveC
}

// apply mirrors registry.applyAccess for one byte, recording the
// dependency predecessors the access implies into preds.
func (bs *byteState) apply(t *Task, mode AccessMode, preds map[*Task]bool) {
	addPred := func(p *Task) {
		if p != nil && p != t && p.state != Completed {
			preds[p] = true
		}
	}
	switch mode {
	case In:
		if len(bs.concurrents) > 0 {
			for _, c := range bs.concurrents {
				addPred(c)
			}
		} else {
			addPred(bs.lastWriter)
		}
		bs.readers = append(bs.readers, t)
	case Concurrent:
		addPred(bs.lastWriter)
		for _, rd := range bs.readers {
			addPred(rd)
		}
		bs.concurrents = append(bs.concurrents, t)
	case Out, InOut:
		addPred(bs.lastWriter)
		for _, rd := range bs.readers {
			addPred(rd)
		}
		for _, c := range bs.concurrents {
			addPred(c)
		}
		bs.lastWriter = t
		bs.writerNode = -1
		bs.readers = nil
		bs.concurrents = nil
	}
}

// submit runs a task's accesses through the model in declaration order
// and returns the predicted predecessor set.
func (r *refRegistry) submit(t *Task) map[*Task]bool {
	preds := make(map[*Task]bool)
	for _, a := range t.Accesses {
		for addr := a.Region.Start; addr < a.Region.End; addr++ {
			bs := r.state(addr)
			bs.scrub()
			bs.apply(t, a.Mode, preds)
		}
	}
	return preds
}

// liveNode mirrors interval.liveNode for one byte.
func (bs *byteState) liveNode() int {
	if bs.lastWriter != nil {
		if s := bs.lastWriter.state; s == Completed || s == Running {
			return bs.lastWriter.ExecNode
		}
		return -1
	}
	return bs.writerNode
}

// location returns the per-node byte counts for a region, keyed like
// TaskGraph.DataLocation (unknown under -1).
func (r *refRegistry) location(reg Region) map[int]int64 {
	loc := make(map[int]int64)
	for addr := reg.Start; addr < reg.End; addr++ {
		if bs := r.bytes[addr]; bs != nil {
			loc[bs.liveNode()]++
		} else {
			loc[-1]++
		}
	}
	for n, b := range loc {
		if b == 0 {
			delete(loc, n)
		}
	}
	return loc
}

// writersIn returns the distinct non-nil last writers over a region,
// including completed-but-not-yet-scrubbed ones (the real registry
// scrubs lazily, and writers() reports whatever history is present).
func (r *refRegistry) writersIn(reg Region) map[*Task]bool {
	ws := make(map[*Task]bool)
	for addr := reg.Start; addr < reg.End; addr++ {
		if bs := r.bytes[addr]; bs != nil && bs.lastWriter != nil {
			ws[bs.lastWriter] = true
		}
	}
	return ws
}

// checkIntervalInvariants asserts the registry's structural invariants:
// intervals sorted, disjoint, and non-empty.
func checkIntervalInvariants(t *testing.T, r *registry) {
	t.Helper()
	for i, iv := range r.ivs {
		if iv.start >= iv.end {
			t.Fatalf("interval %d empty or inverted: [%#x,%#x)", i, iv.start, iv.end)
		}
		if i > 0 && r.ivs[i-1].end > iv.start {
			t.Fatalf("intervals %d,%d overlap or unsorted: [..,%#x) then [%#x,..)",
				i-1, i, r.ivs[i-1].end, iv.start)
		}
	}
	if r.hiwater < len(r.ivs) {
		t.Fatalf("hiwater %d below current interval count %d", r.hiwater, len(r.ivs))
	}
}

// TestRegistryDifferential drives random access sequences through the
// real TaskGraph and the per-byte reference model in lockstep, checking
// dependency edges, unsatisfied-dependency counts, data locations, and
// writer sets after every step.
func TestRegistryDifferential(t *testing.T) {
	const (
		seeds     = 5
		steps     = 400
		space     = 1 << 10 // byte address space; small enough to model per byte
		numNodes  = 4
		maxRegion = 96
	)
	modes := []AccessMode{In, Out, InOut, Concurrent}
	for seed := int64(0); seed < seeds; seed++ {
		rng := rand.New(rand.NewSource(seed))
		var ready []*Task
		g := NewTaskGraph(func(tk *Task) { ready = append(ready, tk) })
		ref := newRefRegistry()
		var submitted []*Task

		randRegion := func() Region {
			s := rng.Uint64() % space
			l := 1 + rng.Uint64()%maxRegion
			e := s + l
			if e > space {
				e = space
			}
			return Region{s, e}
		}

		for step := 0; step < steps; step++ {
			if len(ready) > 0 && rng.Intn(3) == 0 {
				// Complete a random ready task.
				k := rng.Intn(len(ready))
				tk := ready[k]
				ready = append(ready[:k], ready[k+1:]...)
				g.MarkRunning(tk, rng.Intn(numNodes))
				g.Complete(tk)
				continue
			}
			// Submit a task with 1–3 random accesses.
			var acc []Access
			for n := 1 + rng.Intn(3); n > 0; n-- {
				acc = append(acc, Access{randRegion(), modes[rng.Intn(len(modes))]})
			}
			tk := &Task{Label: "diff", Accesses: acc}
			want := ref.submit(tk)
			g.Submit(tk)

			if got := tk.NumDeps(); got != len(want) {
				t.Fatalf("seed %d step %d: ndeps = %d, reference predicts %d preds",
					seed, step, got, len(want))
			}
			// Every predicted predecessor must hold an edge to tk, and no
			// other live task may.
			for _, p := range submitted {
				has := false
				for _, s := range p.succs {
					if s == tk {
						has = true
						break
					}
				}
				if has != want[p] {
					t.Fatalf("seed %d step %d: edge %q->new = %v, reference predicts %v",
						seed, step, p.Label, has, want[p])
				}
			}
			submitted = append(submitted, tk)
			checkIntervalInvariants(t, &g.reg)

			// Cross-check locations and writers over a few random regions.
			for q := 0; q < 3; q++ {
				reg := randRegion()
				wantLoc := ref.location(reg)
				gotLoc := g.DataLocation([]Access{{reg, In}})
				if len(gotLoc) != len(wantLoc) {
					t.Fatalf("seed %d step %d: location(%v) = %v, reference %v",
						seed, step, reg, gotLoc, wantLoc)
				}
				for n, b := range wantLoc {
					if gotLoc[n] != b {
						t.Fatalf("seed %d step %d: location(%v)[%d] = %d, reference %d",
							seed, step, reg, n, gotLoc[n], b)
					}
				}
				// The dense vector must agree with the map form.
				vec := NewLocVec(numNodes)
				g.DataLocationInto([]Access{{reg, In}}, vec)
				if vec.Unknown() != wantLoc[-1] {
					t.Fatalf("seed %d step %d: vec unknown = %d, reference %d",
						seed, step, vec.Unknown(), wantLoc[-1])
				}
				for n := 0; n < numNodes; n++ {
					if vec.On(n) != wantLoc[n] {
						t.Fatalf("seed %d step %d: vec on(%d) = %d, reference %d",
							seed, step, n, vec.On(n), wantLoc[n])
					}
				}
				wantW := ref.writersIn(reg)
				gotW := g.Writers(reg)
				if len(gotW) != len(wantW) {
					t.Fatalf("seed %d step %d: writers(%v) = %d tasks, reference %d",
						seed, step, reg, len(gotW), len(wantW))
				}
				for _, w := range gotW {
					if !wantW[w] {
						t.Fatalf("seed %d step %d: writers(%v) reported unexpected task",
							seed, step, reg)
					}
				}
			}
		}
		// Drain: everything must complete without deadlock.
		for len(ready) > 0 {
			tk := ready[0]
			ready = ready[1:]
			g.MarkRunning(tk, rng.Intn(numNodes))
			g.Complete(tk)
		}
		if _, _, out := g.Stats(); out != 0 {
			t.Fatalf("seed %d: %d tasks outstanding after drain", seed, out)
		}
	}
}

// TestRegistryCoalesces pins the anti-growth property: rewriting a region
// that had been fragmented into many intervals collapses it back into
// one.
func TestRegistryCoalesces(t *testing.T) {
	g := NewTaskGraph(func(*Task) {})
	// Fragment [0, 25600) into 256 intervals with distinct writers.
	for i := 0; i < 256; i++ {
		s := uint64(i) * 100
		tk := &Task{Accesses: []Access{{Region{s, s + 100}, Out}}}
		g.Submit(tk)
		g.MarkRunning(tk, i%4)
		g.Complete(tk)
	}
	if n := g.reg.numIntervals(); n != 256 {
		t.Fatalf("after fragmenting writes: %d intervals, want 256", n)
	}
	// One whole-region rewrite must collapse them all.
	tk := &Task{Accesses: []Access{{Region{0, 25600}, Out}}}
	g.Submit(tk)
	if n := g.reg.numIntervals(); n != 1 {
		t.Fatalf("after whole-region rewrite: %d intervals, want 1", n)
	}
	if hw := g.RegistryHighWater(); hw != 256 {
		t.Fatalf("high-water = %d, want 256", hw)
	}
}

// TestDataLocationIntoAllocFree pins the hot locality query at zero
// allocations per call.
func TestDataLocationIntoAllocFree(t *testing.T) {
	g := NewTaskGraph(func(*Task) {})
	for i := 0; i < 256; i++ {
		s := uint64(i) * 100
		tk := &Task{Accesses: []Access{{Region{s, s + 100}, Out}}}
		g.Submit(tk)
		g.MarkRunning(tk, i%8)
		g.Complete(tk)
	}
	acc := []Access{{Region{0, 25600}, In}}
	vec := NewLocVec(8)
	if n := testing.AllocsPerRun(100, func() { g.DataLocationInto(acc, vec) }); n != 0 {
		t.Fatalf("DataLocationInto allocates %.1f times per call, want 0", n)
	}
}

// TestAddAccessAllocFreeSteadyState pins the steady-state write path at
// zero allocations: once the interval list and scratch buffer have grown
// to the workload's footprint, rewriting regions allocates nothing.
func TestAddAccessAllocFreeSteadyState(t *testing.T) {
	var r registry
	const regions = 64
	tasks := make([]*Task, regions)
	for i := range tasks {
		tasks[i] = &Task{ID: int64(i + 1), state: Running, ExecNode: i % 4}
	}
	access := func(i int) {
		k := i % regions
		s := uint64(k) * 128
		r.addAccess(tasks[k], Access{Region{s, s + 128}, Out})
	}
	for i := 0; i < 2*regions; i++ {
		access(i) // warm up: grow ivs and scratch to steady state
	}
	i := 0
	if n := testing.AllocsPerRun(200, func() { access(i); i++ }); n != 0 {
		t.Fatalf("addAccess allocates %.1f times per call in steady state, want 0", n)
	}
}
