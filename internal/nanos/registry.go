package nanos

import "sort"

// interval is a maximal byte range with homogeneous access history: the
// last writing task (nil if it already completed or never existed) and the
// readers since that write. writerNode remembers where the last writer
// executed even after the task itself is released, for data-locality
// queries.
type interval struct {
	start, end  uint64
	lastWriter  *Task
	writerNode  int
	readers     []*Task
	concurrents []*Task // current concurrent-clause group
}

// registry is a sorted list of disjoint intervals covering every byte
// range accessed so far. Lookups go through a last-hit cursor (workloads
// sweep regions in address order) with a binary-search fallback; each
// access rebuilds the affected span with a single splice; adjacent
// intervals left with identical history are coalesced, so the structure
// shrinks back as regions are rewritten. Completed tasks are dropped
// lazily whenever an interval is touched, so memory tracks the live task
// set, not history.
type registry struct {
	ivs     []interval
	scratch []interval // reusable span-rebuild buffer for addAccess
	cursor  int        // last findFirst hit, a hint only
	hiwater int        // maximum len(ivs) ever reached
	qgen    int64      // writers() query generation for O(n) dedup
}

// findFirst returns the index of the first interval with end > addr. The
// cursor exploits spatial locality: sweeps in address order hit the same
// or the next interval, skipping the binary search.
func (r *registry) findFirst(addr uint64) int {
	n := len(r.ivs)
	if c := r.cursor; c < n {
		if r.ivs[c].end > addr {
			if c == 0 || r.ivs[c-1].end <= addr {
				return c
			}
		} else if c+1 < n && r.ivs[c+1].end > addr {
			r.cursor = c + 1
			return c + 1
		}
	}
	i := sort.Search(n, func(i int) bool { return r.ivs[i].end > addr })
	r.cursor = i
	return i
}

// scrub drops completed tasks from an interval's history, preserving the
// writer's execution node.
func (iv *interval) scrub() {
	if iv.lastWriter != nil && iv.lastWriter.state == Completed {
		iv.writerNode = iv.lastWriter.ExecNode
		iv.lastWriter = nil
	}
	live := iv.readers[:0]
	for _, t := range iv.readers {
		if t.state != Completed {
			live = append(live, t)
		}
	}
	iv.readers = live
	if len(iv.readers) == 0 {
		iv.readers = nil
	}
	liveC := iv.concurrents[:0]
	for _, t := range iv.concurrents {
		if t.state != Completed {
			liveC = append(liveC, t)
		}
	}
	iv.concurrents = liveC
	if len(iv.concurrents) == 0 {
		iv.concurrents = nil
	}
}

// liveNode resolves the node currently holding an interval's bytes: the
// writer's execution node once it started (or the recorded node if the
// writer was already released), -1 while the location is unknown.
func (iv *interval) liveNode() int {
	if iv.lastWriter != nil {
		if s := iv.lastWriter.state; s == Completed || s == Running {
			return iv.lastWriter.ExecNode
		}
		return -1
	}
	return iv.writerNode
}

// sameHistory reports whether two intervals carry identical access
// history, so that adjacent ones may merge without changing semantics.
func sameHistory(a, b *interval) bool {
	if a.lastWriter != b.lastWriter || a.writerNode != b.writerNode ||
		len(a.readers) != len(b.readers) || len(a.concurrents) != len(b.concurrents) {
		return false
	}
	for i := range a.readers {
		if a.readers[i] != b.readers[i] {
			return false
		}
	}
	for i := range a.concurrents {
		if a.concurrents[i] != b.concurrents[i] {
			return false
		}
	}
	return true
}

// appendMerged appends iv to span, extending the previous element instead
// when it is adjacent with identical history. This is what keeps the
// registry from growing monotonically: a write access leaves every piece
// it touched with the same fresh history, so the whole span collapses
// back into one interval.
func appendMerged(span []interval, iv interval) []interval {
	if n := len(span); n > 0 && span[n-1].end == iv.start && sameHistory(&span[n-1], &iv) {
		span[n-1].end = iv.end
		return span
	}
	return append(span, iv)
}

func copyTasks(ts []*Task) []*Task {
	if len(ts) == 0 {
		return nil
	}
	return append([]*Task(nil), ts...)
}

// addAccess records task t's access a, adding dependency edges against the
// current interval history and updating it. The affected span of the
// interval list is rebuilt in a scratch buffer — partial head/tail
// overlaps split, gaps filled, touched intervals scrubbed and updated,
// identical-history neighbours coalesced — and spliced back with one
// copy, instead of one O(n) memmove per created interval.
func (r *registry) addAccess(t *Task, a Access) {
	start, end := a.Region.Start, a.Region.End
	if start >= end {
		return // empty access
	}
	lo := r.findFirst(start)
	span := r.scratch[:0]
	pos := start
	i := lo
	// An interval straddling start keeps its head piece unchanged; the
	// remainder re-enters the walk with a private copy of the history.
	if i < len(r.ivs) && r.ivs[i].start < start {
		head := r.ivs[i]
		rest := head
		head.end = start
		rest.start = start
		rest.readers = copyTasks(head.readers)
		rest.concurrents = copyTasks(head.concurrents)
		span = append(span, head)
		span = r.applyOverlapped(span, rest, t, a.Mode, end)
		pos = min64(rest.end, end)
		i++
	}
	for pos < end {
		if i == len(r.ivs) || r.ivs[i].start >= end {
			// Trailing gap: cover it.
			iv := interval{start: pos, end: end, writerNode: -1}
			r.applyAccess(&iv, t, a.Mode)
			span = appendMerged(span, iv)
			pos = end
			break
		}
		next := r.ivs[i]
		if next.start > pos {
			// Gap before the next interval: cover it.
			gap := interval{start: pos, end: next.start, writerNode: -1}
			r.applyAccess(&gap, t, a.Mode)
			span = appendMerged(span, gap)
			pos = next.start
		}
		span = r.applyOverlapped(span, next, t, a.Mode, end)
		pos = min64(next.end, end)
		i++
	}
	r.splice(lo, i, span)
}

// applyOverlapped scrubs and applies the access to an existing interval
// known to start inside [_, end); an interval extending past end is split,
// its tail keeping a private, untouched copy of the history.
func (r *registry) applyOverlapped(span []interval, iv interval, t *Task, mode AccessMode, end uint64) []interval {
	if iv.end > end {
		tail := iv
		tail.start = end
		tail.readers = copyTasks(iv.readers)
		tail.concurrents = copyTasks(iv.concurrents)
		iv.end = end
		iv.scrub()
		r.applyAccess(&iv, t, mode)
		span = appendMerged(span, iv)
		return append(span, tail)
	}
	iv.scrub()
	r.applyAccess(&iv, t, mode)
	return appendMerged(span, iv)
}

// splice replaces r.ivs[lo:hi] with span in a single copy, after widening
// the window to absorb boundary neighbours that coalesce with the span's
// edges. The scratch buffer is recycled for the next access.
func (r *registry) splice(lo, hi int, span []interval) {
	if len(span) > 0 {
		if lo > 0 && r.ivs[lo-1].end == span[0].start && sameHistory(&r.ivs[lo-1], &span[0]) {
			lo--
			span[0].start = r.ivs[lo].start
		}
		if last := &span[len(span)-1]; hi < len(r.ivs) && r.ivs[hi].start == last.end && sameHistory(&r.ivs[hi], last) {
			last.end = r.ivs[hi].end
			hi++
		}
	}
	old := hi - lo
	switch {
	case len(span) == old:
		copy(r.ivs[lo:hi], span)
	case len(span) < old:
		copy(r.ivs[lo:], span)
		n := lo + len(span) + copy(r.ivs[lo+len(span):], r.ivs[hi:])
		clear(r.ivs[n:]) // release task pointers past the new end
		r.ivs = r.ivs[:n]
	default:
		grow := len(span) - old
		for k := 0; k < grow; k++ {
			r.ivs = append(r.ivs, interval{})
		}
		copy(r.ivs[hi+grow:], r.ivs[hi:len(r.ivs)-grow])
		copy(r.ivs[lo:], span)
	}
	if len(r.ivs) > r.hiwater {
		r.hiwater = len(r.ivs)
	}
	// Point the cursor at the span's tail: the next access or locality
	// query usually continues right after this one.
	if c := lo + len(span) - 1; c >= 0 {
		r.cursor = c
	}
	clear(span) // drop stale task pointers held by the scratch buffer
	r.scratch = span[:0]
}

// applyAccess adds dependency edges from the interval's history to t and
// updates the history for t's access mode.
//
// The concurrent clause forms a group ordered against readers and
// writers on both sides but unordered internally: a concurrent access
// depends on the last writer and the readers so far; subsequent readers
// and writers depend on every member of the group.
func (r *registry) applyAccess(iv *interval, t *Task, mode AccessMode) {
	switch mode {
	case In:
		if len(iv.concurrents) > 0 {
			for _, c := range iv.concurrents {
				addEdge(c, t)
			}
		} else if iv.lastWriter != nil {
			addEdge(iv.lastWriter, t)
		}
		if n := len(iv.readers); n == 0 || iv.readers[n-1] != t {
			iv.readers = append(iv.readers, t)
		}
	case Concurrent:
		if iv.lastWriter != nil {
			addEdge(iv.lastWriter, t)
		}
		for _, rd := range iv.readers {
			addEdge(rd, t)
		}
		if n := len(iv.concurrents); n == 0 || iv.concurrents[n-1] != t {
			iv.concurrents = append(iv.concurrents, t)
		}
	case Out, InOut:
		if iv.lastWriter != nil {
			addEdge(iv.lastWriter, t)
		}
		for _, rd := range iv.readers {
			addEdge(rd, t)
		}
		for _, c := range iv.concurrents {
			addEdge(c, t)
		}
		iv.lastWriter = t
		iv.writerNode = -1
		iv.readers = nil
		iv.concurrents = nil
	}
}

// locationVec accumulates, into dst, the bytes of region reg residing on
// each node according to the last writers: dst[0] counts bytes of unknown
// location, dst[n+1] the bytes on node n. The walk allocates nothing.
func (r *registry) locationVec(reg Region, dst LocVec) {
	if reg.Start >= reg.End {
		return
	}
	pos := reg.Start
	i := r.findFirst(pos)
	for pos < reg.End {
		if i == len(r.ivs) || r.ivs[i].start >= reg.End {
			dst[0] += int64(reg.End - pos)
			return
		}
		iv := &r.ivs[i]
		if iv.start > pos {
			dst[0] += int64(iv.start - pos)
			pos = iv.start
		}
		end := min64(iv.end, reg.End)
		dst[iv.liveNode()+1] += int64(end - pos)
		pos = end
		r.cursor = i
		i++
	}
}

// location accumulates, into dst, the bytes of region reg residing on each
// node according to the last writers, keyed by node id. Bytes with unknown
// location count under node -1. This is the map-shaped convenience used by
// DataLocation; the scheduler's hot path uses locationVec.
func (r *registry) location(reg Region, dst map[int]int64) {
	if reg.Start >= reg.End {
		return
	}
	pos := reg.Start
	i := r.findFirst(pos)
	for pos < reg.End {
		if i == len(r.ivs) || r.ivs[i].start >= reg.End {
			dst[-1] += int64(reg.End - pos)
			return
		}
		iv := &r.ivs[i]
		if iv.start > pos {
			dst[-1] += int64(iv.start - pos)
			pos = iv.start
		}
		end := min64(iv.end, reg.End)
		dst[iv.liveNode()] += int64(end - pos)
		pos = end
		r.cursor = i
		i++
	}
}

func min64(a, b uint64) uint64 {
	if a < b {
		return a
	}
	return b
}

// numIntervals reports the interval count (for tests).
func (r *registry) numIntervals() int { return len(r.ivs) }

// highWater reports the maximum interval count the registry ever held.
func (r *registry) highWater() int { return r.hiwater }

// writers returns the distinct live last-writer tasks overlapping reg.
// Dedup is O(1) per interval via a per-query generation mark on the task.
func (r *registry) writers(reg Region) []*Task {
	r.qgen++
	var out []*Task
	for i := r.findFirst(reg.Start); i < len(r.ivs) && r.ivs[i].start < reg.End; i++ {
		w := r.ivs[i].lastWriter
		if w == nil || w.queryMark == r.qgen {
			continue
		}
		w.queryMark = r.qgen
		out = append(out, w)
	}
	return out
}
