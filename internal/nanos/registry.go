package nanos

import "sort"

// interval is a maximal byte range with homogeneous access history: the
// last writing task (nil if it already completed or never existed) and the
// readers since that write. writerNode remembers where the last writer
// executed even after the task itself is released, for data-locality
// queries.
type interval struct {
	start, end  uint64
	lastWriter  *Task
	writerNode  int
	readers     []*Task
	concurrents []*Task // current concurrent-clause group
}

// registry is a sorted list of disjoint intervals covering every byte
// range accessed so far. Lookups are binary searches; splits keep the
// structure canonical. Completed tasks are dropped lazily whenever an
// interval is touched, so memory tracks the live task set, not history.
type registry struct {
	ivs []interval
}

// findFirst returns the index of the first interval with end > addr.
func (r *registry) findFirst(addr uint64) int {
	return sort.Search(len(r.ivs), func(i int) bool { return r.ivs[i].end > addr })
}

// insertAt inserts iv at index i.
func (r *registry) insertAt(i int, iv interval) {
	r.ivs = append(r.ivs, interval{})
	copy(r.ivs[i+1:], r.ivs[i:])
	r.ivs[i] = iv
}

// split ensures an interval boundary exists at addr if addr falls strictly
// inside an interval; returns the index of the interval starting at or
// after addr.
func (r *registry) split(addr uint64) {
	i := r.findFirst(addr)
	if i == len(r.ivs) || r.ivs[i].start >= addr {
		return
	}
	iv := r.ivs[i]
	left := iv
	left.end = addr
	right := iv
	right.start = addr
	right.readers = append([]*Task(nil), iv.readers...)
	right.concurrents = append([]*Task(nil), iv.concurrents...)
	r.ivs[i] = left
	r.insertAt(i+1, right)
}

// scrub drops completed tasks from an interval's history, preserving the
// writer's execution node.
func (iv *interval) scrub() {
	if iv.lastWriter != nil && iv.lastWriter.state == Completed {
		iv.writerNode = iv.lastWriter.ExecNode
		iv.lastWriter = nil
	}
	live := iv.readers[:0]
	for _, t := range iv.readers {
		if t.state != Completed {
			live = append(live, t)
		}
	}
	iv.readers = live
	if len(iv.readers) == 0 {
		iv.readers = nil
	}
	liveC := iv.concurrents[:0]
	for _, t := range iv.concurrents {
		if t.state != Completed {
			liveC = append(liveC, t)
		}
	}
	iv.concurrents = liveC
	if len(iv.concurrents) == 0 {
		iv.concurrents = nil
	}
}

// addAccess records task t's access a, adding dependency edges against the
// current interval history and updating it.
func (r *registry) addAccess(t *Task, a Access) {
	if a.Region.Start >= a.Region.End {
		return // empty access
	}
	r.split(a.Region.Start)
	r.split(a.Region.End)
	pos := a.Region.Start
	i := r.findFirst(pos)
	for pos < a.Region.End {
		// Gap before the next interval (or no interval at all): cover it.
		var gapEnd uint64
		if i == len(r.ivs) || r.ivs[i].start >= a.Region.End {
			gapEnd = a.Region.End
		} else if r.ivs[i].start > pos {
			gapEnd = r.ivs[i].start
		}
		if gapEnd > pos {
			iv := interval{start: pos, end: gapEnd, writerNode: -1}
			r.applyAccess(&iv, t, a.Mode)
			r.insertAt(i, iv)
			i++
			pos = gapEnd
			continue
		}
		// Existing interval fully inside [pos, End) thanks to split.
		iv := &r.ivs[i]
		iv.scrub()
		r.applyAccess(iv, t, a.Mode)
		pos = iv.end
		i++
	}
}

// applyAccess adds dependency edges from the interval's history to t and
// updates the history for t's access mode.
//
// The concurrent clause forms a group ordered against readers and
// writers on both sides but unordered internally: a concurrent access
// depends on the last writer and the readers so far; subsequent readers
// and writers depend on every member of the group.
func (r *registry) applyAccess(iv *interval, t *Task, mode AccessMode) {
	switch mode {
	case In:
		if len(iv.concurrents) > 0 {
			for _, c := range iv.concurrents {
				addEdge(c, t)
			}
		} else if iv.lastWriter != nil {
			addEdge(iv.lastWriter, t)
		}
		if n := len(iv.readers); n == 0 || iv.readers[n-1] != t {
			iv.readers = append(iv.readers, t)
		}
	case Concurrent:
		if iv.lastWriter != nil {
			addEdge(iv.lastWriter, t)
		}
		for _, rd := range iv.readers {
			addEdge(rd, t)
		}
		if n := len(iv.concurrents); n == 0 || iv.concurrents[n-1] != t {
			iv.concurrents = append(iv.concurrents, t)
		}
	case Out, InOut:
		if iv.lastWriter != nil {
			addEdge(iv.lastWriter, t)
		}
		for _, rd := range iv.readers {
			addEdge(rd, t)
		}
		for _, c := range iv.concurrents {
			addEdge(c, t)
		}
		iv.lastWriter = t
		iv.writerNode = -1
		iv.readers = nil
		iv.concurrents = nil
	}
}

// location accumulates, into dst, the bytes of region reg residing on each
// node according to the last writers. Bytes with unknown location count
// under node -1.
func (r *registry) location(reg Region, dst map[int]int64) {
	if reg.Start >= reg.End {
		return
	}
	pos := reg.Start
	i := r.findFirst(pos)
	for pos < reg.End {
		if i == len(r.ivs) || r.ivs[i].start >= reg.End {
			dst[-1] += int64(reg.End - pos)
			return
		}
		iv := &r.ivs[i]
		if iv.start > pos {
			dst[-1] += int64(iv.start - pos)
			pos = iv.start
		}
		node := iv.writerNode
		if iv.lastWriter != nil {
			if iv.lastWriter.state == Completed || iv.lastWriter.state == Running {
				node = iv.lastWriter.ExecNode
			} else {
				node = -1
			}
		}
		end := min64(iv.end, reg.End)
		dst[node] += int64(end - pos)
		pos = end
		i++
	}
}

func min64(a, b uint64) uint64 {
	if a < b {
		return a
	}
	return b
}

// numIntervals reports the interval count (for tests).
func (r *registry) numIntervals() int { return len(r.ivs) }

// writers returns the distinct live last-writer tasks overlapping reg.
func (r *registry) writers(reg Region) []*Task {
	var out []*Task
	i := r.findFirst(reg.Start)
	for ; i < len(r.ivs) && r.ivs[i].start < reg.End; i++ {
		w := r.ivs[i].lastWriter
		if w == nil || !reg.Overlaps(Region{r.ivs[i].start, r.ivs[i].end}) {
			continue
		}
		dup := false
		for _, o := range out {
			if o == w {
				dup = true
				break
			}
		}
		if !dup {
			out = append(out, w)
		}
	}
	return out
}
