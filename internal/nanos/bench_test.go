package nanos

import "testing"

// BenchmarkSubmitIndependent measures dependency-registry throughput for
// disjoint regions.
func BenchmarkSubmitIndependent(b *testing.B) {
	g := NewTaskGraph(func(*Task) {})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := uint64(i%4096) * 128
		t := &Task{Accesses: []Access{{Region{s, s + 64}, InOut}}}
		g.Submit(t)
		g.MarkRunning(t, 0)
		g.Complete(t)
	}
}

// BenchmarkSubmitChained measures the serial-chain path (same region).
func BenchmarkSubmitChained(b *testing.B) {
	ready := make([]*Task, 0, 1)
	g := NewTaskGraph(func(t *Task) { ready = append(ready, t) })
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Submit(&Task{Accesses: []Access{{Region{0, 64}, InOut}}})
		for len(ready) > 0 {
			t := ready[0]
			ready = ready[1:]
			g.MarkRunning(t, 0)
			g.Complete(t)
		}
	}
}

// BenchmarkDataLocation measures locality queries over a fragmented
// registry.
func BenchmarkDataLocation(b *testing.B) {
	g := NewTaskGraph(func(*Task) {})
	for i := 0; i < 256; i++ {
		s := uint64(i) * 100
		t := &Task{Accesses: []Access{{Region{s, s + 100}, Out}}}
		g.Submit(t)
		g.MarkRunning(t, i%8)
		g.Complete(t)
	}
	acc := []Access{{Region{0, 25600}, In}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.DataLocation(acc)
	}
}
