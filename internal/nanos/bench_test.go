package nanos

import "testing"

// BenchmarkSubmitIndependent measures dependency-registry throughput for
// disjoint regions.
func BenchmarkSubmitIndependent(b *testing.B) {
	g := NewTaskGraph(func(*Task) {})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := uint64(i%4096) * 128
		t := &Task{Accesses: []Access{{Region{s, s + 64}, InOut}}}
		g.Submit(t)
		g.MarkRunning(t, 0)
		g.Complete(t)
	}
}

// BenchmarkSubmitChained measures the serial-chain path (same region).
func BenchmarkSubmitChained(b *testing.B) {
	ready := make([]*Task, 0, 1)
	g := NewTaskGraph(func(t *Task) { ready = append(ready, t) })
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Submit(&Task{Accesses: []Access{{Region{0, 64}, InOut}}})
		for len(ready) > 0 {
			t := ready[0]
			ready = ready[1:]
			g.MarkRunning(t, 0)
			g.Complete(t)
		}
	}
}

// BenchmarkDataLocation measures locality queries over a fragmented
// registry on the scheduler's hot path (the allocation-free dense-vector
// form); the benchmark is expected to report 0 allocs/op.
func BenchmarkDataLocation(b *testing.B) {
	g := NewTaskGraph(func(*Task) {})
	for i := 0; i < 256; i++ {
		s := uint64(i) * 100
		t := &Task{Accesses: []Access{{Region{s, s + 100}, Out}}}
		g.Submit(t)
		g.MarkRunning(t, i%8)
		g.Complete(t)
	}
	acc := []Access{{Region{0, 25600}, In}}
	vec := NewLocVec(8)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.DataLocationInto(acc, vec)
	}
}

// BenchmarkDataLocationMap measures the map-shaped convenience form, for
// comparison against the dense-vector hot path above.
func BenchmarkDataLocationMap(b *testing.B) {
	g := NewTaskGraph(func(*Task) {})
	for i := 0; i < 256; i++ {
		s := uint64(i) * 100
		t := &Task{Accesses: []Access{{Region{s, s + 100}, Out}}}
		g.Submit(t)
		g.MarkRunning(t, i%8)
		g.Complete(t)
	}
	acc := []Access{{Region{0, 25600}, In}}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.DataLocation(acc)
	}
}

// BenchmarkRegistryAddAccess measures the steady-state write path over a
// fragmented registry: span rebuild plus single splice, expected to
// report 0 allocs/op once the buffers have reached the workload's
// footprint.
func BenchmarkRegistryAddAccess(b *testing.B) {
	var r registry
	const regions = 256
	tasks := make([]*Task, regions)
	for i := range tasks {
		tasks[i] = &Task{ID: int64(i + 1), state: Running, ExecNode: i % 8}
	}
	for i := 0; i < 2*regions; i++ {
		k := i % regions
		s := uint64(k) * 128
		r.addAccess(tasks[k], Access{Region{s, s + 128}, Out})
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k := i % regions
		s := uint64(k) * 128
		r.addAccess(tasks[k], Access{Region{s, s + 128}, Out})
	}
}
