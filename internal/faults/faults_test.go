package faults

import (
	"strings"
	"testing"
	"time"

	"ompsscluster/internal/simtime"
)

func TestParseRoundTrip(t *testing.T) {
	data := []byte(`{
		"name": "demo",
		"max_attempts": 8,
		"backoff": "2ms",
		"events": [
			{"kind": "slow", "at": "20ms", "until": "50ms", "node": 1, "speed": 0.5},
			{"kind": "link", "at": "5ms", "until": "80ms", "node": 0, "node_b": 2,
			 "delay": "100us", "jitter": "250us", "drop": 0.1},
			{"kind": "coreloss", "at": "30ms", "node": 2, "cores": 2},
			{"kind": "drain", "at": "40ms", "node": 3},
			{"kind": "stall", "at": "10ms", "until": "12ms", "apprank": 1}
		]
	}`)
	p, err := Parse(data)
	if err != nil {
		t.Fatal(err)
	}
	if p.Name != "demo" || p.MaxAttempts != 8 || p.Backoff != simtime.Duration(2*time.Millisecond) {
		t.Fatalf("header mismatch: %+v", p)
	}
	if len(p.Events) != 5 {
		t.Fatalf("want 5 events, got %d", len(p.Events))
	}
	if err := p.Validate(4, 4); err != nil {
		t.Fatal(err)
	}
	if p.Events[0].Kind != Slow || p.Events[0].Speed != 0.5 {
		t.Fatalf("slow event mismatch: %+v", p.Events[0])
	}
	if p.Events[1].Delay != simtime.Duration(100*time.Microsecond) {
		t.Fatalf("link delay mismatch: %+v", p.Events[1])
	}
}

func TestParseErrorsNameEventAndField(t *testing.T) {
	cases := []struct {
		name string
		data string
		want []string
	}{
		{"event type error carries index and field",
			`{"events": [{"kind": "slow", "at": "1ms", "until": "2ms", "speed": 0.5},
			             {"kind": "coreloss", "at": "3ms", "cores": "two"}]}`,
			[]string{"event 1", `field "cores"`, "JSON string", "int"}},
		{"event unknown field rejected with index",
			`{"events": [{"kind": "drain", "at": "1ms", "nodeb": 2}]}`,
			[]string{"event 0", `unknown field "nodeb"`, `"node_b"`}},
		{"event bad duration carries index and field",
			`{"events": [{"kind": "slow", "at": "1ms", "until": "2 parsecs", "speed": 0.5}]}`,
			[]string{"event 0", "until", "2 parsecs"}},
		{"top-level type error names the field",
			`{"max_attempts": "eight", "events": []}`,
			[]string{"parse plan", `field "max_attempts"`, "int"}},
		{"top-level unknown field rejected",
			`{"naem": "typo", "events": []}`,
			[]string{"parse plan", `unknown field "naem"`, `"events"`}},
		{"non-object document",
			`[1, 2, 3]`,
			[]string{"parse plan", "(document)"}},
		{"trailing garbage",
			`{"events": []} extra`,
			[]string{"parse plan", "trailing data"}},
	}
	for _, tc := range cases {
		_, err := Parse([]byte(tc.data))
		if err == nil {
			t.Errorf("%s: want error, got nil", tc.name)
			continue
		}
		for _, w := range tc.want {
			if !strings.Contains(err.Error(), w) {
				t.Errorf("%s: error %q missing %q", tc.name, err, w)
			}
		}
	}
}

func TestValidateRejects(t *testing.T) {
	cases := []struct {
		name string
		ev   Event
		want string
	}{
		{"unknown kind", Event{Kind: "meteor", At: 1}, "unknown kind"},
		{"episodic without until", Event{Kind: Slow, At: 5, Node: 0, Speed: 0.5}, "Until"},
		{"permanent with until", Event{Kind: CoreLoss, At: 5, Until: 9, Node: 0, Cores: 1}, "Until"},
		{"node out of range", Event{Kind: Crash, At: 1, Node: 9}, "out of range"},
		{"bad speed", Event{Kind: Slow, At: 1, Until: 2, Node: 0, Speed: 1.5}, "Speed"},
		{"zero cores", Event{Kind: CoreLoss, At: 1, Node: 0}, "Cores"},
		{"self link", Event{Kind: Link, At: 1, Until: 2, Node: 1, NodeB: 1}, "peer"},
		{"drop too high", Event{Kind: Link, At: 1, Until: 2, Node: 0, NodeB: 1, Drop: 1.0}, "Drop"},
		{"apprank out of range", Event{Kind: Stall, At: 1, Until: 2, Apprank: 7}, "apprank"},
	}
	for _, tc := range cases {
		p := &Plan{Events: []Event{tc.ev}}
		err := p.Validate(4, 4)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: want error containing %q, got %v", tc.name, tc.want, err)
		}
	}
}

func TestBindSortsAndSeeds(t *testing.T) {
	p := &Plan{Events: []Event{
		{Kind: Drain, At: 30, Node: 1},
		{Kind: CoreLoss, At: 10, Node: 0, Cores: 1},
	}}
	b := p.Bind(42)
	if b.Seed != 42 || b.MaxAttempts != 16 || b.Backoff != simtime.Duration(time.Millisecond) {
		t.Fatalf("defaults not filled: %+v", b)
	}
	if b.Events[0].Kind != CoreLoss || b.Events[1].Kind != Drain {
		t.Fatalf("events not sorted by At: %+v", b.Events)
	}
	if p.Events[0].Kind != Drain {
		t.Fatal("Bind mutated the receiver")
	}
	pinned := &Plan{Seed: 7, PinSeed: true}
	if pinned.Bind(42).Seed != 7 {
		t.Fatal("PinSeed not honoured")
	}
}

func TestLinksConditionDeterministic(t *testing.T) {
	p := (&Plan{Events: []Event{
		{Kind: Link, At: 0, Until: 1000, Node: 0, NodeB: 1,
			Delay: 10, Jitter: 100, Drop: 0.3},
	}}).Bind(99)
	l := NewLinks(p)
	if l == nil {
		t.Fatal("NewLinks returned nil for a plan with a link episode")
	}
	drops := 0
	for seq := uint64(0); seq < 2000; seq++ {
		d1, drop1 := l.Condition(500, 0, 1, seq, 0)
		d2, drop2 := l.Condition(500, 1, 0, seq, 0)
		if d1 != d2 || drop1 != drop2 {
			t.Fatalf("seq %d: direction-dependent conditioning", seq)
		}
		if d1 < 10 || d1 > 110 {
			t.Fatalf("seq %d: delay %d outside [10,110]", seq, d1)
		}
		if drop1 {
			drops++
		}
	}
	// ~30% drop rate; loose bounds to stay robust to the hash.
	if drops < 400 || drops > 800 {
		t.Fatalf("drop rate off: %d/2000", drops)
	}
	// Outside the episode window: untouched.
	if d, drop := l.Condition(2000, 0, 1, 1, 0); d != 0 || drop {
		t.Fatal("conditioning applied outside episode window")
	}
	// Unrelated link pair: untouched.
	if d, drop := l.Condition(500, 0, 2, 1, 0); d != 0 || drop {
		t.Fatal("conditioning applied to unrelated link")
	}
}

func TestLinksNilForPlanWithoutLinks(t *testing.T) {
	p := (&Plan{Events: []Event{{Kind: Drain, At: 5, Node: 0}}}).Bind(1)
	if NewLinks(p) != nil {
		t.Fatal("want nil Links for a plan without link episodes")
	}
}

func TestBackoffDelay(t *testing.T) {
	l := &Links{backoff: 4}
	if got := l.BackoffDelay(1); got != 4 {
		t.Fatalf("attempt 1: got %d", got)
	}
	if got := l.BackoffDelay(3); got != 16 {
		t.Fatalf("attempt 3: got %d", got)
	}
	if got := l.BackoffDelay(40); got != 4<<16 {
		t.Fatalf("cap: got %d", got)
	}
}

func TestArmSchedulesBothEdges(t *testing.T) {
	env := simtime.NewEnv()
	p := (&Plan{Events: []Event{
		{Kind: Slow, At: 10, Until: 20, Node: 0, Speed: 0.5},
		{Kind: Drain, At: 15, Node: 1},
	}}).Bind(1)
	type edge struct {
		k  Kind
		ph Phase
		at simtime.Time
	}
	var got []edge
	Arm(env, p, func(_ int, ev Event, ph Phase) {
		got = append(got, edge{ev.Kind, ph, env.Now()})
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	want := []edge{{Slow, Inject, 10}, {Drain, Inject, 15}, {Slow, Recover, 20}}
	if len(got) != len(want) {
		t.Fatalf("want %v, got %v", want, got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("edge %d: want %v, got %v", i, want[i], got[i])
		}
	}
}

func TestPresetsValid(t *testing.T) {
	for _, name := range PresetNames() {
		p, ok := Preset(name)
		if !ok {
			t.Fatalf("preset %q missing", name)
		}
		if err := p.Validate(4, 8); err != nil {
			t.Errorf("preset %q invalid: %v", name, err)
		}
	}
	if _, ok := Preset("nope"); ok {
		t.Fatal("unknown preset resolved")
	}
}

func TestLoadRejectsUnknown(t *testing.T) {
	if _, err := Load("no-such-plan"); err == nil {
		t.Fatal("want error for unknown plan name")
	}
	if p, err := Load("slownode"); err != nil || p.Name != "slownode" {
		t.Fatalf("preset load failed: %v %v", p, err)
	}
}
