package faults

import "ompsscluster/internal/simtime"

// splitmix64 is the finaliser of the SplitMix64 generator: a cheap,
// high-quality 64-bit mixing function.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Hash64 folds the words into a single uniform uint64, mixing after
// every word so field order matters.
func Hash64(words ...uint64) uint64 {
	h := uint64(0x2545f4914f6cdd1d)
	for _, w := range words {
		h = splitmix64(h ^ w)
	}
	return h
}

// Uniform01 maps a hash onto [0,1) with 53-bit resolution.
func Uniform01(h uint64) float64 {
	return float64(h>>11) / (1 << 53)
}

// Salts separating the hash domains of independent decisions.
const (
	saltDrop   = 0x11
	saltJitter = 0x22
)

// Links conditions point-to-point traffic according to the link
// episodes of a bound plan. It is stateless apart from the episode
// list, so concurrent runs (one Links each) never interact.
type Links struct {
	seed        uint64
	episodes    []Event // Kind == Link only
	maxAttempts int
	backoff     simtime.Duration
}

// NewLinks extracts the link episodes from a bound plan. Returns nil
// when the plan has none, so callers can nil-check to skip conditioning
// entirely.
func NewLinks(p *Plan) *Links {
	var eps []Event
	for _, ev := range p.Events {
		if ev.Kind == Link {
			eps = append(eps, ev)
		}
	}
	if len(eps) == 0 {
		return nil
	}
	return &Links{seed: p.Seed, episodes: eps, maxAttempts: p.MaxAttempts, backoff: p.Backoff}
}

// matches reports whether the episode conditions traffic between a and
// b (either direction) at virtual time now.
func (ev *Event) matches(now simtime.Time, a, b int) bool {
	if simtime.Time(ev.At) > now || now >= simtime.Time(ev.Until) {
		return false
	}
	return (ev.Node == a && ev.NodeB == b) || (ev.Node == b && ev.NodeB == a)
}

// Condition returns the extra latency for one delivery attempt of
// message seq between nodes a and b at virtual time now, and whether
// the attempt is dropped. Both are pure functions of (seed, seq,
// attempt) so replays and parallel sweeps agree bit-for-bit.
func (l *Links) Condition(now simtime.Time, a, b int, seq uint64, attempt int) (extra simtime.Duration, drop bool) {
	for i := range l.episodes {
		ev := &l.episodes[i]
		if !ev.matches(now, a, b) {
			continue
		}
		extra += ev.Delay
		if ev.Jitter > 0 {
			h := Hash64(l.seed, saltJitter, uint64(i), seq, uint64(attempt))
			extra += simtime.Duration(Uniform01(h) * float64(ev.Jitter))
		}
		if ev.Drop > 0 {
			h := Hash64(l.seed, saltDrop, uint64(i), seq, uint64(attempt))
			if Uniform01(h) < ev.Drop {
				drop = true
			}
		}
	}
	return extra, drop
}

// MaxAttempts is the send-attempt budget before a message is abandoned
// (the deadlock detector then names the receiver left blocked).
func (l *Links) MaxAttempts() int { return l.maxAttempts }

// BackoffDelay is the exponential resend backoff before attempt n
// (n ≥ 1): base << (n-1), capped to keep the shift sane.
func (l *Links) BackoffDelay(attempt int) simtime.Duration {
	shift := attempt - 1
	if shift < 0 {
		shift = 0
	}
	if shift > 16 {
		shift = 16
	}
	return l.backoff << uint(shift)
}
