// Package faults provides a deterministic, seed-driven fault-plan
// subsystem for the simulator: a Plan is a list of virtual-time events
// (node slowdowns, permanent core loss, flaky-link episodes, apprank
// stalls, node crashes and helper drains) parsed from JSON or chosen
// from a named preset, then armed on a simtime.Env by the runtime.
//
// Determinism is by construction: every event fires at a fixed virtual
// time, and every probabilistic decision (message drop, link jitter) is
// a pure function of (plan seed, link sequence number, attempt) via a
// splitmix64-style hash — there is no shared RNG state, so outcomes are
// identical regardless of host, wall-clock, or sweep parallelism.
package faults

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"sort"
	"strings"
	"time"

	"ompsscluster/internal/simtime"
)

// Kind names one fault event type.
type Kind string

const (
	// Slow multiplies a node's speed by Speed over [At, Until).
	Slow Kind = "slow"
	// CoreLoss permanently removes Cores cores from a node at At.
	CoreLoss Kind = "coreloss"
	// Link conditions messages between Node and NodeB over [At, Until):
	// fixed Delay, hashed Jitter, and probabilistic Drop per delivery.
	Link Kind = "link"
	// Stall freezes task dispatch for one apprank over [At, Until).
	Stall Kind = "stall"
	// Crash kills a node at At: every apprank homed there aborts (its
	// whole application is torn down, MPI job-abort style) and work
	// offloaded to the node by surviving appranks is recovered.
	Crash Kind = "crash"
	// Drain kills only the helper workers on a node at At: appranks
	// homed elsewhere lose their worker there and re-offload its work;
	// appranks homed on the node keep running.
	Drain Kind = "drain"
)

// Episodic reports whether the kind has a recovery edge (Until).
func (k Kind) Episodic() bool {
	return k == Slow || k == Link || k == Stall
}

func (k Kind) valid() bool {
	switch k {
	case Slow, CoreLoss, Link, Stall, Crash, Drain:
		return true
	}
	return false
}

// Event is one scheduled fault. Which fields are meaningful depends on
// Kind; Validate enforces the per-kind contract.
type Event struct {
	Kind    Kind
	At      simtime.Duration // virtual time of injection
	Until   simtime.Duration // recovery time (episodic kinds only)
	Node    int              // target node (slow/coreloss/link/crash/drain)
	NodeB   int              // link peer (link only)
	Apprank int              // target apprank (stall only)
	Speed   float64          // speed multiplier in (0,1] (slow only)
	Cores   int              // cores removed (coreloss only)
	Delay   simtime.Duration // fixed extra latency (link only)
	Jitter  simtime.Duration // max hashed extra latency (link only)
	Drop    float64          // per-delivery drop probability in [0,1) (link only)
}

// Phase distinguishes the two edges of an episodic event.
type Phase int

const (
	Inject Phase = iota
	Recover
)

func (p Phase) String() string {
	if p == Recover {
		return "recover"
	}
	return "inject"
}

// Plan is an ordered set of fault events plus the retry policy for
// dropped messages. Seed is mixed into every hashed decision; the
// runtime overwrites it with the run seed via Bind unless the plan
// pins PinSeed.
type Plan struct {
	Name        string
	Seed        uint64
	PinSeed     bool             // keep Plan.Seed instead of the run seed
	MaxAttempts int              // send attempts before abandoning (default 16)
	Backoff     simtime.Duration // base resend backoff (default 1ms)
	Events      []Event
}

// Bind returns a copy of the plan expanded with the run seed: defaults
// filled, events sorted by (At, original index), and Seed set to the
// run seed unless pinned. The receiver is not modified, so one parsed
// plan may be bound by many concurrent sweep runs.
func (p *Plan) Bind(runSeed int64) *Plan {
	b := *p
	if !b.PinSeed {
		b.Seed = uint64(runSeed)
	}
	if b.MaxAttempts <= 0 {
		b.MaxAttempts = 16
	}
	if b.Backoff <= 0 {
		b.Backoff = simtime.Duration(time.Millisecond)
	}
	b.Events = make([]Event, len(p.Events))
	copy(b.Events, p.Events)
	sort.SliceStable(b.Events, func(i, j int) bool { return b.Events[i].At < b.Events[j].At })
	return &b
}

// Validate checks the per-kind field contract against a machine of
// numNodes nodes and numAppranks appranks.
func (p *Plan) Validate(numNodes, numAppranks int) error {
	for i, ev := range p.Events {
		if err := ev.validate(numNodes, numAppranks); err != nil {
			return fmt.Errorf("faults: event %d: %w", i, err)
		}
	}
	if p.MaxAttempts < 0 {
		return fmt.Errorf("faults: negative MaxAttempts %d", p.MaxAttempts)
	}
	if p.Backoff < 0 {
		return fmt.Errorf("faults: negative Backoff %d", p.Backoff)
	}
	return nil
}

func (ev Event) validate(numNodes, numAppranks int) error {
	if !ev.Kind.valid() {
		return fmt.Errorf("unknown kind %q", ev.Kind)
	}
	if ev.At < 0 {
		return fmt.Errorf("%s: negative At", ev.Kind)
	}
	if ev.Kind.Episodic() {
		if ev.Until <= ev.At {
			return fmt.Errorf("%s: Until (%d) must be after At (%d)", ev.Kind, ev.Until, ev.At)
		}
	} else if ev.Until != 0 {
		return fmt.Errorf("%s: Until is only valid for episodic kinds", ev.Kind)
	}
	needNode := ev.Kind != Stall
	if needNode && (ev.Node < 0 || ev.Node >= numNodes) {
		return fmt.Errorf("%s: node %d out of range [0,%d)", ev.Kind, ev.Node, numNodes)
	}
	switch ev.Kind {
	case Slow:
		if !(ev.Speed > 0 && ev.Speed <= 1) {
			return fmt.Errorf("slow: Speed %g not in (0,1]", ev.Speed)
		}
	case CoreLoss:
		if ev.Cores <= 0 {
			return fmt.Errorf("coreloss: Cores %d must be positive", ev.Cores)
		}
	case Link:
		if ev.NodeB < 0 || ev.NodeB >= numNodes || ev.NodeB == ev.Node {
			return fmt.Errorf("link: peer %d invalid for node %d", ev.NodeB, ev.Node)
		}
		if ev.Delay < 0 || ev.Jitter < 0 {
			return fmt.Errorf("link: negative Delay/Jitter")
		}
		if ev.Drop < 0 || ev.Drop >= 1 {
			return fmt.Errorf("link: Drop %g not in [0,1)", ev.Drop)
		}
	case Stall:
		if ev.Apprank < 0 || ev.Apprank >= numAppranks {
			return fmt.Errorf("stall: apprank %d out of range [0,%d)", ev.Apprank, numAppranks)
		}
	}
	return nil
}

// Arm schedules apply(idx, ev, phase) for every event in the plan: the
// inject edge at ev.At and, for episodic kinds, the recovery edge at
// ev.Until. idx is the event's position in the plan (a stable identity
// that pairs the two edges in traces). Events are armed in plan order,
// so same-timestamp events fire in plan order (the engine is FIFO
// within a timestamp).
func Arm(env *simtime.Env, p *Plan, apply func(idx int, ev Event, phase Phase)) {
	for i, ev := range p.Events {
		i, ev := i, ev
		env.At(simtime.Time(ev.At), func() { apply(i, ev, Inject) })
		if ev.Kind.Episodic() {
			env.At(simtime.Time(ev.Until), func() { apply(i, ev, Recover) })
		}
	}
}

// jsonEvent is the wire format of one event: durations are Go
// duration strings ("250ms", "1.5s") so plans are human-writable.
type jsonEvent struct {
	Kind    string  `json:"kind"`
	At      string  `json:"at"`
	Until   string  `json:"until,omitempty"`
	Node    int     `json:"node,omitempty"`
	NodeB   int     `json:"node_b,omitempty"`
	Apprank int     `json:"apprank,omitempty"`
	Speed   float64 `json:"speed,omitempty"`
	Cores   int     `json:"cores,omitempty"`
	Delay   string  `json:"delay,omitempty"`
	Jitter  string  `json:"jitter,omitempty"`
	Drop    float64 `json:"drop,omitempty"`
}

func parseDur(field, s string) (simtime.Duration, error) {
	if s == "" {
		return 0, nil
	}
	d, err := time.ParseDuration(s)
	if err != nil {
		return 0, fmt.Errorf("faults: bad %s duration %q: %w", field, s, err)
	}
	return simtime.Duration(d), nil
}

// describeJSONError turns encoding/json's errors into something a plan
// author (or an HTTP 400 from the job server) can act on: type errors
// name the offending field and the value's actual JSON type, unknown
// fields come back with the valid field list.
func describeJSONError(err error, validFields string) error {
	var te *json.UnmarshalTypeError
	if errors.As(err, &te) {
		field := te.Field
		if field == "" {
			field = "(document)"
		}
		return fmt.Errorf("field %q: got JSON %s, want %s", field, te.Value, te.Type)
	}
	if msg := err.Error(); strings.HasPrefix(msg, "json: unknown field ") {
		return fmt.Errorf("%s (valid fields: %s)", strings.TrimPrefix(msg, "json: "), validFields)
	}
	return err
}

const (
	planFields  = `"name", "seed", "max_attempts", "backoff", "events"`
	eventFields = `"kind", "at", "until", "node", "node_b", "apprank", "speed", "cores", "delay", "jitter", "drop"`
)

// decodeStrict unmarshals data into v, rejecting unknown fields and
// trailing garbage.
func decodeStrict(data []byte, v any, validFields string) error {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return describeJSONError(err, validFields)
	}
	if dec.More() {
		return fmt.Errorf("trailing data after the JSON document")
	}
	return nil
}

// Parse decodes a JSON fault plan. Field syntax is checked here —
// errors name the offending event index and field, and unknown fields
// are rejected so a typo ("nodeb" for "node_b") cannot silently arm a
// different plan than the author wrote — while semantic checks against
// a concrete machine happen in Validate.
func Parse(data []byte) (*Plan, error) {
	// The envelope keeps events raw so each one can be decoded — and
	// blamed — individually by index.
	var envelope struct {
		Name        string            `json:"name"`
		Seed        *uint64           `json:"seed"`
		MaxAttempts int               `json:"max_attempts"`
		Backoff     string            `json:"backoff"`
		Events      []json.RawMessage `json:"events"`
	}
	if err := decodeStrict(data, &envelope, planFields); err != nil {
		return nil, fmt.Errorf("faults: parse plan: %w", err)
	}
	p := &Plan{Name: envelope.Name, MaxAttempts: envelope.MaxAttempts}
	if envelope.Seed != nil {
		p.Seed = *envelope.Seed
		p.PinSeed = true
	}
	var err error
	if p.Backoff, err = parseDur("backoff", envelope.Backoff); err != nil {
		return nil, err
	}
	for i, raw := range envelope.Events {
		var je jsonEvent
		if err := decodeStrict(raw, &je, eventFields); err != nil {
			return nil, fmt.Errorf("faults: event %d: %w", i, err)
		}
		ev := Event{
			Kind:    Kind(je.Kind),
			Node:    je.Node,
			NodeB:   je.NodeB,
			Apprank: je.Apprank,
			Speed:   je.Speed,
			Cores:   je.Cores,
			Drop:    je.Drop,
		}
		if ev.At, err = parseDur("at", je.At); err != nil {
			return nil, fmt.Errorf("faults: event %d: %w", i, err)
		}
		if ev.Until, err = parseDur("until", je.Until); err != nil {
			return nil, fmt.Errorf("faults: event %d: %w", i, err)
		}
		if ev.Delay, err = parseDur("delay", je.Delay); err != nil {
			return nil, fmt.Errorf("faults: event %d: %w", i, err)
		}
		if ev.Jitter, err = parseDur("jitter", je.Jitter); err != nil {
			return nil, fmt.Errorf("faults: event %d: %w", i, err)
		}
		p.Events = append(p.Events, ev)
	}
	return p, nil
}

// Load reads a plan from a JSON file or, failing a file of that name,
// from the preset table.
func Load(nameOrPath string) (*Plan, error) {
	if data, err := os.ReadFile(nameOrPath); err == nil {
		return Parse(data)
	} else if p, ok := Preset(nameOrPath); ok {
		return p, nil
	} else {
		return nil, fmt.Errorf("faults: %q is neither a readable plan file (%v) nor a preset (have: %v)", nameOrPath, err, PresetNames())
	}
}

const ms = simtime.Duration(time.Millisecond)

// presets are small plans sized for the quick experiment scale (runs of
// a few hundred virtual milliseconds on a 4-node machine).
var presets = map[string]*Plan{
	"slownode": {
		Name: "slownode",
		Events: []Event{
			{Kind: Slow, At: 20 * ms, Until: 120 * ms, Node: 1, Speed: 0.4},
		},
	},
	"flakylink": {
		Name: "flakylink",
		Events: []Event{
			{Kind: Link, At: 10 * ms, Until: 150 * ms, Node: 0, NodeB: 1,
				Delay: ms / 4, Jitter: ms / 2, Drop: 0.05},
		},
	},
	"coreloss": {
		Name: "coreloss",
		Events: []Event{
			{Kind: CoreLoss, At: 30 * ms, Node: 2, Cores: 2},
		},
	},
	"drainhelper": {
		Name: "drainhelper",
		Events: []Event{
			{Kind: Drain, At: 25 * ms, Node: 3},
		},
	},
	"crashnode": {
		Name: "crashnode",
		Events: []Event{
			{Kind: Crash, At: 25 * ms, Node: 3},
		},
	},
	"storm": {
		Name: "storm",
		Events: []Event{
			{Kind: Slow, At: 10 * ms, Until: 200 * ms, Node: 1, Speed: 0.5},
			{Kind: Link, At: 15 * ms, Until: 180 * ms, Node: 0, NodeB: 2,
				Delay: ms / 4, Jitter: ms, Drop: 0.08},
			{Kind: CoreLoss, At: 40 * ms, Node: 2, Cores: 1},
			{Kind: Drain, At: 60 * ms, Node: 3},
		},
	},
}

// Preset returns a copy of the named built-in plan.
func Preset(name string) (*Plan, bool) {
	p, ok := presets[name]
	if !ok {
		return nil, false
	}
	cp := *p
	cp.Events = append([]Event(nil), p.Events...)
	return &cp, true
}

// PresetNames lists the built-in plans, sorted.
func PresetNames() []string {
	names := make([]string, 0, len(presets))
	for n := range presets {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
