// Package simtime implements a deterministic discrete-event simulation
// engine with virtual time.
//
// The engine provides two complementary execution styles:
//
//   - Callback events: functions scheduled at a virtual time with
//     Env.Schedule or Env.At. These are the building block for event-driven
//     state machines such as the task runtime.
//
//   - Processes: goroutines created with Env.Spawn that block in virtual
//     time (Proc.Sleep, Proc.Wait, Queue.Pop). Exactly one process runs at
//     any moment; the engine and the running process hand control back and
//     forth over channels, so no locking is needed on simulation state.
//     Processes make it natural to write SPMD rank programs that call
//     blocking message-passing operations.
//
// Determinism: events are ordered by (time, insertion sequence), so two
// runs of the same program observe identical interleavings.
package simtime

import (
	"container/heap"
	"fmt"
	"sort"
)

// Time is an absolute virtual time in nanoseconds since the start of the
// simulation.
type Time int64

// Duration is a span of virtual time in nanoseconds.
type Duration int64

// Common durations, mirroring package time.
const (
	Nanosecond  Duration = 1
	Microsecond          = 1000 * Nanosecond
	Millisecond          = 1000 * Microsecond
	Second               = 1000 * Millisecond
)

// Forever is a sentinel meaning "run until the event queue drains".
const Forever Time = 1<<63 - 1

// Seconds reports d as a floating-point number of seconds.
func (d Duration) Seconds() float64 { return float64(d) / float64(Second) }

// Seconds reports t as a floating-point number of seconds since the start
// of the simulation.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// FromSeconds converts a floating-point number of seconds to a Duration.
func FromSeconds(s float64) Duration { return Duration(s * float64(Second)) }

func (d Duration) String() string {
	return fmt.Sprintf("%.6fs", d.Seconds())
}

func (t Time) String() string {
	return fmt.Sprintf("t=%.6fs", t.Seconds())
}

// item is a scheduled callback in the event heap.
type item struct {
	t   Time
	seq uint64
	fn  func()
}

type eventHeap []*item

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].t != h[j].t {
		return h[i].t < h[j].t
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(*item)) }
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	it := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return it
}

// Env is a discrete-event simulation environment. It is not safe for
// concurrent use from multiple goroutines except through the process
// handshake protocol (see Proc).
type Env struct {
	now   Time
	seq   uint64
	pq    eventHeap
	yield chan struct{}
	procs map[*Proc]struct{}
	fail  error
	nstep uint64
}

// NewEnv returns a fresh simulation environment at time zero.
func NewEnv() *Env {
	return &Env{
		yield: make(chan struct{}),
		procs: make(map[*Proc]struct{}),
	}
}

// Now returns the current virtual time.
func (e *Env) Now() Time { return e.now }

// Steps returns the number of events executed so far. Useful for
// determinism tests and run statistics.
func (e *Env) Steps() uint64 { return e.nstep }

// At schedules fn to run at absolute virtual time t. Scheduling in the past
// panics: a discrete-event simulation cannot rewind.
func (e *Env) At(t Time, fn func()) {
	if t < e.now {
		panic(fmt.Sprintf("simtime: scheduling at %v before now %v", t, e.now))
	}
	e.seq++
	heap.Push(&e.pq, &item{t: t, seq: e.seq, fn: fn})
}

// Schedule schedules fn to run d after the current time. A negative d
// panics.
func (e *Env) Schedule(d Duration, fn func()) {
	if d < 0 {
		panic(fmt.Sprintf("simtime: negative delay %v", d))
	}
	e.At(e.now+Time(d), fn)
}

// Periodic runs fn at now+start and then every period thereafter, for as
// long as fn returns true.
func (e *Env) Periodic(start, period Duration, fn func() bool) {
	if period <= 0 {
		panic("simtime: Periodic requires a positive period")
	}
	var tick func()
	tick = func() {
		if fn() {
			e.Schedule(period, tick)
		}
	}
	e.Schedule(start, tick)
}

// Step executes the earliest pending event, advancing virtual time to its
// timestamp. It reports whether an event was executed.
func (e *Env) Step() bool {
	if len(e.pq) == 0 || e.fail != nil {
		return false
	}
	it := heap.Pop(&e.pq).(*item)
	e.now = it.t
	e.nstep++
	it.fn()
	return true
}

// Run executes events until the queue drains or a process panics. It
// returns the first process failure, if any.
func (e *Env) Run() error { return e.RunUntil(Forever) }

// RunUntil executes events with timestamps <= t. The clock does not advance
// past the last executed event. It returns the first process failure, if
// any.
func (e *Env) RunUntil(t Time) error {
	for len(e.pq) > 0 && e.pq[0].t <= t && e.fail == nil {
		e.Step()
	}
	return e.fail
}

// Pending reports the number of scheduled events not yet executed.
func (e *Env) Pending() int { return len(e.pq) }

// LiveProcs returns the names of processes that have been spawned and have
// not yet finished, in spawn order. After Run drains the queue, a
// non-empty result indicates processes blocked forever (a deadlock in the
// simulated program). Spawn order keeps the deadlock report — and thus
// error paths — as deterministic as the package's happy path.
func (e *Env) LiveProcs() []string {
	live := make([]*Proc, 0, len(e.procs))
	for p := range e.procs {
		live = append(live, p)
	}
	sort.Slice(live, func(i, j int) bool { return live[i].id < live[j].id })
	names := make([]string, len(live))
	for i, p := range live {
		names[i] = p.name
	}
	return names
}

// KillAll forcibly terminates all live processes. Each parked process is
// unblocked and its goroutine exits; deferred functions in process bodies
// run. Use this to tear down a simulation with blocked processes (for
// example, server loops) once the interesting work is done.
func (e *Env) KillAll() {
	for len(e.procs) > 0 {
		var p *Proc
		for q := range e.procs {
			if p == nil || q.id < p.id {
				p = q
			}
		}
		p.kill()
	}
}

// Err returns the first process failure observed, or nil.
func (e *Env) Err() error { return e.fail }
