// Package simtime implements a deterministic discrete-event simulation
// engine with virtual time.
//
// The engine provides three complementary execution styles:
//
//   - Callback events: functions scheduled at a virtual time with
//     Env.Schedule or Env.At. These are the building block for event-driven
//     state machines such as the task runtime.
//
//   - Goroutine processes: goroutines created with Env.Spawn that block in
//     virtual time (Proc.Sleep, Proc.Wait, Queue.Pop). Exactly one process
//     runs at any moment; the engine and the running process hand control
//     back and forth over channels, so no locking is needed on simulation
//     state. Processes make it natural to write SPMD rank programs that
//     call blocking message-passing operations.
//
//   - Continuation processes: CProcs created with Env.SpawnC that block by
//     registering a continuation (SleepThen, WaitThen, PopThen, ParkThen)
//     and run entirely on the event-loop goroutine, with zero channel
//     handoffs per park/wake. CProcs share the synchronization structures,
//     wake ordering, deadlock diagnostics and teardown order with Procs;
//     they are the cheap flavor for runtime-internal state machines, while
//     goroutine procs keep workload code imperative.
//
// Determinism: events are ordered by (time, insertion sequence), so two
// runs of the same program observe identical interleavings.
//
// The scheduler keeps two structures. Events in the future live in a
// value-based binary min-heap ordered by (time, sequence); storing items
// by value means steady-state scheduling performs no per-event
// allocation. Events scheduled at exactly the current time — the dominant
// case, produced by task-completion cascades, process wake-ups and
// message deliveries — go to a FIFO ring (the "now queue") and bypass the
// heap entirely. Because sequence numbers increase monotonically, the
// ring is always sorted and the next event is simply whichever of the
// ring head and heap root has the smaller (time, sequence) key.
package simtime

import (
	"fmt"
	"sort"
)

// Time is an absolute virtual time in nanoseconds since the start of the
// simulation.
type Time int64

// Duration is a span of virtual time in nanoseconds.
type Duration int64

// Common durations, mirroring package time.
const (
	Nanosecond  Duration = 1
	Microsecond          = 1000 * Nanosecond
	Millisecond          = 1000 * Microsecond
	Second               = 1000 * Millisecond
)

// Forever is a sentinel meaning "run until the event queue drains".
const Forever Time = 1<<63 - 1

// Seconds reports d as a floating-point number of seconds.
func (d Duration) Seconds() float64 { return float64(d) / float64(Second) }

// Seconds reports t as a floating-point number of seconds since the start
// of the simulation.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// FromSeconds converts a floating-point number of seconds to a Duration.
func FromSeconds(s float64) Duration { return Duration(s * float64(Second)) }

func (d Duration) String() string {
	return fmt.Sprintf("%.6fs", d.Seconds())
}

func (t Time) String() string {
	return fmt.Sprintf("t=%.6fs", t.Seconds())
}

// item is a scheduled callback. Items are stored by value in both the
// heap and the now queue, so scheduling allocates nothing once the
// backing slices have grown to the simulation's working set.
type item struct {
	t   Time
	seq uint64
	fn  func()
}

// before reports whether a precedes b in (time, sequence) order.
func (a item) before(b item) bool {
	if a.t != b.t {
		return a.t < b.t
	}
	return a.seq < b.seq
}

// Env is a discrete-event simulation environment. It is not safe for
// concurrent use from multiple goroutines except through the process
// handshake protocol (see Proc).
type Env struct {
	now Time
	seq uint64

	pq []item // future events: value min-heap by (t, seq)

	// nowQ is the same-timestamp FIFO ring: events scheduled at exactly
	// the current time, in sequence order. Time cannot advance while it
	// is non-empty, so every entry satisfies t == now.
	nowQ    []item
	nowHead int

	// batch is a reusable buffer for popping all heap events that share
	// the minimum timestamp in one go.
	batch []item

	yield chan struct{}
	procs map[process]struct{}
	fail  error

	nstep uint64 // events executed
	nfast uint64 // events executed through the now queue
	npush uint64 // events that went through the heap

	npark    uint64 // process blocks (Park/Sleep and the *Then primitives)
	nwake    uint64 // scheduled process resumptions
	ngoro    int    // goroutine-backed processes currently running
	peakGoro int    // high-water mark of ngoro

	// Parallel-engine attachment (nil/zero for standalone environments).
	// eng points at the coordinating Engine, eidx is this environment's
	// index within it (partitions first, global last), and out is the
	// outbox of cross-partition sends staged during the current window,
	// merged deterministically at the window boundary.
	eng    *Engine
	eidx   int
	out    []outEvent
	outSeq uint64
}

// NewEnv returns a fresh simulation environment at time zero.
func NewEnv() *Env {
	return &Env{
		yield: make(chan struct{}),
		procs: make(map[process]struct{}),
	}
}

// Now returns the current virtual time.
func (e *Env) Now() Time { return e.now }

// CtxNow returns the current virtual time of the calling context. For a
// standalone environment it is identical to Now. For a partition of a
// parallel Engine it is the later of the partition clock and the global
// clock: during partition execution the executing event's time is >= the
// last global (barrier) event, and during barrier execution the global
// clock is >= every quiesced partition clock — so max(own, global) is
// the correct "now" in both contexts. Code that schedules onto an
// environment it may not currently be executing on (e.g. a global policy
// tick kicking a node's dispatcher) must use CtxNow, never Now.
func (e *Env) CtxNow() Time {
	if e.eng != nil && e.eng.global.now > e.now {
		return e.eng.global.now
	}
	return e.now
}

// peekTime returns the timestamp of the earliest pending event, if any.
func (e *Env) peekTime() (Time, bool) {
	if e.nowHead < len(e.nowQ) {
		t := e.nowQ[e.nowHead].t
		if len(e.pq) > 0 && e.pq[0].t < t {
			t = e.pq[0].t
		}
		return t, true
	}
	if len(e.pq) > 0 {
		return e.pq[0].t, true
	}
	return 0, false
}

// Steps returns the number of events executed so far. Useful for
// determinism tests and run statistics.
func (e *Env) Steps() uint64 { return e.nstep }

// At schedules fn to run at absolute virtual time t. Scheduling in the past
// panics: a discrete-event simulation cannot rewind.
func (e *Env) At(t Time, fn func()) {
	if t < e.now {
		panic(fmt.Sprintf("simtime: scheduling at %v before now %v", t, e.now))
	}
	e.seq++
	if t == e.now {
		e.nowQ = append(e.nowQ, item{t: t, seq: e.seq, fn: fn})
		return
	}
	e.heapPush(item{t: t, seq: e.seq, fn: fn})
}

// Schedule schedules fn to run d after the current time. A negative d
// panics.
func (e *Env) Schedule(d Duration, fn func()) {
	if d < 0 {
		panic(fmt.Sprintf("simtime: negative delay %v", d))
	}
	e.At(e.now+Time(d), fn)
}

// Periodic runs fn at now+start and then every period thereafter, for as
// long as fn returns true.
func (e *Env) Periodic(start, period Duration, fn func() bool) {
	if period <= 0 {
		panic("simtime: Periodic requires a positive period")
	}
	var tick func()
	tick = func() {
		if fn() {
			e.Schedule(period, tick)
		}
	}
	e.Schedule(start, tick)
}

// The future-event heap is 4-ary: half the depth of a binary heap, so
// pops touch half as many cache lines, at the price of comparing up to
// four children per level (they sit in adjacent memory, so the extra
// comparisons are nearly free). The ordering key (t, seq) is a strict
// total order — seq is unique — so extraction order, and therefore every
// simulation result, is identical to the binary heap's.

// heapPush inserts it into the future-event heap.
func (e *Env) heapPush(it item) {
	e.npush++
	pq := append(e.pq, it)
	i := len(pq) - 1
	for i > 0 {
		parent := (i - 1) / 4
		if !pq[i].before(pq[parent]) {
			break
		}
		pq[i], pq[parent] = pq[parent], pq[i]
		i = parent
	}
	e.pq = pq
}

// heapPop removes and returns the minimum heap item. The heap must be
// non-empty.
func (e *Env) heapPop() item {
	pq := e.pq
	top := pq[0]
	n := len(pq) - 1
	pq[0] = pq[n]
	pq[n] = item{} // release the closure
	pq = pq[:n]
	i := 0
	for {
		l := 4*i + 1
		if l >= n {
			break
		}
		m := l
		hi := l + 4
		if hi > n {
			hi = n
		}
		for c := l + 1; c < hi; c++ {
			if pq[c].before(pq[m]) {
				m = c
			}
		}
		if !pq[m].before(pq[i]) {
			break
		}
		pq[i], pq[m] = pq[m], pq[i]
		i = m
	}
	e.pq = pq
	return top
}

// popNow removes and returns the head of the now queue, which must be
// non-empty.
func (e *Env) popNow() item {
	it := e.nowQ[e.nowHead]
	e.nowQ[e.nowHead] = item{} // release the closure
	e.nowHead++
	if e.nowHead == len(e.nowQ) {
		e.nowQ = e.nowQ[:0]
		e.nowHead = 0
	}
	e.nfast++
	return it
}

// next removes and returns the earliest pending event: the now-queue head
// unless the heap root carries an equal-time event scheduled earlier.
func (e *Env) next() (item, bool) {
	if e.nowHead < len(e.nowQ) {
		if len(e.pq) == 0 || !e.pq[0].before(e.nowQ[e.nowHead]) {
			return e.popNow(), true
		}
	}
	if len(e.pq) > 0 {
		return e.heapPop(), true
	}
	return item{}, false
}

// Step executes the earliest pending event, advancing virtual time to its
// timestamp. It reports whether an event was executed.
func (e *Env) Step() bool {
	if e.fail != nil {
		return false
	}
	it, ok := e.next()
	if !ok {
		return false
	}
	e.now = it.t
	e.nstep++
	it.fn()
	return true
}

// Run executes events until the queue drains or a process panics. It
// returns the first process failure, if any.
func (e *Env) Run() error { return e.RunUntil(Forever) }

// RunUntil executes events with timestamps <= t. The clock does not advance
// past the last executed event. It returns the first process failure, if
// any.
func (e *Env) RunUntil(t Time) error {
	for e.fail == nil {
		// Same-time fast path: the ring head is next unless the heap
		// holds an equal-time event scheduled earlier. Ring entries are
		// at e.now; the explicit bound matters only when the caller
		// passes a limit below the current time.
		if e.nowHead < len(e.nowQ) && e.now <= t {
			if len(e.pq) == 0 || !e.pq[0].before(e.nowQ[e.nowHead]) {
				it := e.popNow()
				e.nstep++
				it.fn()
				continue
			}
			// An equal-time heap event precedes the ring head; pop just
			// that one (batching would overtake ring entries whose
			// sequence numbers fall inside the batch).
			it := e.heapPop()
			e.now = it.t
			e.nstep++
			it.fn()
			continue
		}
		if len(e.pq) == 0 || e.pq[0].t > t {
			break
		}
		// Batch-pop heap events at the minimum timestamp. All of them
		// precede anything scheduled while the batch executes (newer
		// events carry higher sequence numbers), so the whole batch runs
		// before the scheduler looks at the structures again. The batch
		// is capped so a mass of equal-time events (for example a
		// broadcast delivering to every rank at once) cannot balloon the
		// buffer; leftovers drain on the next loop iterations.
		const maxBatch = 64
		it := e.heapPop()
		e.now = it.t
		batch := e.batch[:0]
		for len(e.pq) > 0 && e.pq[0].t == it.t && len(batch) < maxBatch {
			batch = append(batch, e.heapPop())
		}
		e.nstep++
		it.fn()
		for i := range batch {
			if e.fail != nil {
				// Preserve unexecuted events for Pending/post-mortem.
				for _, rest := range batch[i:] {
					e.npush-- // re-push is not a new event
					e.heapPush(rest)
				}
				break
			}
			e.nstep++
			batch[i].fn()
			batch[i] = item{}
		}
		e.batch = batch[:0]
	}
	return e.fail
}

// Pending reports the number of scheduled events not yet executed.
func (e *Env) Pending() int { return len(e.pq) + len(e.nowQ) - e.nowHead }

// LiveProcs returns the names of processes that have been spawned and have
// not yet finished, in spawn order. After Run drains the queue, a
// non-empty result indicates processes blocked forever (a deadlock in the
// simulated program). Spawn order keeps the deadlock report — and thus
// error paths — as deterministic as the package's happy path.
func (e *Env) LiveProcs() []string {
	live := e.liveByID()
	names := make([]string, len(live))
	for i, p := range live {
		names[i] = p.blocked().Name
	}
	return names
}

// liveByID returns the live processes (both flavors) sorted by spawn id.
func (e *Env) liveByID() []process {
	live := make([]process, 0, len(e.procs))
	for p := range e.procs {
		live = append(live, p)
	}
	sort.Slice(live, func(i, j int) bool { return live[i].pid() < live[j].pid() })
	return live
}

// KillAll forcibly terminates all live processes in spawn order. Each
// parked process is unblocked and its goroutine exits; deferred functions
// in process bodies run. Use this to tear down a simulation with blocked
// processes (for example, server loops) once the interesting work is
// done. The outer loop re-collects survivors so processes spawned by
// teardown code are killed too.
func (e *Env) KillAll() {
	for len(e.procs) > 0 {
		for _, p := range e.liveByID() {
			// A kill can run deferred cleanup that retires other
			// processes; skip the ones already gone.
			if _, ok := e.procs[p]; ok {
				p.kill()
			}
		}
	}
}

// Err returns the first process failure observed, or nil.
func (e *Env) Err() error { return e.fail }
