package simtime

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// EngineStats are one environment's event-engine counters. All values are
// deterministic functions of the simulated program: two runs of the same
// program report identical stats.
type EngineStats struct {
	// Events is the number of events executed (same as Steps).
	Events uint64
	// FastPath counts events that ran through the same-timestamp FIFO,
	// bypassing the heap.
	FastPath uint64
	// HeapPushes counts events that went through the future-event heap.
	HeapPushes uint64
	// Parks counts process blocks: Proc.Park/Sleep and the continuation
	// primitives ParkThen/SleepThen/WaitThen/PopThen.
	Parks uint64
	// Wakes counts scheduled process resumptions (WakeProc/WakeCProc,
	// Event triggers reaching waiters, Queue pushes, sleep timers).
	Wakes uint64
	// PeakGoroutines is the maximum number of goroutine-backed processes
	// live at once. Continuation processes never appear here — they run
	// on the event-loop goroutine — so this gauge measures the Go
	// scheduler pressure a run exerts.
	PeakGoroutines uint64

	// Parallel-engine counters, zero for sequential environments.

	// Partitions is the number of partition environments (0 = sequential).
	Partitions uint64
	// Windows counts horizon advances: rounds in which partitions ran
	// concurrently up to the conservative horizon.
	Windows uint64
	// BarrierStalls counts windows whose horizon was clamped below
	// T+lookahead by a pending global event (policy tick, fault edge,
	// collective completion).
	BarrierStalls uint64
	// InboxEvents counts cross-environment event deliveries: outbox
	// merges at window boundaries plus barrier-context injections.
	InboxEvents uint64
}

// EngineStats returns the environment's counters so far.
func (e *Env) EngineStats() EngineStats {
	return EngineStats{
		Events:         e.nstep,
		FastPath:       e.nfast,
		HeapPushes:     e.npush,
		Parks:          e.npark,
		Wakes:          e.nwake,
		PeakGoroutines: uint64(e.peakGoro),
	}
}

// PartitionStats is one partition's scheduler profile under the
// parallel engine. Windows, StallWindows, OutboxStaged, and MaxOutbox
// are deterministic functions of the simulated program; Busy and
// BarrierWait are host wall-clock measurements (how the window fan-out
// actually spent its time on this machine) and therefore vary run to
// run — they live here, outside the deterministic EngineStats struct.
type PartitionStats struct {
	Partition    int
	Busy         time.Duration // host time executing events inside windows
	BarrierWait  time.Duration // host time finished early, waiting at the window barrier
	Windows      uint64        // windows this partition participated in
	StallWindows uint64        // participated windows clamped by a pending global event
	OutboxStaged uint64        // cross-partition sends staged
	MaxOutbox    uint64        // peak outbox depth at a window boundary
}

// RunTotals aggregates engine counters and host execution time over a set
// of simulator runs. The counters are deterministic; Host and the derived
// EventsPerSec depend on the hardware and are reported separately from
// experiment results.
type RunTotals struct {
	Runs       uint64
	Events     uint64
	FastPath   uint64
	HeapPushes uint64
	Parks      uint64
	Wakes      uint64
	// PeakGoroutines is the maximum goroutine-backed process count any
	// single run reached — a monotonic gauge, not a sum.
	PeakGoroutines uint64
	// RegistryHiWater is the maximum dependency-registry interval count
	// observed in any single run — a monotonic gauge, not a sum.
	RegistryHiWater uint64
	// Partitions is the maximum partition count any single run used —
	// a monotonic gauge, not a sum (0 = every run was sequential).
	Partitions uint64
	// Windows, BarrierStalls and InboxEvents sum the parallel-engine
	// scheduler counters over all runs.
	Windows       uint64
	BarrierStalls uint64
	InboxEvents   uint64
	// Fallbacks counts runs that requested the parallel engine but fell
	// back to sequential execution (zero lookahead, ineligible config).
	Fallbacks uint64
	Host      time.Duration
}

// EventsPerSec reports engine throughput in events per second of host
// time, or 0 if no host time was recorded.
func (t RunTotals) EventsPerSec() float64 {
	if t.Host <= 0 {
		return 0
	}
	return float64(t.Events) / t.Host.Seconds()
}

// FastPathFraction reports the fraction of events that bypassed the heap.
func (t RunTotals) FastPathFraction() float64 {
	if t.Events == 0 {
		return 0
	}
	return float64(t.FastPath) / float64(t.Events)
}

// Sub returns the totals accumulated since the snapshot prev. The
// high-water gauges are not differenced: the later (larger) snapshot
// values carry over, as gauges only ever grow.
func (t RunTotals) Sub(prev RunTotals) RunTotals {
	return RunTotals{
		Runs:            t.Runs - prev.Runs,
		Events:          t.Events - prev.Events,
		FastPath:        t.FastPath - prev.FastPath,
		HeapPushes:      t.HeapPushes - prev.HeapPushes,
		Parks:           t.Parks - prev.Parks,
		Wakes:           t.Wakes - prev.Wakes,
		PeakGoroutines:  t.PeakGoroutines,
		RegistryHiWater: t.RegistryHiWater,
		Partitions:      t.Partitions,
		Windows:         t.Windows - prev.Windows,
		BarrierStalls:   t.BarrierStalls - prev.BarrierStalls,
		InboxEvents:     t.InboxEvents - prev.InboxEvents,
		Fallbacks:       t.Fallbacks - prev.Fallbacks,
		Host:            t.Host - prev.Host,
	}
}

// StatsCollector accumulates RunTotals across simulator runs. It is safe
// for concurrent use, so one collector can be shared by every run of a
// parallel sweep.
type StatsCollector struct {
	runs       atomic.Uint64
	events     atomic.Uint64
	fastPath   atomic.Uint64
	heapPushes atomic.Uint64
	parks      atomic.Uint64
	wakes      atomic.Uint64
	peakGoro   atomic.Uint64
	regHiWater atomic.Uint64
	partitions atomic.Uint64
	windows    atomic.Uint64
	stalls     atomic.Uint64
	inbox      atomic.Uint64
	fallbacks  atomic.Uint64
	hostNS     atomic.Int64

	// fallbackMu guards fallbackWhy, the distinct reasons runs fell back
	// from parallel to sequential execution (diagnostic, order-free).
	fallbackMu  sync.Mutex
	fallbackWhy map[string]uint64

	// partMu guards partStats, the per-partition profile folded by
	// partition index across runs (busy/wait/windows sum, MaxOutbox
	// takes the maximum).
	partMu    sync.Mutex
	partStats []PartitionStats
}

// NewStatsCollector returns an empty collector.
func NewStatsCollector() *StatsCollector { return &StatsCollector{} }

// Record adds one run's engine counters and host execution time. The
// per-run peak-goroutine gauge folds into the collector's maximum.
func (c *StatsCollector) Record(st EngineStats, host time.Duration) {
	if c == nil {
		return
	}
	c.runs.Add(1)
	c.events.Add(st.Events)
	c.fastPath.Add(st.FastPath)
	c.heapPushes.Add(st.HeapPushes)
	c.parks.Add(st.Parks)
	c.wakes.Add(st.Wakes)
	foldMax(&c.peakGoro, st.PeakGoroutines)
	foldMax(&c.partitions, st.Partitions)
	c.windows.Add(st.Windows)
	c.stalls.Add(st.BarrierStalls)
	c.inbox.Add(st.InboxEvents)
	c.hostNS.Add(host.Nanoseconds())
}

// RecordFallback notes one run that requested the parallel engine but
// executed sequentially, with the reason (e.g. "zero lookahead",
// "offloading degree 2").
func (c *StatsCollector) RecordFallback(reason string) {
	if c == nil {
		return
	}
	c.fallbacks.Add(1)
	c.fallbackMu.Lock()
	if c.fallbackWhy == nil {
		c.fallbackWhy = make(map[string]uint64)
	}
	c.fallbackWhy[reason]++
	c.fallbackMu.Unlock()
}

// FallbackReasons returns the distinct sequential-fallback reasons seen
// so far, sorted, each formatted "reason xN".
func (c *StatsCollector) FallbackReasons() []string {
	if c == nil {
		return nil
	}
	c.fallbackMu.Lock()
	defer c.fallbackMu.Unlock()
	out := make([]string, 0, len(c.fallbackWhy))
	for why, n := range c.fallbackWhy {
		out = append(out, fmt.Sprintf("%s x%d", why, n))
	}
	sort.Strings(out)
	return out
}

// RecordPartitions folds one parallel run's per-partition profile into
// the collector, summing by partition index (MaxOutbox folds as a
// maximum). Sequential runs record nothing.
func (c *StatsCollector) RecordPartitions(parts []PartitionStats) {
	if c == nil || len(parts) == 0 {
		return
	}
	c.partMu.Lock()
	defer c.partMu.Unlock()
	for len(c.partStats) < len(parts) {
		c.partStats = append(c.partStats, PartitionStats{Partition: len(c.partStats)})
	}
	for _, p := range parts {
		t := &c.partStats[p.Partition]
		t.Busy += p.Busy
		t.BarrierWait += p.BarrierWait
		t.Windows += p.Windows
		t.StallWindows += p.StallWindows
		t.OutboxStaged += p.OutboxStaged
		if p.MaxOutbox > t.MaxOutbox {
			t.MaxOutbox = p.MaxOutbox
		}
	}
}

// PartitionTotals returns a copy of the folded per-partition profile
// (empty if no parallel run was recorded).
func (c *StatsCollector) PartitionTotals() []PartitionStats {
	if c == nil {
		return nil
	}
	c.partMu.Lock()
	defer c.partMu.Unlock()
	return append([]PartitionStats(nil), c.partStats...)
}

// RecordRegistryHiWater folds one run's registry interval high-water
// mark into the collector's maximum.
func (c *StatsCollector) RecordRegistryHiWater(n uint64) {
	if c == nil {
		return
	}
	foldMax(&c.regHiWater, n)
}

// foldMax raises gauge to n if larger (CAS loop; order-independent, so
// parallel sweeps report the same value as sequential ones).
func foldMax(gauge *atomic.Uint64, n uint64) {
	for {
		cur := gauge.Load()
		if n <= cur || gauge.CompareAndSwap(cur, n) {
			return
		}
	}
}

// Totals returns a snapshot of the accumulated totals.
func (c *StatsCollector) Totals() RunTotals {
	if c == nil {
		return RunTotals{}
	}
	return RunTotals{
		Runs:            c.runs.Load(),
		Events:          c.events.Load(),
		FastPath:        c.fastPath.Load(),
		HeapPushes:      c.heapPushes.Load(),
		Parks:           c.parks.Load(),
		Wakes:           c.wakes.Load(),
		PeakGoroutines:  c.peakGoro.Load(),
		RegistryHiWater: c.regHiWater.Load(),
		Partitions:      c.partitions.Load(),
		Windows:         c.windows.Load(),
		BarrierStalls:   c.stalls.Load(),
		InboxEvents:     c.inbox.Load(),
		Fallbacks:       c.fallbacks.Load(),
		Host:            time.Duration(c.hostNS.Load()),
	}
}
