package simtime

import "testing"

// BenchmarkScheduleAndRun measures raw callback-event throughput.
func BenchmarkScheduleAndRun(b *testing.B) {
	e := NewEnv()
	for i := 0; i < b.N; i++ {
		e.Schedule(Duration(i%1000), func() {})
	}
	b.ResetTimer()
	if err := e.Run(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkProcContextSwitch measures the process handshake cost.
func BenchmarkProcContextSwitch(b *testing.B) {
	e := NewEnv()
	e.Spawn("p", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			p.Sleep(1)
		}
	})
	b.ResetTimer()
	if err := e.Run(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkQueuePingPong measures two processes exchanging items.
func BenchmarkQueuePingPong(b *testing.B) {
	e := NewEnv()
	q1, q2 := e.NewQueue(), e.NewQueue()
	e.Spawn("a", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			q1.Push(i)
			q2.Pop(p)
		}
	})
	e.Spawn("b", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			q1.Pop(p)
			q2.Push(i)
		}
	})
	b.ResetTimer()
	if err := e.Run(); err != nil {
		b.Fatal(err)
	}
}
