package simtime

import (
	"testing"
	"time"
)

// BenchmarkEngineHotPath models the engine's dominant workload: task
// completion cascades that schedule follow-up events at the current
// timestamp, mixed with a minority of timer-like events in the future.
// It reports events/sec of host time, the number the profiling harness
// (bench/record.sh) tracks across PRs.
func BenchmarkEngineHotPath(b *testing.B) {
	b.ReportAllocs()
	e := NewEnv()
	n := 0
	var cascade func()
	cascade = func() {
		n++
		if n >= b.N {
			return
		}
		// 7 of 8 events fire at the current time (completion cascades);
		// the rest are future timers that go through the heap.
		if n%8 == 0 {
			e.Schedule(Duration(n%97+1), cascade)
		} else {
			e.Schedule(0, cascade)
		}
	}
	// Seed a few independent cascades so the heap is never trivial.
	for i := 0; i < 4 && i < b.N; i++ {
		e.Schedule(Duration(i), cascade)
	}
	b.ResetTimer()
	start := time.Now()
	if err := e.Run(); err != nil {
		b.Fatal(err)
	}
	host := time.Since(start).Seconds()
	if host > 0 {
		b.ReportMetric(float64(n)/host, "events/sec")
	}
}

// BenchmarkScheduleAndRun measures raw callback-event throughput.
func BenchmarkScheduleAndRun(b *testing.B) {
	e := NewEnv()
	for i := 0; i < b.N; i++ {
		e.Schedule(Duration(i%1000), func() {})
	}
	b.ResetTimer()
	if err := e.Run(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkProcContextSwitch measures the process handshake cost.
func BenchmarkProcContextSwitch(b *testing.B) {
	e := NewEnv()
	e.Spawn("p", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			p.Sleep(1)
		}
	})
	b.ResetTimer()
	if err := e.Run(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkProcParkWake measures one goroutine-proc park/wake round trip:
// two channel handoffs plus the pre-bound resume event. The CI perf smoke
// fails if this reports any allocations (the resume closure is bound once
// at spawn, not per wake).
func BenchmarkProcParkWake(b *testing.B) {
	b.ReportAllocs()
	e := NewEnv()
	p := e.Spawn("parker", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			p.Park()
		}
	})
	e.Spawn("waker", func(w *Proc) {
		for i := 0; i < b.N; i++ {
			e.WakeProc(p, nil)
			w.Sleep(1)
		}
	})
	b.ResetTimer()
	if err := e.Run(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkCProcParkWake measures the continuation-proc equivalent: a
// ParkThen/wake cycle that stays on the event-loop goroutine with zero
// channel handoffs. Also pinned to 0 allocs/op by the CI perf smoke.
func BenchmarkCProcParkWake(b *testing.B) {
	b.ReportAllocs()
	e := NewEnv()
	var cp *CProc
	n := 0
	var park func(any)
	park = func(any) {
		if n < b.N {
			cp.ParkThen(park)
			return
		}
		cp.End()
	}
	cp = e.SpawnC("parker", func(cp *CProc) { cp.ParkThen(park) })
	e.Spawn("waker", func(w *Proc) {
		for ; n < b.N; n++ {
			e.WakeCProc(cp, nil)
			w.Sleep(1)
		}
		e.WakeCProc(cp, nil) // release the final park so End runs
	})
	b.ResetTimer()
	if err := e.Run(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkQueuePingPong measures two processes exchanging items.
func BenchmarkQueuePingPong(b *testing.B) {
	e := NewEnv()
	q1, q2 := e.NewQueue(), e.NewQueue()
	e.Spawn("a", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			q1.Push(i)
			q2.Pop(p)
		}
	})
	e.Spawn("b", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			q1.Pop(p)
			q2.Push(i)
		}
	})
	b.ResetTimer()
	if err := e.Run(); err != nil {
		b.Fatal(err)
	}
}
