package simtime

import (
	"fmt"
	"strings"
)

// BlockedProc describes one process left blocked after the event queue
// drained: its name plus the block reason recorded by SetBlockReason
// (empty What when the blocking site did not annotate itself).
type BlockedProc struct {
	Name string
	What string
	A, B int64
}

func (b BlockedProc) String() string {
	if b.What == "" {
		return b.Name
	}
	return fmt.Sprintf("%s (%s a=%d b=%d)", b.Name, b.What, b.A, b.B)
}

// DeadlockError is the typed error for a simulation that drained its
// event queue while processes were still blocked — for example a Recv
// whose sender was killed by a fault, or a collective missing a crashed
// participant. It carries the virtual time of the drain and a
// diagnostic dump of every blocked process in spawn order, so error
// paths are as deterministic as the happy path.
type DeadlockError struct {
	Now     Time
	Blocked []BlockedProc
}

func (d *DeadlockError) Error() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "simtime: deadlock at t=%v: %d process(es) blocked forever:", d.Now, len(d.Blocked))
	for _, b := range d.Blocked {
		sb.WriteString("\n  - ")
		sb.WriteString(b.String())
	}
	return sb.String()
}

// Deadlock returns a DeadlockError describing the currently live
// (blocked) processes, or nil if none are live. Call it after Run
// drains the queue; a non-nil result means the simulated program can
// never make progress again.
func (e *Env) Deadlock() *DeadlockError {
	live := e.liveByID()
	if len(live) == 0 {
		return nil
	}
	d := &DeadlockError{Now: e.now, Blocked: make([]BlockedProc, len(live))}
	for i, p := range live {
		d.Blocked[i] = p.blocked()
	}
	return d
}
