package simtime

import "fmt"

// process is the engine's common view of its two process flavors: the
// goroutine-backed Proc and the continuation-based CProc. LiveProcs,
// Deadlock, KillAll, Event and Queue treat the two identically, so
// converting a process between styles never changes wake ordering,
// teardown order, or diagnostic dumps.
type process interface {
	// pid is the spawn id (a sequence number), giving the deterministic
	// spawn order used by LiveProcs, Deadlock and KillAll.
	pid() uint64
	// blocked describes the process for the deadlock dump.
	blocked() BlockedProc
	// wake schedules the process to resume at the current virtual time
	// with v as the value of its pending park. Wakes go through Env.At,
	// so they are ordered by the same (time, seq) key as every other
	// event. At most one wake may be pending per process.
	wake(v any)
	// isKilled reports whether the process was forcibly terminated.
	isKilled() bool
	kill()
}

// Proc is a simulation process: a goroutine that blocks in virtual time.
// Exactly one process executes at a time; the engine resumes a process and
// waits for it to park (block) or finish before executing the next event.
// All simulation state may therefore be accessed without locks from process
// bodies and event callbacks alike.
type Proc struct {
	env    *Env
	id     uint64
	name   string
	resume chan any
	parked bool
	killed bool
	done   *Event

	// wakeFn is the pre-bound resume trampoline: every wake schedules
	// this one closure (with the value staged in wakeVal) instead of
	// allocating a fresh closure per wake. At most one wake is ever
	// pending (waking a running process deadlocks the engine), so the
	// single staging slot cannot be overwritten.
	wakeFn  func()
	wakeVal any

	// Block-reason diagnostics for the deadlock detector: what the
	// process is waiting for (a constant string, so setting it never
	// allocates) plus two free-form operands (e.g. source rank and tag
	// of a pending Recv). Purely informational.
	blockWhat string
	blockA    int64
	blockB    int64
}

// SetBlockReason records why the process is about to block, for the
// deadlock diagnostic dump. what must be a constant string (the hot
// paths rely on this costing nothing); a and b are operation-specific
// operands. Cleared automatically when the process resumes.
func (p *Proc) SetBlockReason(what string, a, b int64) {
	p.blockWhat, p.blockA, p.blockB = what, a, b
}

// killedPanic unwinds a process goroutine when it is forcibly terminated.
type killedPanic struct{}

// Spawn creates a process running fn, starting at the current virtual time.
// The returned Proc may be waited on via its Done event.
func (e *Env) Spawn(name string, fn func(p *Proc)) *Proc {
	e.seq++
	p := &Proc{
		env:    e,
		id:     e.seq,
		name:   name,
		resume: make(chan any),
		done:   e.NewEvent(),
	}
	p.wakeFn = func() {
		if p.killed {
			return
		}
		v := p.wakeVal
		p.wakeVal = nil
		p.resume <- v
		<-e.yield
	}
	e.procs[p] = struct{}{}
	e.At(e.now, func() {
		if p.killed {
			delete(e.procs, p)
			p.done.Trigger(nil)
			return
		}
		e.ngoro++
		if e.ngoro > e.peakGoro {
			e.peakGoro = e.ngoro
		}
		go p.run(fn)
		<-e.yield
	})
	return p
}

// run is the body wrapper executed on the process goroutine.
func (p *Proc) run(fn func(p *Proc)) {
	defer func() {
		r := recover()
		p.env.ngoro--
		delete(p.env.procs, p)
		if _, wasKilled := r.(killedPanic); r != nil && !wasKilled {
			if p.env.fail == nil {
				p.env.fail = fmt.Errorf("simtime: process %q panicked at %v: %v", p.name, p.env.now, r)
			}
		} else {
			p.done.Trigger(nil)
		}
		p.env.yield <- struct{}{}
	}()
	fn(p)
}

// Name returns the name given at Spawn.
func (p *Proc) Name() string { return p.name }

// Env returns the environment the process belongs to.
func (p *Proc) Env() *Env { return p.env }

// Done returns an event triggered when the process finishes.
func (p *Proc) Done() *Event { return p.done }

// Park blocks the process until another event wakes it with Env.WakeProc
// (or an Event/Queue built on top of it). It returns the value passed to
// the wake. Park is a low-level primitive for building synchronization
// structures; most code should use Sleep, Wait, or Queue.
func (p *Proc) Park() any {
	p.env.npark++
	p.parked = true
	p.env.yield <- struct{}{}
	v, ok := <-p.resume
	if !ok {
		panic(killedPanic{})
	}
	p.parked = false
	p.blockWhat = ""
	return v
}

// WakeProc schedules p to resume at the current virtual time, with v as the
// return value of its pending Park. The caller must guarantee that p is
// parked (or will be parked before this wake event executes); waking a
// running process deadlocks the engine. The wake reuses the proc's
// pre-bound resume closure, so it performs no allocation.
func (e *Env) WakeProc(p *Proc, v any) { p.wake(v) }

// Sleep blocks the process for d of virtual time.
func (p *Proc) Sleep(d Duration) {
	if d < 0 {
		panic(fmt.Sprintf("simtime: negative sleep %v", d))
	}
	e := p.env
	p.wakeVal = nil
	e.nwake++
	e.At(e.now+Time(d), p.wakeFn)
	e.npark++
	p.parked = true
	e.yield <- struct{}{}
	if _, ok := <-p.resume; !ok {
		panic(killedPanic{})
	}
	p.parked = false
}

// Kill forcibly terminates the process (a fault-injection primitive:
// the node running it died). The caller must know the process has not
// finished; killing a finished process is a harmless no-op. Like
// KillAll, it must be invoked from an event callback, never from
// another process.
func (p *Proc) Kill() { p.kill() }

// kill forcibly terminates the process. If it is parked, its goroutine is
// unblocked and unwound. If it has not started yet, its start event is
// suppressed.
func (p *Proc) kill() {
	if p.killed {
		return
	}
	p.killed = true
	p.wakeVal = nil
	if p.parked {
		close(p.resume)
		<-p.env.yield
	}
	delete(p.env.procs, p)
}

// process interface implementation.
func (p *Proc) pid() uint64 { return p.id }

func (p *Proc) blocked() BlockedProc {
	return BlockedProc{Name: p.name, What: p.blockWhat, A: p.blockA, B: p.blockB}
}

func (p *Proc) isKilled() bool { return p.killed }

func (p *Proc) wake(v any) {
	p.wakeVal = v
	p.env.nwake++
	p.env.At(p.env.now, p.wakeFn)
}

// Event is a one-shot occurrence that processes can wait on and callbacks
// can subscribe to. An event carries an arbitrary value set at trigger
// time. Triggering twice panics.
type Event struct {
	env       *Env
	triggered bool
	val       any
	waiters   []process
	callbacks []func(any)
}

// NewEvent returns an untriggered event.
func (e *Env) NewEvent() *Event { return &Event{env: e} }

// Triggered reports whether the event has fired.
func (ev *Event) Triggered() bool { return ev.triggered }

// Value returns the value the event was triggered with (nil if not yet
// triggered).
func (ev *Event) Value() any { return ev.val }

// Trigger fires the event, waking all waiting processes and scheduling all
// subscribed callbacks at the current virtual time.
func (ev *Event) Trigger(v any) {
	if ev.triggered {
		panic("simtime: event triggered twice")
	}
	ev.triggered = true
	ev.val = v
	for _, w := range ev.waiters {
		w.wake(v)
	}
	ev.waiters = nil
	for _, cb := range ev.callbacks {
		cb := cb
		ev.env.At(ev.env.now, func() { cb(v) })
	}
	ev.callbacks = nil
}

// Subscribe registers fn to run (as a scheduled callback) when the event
// triggers. If the event already triggered, fn is scheduled immediately.
func (ev *Event) Subscribe(fn func(any)) {
	if ev.triggered {
		v := ev.val
		ev.env.At(ev.env.now, func() { fn(v) })
		return
	}
	ev.callbacks = append(ev.callbacks, fn)
}

// Wait blocks the process until the event triggers and returns the trigger
// value. If the event already triggered, it returns immediately.
func (p *Proc) Wait(ev *Event) any {
	if ev.triggered {
		return ev.val
	}
	ev.waiters = append(ev.waiters, p)
	return p.Park()
}

// WaitAll blocks until every event in evs has triggered.
func (p *Proc) WaitAll(evs ...*Event) {
	for _, ev := range evs {
		p.Wait(ev)
	}
}

// Queue is an unbounded FIFO mailbox connecting event callbacks and
// processes. Push never blocks; Pop blocks the calling process until an
// item is available. Waiting processes are served in FIFO order.
type Queue struct {
	env     *Env
	items   []any
	waiters []process
}

// NewQueue returns an empty queue.
func (e *Env) NewQueue() *Queue { return &Queue{env: e} }

// Len returns the number of buffered items.
func (q *Queue) Len() int { return len(q.items) }

// Push appends v, waking the longest-waiting live process if any. Waiters
// killed mid-wait (fault injection) are skipped and dropped, so a kill
// never leaks a stale queue entry or swallows an item.
func (q *Queue) Push(v any) {
	for len(q.waiters) > 0 {
		w := q.waiters[0]
		q.waiters = q.waiters[1:]
		if w.isKilled() {
			continue
		}
		w.wake(v)
		return
	}
	q.items = append(q.items, v)
}

// TryPop removes and returns the head item without blocking.
func (q *Queue) TryPop() (any, bool) {
	if len(q.items) == 0 {
		return nil, false
	}
	v := q.items[0]
	q.items = q.items[1:]
	return v, true
}

// Pop removes and returns the head item, blocking the process until one is
// available.
func (q *Queue) Pop(p *Proc) any {
	if v, ok := q.TryPop(); ok {
		return v
	}
	q.waiters = append(q.waiters, p)
	return p.Park()
}
