package simtime

import (
	"strings"
	"testing"
)

// A CProc state machine chains every asynchronous primitive and must see
// the same values, times, and Done trigger a goroutine proc would.
func TestCProcPrimitiveChain(t *testing.T) {
	e := NewEnv()
	q := e.NewQueue()
	ev := e.NewEvent()
	var got []string
	note := func(s string) { got = append(got, s) }

	cp := e.SpawnC("chain", func(cp *CProc) {
		note("start")
		cp.SleepThen(10, func() {
			if e.Now() != 10 {
				t.Errorf("woke at %v, want 10", e.Now())
			}
			note("slept")
			q.PopThen(cp, func(v any) {
				note("popped:" + v.(string))
				cp.WaitThen(ev, func(v any) {
					note("waited:" + v.(string))
					cp.End()
				})
			})
		})
	})
	e.Schedule(20, func() { q.Push("item") })
	e.Schedule(30, func() { ev.Trigger("fired") })
	ended := false
	cp.Done().Subscribe(func(any) { ended = true })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	want := "start,slept,popped:item,waited:fired"
	if s := strings.Join(got, ","); s != want {
		t.Fatalf("trace %q, want %q", s, want)
	}
	if !ended {
		t.Fatal("Done did not trigger after End")
	}
	if n := len(e.LiveProcs()); n != 0 {
		t.Fatalf("%d live procs after End", n)
	}
}

// WaitThen on an already-triggered event and PopThen on a non-empty queue
// run their continuation synchronously, mirroring Proc.Wait and Queue.Pop
// returning without parking.
func TestCProcSynchronousPaths(t *testing.T) {
	e := NewEnv()
	q := e.NewQueue()
	q.Push(1)
	q.Push(2)
	ev := e.NewEvent()
	ev.Trigger("early")
	var got []any
	e.SpawnC("sync", func(cp *CProc) {
		q.PopThen(cp, func(v any) { got = append(got, v) })
		q.PopThen(cp, func(v any) { got = append(got, v) })
		cp.WaitThen(ev, func(v any) { got = append(got, v) })
		cp.End()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != "early" {
		t.Fatalf("got %v, want [1 2 early]", got)
	}
}

// ParkThen plus WakeCProc is the low-level handoff: the woken continuation
// receives the wake value, and wakes are ordered through the same
// (time, seq) event path as everything else.
func TestCProcParkThenWake(t *testing.T) {
	e := NewEnv()
	var got any
	cp := e.SpawnC("parker", func(cp *CProc) {
		cp.ParkThen(func(v any) {
			got = v
			cp.End()
		})
	})
	e.Schedule(5, func() { e.WakeCProc(cp, "hello") })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if got != "hello" {
		t.Fatalf("park value %v, want hello", got)
	}
}

// A continuation that returns neither parked nor ended can never run
// again; the engine must fail loudly instead of letting the process
// vanish from the deadlock detector's view.
func TestCProcParkOrEndInvariant(t *testing.T) {
	e := NewEnv()
	e.SpawnC("drifter", func(cp *CProc) {
		// Neither a *Then call nor End: invariant violation.
	})
	defer func() {
		if r := recover(); r == nil {
			t.Fatal("expected panic from park-or-end invariant")
		}
	}()
	_ = e.Run()
}

// Kill while parked in PopThen must not leak the queue entry: the next
// Push must skip the dead waiter and deliver to the live one behind it,
// and the killed process's Done must trigger (the crash-recovery surface).
func TestCProcKillInPopThen(t *testing.T) {
	e := NewEnv()
	q := e.NewQueue()
	var victimGot, survivorGot any
	victim := e.SpawnC("victim", func(cp *CProc) {
		cp.SetBlockReason("pop", 1, 0)
		q.PopThen(cp, func(v any) { victimGot = v; cp.End() })
	})
	e.SpawnC("survivor", func(cp *CProc) {
		cp.SetBlockReason("pop", 2, 0)
		q.PopThen(cp, func(v any) { survivorGot = v; cp.End() })
	})
	victimDone := false
	victim.Done().Subscribe(func(any) { victimDone = true })
	e.Schedule(5, func() { victim.Kill() })
	e.Schedule(10, func() { q.Push("payload") })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if victimGot != nil {
		t.Fatalf("killed proc received %v", victimGot)
	}
	if survivorGot != "payload" {
		t.Fatalf("survivor got %v, want payload (item swallowed by dead waiter?)", survivorGot)
	}
	if !victimDone {
		t.Fatal("killed proc's Done did not trigger")
	}
	if n := len(e.LiveProcs()); n != 0 {
		t.Fatalf("%d live procs left: %v", n, e.LiveProcs())
	}
}

// Kill while parked in PopThen with no other waiter: the next Push must
// buffer the item (not swallow it), so a later consumer still sees it.
func TestCProcKillInPopThenBuffersItem(t *testing.T) {
	e := NewEnv()
	q := e.NewQueue()
	victim := e.SpawnC("victim", func(cp *CProc) {
		q.PopThen(cp, func(v any) { t.Errorf("killed proc woke with %v", v); cp.End() })
	})
	e.Schedule(5, func() { victim.Kill() })
	e.Schedule(10, func() { q.Push("kept") })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if q.Len() != 1 {
		t.Fatalf("queue holds %d items, want 1 (item lost to dead waiter)", q.Len())
	}
	if v, _ := q.TryPop(); v != "kept" {
		t.Fatalf("buffered item %v, want kept", v)
	}
}

// Kill while parked in WaitThen mid-wait: the later Trigger must not
// panic or resurrect the process, live waiters still wake, and the killed
// process presents the same Done surface as a killed goroutine proc.
func TestCProcKillInWaitThen(t *testing.T) {
	e := NewEnv()
	ev := e.NewEvent()
	var survivorGot any
	victim := e.SpawnC("victim", func(cp *CProc) {
		cp.WaitThen(ev, func(v any) { t.Errorf("killed proc woke with %v", v); cp.End() })
	})
	e.SpawnC("survivor", func(cp *CProc) {
		cp.WaitThen(ev, func(v any) { survivorGot = v; cp.End() })
	})
	victimDone := false
	victim.Done().Subscribe(func(any) { victimDone = true })
	e.Schedule(5, func() { victim.Kill() })
	e.Schedule(10, func() { ev.Trigger("signal") })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if survivorGot != "signal" {
		t.Fatalf("survivor got %v, want signal", survivorGot)
	}
	if !victimDone {
		t.Fatal("killed proc's Done did not trigger")
	}
	if !victim.isKilled() {
		t.Fatal("isKilled false after Kill")
	}
}

// Killing a CProc before its start event runs suppresses the start
// function entirely, matching a goroutine proc killed before starting.
func TestCProcKillBeforeStart(t *testing.T) {
	e := NewEnv()
	var cp *CProc
	e.At(e.Now(), func() { cp.Kill() }) // scheduled before SpawnC: runs first
	started := false
	cp = e.SpawnC("stillborn", func(cp *CProc) { started = true; cp.End() })
	done := false
	cp.Done().Subscribe(func(any) { done = true })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if started {
		t.Fatal("start function ran after pre-start kill")
	}
	if !done {
		t.Fatal("Done did not trigger for pre-start kill")
	}
}

// End and Kill are idempotent in the documented ways: End after Kill is a
// no-op, End twice panics.
func TestCProcEndKillInteraction(t *testing.T) {
	e := NewEnv()
	cp := e.SpawnC("both", func(cp *CProc) {
		cp.ParkThen(func(any) { cp.End() })
	})
	e.Schedule(1, func() {
		cp.Kill()
		cp.End() // no-op after kill, must not panic or re-trigger done
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}

	e2 := NewEnv()
	e2.SpawnC("double", func(cp *CProc) {
		cp.End()
		defer func() {
			if recover() == nil {
				t.Error("double End did not panic")
			}
			// Leave the proc "ended" so the invariant check passes.
		}()
		cp.End()
	})
	_ = e2.Run()
}

// The deadlock detector must render a blocked CProc exactly as it renders
// a blocked Proc with the same name and block reason: dumps are part of
// the error surface and converting a process between styles must not
// change them.
func TestCProcDeadlockDumpParity(t *testing.T) {
	gor := NewEnv()
	gor.Spawn("rank0", func(p *Proc) {
		p.SetBlockReason("recv", 3, 42)
		p.Park()
	})
	if err := gor.Run(); err != nil {
		t.Fatal(err)
	}
	cont := NewEnv()
	cont.SpawnC("rank0", func(cp *CProc) {
		cp.SetBlockReason("recv", 3, 42)
		cp.ParkThen(func(any) { cp.End() })
	})
	if err := cont.Run(); err != nil {
		t.Fatal(err)
	}
	dg, dc := gor.Deadlock(), cont.Deadlock()
	if dg == nil || dc == nil {
		t.Fatalf("expected deadlocks, got %v / %v", dg, dc)
	}
	if dg.Error() != dc.Error() {
		t.Fatalf("dump mismatch:\n goroutine: %s\n continuation: %s", dg.Error(), dc.Error())
	}
	gor.KillAll()
	cont.KillAll()
}

// KillAll reaps goroutine procs and CProcs together in spawn order,
// regardless of interleaving.
func TestKillAllMixedSpawnOrder(t *testing.T) {
	e := NewEnv()
	var doneOrder []string
	watch := func(name string, done *Event) {
		done.Subscribe(func(any) { doneOrder = append(doneOrder, name) })
	}
	p1 := e.Spawn("g1", func(p *Proc) { p.Park() })
	c1 := e.SpawnC("c1", func(cp *CProc) { cp.ParkThen(func(any) { cp.End() }) })
	p2 := e.Spawn("g2", func(p *Proc) { p.Park() })
	c2 := e.SpawnC("c2", func(cp *CProc) { cp.ParkThen(func(any) { cp.End() }) })
	watch("g1", p1.Done())
	watch("c1", c1.Done())
	watch("g2", p2.Done())
	watch("c2", c2.Done())
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if got := len(e.LiveProcs()); got != 4 {
		t.Fatalf("%d live procs before KillAll, want 4", got)
	}
	e.KillAll()
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if got := len(e.LiveProcs()); got != 0 {
		t.Fatalf("live procs after KillAll: %v", e.LiveProcs())
	}
	// Both flavors trigger Done on kill (Procs via the goroutine unwind,
	// CProcs synchronously inside kill), and KillAll walks spawn order.
	want := "g1,c1,g2,c2"
	if got := strings.Join(doneOrder, ","); got != want {
		t.Fatalf("done order %q, want %q", got, want)
	}
}

// The same logical program — sleep, queue ping-pong, event wait — must
// produce an identical observable schedule (times and order of visible
// actions, engine park/wake counters) whether the consumer is a goroutine
// proc or a continuation proc. This is the conversion-safety property the
// runtime relies on when turning hot procs into state machines.
func TestCProcOrderingEquivalence(t *testing.T) {
	type step struct {
		at  Time
		tag string
	}
	drive := func(e *Env, trace *[]step, spawnConsumer func(q *Queue, ev *Event)) {
		q := e.NewQueue()
		ev := e.NewEvent()
		spawnConsumer(q, ev)
		e.Schedule(5, func() { q.Push("a") })
		e.Schedule(5, func() { q.Push("b") })
		e.Schedule(12, func() { ev.Trigger(nil) })
		if err := e.Run(); err != nil {
			t.Fatal(err)
		}
		_ = trace
	}

	var gorTrace []step
	gor := NewEnv()
	drive(gor, &gorTrace, func(q *Queue, ev *Event) {
		gor.Spawn("consumer", func(p *Proc) {
			p.Sleep(3)
			gorTrace = append(gorTrace, step{gor.Now(), "slept"})
			v1 := q.Pop(p)
			gorTrace = append(gorTrace, step{gor.Now(), "pop:" + v1.(string)})
			v2 := q.Pop(p)
			gorTrace = append(gorTrace, step{gor.Now(), "pop:" + v2.(string)})
			p.Wait(ev)
			gorTrace = append(gorTrace, step{gor.Now(), "waited"})
		})
	})

	var conTrace []step
	con := NewEnv()
	drive(con, &conTrace, func(q *Queue, ev *Event) {
		con.SpawnC("consumer", func(cp *CProc) {
			cp.SleepThen(3, func() {
				conTrace = append(conTrace, step{con.Now(), "slept"})
				q.PopThen(cp, func(v1 any) {
					conTrace = append(conTrace, step{con.Now(), "pop:" + v1.(string)})
					q.PopThen(cp, func(v2 any) {
						conTrace = append(conTrace, step{con.Now(), "pop:" + v2.(string)})
						cp.WaitThen(ev, func(any) {
							conTrace = append(conTrace, step{con.Now(), "waited"})
							cp.End()
						})
					})
				})
			})
		})
	})

	if len(gorTrace) != len(conTrace) {
		t.Fatalf("trace lengths differ: %v vs %v", gorTrace, conTrace)
	}
	for i := range gorTrace {
		if gorTrace[i] != conTrace[i] {
			t.Fatalf("step %d: goroutine %v, continuation %v", i, gorTrace[i], conTrace[i])
		}
	}
	gs, cs := gor.EngineStats(), con.EngineStats()
	if gs.Parks != cs.Parks || gs.Wakes != cs.Wakes {
		t.Fatalf("park/wake counters differ: goroutine %d/%d, continuation %d/%d",
			gs.Parks, gs.Wakes, cs.Parks, cs.Wakes)
	}
	if gs.PeakGoroutines != 1 {
		t.Fatalf("goroutine env peak %d, want 1", gs.PeakGoroutines)
	}
	if cs.PeakGoroutines != 0 {
		t.Fatalf("continuation env peak %d, want 0 (CProcs run on the loop)", cs.PeakGoroutines)
	}
}

// The engine's park/wake counters follow the documented semantics for
// both flavors: every block is a park, every scheduled resumption a wake.
func TestParkWakeCounters(t *testing.T) {
	e := NewEnv()
	q := e.NewQueue()
	e.SpawnC("c", func(cp *CProc) {
		cp.SleepThen(1, func() { // park+wake (timer)
			q.PopThen(cp, func(any) { // park, wake comes from Push
				cp.End()
			})
		})
	})
	e.Schedule(5, func() { q.Push(nil) })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	st := e.EngineStats()
	if st.Parks != 2 || st.Wakes != 2 {
		t.Fatalf("parks/wakes = %d/%d, want 2/2", st.Parks, st.Wakes)
	}
}
