package simtime

import (
	"fmt"
	"sort"
	"sync"
	"time"
)

// Conservative parallel discrete-event engine.
//
// An Engine coordinates P partition environments plus one global
// environment. Each partition owns the event heap, now-queue, and
// processes of one simulated node; the global environment owns events
// with no single-node home (policy ticks, fault-plan edges, collective
// completions). Execution alternates between two phases:
//
//   - Window: T is the minimum pending timestamp across every
//     environment. If the global environment does not hold that minimum,
//     all partitions with pending events below the horizon
//     H = min(T + lookahead, next global event) run concurrently, each on
//     a worker, executing exactly the events with t < H. The lookahead is
//     the minimum cross-partition latency: no event a partition executes
//     inside the window can affect another partition before H, so the
//     partitions are causally independent for the window's duration.
//
//   - Barrier: when the global environment holds the minimum pending
//     timestamp tg, every partition has already quiesced below tg (the
//     previous windows executed everything earlier), the global events at
//     tg run on the coordinating goroutine, and the loop resumes. Global
//     events may schedule directly into partition heaps (Inject) — the
//     partitions are idle, so this is single-threaded.
//
// Cross-partition effects produced inside a window are staged in the
// source partition's outbox and merged at the window boundary in
// (time, source partition, source sequence) order — a strict total order
// independent of worker count and wall-clock interleaving, which is what
// keeps the simulation bit-identical for any -simworkers setting.
//
// Determinism relative to the sequential engine comes from the
// conservative horizon: within a partition the (time, seq) total order
// is preserved, and events on different partitions in the same window
// are causally independent, so their relative execution order cannot
// influence any simulation state. Global events at time tg run before
// partition events at tg, matching the sequential engine where periodic
// ticks and fault edges carry sequence numbers assigned when they were
// armed — earlier than any same-time event scheduled by later work.

// outEvent is one staged cross-partition effect: run fn at time t on the
// environment with index dst. src/seq give the deterministic merge order.
type outEvent struct {
	dst int
	src int
	t   Time
	seq uint64
	fn  func()
}

// Engine is a conservative parallel scheduler over partition
// environments. Create one with NewEngine, schedule work onto the
// partitions and the global environment, then call Run once.
type Engine struct {
	global    *Env
	parts     []*Env
	envs      []*Env // parts followed by global
	lookahead Duration
	workers   int

	windows uint64 // horizon advances (windows executed)
	stalls  uint64 // windows whose horizon was clamped by a global event
	ninbox  uint64 // cross-environment events delivered (merge + inject)

	// pstats profiles each partition's host-side behaviour (busy vs
	// barrier-wait wall time, window participation, outbox pressure).
	// One slot per partition; within a window each slot has exactly one
	// writer (the pool worker running that partition), and the window's
	// WaitGroup barrier orders those writes before the coordinator reads.
	pstats []partStat

	merge []outEvent // reusable merge buffer

	jobs chan poolJob
	wg   sync.WaitGroup
}

// partStat accumulates one partition's scheduler profile. The host-time
// fields are wall-clock measurements and therefore nondeterministic;
// they are exported through PartitionStats, never through the
// deterministic EngineStats counters.
type partStat struct {
	busy         time.Duration // host time executing events inside windows
	barrierWait  time.Duration // host time idle waiting for the window's slowest partition
	windows      uint64        // windows this partition participated in
	stallWindows uint64        // participated windows whose horizon was clamped by a global event
	staged       uint64        // cross-partition sends staged in this partition's outbox
	maxOutbox    int           // peak outbox depth at a window boundary
	winBusy      time.Duration // scratch: busy time of the current window
	ran          bool          // scratch: participated in the current window
}

type poolJob struct {
	e *Env
	h Time
}

// NewEngine returns an engine with nparts fresh partition environments
// coordinated around the existing global environment. The lookahead must
// be positive — it is the minimum virtual-time distance of any
// cross-partition effect, and a zero lookahead would collapse every
// window to a single timestamp (callers should fall back to sequential
// execution instead). workers is the number of OS-level workers windows
// fan out to; values below 1 are treated as 1. The engine must be
// created before any events run on the global environment.
func NewEngine(global *Env, nparts int, lookahead Duration, workers int) *Engine {
	if nparts < 1 {
		panic("simtime: NewEngine requires at least one partition")
	}
	if lookahead <= 0 {
		panic("simtime: parallel engine requires positive lookahead")
	}
	if workers < 1 {
		workers = 1
	}
	eng := &Engine{global: global, lookahead: lookahead, workers: workers}
	eng.pstats = make([]partStat, nparts)
	eng.parts = make([]*Env, nparts)
	for i := range eng.parts {
		p := NewEnv()
		p.eng = eng
		p.eidx = i
		eng.parts[i] = p
	}
	global.eng = eng
	global.eidx = nparts
	eng.envs = append(append(make([]*Env, 0, nparts+1), eng.parts...), global)
	return eng
}

// Partition returns partition environment i.
func (eng *Engine) Partition(i int) *Env { return eng.parts[i] }

// Global returns the global environment.
func (eng *Engine) Global() *Env { return eng.global }

// Partitions returns the number of partition environments.
func (eng *Engine) Partitions() int { return len(eng.parts) }

// Lookahead returns the engine's cross-partition lookahead.
func (eng *Engine) Lookahead() Duration { return eng.lookahead }

// Send schedules fn to run d after src's current time on dst. Same-
// environment sends degrade to Schedule. Sends from the global
// environment insert directly (partitions are quiesced during barrier
// execution). Sends between distinct partitions must respect the
// lookahead — the whole correctness argument rests on it — and are
// staged in the source outbox for the deterministic boundary merge;
// sends from a partition to the global environment may use any
// non-negative delay, since the global environment only runs when it
// holds the global minimum timestamp.
func (eng *Engine) Send(src, dst *Env, d Duration, fn func()) {
	if d < 0 {
		panic(fmt.Sprintf("simtime: negative send delay %v", d))
	}
	if src == dst {
		src.Schedule(d, fn)
		return
	}
	if src == eng.global {
		eng.Inject(dst, src.now+Time(d), fn)
		return
	}
	if dst != eng.global && d < eng.lookahead {
		panic(fmt.Sprintf("simtime: cross-partition send delay %v below lookahead %v", d, eng.lookahead))
	}
	src.outSeq++
	src.out = append(src.out, outEvent{dst: dst.eidx, src: src.eidx, t: src.now + Time(d), seq: src.outSeq, fn: fn})
}

// Inject schedules fn at absolute time t on dst from barrier context
// (the global environment executing, all partitions quiesced). It must
// never be called while a window is running.
func (eng *Engine) Inject(dst *Env, t Time, fn func()) {
	eng.ninbox++
	dst.At(t, fn)
}

// drainOutboxes merges every partition's staged cross-partition sends
// into the destination heaps in (t, src, seq) order — a strict total
// order, so destination sequence numbers come out identical for any
// worker count.
func (eng *Engine) drainOutboxes() {
	buf := eng.merge[:0]
	for _, p := range eng.parts {
		if len(p.out) == 0 {
			continue
		}
		st := &eng.pstats[p.eidx]
		st.staged += uint64(len(p.out))
		if len(p.out) > st.maxOutbox {
			st.maxOutbox = len(p.out)
		}
		buf = append(buf, p.out...)
		clear(p.out)
		p.out = p.out[:0]
	}
	if len(buf) > 1 {
		sort.Slice(buf, func(i, j int) bool {
			a, b := buf[i], buf[j]
			if a.t != b.t {
				return a.t < b.t
			}
			if a.src != b.src {
				return a.src < b.src
			}
			return a.seq < b.seq
		})
	}
	for i := range buf {
		ev := buf[i]
		eng.ninbox++
		eng.envs[ev.dst].At(ev.t, ev.fn)
		buf[i].fn = nil
	}
	eng.merge = buf[:0]
}

// Run executes the window/barrier loop until every environment drains
// or a process fails. It returns the first failure in environment-index
// order (partitions, then global). Run may be called at most once.
func (eng *Engine) Run() error {
	defer eng.stopPool()
	for {
		eng.drainOutboxes()
		if err := eng.firstFail(); err != nil {
			return err
		}
		var T Time
		have := false
		for _, e := range eng.envs {
			if t, ok := e.peekTime(); ok && (!have || t < T) {
				T, have = t, true
			}
		}
		if !have {
			return nil
		}
		gNext, gok := eng.global.peekTime()
		if gok && gNext <= T {
			// Barrier: the global environment holds the minimum pending
			// timestamp; every partition has quiesced below it.
			eng.global.RunUntil(gNext)
			continue
		}
		h := T + Time(eng.lookahead)
		stalled := gok && gNext < h
		if stalled {
			h = gNext
			eng.stalls++
		}
		eng.windows++
		eng.runWindow(h-1, stalled)
	}
}

// runWindow executes every partition with pending events at or below h,
// concurrently when the engine has more than one worker. stalled marks
// a window whose horizon was clamped by a pending global event; it is
// charged to every participating partition's stall counter.
func (eng *Engine) runWindow(h Time, stalled bool) {
	if eng.workers <= 1 || len(eng.parts) == 1 {
		for _, p := range eng.parts {
			if t, ok := p.peekTime(); ok && t <= h {
				st := &eng.pstats[p.eidx]
				st.windows++
				if stalled {
					st.stallWindows++
				}
				t0 := time.Now()
				p.RunUntil(h)
				st.busy += time.Since(t0)
			}
		}
		return
	}
	eng.startPool()
	wstart := time.Now()
	for _, p := range eng.parts {
		if t, ok := p.peekTime(); ok && t <= h {
			st := &eng.pstats[p.eidx]
			st.ran = true
			st.windows++
			if stalled {
				st.stallWindows++
			}
			eng.wg.Add(1)
			eng.jobs <- poolJob{p, h}
		}
	}
	eng.wg.Wait()
	// Each participant's barrier wait is the window wall time minus its
	// own busy time: how long it sat finished while the slowest
	// participant was still running.
	wall := time.Since(wstart)
	for i := range eng.pstats {
		st := &eng.pstats[i]
		if !st.ran {
			continue
		}
		st.ran = false
		if bw := wall - st.winBusy; bw > 0 {
			st.barrierWait += bw
		}
	}
}

func (eng *Engine) startPool() {
	if eng.jobs != nil {
		return
	}
	w := eng.workers
	if w > len(eng.parts) {
		w = len(eng.parts)
	}
	jobs := make(chan poolJob, len(eng.parts))
	eng.jobs = jobs
	for i := 0; i < w; i++ {
		go func() {
			for j := range jobs {
				t0 := time.Now()
				j.e.RunUntil(j.h)
				d := time.Since(t0)
				st := &eng.pstats[j.e.eidx]
				st.winBusy = d
				st.busy += d
				eng.wg.Done()
			}
		}()
	}
}

func (eng *Engine) stopPool() {
	if eng.jobs != nil {
		close(eng.jobs)
		eng.jobs = nil
	}
}

// firstFail returns the first process failure in environment-index
// order, or nil.
func (eng *Engine) firstFail() error {
	for _, e := range eng.envs {
		if e.fail != nil {
			return e.fail
		}
	}
	return nil
}

// Err returns the first process failure observed, or nil.
func (eng *Engine) Err() error { return eng.firstFail() }

// Now returns the engine's notion of current time: the maximum clock
// over all environments (during a barrier this is the global clock).
func (eng *Engine) Now() Time {
	now := eng.global.now
	for _, p := range eng.parts {
		if p.now > now {
			now = p.now
		}
	}
	return now
}

// Pending reports the number of scheduled events not yet executed,
// including staged outbox entries.
func (eng *Engine) Pending() int {
	n := 0
	for _, e := range eng.envs {
		n += e.Pending() + len(e.out)
	}
	return n
}

// Deadlock returns a DeadlockError describing processes left blocked
// across every environment (partitions first, spawn order within each),
// or nil if none are live.
func (eng *Engine) Deadlock() *DeadlockError {
	var blocked []BlockedProc
	for _, e := range eng.envs {
		for _, p := range e.liveByID() {
			blocked = append(blocked, p.blocked())
		}
	}
	if len(blocked) == 0 {
		return nil
	}
	return &DeadlockError{Now: eng.Now(), Blocked: blocked}
}

// KillAll forcibly terminates all live processes in every environment.
// The outer loop re-collects survivors so processes spawned by teardown
// code — even on another partition — are killed too.
func (eng *Engine) KillAll() {
	for {
		n := 0
		for _, e := range eng.envs {
			n += len(e.procs)
		}
		if n == 0 {
			return
		}
		for _, e := range eng.envs {
			e.KillAll()
		}
	}
}

// EngineStats aggregates counters over every environment and adds the
// parallel-scheduler counters. Per-environment counters are summed
// except PeakGoroutines, which is also summed: partitions run their
// goroutine-backed processes concurrently, so the sum is the engine's
// actual peak pressure bound.
func (eng *Engine) EngineStats() EngineStats {
	var s EngineStats
	for _, e := range eng.envs {
		es := e.EngineStats()
		s.Events += es.Events
		s.FastPath += es.FastPath
		s.HeapPushes += es.HeapPushes
		s.Parks += es.Parks
		s.Wakes += es.Wakes
		s.PeakGoroutines += es.PeakGoroutines
	}
	s.Partitions = uint64(len(eng.parts))
	s.Windows = eng.windows
	s.BarrierStalls = eng.stalls
	s.InboxEvents = eng.ninbox
	return s
}

// PartitionStats returns the per-partition scheduler profile. The
// window/outbox counters are deterministic; the busy and barrier-wait
// times are host wall-clock measurements. Call after Run returns.
func (eng *Engine) PartitionStats() []PartitionStats {
	out := make([]PartitionStats, len(eng.parts))
	for i := range eng.pstats {
		st := &eng.pstats[i]
		out[i] = PartitionStats{
			Partition:    i,
			Busy:         st.busy,
			BarrierWait:  st.barrierWait,
			Windows:      st.windows,
			StallWindows: st.stallWindows,
			OutboxStaged: st.staged,
			MaxOutbox:    uint64(st.maxOutbox),
		}
	}
	return out
}
