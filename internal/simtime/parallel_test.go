package simtime

import (
	"fmt"
	"reflect"
	"strings"
	"testing"
)

// buildExerciser wires a small partitioned program onto eng and returns
// the per-environment logs (partitions first, global last). Each
// partition runs an event chain with partition-local cascades, sends to
// the next partition at exactly the lookahead, and reports to the global
// environment; a global periodic tick injects work back into every
// partition. Every log append happens on the owning environment, so the
// program is race-free under any worker count.
func buildExerciser(eng *Engine, la Duration) []*[]string {
	P := eng.Partitions()
	logs := make([]*[]string, P+1)
	for i := range logs {
		logs[i] = new([]string)
	}
	glog := logs[P]
	for i := 0; i < P; i++ {
		i := i
		p := eng.Partition(i)
		plog := logs[i]
		// Deterministic per-partition chain with jittered steps.
		state := uint64(i*2654435761 + 12345)
		next := func() uint64 { state = state*6364136223846793005 + 1442695040888963407; return state }
		var step func(k int)
		step = func(k int) {
			*plog = append(*plog, fmt.Sprintf("p%d step%d @%d", i, k, p.Now()))
			if k >= 12 {
				return
			}
			if k%3 == 0 {
				dst := eng.Partition((i + 1) % P)
				from, at := i, k
				eng.Send(p, dst, la+Duration(next()%50), func() {
					dlog := logs[(from+1)%P]
					*dlog = append(*dlog, fmt.Sprintf("p%d got msg from p%d/%d @%d", (from+1)%P, from, at, dst.Now()))
				})
			}
			if k%4 == 1 {
				from, at := i, k
				eng.Send(p, eng.Global(), Duration(next()%20), func() {
					*glog = append(*glog, fmt.Sprintf("global report p%d/%d @%d", from, at, eng.Global().Now()))
				})
			}
			// Same-time cascade through the now queue.
			if k%5 == 2 {
				p.At(p.Now(), func() {
					*plog = append(*plog, fmt.Sprintf("p%d cascade%d @%d", i, k, p.Now()))
				})
			}
			p.Schedule(Duration(10+next()%90), func() { step(k + 1) })
		}
		p.Schedule(Duration(next()%40), func() { step(0) })
	}
	ticks := 0
	eng.Global().Periodic(50, 137, func() bool {
		ticks++
		*glog = append(*glog, fmt.Sprintf("tick%d @%d", ticks, eng.Global().Now()))
		// Barrier context: inject directly into every partition at the
		// global clock, exercising Inject and CtxNow.
		for j := 0; j < P; j++ {
			j := j
			pe := eng.Partition(j)
			if pe.CtxNow() != eng.Global().Now() {
				*glog = append(*glog, "CTXNOW-MISMATCH")
			}
			eng.Inject(pe, pe.CtxNow(), func() {
				*logs[j] = append(*logs[j], fmt.Sprintf("p%d poked @%d", j, pe.Now()))
			})
		}
		return ticks < 8
	})
	return logs
}

func runExerciser(t *testing.T, workers int) [][]string {
	t.Helper()
	const la = 100 * Nanosecond
	eng := NewEngine(NewEnv(), 4, la, workers)
	logs := buildExerciser(eng, la)
	if err := eng.Run(); err != nil {
		t.Fatalf("workers=%d: %v", workers, err)
	}
	out := make([][]string, len(logs))
	for i, l := range logs {
		out[i] = *l
		for _, line := range *l {
			if strings.Contains(line, "MISMATCH") {
				t.Fatalf("workers=%d: %s", workers, line)
			}
		}
	}
	return out
}

// TestParallelWorkerCountInvariance pins the core determinism property:
// the same program produces identical per-environment event orders for
// any worker count.
func TestParallelWorkerCountInvariance(t *testing.T) {
	ref := runExerciser(t, 1)
	total := 0
	for _, l := range ref {
		total += len(l)
	}
	if total < 50 {
		t.Fatalf("exerciser too small: %d log lines", total)
	}
	for _, w := range []int{2, 3, 8} {
		got := runExerciser(t, w)
		if !reflect.DeepEqual(got, ref) {
			t.Fatalf("workers=%d diverged from workers=1\nref: %v\ngot: %v", w, ref, got)
		}
	}
}

// TestParallelMatchesSingleEnv runs a program built only from local
// scheduling and lookahead-respecting sends both on one sequential Env
// (sends become plain Schedules) and on the engine, and checks the
// per-partition orders agree with the sequential order filtered to that
// partition.
func TestParallelMatchesSingleEnv(t *testing.T) {
	const la = 100 * Nanosecond
	type api struct {
		schedule func(part int, d Duration, fn func())
		send     func(from, to int, d Duration, fn func())
		now      func(part int) Time
	}
	// build schedules the same logical program against either backend;
	// log lines are tagged with the owning partition.
	build := func(a api, log map[int]*[]string) {
		for i := 0; i < 3; i++ {
			i := i
			var step func(k int)
			step = func(k int) {
				*log[i] = append(*log[i], fmt.Sprintf("p%d step%d @%d", i, k, a.now(i)))
				if k >= 9 {
					return
				}
				if k%2 == 0 {
					to := (i + 1) % 3
					from, at := i, k
					a.send(i, to, la+Duration(7*i+at), func() {
						*log[to] = append(*log[to], fmt.Sprintf("p%d msg %d/%d @%d", to, from, at, a.now(to)))
					})
				}
				a.schedule(i, Duration(13+11*i+5*k), func() { step(k + 1) })
			}
			a.schedule(i, Duration(3*i), func() { step(0) })
		}
	}
	newLog := func() map[int]*[]string {
		m := make(map[int]*[]string)
		for i := 0; i < 3; i++ {
			m[i] = new([]string)
		}
		return m
	}

	seqEnv := NewEnv()
	seqLog := newLog()
	build(api{
		schedule: func(part int, d Duration, fn func()) { seqEnv.Schedule(d, fn) },
		send:     func(from, to int, d Duration, fn func()) { seqEnv.Schedule(d, fn) },
		now:      func(part int) Time { return seqEnv.Now() },
	}, seqLog)
	if err := seqEnv.Run(); err != nil {
		t.Fatal(err)
	}

	eng := NewEngine(NewEnv(), 3, la, 4)
	parLog := newLog()
	build(api{
		schedule: func(part int, d Duration, fn func()) { eng.Partition(part).Schedule(d, fn) },
		send: func(from, to int, d Duration, fn func()) {
			eng.Send(eng.Partition(from), eng.Partition(to), d, fn)
		},
		now: func(part int) Time { return eng.Partition(part).Now() },
	}, parLog)
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}

	for i := 0; i < 3; i++ {
		if !reflect.DeepEqual(*seqLog[i], *parLog[i]) {
			t.Fatalf("partition %d diverged\nseq: %v\npar: %v", i, *seqLog[i], *parLog[i])
		}
	}
}

// TestParallelProcsAcrossPartitions runs goroutine and continuation
// processes on different partitions exchanging lookahead-respecting
// messages; under -race this exercises the window/pool handoff.
func TestParallelProcsAcrossPartitions(t *testing.T) {
	const la = 200 * Nanosecond
	eng := NewEngine(NewEnv(), 4, la, 4)
	queues := make([]*Queue, 4)
	logs := make([]*[]string, 4)
	for i := range queues {
		queues[i] = eng.Partition(i).NewQueue()
		logs[i] = new([]string)
	}
	for i := 0; i < 4; i++ {
		i := i
		p := eng.Partition(i)
		plog := logs[i]
		p.Spawn(fmt.Sprintf("rank%d", i), func(pr *Proc) {
			for round := 0; round < 5; round++ {
				pr.Sleep(Duration(50 + 10*i))
				dst := (i + 1) % 4
				rnd := round
				eng.Send(p, eng.Partition(dst), la, func() {
					queues[dst].Push(fmt.Sprintf("r%d from p%d", rnd, i))
				})
				pr.SetBlockReason("ring-recv", int64(i), int64(round))
				v := queues[i].Pop(pr)
				*plog = append(*plog, fmt.Sprintf("p%d round%d got %q @%d", i, round, v, p.Now()))
			}
		})
	}
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if dl := eng.Deadlock(); dl != nil {
		t.Fatal(dl)
	}
	for i, l := range logs {
		if len(*l) != 5 {
			t.Fatalf("partition %d logged %d rounds, want 5: %v", i, len(*l), *l)
		}
	}
	st := eng.EngineStats()
	if st.Partitions != 4 || st.Windows == 0 || st.InboxEvents == 0 {
		t.Fatalf("implausible stats: %+v", st)
	}
}

// TestParallelDeadlockAggregation checks blocked processes on several
// partitions are all reported, in partition-then-spawn order.
func TestParallelDeadlockAggregation(t *testing.T) {
	eng := NewEngine(NewEnv(), 3, 100, 2)
	for i := 0; i < 3; i++ {
		i := i
		p := eng.Partition(i)
		q := p.NewQueue()
		p.Spawn(fmt.Sprintf("stuck%d", i), func(pr *Proc) {
			pr.SetBlockReason("never", int64(i), 0)
			q.Pop(pr)
		})
	}
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	dl := eng.Deadlock()
	if dl == nil {
		t.Fatal("expected deadlock")
	}
	if len(dl.Blocked) != 3 {
		t.Fatalf("blocked = %v, want 3 entries", dl.Blocked)
	}
	for i, b := range dl.Blocked {
		if b.Name != fmt.Sprintf("stuck%d", i) {
			t.Fatalf("blocked[%d] = %v, want stuck%d first", i, b, i)
		}
	}
	eng.KillAll()
	if dl := eng.Deadlock(); dl != nil {
		t.Fatalf("procs survive KillAll: %v", dl)
	}
}

// TestParallelLookaheadViolationPanics pins the safety check: a
// cross-partition send below the lookahead is a bug, not a silent
// divergence.
func TestParallelLookaheadViolationPanics(t *testing.T) {
	eng := NewEngine(NewEnv(), 2, 100, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on sub-lookahead cross-partition send")
		}
	}()
	eng.Send(eng.Partition(0), eng.Partition(1), 99, func() {})
}

// TestParallelZeroLookaheadPanics pins the constructor check backing the
// sequential-fallback path in core.
func TestParallelZeroLookaheadPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on zero lookahead")
		}
	}()
	NewEngine(NewEnv(), 2, 0, 1)
}

// TestParallelProcPanicPropagates checks a panicking process on a
// partition surfaces through Engine.Run.
func TestParallelProcPanicPropagates(t *testing.T) {
	eng := NewEngine(NewEnv(), 2, 100, 2)
	eng.Partition(1).Spawn("bad", func(pr *Proc) {
		pr.Sleep(10)
		panic("boom")
	})
	err := eng.Run()
	if err == nil || !strings.Contains(err.Error(), "boom") {
		t.Fatalf("err = %v, want boom", err)
	}
	if eng.Err() == nil {
		t.Fatal("Err() lost the failure")
	}
}

// TestCtxNowStandalone: for a plain Env, CtxNow is Now.
func TestCtxNowStandalone(t *testing.T) {
	e := NewEnv()
	e.Schedule(42, func() {
		if e.CtxNow() != e.Now() || e.CtxNow() != 42 {
			t.Errorf("CtxNow = %v, Now = %v", e.CtxNow(), e.Now())
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}
