package simtime

import "testing"

// The engine's steady-state hot path must not allocate: the heap is a
// value slice, the same-time ring reuses its backing array, and the batch
// buffer is retained between RunUntil calls. This pins the allocs-per-
// event budget so a regression (e.g. reintroducing a pointer heap) fails
// loudly instead of just slowing sweeps down.
func TestAllocsPerEvent(t *testing.T) {
	e := NewEnv()
	fn := func() {}
	const batch = 512
	warm := func() {
		for i := 0; i < batch; i++ {
			if i%4 == 0 {
				e.Schedule(0, fn) // same-time ring
			} else {
				e.Schedule(Duration(i%97+1), fn) // heap
			}
		}
	}
	// Grow the internal buffers once before measuring.
	warm()
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	var runErr error
	allocs := testing.AllocsPerRun(100, func() {
		warm()
		if err := e.Run(); err != nil {
			runErr = err
		}
	})
	if runErr != nil {
		t.Fatal(runErr)
	}
	if per := allocs / batch; per > 0.05 {
		t.Errorf("allocs per event = %.3f (%.0f per %d events), want 0", per, allocs, batch)
	}
}

// A goroutine-proc park/wake round trip must not allocate: the resume
// trampoline is bound once at spawn and the wake value is staged in a
// reusable slot, so waking is just two scheduler handoffs. This pins the
// budget at zero so a per-wake closure can never sneak back in.
func TestProcParkWakeAllocs(t *testing.T) {
	e := NewEnv()
	p := e.Spawn("parker", func(p *Proc) {
		for {
			p.Park()
		}
	})
	defer e.KillAll()
	round := func() {
		e.WakeProc(p, nil)
		if err := e.Run(); err != nil {
			t.Fatal(err)
		}
	}
	// Warm the scheduler buffers and reach the steady state.
	for i := 0; i < 16; i++ {
		round()
	}
	if allocs := testing.AllocsPerRun(100, round); allocs > 0 {
		t.Errorf("allocs per park/wake round = %.2f, want 0", allocs)
	}
}

// The continuation-proc equivalent: re-registering a pre-allocated
// continuation and waking it stays on the event loop and allocates
// nothing.
func TestCProcParkWakeAllocs(t *testing.T) {
	e := NewEnv()
	var cp *CProc
	var park func(any)
	park = func(any) { cp.ParkThen(park) }
	cp = e.SpawnC("parker", func(cp *CProc) { cp.ParkThen(park) })
	defer e.KillAll()
	round := func() {
		e.WakeCProc(cp, nil)
		if err := e.Run(); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 16; i++ {
		round()
	}
	if allocs := testing.AllocsPerRun(100, round); allocs > 0 {
		t.Errorf("allocs per park/wake round = %.2f, want 0", allocs)
	}
}

// Events popped from the heap at time T must still precede same-time ring
// entries scheduled later: FIFO order among equal-time events is by
// scheduling sequence, regardless of which structure holds them. Here A
// and B sit in the heap for t=10; A runs first and schedules C at the
// current time (the ring fast path). B was scheduled before C, so the
// order must be A, B, C even though C lives in the "faster" queue.
func TestNowQueueHeapInterleave(t *testing.T) {
	e := NewEnv()
	var got []string
	e.Schedule(10, func() {
		got = append(got, "A")
		e.Schedule(0, func() { got = append(got, "C") })
	})
	e.Schedule(10, func() { got = append(got, "B") })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	want := []string{"A", "B", "C"}
	if len(got) != len(want) {
		t.Fatalf("ran %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ran %v, want %v", got, want)
		}
	}
}

// KillAll terminates processes in spawn order, and processes spawned
// during teardown (here: from a dying process's defer) are killed too
// rather than leaking or hanging the loop.
func TestKillAllSpawnOrder(t *testing.T) {
	e := NewEnv()
	var order []string
	park := func(name string) func(*Proc) {
		return func(p *Proc) {
			defer func() { order = append(order, name) }()
			p.Park()
		}
	}
	e.Spawn("third", park("third"))
	e.Spawn("first", func(p *Proc) {
		defer func() {
			order = append(order, "first")
			// Teardown spawns a straggler; KillAll must reap it too.
			e.Spawn("straggler", park("straggler"))
		}()
		p.Park()
	})
	e.Spawn("second", park("second"))
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	e.KillAll()
	if len(e.LiveProcs()) != 0 {
		t.Fatalf("live procs after KillAll: %v", e.LiveProcs())
	}
	// Spawn order, then the straggler (it never parked, so its body never
	// ran and its defer never fired — it must simply be gone).
	want := []string{"third", "first", "second"}
	if len(order) != len(want) {
		t.Fatalf("kill order %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("kill order %v, want %v", order, want)
		}
	}
}
