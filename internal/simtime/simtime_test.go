package simtime

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestScheduleOrder(t *testing.T) {
	e := NewEnv()
	var got []int
	e.Schedule(30, func() { got = append(got, 3) })
	e.Schedule(10, func() { got = append(got, 1) })
	e.Schedule(20, func() { got = append(got, 2) })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
	if e.Now() != 30 {
		t.Fatalf("Now = %v, want 30", e.Now())
	}
}

func TestSameTimeFIFO(t *testing.T) {
	e := NewEnv()
	var got []int
	for i := 0; i < 100; i++ {
		i := i
		e.Schedule(42, func() { got = append(got, i) })
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("got[%d] = %d, want %d (same-time events must run FIFO)", i, v, i)
		}
	}
}

func TestSchedulePastPanics(t *testing.T) {
	e := NewEnv()
	e.Schedule(10, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		e.At(5, func() {})
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestNegativeDelayPanics(t *testing.T) {
	e := NewEnv()
	defer func() {
		if recover() == nil {
			t.Error("negative delay did not panic")
		}
	}()
	e.Schedule(-1, func() {})
}

func TestRunUntil(t *testing.T) {
	e := NewEnv()
	fired := make(map[Time]bool)
	for _, d := range []Duration{10, 20, 30, 40} {
		d := d
		e.Schedule(d, func() { fired[Time(d)] = true })
	}
	if err := e.RunUntil(25); err != nil {
		t.Fatal(err)
	}
	if !fired[10] || !fired[20] || fired[30] || fired[40] {
		t.Fatalf("fired = %v, want only <=25", fired)
	}
	if e.Pending() != 2 {
		t.Fatalf("Pending = %d, want 2", e.Pending())
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if !fired[30] || !fired[40] {
		t.Fatal("remaining events did not fire on Run")
	}
}

func TestProcSleep(t *testing.T) {
	e := NewEnv()
	var wokeAt Time
	e.Spawn("sleeper", func(p *Proc) {
		p.Sleep(5 * Second)
		wokeAt = e.Now()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if wokeAt != Time(5*Second) {
		t.Fatalf("woke at %v, want 5s", wokeAt)
	}
	if n := len(e.LiveProcs()); n != 0 {
		t.Fatalf("LiveProcs = %d, want 0", n)
	}
}

func TestProcInterleaving(t *testing.T) {
	e := NewEnv()
	var log []string
	mk := func(name string, step Duration) {
		e.Spawn(name, func(p *Proc) {
			for i := 0; i < 3; i++ {
				p.Sleep(step)
				log = append(log, fmt.Sprintf("%s@%d", name, e.Now()/Time(Millisecond)))
			}
		})
	}
	mk("a", 10*Millisecond)
	mk("b", 15*Millisecond)
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	// At t=30 both wake; b's wake event was scheduled earlier (at t=15 vs
	// t=20), so b resumes first under (time, seq) ordering.
	want := []string{"a@10", "b@15", "a@20", "b@30", "a@30", "b@45"}
	if len(log) != len(want) {
		t.Fatalf("log = %v, want %v", log, want)
	}
	for i := range want {
		if log[i] != want[i] {
			t.Fatalf("log = %v, want %v", log, want)
		}
	}
}

func TestEventWaitAndTrigger(t *testing.T) {
	e := NewEnv()
	ev := e.NewEvent()
	var got []any
	e.Spawn("w1", func(p *Proc) { got = append(got, p.Wait(ev)) })
	e.Spawn("w2", func(p *Proc) { got = append(got, p.Wait(ev)) })
	e.Schedule(7, func() { ev.Trigger("hello") })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0] != "hello" || got[1] != "hello" {
		t.Fatalf("got = %v", got)
	}
	if !ev.Triggered() || ev.Value() != "hello" {
		t.Fatal("event state wrong after trigger")
	}
}

func TestEventWaitAfterTrigger(t *testing.T) {
	e := NewEnv()
	ev := e.NewEvent()
	ev.Trigger(42)
	var got any
	e.Spawn("late", func(p *Proc) { got = p.Wait(ev) })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if got != 42 {
		t.Fatalf("got = %v, want 42", got)
	}
}

func TestEventDoubleTriggerPanics(t *testing.T) {
	e := NewEnv()
	ev := e.NewEvent()
	ev.Trigger(nil)
	defer func() {
		if recover() == nil {
			t.Error("double trigger did not panic")
		}
	}()
	ev.Trigger(nil)
}

func TestEventSubscribe(t *testing.T) {
	e := NewEnv()
	ev := e.NewEvent()
	var calls []any
	ev.Subscribe(func(v any) { calls = append(calls, v) })
	e.Schedule(3, func() { ev.Trigger("x") })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	ev.Subscribe(func(v any) { calls = append(calls, v) }) // post-trigger subscribe
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if len(calls) != 2 || calls[0] != "x" || calls[1] != "x" {
		t.Fatalf("calls = %v", calls)
	}
}

func TestQueueFIFO(t *testing.T) {
	e := NewEnv()
	q := e.NewQueue()
	var got []any
	e.Spawn("consumer", func(p *Proc) {
		for i := 0; i < 4; i++ {
			got = append(got, q.Pop(p))
		}
	})
	e.Schedule(1, func() { q.Push(1); q.Push(2) })
	e.Schedule(2, func() { q.Push(3) })
	e.Schedule(3, func() { q.Push(4) })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if v != i+1 {
			t.Fatalf("got = %v", got)
		}
	}
}

func TestQueueMultipleWaitersFIFO(t *testing.T) {
	e := NewEnv()
	q := e.NewQueue()
	var got []string
	for i := 0; i < 3; i++ {
		name := fmt.Sprintf("c%d", i)
		e.Spawn(name, func(p *Proc) {
			v := q.Pop(p)
			got = append(got, fmt.Sprintf("%s<-%v", p.Name(), v))
		})
	}
	e.Schedule(5, func() { q.Push("a"); q.Push("b"); q.Push("c") })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	want := []string{"c0<-a", "c1<-b", "c2<-c"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got = %v, want %v", got, want)
		}
	}
}

func TestQueueTryPop(t *testing.T) {
	e := NewEnv()
	q := e.NewQueue()
	if _, ok := q.TryPop(); ok {
		t.Fatal("TryPop on empty queue returned ok")
	}
	q.Push("v")
	if q.Len() != 1 {
		t.Fatalf("Len = %d, want 1", q.Len())
	}
	v, ok := q.TryPop()
	if !ok || v != "v" {
		t.Fatalf("TryPop = %v, %v", v, ok)
	}
}

func TestProcDoneEvent(t *testing.T) {
	e := NewEnv()
	p1 := e.Spawn("worker", func(p *Proc) { p.Sleep(10) })
	var joinedAt Time
	e.Spawn("joiner", func(p *Proc) {
		p.Wait(p1.Done())
		joinedAt = e.Now()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if joinedAt != 10 {
		t.Fatalf("joined at %v, want 10", joinedAt)
	}
}

func TestWaitAll(t *testing.T) {
	e := NewEnv()
	ev1, ev2 := e.NewEvent(), e.NewEvent()
	var at Time
	e.Spawn("w", func(p *Proc) {
		p.WaitAll(ev1, ev2)
		at = e.Now()
	})
	e.Schedule(5, func() { ev2.Trigger(nil) })
	e.Schedule(9, func() { ev1.Trigger(nil) })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if at != 9 {
		t.Fatalf("WaitAll completed at %v, want 9", at)
	}
}

func TestProcPanicPropagates(t *testing.T) {
	e := NewEnv()
	e.Spawn("bad", func(p *Proc) {
		p.Sleep(1)
		panic("boom")
	})
	err := e.Run()
	if err == nil {
		t.Fatal("Run did not report the process panic")
	}
	if e.Err() == nil {
		t.Fatal("Err did not retain the failure")
	}
}

func TestKillAllUnblocksParked(t *testing.T) {
	e := NewEnv()
	q := e.NewQueue()
	cleaned := 0
	for i := 0; i < 5; i++ {
		e.Spawn(fmt.Sprintf("blocked%d", i), func(p *Proc) {
			defer func() { cleaned++ }()
			q.Pop(p) // never pushed
		})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if n := len(e.LiveProcs()); n != 5 {
		t.Fatalf("LiveProcs = %d, want 5 blocked", n)
	}
	e.KillAll()
	if n := len(e.LiveProcs()); n != 0 {
		t.Fatalf("LiveProcs after KillAll = %d, want 0", n)
	}
	if cleaned != 5 {
		t.Fatalf("deferred cleanups ran %d times, want 5", cleaned)
	}
}

func TestKillAllUnstartedProc(t *testing.T) {
	e := NewEnv()
	ran := false
	e.Spawn("never", func(p *Proc) { ran = true })
	e.KillAll() // before Run: the start event must be suppressed
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if ran {
		t.Fatal("killed process body ran")
	}
}

func TestPeriodic(t *testing.T) {
	e := NewEnv()
	var times []Time
	e.Periodic(10, 20, func() bool {
		times = append(times, e.Now())
		return len(times) < 4
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	want := []Time{10, 30, 50, 70}
	if len(times) != len(want) {
		t.Fatalf("times = %v, want %v", times, want)
	}
	for i := range want {
		if times[i] != want[i] {
			t.Fatalf("times = %v, want %v", times, want)
		}
	}
}

func TestDurationConversions(t *testing.T) {
	if FromSeconds(1.5) != 1500*Millisecond {
		t.Fatalf("FromSeconds(1.5) = %v", FromSeconds(1.5))
	}
	if got := (2500 * Millisecond).Seconds(); got != 2.5 {
		t.Fatalf("Seconds = %v, want 2.5", got)
	}
	if got := Time(3 * Second).Seconds(); got != 3.0 {
		t.Fatalf("Time.Seconds = %v, want 3", got)
	}
}

// TestDeterminism runs a randomized process soup twice with the same seed
// and requires identical execution logs and step counts.
func TestDeterminism(t *testing.T) {
	run := func(seed int64) (string, uint64) {
		e := NewEnv()
		rng := rand.New(rand.NewSource(seed))
		var log string
		q := e.NewQueue()
		for i := 0; i < 10; i++ {
			i := i
			e.Spawn(fmt.Sprintf("p%d", i), func(p *Proc) {
				for j := 0; j < 10; j++ {
					p.Sleep(Duration(rng.Intn(100) + 1))
					log += fmt.Sprintf("%d.%d@%d;", i, j, e.Now())
					if j%3 == 0 {
						q.Push(i)
					} else if q.Len() > 0 {
						q.TryPop()
					}
				}
			})
		}
		if err := e.Run(); err != nil {
			t.Fatal(err)
		}
		return log, e.Steps()
	}
	log1, n1 := run(42)
	log2, n2 := run(42)
	if log1 != log2 || n1 != n2 {
		t.Fatal("two runs with the same seed diverged")
	}
}

// Property: for any sorted set of delays, events fire in non-decreasing
// time order and the clock ends at the max delay.
func TestQuickEventOrdering(t *testing.T) {
	f := func(raw []uint16) bool {
		e := NewEnv()
		var fired []Time
		maxT := Time(0)
		for _, r := range raw {
			d := Duration(r)
			if Time(d) > maxT {
				maxT = Time(d)
			}
			e.Schedule(d, func() { fired = append(fired, e.Now()) })
		}
		if err := e.Run(); err != nil {
			return false
		}
		for i := 1; i < len(fired); i++ {
			if fired[i] < fired[i-1] {
				return false
			}
		}
		return len(raw) == 0 || e.Now() == maxT
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// LiveProcs reports deadlocked processes in spawn order, not map order,
// so deadlock diagnostics are deterministic run to run.
func TestLiveProcsSpawnOrder(t *testing.T) {
	e := NewEnv()
	// Names chosen so lexical order differs from spawn order.
	for _, name := range []string{"zeta", "alpha", "mid", "beta"} {
		e.Spawn(name, func(p *Proc) { p.Park() }) // parks forever
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	want := []string{"zeta", "alpha", "mid", "beta"}
	for i := 0; i < 10; i++ { // map iteration must never leak through
		got := e.LiveProcs()
		if len(got) != len(want) {
			t.Fatalf("LiveProcs = %v, want %v", got, want)
		}
		for j := range want {
			if got[j] != want[j] {
				t.Fatalf("LiveProcs = %v, want %v", got, want)
			}
		}
	}
	e.KillAll()
}
