package simtime

import "fmt"

// CProc is a continuation-based simulation process: an explicit state
// machine that runs entirely on the event-loop goroutine. Where a Proc
// blocks by parking its goroutine (two channel handoffs per park/wake),
// a CProc blocks by registering a continuation and returning; the wake
// simply invokes the continuation as an ordinary event callback. The two
// flavors share every synchronization structure (Event, Queue), the
// (time, seq) wake path, the deadlock dump format, and the KillAll
// teardown order, so a process can be converted between styles without
// changing any observable schedule.
//
// Programming model: the start function and every continuation run as
// event callbacks. A continuation must leave the process either blocked
// (by calling exactly one of ParkThen, SleepThen, WaitThen or PopThen
// before returning) or finished (by calling End); returning in neither
// state panics, because a CProc with no pending continuation can never
// run again and would silently vanish from the deadlock detector's view.
// This is the invariant that keeps blocked-process diagnostics truthful:
// a blocked CProc is always findable via its registered continuation.
type CProc struct {
	env    *Env
	id     uint64
	name   string
	done   *Event
	killed bool
	ended  bool
	parked bool

	// Pending continuation while parked: kAny for value-carrying wakes
	// (ParkThen, WaitThen, PopThen), kVoid for timers (SleepThen). Two
	// typed slots avoid wrapping a func() into a func(any) closure per
	// sleep, keeping the park/wake path allocation-free.
	kAny  func(any)
	kVoid func()

	// wakeFn/wakeVal mirror Proc's pre-bound resume trampoline: every
	// wake schedules the same closure, staging the value in wakeVal.
	wakeFn  func()
	wakeVal any

	blockWhat string
	blockA    int64
	blockB    int64
}

// SpawnC creates a continuation-based process and schedules its start
// function at the current virtual time. Spawning consumes the same
// (id, start-event) sequence numbers as Spawn, so replacing a goroutine
// proc with a CProc leaves every later event's (time, seq) key unchanged.
func (e *Env) SpawnC(name string, start func(cp *CProc)) *CProc {
	e.seq++
	cp := &CProc{env: e, id: e.seq, name: name, done: e.NewEvent()}
	cp.wakeFn = func() {
		if cp.killed {
			return
		}
		cp.step()
	}
	e.procs[cp] = struct{}{}
	e.At(e.now, func() {
		if cp.killed {
			// kill() already removed the process and triggered done.
			return
		}
		start(cp)
		cp.checkYielded()
	})
	return cp
}

// step resumes the process: it consumes the staged wake value and the
// pending continuation, runs it, and checks the park-or-end invariant.
func (cp *CProc) step() {
	cp.parked = false
	cp.blockWhat = ""
	v := cp.wakeVal
	cp.wakeVal = nil
	switch {
	case cp.kAny != nil:
		k := cp.kAny
		cp.kAny = nil
		k(v)
	case cp.kVoid != nil:
		k := cp.kVoid
		cp.kVoid = nil
		k()
	default:
		panic(fmt.Sprintf("simtime: CProc %q woken with no pending continuation", cp.name))
	}
	cp.checkYielded()
}

// checkYielded enforces the park-or-end invariant after a segment runs.
func (cp *CProc) checkYielded() {
	if !cp.parked && !cp.ended && !cp.killed {
		panic(fmt.Sprintf("simtime: CProc %q returned neither parked nor ended at %v", cp.name, cp.env.now))
	}
}

// Name returns the name given at SpawnC.
func (cp *CProc) Name() string { return cp.name }

// Env returns the environment the process belongs to.
func (cp *CProc) Env() *Env { return cp.env }

// Done returns an event triggered when the process ends or is killed.
func (cp *CProc) Done() *Event { return cp.done }

// SetBlockReason records why the process is about to block, exactly as
// Proc.SetBlockReason does; the deadlock detector renders both flavors
// identically. Cleared automatically when the process resumes.
func (cp *CProc) SetBlockReason(what string, a, b int64) {
	cp.blockWhat, cp.blockA, cp.blockB = what, a, b
}

// ParkThen blocks the process until something wakes it (an Event trigger,
// a Queue push, or an explicit WakeCProc); k then receives the wake value.
// It is the continuation counterpart of Proc.Park.
func (cp *CProc) ParkThen(k func(v any)) {
	if cp.killed || cp.ended {
		panic(fmt.Sprintf("simtime: ParkThen on finished CProc %q", cp.name))
	}
	cp.env.npark++
	cp.kAny = k
	cp.parked = true
}

// WakeCProc schedules cp to resume at the current virtual time with v as
// the argument of its pending continuation — the counterpart of WakeProc.
// At most one wake may be pending per process.
func (e *Env) WakeCProc(cp *CProc, v any) { cp.wake(v) }

// SleepThen blocks the process for d of virtual time, then runs k. It is
// the continuation counterpart of Proc.Sleep.
func (cp *CProc) SleepThen(d Duration, k func()) {
	if d < 0 {
		panic(fmt.Sprintf("simtime: negative sleep %v", d))
	}
	if cp.killed || cp.ended {
		panic(fmt.Sprintf("simtime: SleepThen on finished CProc %q", cp.name))
	}
	e := cp.env
	e.npark++
	e.nwake++
	cp.kVoid = k
	cp.parked = true
	e.At(e.now+Time(d), cp.wakeFn)
}

// WaitThen runs k with the event's value once it triggers — immediately
// (synchronously) if it already has, mirroring Proc.Wait's immediate
// return on a triggered event.
func (cp *CProc) WaitThen(ev *Event, k func(v any)) {
	if ev.triggered {
		k(ev.val)
		return
	}
	ev.waiters = append(ev.waiters, cp)
	cp.ParkThen(k)
}

// PopThen runs k with the queue's head item — immediately (synchronously)
// if one is buffered, mirroring Proc-style Pop's immediate return —
// blocking the process until a Push otherwise.
func (q *Queue) PopThen(cp *CProc, k func(v any)) {
	if v, ok := q.TryPop(); ok {
		k(v)
		return
	}
	q.waiters = append(q.waiters, cp)
	cp.ParkThen(k)
}

// End finishes the process: it leaves the live set and its Done event
// triggers. Every CProc must eventually End (or be killed); a CProc that
// stops parking without ending panics via the park-or-end invariant.
func (cp *CProc) End() {
	if cp.ended {
		panic(fmt.Sprintf("simtime: CProc %q ended twice", cp.name))
	}
	if cp.killed {
		return
	}
	cp.ended = true
	cp.kAny, cp.kVoid, cp.wakeVal = nil, nil, nil
	delete(cp.env.procs, cp)
	cp.done.Trigger(nil)
}

// Kill forcibly terminates the process (the fault-injection primitive,
// identical in contract to Proc.Kill): any pending continuation is
// dropped, a pending wake becomes a no-op, and Done triggers — the same
// surface a killed goroutine proc presents. Killing a finished process
// is a harmless no-op. Must be invoked from an event callback.
func (cp *CProc) Kill() { cp.kill() }

func (cp *CProc) kill() {
	if cp.killed || cp.ended {
		return
	}
	cp.killed = true
	cp.kAny, cp.kVoid, cp.wakeVal = nil, nil, nil
	delete(cp.env.procs, cp)
	cp.done.Trigger(nil)
}

// process interface implementation.
func (cp *CProc) pid() uint64 { return cp.id }

func (cp *CProc) blocked() BlockedProc {
	return BlockedProc{Name: cp.name, What: cp.blockWhat, A: cp.blockA, B: cp.blockB}
}

func (cp *CProc) isKilled() bool { return cp.killed }

func (cp *CProc) wake(v any) {
	cp.wakeVal = v
	cp.env.nwake++
	cp.env.At(cp.env.now, cp.wakeFn)
}
