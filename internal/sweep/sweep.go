// Package sweep executes independent simulator runs concurrently.
//
// The experiments layer enumerates dozens of configurations per figure
// (scenario × nodes × offloading degree × LeWI/DROM × policy), and each
// configuration is one self-contained, deterministic, single-threaded
// simulator run on its own simtime.Env. The engine exploits exactly that
// two-level structure: a bounded worker pool executes the runs
// concurrently while results are collected by spec index, so output
// assembled from them is byte-identical to a sequential sweep regardless
// of completion order.
//
// Jobs must not share mutable state: everything a run touches (machine
// model, recorder, task graphs, RNGs) must be built inside the job. The
// one sanctioned shared structure is expander.Store, which is safe for
// concurrent use.
//
// A Hook attaches two service-layer concerns without touching the
// output contract: a per-job completion callback (the checkpointer of
// internal/jobs records each finished spec through it) and a
// context that stops the draw of new jobs when a sweep must be
// abandoned mid-flight (server shutdown, job cancellation, timeout).
package sweep

import (
	"context"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
)

// Engine is a bounded worker pool for independent simulator runs. A nil
// Engine is valid and runs sequentially.
type Engine struct {
	workers int
	hook    Hook
}

// Hook augments Run with service-layer callbacks. The zero Hook is a
// no-op.
type Hook struct {
	// Ctx, when non-nil, cancels the sweep: once Ctx is done no new
	// jobs are drawn. Jobs already started run to completion (simulator
	// runs are not interruptible mid-run), so Run returns after the
	// in-flight jobs finish. Results of jobs never drawn keep their
	// zero values; callers that cancel must check Ctx themselves and
	// discard the partial output.
	Ctx context.Context
	// Done, when non-nil, is called with the job's index immediately
	// after job(i) returns normally, in the goroutine that ran it. With
	// more than one worker calls are concurrent; Done must be safe for
	// concurrent use. It is not called for jobs that panic or were
	// never drawn.
	Done func(i int)
}

// New returns an engine running up to workers jobs concurrently.
// workers <= 0 selects runtime.NumCPU().
func New(workers int) *Engine {
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	return &Engine{workers: workers}
}

// WithHook returns a copy of the engine with the given hook attached.
// A nil receiver yields a sequential hooked engine.
func (e *Engine) WithHook(h Hook) *Engine {
	ne := &Engine{workers: 1, hook: h}
	if e != nil {
		ne.workers = e.workers
	}
	return ne
}

// Workers reports the engine's concurrency bound.
func (e *Engine) Workers() int {
	if e == nil || e.workers < 1 {
		return 1
	}
	return e.workers
}

// JobPanic is the value Run re-panics with when a job of a multi-worker
// sweep panics: it preserves the job's original panic value and the
// stack trace captured at the panic site, which the plain re-panic in
// the caller's goroutine would otherwise flatten away. The sequential
// (one worker) path does not wrap — there the original panic propagates
// natively with its stack intact.
type JobPanic struct {
	// Index is the panicking job's spec index (the lowest one when
	// several jobs panic, so failures surface deterministically).
	Index int
	// Value is the job's original panic value.
	Value any
	// Stack is the panicking goroutine's stack at recovery, formatted
	// by runtime/debug.Stack.
	Stack []byte
}

// Error renders the panic with the original stack appended, so an
// uncaught JobPanic still shows where the job blew up.
func (p *JobPanic) Error() string {
	return fmt.Sprintf("sweep: job %d panicked: %v\n\njob stack:\n%s", p.Index, p.Value, p.Stack)
}

// Unwrap exposes a wrapped error panic value to errors.Is/As.
func (p *JobPanic) Unwrap() error {
	if err, ok := p.Value.(error); ok {
		return err
	}
	return nil
}

// canceled reports whether the hook's context is done.
func (h Hook) canceled() bool {
	return h.Ctx != nil && h.Ctx.Err() != nil
}

// Run executes job(0) … job(n-1). With one worker the jobs run in the
// calling goroutine in index order — exactly the historical sequential
// sweep, panics included. With more workers the jobs are drawn from a
// shared counter by min(n, workers) goroutines; a panicking job stops
// the draw, and after all in-flight jobs finish Run re-panics in the
// caller with a *JobPanic carrying the lowest-index panic value and its
// original stack. If the engine's hook context is canceled, no further
// jobs are drawn and Run returns after the in-flight ones complete.
func (e *Engine) Run(n int, job func(i int)) {
	if n <= 0 {
		return
	}
	var hook Hook
	if e != nil {
		hook = e.hook
	}
	workers := e.Workers()
	if workers > n {
		workers = n
	}
	if workers == 1 {
		for i := 0; i < n; i++ {
			if hook.canceled() {
				return
			}
			job(i)
			if hook.Done != nil {
				hook.Done(i)
			}
		}
		return
	}
	var (
		next     atomic.Int64
		wg       sync.WaitGroup
		mu       sync.Mutex
		panicked *JobPanic
	)
	next.Store(-1)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				if hook.canceled() {
					return
				}
				i := int(next.Add(1))
				if i >= n {
					return
				}
				ok := func() (ok bool) {
					defer func() {
						if r := recover(); r != nil {
							stack := debug.Stack()
							mu.Lock()
							if panicked == nil || i < panicked.Index {
								panicked = &JobPanic{Index: i, Value: r, Stack: stack}
							}
							mu.Unlock()
							next.Store(int64(n)) // stop drawing new jobs
						}
					}()
					job(i)
					return true
				}()
				if ok && hook.Done != nil {
					hook.Done(i)
				}
			}
		}()
	}
	wg.Wait()
	if panicked != nil {
		panic(panicked)
	}
}

// Map runs one job per spec through the engine and returns the results
// in spec order, independent of completion order. Specs skipped by a
// hook-context cancellation keep the zero value of R.
func Map[S, R any](e *Engine, specs []S, run func(S) R) []R {
	out := make([]R, len(specs))
	e.Run(len(specs), func(i int) { out[i] = run(specs[i]) })
	return out
}
