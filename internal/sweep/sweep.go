// Package sweep executes independent simulator runs concurrently.
//
// The experiments layer enumerates dozens of configurations per figure
// (scenario × nodes × offloading degree × LeWI/DROM × policy), and each
// configuration is one self-contained, deterministic, single-threaded
// simulator run on its own simtime.Env. The engine exploits exactly that
// two-level structure: a bounded worker pool executes the runs
// concurrently while results are collected by spec index, so output
// assembled from them is byte-identical to a sequential sweep regardless
// of completion order.
//
// Jobs must not share mutable state: everything a run touches (machine
// model, recorder, task graphs, RNGs) must be built inside the job. The
// one sanctioned shared structure is expander.Store, which is safe for
// concurrent use.
package sweep

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// Engine is a bounded worker pool for independent simulator runs. A nil
// Engine is valid and runs sequentially.
type Engine struct {
	workers int
}

// New returns an engine running up to workers jobs concurrently.
// workers <= 0 selects runtime.NumCPU().
func New(workers int) *Engine {
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	return &Engine{workers: workers}
}

// Workers reports the engine's concurrency bound.
func (e *Engine) Workers() int {
	if e == nil || e.workers < 1 {
		return 1
	}
	return e.workers
}

// Run executes job(0) … job(n-1). With one worker the jobs run in the
// calling goroutine in index order — exactly the historical sequential
// sweep, panics included. With more workers the jobs are drawn from a
// shared counter by min(n, workers) goroutines; a panicking job stops
// the draw, and after all in-flight jobs finish Run re-panics in the
// caller with the lowest-index panic so failures surface deterministically.
func (e *Engine) Run(n int, job func(i int)) {
	if n <= 0 {
		return
	}
	workers := e.Workers()
	if workers > n {
		workers = n
	}
	if workers == 1 {
		for i := 0; i < n; i++ {
			job(i)
		}
		return
	}
	var (
		next     atomic.Int64
		wg       sync.WaitGroup
		mu       sync.Mutex
		panicIdx = -1
		panicVal any
	)
	next.Store(-1)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1))
				if i >= n {
					return
				}
				func() {
					defer func() {
						if r := recover(); r != nil {
							mu.Lock()
							if panicIdx < 0 || i < panicIdx {
								panicIdx, panicVal = i, r
							}
							mu.Unlock()
							next.Store(int64(n)) // stop drawing new jobs
						}
					}()
					job(i)
				}()
			}
		}()
	}
	wg.Wait()
	if panicIdx >= 0 {
		panic(fmt.Sprintf("sweep: job %d panicked: %v", panicIdx, panicVal))
	}
}

// Map runs one job per spec through the engine and returns the results
// in spec order, independent of completion order.
func Map[S, R any](e *Engine, specs []S, run func(S) R) []R {
	out := make([]R, len(specs))
	e.Run(len(specs), func(i int) { out[i] = run(specs[i]) })
	return out
}
