package sweep

import (
	"context"
	"errors"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
)

func TestMapPreservesSpecOrder(t *testing.T) {
	specs := make([]int, 100)
	for i := range specs {
		specs[i] = i
	}
	for _, workers := range []int{1, 2, 7, 16} {
		out := Map(New(workers), specs, func(s int) int { return s * s })
		for i, v := range out {
			if v != i*i {
				t.Fatalf("workers=%d: out[%d] = %d, want %d", workers, i, v, i*i)
			}
		}
	}
}

func TestRunBoundsConcurrency(t *testing.T) {
	const workers = 3
	var cur, peak atomic.Int64
	var mu sync.Mutex
	e := New(workers)
	e.Run(50, func(i int) {
		c := cur.Add(1)
		mu.Lock()
		if c > peak.Load() {
			peak.Store(c)
		}
		mu.Unlock()
		cur.Add(-1)
	})
	if p := peak.Load(); p > workers {
		t.Fatalf("observed %d concurrent jobs, bound is %d", p, workers)
	}
}

func TestSequentialRunsInCallerOrder(t *testing.T) {
	var order []int
	New(1).Run(10, func(i int) { order = append(order, i) })
	for i, v := range order {
		if v != i {
			t.Fatalf("sequential order broken: %v", order)
		}
	}
}

func TestNilEngineIsSequential(t *testing.T) {
	var e *Engine
	if e.Workers() != 1 {
		t.Fatalf("nil engine workers = %d", e.Workers())
	}
	var n int
	e.Run(5, func(int) { n++ })
	if n != 5 {
		t.Fatalf("nil engine ran %d jobs", n)
	}
}

func TestPanicPropagatesLowestIndex(t *testing.T) {
	for _, workers := range []int{1, 4} {
		func() {
			defer func() {
				r := recover()
				if r == nil {
					t.Fatalf("workers=%d: panic swallowed", workers)
				}
				if workers == 1 {
					// Sequential path re-panics the original value with
					// its natural stack.
					if _, ok := r.(errBoom); !ok {
						t.Fatalf("workers=1: unexpected panic %v", r)
					}
					return
				}
				jp, ok := r.(*JobPanic)
				if !ok {
					t.Fatalf("workers=%d: panic value %T, want *JobPanic", workers, r)
				}
				if _, ok := jp.Value.(errBoom); !ok {
					t.Fatalf("original panic value lost: %v", jp.Value)
				}
				if !strings.Contains(jp.Error(), "boom") {
					t.Fatalf("Error() lost the value: %q", jp.Error())
				}
				if !strings.Contains(string(jp.Stack), "sweep_test.go") {
					t.Fatalf("stack does not point at the panic site:\n%s", jp.Stack)
				}
			}()
			New(workers).Run(20, func(i int) {
				if i == 3 {
					panic(errBoom{})
				}
			})
		}()
	}
}

func TestJobPanicUnwrap(t *testing.T) {
	jp := &JobPanic{Index: 2, Value: errBoom{}}
	if !errors.Is(jp, errBoom{}) {
		t.Fatal("errors.Is does not see the wrapped error panic value")
	}
	if (&JobPanic{Value: "not an error"}).Unwrap() != nil {
		t.Fatal("non-error panic value must unwrap to nil")
	}
}

func TestHookDoneFiresPerCompletedJob(t *testing.T) {
	for _, workers := range []int{1, 4} {
		var mu sync.Mutex
		done := map[int]int{}
		e := New(workers).WithHook(Hook{Done: func(i int) {
			mu.Lock()
			done[i]++
			mu.Unlock()
		}})
		out := Map(e, []int{0, 1, 2, 3, 4, 5, 6, 7}, func(s int) int { return s + 1 })
		for i, v := range out {
			if v != i+1 {
				t.Fatalf("workers=%d: out[%d] = %d", workers, i, v)
			}
		}
		if len(done) != 8 {
			t.Fatalf("workers=%d: Done fired for %d jobs, want 8", workers, len(done))
		}
		for i, n := range done {
			if n != 1 {
				t.Fatalf("workers=%d: Done(%d) fired %d times", workers, i, n)
			}
		}
	}
}

func TestHookDoneSkippedOnPanic(t *testing.T) {
	for _, workers := range []int{1, 4} {
		var mu sync.Mutex
		done := map[int]bool{}
		func() {
			defer func() { recover() }()
			New(workers).WithHook(Hook{Done: func(i int) {
				mu.Lock()
				done[i] = true
				mu.Unlock()
			}}).Run(6, func(i int) {
				if i == 2 {
					panic("nope")
				}
			})
		}()
		if done[2] {
			t.Fatalf("workers=%d: Done fired for the panicking job", workers)
		}
	}
}

func TestHookContextCancelStopsDraw(t *testing.T) {
	for _, workers := range []int{1, 3} {
		ctx, cancel := context.WithCancel(context.Background())
		var ran atomic.Int64
		e := New(workers).WithHook(Hook{Ctx: ctx, Done: func(i int) {
			if i == 1 {
				cancel()
			}
		}})
		e.Run(1000, func(i int) { ran.Add(1) })
		// Cancellation is advisory — in-flight jobs finish, and workers
		// mid-draw may slip one more in — but the sweep must stop far
		// short of the full 1000.
		if n := ran.Load(); n > 100 {
			t.Fatalf("workers=%d: %d jobs ran after early cancel", workers, n)
		}
		cancel()
	}
}

func TestCanceledContextRunsNothing(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, workers := range []int{1, 4} {
		New(workers).WithHook(Hook{Ctx: ctx}).Run(10, func(i int) {
			t.Fatalf("workers=%d: job %d ran under a canceled context", workers, i)
		})
	}
}

type errBoom struct{}

func (errBoom) Error() string { return "boom" }

func TestRunZeroJobs(t *testing.T) {
	New(4).Run(0, func(int) { t.Fatal("job ran") })
}
