package sweep

import (
	"strings"
	"sync"
	"sync/atomic"
	"testing"
)

func TestMapPreservesSpecOrder(t *testing.T) {
	specs := make([]int, 100)
	for i := range specs {
		specs[i] = i
	}
	for _, workers := range []int{1, 2, 7, 16} {
		out := Map(New(workers), specs, func(s int) int { return s * s })
		for i, v := range out {
			if v != i*i {
				t.Fatalf("workers=%d: out[%d] = %d, want %d", workers, i, v, i*i)
			}
		}
	}
}

func TestRunBoundsConcurrency(t *testing.T) {
	const workers = 3
	var cur, peak atomic.Int64
	var mu sync.Mutex
	e := New(workers)
	e.Run(50, func(i int) {
		c := cur.Add(1)
		mu.Lock()
		if c > peak.Load() {
			peak.Store(c)
		}
		mu.Unlock()
		cur.Add(-1)
	})
	if p := peak.Load(); p > workers {
		t.Fatalf("observed %d concurrent jobs, bound is %d", p, workers)
	}
}

func TestSequentialRunsInCallerOrder(t *testing.T) {
	var order []int
	New(1).Run(10, func(i int) { order = append(order, i) })
	for i, v := range order {
		if v != i {
			t.Fatalf("sequential order broken: %v", order)
		}
	}
}

func TestNilEngineIsSequential(t *testing.T) {
	var e *Engine
	if e.Workers() != 1 {
		t.Fatalf("nil engine workers = %d", e.Workers())
	}
	var n int
	e.Run(5, func(int) { n++ })
	if n != 5 {
		t.Fatalf("nil engine ran %d jobs", n)
	}
}

func TestPanicPropagatesLowestIndex(t *testing.T) {
	for _, workers := range []int{1, 4} {
		func() {
			defer func() {
				r := recover()
				if r == nil {
					t.Fatalf("workers=%d: panic swallowed", workers)
				}
				msg, ok := r.(string)
				if workers == 1 {
					// Sequential path re-panics the original value.
					msg, ok = r.(error).Error(), true
				}
				if !ok || !strings.Contains(msg, "boom") {
					t.Fatalf("workers=%d: unexpected panic %v", workers, r)
				}
			}()
			New(workers).Run(20, func(i int) {
				if i == 3 {
					panic(errBoom{})
				}
			})
		}()
	}
}

type errBoom struct{}

func (errBoom) Error() string { return "boom" }

func TestRunZeroJobs(t *testing.T) {
	New(4).Run(0, func(int) { t.Fatal("job ran") })
}
