package nbody

import "testing"

// BenchmarkTreeBuild measures octree construction.
func BenchmarkTreeBuild(b *testing.B) {
	s := NewRandomSphere(4096, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.BuildTree()
	}
}

// BenchmarkForceEval measures theta-criterion force evaluation per body.
func BenchmarkForceEval(b *testing.B) {
	s := NewRandomSphere(4096, 1)
	tr := s.BuildTree()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.ForceOn(i % 4096)
	}
}

// BenchmarkORB measures the recursive bisection over 32 parts.
func BenchmarkORB(b *testing.B) {
	s := NewRandomSphere(8192, 1)
	pos := make([]Vec3, len(s.Bodies))
	for i, bd := range s.Bodies {
		pos[i] = bd.Pos
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ORB(pos, nil, 32)
	}
}
