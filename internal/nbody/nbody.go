// Package nbody implements a real 3-D Barnes–Hut n-body simulation — the
// application used in §6.2/§7.1 of the paper (a parallel Barnes–Hut code
// with Orthogonal Recursive Bisection, after Barkman's implementation and
// Salmon's thesis).
//
// The package contains genuine physics: octree construction, θ-criterion
// force evaluation with Plummer softening, leapfrog integration, direct
// O(n²) summation (the verification baseline), and an ORB partitioner
// that splits bodies across ranks by work weight. The cluster adapter in
// adapter.go drives the simulated runtime with per-chunk interaction
// counts as task durations.
package nbody

import (
	"fmt"
	"math"
	"math/rand"
)

// Vec3 is a 3-component vector.
type Vec3 [3]float64

// Add returns v + o.
func (v Vec3) Add(o Vec3) Vec3 { return Vec3{v[0] + o[0], v[1] + o[1], v[2] + o[2]} }

// Sub returns v - o.
func (v Vec3) Sub(o Vec3) Vec3 { return Vec3{v[0] - o[0], v[1] - o[1], v[2] - o[2]} }

// Scale returns v * s.
func (v Vec3) Scale(s float64) Vec3 { return Vec3{v[0] * s, v[1] * s, v[2] * s} }

// Dot returns the dot product.
func (v Vec3) Dot(o Vec3) float64 { return v[0]*o[0] + v[1]*o[1] + v[2]*o[2] }

// Norm returns the Euclidean length.
func (v Vec3) Norm() float64 { return math.Sqrt(v.Dot(v)) }

// Body is a point mass.
type Body struct {
	Pos  Vec3
	Vel  Vec3
	Mass float64
}

// System is an n-body simulation state.
type System struct {
	Bodies []Body
	// Theta is the Barnes–Hut opening angle (0 degenerates to exact
	// summation).
	Theta float64
	// G is the gravitational constant (1 in simulation units).
	G float64
	// DT is the leapfrog timestep.
	DT float64
	// Eps is the Plummer softening length.
	Eps float64
}

// NewRandomSphere builds a system of n bodies uniformly distributed in a
// unit sphere with small random velocities and equal masses summing to 1.
func NewRandomSphere(n int, seed int64) *System {
	if n <= 0 {
		panic(fmt.Sprintf("nbody: %d bodies", n))
	}
	rng := rand.New(rand.NewSource(seed))
	s := &System{
		Bodies: make([]Body, n),
		Theta:  0.5,
		G:      1,
		DT:     1e-3,
		Eps:    1e-2,
	}
	for i := range s.Bodies {
		var p Vec3
		for {
			p = Vec3{2*rng.Float64() - 1, 2*rng.Float64() - 1, 2*rng.Float64() - 1}
			if p.Dot(p) <= 1 {
				break
			}
		}
		s.Bodies[i] = Body{
			Pos:  p,
			Vel:  Vec3{rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()}.Scale(0.05),
			Mass: 1 / float64(n),
		}
	}
	return s
}

// accel returns the softened gravitational acceleration contribution on a
// body at pos from a point mass m at q.
func (s *System) accel(pos Vec3, m float64, q Vec3) Vec3 {
	d := q.Sub(pos)
	r2 := d.Dot(d) + s.Eps*s.Eps
	inv := 1 / (r2 * math.Sqrt(r2))
	return d.Scale(s.G * m * inv)
}

// DirectForce computes the exact O(n) acceleration on body i by direct
// summation over all other bodies.
func (s *System) DirectForce(i int) Vec3 {
	var a Vec3
	for j := range s.Bodies {
		if j == i {
			continue
		}
		a = a.Add(s.accel(s.Bodies[i].Pos, s.Bodies[j].Mass, s.Bodies[j].Pos))
	}
	return a
}

// Step advances the system one leapfrog (kick-drift) step using the given
// per-body accelerations.
func (s *System) Step(acc []Vec3) {
	if len(acc) != len(s.Bodies) {
		panic("nbody: acceleration vector length mismatch")
	}
	for i := range s.Bodies {
		b := &s.Bodies[i]
		b.Vel = b.Vel.Add(acc[i].Scale(s.DT))
		b.Pos = b.Pos.Add(b.Vel.Scale(s.DT))
	}
}

// Momentum returns the total linear momentum.
func (s *System) Momentum() Vec3 {
	var p Vec3
	for _, b := range s.Bodies {
		p = p.Add(b.Vel.Scale(b.Mass))
	}
	return p
}

// Energy returns the total energy (kinetic + softened potential),
// computed exactly in O(n2).
func (s *System) Energy() float64 {
	e := 0.0
	for i, b := range s.Bodies {
		e += 0.5 * b.Mass * b.Vel.Dot(b.Vel)
		for j := i + 1; j < len(s.Bodies); j++ {
			d := s.Bodies[j].Pos.Sub(b.Pos)
			r := math.Sqrt(d.Dot(d) + s.Eps*s.Eps)
			e -= s.G * b.Mass * s.Bodies[j].Mass / r
		}
	}
	return e
}
