package nbody

import (
	"fmt"
	"sync"

	"ompsscluster/internal/core"
	"ompsscluster/internal/nanos"
	"ompsscluster/internal/simtime"
)

// AdapterConfig parameterises a cluster run of the Barnes–Hut code.
type AdapterConfig struct {
	// Bodies is the total body count.
	Bodies int
	// Steps is the number of timesteps.
	Steps int
	// ChunksPerRank is the number of force tasks each apprank submits
	// per step (the paper's "single offloadable task that calculates the
	// forces on a number of bodies", replicated over chunks).
	ChunksPerRank int
	// CostPerInteraction converts tree-traversal interaction counts into
	// nominal task time.
	CostPerInteraction simtime.Duration
	// TreeCostPerBody is the per-body cost of the (non-offloadable)
	// tree-construction task each rank runs per step.
	TreeCostPerBody simtime.Duration
	// Theta is the opening angle.
	Theta float64
	// DT overrides the leapfrog timestep (default 1e-3). Larger steps
	// make the distribution evolve faster, so ORB's stale weights (from
	// the previous step) produce more fine-grained imbalance.
	DT float64
	// TimeWeights makes ORB weigh bodies by measured execution time
	// (interaction count scaled by the executing rank's home-node speed)
	// instead of raw interaction counts. On a heterogeneous machine this
	// makes ORB chase the slow node — shrinking the slow ranks' share,
	// then growing it back — an oscillation that leaves residual
	// fine-grained imbalance for DLB to absorb.
	TimeWeights bool
	// Seed initializes the body distribution.
	Seed int64
}

// ClusterSim couples the real Barnes–Hut physics with the simulated
// MPI+OmpSs-2@Cluster runtime: every timestep each apprank recomputes the
// ORB decomposition (replicated, as in the original code), evaluates the
// real forces for its bodies, and submits force tasks whose durations are
// the measured interaction counts scaled by CostPerInteraction. ORB
// balances interaction counts, so on a machine with a slow node the slow
// ranks still receive equal work — the imbalance the paper's Figure 6(c)
// studies.
type ClusterSim struct {
	cfg AdapterConfig
	sys *System

	weights []float64 // per-body interaction counts from the last step
	acc     []Vec3
	counts  []int

	// mu guards the once-per-step replicated transitions (leapfrog
	// apply, ORB decomposition, tree build): under the partitioned
	// engine, ranks on different host workers reach them concurrently.
	// Every transition is first-toucher idempotent with inputs that are
	// complete before any rank can reach it, so which rank performs it
	// — a function of wake order the partitioned engine does not
	// reproduce across partitions — is unobservable.
	mu         sync.Mutex
	orbStep    int   // step the cached assignment belongs to
	orbAssign  []int // cached ORB assignment
	treeStep   int
	tree       *Octree
	appliedFor int            // last step whose leapfrog update has been applied
	stepEnds   []simtime.Time // per-step completion times (rank 0)
}

// NewClusterSim builds the coupled simulation.
func NewClusterSim(cfg AdapterConfig) *ClusterSim {
	if cfg.Bodies <= 0 || cfg.Steps <= 0 || cfg.ChunksPerRank <= 0 {
		panic("nbody: Bodies, Steps and ChunksPerRank must be positive")
	}
	if cfg.CostPerInteraction <= 0 {
		panic("nbody: CostPerInteraction must be positive")
	}
	if cfg.Theta == 0 {
		cfg.Theta = 0.5
	}
	sys := NewRandomSphere(cfg.Bodies, cfg.Seed)
	sys.Theta = cfg.Theta
	if cfg.DT > 0 {
		sys.DT = cfg.DT
	}
	cs := &ClusterSim{
		cfg:        cfg,
		sys:        sys,
		weights:    make([]float64, cfg.Bodies),
		acc:        make([]Vec3, cfg.Bodies),
		counts:     make([]int, cfg.Bodies),
		orbStep:    -1,
		treeStep:   -1,
		appliedFor: -1,
	}
	for i := range cs.weights {
		cs.weights[i] = 1
	}
	return cs
}

// System exposes the underlying physical state (for verification).
func (cs *ClusterSim) System() *System { return cs.sys }

// orb returns the ORB assignment for the given step, computing it once
// per step (every rank would compute the identical replicated
// decomposition). It first applies any pending leapfrog update for the
// previous step, so the decomposition always reads post-integration
// positions no matter which rank gets here first.
func (cs *ClusterSim) orb(step, parts int) []int {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	cs.ensureStepped(step - 1)
	if cs.orbStep != step {
		pos := make([]Vec3, len(cs.sys.Bodies))
		for i, b := range cs.sys.Bodies {
			pos[i] = b.Pos
		}
		cs.orbAssign = ORB(pos, cs.weights, parts)
		cs.orbStep = step
	}
	return cs.orbAssign
}

// treeFor returns the step's octree, built once from the replicated
// post-integration positions.
func (cs *ClusterSim) treeFor(step int) *Octree {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	if cs.treeStep != step {
		cs.tree = cs.sys.BuildTree()
		cs.treeStep = step
	}
	return cs.tree
}

// ensureStepped applies the leapfrog update for the given step if it has
// not been applied yet. Callers hold cs.mu. The accelerations are
// complete before any rank can reach the transition: every rank writes
// its own bodies' entries before entering the step's allgather, and the
// collective completes only after all ranks have entered.
func (cs *ClusterSim) ensureStepped(step int) {
	if step < 0 || cs.appliedFor >= step {
		return
	}
	cs.appliedFor = step
	cs.sys.Step(cs.acc)
}

// Main returns the SPMD main function.
func (cs *ClusterSim) Main() func(app *core.App) {
	return func(app *core.App) {
		rank := app.Rank()
		parts := app.NumRanks()
		treeRegion := app.Alloc(int64(cs.cfg.Bodies) * 8)
		posRegion := app.Alloc(int64(cs.cfg.Bodies) * 24)
		chunkRegions := make([]nanos.Region, cs.cfg.ChunksPerRank)
		for i := range chunkRegions {
			chunkRegions[i] = app.Alloc(64 << 10)
		}
		for step := 0; step < cs.cfg.Steps; step++ {
			assign := cs.orb(step, parts)
			var mine []int
			for i, p := range assign {
				if p == rank {
					mine = append(mine, i)
				}
			}
			// Real physics: build the tree (cached per step — every rank
			// would build an identical replica) and evaluate forces for
			// this rank's bodies, recording interaction counts. The rank
			// also stamps its own bodies' ORB weights here, before the
			// step's allgather, so the weights are complete — and
			// identical regardless of post-collective wake order — by the
			// time any rank computes the next step's decomposition.
			tree := cs.treeFor(step)
			rankInteractions := 0
			for _, i := range mine {
				cs.acc[i], cs.counts[i] = tree.ForceOn(i)
				rankInteractions += cs.counts[i]
			}
			if !cs.cfg.TimeWeights {
				for _, i := range mine {
					cs.weights[i] = float64(cs.counts[i])
				}
			} else {
				// Time-scaled: interaction count over the executing
				// rank's home-node speed.
				speed := app.NodeSpeed()
				for _, i := range mine {
					cs.weights[i] = float64(cs.counts[i]) / speed
				}
			}
			// Tree construction runs as a non-offloadable task at home: it
			// consumes the previous step's force outputs (pulling any
			// remotely computed forces back, as the original code's
			// exchange does) and publishes the new tree and positions.
			treeAcc := []nanos.Access{
				{Region: treeRegion, Mode: nanos.Out},
				{Region: posRegion, Mode: nanos.Out},
			}
			for _, cr := range chunkRegions {
				treeAcc = append(treeAcc, nanos.Access{Region: cr, Mode: nanos.In})
			}
			app.Submit(core.TaskSpec{
				Label:       "bh-tree",
				Work:        cs.cfg.TreeCostPerBody * simtime.Duration(cs.cfg.Bodies),
				Accesses:    treeAcc,
				Offloadable: false,
			})
			// Force tasks: contiguous chunks of this rank's bodies, task
			// time proportional to the measured interaction counts.
			nchunks := cs.cfg.ChunksPerRank
			for c := 0; c < nchunks; c++ {
				loC := len(mine) * c / nchunks
				hiC := len(mine) * (c + 1) / nchunks
				inter := 0
				for _, i := range mine[loC:hiC] {
					inter += cs.counts[i]
				}
				// Out on the chunk: each step's forces overwrite dead
				// data, so the freshly built home-resident tree drives
				// the locality decision, exactly as after the original
				// code's position exchange.
				app.Submit(core.TaskSpec{
					Label: fmt.Sprintf("bh-force-%d", c),
					Work:  simtime.Duration(inter) * cs.cfg.CostPerInteraction,
					Accesses: []nanos.Access{
						{Region: chunkRegions[c], Mode: nanos.Out},
						{Region: treeRegion, Mode: nanos.In},
					},
					Offloadable: true,
				})
			}
			app.TaskWait()
			// Exchange updated positions (the allgather of the original
			// code).
			app.Comm().Allgather(rankInteractions, int64(cs.cfg.Bodies*24/parts))
			// Integrate once — every rank holds a replica of the same
			// state. The next step's orb() performs the same transition,
			// so the final step still integrates when no rank loops again.
			cs.mu.Lock()
			cs.ensureStepped(step)
			cs.mu.Unlock()
			if rank == 0 {
				cs.stepEnds = append(cs.stepEnds, app.Now())
			}
		}
	}
}

// StepEnds returns the per-step completion times observed by rank 0.
// Valid after the run; a ClusterSim must not be reused across runs.
func (cs *ClusterSim) StepEnds() []simtime.Time {
	return append([]simtime.Time(nil), cs.stepEnds...)
}

// TotalWorkNominal estimates the run's total nominal task work in
// core-nanoseconds by replaying the physics on a copy (used by
// experiments to compute the perfect-balance bound without a cluster
// run).
func (cs *ClusterSim) TotalWorkNominal(parts int) float64 {
	clone := NewClusterSim(cs.cfg)
	total := 0.0
	for step := 0; step < cs.cfg.Steps; step++ {
		acc, counts := clone.sys.ComputeForces()
		for _, c := range counts {
			total += float64(c) * float64(cs.cfg.CostPerInteraction)
		}
		total += float64(cs.cfg.TreeCostPerBody) * float64(cs.cfg.Bodies) * float64(parts)
		clone.sys.Step(acc)
	}
	return total
}
