package nbody

import (
	"fmt"
	"sort"
)

// ORB partitions bodies into parts groups by Orthogonal Recursive
// Bisection: at each level the current group is split along its widest
// spatial axis so that the work weight is divided in proportion to the
// number of ranks on each side. This is the application-level load
// balancing the paper's n-body code performs every timestep — note that
// it balances *work*, not *time*, so it cannot compensate for a slow
// node (§7.1).
//
// It returns assign with assign[i] in [0, parts) for every body.
func ORB(pos []Vec3, weights []float64, parts int) []int {
	if parts <= 0 {
		panic(fmt.Sprintf("nbody: ORB into %d parts", parts))
	}
	if weights != nil && len(weights) != len(pos) {
		panic("nbody: ORB weights length mismatch")
	}
	assign := make([]int, len(pos))
	idx := make([]int, len(pos))
	for i := range idx {
		idx[i] = i
	}
	w := func(i int) float64 {
		if weights == nil {
			return 1
		}
		// Zero-weight bodies still need a home; give them a floor so
		// splits remain meaningful.
		if weights[i] <= 0 {
			return 1e-12
		}
		return weights[i]
	}
	var rec func(ids []int, firstPart, nParts int)
	rec = func(ids []int, firstPart, nParts int) {
		if nParts == 1 {
			for _, i := range ids {
				assign[i] = firstPart
			}
			return
		}
		// Widest axis of the bounding box.
		axis := widestAxis(pos, ids)
		sort.Slice(ids, func(a, b int) bool {
			if pos[ids[a]][axis] != pos[ids[b]][axis] {
				return pos[ids[a]][axis] < pos[ids[b]][axis]
			}
			return ids[a] < ids[b]
		})
		leftParts := nParts / 2
		target := 0.0
		total := 0.0
		for _, i := range ids {
			total += w(i)
		}
		target = total * float64(leftParts) / float64(nParts)
		// Find the cut achieving the target weight on the left.
		acc := 0.0
		cut := 0
		for cut < len(ids)-1 && acc+w(ids[cut]) <= target {
			acc += w(ids[cut])
			cut++
		}
		// Guarantee progress: each side gets at least one body when
		// possible.
		if cut == 0 && len(ids) > 1 {
			cut = 1
		}
		rec(ids[:cut], firstPart, leftParts)
		rec(ids[cut:], firstPart+leftParts, nParts-leftParts)
	}
	rec(idx, 0, parts)
	return assign
}

// widestAxis returns the axis with the largest coordinate spread.
func widestAxis(pos []Vec3, ids []int) int {
	if len(ids) == 0 {
		return 0
	}
	lo, hi := pos[ids[0]], pos[ids[0]]
	for _, i := range ids[1:] {
		for k := 0; k < 3; k++ {
			if pos[i][k] < lo[k] {
				lo[k] = pos[i][k]
			}
			if pos[i][k] > hi[k] {
				hi[k] = pos[i][k]
			}
		}
	}
	axis := 0
	best := hi[0] - lo[0]
	for k := 1; k < 3; k++ {
		if hi[k]-lo[k] > best {
			best = hi[k] - lo[k]
			axis = k
		}
	}
	return axis
}

// PartWeights sums the weight assigned to each part (for balance tests
// and the adapter's diagnostics).
func PartWeights(assign []int, weights []float64, parts int) []float64 {
	out := make([]float64, parts)
	for i, p := range assign {
		w := 1.0
		if weights != nil {
			w = weights[i]
		}
		out[p] += w
	}
	return out
}
