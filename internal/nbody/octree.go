package nbody

import "math"

// cell is one octree node: either an internal node with children, a leaf
// holding one body, or empty.
type cell struct {
	center   Vec3
	half     float64 // half the cell edge length
	mass     float64
	com      Vec3 // center of mass (weighted sum during build)
	body     int  // body index for single-body leaves, -1 otherwise
	children *[8]*cell
	nbodies  int
}

// Octree is a Barnes–Hut spatial tree over a snapshot of body positions.
type Octree struct {
	sys   *System
	root  *cell
	cells int
}

// BuildTree constructs the octree for the current body positions.
func (s *System) BuildTree() *Octree {
	t := &Octree{sys: s}
	if len(s.Bodies) == 0 {
		return t
	}
	// Bounding cube.
	lo, hi := s.Bodies[0].Pos, s.Bodies[0].Pos
	for _, b := range s.Bodies[1:] {
		for k := 0; k < 3; k++ {
			lo[k] = math.Min(lo[k], b.Pos[k])
			hi[k] = math.Max(hi[k], b.Pos[k])
		}
	}
	half := 0.0
	var center Vec3
	for k := 0; k < 3; k++ {
		center[k] = 0.5 * (lo[k] + hi[k])
		half = math.Max(half, 0.5*(hi[k]-lo[k]))
	}
	half += 1e-12 // keep boundary bodies strictly inside
	t.root = &cell{center: center, half: half, body: -1}
	t.cells = 1
	for i := range s.Bodies {
		t.insert(t.root, i, 0)
	}
	t.finalize(t.root)
	return t
}

// maxDepth bounds pathological coincident-point recursion.
const maxDepth = 64

// insert places body i into the subtree rooted at c.
func (t *Octree) insert(c *cell, i int, depth int) {
	b := &t.sys.Bodies[i]
	c.mass += b.Mass
	c.com = c.com.Add(b.Pos.Scale(b.Mass))
	c.nbodies++
	if c.nbodies == 1 {
		c.body = i
		return
	}
	if c.children == nil {
		if depth >= maxDepth {
			// Coincident points: keep as a multi-body leaf; force
			// evaluation falls back to the aggregated mass.
			c.body = -1
			return
		}
		// Split: push the resident body down.
		old := c.body
		c.body = -1
		c.children = new([8]*cell)
		t.pushDown(c, old, depth)
	}
	if depth >= maxDepth {
		return
	}
	t.pushDown(c, i, depth)
}

// pushDown inserts body i into the proper child of c, creating it if
// needed. It does not touch c's own aggregates.
func (t *Octree) pushDown(c *cell, i, depth int) {
	pos := t.sys.Bodies[i].Pos
	oct := 0
	var off Vec3
	for k := 0; k < 3; k++ {
		if pos[k] >= c.center[k] {
			oct |= 1 << k
			off[k] = c.half / 2
		} else {
			off[k] = -c.half / 2
		}
	}
	ch := c.children[oct]
	if ch == nil {
		ch = &cell{center: c.center.Add(off), half: c.half / 2, body: -1}
		c.children[oct] = ch
		t.cells++
	}
	t.insert(ch, i, depth+1)
}

// finalize converts weighted position sums into centers of mass.
func (t *Octree) finalize(c *cell) {
	if c == nil {
		return
	}
	if c.mass > 0 {
		c.com = c.com.Scale(1 / c.mass)
	}
	if c.children != nil {
		for _, ch := range c.children {
			t.finalize(ch)
		}
	}
}

// Cells returns the number of allocated tree cells.
func (t *Octree) Cells() int { return t.cells }

// NumBodies returns the number of bodies indexed by the tree.
func (t *Octree) NumBodies() int {
	if t.root == nil {
		return 0
	}
	return t.root.nbodies
}

// ForceOn evaluates the Barnes–Hut acceleration on body i and returns it
// together with the number of interactions (body-body or body-cell) the
// traversal performed. The interaction count is the work measure the
// cluster adapter and the ORB partitioner consume.
func (t *Octree) ForceOn(i int) (Vec3, int) {
	if t.root == nil {
		return Vec3{}, 0
	}
	return t.force(t.root, i)
}

func (t *Octree) force(c *cell, i int) (Vec3, int) {
	s := t.sys
	if c.nbodies == 0 {
		return Vec3{}, 0
	}
	if c.body == i && c.nbodies == 1 {
		return Vec3{}, 0
	}
	pos := s.Bodies[i].Pos
	d := c.com.Sub(pos)
	dist := d.Norm()
	// Leaf with a single body, multi-body degenerate leaf, or a cell far
	// enough away per the theta criterion: one interaction.
	open := c.children != nil && (dist == 0 || 2*c.half/dist >= s.Theta)
	if !open {
		if c.body == i {
			return Vec3{}, 0
		}
		m := c.mass
		q := c.com
		if c.nbodies == 1 || (c.children == nil && c.body == -1) {
			// Exclude self-contribution from a degenerate leaf that
			// contains body i.
			if c.children == nil && c.body == -1 && t.containsBody(c, pos) {
				m -= s.Bodies[i].Mass
				if m <= 0 {
					return Vec3{}, 0
				}
			}
		}
		return s.accel(pos, m, q), 1
	}
	var a Vec3
	count := 0
	for _, ch := range c.children {
		if ch == nil {
			continue
		}
		fa, n := t.force(ch, i)
		a = a.Add(fa)
		count += n
	}
	return a, count
}

// containsBody reports whether the position lies within the cell bounds
// (used only for degenerate coincident-point leaves).
func (t *Octree) containsBody(c *cell, pos Vec3) bool {
	for k := 0; k < 3; k++ {
		if pos[k] < c.center[k]-c.half || pos[k] > c.center[k]+c.half {
			return false
		}
	}
	return true
}

// ComputeForces evaluates all accelerations with the tree, returning the
// accelerations and per-body interaction counts.
func (s *System) ComputeForces() ([]Vec3, []int) {
	t := s.BuildTree()
	acc := make([]Vec3, len(s.Bodies))
	counts := make([]int, len(s.Bodies))
	for i := range s.Bodies {
		acc[i], counts[i] = t.ForceOn(i)
	}
	return acc, counts
}
