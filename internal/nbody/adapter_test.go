package nbody

import (
	"testing"

	"ompsscluster/internal/cluster"
	"ompsscluster/internal/core"
	"ompsscluster/internal/simtime"
)

func testAdapterConfig() AdapterConfig {
	return AdapterConfig{
		Bodies:             512,
		Steps:              3,
		ChunksPerRank:      8,
		CostPerInteraction: 2 * simtime.Microsecond,
		TreeCostPerBody:    100 * simtime.Nanosecond,
		Seed:               11,
	}
}

func TestClusterSimRuns(t *testing.T) {
	cs := NewClusterSim(testAdapterConfig())
	m := cluster.New(2, 4, cluster.DefaultNet())
	rt := core.MustNew(core.Config{Machine: m, Degree: 2, LeWI: true})
	if err := rt.Run(cs.Main()); err != nil {
		t.Fatal(err)
	}
	// 2 ranks x 3 steps x (1 tree + 8 force) tasks.
	if got := rt.TotalTasks(); got != 2*3*9 {
		t.Fatalf("tasks = %d, want 54", got)
	}
	if rt.Elapsed() <= 0 {
		t.Fatal("no virtual time elapsed")
	}
}

func TestClusterSimPhysicsMatchesStandalone(t *testing.T) {
	// Running through the cluster runtime must produce exactly the same
	// physics as the standalone loop (the runtime only affects timing).
	cfg := testAdapterConfig()
	cs := NewClusterSim(cfg)
	m := cluster.New(2, 4, cluster.DefaultNet())
	rt := core.MustNew(core.Config{Machine: m, Degree: 2, LeWI: true, DROM: core.DROMLocal})
	if err := rt.Run(cs.Main()); err != nil {
		t.Fatal(err)
	}
	ref := NewClusterSim(cfg) // standalone replay
	for step := 0; step < cfg.Steps; step++ {
		acc, _ := ref.sys.ComputeForces()
		ref.sys.Step(acc)
	}
	for i := range ref.sys.Bodies {
		d := ref.sys.Bodies[i].Pos.Sub(cs.sys.Bodies[i].Pos).Norm()
		if d > 1e-12 {
			t.Fatalf("body %d diverged by %v", i, d)
		}
	}
}

func TestSlowNodeHurtsWithoutBalancing(t *testing.T) {
	cfg := testAdapterConfig()
	run := func(mach *cluster.Machine, degree int, lewi bool, drom core.DROMMode) simtime.Duration {
		cs := NewClusterSim(cfg)
		rt := core.MustNew(core.Config{
			Machine:         mach,
			AppranksPerNode: 2,
			Degree:          degree,
			LeWI:            lewi,
			DROM:            drom,
			GlobalPeriod:    100 * simtime.Millisecond,
			Seed:            2,
		})
		if err := rt.Run(cs.Main()); err != nil {
			t.Fatal(err)
		}
		return rt.Elapsed()
	}
	slowMachine := func() *cluster.Machine {
		m := cluster.New(4, 8, cluster.DefaultNet())
		m.SetSpeed(0, 0.6)
		return m
	}
	fast := run(cluster.New(4, 8, cluster.DefaultNet()), 1, false, core.DROMOff)
	slowBase := run(slowMachine(), 1, false, core.DROMOff)
	slowBalanced := run(slowMachine(), 3, true, core.DROMGlobal)
	if slowBase <= fast {
		t.Fatalf("slow node did not slow the baseline: %v <= %v", slowBase, fast)
	}
	if slowBalanced >= slowBase {
		t.Fatalf("balancing did not help the slow-node run: %v >= %v", slowBalanced, slowBase)
	}
}

// TestParallelClusterSimMatchesSequential pins the partitioned engine on
// the one workload with replicated host-side state (ORB, octree,
// leapfrog): step completion times, elapsed time and the final physics
// must be identical to the sequential engine at any worker count. The
// slow node plus two appranks per node maximizes same-instant collective
// ties, and time-weighted ORB exercises the per-rank weight stamping.
func TestParallelClusterSimMatchesSequential(t *testing.T) {
	for _, timeWeights := range []bool{false, true} {
		cfg := testAdapterConfig()
		cfg.TimeWeights = timeWeights
		run := func(parallel bool, workers int) ([]simtime.Time, simtime.Duration, *System, bool) {
			cs := NewClusterSim(cfg)
			mach := cluster.New(4, 8, cluster.DefaultNet())
			mach.SetSpeed(0, 0.6)
			rt := core.MustNew(core.Config{
				Machine:         mach,
				AppranksPerNode: 2,
				LeWI:            true,
				Seed:            2,
				SimParallel:     parallel,
				SimWorkers:      workers,
			})
			if err := rt.Run(cs.Main()); err != nil {
				t.Fatal(err)
			}
			return cs.StepEnds(), rt.Elapsed(), cs.System(), rt.Engine() != nil
		}
		refEnds, refElapsed, refSys, _ := run(false, 0)
		for _, workers := range []int{1, 4} {
			ends, elapsed, sys, engaged := run(true, workers)
			if !engaged {
				t.Fatalf("timeWeights=%v workers=%d: parallel engine did not engage", timeWeights, workers)
			}
			if elapsed != refElapsed {
				t.Errorf("timeWeights=%v workers=%d: elapsed = %v, sequential %v", timeWeights, workers, elapsed, refElapsed)
			}
			if len(ends) != len(refEnds) {
				t.Fatalf("timeWeights=%v workers=%d: %d step ends, sequential %d", timeWeights, workers, len(ends), len(refEnds))
			}
			for i := range ends {
				if ends[i] != refEnds[i] {
					t.Errorf("timeWeights=%v workers=%d: step %d ended at %v, sequential %v", timeWeights, workers, i, ends[i], refEnds[i])
				}
			}
			for i := range refSys.Bodies {
				if sys.Bodies[i].Pos != refSys.Bodies[i].Pos {
					t.Fatalf("timeWeights=%v workers=%d: body %d position diverged", timeWeights, workers, i)
				}
			}
		}
	}
}

func TestTotalWorkNominalPositive(t *testing.T) {
	cs := NewClusterSim(testAdapterConfig())
	w := cs.TotalWorkNominal(2)
	if w <= 0 {
		t.Fatalf("TotalWorkNominal = %v", w)
	}
}

func TestAdapterPanics(t *testing.T) {
	for _, mod := range []func(*AdapterConfig){
		func(c *AdapterConfig) { c.Bodies = 0 },
		func(c *AdapterConfig) { c.Steps = 0 },
		func(c *AdapterConfig) { c.ChunksPerRank = 0 },
		func(c *AdapterConfig) { c.CostPerInteraction = 0 },
	} {
		cfg := testAdapterConfig()
		mod(&cfg)
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			NewClusterSim(cfg)
		}()
	}
}
