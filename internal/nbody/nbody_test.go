package nbody

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestRandomSphereProperties(t *testing.T) {
	s := NewRandomSphere(500, 1)
	if len(s.Bodies) != 500 {
		t.Fatal("wrong body count")
	}
	totalMass := 0.0
	for _, b := range s.Bodies {
		if b.Pos.Norm() > 1+1e-9 {
			t.Fatalf("body outside unit sphere: %v", b.Pos)
		}
		totalMass += b.Mass
	}
	if math.Abs(totalMass-1) > 1e-9 {
		t.Fatalf("total mass = %v, want 1", totalMass)
	}
}

func TestTreeAggregates(t *testing.T) {
	s := NewRandomSphere(200, 2)
	tr := s.BuildTree()
	if tr.NumBodies() != 200 {
		t.Fatalf("tree indexes %d bodies, want 200", tr.NumBodies())
	}
	if math.Abs(tr.root.mass-1) > 1e-9 {
		t.Fatalf("root mass = %v, want 1", tr.root.mass)
	}
	// Root COM equals the mass-weighted mean position.
	var com Vec3
	for _, b := range s.Bodies {
		com = com.Add(b.Pos.Scale(b.Mass))
	}
	for k := 0; k < 3; k++ {
		if math.Abs(tr.root.com[k]-com[k]) > 1e-9 {
			t.Fatalf("root COM = %v, want %v", tr.root.com, com)
		}
	}
}

func TestThetaZeroMatchesDirectSum(t *testing.T) {
	s := NewRandomSphere(100, 3)
	s.Theta = 0
	tr := s.BuildTree()
	for i := 0; i < 100; i += 7 {
		bh, _ := tr.ForceOn(i)
		direct := s.DirectForce(i)
		diff := bh.Sub(direct).Norm()
		scale := direct.Norm() + 1e-12
		if diff/scale > 1e-9 {
			t.Fatalf("body %d: BH(theta=0) = %v, direct = %v", i, bh, direct)
		}
	}
}

func TestThetaAccuracyImproves(t *testing.T) {
	s := NewRandomSphere(300, 4)
	relErr := func(theta float64) float64 {
		s.Theta = theta
		tr := s.BuildTree()
		sum := 0.0
		for i := 0; i < 30; i++ {
			bh, _ := tr.ForceOn(i)
			direct := s.DirectForce(i)
			sum += bh.Sub(direct).Norm() / (direct.Norm() + 1e-12)
		}
		return sum / 30
	}
	loose := relErr(1.0)
	tight := relErr(0.3)
	if tight > loose {
		t.Fatalf("theta=0.3 error %v worse than theta=1.0 error %v", tight, loose)
	}
	if tight > 0.05 {
		t.Fatalf("theta=0.3 mean relative error %v too large", tight)
	}
}

func TestInteractionCountsDecreaseWithLooserTheta(t *testing.T) {
	s := NewRandomSphere(400, 5)
	count := func(theta float64) int {
		s.Theta = theta
		tr := s.BuildTree()
		total := 0
		for i := range s.Bodies {
			_, c := tr.ForceOn(i)
			total += c
		}
		return total
	}
	exact := count(0)
	approx := count(0.7)
	if approx >= exact {
		t.Fatalf("theta=0.7 interactions %d not fewer than exact %d", approx, exact)
	}
	if exact != 400*399 {
		t.Fatalf("exact interactions = %d, want n(n-1) = %d", exact, 400*399)
	}
}

func TestMomentumConservation(t *testing.T) {
	s := NewRandomSphere(200, 6)
	s.Theta = 0 // exact forces conserve momentum up to float error
	p0 := s.Momentum()
	for step := 0; step < 10; step++ {
		acc, _ := s.ComputeForces()
		s.Step(acc)
	}
	p1 := s.Momentum()
	if p1.Sub(p0).Norm() > 1e-10 {
		t.Fatalf("momentum drifted: %v -> %v", p0, p1)
	}
}

func TestEnergyDriftBounded(t *testing.T) {
	s := NewRandomSphere(150, 7)
	s.Theta = 0.4
	e0 := s.Energy()
	for step := 0; step < 20; step++ {
		acc, _ := s.ComputeForces()
		s.Step(acc)
	}
	e1 := s.Energy()
	if drift := math.Abs(e1-e0) / math.Abs(e0); drift > 0.05 {
		t.Fatalf("energy drift %.2f%% too large (%v -> %v)", drift*100, e0, e1)
	}
}

func TestCoincidentBodiesDoNotCrash(t *testing.T) {
	s := &System{Theta: 0.5, G: 1, DT: 1e-3, Eps: 1e-2}
	for i := 0; i < 10; i++ {
		s.Bodies = append(s.Bodies, Body{Pos: Vec3{0.5, 0.5, 0.5}, Mass: 0.1})
	}
	tr := s.BuildTree()
	for i := range s.Bodies {
		a, _ := tr.ForceOn(i)
		for k := 0; k < 3; k++ {
			if math.IsNaN(a[k]) || math.IsInf(a[k], 0) {
				t.Fatalf("non-finite force %v", a)
			}
		}
	}
}

func TestORBBalancesUniformWeights(t *testing.T) {
	s := NewRandomSphere(1024, 8)
	pos := make([]Vec3, len(s.Bodies))
	for i, b := range s.Bodies {
		pos[i] = b.Pos
	}
	for _, parts := range []int{2, 4, 8, 16, 3, 5} {
		assign := ORB(pos, nil, parts)
		w := PartWeights(assign, nil, parts)
		for p, v := range w {
			ideal := 1024.0 / float64(parts)
			if math.Abs(v-ideal) > ideal*0.1+1 {
				t.Fatalf("parts=%d: part %d holds %v bodies, ideal %v", parts, p, v, ideal)
			}
		}
	}
}

func TestORBBalancesSkewedWeights(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	n := 2048
	pos := make([]Vec3, n)
	weights := make([]float64, n)
	total := 0.0
	for i := range pos {
		pos[i] = Vec3{rng.Float64(), rng.Float64(), rng.Float64()}
		weights[i] = rng.Float64() * 10
		total += weights[i]
	}
	assign := ORB(pos, weights, 8)
	w := PartWeights(assign, weights, 8)
	ideal := total / 8
	for p, v := range w {
		if math.Abs(v-ideal) > ideal*0.15 {
			t.Fatalf("part %d weight %v, ideal %v", p, v, ideal)
		}
	}
}

func TestORBSpatialLocality(t *testing.T) {
	// ORB partitions must be contiguous along split axes: parts should
	// have disjoint bounding boxes along the first split axis when
	// splitting in two.
	s := NewRandomSphere(512, 10)
	pos := make([]Vec3, len(s.Bodies))
	for i, b := range s.Bodies {
		pos[i] = b.Pos
	}
	assign := ORB(pos, nil, 2)
	axis := widestAxis(pos, seq(len(pos)))
	max0 := -math.MaxFloat64
	min1 := math.MaxFloat64
	for i, p := range assign {
		if p == 0 && pos[i][axis] > max0 {
			max0 = pos[i][axis]
		}
		if p == 1 && pos[i][axis] < min1 {
			min1 = pos[i][axis]
		}
	}
	if max0 > min1+1e-12 {
		t.Fatalf("parts overlap along split axis: max0=%v min1=%v", max0, min1)
	}
}

func seq(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

func TestORBPanics(t *testing.T) {
	pos := []Vec3{{0, 0, 0}}
	for _, fn := range []func(){
		func() { ORB(pos, nil, 0) },
		func() { ORB(pos, []float64{1, 2}, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}

// Property: every body is assigned to exactly one valid part, for any
// (n, parts).
func TestQuickORBAssignmentValid(t *testing.T) {
	f := func(seed int64, nRaw, pRaw uint8) bool {
		n := int(nRaw%200) + 1
		parts := int(pRaw%16) + 1
		rng := rand.New(rand.NewSource(seed))
		pos := make([]Vec3, n)
		for i := range pos {
			pos[i] = Vec3{rng.Float64(), rng.Float64(), rng.Float64()}
		}
		assign := ORB(pos, nil, parts)
		if len(assign) != n {
			return false
		}
		for _, p := range assign {
			if p < 0 || p >= parts {
				return false
			}
		}
		// When n >= parts every part must be non-empty.
		if n >= parts {
			seen := make([]bool, parts)
			for _, p := range assign {
				seen[p] = true
			}
			for _, s := range seen {
				if !s {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: the tree force with theta <= 0.8 stays within a bounded
// relative error of the direct sum. The seeds are fixed: the Barnes-Hut
// error bound is statistical, and rare adversarial body placements
// (near-cancelling forces on a body close to a cell boundary) can exceed
// any fixed tolerance, so drawing random seeds per run made this test
// flaky. A deterministic seed sweep keeps the coverage breadth while
// pinning the exact configurations tested.
func TestQuickTreeForceSane(t *testing.T) {
	for seed := int64(0); seed < 30; seed++ {
		s := NewRandomSphere(80, seed)
		s.Theta = 0.8
		tr := s.BuildTree()
		for i := 0; i < 10; i++ {
			bh, n := tr.ForceOn(i)
			if n <= 0 || n >= len(s.Bodies) {
				t.Fatalf("seed %d body %d: tree force visited %d of %d bodies",
					seed, i, n, len(s.Bodies))
			}
			direct := s.DirectForce(i)
			if err := bh.Sub(direct).Norm(); err > 0.5*direct.Norm()+1e-6 {
				t.Fatalf("seed %d body %d: tree force error %g exceeds 50%% of direct |F| %g",
					seed, i, err, direct.Norm())
			}
		}
	}
}
