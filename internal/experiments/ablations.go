package experiments

import (
	"fmt"

	"ompsscluster/internal/cluster"
	"ompsscluster/internal/core"
	"ompsscluster/internal/expander"
	"ompsscluster/internal/simtime"
	"ompsscluster/internal/workloads/synthetic"
)

// ablationRun executes the synthetic benchmark at imbalance 2.0 under a
// caller-tweaked runtime configuration and returns the steady iteration
// time.
func ablationRun(sc Scale, nodes int, tweak func(*core.Config)) simtime.Duration {
	m := cluster.New(nodes, sc.CoresPerNode, cluster.DefaultNet())
	b := synthetic.New(synConfig(sc, 2.0), nodes, sc.CoresPerNode)
	cfg := core.Config{
		Machine:         m,
		Degree:          4,
		Graphs:          sc.Graphs,
		EngineStats:     sc.Engine,
		POP:             sc.POP,
		POPWindow:       sc.POPWindow,
		GoroutineEngine: sc.GoroutineEngine,
		SimParallel:     sc.SimParallel,
		SimWorkers:      sc.SimWorkers,
		LeWI:            true,
		DROM:            core.DROMGlobal,
		GlobalPeriod:    sc.GlobalPeriod,
		LocalPeriod:     sc.LocalPeriod,
		Seed:            sc.Seed,
	}
	tweak(&cfg)
	rt := core.MustNew(cfg)
	if err := rt.Run(b.Main()); err != nil {
		panic(fmt.Sprintf("experiments: ablation run failed: %v", err))
	}
	return b.SteadyIterTime(1)
}

// AblationTasksPerCore sweeps the §5.5 scheduling threshold (the paper
// fixes it at 2: one task executing, one prefetching).
func AblationTasksPerCore(sc Scale) *Result {
	res := &Result{
		ID:     "ablation-taskspc",
		Title:  "Ablation: tasks-per-owned-core scheduling threshold",
		XLabel: "threshold",
		YLabel: "time per iteration (s)",
	}
	s := &Series{Label: "8n imbalance 2.0 degree 4"}
	var specs []runSpec
	for _, k := range []int{1, 2, 3, 4, 8} {
		specs = append(specs, runSpec{s, float64(k), func() float64 {
			return ablationRun(sc, min8(sc), func(c *core.Config) { c.TasksPerCore = k }).Seconds()
		}})
	}
	runAll(sc, specs)
	res.Series = append(res.Series, *s)
	res.Notes = append(res.Notes, "the paper uses 2: one task executing plus one with data staged")
	return res
}

// AblationCountBorrowed compares the paper's owned-cores-only threshold
// against also counting LeWI-borrowed cores (§5.5 argues borrowed cores
// may vanish at any boundary, so counting them over-commits offloads).
func AblationCountBorrowed(sc Scale) *Result {
	res := &Result{
		ID:     "ablation-borrowed",
		Title:  "Ablation: counting borrowed cores in the scheduling threshold",
		XLabel: "0=owned-only (paper), 1=count borrowed",
		YLabel: "time per iteration (s)",
	}
	s := &Series{Label: "8n imbalance 2.0 degree 4"}
	runAll(sc, []runSpec{
		{s, 0, func() float64 {
			return ablationRun(sc, min8(sc), func(c *core.Config) { c.CountBorrowed = false }).Seconds()
		}},
		{s, 1, func() float64 {
			return ablationRun(sc, min8(sc), func(c *core.Config) { c.CountBorrowed = true }).Seconds()
		}},
	})
	res.Series = append(res.Series, *s)
	return res
}

// AblationGraphShape compares the expander against a ring and the full
// bipartite graph at equal degree (full ignores the degree), on 16 nodes.
func AblationGraphShape(sc Scale) *Result {
	res := &Result{
		ID:     "ablation-graphshape",
		Title:  "Ablation: helper-graph shape at degree 4",
		XLabel: "0=expander 1=ring 2=full",
		YLabel: "time per iteration (s)",
	}
	nodes := 16
	if nodes > sc.MaxNodes {
		nodes = sc.MaxNodes
	}
	s := &Series{Label: fmt.Sprintf("%dn imbalance 2.0", nodes)}
	var specs []runSpec
	for i, shape := range []expander.Shape{expander.ShapeExpander, expander.ShapeRing, expander.ShapeFull} {
		specs = append(specs, runSpec{s, float64(i), func() float64 {
			return ablationRun(sc, nodes, func(c *core.Config) {
				c.Shape = shape
				if shape == expander.ShapeFull {
					c.Degree = nodes
					if nodes > c.Machine.Node(0).Cores {
						c.Degree = c.Machine.Node(0).Cores
						c.Shape = expander.ShapeRing // full graph infeasible: fall back wide
					}
				}
			}).Seconds()
		}})
	}
	runAll(sc, specs)
	res.Series = append(res.Series, *s)
	res.Notes = append(res.Notes,
		"full connectivity needs one worker per node per apprank: one core each, which caps it at cores-per-node")
	return res
}

// AblationGlobalPeriod sweeps the global solver period (the paper runs
// it every 2 seconds; ~57ms solves on 32 nodes, ~6% overhead).
func AblationGlobalPeriod(sc Scale) *Result {
	res := &Result{
		ID:     "ablation-period",
		Title:  "Ablation: global solver period",
		XLabel: "period (s)",
		YLabel: "time per iteration (s)",
	}
	s := &Series{Label: "8n imbalance 2.0 degree 4"}
	var specs []runSpec
	for _, p := range []simtime.Duration{sc.GlobalPeriod / 4, sc.GlobalPeriod, sc.GlobalPeriod * 4} {
		specs = append(specs, runSpec{s, p.Seconds(), func() float64 {
			return ablationRun(sc, min8(sc), func(c *core.Config) { c.GlobalPeriod = p }).Seconds()
		}})
	}
	runAll(sc, specs)
	res.Series = append(res.Series, *s)
	return res
}

// AblationIncentive measures unnecessary offloading on a balanced
// workload with and without the own-node incentive (§5.4.2's 1+1e-6
// weighting).
func AblationIncentive(sc Scale) *Result {
	res := &Result{
		ID:     "ablation-incentive",
		Title:  "Ablation: own-node incentive on a balanced load",
		XLabel: "0=no incentive 1=1e-6 incentive",
		YLabel: "offloaded tasks",
	}
	run := func(incentive float64) float64 {
		nodes := min8(sc)
		m := cluster.New(nodes, sc.CoresPerNode, cluster.DefaultNet())
		b := synthetic.New(synConfig(sc, 1.0), nodes, sc.CoresPerNode)
		rt := core.MustNew(core.Config{
			Machine:         m,
			Degree:          4,
			Graphs:          sc.Graphs,
			EngineStats:     sc.Engine,
			POP:             sc.POP,
			POPWindow:       sc.POPWindow,
			GoroutineEngine: sc.GoroutineEngine,
			SimParallel:     sc.SimParallel,
			SimWorkers:      sc.SimWorkers,
			LeWI:            true,
			DROM:            core.DROMGlobal,
			GlobalPeriod:    sc.GlobalPeriod,
			LocalPeriod:     sc.LocalPeriod,
			Seed:            sc.Seed,
			Incentive:       incentive,
		})
		if err := rt.Run(b.Main()); err != nil {
			panic(err)
		}
		return float64(rt.TotalOffloadedTasks())
	}
	s := &Series{Label: "balanced load offloads"}
	// Incentive 0 means "use the default" in Config, so pass a negative
	// epsilon-free marker: the Config treats 0 as default 1e-6, so the
	// no-incentive case uses a tiny negative that rounds to zero effect.
	runAll(sc, []runSpec{
		{s, 0, func() float64 { return run(-1) }},
		{s, 1, func() float64 { return run(1e-6) }},
	})
	res.Series = append(res.Series, *s)
	res.Notes = append(res.Notes,
		"the incentive only matters when the solver is otherwise indifferent; unnecessary offloads also stay low because spare cores go to home workers")
	return res
}

// AblationORBWeights is the counterfactual the paper's Figure 6(c)
// hinges on: if the n-body code's ORB partitioner weighted bodies by
// measured execution time instead of interaction counts, it would adapt
// to the slow node by itself and task offloading would buy almost
// nothing. With count weights (the paper's ORB), offloading is what
// recovers the slow node's loss.
func AblationORBWeights(sc Scale) *Result {
	res := &Result{
		ID:     "ablation-orbweights",
		Title:  "Ablation: ORB weighting on a slow-node machine (8 nodes)",
		XLabel: "0=baseline 1=degree 3",
		YLabel: "time per step (s)",
	}
	nodes := 8
	if nodes > sc.MaxNodes {
		nodes = sc.MaxNodes
	}
	counts := &Series{Label: "count weights (paper)"}
	times := &Series{Label: "time weights (counterfactual)"}
	runAll(sc, []runSpec{
		{counts, 0, func() float64 { return nbodyRun(sc, nodes, 1, false, core.DROMOff, true, false).Seconds() }},
		{counts, 1, func() float64 { return nbodyRun(sc, nodes, 3, true, core.DROMGlobal, true, false).Seconds() }},
		{times, 0, func() float64 { return nbodyRun(sc, nodes, 1, false, core.DROMOff, true, true).Seconds() }},
		{times, 1, func() float64 { return nbodyRun(sc, nodes, 3, true, core.DROMGlobal, true, true).Seconds() }},
	})
	res.Series = append(res.Series, *counts, *times)
	res.Notes = append(res.Notes,
		"time-weighted ORB adapts to the slow node on its own; count-weighted ORB (the paper's) leaves the imbalance for the runtime to fix")
	return res
}

func min8(sc Scale) int {
	if sc.MaxNodes < 8 {
		return sc.MaxNodes
	}
	return 8
}
