package experiments

import (
	"fmt"

	"ompsscluster/internal/cluster"
	"ompsscluster/internal/core"
	"ompsscluster/internal/nanos"
	"ompsscluster/internal/nbody"
	"ompsscluster/internal/simtime"
)

// makeRegions allocates n independent task regions.
func makeRegions(app *core.App, n int) []nanos.Region {
	out := make([]nanos.Region, n)
	for i := range out {
		out[i] = app.Alloc(1 << 12)
	}
	return out
}

// submitSynthTasks submits n offloadable tasks of the given duration over
// distinct regions (regions are extended logically by reuse only when n
// exceeds the pool, which callers avoid).
func submitSynthTasks(app *core.App, regions []nanos.Region, n int, work simtime.Duration) {
	for i := 0; i < n; i++ {
		var acc []nanos.Access
		if i < len(regions) {
			acc = []nanos.Access{{Region: regions[i], Mode: nanos.InOut}}
		}
		app.Submit(core.TaskSpec{
			Label:       "phase",
			Work:        work,
			Accesses:    acc,
			Offloadable: true,
		})
	}
}

// nbodyRun executes one n-body configuration on a Nord3-like machine
// (node 0 at 1.8/3.0 GHz relative speed) and returns the steady
// per-timestep time. timeWeights switches ORB to time-based weights (the
// counterfactual ablation; the paper's ORB balances counts).
func nbodyRun(sc Scale, nodes, degree int, lewi bool, drom core.DROMMode, slow, timeWeights bool) simtime.Duration {
	const rpn = 2
	m := cluster.New(nodes, sc.CoresPerNode, cluster.DefaultNet())
	if slow {
		m.SetSpeed(0, 0.6)
	}
	appranks := nodes * rpn
	cs := nbody.NewClusterSim(nbody.AdapterConfig{
		Bodies:             192 * appranks,
		Steps:              sc.Iterations + 3,
		ChunksPerRank:      8 * sc.CoresPerNode / rpn,
		CostPerInteraction: costPerInteraction(sc, appranks),
		TreeCostPerBody:    20 * simtime.Nanosecond,
		Theta:              0.5,
		DT:                 0.02,
		TimeWeights:        timeWeights,
		Seed:               sc.Seed,
	})
	rt := core.MustNew(core.Config{
		Machine:         m,
		AppranksPerNode: rpn,
		Degree:          degree,
		Graphs:          sc.Graphs,
		EngineStats:     sc.Engine,
		POP:             sc.POP,
		POPWindow:       sc.POPWindow,
		GoroutineEngine: sc.GoroutineEngine,
		SimParallel:     sc.SimParallel,
		SimWorkers:      sc.SimWorkers,
		LeWI:            lewi,
		DROM:            drom,
		GlobalPeriod:    sc.GlobalPeriod,
		LocalPeriod:     sc.LocalPeriod,
		Seed:            sc.Seed,
	})
	if err := rt.Run(cs.Main()); err != nil {
		panic(fmt.Sprintf("experiments: n-body run failed: %v", err))
	}
	ends := cs.StepEnds()
	return steadyStep(ends)
}

// costPerInteraction scales interaction counts into task time so that a
// rank's timestep is a handful of policy periods long: long enough for
// DROM to act within a step, short enough that the busy-measurement
// horizon (EMA over GlobalPeriod windows) spans a whole step — otherwise
// the saturated early-step phase hides the true demand from the solver.
func costPerInteraction(sc Scale, appranks int) simtime.Duration {
	// ~192 bodies per rank at theta 0.5 perform roughly 300-400
	// interactions per body and step.
	d := sc.MeanTask / 1600
	if d <= 0 {
		d = simtime.Microsecond
	}
	return d
}

// steadyStep averages per-step time skipping two warm-up steps (the ORB
// weights and the DROM allocation both need a step or two to settle).
func steadyStep(ends []simtime.Time) simtime.Duration {
	if len(ends) == 0 {
		return 0
	}
	warm := 2
	if warm >= len(ends) {
		warm = len(ends) - 1
	}
	if warm == 0 {
		return simtime.Duration(ends[len(ends)-1]) / simtime.Duration(len(ends))
	}
	return simtime.Duration(ends[len(ends)-1]-ends[warm-1]) / simtime.Duration(len(ends)-warm)
}

// Fig6c reproduces Figure 6(c): Barnes-Hut n-body with ORB on a
// Nord3-like machine, two appranks per node, node 0 running at 1.8 GHz
// (speed 0.6). ORB equalises interaction counts, so the slow node stays
// overloaded; DLB helps somewhat and offloading (degree 2-3) helps
// further.
func Fig6c(sc Scale) *Result {
	res := &Result{
		ID:     "fig6c",
		Title:  "n-body (Barnes-Hut + ORB) with one slow node, 2 appranks/node",
		XLabel: "nodes",
		YLabel: "time per step (s)",
	}
	baseline := &Series{Label: "baseline"}
	dlbOnly := &Series{Label: "dlb (degree 1)"}
	deg2 := &Series{Label: "degree 2"}
	deg3 := &Series{Label: "degree 3"}
	var specs []runSpec
	for _, n := range nodeSweep(sc, 2, 4, 8, 16) {
		x := float64(n)
		specs = append(specs, runSpec{baseline, x, func() float64 {
			return nbodyRun(sc, n, 1, false, core.DROMOff, true, false).Seconds()
		}})
		specs = append(specs, runSpec{dlbOnly, x, func() float64 {
			return nbodyRun(sc, n, 1, true, core.DROMLocal, true, false).Seconds()
		}})
		if 2*2 <= sc.CoresPerNode {
			specs = append(specs, runSpec{deg2, x, func() float64 {
				return nbodyRun(sc, n, 2, true, core.DROMGlobal, true, false).Seconds()
			}})
		}
		if n >= 3 && 3*2 <= sc.CoresPerNode {
			specs = append(specs, runSpec{deg3, x, func() float64 {
				return nbodyRun(sc, n, 3, true, core.DROMGlobal, true, false).Seconds()
			}})
		}
	}
	runAll(sc, specs)
	res.Series = append(res.Series, *baseline, *dlbOnly, *deg2, *deg3)
	res.Notes = append(res.Notes,
		"node 0 runs at 0.6 relative speed (1.8 vs 3.0 GHz); ORB balances interaction counts, not time")
	return res
}
