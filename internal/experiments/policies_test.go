package experiments

import (
	"testing"

	"ompsscluster/internal/cluster"
	"ompsscluster/internal/sweep"
)

// TestPoliciesShape: every policy series covers every scenario, the
// notes map scenario indices, and the sweep surfaced no run errors.
func TestPoliciesShape(t *testing.T) {
	res := Policies(qs())
	if res.Err != nil {
		t.Fatalf("policies sweep failed: %v", res.Err)
	}
	scns := policyScenarios()
	if len(res.Series) != len(policyConfigs()) {
		t.Fatalf("got %d series, want %d", len(res.Series), len(policyConfigs()))
	}
	for _, s := range res.Series {
		if len(s.Points) != len(scns) {
			t.Fatalf("series %q has %d points, want %d", s.Label, len(s.Points), len(scns))
		}
		for _, p := range s.Points {
			if p.Y <= 0 {
				t.Fatalf("series %q has non-positive time %v at x=%v", s.Label, p.Y, p.X)
			}
		}
	}
	if res.Get("lewi+global") == nil || res.Get("twolevel") == nil {
		t.Fatal("baseline or twolevel series missing")
	}
	if len(res.Notes) < len(scns)+1 {
		t.Fatalf("got %d notes, want >= %d (scenario map + grants)", len(res.Notes), len(scns)+1)
	}
}

// TestPoliciesWeightedBeatsGuidedOnSlowNode pins the sweep's central
// finding: on the slow-node scenario the weight-blind guided policy
// must not beat weighted factoring (which sizes chunks by per-node
// speed x ownership).
func TestPoliciesWeightedBeatsGuidedOnSlowNode(t *testing.T) {
	res := Policies(qs())
	if res.Err != nil {
		t.Fatalf("policies sweep failed: %v", res.Err)
	}
	var slowX float64 = -1
	for i, scn := range policyScenarios() {
		if scn.slow {
			slowX = float64(i)
		}
	}
	if slowX < 0 {
		t.Fatal("no slow-node scenario in the sweep")
	}
	guided, ok1 := res.Get("guided").Lookup(slowX)
	weighted, ok2 := res.Get("wfactoring").Lookup(slowX)
	if !ok1 || !ok2 {
		t.Fatal("slow-node points missing")
	}
	if weighted > guided*1.05 {
		t.Fatalf("wfactoring (%vs) clearly worse than guided (%vs) on the slow node", weighted, guided)
	}
}

// TestPoliciesCSVDeterminism pins the sweep-isolation satellite for the
// new experiment: the policies CSV is byte-identical between a
// sequential sweep and a parallel one, so per-run machines, fault
// plans, and chunk servers share no cross-run state.
func TestPoliciesCSVDeterminism(t *testing.T) {
	seq := qs()
	seq.Parallel = 1
	par := qs()
	par.Parallel = 8
	a := Policies(seq)
	b := Policies(par)
	if a.CSV() != b.CSV() {
		t.Errorf("policies CSV differs between -parallel 1 and -parallel 8:\nseq:\n%s\npar:\n%s",
			a.CSV(), b.CSV())
	}
}

// TestSweepMachineIsolation is the aliasing regression test: specs
// running concurrently under the sweep engine must not observe each
// other's machine mutations, and a shared prototype machine must come
// through a sweep untouched when every run clones it.
func TestSweepMachineIsolation(t *testing.T) {
	proto := cluster.New(4, 8, cluster.DefaultNet())
	eng := sweep.New(8)
	specs := make([]int, 64)
	for i := range specs {
		specs[i] = i
	}
	outs := sweep.Map(eng, specs, func(i int) bool {
		m := proto.Clone()
		// Each run mutates "its" machine differently...
		m.SetSpeed(1, 0.1+0.01*float64(i%10))
		m.RemoveCores(2, 1+i%4)
		// ...and must still observe exactly its own mutation.
		return m.Nodes[1].Speed == 0.1+0.01*float64(i%10) && m.Nodes[2].Cores == 8-(1+i%4)
	})
	for i, ok := range outs {
		if !ok {
			t.Fatalf("spec %d observed another run's machine mutation", i)
		}
	}
	for _, n := range proto.Nodes {
		if n.Speed != 1.0 || n.Cores != 8 {
			t.Fatalf("prototype machine mutated by sweep: node %d = %+v", n.ID, n)
		}
	}
}

// TestPolicyDemo exercises the lbsim -policy engine: the named policy
// and the baseline both produce a point, fault-free and under a plan.
func TestPolicyDemo(t *testing.T) {
	res, err := PolicyDemo(qs(), "twolevel", nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Err != nil {
		t.Fatalf("demo run failed: %v", res.Err)
	}
	if len(res.Series) != 2 {
		t.Fatalf("got %d series, want 2", len(res.Series))
	}
	if res.Get("twolevel") == nil || res.Get("lewi+global") == nil {
		t.Fatal("expected series missing")
	}
	res, err = PolicyDemo(qs(), "guided", resiliencePlan(qs(), 1.0))
	if err != nil {
		t.Fatal(err)
	}
	if res.Err != nil {
		t.Fatalf("demo under faults failed: %v", res.Err)
	}
	if _, err := PolicyDemo(qs(), "nosuch", nil); err == nil {
		t.Fatal("unknown policy accepted")
	}
	if _, err := PolicyDemo(qs(), "off", nil); err == nil {
		t.Fatal("policy \"off\" accepted by the demo")
	}
}
