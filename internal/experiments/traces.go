package experiments

import (
	"fmt"

	"ompsscluster/internal/obs"
	"ompsscluster/internal/trace"
)

// TraceBundle is one traced run's complete observability output: the
// structured event recorder (Chrome trace export, metrics registry) and
// the legacy timeline recorder (Paraver/CSV export). Both are fed from
// the same event stream by the runtime, so the two views agree by
// construction.
type TraceBundle struct {
	Label string
	Obs   *obs.Recorder
	Trace *trace.Recorder
}

// TraceBundles runs the traced variant of the given experiment and
// returns one bundle per configuration. Unknown or untraced experiment
// ids are a hard error listing the supported set.
func TraceBundles(id string, sc Scale) ([]TraceBundle, error) {
	switch id {
	case "fig5":
		return Fig5TraceBundles(sc), nil
	case "fig8":
		return Fig8TraceBundles(sc), nil
	case "fig9":
		return Fig9TraceBundles(sc), nil
	case "policies":
		return PoliciesTraceBundles(sc), nil
	case "efficiency":
		return EfficiencyTraceBundles(sc), nil
	}
	return nil, fmt.Errorf("experiments: no traced variant of %q (have fig5, fig8, fig9, policies, efficiency)", id)
}

// BuildMetrics aggregates the bundles' event streams into one merged
// metrics registry (counters add, histograms merge bucket-wise).
func BuildMetrics(bundles []TraceBundle) (*obs.Metrics, error) {
	var merged *obs.Metrics
	for _, b := range bundles {
		m := obs.BuildMetrics(b.Obs)
		if merged == nil {
			merged = m
			continue
		}
		if err := merged.Merge(m); err != nil {
			return nil, fmt.Errorf("experiments: merging %s metrics: %w", b.Label, err)
		}
	}
	return merged, nil
}
