package experiments

import (
	"fmt"

	"ompsscluster/internal/cluster"
	"ompsscluster/internal/core"
	"ompsscluster/internal/dlb"
	"ompsscluster/internal/obs"
	"ompsscluster/internal/sweep"
	"ompsscluster/internal/trace"
)

// fig8POPCell is one representative fig8 configuration for POPReports:
// the 4-node baseline and degree-3 lewi+global stacks at a balanced and
// an imbalanced point.
type fig8POPCell struct {
	label     string
	imbalance float64
	degree    int
	lewi      bool
	drom      core.DROMMode
}

func fig8POPCells() []fig8POPCell {
	return []fig8POPCell{
		{"baseline imb 2.0", 2.0, 1, true, core.DROMLocal},
		{"degree 3 imb 2.0", 2.0, 3, true, core.DROMGlobal},
		{"degree 3 imb 1.0", 1.0, 3, true, core.DROMGlobal},
	}
}

// POPBundle is one representative run's POP efficiency report.
type POPBundle struct {
	Label  string
	Report *dlb.POPReport
}

// POPReports runs representative configurations of the given experiment
// with full TALP/POP accounting enabled and returns one report per
// configuration (mirroring TraceBundles: figures sweep too many cells
// to report each one, so a labelled representative subset stands in).
// The windowed series defaults to the scale's LocalPeriod unless the
// scale sets POPWindow. Unknown or unsupported ids are a hard error.
func POPReports(id string, sc Scale) ([]POPBundle, error) {
	sc.POP = true
	if sc.POPWindow == 0 {
		sc.POPWindow = sc.LocalPeriod
	}
	pop := func(rt *core.ClusterRuntime, label string) POPBundle {
		rep, err := rt.POP()
		if err != nil {
			panic(fmt.Sprintf("experiments: POP report for %s: %v", label, err))
		}
		return POPBundle{Label: label, Report: rep}
	}
	switch id {
	case "fig5":
		return sweep.Map(sc.engine(), fig5Policies(), func(p fig5Policy) POPBundle {
			rt, _ := runFig5Workload(sc, p.drom, nil, nil)
			return pop(rt, p.label)
		}), nil
	case "fig8":
		return sweep.Map(sc.engine(), fig8POPCells(), func(c fig8POPCell) POPBundle {
			m := cluster.New(4, sc.CoresPerNode, cluster.DefaultNet())
			_, rt := synRun(sc, m, synConfig(sc, c.imbalance), c.degree, c.lewi, c.drom, nil, nil)
			return pop(rt, c.label)
		}), nil
	case "fig9":
		return sweep.Map(sc.engine(), fig9Configs(), func(cfg fig9Config) POPBundle {
			_, rt := mppRun(sc, 4, 1, cfg.degree, cfg.lewi, cfg.drom, nil, nil)
			return pop(rt, cfg.label)
		}), nil
	case "policies":
		scn := policyScenario{label: "imb 2.0", imbalance: 2.0}
		return sweep.Map(sc.engine(), policyConfigs(), func(pc policyConfig) POPBundle {
			_, rt, err := policyRun(sc, scn, nil, pc, nil, nil)
			if err != nil {
				panic(fmt.Sprintf("experiments: POP policies run %s: %v", pc.label, err))
			}
			return pop(rt, pc.label)
		}), nil
	case "efficiency":
		return sweep.Map(sc.engine(), effConfigs(), func(cfg effConfig) POPBundle {
			return pop(effRun(sc, 2.0, cfg, nil, nil), cfg.label)
		}), nil
	}
	return nil, fmt.Errorf("experiments: no POP-report variant of %q (have fig5, fig8, fig9, policies, efficiency)", id)
}

// Fig8TraceBundles runs the representative fig8 configurations with both
// recorders attached, for traceview.
func Fig8TraceBundles(sc Scale) []TraceBundle {
	return sweep.Map(sc.engine(), fig8POPCells(), func(c fig8POPCell) TraceBundle {
		rec := trace.NewRecorder()
		ob := obs.NewRecorder(-1)
		m := cluster.New(4, sc.CoresPerNode, cluster.DefaultNet())
		synRun(sc, m, synConfig(sc, c.imbalance), c.degree, c.lewi, c.drom, rec, ob)
		return TraceBundle{Label: c.label, Obs: ob, Trace: rec}
	})
}
