package experiments

import (
	"fmt"

	"ompsscluster/internal/balance"
	"ompsscluster/internal/cluster"
	"ompsscluster/internal/core"
	"ompsscluster/internal/obs"
	"ompsscluster/internal/sweep"
	"ompsscluster/internal/trace"
	"ompsscluster/internal/workloads/synthetic"
)

// The efficiency figure extends the paper's evaluation with the POP
// centre-of-excellence decomposition PE = LB x CommE, measured by the
// full TALP accounting: how much of the lost efficiency each balancing
// mechanism recovers, and whether it recovers it by fixing load balance
// (LB) or by keeping the best rank busier (CommE).

// effNodes is the fixed machine size of the efficiency sweep.
const effNodes = 4

// effConfig is one compared balancing stack.
type effConfig struct {
	label  string
	degree int
	lewi   bool
	drom   core.DROMMode
	sched  balance.SelfSched
}

// effConfigs lists the compared stacks: the static baseline (no DLB at
// all), the paper's reactive lewi+global stack, and two members of the
// self-scheduling family (weight-aware factoring, and the two-level
// scheme with LeWI below).
func effConfigs() []effConfig {
	return []effConfig{
		{"static", 1, false, core.DROMOff, balance.SelfSchedOff},
		{"lewi+global", 3, true, core.DROMGlobal, balance.SelfSchedOff},
		{"wfactoring", 3, false, core.DROMOff, balance.SelfSchedWeighted},
		{"twolevel", 3, true, core.DROMOff, balance.SelfSchedTwoLevel},
	}
}

// effRun executes one (imbalance, config) cell of the efficiency sweep
// with POP accounting enabled and returns the runtime for its report.
func effRun(sc Scale, imb float64, cfg effConfig, rec *trace.Recorder, ob *obs.Recorder) *core.ClusterRuntime {
	m := cluster.New(effNodes, sc.CoresPerNode, cluster.DefaultNet())
	b := synthetic.New(synConfig(sc, imb), effNodes, sc.CoresPerNode)
	rt := core.MustNew(core.Config{
		Machine:         m,
		Degree:          cfg.degree,
		Graphs:          sc.Graphs,
		EngineStats:     sc.Engine,
		POP:             true,
		POPWindow:       sc.POPWindow,
		GoroutineEngine: sc.GoroutineEngine,
		SimParallel:     sc.SimParallel,
		SimWorkers:      sc.SimWorkers,
		LeWI:            cfg.lewi,
		DROM:            cfg.drom,
		SelfSched:       cfg.sched,
		GlobalPeriod:    sc.GlobalPeriod,
		LocalPeriod:     sc.LocalPeriod,
		Seed:            sc.Seed,
		Recorder:        rec,
		Obs:             ob,
	})
	if err := rt.Run(b.Main()); err != nil {
		panic(fmt.Sprintf("experiments: efficiency run failed: %v", err))
	}
	return rt
}

// Efficiency sweeps POP parallel efficiency and its LB x CommE split
// over the application imbalance for the compared balancing stacks. The
// series come in triples — "<config> PE", "<config> LB",
// "<config> CommE" — computed over nodes (useful core-time against
// physical capacity, so LeWI borrowing shows up as recovered machine
// utilisation), with PE = LB x CommE holding per point by construction.
func Efficiency(sc Scale) *Result {
	res := &Result{
		ID:     "efficiency",
		Title:  "POP efficiency: PE = LB x CommE vs imbalance (static vs lewi+global vs self-scheduling)",
		XLabel: "imbalance",
		YLabel: "efficiency",
	}
	imbalances := []float64{1.0, 1.5, 2.0, 2.5, 3.0, 3.5, 4.0}
	cfgs := effConfigs()
	type spec struct {
		cfg effConfig
		imb float64
	}
	type outcome struct{ pe, lb, commE float64 }
	var specs []spec
	for _, cfg := range cfgs {
		for _, imb := range imbalances {
			specs = append(specs, spec{cfg, imb})
		}
	}
	type outMirror struct {
		PE    float64 `json:"pe"`
		LB    float64 `json:"lb"`
		CommE float64 `json:"comm_e"`
	}
	outs := mapSpecs(sc, specs, func(s spec) outcome {
		rt := effRun(sc, s.imb, s.cfg, nil, nil)
		rep, err := rt.POP()
		if err != nil {
			panic(fmt.Sprintf("experiments: efficiency POP report: %v", err))
		}
		p := rep.NodePOP
		return outcome{pe: p.PE, lb: p.LB, commE: p.CommE}
	}, jsonCodec(
		func(o outcome) outMirror { return outMirror{o.pe, o.lb, o.commE} },
		func(m outMirror) outcome { return outcome{pe: m.PE, lb: m.LB, commE: m.CommE} },
	))
	// Reserve the full series slice up front: the map holds pointers into
	// it, which an append-driven reallocation would silently orphan.
	res.Series = make([]Series, 0, len(cfgs)*3)
	series := make(map[string]*Series)
	for _, cfg := range cfgs {
		for _, kind := range []string{"PE", "LB", "CommE"} {
			label := cfg.label + " " + kind
			res.Series = append(res.Series, Series{Label: label})
			series[label] = &res.Series[len(res.Series)-1]
		}
	}
	for i, s := range specs {
		out := outs[i]
		series[s.cfg.label+" PE"].Points = append(series[s.cfg.label+" PE"].Points, Point{s.imb, out.pe})
		series[s.cfg.label+" LB"].Points = append(series[s.cfg.label+" LB"].Points, Point{s.imb, out.lb})
		series[s.cfg.label+" CommE"].Points = append(series[s.cfg.label+" CommE"].Points, Point{s.imb, out.commE})
	}
	res.Notes = append(res.Notes,
		"PE/LB/CommE computed over nodes by the TALP/POP accounting; PE = LB x CommE per point by construction",
		fmt.Sprintf("%d nodes, synthetic workload; self-scheduling configs run degree 3 without DROM", effNodes))
	return res
}

// EfficiencyTraceBundles runs the compared stacks once at imbalance 2.0
// with both recorders attached, for traceview. The windowed POP series
// defaults to the scale's local period so the Chrome export carries the
// per-node PE counter tracks.
func EfficiencyTraceBundles(sc Scale) []TraceBundle {
	if sc.POPWindow == 0 {
		sc.POPWindow = sc.LocalPeriod
	}
	return sweep.Map(sc.engine(), effConfigs(), func(cfg effConfig) TraceBundle {
		rec := trace.NewRecorder()
		ob := obs.NewRecorder(-1)
		effRun(sc, 2.0, cfg, rec, ob)
		return TraceBundle{Label: cfg.label, Obs: ob, Trace: rec}
	})
}
