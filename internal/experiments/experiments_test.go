package experiments

import (
	"fmt"
	"strings"
	"testing"
)

// qs is the shared quick scale for tests.
func qs() Scale { return QuickScale() }

// y returns the series value at x, or -1 when the point is missing (the
// tests' sentinel for a hole; measured values in these figures are
// positive).
func y(s *Series, x float64) float64 {
	v, ok := s.Lookup(x)
	if !ok {
		return -1
	}
	return v
}

func TestFig8Shapes(t *testing.T) {
	res := Fig8(qs())
	// At 4 nodes: degree 4 beats the baseline at imbalance 2.0, and sits
	// close to perfect.
	base := res.Get("4n baseline")
	deg4 := res.Get("4n degree 4")
	perfect := res.Get("4n perfect")
	if base == nil || deg4 == nil || perfect == nil {
		t.Fatalf("missing series; have %v", labels(res))
	}
	for _, imb := range []float64{2.0, 3.0} {
		b, d, p := y(base, imb), y(deg4, imb), y(perfect, imb)
		if b <= 0 || d <= 0 || p <= 0 {
			t.Fatalf("imb %v: missing points b=%v d=%v p=%v", imb, b, d, p)
		}
		if d >= b {
			t.Errorf("imb %v: degree 4 (%v) not better than baseline (%v)", imb, d, b)
		}
		if d > p*1.5 {
			t.Errorf("imb %v: degree 4 (%v) too far above perfect (%v)", imb, d, p)
		}
	}
	// Baseline time grows with imbalance; degree 4 stays nearly flat.
	if y(base, 4.0) <= y(base, 1.0)*1.5 {
		t.Errorf("baseline does not grow with imbalance: %v vs %v", y(base, 4.0), y(base, 1.0))
	}
	growth := y(deg4, 4.0) / y(deg4, 1.0)
	baseGrowth := y(base, 4.0) / y(base, 1.0)
	if growth >= baseGrowth {
		t.Errorf("degree 4 grows as fast as baseline: %v vs %v", growth, baseGrowth)
	}
}

func TestFig8DegreeTwoLimitedAtHighImbalance(t *testing.T) {
	res := Fig8(qs())
	deg2 := res.Get("4n degree 2")
	deg4 := res.Get("4n degree 4")
	if deg2 == nil || deg4 == nil {
		t.Fatal("missing degree series")
	}
	// The paper: degree 2 suffices up to imbalance ~2 but falls behind at
	// higher imbalance where degree 4 still holds.
	if y(deg2, 4.0) <= y(deg4, 4.0)*1.05 {
		t.Errorf("degree 2 (%v) should clearly lag degree 4 (%v) at imbalance 4",
			y(deg2, 4.0), y(deg4, 4.0))
	}
}

func TestFig5GlobalAvoidsUnnecessaryOffload(t *testing.T) {
	res := Fig5(qs())
	var local, global float64 = -1, -1
	for _, n := range res.Notes {
		var v float64
		if strings.HasPrefix(n, "local policy:") {
			if _, err := sscanNote(n, &v); err == nil {
				local = v
			}
		}
		if strings.HasPrefix(n, "global policy:") {
			if _, err := sscanNote(n, &v); err == nil {
				global = v
			}
		}
	}
	if local < 0 || global < 0 {
		t.Fatalf("notes missing cross-node numbers: %v", res.Notes)
	}
	// Figure 5: the local policy keeps offloading during the balanced
	// phase; the global policy drops well below it. (The global policy's
	// residual cross-node work is the one-core helper floor, which is
	// 1/48th of a node in the paper but 1/12th at test scale.)
	if global > local*0.7 {
		t.Errorf("global cross-node %v not clearly below local %v", global, local)
	}
}

func sscanNote(n string, v *float64) (int, error) {
	i := strings.Index(n, ": ")
	var rest string
	if i >= 0 {
		rest = n[i+2:]
	}
	return fmtSscan(rest, v)
}

func TestFig11Convergence(t *testing.T) {
	res := Fig11(qs())
	find := func(label string) *Series {
		s := res.Get(label)
		if s == nil {
			t.Fatalf("missing series %q; have %v", label, labels(res))
		}
		return s
	}
	// DROM (global or local) drives the final imbalance near 1; LeWI
	// alone leaves it noticeably higher, matching Figure 11.
	tail := func(s *Series) float64 {
		n := len(s.Points)
		if n == 0 {
			return -1
		}
		// Mean of the last third.
		sum, cnt := 0.0, 0
		for _, p := range s.Points[2*n/3:] {
			sum += p.Y
			cnt++
		}
		return sum / float64(cnt)
	}
	lewi := tail(find("2n lewi-only"))
	global := tail(find("2n global+lewi"))
	local := tail(find("2n local+lewi"))
	if global > 1.25 || local > 1.25 {
		t.Errorf("DROM did not converge: global %v local %v", global, local)
	}
	if lewi < global {
		t.Logf("note: lewi-only tail %v vs global %v", lewi, global)
	}
}

func TestFig9Ratios(t *testing.T) {
	res := Fig9(qs())
	get := func(label string) float64 {
		s := res.Get(label)
		if s == nil || len(s.Points) == 0 {
			t.Fatalf("missing %q", label)
		}
		return s.Points[0].Y
	}
	base := get("baseline")
	lewi := get("lewi-only")
	drom := get("drom-only")
	both := get("lewi+drom")
	if lewi >= base {
		t.Errorf("LeWI-only (%v) did not beat baseline (%v)", lewi, base)
	}
	if drom >= lewi {
		t.Errorf("DROM-only (%v) should beat LeWI-only (%v), as in Figure 9", drom, lewi)
	}
	if both > drom*1.05 {
		t.Errorf("LeWI+DROM (%v) should be at least as good as DROM-only (%v)", both, drom)
	}
}

func TestHeadlineClaims(t *testing.T) {
	res := Headline(qs())
	if len(res.Series) < 5 {
		t.Fatalf("headline series missing: %v", labels(res))
	}
	red := res.Get("micropp reduction vs dlb %").Points[0].Y
	if red < 20 {
		t.Errorf("micropp reduction = %.1f%%, want substantial (paper: 46%%)", red)
	}
	over := res.Get("synthetic above perfect %").Points[0].Y
	if over > 30 {
		t.Errorf("synthetic %.1f%% above perfect, want near paper's <=10%%", over)
	}
	further := res.Get("nbody further reduction %").Points[0].Y
	if further <= 0 {
		t.Errorf("n-body offloading gave no further reduction (%.1f%%)", further)
	}
}

func TestByIDAndTables(t *testing.T) {
	res, err := ByID("fig8", qs())
	if err != nil {
		t.Fatal(err)
	}
	tab := res.Table()
	if !strings.Contains(tab, "fig8") || !strings.Contains(tab, "imbalance") {
		t.Fatalf("table rendering wrong:\n%s", tab)
	}
	csv := res.CSV()
	if !strings.HasPrefix(csv, "series,imbalance,") {
		t.Fatalf("csv rendering wrong:\n%s", csv)
	}
	if _, err := ByID("nope", qs()); err == nil {
		t.Fatal("unknown id accepted")
	}
}

func labels(r *Result) []string {
	var out []string
	for _, s := range r.Series {
		out = append(out, s.Label)
	}
	return out
}

// fmtSscan wraps fmt.Sscan for note parsing.
func fmtSscan(s string, v *float64) (int, error) {
	return fmt.Sscan(s, v)
}

func TestExtDVFSReconverges(t *testing.T) {
	res := ExtDVFS(qs())
	base := res.Get("baseline")
	bal := res.Get("degree 4 lewi+drom")
	if base == nil || bal == nil {
		t.Fatalf("missing series: %v", labels(res))
	}
	n := len(base.Points)
	if n < 4 {
		t.Fatal("too few iterations")
	}
	// After throttling, the baseline's last iteration is much slower than
	// its first; the balanced run recovers most of the loss.
	baseFirst, baseLast := base.Points[0].Y, base.Points[n-1].Y
	balLast := bal.Points[len(bal.Points)-1].Y
	if baseLast < baseFirst*1.3 {
		t.Fatalf("throttling had no effect: %v -> %v", baseFirst, baseLast)
	}
	if balLast > baseLast*0.9 {
		t.Fatalf("runtime did not recover: balanced %v vs baseline %v", balLast, baseLast)
	}
}

func TestMarkdownRendering(t *testing.T) {
	res := &Result{
		ID: "x", Title: "T", XLabel: "n",
		Series: []Series{
			{Label: "a", Points: []Point{{1, 2.5}, {2, 3.5}}},
			{Label: "b", Points: []Point{{1, 4.5}}},
		},
		Notes: []string{"note one"},
	}
	md := res.Markdown()
	for _, want := range []string{"### x — T", "| n | a | b |", "| 1 | 2.5000 | 4.5000 |", "| 2 | 3.5000 | – |", "- note one"} {
		if !strings.Contains(md, want) {
			t.Fatalf("markdown missing %q:\n%s", want, md)
		}
	}
}

func TestFig5TracesProduceTimelines(t *testing.T) {
	recs, labs := Fig5Traces(qs())
	if len(recs) != 2 || labs[0] != "local" || labs[1] != "global" {
		t.Fatalf("labels = %v", labs)
	}
	for i, rec := range recs {
		if rec.Busy(0, 0).Max() < 1 {
			t.Fatalf("trace %d empty", i)
		}
	}
}

// TestAllExperimentsRun executes every registered experiment at quick
// scale and sanity-checks the results are non-empty with finite values.
func TestAllExperimentsRun(t *testing.T) {
	for _, id := range IDs() {
		id := id
		t.Run(id, func(t *testing.T) {
			res, err := ByID(id, qs())
			if err != nil {
				t.Fatal(err)
			}
			if res.ID == "" || len(res.Series) == 0 {
				t.Fatalf("empty result for %s", id)
			}
			points := 0
			for _, s := range res.Series {
				percentage := strings.Contains(s.Label, "%")
				for _, p := range s.Points {
					// Times, counts and loads are non-negative;
					// percentage deltas (e.g. "reduction %") may be
					// slightly negative.
					if p.Y < 0 && !percentage {
						t.Fatalf("%s/%s has negative value %v at x=%v", id, s.Label, p.Y, p.X)
					}
					points++
				}
			}
			if points == 0 {
				t.Fatalf("%s produced no points", id)
			}
		})
	}
}

func TestAblationGraphShapeOrdering(t *testing.T) {
	res := AblationGraphShape(qs())
	s := res.Series[0]
	if len(s.Points) != 3 {
		t.Fatalf("points = %v", s.Points)
	}
	// All three shapes must at least beat a missing-balancing disaster:
	// they are within 2x of each other (the ablation's point is that the
	// expander is close to full connectivity at a fraction of the state).
	lo, hi := s.Points[0].Y, s.Points[0].Y
	for _, p := range s.Points {
		if p.Y < lo {
			lo = p.Y
		}
		if p.Y > hi {
			hi = p.Y
		}
	}
	if hi > 2*lo {
		t.Fatalf("graph shapes diverge wildly: %v", s.Points)
	}
}

func TestExtDynamicBeatsDegreeOne(t *testing.T) {
	res := ExtDynamicSpreading(qs())
	s1 := res.Get("static degree 1")
	dyn := res.Get("dynamic (from degree 1)")
	if s1 == nil || dyn == nil {
		t.Fatalf("missing series: %v", labels(res))
	}
	if y(dyn, 3.0) >= y(s1, 3.0) {
		t.Fatalf("dynamic (%v) no better than static degree 1 (%v) at imbalance 3",
			y(dyn, 3.0), y(s1, 3.0))
	}
}

func TestExtPartitionQualityBounded(t *testing.T) {
	res := ExtPartitionedSolver(qs())
	ts := res.Series[0]
	if len(ts.Points) < 2 {
		t.Skip("too few partitions at this scale")
	}
	whole := y(&ts, 0)
	for _, p := range ts.Points {
		if p.Y > whole*1.5 {
			t.Fatalf("partition %v degrades balance too much: %v vs whole %v", p.X, p.Y, whole)
		}
	}
}
