package experiments

import (
	"bytes"
	"encoding/json"
	"testing"

	"ompsscluster/internal/obs"
)

func fig9Chrome(t *testing.T, parallel int) []byte {
	t.Helper()
	sc := qs()
	sc.Parallel = parallel
	bundles := Fig9TraceBundles(sc)
	recs := make([]*obs.Recorder, len(bundles))
	labels := make([]string, len(bundles))
	for i, b := range bundles {
		recs[i], labels[i] = b.Obs, b.Label
	}
	var buf bytes.Buffer
	if err := obs.WriteChrome(&buf, recs, labels); err != nil {
		t.Fatalf("WriteChrome: %v", err)
	}
	return buf.Bytes()
}

// TestFig9ChromeExport covers the quick-scale Figure-9 export end to
// end: the trace is structurally valid, carries task slices, message and
// collective events, and DLB ownership instants on distinct tracks, and
// is byte-identical whether the four configurations ran sequentially or
// concurrently.
func TestFig9ChromeExport(t *testing.T) {
	seq := fig9Chrome(t, 1)
	par := fig9Chrome(t, 8)
	if !bytes.Equal(seq, par) {
		t.Fatal("fig9 Chrome trace differs between -parallel 1 and -parallel 8")
	}
	if err := obs.ValidateChrome(seq); err != nil {
		t.Fatalf("ValidateChrome: %v", err)
	}

	var doc struct {
		TraceEvents []struct {
			Ph   string `json:"ph"`
			Pid  int64  `json:"pid"`
			Tid  int64  `json:"tid"`
			Name string `json:"name"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(seq, &doc); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	type track struct{ pid, tid int64 }
	taskTracks := map[track]bool{}
	ownTracks := map[track]bool{}
	msgTracks := map[track]bool{}
	var collectives, ctl int
	for _, e := range doc.TraceEvents {
		tr := track{e.Pid, e.Tid}
		switch {
		case e.Ph == "B":
			taskTracks[tr] = true
		case e.Ph == "i" && e.Tid == 999:
			ownTracks[tr] = true
		case e.Ph == "b":
			msgTracks[tr] = true
		case e.Ph == "X":
			collectives++
		case e.Ph == "i" && e.Tid == 997:
			ctl++
		}
	}
	if len(taskTracks) == 0 {
		t.Fatal("no task execution slices")
	}
	if len(ownTracks) == 0 {
		t.Fatal("no DLB ownership instants")
	}
	if len(msgTracks) == 0 && collectives == 0 {
		t.Fatal("no message or collective events")
	}
	if collectives == 0 {
		t.Fatal("no collective events")
	}
	if ctl == 0 {
		t.Fatal("no control-message instants")
	}
	for tr := range ownTracks {
		if taskTracks[tr] {
			t.Fatalf("ownership and task events share track %+v", tr)
		}
	}
	for tr := range msgTracks {
		if taskTracks[tr] {
			t.Fatalf("message and task events share track %+v", tr)
		}
	}
}
