package experiments

import "testing"

// runFig8 renders fig8 at quick scale through ByID (so the engine
// counters are collected) with the given scale tweaks, returning the CSV
// bytes and the summarized engine counters.
func runFig8(t *testing.T, mutate func(*Scale)) (string, EngineStats) {
	t.Helper()
	sc := qs()
	mutate(&sc)
	res, err := ByID("fig8", sc)
	if err != nil {
		t.Fatal(err)
	}
	return res.CSV(), res.Engine
}

// TestEngineDifferentialFig8 is the conversion-safety check for the
// pooled continuation records: the legacy per-task closure engine and the
// continuation-record engine must produce byte-identical figure CSVs and
// identical deterministic engine counters (events, fast-path split, heap
// pushes, parks, wakes). A divergence means the pooled records changed a
// scheduling decision, which the byte-identity contract forbids.
func TestEngineDifferentialFig8(t *testing.T) {
	contCSV, contStats := runFig8(t, func(sc *Scale) { sc.GoroutineEngine = false })
	goroCSV, goroStats := runFig8(t, func(sc *Scale) { sc.GoroutineEngine = true })
	if contCSV != goroCSV {
		t.Fatalf("fig8 CSV differs between engines:\ncontinuation:\n%s\ngoroutine:\n%s", contCSV, goroCSV)
	}
	if contStats != goroStats {
		t.Fatalf("engine counters differ:\ncontinuation: %+v\ngoroutine: %+v", contStats, goroStats)
	}
	if contStats.Events == 0 || contStats.Parks == 0 || contStats.Wakes == 0 {
		t.Fatalf("implausible counters (collector not wired?): %+v", contStats)
	}
}

// TestEngineDifferentialParallelism: the sweep engine collects results by
// spec index, so running the figure's simulations sequentially or eight
// at a time must not change a byte of output or any deterministic
// counter. (Host-time derived fields are not part of EngineStats.)
func TestEngineDifferentialParallelism(t *testing.T) {
	seqCSV, seqStats := runFig8(t, func(sc *Scale) { sc.Parallel = 1 })
	parCSV, parStats := runFig8(t, func(sc *Scale) { sc.Parallel = 8 })
	if seqCSV != parCSV {
		t.Fatalf("fig8 CSV differs between -parallel 1 and 8:\nseq:\n%s\npar:\n%s", seqCSV, parCSV)
	}
	if seqStats != parStats {
		t.Fatalf("engine counters differ across parallelism:\nseq: %+v\npar: %+v", seqStats, parStats)
	}
}
