// Package experiments reproduces every figure of the paper's evaluation
// (§7, Figures 5-11). Each experiment builds the paper's scenario on the
// simulated cluster, runs it across the same configurations (offloading
// degrees, LeWI/DROM combinations, allocation policies), and returns
// labelled series shaped like the published plots.
//
// Absolute times differ from the paper (the substrate is a simulator and
// the workloads are scaled), but the comparisons the paper makes — who
// wins, by what factor, where the crossovers fall — are reproduced and
// asserted in the package tests. EXPERIMENTS.md records paper-vs-measured
// values.
package experiments

import (
	"fmt"
	"sort"
	"strings"

	"ompsscluster/internal/expander"
	"ompsscluster/internal/simtime"
	"ompsscluster/internal/sweep"
)

// Point is one (x, y) sample of a series.
type Point struct {
	X, Y float64
}

// Series is one labelled line of a figure.
type Series struct {
	Label  string
	Points []Point
}

// Lookup returns the series value at x (exact match) and whether the
// series has a point there. Missing points are reported explicitly so a
// legitimate non-positive value is never mistaken for a hole.
func (s Series) Lookup(x float64) (float64, bool) {
	for _, p := range s.Points {
		if p.X == x {
			return p.Y, true
		}
	}
	return 0, false
}

// EngineStats summarises the discrete-event engines of the simulator
// runs behind one figure. Only deterministic counters live here — host
// time and events/sec depend on the hardware and are reported by the
// caller (cmd/lbsim) from the Scale's collector — so Results compare
// equal across sweep parallelism levels.
type EngineStats struct {
	// Runs is the number of simulator runs the figure executed.
	Runs uint64
	// Events is the total number of engine events executed.
	Events uint64
	// FastPath counts events that bypassed the heap via the engine's
	// same-timestamp FIFO.
	FastPath uint64
	// HeapPushes counts events that went through the future-event heap.
	HeapPushes uint64
	// Parks counts process blocks (goroutine Park/Sleep and the
	// continuation *Then primitives) across all runs.
	Parks uint64
	// Wakes counts scheduled process resumptions across all runs.
	Wakes uint64
	// PeakGoroutines is the maximum goroutine-backed process count any
	// single run reached — the Go scheduler pressure a figure exerts.
	PeakGoroutines uint64
	// RegistryHiWater is the maximum dependency-registry interval count
	// any single run reached — the live-interval footprint after
	// coalescing, which bounds the per-query walk cost.
	RegistryHiWater uint64
	// Partitions is the maximum partition count any single run used
	// (0 = every run was sequential).
	Partitions uint64
	// Windows counts parallel-engine horizon advances across all runs.
	Windows uint64
	// BarrierStalls counts windows clamped below the full lookahead by a
	// pending global event.
	BarrierStalls uint64
	// InboxEvents counts cross-partition event deliveries.
	InboxEvents uint64
	// Fallbacks counts runs that requested the parallel engine but fell
	// back to sequential execution.
	Fallbacks uint64
}

// Result is one reproduced figure.
type Result struct {
	ID     string
	Title  string
	XLabel string
	YLabel string
	Series []Series
	Notes  []string
	// Engine holds the engine counters of the runs behind the figure
	// (populated by ByID; zero when a figure function is called
	// directly without a collector).
	Engine EngineStats
	// Err records the first typed runtime error any run behind the
	// figure surfaced (a simtime.DeadlockError, a core.AbortError from a
	// crash fault, ...) instead of panicking; the affected runs simply
	// contribute no point. Figures that tolerate failing runs (the
	// resilience sweep, FaultDemo) populate it.
	Err error
}

// Get returns the series with the given label.
func (r *Result) Get(label string) *Series {
	for i := range r.Series {
		if r.Series[i].Label == label {
			return &r.Series[i]
		}
	}
	return nil
}

// Table renders the result as an aligned text table, series as columns.
func (r *Result) Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "# %s — %s\n", r.ID, r.Title)
	xs := map[float64]bool{}
	for _, s := range r.Series {
		for _, p := range s.Points {
			xs[p.X] = true
		}
	}
	sorted := make([]float64, 0, len(xs))
	for x := range xs {
		sorted = append(sorted, x)
	}
	sort.Float64s(sorted)
	fmt.Fprintf(&b, "%-12s", r.XLabel)
	for _, s := range r.Series {
		fmt.Fprintf(&b, "  %16s", s.Label)
	}
	b.WriteString("\n")
	for _, x := range sorted {
		fmt.Fprintf(&b, "%-12.3g", x)
		for _, s := range r.Series {
			if y, ok := s.Lookup(x); ok {
				fmt.Fprintf(&b, "  %16.4f", y)
			} else {
				fmt.Fprintf(&b, "  %16s", "-")
			}
		}
		b.WriteString("\n")
	}
	for _, n := range r.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// Markdown renders the result as a GitHub-flavoured markdown table with
// the notes as a trailing list (for pasting into EXPERIMENTS.md-style
// records).
func (r *Result) Markdown() string {
	var b strings.Builder
	fmt.Fprintf(&b, "### %s — %s\n\n", r.ID, r.Title)
	xs := map[float64]bool{}
	for _, s := range r.Series {
		for _, p := range s.Points {
			xs[p.X] = true
		}
	}
	sorted := make([]float64, 0, len(xs))
	for x := range xs {
		sorted = append(sorted, x)
	}
	sort.Float64s(sorted)
	fmt.Fprintf(&b, "| %s |", r.XLabel)
	for _, s := range r.Series {
		fmt.Fprintf(&b, " %s |", s.Label)
	}
	b.WriteString("\n|---|")
	for range r.Series {
		b.WriteString("---|")
	}
	b.WriteString("\n")
	for _, x := range sorted {
		fmt.Fprintf(&b, "| %g |", x)
		for _, s := range r.Series {
			if y, ok := s.Lookup(x); ok {
				fmt.Fprintf(&b, " %.4f |", y)
			} else {
				b.WriteString(" – |")
			}
		}
		b.WriteString("\n")
	}
	for _, n := range r.Notes {
		fmt.Fprintf(&b, "\n- %s", n)
	}
	b.WriteString("\n")
	return b.String()
}

// CSV renders the result in long format: series,x,y. Fields are quoted
// per RFC 4180 when they contain a comma, quote, or newline, so labels
// like "degree 4, local" survive a round-trip.
func (r *Result) CSV() string {
	var b strings.Builder
	fmt.Fprintf(&b, "series,%s,%s\n",
		csvField(strings.ReplaceAll(r.XLabel, " ", "_")),
		csvField(strings.ReplaceAll(r.YLabel, " ", "_")))
	for _, s := range r.Series {
		for _, p := range s.Points {
			fmt.Fprintf(&b, "%s,%g,%g\n", csvField(s.Label), p.X, p.Y)
		}
	}
	return b.String()
}

// csvField quotes s per RFC 4180 if it needs it, else returns it as is.
func csvField(s string) string {
	if !strings.ContainsAny(s, ",\"\n\r") {
		return s
	}
	return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
}

// Scale controls the cost of the reproduction. The paper's runs use
// 48-core nodes and hundreds of 50ms tasks per core; the default scale
// shrinks per-node core counts and task counts so full sweeps run in
// seconds while preserving every ratio the paper reports.
type Scale struct {
	// CoresPerNode is the simulated node width.
	CoresPerNode int
	// TasksPerCore is the synthetic benchmark's per-iteration task count
	// per core (paper: 100).
	TasksPerCore int
	// MeanTask is the synthetic benchmark's mean task duration (paper:
	// 50ms).
	MeanTask simtime.Duration
	// Iterations is the number of outer iterations / timesteps.
	Iterations int
	// MaxNodes caps the node counts of the weak-scaling sweeps.
	MaxNodes int
	// GlobalPeriod and LocalPeriod are the DROM policy periods. The
	// paper uses 2s for the global solver; scaled runs shorten it in
	// proportion to the shortened iterations.
	GlobalPeriod simtime.Duration
	LocalPeriod  simtime.Duration
	// SamplePeriod is the trace/imbalance sampling period (default 50ms).
	SamplePeriod simtime.Duration
	// Seed drives all randomness.
	Seed int64

	// Parallel is the number of simulator runs the figure engines execute
	// concurrently (each run on its own simtime.Env). 0 or 1 runs
	// sequentially; results are identical at any setting because the
	// sweep engine collects by spec index.
	Parallel int
	// Graphs, when non-nil, is shared by every run of the sweep so
	// configurations with the same layout generate their helper graph
	// once. Safe for concurrent use.
	Graphs *expander.Store
	// Engine, when non-nil, collects event-engine counters and host
	// time from every simulator run (safe for concurrent use). ByID
	// creates one per call when unset and summarises it on the Result.
	Engine *simtime.StatsCollector
	// GoroutineEngine forces the runtime's legacy per-task closure paths
	// instead of the pooled continuation records. Results are identical
	// either way; the flag exists for the engine differential test and
	// A/B benchmarking (cmd/lbsim -engine goroutine).
	GoroutineEngine bool
	// SimParallel requests the partitioned parallel event engine for
	// every simulator run (cmd/lbsim -engine parallel). Runs whose
	// configuration the partitioned engine cannot honor (observability,
	// degree > 1, ...) fall back to sequential execution per run and
	// record the reason on the Engine collector; results are identical
	// either way.
	SimParallel bool
	// SimWorkers caps the partition worker threads per simulator run
	// when SimParallel engages (0 = GOMAXPROCS). Note the sweep-level
	// Parallel knob above multiplies with this one.
	SimWorkers int
	// POP enables full TALP/POP accounting in every simulator run of a
	// figure. Figure outputs are unchanged (accounting is summary-only
	// until queried); cmd/lbsim sets it from -popaccount so the bench
	// harness can measure the accounting overhead, and POPReports sets
	// it on its representative runs.
	POP bool
	// POPWindow is the windowed POP series width. Only meaningful with
	// POP set; zero keeps accounting totals-only. POPReports defaults
	// it to LocalPeriod when unset.
	POPWindow simtime.Duration
	// Jobs, when non-nil, threads the job service's per-spec hooks
	// (checkpointing, resume, cancellation) through every figure sweep;
	// see JobHooks. A pointer so every copy of the Scale an experiment
	// passes around shares the one hook state.
	Jobs *JobHooks
}

// SamplePeriodOrDefault returns the sampling period as a Time step.
func (sc Scale) SamplePeriodOrDefault() simtime.Time {
	if sc.SamplePeriod > 0 {
		return simtime.Time(sc.SamplePeriod)
	}
	return simtime.Time(50 * simtime.Millisecond)
}

// DefaultScale runs every figure in minutes on a laptop. Nodes are 24
// cores wide so the one-core-per-helper floor stays small relative to the
// node (as on the paper's 48-core nodes).
func DefaultScale() Scale {
	return Scale{
		CoresPerNode: 24,
		TasksPerCore: 30,
		MeanTask:     50 * simtime.Millisecond,
		Iterations:   4,
		MaxNodes:     64,
		GlobalPeriod: 400 * simtime.Millisecond,
		LocalPeriod:  100 * simtime.Millisecond,
		Seed:         1,
	}
}

// QuickScale is a reduced scale for unit tests.
func QuickScale() Scale {
	s := DefaultScale()
	s.CoresPerNode = 12
	s.TasksPerCore = 10
	s.MeanTask = 20 * simtime.Millisecond
	s.Iterations = 3
	s.MaxNodes = 8
	s.GlobalPeriod = 100 * simtime.Millisecond
	s.LocalPeriod = 40 * simtime.Millisecond
	return s
}

// ScaleByName maps the user-facing scale names ("quick", "default",
// "paper") to their Scale — shared by cmd/lbsim's -scale flag and the
// job service's spec validation.
func ScaleByName(name string) (Scale, error) {
	switch name {
	case "quick":
		return QuickScale(), nil
	case "default":
		return DefaultScale(), nil
	case "paper":
		return PaperScale(), nil
	}
	return Scale{}, fmt.Errorf("unknown scale %q (quick, default, paper)", name)
}

// ScaleNames lists the named scales ScaleByName accepts.
func ScaleNames() []string { return []string{"quick", "default", "paper"} }

// PaperScale approximates the paper's parameters (48-core MareNostrum 4
// nodes, 100 tasks per core, 2-second solver period). Full sweeps take
// minutes of wall time.
func PaperScale() Scale {
	return Scale{
		CoresPerNode: 48,
		TasksPerCore: 100,
		MeanTask:     50 * simtime.Millisecond,
		Iterations:   6,
		MaxNodes:     64,
		GlobalPeriod: 2 * simtime.Second,
		LocalPeriod:  100 * simtime.Millisecond,
		Seed:         1,
	}
}

// engine returns the sweep engine configured by the scale. The default
// (Parallel 0) is sequential, preserving the historical single-threaded
// behaviour; cmd/lbsim sets Parallel from its -parallel flag. Under job
// hooks the engine carries the job's cancellation context, so even
// sweeps without a checkpoint codec (trace and POP bundles) stop
// drawing specs when the job is canceled.
func (sc Scale) engine() *sweep.Engine {
	eng := sweep.New(1)
	if sc.Parallel > 1 {
		eng = sweep.New(sc.Parallel)
	}
	if sc.Jobs != nil && sc.Jobs.Ctx != nil {
		eng = eng.WithHook(sweep.Hook{Ctx: sc.Jobs.Ctx})
	}
	return eng
}

// runSpec is one point-producing simulator run of a figure sweep: run
// yields the y value destined for series at x. Everything the run
// touches must be created inside it (machines, recorders, workloads) so
// specs may execute concurrently.
type runSpec struct {
	series *Series
	x      float64
	run    func() float64
}

// runAll executes the specs through the scale's sweep engine and appends
// each result to its destination series in spec order, so assembled
// series are identical at every parallelism.
func runAll(sc Scale, specs []runSpec) {
	ys := mapSpecs(sc, specs, func(s runSpec) float64 { return s.run() }, floatCodec())
	for i, s := range specs {
		s.series.Points = append(s.series.Points, Point{s.x, ys[i]})
	}
}

// nodeSweep returns the paper's node counts for weak scaling, capped by
// the scale.
func nodeSweep(sc Scale, counts ...int) []int {
	var out []int
	for _, c := range counts {
		if c <= sc.MaxNodes {
			out = append(out, c)
		}
	}
	return out
}

// All runs every figure at the given scale and returns the results in
// paper order.
func All(sc Scale) []*Result {
	return []*Result{
		Fig5(sc),
		Fig6a(sc),
		Fig6b(sc),
		Fig6c(sc),
		Fig7(sc),
		Fig8(sc),
		Fig10(sc),
		Fig11(sc),
		Fig9(sc),
		Headline(sc),
		Resilience(sc),
		Policies(sc),
		Efficiency(sc),
	}
}

// ByID runs the experiment with the given id ("fig5" ... "fig11",
// "headline", "ablation-*").
func ByID(id string, sc Scale) (*Result, error) {
	fns := map[string]func(Scale) *Result{
		"fig5":                Fig5,
		"fig6a":               Fig6a,
		"fig6b":               Fig6b,
		"fig6c":               Fig6c,
		"fig7":                Fig7,
		"fig8":                Fig8,
		"fig9":                Fig9,
		"fig10":               Fig10,
		"fig11":               Fig11,
		"headline":            Headline,
		"resilience":          Resilience,
		"policies":            Policies,
		"efficiency":          Efficiency,
		"ablation-taskspc":    AblationTasksPerCore,
		"ablation-borrowed":   AblationCountBorrowed,
		"ablation-graphshape": AblationGraphShape,
		"ablation-period":     AblationGlobalPeriod,
		"ablation-incentive":  AblationIncentive,
		"ablation-orbweights": AblationORBWeights,
		"ext-dynamic":         ExtDynamicSpreading,
		"ext-partition":       ExtPartitionedSolver,
		"ext-dvfs":            ExtDVFS,
	}
	fn, ok := fns[id]
	if !ok {
		var ids []string
		for k := range fns {
			ids = append(ids, k)
		}
		sort.Strings(ids)
		return nil, fmt.Errorf("experiments: unknown id %q (have %s)", id, strings.Join(ids, ", "))
	}
	if sc.Engine == nil {
		sc.Engine = simtime.NewStatsCollector()
	}
	before := sc.Engine.Totals()
	res := fn(sc)
	d := sc.Engine.Totals().Sub(before)
	res.Engine = EngineStats{
		Runs:            d.Runs,
		Events:          d.Events,
		FastPath:        d.FastPath,
		HeapPushes:      d.HeapPushes,
		Parks:           d.Parks,
		Wakes:           d.Wakes,
		PeakGoroutines:  d.PeakGoroutines,
		RegistryHiWater: d.RegistryHiWater,
		Partitions:      d.Partitions,
		Windows:         d.Windows,
		BarrierStalls:   d.BarrierStalls,
		InboxEvents:     d.InboxEvents,
		Fallbacks:       d.Fallbacks,
	}
	return res, nil
}

// IDs lists the available experiment ids.
func IDs() []string {
	return []string{"fig5", "fig6a", "fig6b", "fig6c", "fig7", "fig8", "fig9",
		"fig10", "fig11", "headline", "resilience", "policies", "efficiency",
		"ablation-taskspc", "ablation-borrowed", "ablation-graphshape",
		"ablation-period", "ablation-incentive", "ablation-orbweights",
		"ext-dynamic", "ext-partition", "ext-dvfs"}
}
