package experiments

import (
	"fmt"

	"ompsscluster/internal/cluster"
	"ompsscluster/internal/core"
	"ompsscluster/internal/obs"
	"ompsscluster/internal/simtime"
	"ompsscluster/internal/sweep"
	"ompsscluster/internal/trace"
	"ompsscluster/internal/workloads/micropp"
	"ompsscluster/internal/workloads/synthetic"
)

// mppImbalance is the MicroPP application-level imbalance; the linear /
// non-linear element mix in the paper's runs produces roughly a factor
// two between the heaviest and the average rank (its degree-4 runs gain
// ~47% over DLB, i.e. the baseline runs at ~1.9x the balanced time).
const mppImbalance = 2.0

// mppProblem instantiates the MicroPP surrogate for a given apprank
// count at the given scale.
func mppProblem(sc Scale, appranks, coresPerApprank int) *micropp.Problem {
	// 20 chunks per core keep the heaviest rank's chunk under ~5% of a
	// timestep, so end-of-step granularity tails stay small (the paper's
	// element sets are much finer than its 50ms tasks). The mean chunk
	// cost is chosen so a timestep lasts about half a synthetic
	// iteration (TasksPerCore x MeanTask / 2), keeping the ratio of
	// timestep to solver period consistent across scales — at the paper
	// scale a MicroPP step is ~2.5s against the 2s solver period.
	meanChunk := simtime.Duration(sc.TasksPerCore) * sc.MeanTask / 40
	return micropp.New(micropp.Config{
		ChunksPerApprank: 20 * coresPerApprank,
		ElementsPerChunk: 64,
		// Mean chunk factor is 1+(NR-1)*meanG; with NR=10 and I=2 the
		// mean factor is 5, so the linear-only chunk cost is a fifth of
		// the target mean chunk cost.
		LinearCost:   meanChunk / (5 * 64),
		NRIterations: 10,
		Imbalance:    mppImbalance,
		Timesteps:    sc.Iterations,
		Seed:         sc.Seed,
	}, appranks)
}

// mppRun executes one MicroPP configuration and returns the normalised
// time-to-solution: the steady per-timestep time (skipping the first,
// warm-up, step in which the DROM allocation converges) times the number
// of timesteps. The paper's runs are long enough that warm-up is
// negligible; normalising removes the same transient from these scaled
// runs.
func mppRun(sc Scale, nodes, rpn, degree int, lewi bool, drom core.DROMMode, rec *trace.Recorder, ob *obs.Recorder) (simtime.Duration, *core.ClusterRuntime) {
	m := cluster.New(nodes, sc.CoresPerNode, cluster.DefaultNet())
	p := mppProblem(sc, nodes*rpn, sc.CoresPerNode/rpn)
	rt := core.MustNew(core.Config{
		Machine:         m,
		AppranksPerNode: rpn,
		Degree:          degree,
		Graphs:          sc.Graphs,
		EngineStats:     sc.Engine,
		POP:             sc.POP,
		POPWindow:       sc.POPWindow,
		GoroutineEngine: sc.GoroutineEngine,
		SimParallel:     sc.SimParallel,
		SimWorkers:      sc.SimWorkers,
		LeWI:            lewi,
		DROM:            drom,
		GlobalPeriod:    sc.GlobalPeriod,
		LocalPeriod:     sc.LocalPeriod,
		Seed:            sc.Seed,
		Recorder:        rec,
		Obs:             ob,
	})
	if err := rt.Run(p.Main()); err != nil {
		panic(fmt.Sprintf("experiments: micropp run failed: %v", err))
	}
	perStep := synthetic.SteadyIterTime(p.StepEnds(), 1)
	return perStep * simtime.Duration(sc.Iterations), rt
}

// mppOptimal returns the perfect-balance bound for the configuration.
func mppOptimal(sc Scale, nodes, rpn int) simtime.Duration {
	m := cluster.New(nodes, sc.CoresPerNode, cluster.DefaultNet())
	return mppProblem(sc, nodes*rpn, sc.CoresPerNode/rpn).OptimalTime(m)
}

// figMicroPP is the shared engine for Figures 6(a), 6(b) and 7.
func figMicroPP(id, title string, sc Scale, rpn int, drom core.DROMMode) *Result {
	res := &Result{
		ID:     id,
		Title:  title,
		XLabel: "nodes",
		YLabel: "execution time (s)",
	}
	nodes := nodeSweep(sc, 2, 4, 8, 16, 32, 64)
	degrees := []int{2, 3, 4, 8}
	baseline := &Series{Label: "baseline"}
	dlbOnly := &Series{Label: "dlb (degree 1)"}
	perfect := &Series{Label: "perfect"}
	degSeries := make([]*Series, len(degrees))
	for i, d := range degrees {
		degSeries[i] = &Series{Label: fmt.Sprintf("degree %d", d)}
	}
	var specs []runSpec
	for _, n := range nodes {
		x := float64(n)
		specs = append(specs, runSpec{baseline, x, func() float64 {
			t, _ := mppRun(sc, n, rpn, 1, false, core.DROMOff, nil, nil)
			return t.Seconds()
		}})
		// Single-node DLB: LeWI plus the local DROM policy among the
		// processes of each node.
		specs = append(specs, runSpec{dlbOnly, x, func() float64 {
			t, _ := mppRun(sc, n, rpn, 1, true, core.DROMLocal, nil, nil)
			return t.Seconds()
		}})
		for i, d := range degrees {
			if d > n || d*rpn > sc.CoresPerNode {
				continue
			}
			specs = append(specs, runSpec{degSeries[i], x, func() float64 {
				t, _ := mppRun(sc, n, rpn, d, true, drom, nil, nil)
				return t.Seconds()
			}})
		}
		specs = append(specs, runSpec{perfect, x, func() float64 {
			return mppOptimal(sc, n, rpn).Seconds()
		}})
	}
	runAll(sc, specs)
	res.Series = append(res.Series, *baseline, *dlbOnly)
	for _, s := range degSeries {
		res.Series = append(res.Series, *s)
	}
	res.Series = append(res.Series, *perfect)
	res.Notes = append(res.Notes,
		fmt.Sprintf("MicroPP surrogate, imbalance %.1f, %d appranks/node, %s DROM policy",
			mppImbalance, rpn, drom))
	return res
}

// Fig6a reproduces Figure 6(a): MicroPP weak scaling, one apprank per
// node, global allocation policy.
func Fig6a(sc Scale) *Result {
	return figMicroPP("fig6a", "MicroPP weak scaling, 1 apprank/node (global policy)", sc, 1, core.DROMGlobal)
}

// Fig6b reproduces Figure 6(b): two appranks per node.
func Fig6b(sc Scale) *Result {
	return figMicroPP("fig6b", "MicroPP weak scaling, 2 appranks/node (global policy)", sc, 2, core.DROMGlobal)
}

// Fig7 reproduces Figure 7: the same sweeps under the local allocation
// policy (both one and two appranks per node; the two-apprank series
// carry a "2rpn" suffix).
func Fig7(sc Scale) *Result {
	a := figMicroPP("fig7", "MicroPP weak scaling (local policy)", sc, 1, core.DROMLocal)
	b := figMicroPP("fig7", "", sc, 2, core.DROMLocal)
	for _, s := range b.Series {
		s.Label += " 2rpn"
		a.Series = append(a.Series, s)
	}
	return a
}

// Fig9 reproduces Figure 9: MicroPP on four nodes with degree two, with
// and without LeWI and DROM. The series contain the execution times; the
// notes carry the time ratios the paper reports (LeWI-only 83% of
// baseline, DROM-only 65%, both best). Fig9Traces returns the underlying
// timelines.
func Fig9(sc Scale) *Result {
	res := &Result{
		ID:     "fig9",
		Title:  "MicroPP 4 nodes, degree 2: LeWI/DROM roles",
		XLabel: "config (0=base 1=LeWI 2=DROM 3=both)",
		YLabel: "execution time (s)",
	}
	times := mapSpecs(sc, fig9Configs(), func(cfg fig9Config) simtime.Duration {
		t, _ := mppRun(sc, 4, 1, cfg.degree, cfg.lewi, cfg.drom, nil, nil)
		return t
	}, durCodec())
	for i, cfg := range fig9Configs() {
		res.Series = append(res.Series, Series{
			Label:  cfg.label,
			Points: []Point{{float64(i), times[i].Seconds()}},
		})
	}
	res.Notes = append(res.Notes,
		fmt.Sprintf("LeWI-only runs at %.0f%% of baseline (paper: 83%%)", 100*float64(times[1])/float64(times[0])),
		fmt.Sprintf("DROM-only runs at %.0f%% of baseline (paper: 65%%)", 100*float64(times[2])/float64(times[0])),
		fmt.Sprintf("LeWI+DROM runs at %.0f%% of baseline (paper: best)", 100*float64(times[3])/float64(times[0])),
	)
	return res
}

type fig9Config struct {
	label  string
	degree int
	lewi   bool
	drom   core.DROMMode
}

func fig9Configs() []fig9Config {
	return []fig9Config{
		// The baseline is the original MPI+OmpSs-2 execution without
		// task offloading (degree 1, no helpers).
		{"baseline", 1, false, core.DROMOff},
		{"lewi-only", 2, true, core.DROMOff},
		{"drom-only", 2, false, core.DROMGlobal},
		{"lewi+drom", 2, true, core.DROMGlobal},
	}
}

// Fig9Traces runs the four Figure-9 configurations with trace recording
// and returns the recorders (busy and owned timelines per node/apprank)
// with their labels.
func Fig9Traces(sc Scale) ([]*trace.Recorder, []string) {
	bundles := Fig9TraceBundles(sc)
	recs := make([]*trace.Recorder, len(bundles))
	labels := make([]string, len(bundles))
	for i, b := range bundles {
		recs[i], labels[i] = b.Trace, b.Label
	}
	return recs, labels
}

// Fig9TraceBundles runs the four Figure-9 configurations with both the
// legacy timeline recorder and the structured event recorder attached,
// driven from the same event stream.
func Fig9TraceBundles(sc Scale) []TraceBundle {
	return sweep.Map(sc.engine(), fig9Configs(), func(cfg fig9Config) TraceBundle {
		rec := trace.NewRecorder()
		ob := obs.NewRecorder(-1)
		mppRun(sc, 4, 1, cfg.degree, cfg.lewi, cfg.drom, rec, ob)
		return TraceBundle{Label: cfg.label, Obs: ob, Trace: rec}
	})
}

// TALPReport runs MicroPP on four nodes with the full mechanism and
// renders the end-of-run TALP efficiency report (the DLB module the
// paper describes in §3.3 but does not evaluate). Efficiency is useful
// core-time over the apprank's time-averaged owned cores, which with
// DROM reassignment may span several nodes.
func TALPReport(sc Scale) string {
	rec := trace.NewRecorder()
	_, rt := mppRun(sc, 4, 1, 2, true, core.DROMGlobal, rec, nil)
	end := rec.End()
	avgCores := map[int]float64{}
	for a := 0; a < rt.NumAppranks(); a++ {
		total := 0.0
		for n := 0; n < 4; n++ {
			total += rec.Owned(n, a).Average(0, end)
		}
		avgCores[a] = total
	}
	return rt.TALP().Snapshot(rt.Env().Now(), avgCores).String()
}
