package experiments

import (
	"errors"
	"strings"
	"testing"

	"ompsscluster/internal/core"
	"ompsscluster/internal/faults"
)

// TestResilienceSweep sanity-checks the sweep: both series cover every
// intensity, no run fails, and the fault-free point matches between the
// two policies' baselines being distinct runs (static is slower or equal
// under faults than fault-free — faults cost time).
func TestResilienceSweep(t *testing.T) {
	res := Resilience(qs())
	if res.Err != nil {
		t.Fatalf("sweep reported error: %v", res.Err)
	}
	if len(res.Series) != 2 {
		t.Fatalf("got %d series, want 2", len(res.Series))
	}
	for _, s := range res.Series {
		if len(s.Points) != 5 {
			t.Fatalf("series %q has %d points, want 5", s.Label, len(s.Points))
		}
		base, ok := s.Lookup(0)
		if !ok || base <= 0 {
			t.Fatalf("series %q missing fault-free baseline", s.Label)
		}
		worst, ok := s.Lookup(2.0)
		if !ok {
			t.Fatalf("series %q missing intensity 2 point", s.Label)
		}
		if worst < base {
			t.Errorf("series %q: full fault intensity faster than fault-free (%v < %v)",
				s.Label, worst, base)
		}
	}
}

// TestResilienceCSVDeterminism pins satellite 6: the resilience CSV is
// byte-identical between a sequential sweep and a parallel one, so the
// fault machinery (hashed link decisions, per-run bound plans) is free
// of cross-run state.
func TestResilienceCSVDeterminism(t *testing.T) {
	seq := qs()
	seq.Parallel = 1
	par := qs()
	par.Parallel = 8
	a := Resilience(seq)
	b := Resilience(par)
	if a.CSV() != b.CSV() {
		t.Errorf("resilience CSV differs between -parallel 1 and -parallel 8:\nseq:\n%s\npar:\n%s",
			a.CSV(), b.CSV())
	}
}

// TestFaultDemoCrashSurfacesTypedError: a crash plan aborts the run by
// design; FaultDemo must report the typed error on Result.Err instead
// of panicking, and still emit a note per policy.
func TestFaultDemoCrashSurfacesTypedError(t *testing.T) {
	plan, ok := faults.Preset("crashnode")
	if !ok {
		t.Fatal("crashnode preset missing")
	}
	res := FaultDemo(qs(), plan)
	var abort *core.AbortError
	if !errors.As(res.Err, &abort) {
		t.Fatalf("Result.Err = %v, want core.AbortError", res.Err)
	}
	if len(res.Notes) != 2 {
		t.Fatalf("got %d notes, want 2 (one per policy)", len(res.Notes))
	}
}

// TestFaultDemoPreset runs the drain preset end to end: both policies
// finish, and the notes carry the fault and re-offload counters.
func TestFaultDemoPreset(t *testing.T) {
	plan, ok := faults.Preset("drainhelper")
	if !ok {
		t.Fatal("drainhelper preset missing")
	}
	res := FaultDemo(qs(), plan)
	if res.Err != nil {
		t.Fatalf("FaultDemo failed: %v", res.Err)
	}
	if len(res.Series) != 2 {
		t.Fatalf("got %d series, want 2", len(res.Series))
	}
	found := false
	for _, n := range res.Notes {
		if strings.Contains(n, "fault events") {
			found = true
		}
	}
	if !found {
		t.Error("notes missing fault counters")
	}
}
