package experiments

import (
	"context"
	"encoding/json"
	"strconv"
	"sync"

	"ompsscluster/internal/core"
	"ompsscluster/internal/simtime"
	"ompsscluster/internal/sweep"
)

// JobHooks is the per-spec runner entry point the job service
// (internal/jobs) threads through a figure run. Every result-bearing
// sweep of every experiment funnels its specs through mapSpecs, which —
// when the Scale carries hooks — numbers the specs globally in
// enumeration order (deterministic: figure code issues its sweeps
// sequentially), consults Cached before running a spec, and reports
// each outcome through Done as an exactly-round-tripping encoding.
//
// That is what makes checkpoint/resume provably byte-identical: a
// resumed run replays the same enumeration, substitutes the recorded
// encodings for the already-completed spec indices, recomputes only the
// rest, and assembles the figure from values that are bit-equal to an
// uninterrupted run's.
type JobHooks struct {
	// Ctx, when non-nil, abandons the figure mid-sweep: no further
	// specs are drawn once it is done. The partial Result returned
	// after a cancellation is garbage by design — the caller must check
	// Ctx and discard it.
	Ctx context.Context
	// Cached returns the recorded encoding of the global spec index, if
	// any. The spec's simulator run is skipped and the decoded outcome
	// used in its place.
	Cached func(idx int) ([]byte, bool)
	// Done reports the encoding of a freshly computed (or re-validated
	// cached) spec outcome. Called concurrently from sweep workers.
	Done func(idx int, encoded []byte)

	mu   sync.Mutex
	next int
}

// reserve allocates a block of n consecutive global spec indices and
// returns the first. Sweeps inside one experiment run sequentially, so
// identical runs assign identical indices.
func (h *JobHooks) reserve(n int) int {
	h.mu.Lock()
	defer h.mu.Unlock()
	base := h.next
	h.next += n
	return base
}

// Canceled reports whether the hooks' context has been canceled, i.e.
// whether a Result assembled under these hooks must be discarded.
func (h *JobHooks) Canceled() bool {
	return h != nil && h.Ctx != nil && h.Ctx.Err() != nil
}

// specCodec serializes one sweep-outcome type for checkpointing. enc
// must be exact: dec(enc(r)) is required to be bit-identical to r for
// every value a run can produce, because resumed figures are assembled
// from decoded outcomes. An enc error (e.g. a NaN under a JSON codec)
// skips checkpointing that spec — correct, just not resumable.
type specCodec[R any] struct {
	enc func(R) ([]byte, error)
	dec func([]byte) (R, error)
}

// mapSpecs is sweep.Map with the scale's job hooks applied: cached spec
// outcomes short-circuit their simulator runs, fresh outcomes are
// reported as they complete, and the hooks' context cancels the draw.
// Without hooks it is exactly sweep.Map.
func mapSpecs[S, R any](sc Scale, specs []S, run func(S) R, c specCodec[R]) []R {
	h := sc.Jobs
	if h == nil {
		return sweep.Map(sc.engine(), specs, run)
	}
	base := h.reserve(len(specs))
	out := make([]R, len(specs))
	eng := sc.engine().WithHook(sweep.Hook{
		Ctx: h.Ctx,
		Done: func(i int) {
			if h.Done == nil {
				return
			}
			if b, err := c.enc(out[i]); err == nil {
				h.Done(base+i, b)
			}
		},
	})
	eng.Run(len(specs), func(i int) {
		if h.Cached != nil {
			if b, ok := h.Cached(base + i); ok {
				if r, err := c.dec(b); err == nil {
					out[i] = r
					return
				}
				// Undecodable checkpoint entry: recompute. The Done hook
				// re-records the fresh outcome.
			}
		}
		out[i] = run(specs[i])
	})
	return out
}

// floatCodec round-trips a float64 exactly via hex float formatting
// (NaN and the infinities render as their parseable names).
func floatCodec() specCodec[float64] {
	return specCodec[float64]{
		enc: func(v float64) ([]byte, error) {
			return []byte(strconv.FormatFloat(v, 'x', -1, 64)), nil
		},
		dec: func(b []byte) (float64, error) {
			return strconv.ParseFloat(string(b), 64)
		},
	}
}

// durCodec round-trips a simtime.Duration (an int64) exactly.
func durCodec() specCodec[simtime.Duration] {
	return specCodec[simtime.Duration]{
		enc: func(d simtime.Duration) ([]byte, error) {
			return []byte(strconv.FormatInt(int64(d), 10)), nil
		},
		dec: func(b []byte) (simtime.Duration, error) {
			v, err := strconv.ParseInt(string(b), 10, 64)
			return simtime.Duration(v), err
		},
	}
}

// jsonCodec round-trips an outcome through an exported-field mirror E.
// encoding/json renders float64s with the shortest representation that
// parses back bit-identically, and int64s exactly, so mirrors composed
// of those (and strings/bools/slices of them) satisfy the codec
// contract for finite values; non-finite floats fail enc and simply go
// unrecorded.
func jsonCodec[R, E any](to func(R) E, from func(E) R) specCodec[R] {
	return specCodec[R]{
		enc: func(r R) ([]byte, error) { return json.Marshal(to(r)) },
		dec: func(b []byte) (R, error) {
			var e E
			if err := json.Unmarshal(b, &e); err != nil {
				var zero R
				return zero, err
			}
			return from(e), nil
		},
	}
}

// seriesCodec checkpoints sweeps whose outcome is a whole Series.
func seriesCodec() specCodec[Series] {
	type mirror struct {
		Label  string  `json:"label"`
		Points []Point `json:"points"`
	}
	return jsonCodec(
		func(s Series) mirror { return mirror{s.Label, s.Points} },
		func(m mirror) Series { return Series{Label: m.Label, Points: m.Points} },
	)
}

// errString flattens a typed run error for checkpointing. The figures
// only compare errors against nil and render them with %v, so a
// string round-trip preserves every byte of the assembled output.
func errString(err error) string {
	if err == nil {
		return ""
	}
	if s := err.Error(); s != "" {
		return s
	}
	return "(unnamed run error)"
}

// errFromString is errString's inverse.
func errFromString(s string) error {
	if s == "" {
		return nil
	}
	return &replayedError{s}
}

// replayedError is a run error restored from a checkpoint: the original
// type is gone, the rendering is preserved.
type replayedError struct{ msg string }

func (e *replayedError) Error() string { return e.msg }

// runStatsMirror is core.RunStats with JSON tags for checkpointing
// (all counters, exact int64 round-trip).
type runStatsMirror struct {
	CtlMessages      int64 `json:"ctl"`
	BytesTransferred int64 `json:"bytes"`
	Transfers        int64 `json:"transfers"`
	PolicyRuns       int64 `json:"policy_runs"`
	OwnershipChanges int64 `json:"ownership_changes"`
	FaultEvents      int64 `json:"fault_events"`
	Reoffloads       int64 `json:"reoffloads"`
	ChunkGrants      int64 `json:"chunk_grants"`
}

func toStatsMirror(s core.RunStats) runStatsMirror {
	return runStatsMirror{
		CtlMessages:      s.CtlMessages,
		BytesTransferred: s.BytesTransferred,
		Transfers:        s.Transfers,
		PolicyRuns:       s.PolicyRuns,
		OwnershipChanges: s.OwnershipChanges,
		FaultEvents:      s.FaultEvents,
		Reoffloads:       s.Reoffloads,
		ChunkGrants:      s.ChunkGrants,
	}
}

func fromStatsMirror(m runStatsMirror) core.RunStats {
	return core.RunStats{
		CtlMessages:      m.CtlMessages,
		BytesTransferred: m.BytesTransferred,
		Transfers:        m.Transfers,
		PolicyRuns:       m.PolicyRuns,
		OwnershipChanges: m.OwnershipChanges,
		FaultEvents:      m.FaultEvents,
		Reoffloads:       m.Reoffloads,
		ChunkGrants:      m.ChunkGrants,
	}
}
