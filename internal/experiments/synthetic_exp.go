package experiments

import (
	"fmt"

	"ompsscluster/internal/cluster"
	"ompsscluster/internal/core"
	"ompsscluster/internal/obs"
	"ompsscluster/internal/simtime"
	"ompsscluster/internal/sweep"
	"ompsscluster/internal/trace"
	"ompsscluster/internal/workloads/synthetic"
)

// synRun executes one synthetic configuration and returns the
// steady-state per-iteration time (skipping one warm-up iteration).
func synRun(sc Scale, m *cluster.Machine, synCfg synthetic.Config, degree int, lewi bool, drom core.DROMMode, rec *trace.Recorder, ob *obs.Recorder) (simtime.Duration, *core.ClusterRuntime) {
	b := synthetic.New(synCfg, m.NumNodes(), sc.CoresPerNode)
	rt := core.MustNew(core.Config{
		Machine:         m,
		Degree:          degree,
		Graphs:          sc.Graphs,
		EngineStats:     sc.Engine,
		POP:             sc.POP,
		POPWindow:       sc.POPWindow,
		GoroutineEngine: sc.GoroutineEngine,
		SimParallel:     sc.SimParallel,
		SimWorkers:      sc.SimWorkers,
		LeWI:            lewi,
		DROM:            drom,
		GlobalPeriod:    sc.GlobalPeriod,
		LocalPeriod:     sc.LocalPeriod,
		Seed:            sc.Seed,
		Recorder:        rec,
		Obs:             ob,
	})
	if err := rt.Run(b.Main()); err != nil {
		panic(fmt.Sprintf("experiments: synthetic run failed: %v", err))
	}
	return b.SteadyIterTime(1), rt
}

// synConfig builds the §6.2 configuration at the given imbalance.
func synConfig(sc Scale, imbalance float64) synthetic.Config {
	return synthetic.Config{
		Imbalance:    imbalance,
		TasksPerCore: sc.TasksPerCore,
		MeanTask:     sc.MeanTask,
		Iterations:   sc.Iterations,
		Jitter:       0.1,
		Seed:         sc.Seed,
	}
}

// synOptimalIter returns the perfect-balance per-iteration bound.
func synOptimalIter(sc Scale, m *cluster.Machine, synCfg synthetic.Config) simtime.Duration {
	b := synthetic.New(synCfg, m.NumNodes(), sc.CoresPerNode)
	return b.OptimalTime(m) / simtime.Duration(synCfg.Iterations)
}

// Fig8 reproduces Figure 8: per-iteration time of the synthetic
// benchmark (one apprank per node, LeWI + global DROM) as a function of
// the imbalance, on 4, 8 and 64 nodes. Series are labelled
// "<nodes>n <config>".
func Fig8(sc Scale) *Result {
	res := &Result{
		ID:     "fig8",
		Title:  "Synthetic benchmark: per-iteration time vs imbalance (LeWI+DROM global)",
		XLabel: "imbalance",
		YLabel: "time per iteration (s)",
	}
	imbalances := []float64{1.0, 1.5, 2.0, 2.5, 3.0, 3.5, 4.0}
	var specs []runSpec
	var order []*Series
	for _, nodes := range nodeSweep(sc, 4, 8, 64) {
		m := func() *cluster.Machine { return cluster.New(nodes, sc.CoresPerNode, cluster.DefaultNet()) }
		base := &Series{Label: fmt.Sprintf("%dn baseline", nodes)}
		perfect := &Series{Label: fmt.Sprintf("%dn perfect", nodes)}
		degSeries := map[int]*Series{}
		degrees := []int{2, 3, 4}
		for _, d := range degrees {
			degSeries[d] = &Series{Label: fmt.Sprintf("%dn degree %d", nodes, d)}
		}
		for _, imb := range imbalances {
			if imb > float64(nodes) {
				continue
			}
			cfg := synConfig(sc, imb)
			specs = append(specs, runSpec{base, imb, func() float64 {
				t, _ := synRun(sc, m(), cfg, 1, true, core.DROMLocal, nil, nil)
				return t.Seconds()
			}})
			for _, d := range degrees {
				if d > nodes {
					continue
				}
				specs = append(specs, runSpec{degSeries[d], imb, func() float64 {
					t, _ := synRun(sc, m(), cfg, d, true, core.DROMGlobal, nil, nil)
					return t.Seconds()
				}})
			}
			specs = append(specs, runSpec{perfect, imb, func() float64 {
				return synOptimalIter(sc, m(), cfg).Seconds()
			}})
		}
		order = append(order, base)
		for _, d := range degrees {
			if d <= nodes {
				order = append(order, degSeries[d])
			}
		}
		order = append(order, perfect)
	}
	runAll(sc, specs)
	for _, s := range order {
		res.Series = append(res.Series, *s)
	}
	res.Notes = append(res.Notes,
		"baseline = degree 1 with single-node DLB (no benefit with one apprank per node, as in the paper)")
	return res
}

// Fig10 reproduces Figure 10: the synthetic benchmark with one node
// three times slower, on 2 and 8 nodes. The x axis is the signed
// imbalance: negative values place the least work on the slow node,
// positive values the most.
func Fig10(sc Scale) *Result {
	res := &Result{
		ID:     "fig10",
		Title:  "Synthetic benchmark with one 3x-slower node",
		XLabel: "signed imbalance",
		YLabel: "time per iteration (s)",
	}
	slowMachine := func(nodes int) *cluster.Machine {
		m := cluster.New(nodes, sc.CoresPerNode, cluster.DefaultNet())
		m.SetSpeed(0, 1.0/3.0)
		return m
	}
	type slowSweep struct {
		nodes   int
		degrees []int
		maxImb  float64
	}
	sweeps := []slowSweep{{2, []int{2}, 2.0}, {8, []int{2, 4}, 4.0}}
	var specs []runSpec
	var order []*Series
	for _, sw := range sweeps {
		if sw.nodes > sc.MaxNodes {
			continue
		}
		base := &Series{Label: fmt.Sprintf("%dn baseline", sw.nodes)}
		perfect := &Series{Label: fmt.Sprintf("%dn perfect", sw.nodes)}
		degSeries := map[int]*Series{}
		for _, d := range sw.degrees {
			degSeries[d] = &Series{Label: fmt.Sprintf("%dn degree %d", sw.nodes, d)}
		}
		for imb := -sw.maxImb; imb <= sw.maxImb+1e-9; imb += 0.5 {
			mag := imb
			if mag < 0 {
				mag = -mag
			}
			if mag < 1 {
				continue // |imbalance| starts at 1.0 (balanced)
			}
			cfg := synConfig(sc, mag)
			if imb < 0 {
				cfg.PinLightest = true // slow node (node 0) gets the least work
			} // else the heaviest stays at apprank 0 = the slow node
			specs = append(specs, runSpec{base, imb, func() float64 {
				t, _ := synRun(sc, slowMachine(sw.nodes), cfg, 1, true, core.DROMLocal, nil, nil)
				return t.Seconds()
			}})
			for _, d := range sw.degrees {
				specs = append(specs, runSpec{degSeries[d], imb, func() float64 {
					t, _ := synRun(sc, slowMachine(sw.nodes), cfg, d, true, core.DROMGlobal, nil, nil)
					return t.Seconds()
				}})
			}
			specs = append(specs, runSpec{perfect, imb, func() float64 {
				return synOptimalIter(sc, slowMachine(sw.nodes), cfg).Seconds()
			}})
		}
		order = append(order, base)
		for _, d := range sw.degrees {
			order = append(order, degSeries[d])
		}
		order = append(order, perfect)
	}
	runAll(sc, specs)
	for _, s := range order {
		res.Series = append(res.Series, *s)
	}
	return res
}

// Fig11 reproduces Figure 11: convergence of the node-level imbalance
// (max node load / average node load, sampled from busy-core windows)
// for the synthetic benchmark: (a) 2 nodes at imbalance 2.0 and (b) 4
// nodes at imbalance 4.0, under LeWI-only, local and global DROM with
// and without LeWI.
func Fig11(sc Scale) *Result {
	res := &Result{
		ID:     "fig11",
		Title:  "Convergence of node imbalance over time",
		XLabel: "time (s)",
		YLabel: "node imbalance",
	}
	type cfg struct {
		label string
		lewi  bool
		drom  core.DROMMode
	}
	cfgs := []cfg{
		{"lewi-only", true, core.DROMOff},
		{"local", false, core.DROMLocal},
		{"local+lewi", true, core.DROMLocal},
		{"global", false, core.DROMGlobal},
		{"global+lewi", true, core.DROMGlobal},
	}
	type scenario struct {
		nodes int
		imb   float64
	}
	type spec struct {
		sce scenario
		cfg cfg
	}
	var specs []spec
	for _, sce := range []scenario{{2, 2.0}, {4, 4.0}} {
		if sce.nodes > sc.MaxNodes {
			continue
		}
		for _, c := range cfgs {
			specs = append(specs, spec{sce, c})
		}
	}
	res.Series = append(res.Series, mapSpecs(sc, specs, func(s spec) Series {
		rec := trace.NewRecorder()
		synCfg := synConfig(sc, s.sce.imb)
		synCfg.Iterations = sc.Iterations + 2 // room to converge
		m := cluster.New(s.sce.nodes, sc.CoresPerNode, cluster.DefaultNet())
		synRun(sc, m, synCfg, s.sce.nodes, s.cfg.lewi, s.cfg.drom, rec, nil)
		series := Series{Label: fmt.Sprintf("%dn %s", s.sce.nodes, s.cfg.label)}
		// Sample the step series on a regular grid so all series
		// share x values (the recorder compacts repeated values).
		imbSeries := rec.Custom("node_imbalance")
		for ti := sc.SamplePeriodOrDefault(); ti <= rec.End(); ti += sc.SamplePeriodOrDefault() {
			series.Points = append(series.Points, Point{ti.Seconds(), imbSeries.ValueAt(ti)})
		}
		return series
	}, seriesCodec())...)
	res.Notes = append(res.Notes,
		"offloading degree equals the node count (full connectivity on these tiny graphs)")
	return res
}

// Fig5 reproduces Figure 5: two appranks on two nodes running an
// imbalanced phase (all work on apprank 0) followed by a balanced phase,
// under the local and the global policy. The series are the busy-core
// timelines per (node, apprank); the notes quantify the unnecessary
// offloading the local policy performs during the balanced phase.
func Fig5(sc Scale) *Result {
	res := &Result{
		ID:     "fig5",
		Title:  "Local vs global coarse-grained balancing (2 appranks, 2 nodes)",
		XLabel: "time (s)",
		YLabel: "busy cores",
	}
	type fig5Out struct {
		series []Series
		note   string
	}
	type fig5Mirror struct {
		Series []Series `json:"series"`
		Note   string   `json:"note"`
	}
	outs := mapSpecs(sc, fig5Policies(), func(pol fig5Policy) fig5Out {
		rec := trace.NewRecorder()
		_, phase2Start := runFig5Workload(sc, pol.drom, rec, nil)
		end := rec.End()
		var out fig5Out
		// Busy timelines, sampled.
		for node := 0; node < 2; node++ {
			for a := 0; a < 2; a++ {
				s := Series{Label: fmt.Sprintf("%s n%d/a%d", pol.label, node, a)}
				busy := rec.Busy(node, a)
				const samples = 60
				for k := 0; k <= samples; k++ {
					t0 := simtime.Time(float64(end) * float64(k) / samples)
					t1 := simtime.Time(float64(end) * float64(k+1) / samples)
					s.Points = append(s.Points, Point{t0.Seconds(), busy.Average(t0, t1)})
				}
				out.series = append(out.series, s)
			}
		}
		// Cross-node activity once the balanced phase has settled (the
		// last two thirds, past the ownership transition): average busy
		// cores of each apprank on its non-home node.
		settle := phase2Start + (end-phase2Start)/3
		cross := rec.Busy(1, 0).Average(settle, end) + rec.Busy(0, 1).Average(settle, end)
		out.note = fmt.Sprintf(
			"%s policy: %.2f cores of cross-node execution during the balanced phase (paper: local offloads unnecessarily, global ~0)",
			pol.label, cross)
		return out
	}, jsonCodec(
		func(o fig5Out) fig5Mirror { return fig5Mirror{o.series, o.note} },
		func(m fig5Mirror) fig5Out { return fig5Out{series: m.Series, note: m.Note} },
	))
	for _, out := range outs {
		res.Series = append(res.Series, out.series...)
		res.Notes = append(res.Notes, out.note)
	}
	return res
}

// fig5Policy is one of Figure 5's two allocation policies.
type fig5Policy struct {
	label string
	drom  core.DROMMode
}

func fig5Policies() []fig5Policy {
	return []fig5Policy{{"local", core.DROMLocal}, {"global", core.DROMGlobal}}
}

// Fig5Traces runs the two-phase workload under both policies with trace
// recording and returns the recorders with their labels, for traceview.
func Fig5Traces(sc Scale) ([]*trace.Recorder, []string) {
	bundles := Fig5TraceBundles(sc)
	recs := make([]*trace.Recorder, len(bundles))
	labels := make([]string, len(bundles))
	for i, b := range bundles {
		recs[i], labels[i] = b.Trace, b.Label
	}
	return recs, labels
}

// Fig5TraceBundles runs the two-phase workload under both policies with
// both the legacy timeline recorder and the structured event recorder
// attached, driven from the same event stream.
func Fig5TraceBundles(sc Scale) []TraceBundle {
	return sweep.Map(sc.engine(), fig5Policies(), func(pol fig5Policy) TraceBundle {
		rec := trace.NewRecorder()
		ob := obs.NewRecorder(-1)
		runFig5Workload(sc, pol.drom, rec, ob)
		return TraceBundle{Label: pol.label, Obs: ob, Trace: rec}
	})
}

// runFig5Workload runs the two-phase workload and returns the runtime
// and the virtual time at which the balanced phase began.
func runFig5Workload(sc Scale, drom core.DROMMode, rec *trace.Recorder, ob *obs.Recorder) (*core.ClusterRuntime, simtime.Time) {
	m := cluster.New(2, sc.CoresPerNode, cluster.DefaultNet())
	rt := core.MustNew(core.Config{
		Machine:         m,
		AppranksPerNode: 1,
		Degree:          2,
		Graphs:          sc.Graphs,
		EngineStats:     sc.Engine,
		POP:             sc.POP,
		POPWindow:       sc.POPWindow,
		GoroutineEngine: sc.GoroutineEngine,
		SimParallel:     sc.SimParallel,
		SimWorkers:      sc.SimWorkers,
		LeWI:            true,
		DROM:            drom,
		GlobalPeriod:    sc.GlobalPeriod,
		LocalPeriod:     sc.LocalPeriod,
		Seed:            sc.Seed,
		Recorder:        rec,
		Obs:             ob,
	})
	var phase2Start simtime.Time
	iters := sc.Iterations
	tasks := sc.TasksPerCore * sc.CoresPerNode
	err := rt.Run(func(app *core.App) {
		regions := makeRegions(app, tasks)
		// Phase 1: all computation on apprank 0.
		for it := 0; it < iters; it++ {
			n := 0
			if app.Rank() == 0 {
				n = 2 * tasks
			}
			submitSynthTasks(app, regions, n, sc.MeanTask)
			app.TaskWait()
			app.Barrier()
		}
		if app.Rank() == 0 {
			phase2Start = app.Now()
		}
		// Phase 2: balanced.
		for it := 0; it < iters; it++ {
			submitSynthTasks(app, regions, tasks, sc.MeanTask)
			app.TaskWait()
			app.Barrier()
		}
	})
	if err != nil {
		panic(fmt.Sprintf("experiments: fig5 run failed: %v", err))
	}
	return rt, phase2Start
}
